package pmc_test

import (
	"fmt"

	"pmc"
)

// The package-level example is the paper's message-passing program: write
// the payload, fence, publish a flushed flag; the reader polls the flag and
// acquires the payload. The same code runs on every backend.
func Example() {
	for _, backend := range []string{"nocc", "swcc", "dsm", "spm"} {
		cfg := pmc.DefaultConfig()
		cfg.Tiles = 2
		sys, err := pmc.NewSystem(cfg)
		if err != nil {
			fmt.Println(err)
			return
		}
		b, err := pmc.BackendByName(backend)
		if err != nil {
			fmt.Println(err)
			return
		}
		r := pmc.NewRuntime(sys, b)
		x := r.Alloc("X", 4)
		flag := r.Alloc("flag", 4)
		var got uint32
		r.Spawn(0, "writer", func(c *pmc.Ctx) {
			c.EntryX(x)
			c.Write32(x, 0, 42)
			c.Fence()
			c.ExitX(x)
			c.EntryX(flag)
			c.Write32(flag, 0, 1)
			c.Flush(flag)
			c.ExitX(flag)
		})
		r.Spawn(1, "reader", func(c *pmc.Ctx) {
			for {
				c.EntryRO(flag)
				v := c.Read32(flag, 0)
				c.ExitRO(flag)
				if v == 1 {
					break
				}
				c.Compute(8)
			}
			c.Fence()
			c.EntryX(x)
			got = c.Read32(x, 0)
			c.ExitX(x)
		})
		if err := r.Run(); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %d\n", backend, got)
	}
	// Output:
	// nocc: 42
	// swcc: 42
	// dsm: 42
	// spm: 42
}

// ExampleExplore enumerates every outcome of the paper's Fig. 1 program
// under the PMC model: the stale read is observable, which is exactly why
// the program is broken.
func ExampleExplore() {
	prog, _ := pmc.LitmusByName("fig1-unsynchronized")
	res, err := pmc.Explore(prog)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, o := range res.OutcomeList() {
		fmt.Println(o)
	}
	// Output:
	// rX=0
	// rX=42
}

// ExampleExecution builds the dependency graph of the paper's Fig. 3 by
// hand and asks the model which values the read may return.
func ExampleExecution() {
	e := pmc.NewExecution()
	x := e.AddLoc("X")
	e.Write(0, x, 1)
	rd := e.Read(0, x, 1)
	fmt.Println("readable:", e.ReadableValues(rd.ID))
	// Output:
	// readable: [1]
}

// ExampleNewScopeX shows the Fig. 10 scoped-annotation helpers: the scope
// is opened by the constructor and closed with defer, mirroring the
// paper's C++ constructor/destructor pairs.
func ExampleNewScopeX() {
	cfg := pmc.DefaultConfig()
	cfg.Tiles = 1
	sys, _ := pmc.NewSystem(cfg)
	r := pmc.NewRuntime(sys, pmc.SPM())
	vec := r.Alloc("vector", 8)
	r.Spawn(0, "worker", func(c *pmc.Ctx) {
		s := pmc.NewScopeX(c, vec)
		defer s.Close()
		s.Write32(0, 3)
		s.Write32(4, 4)
	})
	if err := r.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r.ReadObjectWord(vec, 0), r.ReadObjectWord(vec, 1))
	// Output:
	// 3 4
}

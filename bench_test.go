// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations of DESIGN.md §7 and micro-benchmarks of the substrate.
//
// Simulation benchmarks report two metrics: host ns/op (Go's default, the
// cost of running the simulator) and sim-cycles/op (the simulated SoC's
// execution time, the number the paper's figures are about). Shape
// assertions — who wins, by how much — live in the test suite; the benches
// record the magnitudes, executing each measured point through
// perf.RunEntry — the same path cmd/pmcbench serializes to BENCH.json —
// wherever the declarative entries can express it.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=Fig8 -benchmem
package pmc_test

import (
	"fmt"
	"io"
	"testing"

	"pmc"
	"pmc/internal/cache"
	"pmc/internal/core"
	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/perf"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/workloads"
)

// benchCfg is the benchmark system: 8 tiles keeps host time moderate while
// preserving bus contention. Benches that need the paper's 32 tiles say so.
func benchCfg(tiles int) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	return cfg
}

// runPerfEntry executes one continuous-benchmarking entry per iteration —
// the same execution path pmcbench measures (perf.RunEntry), so the
// magnitudes recorded here and in BENCH.json can never diverge.
func runPerfEntry(b *testing.B, e perf.Entry) []perf.Metric {
	b.Helper()
	var metrics []perf.Metric
	for i := 0; i < b.N; i++ {
		var err error
		metrics, err = perf.RunEntry(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	return metrics
}

// runSim benchmarks one simulated workload point through the perf runner
// and reports its simulated makespan.
func runSim(b *testing.B, app, backend string, tiles int, small bool) sim.Time {
	b.Helper()
	ms := runPerfEntry(b, perf.Entry{Sim: &perf.SimBench{
		App: app, Backend: backend, Tiles: tiles, Small: small,
	}})
	cycles := perf.SimCycles(ms)
	b.ReportMetric(float64(cycles), "sim-cycles/op")
	return cycles
}

// runApp executes one custom-configured workload run and reports simulated
// cycles (for shapes the declarative perf entries cannot express).
func runApp(b *testing.B, app func() workloads.App, tiles int, backend string) {
	b.Helper()
	var cycles sim.Time
	for i := 0; i < b.N; i++ {
		res, err := workloads.Run(app(), benchCfg(tiles), backend)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles/op")
}

// ---- Table I / model ----

// BenchmarkTable1ModelOps measures Table I rule application throughput: a
// lock-disciplined op stream grown op by op.
func BenchmarkTable1ModelOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := core.NewExecution()
		x := e.AddLoc("X")
		y := e.AddLoc("Y")
		for k := 0; k < 50; k++ {
			p := core.ProcID(k % 4)
			e.Acquire(p, x)
			e.Write(p, x, core.Value(k))
			e.Release(p, x)
			e.Fence(p)
			e.Acquire(p, y)
			e.Read(p, y, 0)
			e.Release(p, y)
		}
	}
}

// ---- Figs. 1-6: litmus exploration ----

func benchLitmus(b *testing.B, name string) {
	ms := runPerfEntry(b, perf.Entry{Litmus: &perf.LitmusBench{
		Prog: name, Workers: 0, Memoize: true, // the default engine
	}})
	for _, m := range ms {
		if m.Name == "states" {
			b.ReportMetric(m.Value, "states/op")
		}
	}
}

func BenchmarkFig1Litmus(b *testing.B)     { benchLitmus(b, "fig1-unsynchronized") }
func BenchmarkFig5Fig6Litmus(b *testing.B) { benchLitmus(b, "fig5-annotated") }
func BenchmarkLitmusSBDRF(b *testing.B)    { benchLitmus(b, "sb-drf") }

// BenchmarkFig2to5Graphs regenerates the dependency-graph figures.
func BenchmarkFig2to5Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"fig2", "fig3", "fig4", "fig5"} {
			if err := pmc.RunExperiment(io.Discard, id, pmc.ExpOptions{Scale: "small"}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Table II / Fig. 6: the annotation matrix ----

// BenchmarkTable2MsgPass runs the annotated message-passing program on each
// backend (the measured half of Table II).
func BenchmarkTable2MsgPass(b *testing.B) {
	for _, backend := range pmc.BackendNames() {
		b.Run(backend, func(b *testing.B) {
			runSim(b, "msgpass", backend, 4, false)
		})
	}
}

// ---- Fig. 8: SPLASH-2 substitutes, noCC vs SWCC ----

// benchFig8 measures a SPLASH substitute at the CI app size (the same
// configuration workloads.Scaled gives the perf ci suite) on the baseline
// and software-coherent backends.
func benchFig8(b *testing.B, app string) {
	var cyc [2]sim.Time
	for i, backend := range []string{"nocc", "swcc"} {
		backend := backend
		idx := i
		b.Run(backend, func(b *testing.B) {
			cyc[idx] = runSim(b, app, backend, 8, true)
			if backend == "swcc" && cyc[0] > 0 {
				b.ReportMetric(100*(1-float64(cyc[1])/float64(cyc[0])), "improvement-%")
			}
		})
	}
}

func BenchmarkFig8Radiosity(b *testing.B) { benchFig8(b, "radiosity") }
func BenchmarkFig8Raytrace(b *testing.B)  { benchFig8(b, "raytrace") }
func BenchmarkFig8Volrend(b *testing.B)   { benchFig8(b, "volrend") }

// ---- Fig. 9: the FIFO across architectures ----

func BenchmarkFig9Fifo(b *testing.B) {
	for _, backend := range pmc.BackendNames() {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			fifo := workloads.DefaultMFifo()
			fifo.Items = 32
			items := float64(fifo.Writers * fifo.Items)
			var res *workloads.Result
			for i := 0; i < b.N; i++ {
				f := *fifo
				var err error
				res, err = workloads.Run(&f, benchCfg(8), backend)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles)/items, "sim-cycles/item")
			b.ReportMetric(float64(res.NoCMessages)/items, "noc-msgs/item")
		})
	}
}

// ---- Fig. 10: motion estimation across architectures ----

func BenchmarkFig10Motion(b *testing.B) {
	for _, backend := range []string{"nocc", "swcc", "spm"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			runSim(b, "motionest", backend, 8, true)
		})
	}
}

// ---- Ablations ----

func BenchmarkAblationRelease(b *testing.B) {
	for _, backend := range []string{"swcc", "swcc-lazy"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			runSim(b, "reacquire", backend, 8, true)
		})
	}
}

func BenchmarkAblationLocks(b *testing.B) {
	for _, kind := range []soc.LockKind{soc.LockDistributed, soc.LockCentralized} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(8)
				cfg.Locks = kind
				app := workloads.DefaultReacquire()
				app.Iters, app.CrossEvery = 40, 4
				res, err := workloads.Run(app, cfg, "swcc")
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles/op")
		})
	}
}

func BenchmarkAblationScaling(b *testing.B) {
	for _, tiles := range []int{1, 4, 8, 16} {
		tiles := tiles
		b.Run(fmt.Sprintf("tiles-%d", tiles), func(b *testing.B) {
			var cyc [2]sim.Time
			for i := 0; i < b.N; i++ {
				for j, backend := range []string{"nocc", "swcc"} {
					ray := workloads.DefaultRaytrace()
					ray.Cells, ray.Rays, ray.StepsPerRay = 48, 8*tiles, 4
					res, err := workloads.Run(ray, benchCfg(tiles), backend)
					if err != nil {
						b.Fatal(err)
					}
					cyc[j] = res.Cycles
				}
			}
			b.ReportMetric(100*(1-float64(cyc[1])/float64(cyc[0])), "swcc-gain-%")
		})
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkSimKernelEvents(b *testing.B) {
	k := sim.New()
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	ram := mem.NewRAM(0, 1<<20)
	c := cache.New(cache.Config{Size: 8192, Ways: 2, LineSize: 32}, ram)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read32(mem.Addr(i*4) % (1 << 19))
	}
}

func BenchmarkModelReadVerification(b *testing.B) {
	e := core.NewExecution()
	x := e.AddLoc("X")
	for k := 0; k < 40; k++ {
		p := core.ProcID(k % 3)
		e.Acquire(p, x)
		e.Write(p, x, core.Value(k))
		e.Release(p, x)
	}
	rd := e.Read(1, x, 39)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ReadableValues(rd.ID)
	}
}

func BenchmarkSoCUncachedRead(b *testing.B) {
	sys, err := soc.New(benchCfg(1))
	if err != nil {
		b.Fatal(err)
	}
	tile := sys.Tiles[0]
	sys.K.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			tile.ReadShared32Uncached(p, 0x4000)
		}
	})
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// ---- Extensions ----

func BenchmarkExtStencil(b *testing.B) {
	for _, backend := range []string{"swcc", "dsm"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			runSim(b, "stencil", backend, 8, true)
		})
	}
}

func BenchmarkExtPipeline(b *testing.B) {
	for _, backend := range []string{"swcc", "dsm"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			runApp(b, func() workloads.App {
				a := workloads.DefaultPipeline()
				a.Frames = 16
				return a
			}, 4, backend)
		})
	}
}

func BenchmarkExtMeshTopology(b *testing.B) {
	for _, topo := range []noc.Topology{noc.TopoRing, noc.TopoMesh} {
		topo := topo
		b.Run(topo.String(), func(b *testing.B) {
			var flitHops uint64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(16)
				cfg.NoC.Topology = topo
				fifo := workloads.DefaultMFifo()
				fifo.Items = 24
				res, err := workloads.Run(fifo, cfg, "dsm")
				if err != nil {
					b.Fatal(err)
				}
				flitHops = res.FlitHops
			}
			b.ReportMetric(float64(flitHops), "flit-hops/op")
		})
	}
}

func BenchmarkExtScopedFenceModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := core.NewExecution()
		x := e.AddLoc("X")
		y := e.AddLoc("Y")
		for k := 0; k < 30; k++ {
			p := core.ProcID(k % 2)
			e.Write(p, x, core.Value(k))
			e.FenceLoc(p, x)
			e.Acquire(p, y)
			e.Release(p, y)
		}
	}
}

// sweepBenchSpec is the acceptance-criteria grid — the three SPLASH
// substitutes × the four architecture backends × a tile range — at CI app
// sizes so one sweep stays in benchmark territory.
func sweepBenchSpec(workers int) pmc.SweepSpec {
	return pmc.SweepSpec{
		Apps:     []string{"radiosity", "raytrace", "volrend"},
		Backends: []string{"nocc", "swcc", "dsm", "spm"},
		Tiles:    []int{2, 4, 8, 16, 32, 64},
		Workers:  workers,
		Make: func(c pmc.SweepCell) (pmc.App, error) {
			app, _ := pmc.ScaledApp(c.App, true)
			return app, nil
		},
	}
}

// BenchmarkSweep compares 1-worker and N-worker wall-clock on the same
// grid: the speedup of the parallel sweep engine (results are
// byte-identical either way; TestSweepDeterminism asserts that).
func BenchmarkSweep(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"1worker", 1}, {"maxworkers", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var cells int
			for i := 0; i < b.N; i++ {
				table, err := pmc.Sweep(sweepBenchSpec(mode.workers))
				if err != nil {
					b.Fatal(err)
				}
				cells = len(table.Rows)
			}
			b.ReportMetric(float64(cells), "cells/op")
		})
	}
}

// BenchmarkVerifiedRun measures the cost of running a workload with the
// formal-model recorder attached (the differential-testing mode).
func BenchmarkVerifiedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := workloads.DefaultMsgPass()
		_, rec, err := workloads.RunVerified(app, benchCfg(3), "swcc")
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

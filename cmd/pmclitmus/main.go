// Command pmclitmus exhaustively explores the outcomes of the paper's
// litmus programs under the PMC memory model.
//
// Usage:
//
//	pmclitmus -list              list cataloged programs
//	pmclitmus -prog fig5-annotated
//	pmclitmus -all               explore every program
//	pmclitmus -table1            print the ordering-rule table
//	pmclitmus -prog sb-drf -workers 8
//	pmclitmus -prog sb-drf -workers 1 -memoize=false   (reference engine)
//	pmclitmus -prog iriw-sym3 -symmetry -stats         (orbit-collapsed states)
//
// Compositional spec checking — drive a backend against its declarative
// ordering spec at fixed interface scale (cost independent of -platform):
//
//	pmclitmus -spec all
//	pmclitmus -spec swcc -platform 1024
//	pmclitmus -spec swcc -fault release-without-flush   (must fail)
//
// Differential fuzzing — generate seeded random annotated programs,
// explore each under the model, execute on every backend, and shrink any
// violation to a minimal counterexample:
//
//	pmclitmus -fuzz -seed 1 -n 500 -shrink
//	pmclitmus -fuzz -seed 1 -n 500 -mode racy -fuzzbackends swcc,dsm
//	pmclitmus -fuzz -seed 1 -n 200 -shrink -fault release-without-flush
//
// Every violation line prints the program seed; re-running with -seed
// <that seed> -n 1 reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmc"
	"pmc/internal/cli"
)

// usagef marks a bad flag value; fail prints the usage and exits 2 for
// those, 1 for runtime failures — an exploration error, a campaign that
// found violations (the shared pmc command convention).
func usagef(format string, args ...any) error { return cli.Usagef(format, args...) }

func fail(err error) { cli.Fail("pmclitmus", err) }

type engineOpts struct {
	workers   int
	memoize   bool
	symmetry  bool
	maxStates int
	stats     bool
}

func explore(p pmc.LitmusProgram, o engineOpts) error {
	x := pmc.NewLitmusExplorer(p)
	x.Workers = o.workers
	x.Memoize = o.memoize
	x.Symmetry = o.symmetry
	if o.maxStates > 0 {
		x.MaxStates = o.maxStates
	}
	res, err := x.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n%s", p.Name, res)
	if o.stats {
		fmt.Printf("states: %d\n", res.States)
	}
	fmt.Println()
	return nil
}

func runFuzz(seed int64, n int, mode, backends, fault string, shrink, specCheck bool, runs, workers, maxStates, maxBlock int) error {
	m, err := pmc.ParseFuzzMode(mode)
	if err != nil {
		return usagef("bad -mode: %v", err)
	}
	if maxBlock < 1 {
		return usagef("bad -maxblock %d: must be at least 1 (1 = word-only programs)", maxBlock)
	}
	cfg := pmc.FuzzConfig{
		Seed:      seed,
		N:         n,
		Gen:       pmc.FuzzGenConfig{Mode: m, MaxBlockWords: maxBlock},
		Runs:      runs,
		Workers:   workers,
		Shrink:    shrink,
		SpecCheck: specCheck,
		MaxStates: maxStates,
		Progress:  os.Stderr,
	}
	if backends != "" {
		cfg.Backends = strings.Split(backends, ",")
		for _, b := range cfg.Backends {
			if b == pmc.MixedBackend {
				// Pseudo-backend: each generated program carries a
				// per-object placement and every object runs on its
				// placed backend.
				continue
			}
			if _, err := pmc.BackendByName(b); err != nil {
				return usagef(`bad -fuzzbackends entry: %v (or "mixed" for per-object placement)`, err)
			}
		}
	}
	fs, err := pmc.ParseFaultSet(fault)
	if err != nil {
		return usagef("bad -fault: %v", err)
	}
	if fs.Enabled() {
		fmt.Printf("injecting fault %q into every checked backend\n", fs)
		cfg.MakeBackend = func(name string) (pmc.Backend, error) {
			b, err := pmc.BackendByName(name)
			if err != nil {
				return nil, err
			}
			return pmc.InjectFaults(b, fs), nil
		}
	}
	sum, err := pmc.FuzzRun(cfg)
	if err != nil {
		return err
	}
	fmt.Print(sum)
	if !sum.Ok() {
		return fmt.Errorf("campaign found %d violations, %d run errors, %d spec divergences",
			len(sum.Violations), len(sum.Errors), len(sum.SpecDivergences))
	}
	return nil
}

// runSpec checks backends against their declarative ordering specs at
// interface scale; with a fault injected, a passing check is the failure.
func runSpec(sel, fault string, runs, platform int) error {
	fs, err := pmc.ParseFaultSet(fault)
	if err != nil {
		return usagef("bad -fault: %v", err)
	}
	names := []string{sel}
	if sel == "all" {
		names = pmc.BackendNames()
	}
	failed := 0
	for _, name := range names {
		s, err := pmc.SpecForBackend(name)
		if err != nil {
			return usagef(`bad -spec %q: %v (or "all")`, sel, err)
		}
		opt := pmc.SpecCheckOptions{Runs: runs}
		if fs.Enabled() {
			name := name
			opt.Backend = func() (pmc.Backend, error) {
				b, err := pmc.BackendByName(name)
				if err != nil {
					return nil, err
				}
				return pmc.InjectFaults(b, fs), nil
			}
		}
		r, err := pmc.SpecCheckBackend(s, pmc.SpecPlatform{Tiles: platform}, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if !r.Ok() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d backends diverged from their specs", failed, len(names))
	}
	return nil
}

func main() {
	var (
		prog      = flag.String("prog", "", "program name to explore (see -list)")
		all       = flag.Bool("all", false, "explore every cataloged program")
		list      = flag.Bool("list", false, "list programs")
		table1    = flag.Bool("table1", false, "print the Table I ordering rules")
		workers   = flag.Int("workers", 0, "exploration goroutines (0 = GOMAXPROCS, 1 = sequential)")
		memoize   = flag.Bool("memoize", true, "deduplicate canonical states (disable for the reference tree engine)")
		symmetry  = flag.Bool("symmetry", false, "collapse thread/location-symmetric states (outcomes identical; requires -memoize)")
		maxStates = flag.Int("maxstates", 0, "state budget (0 = default)")
		stats     = flag.Bool("stats", false, "also print explored-state counts")

		doSpec   = flag.String("spec", "", `check a backend against its declarative ordering spec ("all" or a backend name); composes with -fault and -runs`)
		platform = flag.Int("platform", 32, "spec: deployment tile count being certified (the check's cost is independent of it)")

		doFuzz    = flag.Bool("fuzz", false, "run a seeded differential fuzzing campaign")
		seed      = flag.Int64("seed", 1, "fuzz: base seed (program i uses seed+i)")
		n         = flag.Int("n", 200, "fuzz: number of programs to generate")
		shrink    = flag.Bool("shrink", false, "fuzz: shrink violations to minimal counterexamples")
		mode      = flag.String("mode", "mixed", "fuzz: generation mode (drf, racy, mixed)")
		backends  = flag.String("fuzzbackends", "", "fuzz: comma-separated backends (default: nocc,swcc,dsm,spm)")
		fault     = flag.String("fault", "", "fuzz: inject a protocol fault (e.g. release-without-flush) into every backend")
		runs      = flag.Int("runs", 3, "fuzz/spec: perturbed simulator runs per program and backend")
		specCheck = flag.Bool("speccheck", false, "fuzz: also attribute each pair's recorded trace to the backend's ordering spec")
		maxBlock  = flag.Int("maxblock", 4, "fuzz: max words of multi-word locations exercised by block reads/writes (1 = word-only)")
	)
	flag.Parse()
	opts := engineOpts{workers: *workers, memoize: *memoize, symmetry: *symmetry, maxStates: *maxStates, stats: *stats}

	switch {
	case *doSpec != "":
		if err := runSpec(*doSpec, *fault, *runs, *platform); err != nil {
			fail(err)
		}
		return
	case *doFuzz:
		if err := runFuzz(*seed, *n, *mode, *backends, *fault, *shrink, *specCheck, *runs, *workers, *maxStates, *maxBlock); err != nil {
			fail(err)
		}
		return
	case *table1:
		fmt.Print(pmc.RenderTableI())
		return
	case *list:
		fmt.Println("programs:")
		for _, p := range pmc.LitmusCatalog() {
			fmt.Printf("  %-24s %d threads\n", p.Name, len(p.Threads))
		}
		return
	case *all:
		for _, p := range pmc.LitmusCatalog() {
			if err := explore(p, opts); err != nil {
				fail(err)
			}
		}
		return
	case *prog != "":
		p, ok := pmc.LitmusByName(*prog)
		if !ok {
			fail(usagef("unknown program %q (see -list)", *prog))
		}
		if err := explore(p, opts); err != nil {
			fail(err)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// Command pmclitmus exhaustively explores the outcomes of the paper's
// litmus programs under the PMC memory model.
//
// Usage:
//
//	pmclitmus -list              list cataloged programs
//	pmclitmus -prog fig5-annotated
//	pmclitmus -all               explore every program
//	pmclitmus -table1            print the ordering-rule table
package main

import (
	"flag"
	"fmt"
	"os"

	"pmc"
)

func explore(p pmc.LitmusProgram) error {
	res, err := pmc.Explore(p)
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n%s\n", p.Name, res)
	return nil
}

func main() {
	var (
		prog   = flag.String("prog", "", "program name to explore (see -list)")
		all    = flag.Bool("all", false, "explore every cataloged program")
		list   = flag.Bool("list", false, "list programs")
		table1 = flag.Bool("table1", false, "print the Table I ordering rules")
	)
	flag.Parse()

	switch {
	case *table1:
		fmt.Print(pmc.RenderTableI())
		return
	case *list:
		fmt.Println("programs:")
		for _, p := range pmc.LitmusCatalog() {
			fmt.Printf("  %-24s %d threads\n", p.Name, len(p.Threads))
		}
		return
	case *all:
		for _, p := range pmc.LitmusCatalog() {
			if err := explore(p); err != nil {
				fmt.Fprintln(os.Stderr, "pmclitmus:", err)
				os.Exit(1)
			}
		}
		return
	case *prog != "":
		p, ok := pmc.LitmusByName(*prog)
		if !ok {
			fmt.Fprintf(os.Stderr, "pmclitmus: unknown program %q\n", *prog)
			os.Exit(1)
		}
		if err := explore(p); err != nil {
			fmt.Fprintln(os.Stderr, "pmclitmus:", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

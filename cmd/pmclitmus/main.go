// Command pmclitmus exhaustively explores the outcomes of the paper's
// litmus programs under the PMC memory model.
//
// Usage:
//
//	pmclitmus -list              list cataloged programs
//	pmclitmus -prog fig5-annotated
//	pmclitmus -all               explore every program
//	pmclitmus -table1            print the ordering-rule table
//	pmclitmus -prog sb-drf -workers 8
//	pmclitmus -prog sb-drf -workers 1 -memoize=false   (reference engine)
package main

import (
	"flag"
	"fmt"
	"os"

	"pmc"
)

type engineOpts struct {
	workers   int
	memoize   bool
	maxStates int
	stats     bool
}

func explore(p pmc.LitmusProgram, o engineOpts) error {
	x := pmc.NewLitmusExplorer(p)
	x.Workers = o.workers
	x.Memoize = o.memoize
	if o.maxStates > 0 {
		x.MaxStates = o.maxStates
	}
	res, err := x.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n%s", p.Name, res)
	if o.stats {
		fmt.Printf("states: %d\n", res.States)
	}
	fmt.Println()
	return nil
}

func main() {
	var (
		prog      = flag.String("prog", "", "program name to explore (see -list)")
		all       = flag.Bool("all", false, "explore every cataloged program")
		list      = flag.Bool("list", false, "list programs")
		table1    = flag.Bool("table1", false, "print the Table I ordering rules")
		workers   = flag.Int("workers", 0, "exploration goroutines (0 = GOMAXPROCS, 1 = sequential)")
		memoize   = flag.Bool("memoize", true, "deduplicate canonical states (disable for the reference tree engine)")
		maxStates = flag.Int("maxstates", 0, "state budget (0 = default)")
		stats     = flag.Bool("stats", false, "also print explored-state counts")
	)
	flag.Parse()
	opts := engineOpts{workers: *workers, memoize: *memoize, maxStates: *maxStates, stats: *stats}

	switch {
	case *table1:
		fmt.Print(pmc.RenderTableI())
		return
	case *list:
		fmt.Println("programs:")
		for _, p := range pmc.LitmusCatalog() {
			fmt.Printf("  %-24s %d threads\n", p.Name, len(p.Threads))
		}
		return
	case *all:
		for _, p := range pmc.LitmusCatalog() {
			if err := explore(p, opts); err != nil {
				fmt.Fprintln(os.Stderr, "pmclitmus:", err)
				os.Exit(1)
			}
		}
		return
	case *prog != "":
		p, ok := pmc.LitmusByName(*prog)
		if !ok {
			fmt.Fprintf(os.Stderr, "pmclitmus: unknown program %q\n", *prog)
			os.Exit(1)
		}
		if err := explore(p, opts); err != nil {
			fmt.Fprintln(os.Stderr, "pmclitmus:", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// Command pmcd is the content-addressed simulation service and its thin
// client. The server exposes the repo's deterministic engines (sweep,
// litmus, fuzz, bench) as an HTTP/JSON job API with a bounded worker
// pool, a FIFO queue with streaming NDJSON progress, and a two-tier
// (memory LRU + content-addressed disk) result store; identical
// submissions — across clients and across server restarts when the disk
// tier persists — are answered from the store byte-identically without
// re-simulation.
//
// Usage:
//
//	pmcd serve  [-addr :8433] [-cache DIR] [-workers N] [-mem N] [-queue N] [-codeversion V]
//	pmcd submit [-addr URL] [-wait] [-out FILE] -sweep apps [-backends ...] [-tilelist ...] [-topos ...] [-small]
//	pmcd submit [-addr URL] [-wait] [-out FILE] -litmus PROG [-tree] [-maxstates N]
//	pmcd submit [-addr URL] [-wait] [-out FILE] -fuzz -seed N -n N [-mode drf|racy|mixed] [-fuzzbackends ...] [-runs N]
//	pmcd submit [-addr URL] [-wait] [-out FILE] -spec FILE    raw JobSpec JSON ("-" = stdin)
//	pmcd get    [-addr URL] (-job ID | -fp FINGERPRINT) [-out FILE]
//	pmcd stats  [-addr URL]
//	pmcd gc     -cache DIR [-maxage 168h]
//
// gc ages out the content-addressed disk store in place (no server
// needed): bodies last written longer ago than -maxage are atomically
// deleted and a stats line is printed. Because keys commit to the full
// computation, purged results are never wrong to recompute — GC is
// purely a disk-capacity bound for long-lived caches.
//
// submit prints the job's terminal status line to stderr
// ("job j1 done cached=true ..."), and with -wait writes the result body
// to stdout or -out. Usage errors exit 2, runtime failures 1 (the shared
// pmc command convention).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pmc"
	"pmc/internal/cli"
)

const defaultAddr = "http://localhost:8433"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		err = cli.Usagef("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmcd:", err)
		var ue cli.UsageError
		if errors.As(err, &ue) {
			usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  pmcd serve  [-addr :8433] [-cache DIR] [-workers N] [-mem N] [-queue N] [-codeversion V]
  pmcd submit [-addr URL] [-wait] [-out FILE] -sweep apps | -litmus prog | -fuzz -seed N -n N | -spec FILE
  pmcd get    [-addr URL] (-job ID | -fp FP) [-out FILE]
  pmcd stats  [-addr URL]
  pmcd gc     -cache DIR [-maxage 168h]
`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("pmcd serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8433", "listen address")
		cacheDir    = fs.String("cache", "", "content-addressed disk store directory (empty = memory-only)")
		workers     = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		mem         = fs.Int("mem", 0, "in-memory LRU capacity in results (0 = 128)")
		queue       = fs.Int("queue", 0, "job queue depth (0 = 256)")
		codeVersion = fs.String("codeversion", "", "override the fingerprint code-version component (default: VCS build stamp)")
	)
	fs.Parse(args)
	srv, err := pmc.NewPmcdServer(pmc.PmcdConfig{
		Workers: *workers, QueueDepth: *queue,
		CacheDir: *cacheDir, MemEntries: *mem, CodeVersion: *codeVersion,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pmcd: serving on %s (code version %s, cache %q)\n",
		*addr, srv.CodeVersionUsed(), *cacheDir)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parseTiles(s string) ([]int, error) {
	var out []int
	for _, t := range splitList(s) {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			return nil, cli.Usagef("bad tile count %q in -tilelist", t)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("pmcd submit", flag.ExitOnError)
	var (
		addr = fs.String("addr", defaultAddr, "server base URL")
		wait = fs.Bool("wait", false, "follow the event stream and fetch the result")
		out  = fs.String("out", "", `write the result body to this file (default stdout; needs -wait)`)
		q    = fs.Bool("q", false, "suppress per-event progress lines")

		sweepApps = fs.String("sweep", "", "sweep job: comma-separated app list")
		backends  = fs.String("backends", "", "sweep: comma-separated backend list (default all)")
		tilelist  = fs.String("tilelist", "", "sweep: comma-separated tile counts")
		topos     = fs.String("topos", "", "sweep: comma-separated topologies (ring, mesh, cluster:<l>x<g>)")
		small     = fs.Bool("small", false, "sweep: CI-sized app configurations")

		litmusProg = fs.String("litmus", "", "litmus job: cataloged program name")
		tree       = fs.Bool("tree", false, "litmus: reference tree engine (memoization off)")
		maxStates  = fs.Int("maxstates", 0, "litmus: state budget override")

		fuzzJob  = fs.Bool("fuzz", false, "fuzz job: seeded differential campaign")
		seed     = fs.Int64("seed", 1, "fuzz: base seed")
		n        = fs.Int("n", 0, "fuzz: program count")
		mode     = fs.String("mode", "", "fuzz: generation mode (drf, racy, mixed)")
		fuzzBk   = fs.String("fuzzbackends", "", "fuzz: comma-separated backend list")
		runs     = fs.Int("runs", 0, "fuzz: perturbed runs per pair")
		specFile = fs.String("spec", "", `raw JobSpec JSON file ("-" = stdin)`)
	)
	fs.Parse(args)

	var spec pmc.PmcdJobSpec
	set := 0
	if *sweepApps != "" {
		tiles, err := parseTiles(*tilelist)
		if err != nil {
			return err
		}
		spec.Sweep = &pmc.PmcdSweepJob{
			Apps: splitList(*sweepApps), Backends: splitList(*backends),
			Tiles: tiles, Topos: splitList(*topos), Small: *small,
		}
		set++
	}
	if *litmusProg != "" {
		spec.Litmus = &pmc.PmcdLitmusJob{Prog: *litmusProg, Tree: *tree, MaxStates: *maxStates}
		set++
	}
	if *fuzzJob {
		spec.Fuzz = &pmc.PmcdFuzzJob{Seed: *seed, N: *n, Mode: *mode, Backends: splitList(*fuzzBk), Runs: *runs}
		set++
	}
	if *specFile != "" {
		if set > 0 {
			return cli.Usagef("-spec excludes the -sweep/-litmus/-fuzz convenience flags")
		}
		data, err := readFileOrStdin(*specFile)
		if err != nil {
			return err
		}
		if err := jsonUnmarshalStrict(data, &spec); err != nil {
			return cli.Usagef("bad job spec %s: %v", *specFile, err)
		}
		set++
	}
	if set != 1 {
		return cli.Usagef("submit needs exactly one of -sweep, -litmus, -fuzz, -spec")
	}
	if *out != "" && !*wait {
		return cli.Usagef("-out needs -wait")
	}

	ctx := context.Background()
	client := pmc.NewPmcdClient(*addr)
	st, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !*wait {
		fmt.Fprintf(os.Stderr, "job %s %s cached=%v fingerprint=%s\n", st.ID, st.State, st.Cached, st.Fingerprint)
		fmt.Println(st.ID)
		return nil
	}
	final := st
	if st.State != "done" && st.State != "failed" {
		final, err = client.Events(ctx, st.ID, func(ev pmc.PmcdJobStatus) {
			if !*q && ev.ProgressTotal > 0 {
				fmt.Fprintf(os.Stderr, "job %s %s %d/%d\n", ev.ID, ev.State, ev.ProgressDone, ev.ProgressTotal)
			}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "job %s %s cached=%v deduped=%v fingerprint=%s\n",
		final.ID, final.State, final.Cached, final.Deduped, final.Fingerprint)
	if final.State == "failed" {
		return fmt.Errorf("job %s failed: %s", final.ID, final.Error)
	}
	body, err := client.Result(ctx, final.ID, false)
	if err != nil {
		return err
	}
	return writeOut(*out, body)
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("pmcd get", flag.ExitOnError)
	var (
		addr  = fs.String("addr", defaultAddr, "server base URL")
		jobID = fs.String("job", "", "job ID to fetch")
		fp    = fs.String("fp", "", "result fingerprint to fetch (content-addressed)")
		out   = fs.String("out", "", "write the result body to this file (default stdout)")
	)
	fs.Parse(args)
	if (*jobID == "") == (*fp == "") {
		return cli.Usagef("get needs exactly one of -job or -fp")
	}
	ctx := context.Background()
	client := pmc.NewPmcdClient(*addr)
	var body []byte
	var err error
	if *jobID != "" {
		body, err = client.Result(ctx, *jobID, true)
	} else {
		var ok bool
		body, ok, err = client.ResultByFingerprint(ctx, *fp)
		if err == nil && !ok {
			return fmt.Errorf("no stored result for fingerprint %s", *fp)
		}
	}
	if err != nil {
		return err
	}
	return writeOut(*out, body)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("pmcd stats", flag.ExitOnError)
	addr := fs.String("addr", defaultAddr, "server base URL")
	fs.Parse(args)
	st, err := pmc.NewPmcdClient(*addr).Stats(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("code version  %s\n", st.CodeVersion)
	fmt.Printf("jobs          %d submitted, %d done, %d failed\n", st.Submitted, st.Done, st.Failed)
	fmt.Printf("cache         %d cached, %d deduped, %d simulations\n", st.Cached, st.Deduped, st.Simulations)
	fmt.Printf("store         %d mem hits, %d disk hits, %d misses, %d entries in memory\n",
		st.Store.MemHits, st.Store.DiskHits, st.Store.Misses, st.Store.MemEntries)
	fmt.Printf("pool          %d workers, %d queued\n", st.Workers, st.QueueDepth)
	return nil
}

// cmdGC ages out a disk store in place. It runs against the directory,
// not the server: the CI cache-restore step and a developer pruning
// ~/.cache have no server running, and a concurrently serving pmcd
// tolerates the deletes (content addressing makes them safe — at worst
// a just-purged body is recomputed).
func cmdGC(args []string) error {
	fs := flag.NewFlagSet("pmcd gc", flag.ExitOnError)
	var (
		cacheDir = fs.String("cache", "", "content-addressed disk store directory")
		maxAge   = fs.Duration("maxage", 7*24*time.Hour, "purge results last written longer ago than this")
	)
	fs.Parse(args)
	if *cacheDir == "" {
		return cli.Usagef("gc needs -cache DIR")
	}
	if *maxAge <= 0 {
		return cli.Usagef("bad -maxage %v: must be positive", *maxAge)
	}
	store, err := pmc.OpenPmcdStore(*cacheDir, 0)
	if err != nil {
		return err
	}
	st, err := store.GC(*maxAge)
	if err != nil {
		return err
	}
	fmt.Printf("gc %s: %s (maxage %v)\n", *cacheDir, st, *maxAge)
	return nil
}

func readFileOrStdin(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeOut(path string, body []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(body)
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

// jsonUnmarshalStrict decodes with unknown fields rejected, mirroring the
// server's own decoder so a typoed spec fails client-side too.
func jsonUnmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Command pmcsim reproduces the paper's tables and figures on the
// simulated many-core SoC, and runs parallel batch sweeps over the
// experiment grid.
//
// Usage:
//
//	pmcsim -list                 list all experiments
//	pmcsim -exp fig8             run one experiment (paper scale)
//	pmcsim -exp fig8 -scale small -tiles 8
//	pmcsim -all                  run every experiment in order
//	pmcsim -sweep radiosity,raytrace,volrend -tilelist 2,4,8,16,32,64 \
//	       -backends nocc,swcc,dsm,spm -topo both -json results.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pmc"
	"pmc/internal/cli"
)

// usagef marks a bad flag value; fail prints the usage and exits 2 for
// those, 1 for runtime failures (the shared pmc command convention).
func usagef(format string, args ...any) error { return cli.Usagef(format, args...) }

func fail(err error) { cli.Fail("pmcsim", err) }

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments")
		tiles    = flag.Int("tiles", 0, "override tile count (0 = experiment default)")
		scale    = flag.String("scale", "full", `scale: "full" (paper) or "small" (quick)`)
		runApp   = flag.String("run", "", "run one workload (see -list) instead of an experiment")
		backend  = flag.String("backend", "swcc", "backend for -run: "+strings.Join(pmc.BackendNames(), ", "))
		place    = flag.String("place", "", `with -run: per-object placement "obj=backend,..." (trailing-* globs match name prefixes; unmatched objects use -backend)`)
		load     = flag.Float64("load", 0, "with -run: offered load in requests per kilocycle for the open-loop service workloads (0 = workload default)")
		traceOut = flag.String("trace", "", "with -run: write a Chrome-trace JSON of the run to this file")
		clusters = flag.Int("clusters", 0, "with -run or -sweep: cluster count (0 = derived from the topology, 1 = flat)")
		queue    = flag.String("queue", "wheel", `with -run or -sweep: event-queue implementation, "wheel" or "heap" (results identical)`)

		sweepApps = flag.String("sweep", "", `comma-separated workloads to sweep ("splash" = radiosity,raytrace,volrend; "all" = every workload)`)
		backends  = flag.String("backends", "nocc,swcc,dsm,spm", "with -sweep: comma-separated backend axis")
		tileList  = flag.String("tilelist", "2,4,8,16,32", "with -sweep: comma-separated tile-count axis")
		topo      = flag.String("topo", "ring", `with -run or -sweep: NoC topology: "ring", "mesh", "cluster:<local>x<global>", or (sweeps only) "both"`)
		parallel  = flag.Int("parallel", 0, "max concurrent simulations in sweeps and experiments (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut   = flag.String("json", "", `with -sweep: write the JSON result table to this file ("-" = stdout)`)
		csvOut    = flag.String("csv", "", `with -sweep: write the CSV result table to this file ("-" = stdout)`)
	)
	flag.Parse()

	// Platform-shape flags are validated here, before any simulation
	// spins up: a bad value is a usage error (exit 2), not a run failure.
	if err := checkClusters(*clusters, *tiles); err != nil {
		fail(err)
	}
	qkind, err := pmc.ParseEventQueue(*queue)
	if err != nil {
		fail(usagef(`bad -queue %q (valid: wheel, heap)`, *queue))
	}
	placement, err := parsePlacement(*place)
	if err != nil {
		fail(err)
	}

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, e := range pmc.Experiments() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads (-run):")
		for _, n := range pmc.AppNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	case *sweepApps != "":
		if err := runSweep(*sweepApps, *backends, *tileList, *topo, *scale, *clusters, qkind, *parallel, *jsonOut, *csvOut); err != nil {
			fail(err)
		}
		return
	case *runApp != "":
		if err := runWorkload(*runApp, *backend, *tiles, *topo, *clusters, qkind, *load, *traceOut, placement); err != nil {
			fail(err)
		}
		return
	case *all:
		if err := checkScale(*scale); err != nil {
			fail(err)
		}
		opts := pmc.ExpOptions{Tiles: *tiles, Scale: *scale, Workers: *parallel}
		if err := pmc.RunAllExperiments(os.Stdout, opts); err != nil {
			fail(err)
		}
		return
	case *expID != "":
		if err := checkScale(*scale); err != nil {
			fail(err)
		}
		if !knownExperiment(*expID) {
			fail(usagef("unknown experiment %q (see -list)", *expID))
		}
		opts := pmc.ExpOptions{Tiles: *tiles, Scale: *scale, Workers: *parallel}
		if err := pmc.RunExperiment(os.Stdout, *expID, opts); err != nil {
			fail(err)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// checkClusters validates the -clusters flag value against -tiles, at
// flag-parse time: the address map bounds the cluster count, and tiles must
// divide evenly into clusters.
func checkClusters(clusters, tiles int) error {
	switch {
	case clusters < 0:
		return usagef("-clusters must be non-negative, got %d", clusters)
	case clusters > pmc.MaxClusters:
		return usagef("-clusters %d exceeds the address map's maximum %d", clusters, pmc.MaxClusters)
	case clusters > 1 && tiles > 0 && tiles%clusters != 0:
		return usagef("-tiles %d does not divide evenly into %d clusters", tiles, clusters)
	}
	return nil
}

// checkScale validates the -scale flag value.
func checkScale(scale string) error {
	switch scale {
	case "", "small", "full":
		return nil
	}
	return usagef(`unknown -scale %q (valid: small, full)`, scale)
}

// knownExperiment reports whether id names a registered experiment.
func knownExperiment(id string) bool {
	for _, e := range pmc.Experiments() {
		if e.ID == id {
			return true
		}
	}
	return false
}

// runSweep expands the flag grid into a SweepSpec, runs it, and emits the
// requested tables.
func runSweep(apps, backends, tileList, topo, scale string, clusters int, qkind pmc.EventQueueKind, parallel int, jsonOut, csvOut string) error {
	if err := checkScale(scale); err != nil {
		return err
	}
	small := scale == "small"

	switch apps {
	case "splash":
		apps = "radiosity,raytrace,volrend"
	case "all":
		apps = strings.Join(pmc.AppNames(), ",")
	}
	for _, a := range splitList(apps) {
		if _, ok := pmc.AppByName(a); !ok {
			return usagef("bad -sweep entry %q (have %s)", a, strings.Join(pmc.AppNames(), ", "))
		}
	}
	for _, b := range splitList(backends) {
		if _, err := pmc.BackendByName(b); err != nil {
			return usagef("bad -backends entry: %v", err)
		}
	}
	spec := pmc.SweepSpec{
		Apps:     splitList(apps),
		Backends: splitList(backends),
		Workers:  parallel,
		Make: func(c pmc.SweepCell) (pmc.App, error) {
			app, ok := pmc.ScaledApp(c.App, small)
			if !ok {
				return nil, fmt.Errorf("unknown app %q (have %s)", c.App, strings.Join(pmc.AppNames(), ", "))
			}
			return app, nil
		},
	}
	for _, s := range strings.Split(tileList, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return usagef("bad -tilelist entry %q: %v", s, err)
		}
		if clusters > 1 && t%clusters != 0 {
			return usagef("-tilelist entry %d does not divide evenly into %d clusters", t, clusters)
		}
		spec.Tiles = append(spec.Tiles, t)
	}
	switch topo {
	case "both":
		spec.Topos = []pmc.NoCTopology{pmc.TopoRing, pmc.TopoMesh}
	default:
		tp, err := pmc.ParseTopology(topo)
		if err != nil {
			return usagef(`bad -topo %q (valid: ring, mesh, cluster:<local>x<global>, both)`, topo)
		}
		spec.Topos = []pmc.NoCTopology{tp}
	}
	base := pmc.DefaultConfig()
	base.Clusters = clusters
	base.EventQueue = qkind
	for _, t := range spec.Tiles {
		if need := pmc.MinSDRAMBytes(t); need > base.SDRAMBytes {
			base.SDRAMBytes = need
		}
	}
	spec.Base = &base

	// A failed cell does not void the batch: Sweep still returns every
	// completed row (failures carry a per-row err), so emit what ran and
	// report the failure afterwards.
	table, err := pmc.Sweep(spec)
	if table == nil {
		return err
	}
	// err (the first failed cell) is returned after emission so the exit
	// code still reports the failure.
	if jsonOut != "" {
		if err := emit(jsonOut, table.WriteJSON); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := emit(csvOut, table.WriteCSV); err != nil {
			return err
		}
	}
	if jsonOut != "-" && csvOut != "-" {
		fmt.Printf("%-12s %-10s %6s %6s %12s %12s %10s\n",
			"app", "backend", "tiles", "topo", "cycles", "flit-hops", "checksum")
		for _, r := range table.Rows {
			if r.Err != "" {
				fmt.Printf("%-12s %-10s %6d %6s FAILED: %s\n",
					r.App, r.Backend, r.Tiles, r.Topology, r.Err)
				continue
			}
			fmt.Printf("%-12s %-10s %6d %6s %12d %12d %#10x\n",
				r.App, r.Backend, r.Tiles, r.Topology, r.Cycles, r.FlitHops, r.Checksum)
		}
	}
	return err
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// emit writes one table encoding to path ("-" = stdout).
func emit(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runWorkload executes one workload, optionally exporting a Chrome trace.
// parsePlacement parses the -place flag ("obj=backend,obj2=backend2") and
// validates every backend name at flag-parse time: a typo is a usage error
// (exit 2) before any simulation spins up.
func parsePlacement(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	place := make(map[string]string)
	for _, ent := range strings.Split(s, ",") {
		obj, backend, ok := strings.Cut(ent, "=")
		if !ok || obj == "" || backend == "" {
			return nil, usagef(`bad -place entry %q (want "object=backend")`, ent)
		}
		if _, err := pmc.BackendByName(backend); err != nil {
			return nil, usagef("bad -place entry %q: %v", ent, err)
		}
		if prev, dup := place[obj]; dup {
			return nil, usagef("duplicate -place entry for %q (%s and %s)", obj, prev, backend)
		}
		place[obj] = backend
	}
	return place, nil
}

func runWorkload(name, backend string, tiles int, topo string, clusters int, qkind pmc.EventQueueKind, load float64, traceOut string, place map[string]string) error {
	app, ok := pmc.AppByName(name)
	if !ok {
		return usagef("unknown workload %q (have %s)", name, strings.Join(pmc.AppNames(), ", "))
	}
	if _, err := pmc.BackendByName(backend); err != nil {
		return usagef("bad -backend: %v", err)
	}
	if load != 0 {
		if load < 0 {
			return usagef("-load must be positive, got %g", load)
		}
		if !pmc.SetOfferedLoad(app, load) {
			return usagef("-load only applies to the open-loop service workloads, not %q", name)
		}
	}
	if place != nil && traceOut != "" {
		return usagef("-place and -trace cannot be combined")
	}
	cfg := pmc.DefaultConfig()
	if tiles > 0 {
		cfg.Tiles = tiles
	}
	tp, err := pmc.ParseTopology(topo)
	if err != nil {
		return usagef(`bad -topo %q (valid with -run: ring, mesh, cluster:<local>x<global>)`, topo)
	}
	cfg.NoC.Topology = tp
	cfg.Clusters = clusters
	cfg.EventQueue = qkind
	if need := pmc.MinSDRAMBytes(cfg.Tiles); need > cfg.SDRAMBytes {
		cfg.SDRAMBytes = need
	}
	var res *pmc.Result
	if traceOut != "" {
		var tr *pmc.Trace
		res, tr, err = pmc.RunAppTraced(app, cfg, backend, 0)
		if err != nil {
			return err
		}
		f, ferr := os.Create(traceOut)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if werr := tr.WriteChrome(f); werr != nil {
			return werr
		}
		fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n", tr.Len(), traceOut)
	} else if place != nil {
		res, err = pmc.RunAppPlaced(app, cfg, backend, place)
		if err != nil {
			return err
		}
	} else {
		res, err = pmc.RunApp(app, cfg, backend)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%s on %s, %d tiles: %d cycles, checksum %#x, utilization %.1f%%\n",
		res.App, res.Backend, res.Tiles, res.Cycles, res.Checksum, 100*res.Utilization())
	if res.Service != nil {
		fmt.Print("service: ")
		res.Service.Render(os.Stdout, res.Cycles)
	}
	return nil
}

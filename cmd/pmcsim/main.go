// Command pmcsim reproduces the paper's tables and figures on the
// simulated many-core SoC.
//
// Usage:
//
//	pmcsim -list                 list all experiments
//	pmcsim -exp fig8             run one experiment (paper scale)
//	pmcsim -exp fig8 -scale small -tiles 8
//	pmcsim -all                  run every experiment in order
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmc"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments")
		tiles    = flag.Int("tiles", 0, "override tile count (0 = experiment default)")
		scale    = flag.String("scale", "full", `scale: "full" (paper) or "small" (quick)`)
		runApp   = flag.String("run", "", "run one workload (see -list) instead of an experiment")
		backend  = flag.String("backend", "swcc", "backend for -run: "+strings.Join(pmc.BackendNames(), ", "))
		traceOut = flag.String("trace", "", "with -run: write a Chrome-trace JSON of the run to this file")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, e := range pmc.Experiments() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads (-run):")
		for _, n := range pmc.AppNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	case *runApp != "":
		if err := runWorkload(*runApp, *backend, *tiles, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "pmcsim:", err)
			os.Exit(1)
		}
		return
	case *all:
		opts := pmc.ExpOptions{Tiles: *tiles, Scale: *scale}
		if err := pmc.RunAllExperiments(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "pmcsim:", err)
			os.Exit(1)
		}
		return
	case *expID != "":
		opts := pmc.ExpOptions{Tiles: *tiles, Scale: *scale}
		if err := pmc.RunExperiment(os.Stdout, *expID, opts); err != nil {
			fmt.Fprintln(os.Stderr, "pmcsim:", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// runWorkload executes one workload, optionally exporting a Chrome trace.
func runWorkload(name, backend string, tiles int, traceOut string) error {
	app, ok := pmc.AppByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q (have %s)", name, strings.Join(pmc.AppNames(), ", "))
	}
	cfg := pmc.DefaultConfig()
	if tiles > 0 {
		cfg.Tiles = tiles
	}
	var res *pmc.Result
	var err error
	if traceOut != "" {
		var tr *pmc.Trace
		res, tr, err = pmc.RunAppTraced(app, cfg, backend, 0)
		if err != nil {
			return err
		}
		f, ferr := os.Create(traceOut)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if werr := tr.WriteChrome(f); werr != nil {
			return werr
		}
		fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n", tr.Len(), traceOut)
	} else {
		res, err = pmc.RunApp(app, cfg, backend)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%s on %s, %d tiles: %d cycles, checksum %#x, utilization %.1f%%\n",
		res.App, res.Backend, res.Tiles, res.Cycles, res.Checksum, 100*res.Utilization())
	return nil
}

// Command pmcbench is the continuous-benchmarking driver: it runs a
// declarative benchmark suite across the simulator, the litmus engines
// and the fuzzer, serializes the measurements to the versioned BENCH.json
// schema, and diffs two such reports to gate perf regressions.
//
// Usage:
//
//	pmcbench -list                          list suites and their entries
//	pmcbench -suite ci -reps 3 -json BENCH.json
//	pmcbench -suite ci -cache .pmcd-cache -cachekey "$SRC_HASH" -json BENCH.json
//	pmcbench -suite full -cpuprofile cpu.pprof -memprofile mem.pprof
//	pmcbench -compare BENCH_baseline.json BENCH.json -threshold 10%
//
// Compare exits 0 when clean and 1 when gated: a host-time/alloc
// regression past the threshold, a missing entry or metric, or any drift
// in an exact (deterministic) metric such as sim-cycles — exact drift in
// either direction means the measured computation changed and the
// committed baseline must be refreshed deliberately. Usage errors exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pmc"
	"pmc/internal/cli"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list benchmark suites and entries")
		suite      = flag.String("suite", "", "suite to run: "+fmt.Sprint(pmc.BenchSuites()))
		reps       = flag.Int("reps", 0, "timed repetitions per entry (0 = 5)")
		jsonOut    = flag.String("json", "", `write the BENCH.json report to this file ("-" = stdout)`)
		quiet      = flag.Bool("q", false, "suppress per-entry progress lines")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile of the suite run to this file")
		cacheDir   = flag.String("cache", "", "content-addressed measurement cache directory; unchanged entries are answered without re-simulation")
		cacheKey   = flag.String("cachekey", "", "cache-key salt (default: the build's code version); CI passes a source-content hash")

		compare   = flag.String("compare", "", "baseline BENCH.json to compare against; the candidate report is the positional argument")
		threshold = flag.String("threshold", "10%", `with -compare: relative host-metric noise tolerance ("10%" or "0.1")`)
	)
	flag.Parse()
	// flag stops at the first positional argument, so the documented
	// shape "-compare old.json new.json -threshold 10%" leaves trailing
	// flags unparsed; re-parse them, collecting the positionals.
	args := flag.Args()
	var positional []string
	for len(args) > 0 {
		positional = append(positional, args[0])
		flag.CommandLine.Parse(args[1:])
		args = flag.CommandLine.Args()
	}

	if *cacheKey != "" && *cacheDir == "" {
		fail(usagef("-cachekey requires -cache"))
	}

	switch {
	case *list:
		rejectPositional(positional)
		for _, name := range pmc.BenchSuites() {
			spec, err := pmc.BenchSuite(name)
			if err != nil {
				fail(err)
			}
			fmt.Printf("suite %s (%d entries):\n", name, len(spec.Entries))
			for _, e := range spec.Entries {
				fmt.Printf("  %s\n", e.Name)
			}
		}
		return
	case *compare != "":
		if len(positional) != 1 {
			fail(usagef("-compare needs exactly one candidate report argument, got %d", len(positional)))
		}
		thr, err := pmc.BenchParseThreshold(*threshold)
		if err != nil {
			fail(cli.UsageError{Err: err})
		}
		if err := runCompare(*compare, positional[0], thr); err != nil {
			fail(err)
		}
		return
	case *suite != "":
		rejectPositional(positional)
		if err := runSuite(*suite, *reps, *jsonOut, *cpuProfile, *memProfile, *cacheDir, *cacheKey, *quiet); err != nil {
			fail(err)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// rejectPositional guards the modes that take no positional arguments, so
// a mistyped invocation (e.g. "-suite ci BENCH.json" without -json) fails
// loudly instead of silently discarding the argument.
func rejectPositional(positional []string) {
	if len(positional) > 0 {
		fail(usagef("unexpected argument %q (only -compare takes a positional report path)", positional[0]))
	}
}

// usagef marks a bad flag value; fail prints the usage and exits 2 for
// those, 1 for runtime failures — a benchmark error, a gated comparison
// (the shared pmc command convention).
func usagef(format string, args ...any) error { return cli.Usagef(format, args...) }

func fail(err error) { cli.Fail("pmcbench", err) }

func runSuite(name string, reps int, jsonOut, cpuProfile, memProfile, cacheDir, cacheKey string, quiet bool) error {
	spec, err := pmc.BenchSuite(name)
	if err != nil {
		return cli.UsageError{Err: err}
	}
	spec.Reps = reps
	if !quiet {
		spec.Progress = os.Stderr
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var report *pmc.BenchReport
	if cacheDir != "" {
		store, err := pmc.OpenPmcdStore(cacheDir, 0)
		if err != nil {
			return err
		}
		var stats pmc.BenchCacheStats
		report, stats, err = pmc.BenchRunCached(spec, store, cacheKey)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench cache: %d hits, %d misses\n", stats.Hits, stats.Misses)
	} else {
		report, err = pmc.BenchRun(spec)
		if err != nil {
			return err
		}
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}
	if jsonOut == "" || jsonOut == "-" {
		return report.WriteJSON(os.Stdout)
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries to %s\n", len(report.Entries), jsonOut)
	return nil
}

func runCompare(basePath, candPath string, threshold float64) error {
	base, err := pmc.BenchLoadReport(basePath)
	if err != nil {
		return err
	}
	cand, err := pmc.BenchLoadReport(candPath)
	if err != nil {
		return err
	}
	cmp, err := pmc.BenchCompare(base, cand, threshold)
	if err != nil {
		return err
	}
	fmt.Print(cmp)
	if !cmp.Ok() {
		return fmt.Errorf("%d gating failures vs %s", len(cmp.Failures()), basePath)
	}
	return nil
}

package pmc

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The exported-API golden test: api.txt is the committed listing of the
// public pmc surface, and this test fails whenever the surface drifts
// without the file being updated — making API redesigns (like the ranged
// annotation API v2) explicit in review. Refresh deliberately with
//
//	go test -run TestExportedAPIGolden -update-api .

var updateAPI = flag.Bool("update-api", false, "rewrite api.txt from the current exported surface")

var spaceRE = regexp.MustCompile(`\s+`)

// renderNode prints an AST node on one line.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return spaceRE.ReplaceAllString(buf.String(), " ")
}

// exportedAPI renders the package's exported declarations, one per line,
// sorted. Function signatures are fully rendered (a parameter or result
// change is API drift); types render their definition; vars and consts
// render name and any explicit type (their values are implementation).
func exportedAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["pmc"]
	if !ok {
		t.Fatalf("package pmc not found (have %v)", pkgs)
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				sig := renderNode(fset, d.Type)
				add("func %s%s", d.Name.Name, strings.TrimPrefix(sig, "func"))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						eq := ""
						if s.Assign != token.NoPos {
							eq = "= "
						}
						add("type %s %s%s", s.Name.Name, eq, renderNode(fset, s.Type))
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if !name.IsExported() {
								continue
							}
							if s.Type != nil {
								add("%s %s %s", kind, name.Name, renderNode(fset, s.Type))
							} else {
								add("%s %s", kind, name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestExportedAPIGolden(t *testing.T) {
	got := exportedAPI(t)
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("api.txt rewritten (%d declarations)", strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("api.txt missing (%v); generate it with: go test -run TestExportedAPIGolden -update-api .", err)
	}
	if string(want) == got {
		return
	}
	// Diff the two listings line by line for a readable failure.
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(string(want), "\n"), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		gotSet[l] = true
	}
	var diff []string
	for l := range gotSet {
		if !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	sort.Strings(diff)
	t.Fatalf("exported API drifted from api.txt — if intentional, refresh with: go test -run TestExportedAPIGolden -update-api .\n%s",
		strings.Join(diff, "\n"))
}

module pmc

go 1.24

// Package pmc is a Go reproduction of "Portable Memory Consistency for
// Software Managed Distributed Memory in Many-Core SoC" (Rutgers, Bekooij,
// Smit; IPPS 2013).
//
// PMC decouples an application from the memory consistency model of the
// hardware it runs on: the application assumes only a minimal, weak,
// synchronized memory model (five operations, four ordering relations) and
// makes every additional ordering it needs explicit through annotations —
// entry_x/exit_x, entry_ro/exit_ro, fence, flush. A runtime then implements
// those annotations on whatever memory architecture is at hand.
//
// The package exposes four layers:
//
//   - the formal model (Execution, the Table I rules, read semantics and
//     race detection) — the oracle everything else is tested against;
//   - a litmus explorer that enumerates all outcomes of small annotated
//     programs under the model;
//   - a deterministic cycle-level simulator of the paper's 32-core
//     MicroBlaze-style SoC: per-tile I/D caches, local dual-port memories,
//     a shared SDRAM bus, a write-only NoC, and distributed locks;
//   - the PMC runtime with one backend per architecture of the paper's
//     Table II (uncached/SC reference, software cache coherency, DSM over
//     the write-only NoC, scratch-pad staging) plus the paper's workloads
//     and every experiment of the evaluation section.
//
// Quickstart:
//
//	sys, _ := pmc.NewSystem(pmc.DefaultConfig())
//	r := pmc.NewRuntime(sys, pmc.SWCC())
//	x := r.Alloc("X", 4)
//	r.Spawn(0, "writer", func(c *pmc.Ctx) {
//	    c.EntryX(x)
//	    c.Write32(x, 0, 42)
//	    c.ExitX(x)
//	})
//	_ = r.Run()
//
// See the examples/ directory for complete programs and DESIGN.md for the
// system inventory.
package pmc

import (
	"fmt"
	"io"

	"pmc/internal/conform"
	"pmc/internal/core"
	"pmc/internal/exp"
	"pmc/internal/fuzz"
	"pmc/internal/litmus"
	"pmc/internal/noc"
	"pmc/internal/perf"
	"pmc/internal/pmcd"
	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/spec"
	"pmc/internal/stats"
	"pmc/internal/sweep"
	"pmc/internal/trace"
	"pmc/internal/workloads"
)

// ---- Formal model (Section IV) ----

// Model types: operations, orderings, executions.
type (
	// Execution is a growing PMC dependency graph (Definition 1).
	Execution = core.Execution
	// Op is one issued memory operation.
	Op = core.Op
	// OpKind is read/write/acquire/release/fence.
	OpKind = core.Kind
	// Ord is one of the four ordering relations.
	Ord = core.Ord
	// ProcID identifies a model process.
	ProcID = core.ProcID
	// Loc identifies a model location.
	Loc = core.Loc
	// Value is a model value.
	Value = core.Value
)

// Model operation kinds and ordering relations.
const (
	KRead    = core.KRead
	KWrite   = core.KWrite
	KAcquire = core.KAcquire
	KRelease = core.KRelease
	KFence   = core.KFence

	OrdLocal   = core.OrdLocal
	OrdProgram = core.OrdProgram
	OrdSync    = core.OrdSync
	OrdFence   = core.OrdFence
)

// NewExecution returns an initialized, empty execution.
func NewExecution() *Execution { return core.NewExecution() }

// RenderTableI prints the ordering-rule table in the paper's layout.
func RenderTableI() string { return core.RenderTableI() }

// ---- Litmus exploration ----

type (
	// LitmusProgram is a small annotated multi-threaded program.
	LitmusProgram = litmus.Program
	// LitmusThread is one thread of a litmus program.
	LitmusThread = litmus.Thread
	// LitmusInstr is one litmus instruction.
	LitmusInstr = litmus.Instr
	// LitmusResult is the outcome set of an exhaustive exploration.
	LitmusResult = litmus.Result
	// LitmusExplorer is a configurable exploration: set Workers (0 =
	// GOMAXPROCS, 1 = sequential), Memoize (canonical-state
	// deduplication) and MaxStates before Run. Every mode produces
	// identical outcomes.
	LitmusExplorer = litmus.Explorer
)

// Explore enumerates all interleavings and read choices of p under PMC
// with the default engine (memoized, parallel).
func Explore(p LitmusProgram) (*LitmusResult, error) { return litmus.Explore(p) }

// NewLitmusExplorer prepares a configurable exploration of p.
func NewLitmusExplorer(p LitmusProgram) *LitmusExplorer { return litmus.NewExplorer(p) }

// LitmusCatalog returns the paper's example programs.
func LitmusCatalog() []LitmusProgram { return litmus.Catalog() }

// LitmusByName looks up a cataloged program.
func LitmusByName(name string) (LitmusProgram, bool) { return litmus.ByName(name) }

// LitmusFenceOn returns a location-scoped fence instruction (§IV-D).
func LitmusFenceOn(loc string) LitmusInstr { return litmus.FenceOn(loc) }

// LitmusReadBlock returns a ranged read of a (possibly multi-word)
// location's whole width: word k is observed in register "reg@k" (word 0
// keeps reg). Declare widths in LitmusProgram.Widths; the explorer lowers
// block operations to per-word model operations.
func LitmusReadBlock(loc, reg string) LitmusInstr { return litmus.ReadBlock(loc, reg) }

// LitmusWriteBlock returns a ranged write of a location's whole width:
// word k receives val+k, so torn or partial transfers are observable.
func LitmusWriteBlock(loc string, val Value) LitmusInstr { return litmus.WriteBlock(loc, val) }

// LitmusFingerprint returns the canonical fingerprint of a program,
// invariant under renaming of the program, its locations and registers.
func LitmusFingerprint(p LitmusProgram) string { return litmus.Fingerprint(p) }

// LitmusExploreFingerprint extends the program fingerprint with the
// engine configuration that reaches reported results (memoization, state
// budget); the worker count is excluded because every worker count
// produces identical results. It is the cache identity pmcd uses for
// exploration jobs.
func LitmusExploreFingerprint(p LitmusProgram, memoize bool, maxStates int) string {
	return litmus.ExploreFingerprint(p, memoize, maxStates)
}

// ---- Conformance and fuzzing ----

type (
	// ConformReport is the result of checking one litmus program on one
	// backend against the model.
	ConformReport = conform.Report
	// ConformOptions configures a conformance check (tiles, runs, the
	// reported perturbation seed, backend construction).
	ConformOptions = conform.Options
	// FuzzConfig drives a seeded differential fuzzing campaign.
	FuzzConfig = fuzz.Config
	// FuzzGenConfig bounds the random litmus program generator.
	FuzzGenConfig = fuzz.GenConfig
	// FuzzMode selects the annotation discipline of generated programs.
	FuzzMode = fuzz.Mode
	// FuzzSummary is the result of a campaign.
	FuzzSummary = fuzz.Summary
	// FuzzViolation is one program whose outcomes escaped the model.
	FuzzViolation = fuzz.Violation
	// FaultSet selects runtime protocol steps to disable (fault
	// injection).
	FaultSet = rt.FaultSet
)

// Fuzz generation modes.
const (
	FuzzDRF   = fuzz.ModeDRF
	FuzzRacy  = fuzz.ModeRacy
	FuzzMixed = fuzz.ModeMixed
)

// MixedBackend is the pseudo-backend name conformance checks and fuzz
// campaigns accept alongside real backend names: the program's per-object
// placement routes each object to its named backend (unplaced objects run
// on nocc).
const MixedBackend = conform.MixedBackend

// ConformCheck explores prog under the model and executes it on the named
// backend under timing perturbations; observed outcomes must be a subset
// of the model's.
func ConformCheck(prog LitmusProgram, backend string, opt ConformOptions) (*ConformReport, error) {
	return conform.CheckOpts(prog, backend, opt)
}

// FuzzRun executes a seeded differential fuzzing campaign: generated
// programs are explored under the model and executed on every configured
// backend; violating programs are shrunk to minimal counterexamples.
func FuzzRun(cfg FuzzConfig) (*FuzzSummary, error) { return fuzz.Run(cfg) }

// GenerateLitmus builds the seeded random litmus program with the given
// bounds — program i of a campaign with base seed s is seed s+i.
func GenerateLitmus(seed int64, cfg FuzzGenConfig) LitmusProgram { return fuzz.Generate(seed, cfg) }

// RenderLitmus prints a program one thread per line.
func RenderLitmus(p LitmusProgram) string { return fuzz.Render(p) }

// ParseFuzzMode converts "drf", "racy" or "mixed".
func ParseFuzzMode(s string) (FuzzMode, error) { return fuzz.ParseMode(s) }

// InjectFaults wraps a backend with selected protocol faults disabled —
// locks stay intact, so failures are coherence failures.
func InjectFaults(b Backend, f FaultSet) Backend { return rt.InjectFaults(b, f) }

// ParseFaultSet parses a "+"-separated fault list (see rt.FaultSet).
func ParseFaultSet(s string) (FaultSet, error) { return rt.ParseFaultSet(s) }

// ---- Compositional ordering specs ----

type (
	// OrderingSpec is one backend's declarative ordering specification:
	// which Table I edges each of its protocol steps commits, as data.
	OrderingSpec = spec.Spec
	// SpecStep names one protocol mechanism of a backend implementation.
	SpecStep = spec.Step
	// SpecObligation is one Table I cell a conforming backend must commit.
	SpecObligation = spec.Obligation
	// SpecPlatform names the deployment a conformance result certifies;
	// the check's work never depends on it.
	SpecPlatform = spec.Platform
	// SpecCheckOptions configures SpecCheckBackend.
	SpecCheckOptions = spec.CheckOptions
	// SpecResult is the outcome of checking one backend against its spec.
	SpecResult = spec.Result
	// SpecDivergence is one way a backend (or its spec) departed from the
	// model.
	SpecDivergence = spec.Divergence
)

// SpecForBackend returns the authored ordering spec of a backend.
func SpecForBackend(name string) (OrderingSpec, error) { return spec.ForBackend(name) }

// AllSpecs returns the authored specs of every selectable backend.
func AllSpecs() []OrderingSpec { return spec.All() }

// SpecVsModel checks a spec against Table I (sound and complete); it
// returns one problem per defect.
func SpecVsModel(s *OrderingSpec) []string { return spec.VsModel(s) }

// SpecCheckBackend drives the backend at fixed interface scale against
// its spec — the compositional half of backend-vs-model conformance,
// with cost independent of the platform size being certified.
func SpecCheckBackend(s OrderingSpec, platform SpecPlatform, opt SpecCheckOptions) (*SpecResult, error) {
	return spec.CheckBackend(s, platform, opt)
}

// SpecCheckTrace attributes every edge of a recorded execution to an
// obligation committed by at least one of the given specs.
func SpecCheckTrace(exec *Execution, specs ...OrderingSpec) []string {
	return spec.CheckTrace(exec, specs...)
}

// SpecFaultFor maps a protocol step to the injectable fault that
// disables it, when the fault harness models one.
func SpecFaultFor(st SpecStep) (FaultSet, bool) { return spec.FaultFor(st) }

// SpecInterfacePrograms is the default litmus matrix of the spec checker.
func SpecInterfacePrograms() []LitmusProgram { return spec.InterfacePrograms() }

// ---- Simulated system (Section V-B) ----

type (
	// Config describes the simulated SoC.
	Config = soc.Config
	// System is an assembled simulated SoC.
	System = soc.System
	// Tile is one processing element.
	Tile = soc.Tile
	// TileStats are the per-core stall counters of Fig. 8.
	TileStats = soc.TileStats
	// Time is simulated cycles.
	Time = sim.Time
	// EventQueueKind selects the simulation kernel's pending-event
	// queue (Config.EventQueue): the hierarchical timing wheel or the
	// reference binary heap. Results are identical either way.
	EventQueueKind = sim.QueueKind
)

// Event-queue implementations for Config.EventQueue.
const (
	QueueWheel = sim.QueueWheel
	QueueHeap  = sim.QueueHeap
)

// MaxClusters is the largest cluster count the address map supports.
const MaxClusters = soc.MaxClusters

// DefaultConfig is the paper's 32-tile system.
func DefaultConfig() Config { return soc.DefaultConfig() }

// ParseEventQueue converts an event-queue name ("wheel" or "heap") to an
// EventQueueKind.
func ParseEventQueue(s string) (EventQueueKind, error) { return sim.ParseQueue(s) }

// MinSDRAMBytes returns the smallest Config.SDRAMBytes whose memory map
// holds the per-tile private heaps of a system with the given tile count;
// the 32 MiB default covers the paper's 32 tiles but stops at 48.
func MinSDRAMBytes(tiles int) int { return rt.MinSDRAMBytes(tiles) }

// NewSystem builds a simulated SoC.
func NewSystem(cfg Config) (*System, error) { return soc.New(cfg) }

// ---- PMC runtime and annotations (Section V-A / Table II) ----

type (
	// Runtime binds a system and a backend.
	Runtime = rt.Runtime
	// Ctx is a worker's annotation API.
	Ctx = rt.Ctx
	// Object is an annotated shared object.
	Object = rt.Object
	// Backend implements the annotations for one architecture,
	// including the ranged data path (ReadRange/WriteRange).
	Backend = rt.Backend
	// WordBackend is the v1 word-granular backend surface; lift it to
	// Backend with AdaptWordBackend.
	WordBackend = rt.WordBackend
	// Recorder verifies a run against the formal model.
	Recorder = rt.Recorder
	// ScopeRO is the Fig. 10 scoped read-only helper.
	ScopeRO = rt.ScopeRO
	// ScopeX is the Fig. 10 scoped exclusive helper.
	ScopeX = rt.ScopeX
	// Trace records runtime events for CSV/Chrome-trace export.
	Trace = trace.Trace
	// TraceEvent is one recorded runtime event.
	TraceEvent = trace.Event
)

// NewRuntime assembles a runtime over sys with the given backend.
func NewRuntime(sys *System, b Backend) *Runtime { return rt.New(sys, b) }

// Backend constructors, one per column of Table II.
var (
	// NoCC keeps shared data uncached (the Fig. 8 baseline and the SC
	// reference).
	NoCC = rt.NoCC
	// SWCC is software cache coherency with eager release.
	SWCC = rt.SWCC
	// SWCCLazy is software cache coherency with lazy release.
	SWCCLazy = rt.SWCCLazy
	// DSM is distributed shared memory over the write-only NoC.
	DSM = rt.DSM
	// SPM is scratch-pad staging.
	SPM = rt.SPM
)

// BackendNames lists the selectable backends.
func BackendNames() []string { return append([]string(nil), rt.Backends...) }

// BackendByName returns a backend by name.
func BackendByName(name string) (Backend, error) { return rt.ByName(name) }

// AdaptWordBackend lifts a word-granular backend to the ranged Backend
// interface: ReadRange/WriteRange lower to one Read32/Write32 per word,
// so v1 backends keep working unchanged under the v2 annotation API.
func AdaptWordBackend(b WordBackend) Backend { return rt.AdaptWordBackend(b) }

// NewRecorder attaches a model recorder to r (call before Alloc).
func NewRecorder(r *Runtime) *Recorder { return rt.NewRecorder(r) }

// NewTrace returns an event trace; assign it to Runtime.Tracer before
// spawning workers, then export with WriteCSV or WriteChrome.
func NewTrace(limit int) *Trace { return trace.New(limit) }

// NewScopeRO opens a read-only scope (entry_ro); close with Close.
func NewScopeRO(c *Ctx, o *Object) ScopeRO { return rt.NewScopeRO(c, o) }

// NewScopeX opens an exclusive scope (entry_x); close with Close.
func NewScopeX(c *Ctx, o *Object) ScopeX { return rt.NewScopeX(c, o) }

// ---- Workloads and experiments (Section VI) ----

type (
	// App is a runnable workload.
	App = workloads.App
	// Result is one measured run.
	Result = workloads.Result
	// ServiceMetrics are the open-loop measurements of a service workload
	// run (Result.Service): offered/completed requests, the exact latency
	// histogram, and the per-interval time-series.
	ServiceMetrics = stats.Service
	// LatencyHist is the exact deterministic latency histogram backing
	// ServiceMetrics: fixed log-spaced buckets, integer counts, quantile
	// extraction with a bounded relative error.
	LatencyHist = stats.Hist
	// Experiment is one table/figure reproduction.
	Experiment = exp.Experiment
	// ExpOptions selects experiment scale.
	ExpOptions = exp.Options
)

// Workload constructors at the paper's evaluation sizes.
var (
	NewRadiosity = workloads.DefaultRadiosity
	NewRaytrace  = workloads.DefaultRaytrace
	NewVolrend   = workloads.DefaultVolrend
	NewMFifo     = workloads.DefaultMFifo
	NewMotionEst = workloads.DefaultMotionEst
	NewMsgPass   = workloads.DefaultMsgPass
	// NewBulkCopy is the transfer-granularity microbenchmark of the
	// bulk-ablation experiment (block-granular; set Chunk to 1 for the
	// word-granular twin).
	NewBulkCopy = workloads.DefaultBulkCopy
	// Open-loop service scenarios: deterministic Poisson arrivals at a
	// configurable offered load, measured by Result.Service.
	NewServer  = workloads.DefaultServer
	NewKVStore = workloads.DefaultKVStore
	NewStream  = workloads.DefaultStream
)

// SetOfferedLoad overrides the offered load (requests per kilocycle) on a
// service workload instance; it reports false for closed-loop workloads,
// which have no load knob.
func SetOfferedLoad(app App, load float64) bool { return workloads.SetLoad(app, load) }

// RunApp executes a workload on a fresh system with the named backend.
func RunApp(app App, cfg Config, backend string) (*Result, error) {
	return workloads.Run(app, cfg, backend)
}

// RunAppPlaced is RunApp with a per-object placement table: object names
// (exact, or trailing-* prefix globs) route to named backends, everything
// else to the run's default backend.
func RunAppPlaced(app App, cfg Config, backend string, place map[string]string) (*Result, error) {
	return workloads.RunPlaced(app, cfg, backend, place)
}

// RunAppTraced is RunApp with an event tracer attached.
func RunAppTraced(app App, cfg Config, backend string, limit int) (*Result, *Trace, error) {
	return workloads.RunTraced(app, cfg, backend, limit)
}

// AppByName returns a fresh workload instance by name (see AppNames).
func AppByName(name string) (App, bool) { return workloads.ByName(name) }

// AppNames lists the runnable workloads.
func AppNames() []string { return append([]string(nil), workloads.Names...) }

// ---- Parallel sweeps ----

type (
	// SweepSpec declares a sweep grid: apps × backends × tile counts ×
	// NoC topologies, run concurrently on a worker pool with results
	// merged in deterministic grid order.
	SweepSpec = sweep.Spec
	// SweepCell identifies one grid point.
	SweepCell = sweep.Cell
	// SweepRow is one measured cell, flattened for JSON/CSV emission.
	SweepRow = sweep.Row
	// SweepTable is a completed sweep; WriteJSON and WriteCSV emit it.
	SweepTable = sweep.Table
	// NoCTopology selects the interconnect shape of a swept system.
	NoCTopology = noc.Topology
)

// NoC topologies for SweepSpec.Topos. Cluster topologies are built with
// ClusterTopo or parsed from "cluster:<local>x<global>" specs.
var (
	TopoRing = noc.TopoRing
	TopoMesh = noc.TopoMesh
)

// ClusterTopo returns the hierarchical NoC topology: crossbar clusters of
// local tiles each, joined by a global ring ("ring") or mesh ("mesh")
// backbone.
func ClusterTopo(local int, global string) (NoCTopology, error) {
	return noc.ParseTopology(fmt.Sprintf("cluster:%dx%s", local, global))
}

// Sweep runs every cell of the grid on a worker pool (Workers=0 means
// GOMAXPROCS) and returns the merged table. The emitted bytes are
// identical for any worker count: each cell's simulation is deterministic
// and rows are merged by grid index.
func Sweep(spec SweepSpec) (*SweepTable, error) { return sweep.Run(spec) }

// SweepSpecHash returns the stable content hash of a declarative sweep
// grid (defaults expanded, so equivalent spellings collide); specs that
// carry code (Make or Configure hooks) are not content-addressable and
// return an error.
func SweepSpecHash(spec SweepSpec) (string, error) { return spec.Hash() }

// ParseTopology converts "ring", "mesh" or "cluster:<local>x<global>" to a
// NoCTopology.
func ParseTopology(s string) (NoCTopology, error) { return noc.ParseTopology(s) }

// ScaledApp is AppByName with an optional CI-sized configuration (the
// "small" experiment scale).
func ScaledApp(name string, small bool) (App, bool) { return workloads.Scaled(name, small) }

// ---- Continuous benchmarking ----

type (
	// BenchSpec declares a benchmark run: a named suite of declarative
	// entries spanning sim workloads, litmus exploration and fuzz
	// campaigns, with repetition control.
	BenchSpec = perf.Spec
	// BenchEntry is one benchmark of a suite.
	BenchEntry = perf.Entry
	// BenchReport is a completed benchmark run — the versioned
	// BENCH.json payload.
	BenchReport = perf.Report
	// BenchMeasurement is the measured result of one entry.
	BenchMeasurement = perf.Measurement
	// BenchMetric is one named measurement: exact (deterministic,
	// compared exactly) or host (noisy, compared by threshold).
	BenchMetric = perf.Metric
	// BenchComparison is a report diff with per-metric classifications.
	BenchComparison = perf.Comparison
	// BenchDelta is the comparison of one metric of one entry.
	BenchDelta = perf.Delta
)

// BenchSchema is the BENCH.json schema version.
const BenchSchema = perf.Schema

// BenchRun executes every entry of the suite and returns the aggregated
// report: host ns/op, allocs/op and bytes/op (min/median/stddev over the
// repetitions) plus the entry's exact metrics (sim-cycles, states,
// campaign tallies), which must agree across repetitions.
func BenchRun(spec BenchSpec) (*BenchReport, error) { return perf.Run(spec) }

// BenchSuite returns the named builtin suite ("ci", "full").
func BenchSuite(name string) (BenchSpec, error) { return perf.Suite(name) }

// BenchSuites lists the builtin suite names.
func BenchSuites() []string { return perf.Suites() }

// BenchCompare diffs a candidate report against a baseline: exact metrics
// must match exactly; host metrics regress only past the relative
// threshold.
func BenchCompare(base, cand *BenchReport, threshold float64) (*BenchComparison, error) {
	return perf.Compare(base, cand, threshold)
}

// BenchLoadReport reads a BENCH.json file.
func BenchLoadReport(path string) (*BenchReport, error) { return perf.LoadReport(path) }

// BenchParseThreshold accepts "10%" or "0.1" forms.
func BenchParseThreshold(s string) (float64, error) { return perf.ParseThreshold(s) }

// ---- Serving results (pmcd) ----

type (
	// PmcdConfig configures the content-addressed simulation service:
	// worker-pool size, job-queue depth, the two-tier result store, and
	// the fingerprint code-version component.
	PmcdConfig = pmcd.Config
	// PmcdServer is the long-running HTTP/JSON job service over the
	// sweep/litmus/fuzz/bench engines.
	PmcdServer = pmcd.Server
	// PmcdClient is the thin HTTP client of the job service.
	PmcdClient = pmcd.Client
	// PmcdJobSpec is a job submission: exactly one kind set.
	PmcdJobSpec = pmcd.JobSpec
	// PmcdSweepJob declares a sweep-grid job.
	PmcdSweepJob = pmcd.SweepJob
	// PmcdLitmusJob declares an exhaustive litmus exploration job.
	PmcdLitmusJob = pmcd.LitmusJob
	// PmcdFuzzJob declares a seeded differential fuzz campaign job.
	PmcdFuzzJob = pmcd.FuzzJob
	// PmcdBenchJob declares a benchmark-entry job (exact metrics only).
	PmcdBenchJob = pmcd.BenchJob
	// PmcdJobStatus is the externally visible state of a job.
	PmcdJobStatus = pmcd.JobStatus
	// PmcdStats is the service-wide counter snapshot.
	PmcdStats = pmcd.Stats
	// PmcdStore is the two-tier (memory LRU over content-addressed disk)
	// result store.
	PmcdStore = pmcd.Store
	// PmcdStoreStats are the store's hit/miss counters.
	PmcdStoreStats = pmcd.StoreStats
	// PmcdGCStats summarizes one Store.GC pass over the disk tier.
	PmcdGCStats = pmcd.GCStats
	// BenchCacheStats counts cache effectiveness of a cache-backed
	// benchmark run.
	BenchCacheStats = pmcd.BenchCacheStats
)

// NewPmcdServer assembles a job service (opening its result store) and
// starts the worker pool; Close it to drain.
func NewPmcdServer(cfg PmcdConfig) (*PmcdServer, error) { return pmcd.New(cfg) }

// NewPmcdClient returns a client for the job service at base
// (e.g. "http://localhost:8433").
func NewPmcdClient(base string) *PmcdClient { return pmcd.NewClient(base) }

// PmcdCodeVersion returns the build's code-version fingerprint component:
// the VCS revision stamp, or "dev" without one.
func PmcdCodeVersion() string { return pmcd.CodeVersion() }

// PmcdFingerprint returns the content address of a job's result — the
// hex SHA-256 over the canonical (default-expanded, naming-invariant)
// job spec and the code version.
func PmcdFingerprint(spec PmcdJobSpec, codeVersion string) (string, error) {
	return pmcd.Fingerprint(spec, codeVersion)
}

// OpenPmcdStore opens a result store over dir ("" = memory-only) with an
// in-memory LRU tier of memEntries results (0 = 128).
func OpenPmcdStore(dir string, memEntries int) (*PmcdStore, error) {
	return pmcd.Open(dir, memEntries)
}

// BenchRunCached is BenchRun with a content-addressed result cache:
// entries whose (spec, reps, cacheKey) address is stored are served from
// cache — exact metrics identical to a fresh run by determinism — and
// fresh measurements populate the store. cacheKey defaults to
// PmcdCodeVersion(); CI passes a source-content hash.
func BenchRunCached(spec BenchSpec, store *PmcdStore, cacheKey string) (*BenchReport, BenchCacheStats, error) {
	return pmcd.BenchCached(spec, store, cacheKey)
}

// Experiments returns every registered table/figure experiment.
func Experiments() []Experiment { return exp.All() }

// RunExperiment runs one experiment by ID (e.g. "fig8"), writing its report.
func RunExperiment(w io.Writer, id string, o ExpOptions) error {
	return exp.RunByID(w, id, o)
}

// RunAllExperiments reproduces every table and figure.
func RunAllExperiments(w io.Writer, o ExpOptions) error { return exp.RunAll(w, o) }

// RenderFig8 prints the stacked breakdown chart for grouped results.
func RenderFig8(w io.Writer, groups map[string][]*Result, order []string) {
	samples := make(map[string][]stats.Sample, len(groups))
	for app, rs := range groups {
		for _, r := range rs {
			samples[app] = append(samples[app], r.Sample())
		}
	}
	stats.RenderFig8(w, samples, order)
}

// Speedup returns b's execution-time improvement over a in percent.
func Speedup(a, b *Result) float64 { return stats.Speedup(a.Cycles, b.Cycles) }

// Motion estimation on scratch-pad memories (Fig. 10 / Section VI-C):
// full-search block matching where every block's search window is read
// hundreds of times. The ScopeRO/ScopeX helpers mirror the paper's C++
// classes: the scope copy-in is the entry_ro, the destructor (Close) the
// exit. SPM staging pays the copy once per scope and then samples at
// single-cycle latency with all readers concurrent.
package main

import (
	"fmt"
	"log"

	"pmc"
)

func main() {
	fmt.Println("motion estimation (Fig. 10): full search, 8x6 blocks, +-4 px window")
	var base *pmc.Result
	fmt.Printf("%-8s %12s %10s\n", "backend", "cycles", "speedup")
	for _, backend := range []string{"nocc", "swcc", "spm"} {
		me := pmc.NewMotionEst()
		me.BlocksX, me.BlocksY, me.Search = 8, 6, 4
		cfg := pmc.DefaultConfig()
		cfg.Tiles = 8
		res, err := pmc.RunApp(me, cfg, backend)
		if err != nil {
			log.Fatalf("%s: %v", backend, err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-8s %12d %9.2fx\n", backend, res.Cycles,
			float64(base.Cycles)/float64(res.Cycles))
	}

	fmt.Println("\nscoped-annotation flavour (the paper's Fig. 10 classes):")
	demoScopes()
}

// demoScopes shows the ScopeRO/ScopeX API on a tiny two-tile system.
func demoScopes() {
	cfg := pmc.DefaultConfig()
	cfg.Tiles = 2
	sys, err := pmc.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := pmc.NewRuntime(sys, pmc.SPM())
	window := r.Alloc("window", 256)
	vector := r.Alloc("vector", 8)
	r.InitObject(window, []uint32{9, 8, 7, 6, 5, 4, 3, 2, 1})

	r.Spawn(0, "worker", func(c *pmc.Ctx) {
		win := pmc.NewScopeRO(c, window) // entry_ro: copies into the SPM
		defer win.Close()                // exit_ro: discards the copy
		vec := pmc.NewScopeX(c, vector)  // entry_x
		defer vec.Close()                // exit_x: copies back to SDRAM

		best := uint32(0xffffffff)
		var bestAt int
		for off := 0; off < 8; off++ {
			v := win.Read32(4 * off) // single-cycle SPM reads
			if v < best {
				best, bestAt = v, off
			}
		}
		vec.Write32(0, uint32(bestAt))
		vec.Write32(4, best)
	})
	if err := r.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best sample at offset %d (value %d), computed entirely in the SPM copy\n",
		r.ReadObjectWord(vector, 0), r.ReadObjectWord(vector, 1))
}

// Quickstart: the paper's Fig. 6 message-passing program written once
// against the PMC annotation API and executed on every memory architecture
// of Table II. The same source delivers the payload correctly everywhere —
// "porting applications to hardware with another memory model becomes just
// a compiler setting".
package main

import (
	"fmt"
	"log"

	"pmc"
)

func main() {
	fmt.Println("PMC quickstart: annotated message passing on every backend")
	fmt.Printf("%-10s %10s %8s\n", "backend", "cycles", "value")
	for _, backend := range pmc.BackendNames() {
		cycles, got, err := run(backend)
		if err != nil {
			log.Fatalf("%s: %v", backend, err)
		}
		fmt.Printf("%-10s %10d %8d\n", backend, cycles, got)
		if got != 42 {
			log.Fatalf("%s delivered %d, want 42", backend, got)
		}
	}
	fmt.Println("\nall backends delivered 42: the application is independent of the")
	fmt.Println("hardware's memory model, as the PMC approach promises.")
}

func run(backend string) (pmc.Time, uint32, error) {
	cfg := pmc.DefaultConfig()
	cfg.Tiles = 2
	sys, err := pmc.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	b, err := pmc.BackendByName(backend)
	if err != nil {
		return 0, 0, err
	}
	r := pmc.NewRuntime(sys, b)
	x := r.Alloc("X", 4)
	flag := r.Alloc("flag", 4)

	var got uint32
	// Process 1 (Fig. 6, lines 1-9).
	r.Spawn(0, "writer", func(c *pmc.Ctx) {
		c.EntryX(x)
		c.Write32(x, 0, 42)
		c.Fence()
		c.ExitX(x)

		c.EntryX(flag)
		c.Write32(flag, 0, 1)
		c.Flush(flag)
		c.ExitX(flag)
	})
	// Process 2 (Fig. 6, lines 10-18).
	r.Spawn(1, "reader", func(c *pmc.Ctx) {
		for {
			c.EntryRO(flag)
			poll := c.Read32(flag, 0)
			c.ExitRO(flag)
			if poll == 1 {
				break
			}
			c.Compute(8)
		}
		c.Fence()

		c.EntryX(x)
		got = c.Read32(x, 0)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		return 0, 0, err
	}
	return sys.K.Now(), got, nil
}

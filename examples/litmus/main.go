// Litmus exploration: every example program of the paper run through the
// exhaustive PMC-model explorer, demonstrating the model-level claims —
// Fig. 1 is broken (a stale read is observable), fences alone cannot fix
// it, the annotated Fig. 6 program has exactly one outcome, and data-race
// free programs behave sequentially consistently.
package main

import (
	"fmt"
	"log"

	"pmc"
)

func main() {
	fmt.Print(pmc.RenderTableI())
	fmt.Println()
	for _, p := range pmc.LitmusCatalog() {
		res, err := pmc.Explore(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d states):\n%s\n", p.Name, res.States, res)
	}
}

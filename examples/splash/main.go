// SPLASH-2 case study (Fig. 8): the three application substitutes on the
// 32-core system, uncached shared data ("no CC") versus transparent
// software cache coherency ("SWCC") — the paper's headline experiment,
// rendered as a stacked execution-time breakdown.
//
// Pass -small for a quick run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pmc"
)

func main() {
	smallFlag := flag.Bool("small", false, "run the quick configuration")
	tiles := flag.Int("tiles", 32, "tile count")
	flag.Parse()

	scale := "full"
	if *smallFlag {
		scale = "small"
	}
	fmt.Printf("Fig. 8 reproduction at %s scale on %d tiles\n\n", scale, *tiles)
	err := pmc.RunExperiment(os.Stdout, "fig8", pmc.ExpOptions{Tiles: *tiles, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
}

// FIFO streaming: the multiple-reader, multiple-writer FIFO of Fig. 9
// driving a small streaming pipeline, compared across memory architectures.
// On the DSM backend the read/write pointers are polled from local memory
// only, so the FIFO's control traffic does not load the interconnect — the
// property Section VI-B highlights for streaming applications.
package main

import (
	"fmt"
	"log"

	"pmc"
)

func main() {
	fmt.Println("multi-reader/multi-writer FIFO (Fig. 9): 2 writers -> 2 readers, 64 items each")
	fmt.Printf("%-10s %10s %12s %12s\n", "backend", "cycles", "cycles/item", "noc msgs")
	for _, backend := range pmc.BackendNames() {
		fifo := pmc.NewMFifo()
		fifo.Items = 64
		cfg := pmc.DefaultConfig()
		cfg.Tiles = 8
		res, err := pmc.RunApp(fifo, cfg, backend)
		if err != nil {
			log.Fatalf("%s: %v", backend, err)
		}
		items := fifo.Writers * fifo.Items
		fmt.Printf("%-10s %10d %12.0f %12d\n",
			backend, res.Cycles, float64(res.Cycles)/float64(items), res.NoCMessages)
	}
	fmt.Println("\nnote how dsm wins: pointer polls stay in tile-local memory and only the")
	fmt.Println("data and flushed pointers cross the write-only interconnect.")
}

package pmc_test

import (
	"bytes"
	"strings"
	"testing"

	"pmc"
)

// TestPublicQuickstart is the doc-comment example, end to end, through the
// public API only.
func TestPublicQuickstart(t *testing.T) {
	cfg := pmc.DefaultConfig()
	cfg.Tiles = 2
	sys, err := pmc.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := pmc.NewRuntime(sys, pmc.SWCC())
	x := r.Alloc("X", 4)
	flag := r.Alloc("flag", 4)
	var got uint32
	r.Spawn(0, "writer", func(c *pmc.Ctx) {
		s := pmc.NewScopeX(c, x)
		s.Write32(0, 42)
		s.Close()
		c.Fence()
		f := pmc.NewScopeX(c, flag)
		f.Write32(0, 1)
		f.Flush()
		f.Close()
	})
	r.Spawn(1, "reader", func(c *pmc.Ctx) {
		for {
			s := pmc.NewScopeRO(c, flag)
			v := s.Read32(0)
			s.Close()
			if v == 1 {
				break
			}
			c.Compute(8)
		}
		c.Fence()
		s := pmc.NewScopeX(c, x)
		got = s.Read32(0)
		s.Close()
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("reader got %d, want 42", got)
	}
}

func TestPublicModel(t *testing.T) {
	e := pmc.NewExecution()
	x := e.AddLoc("X")
	e.Write(0, x, 1)
	rd := e.Read(0, x, 1)
	if vals := e.ReadableValues(rd.ID); len(vals) != 1 || vals[0] != 1 {
		t.Fatalf("readable = %v", vals)
	}
	if !strings.Contains(pmc.RenderTableI(), "≺S†") {
		t.Fatal("Table I rendering broken")
	}
}

func TestPublicLitmus(t *testing.T) {
	prog, ok := pmc.LitmusByName("fig5-annotated")
	if !ok {
		t.Fatal("catalog missing fig5-annotated")
	}
	res, err := pmc.Explore(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasOutcome("poll=1 rX=42") {
		t.Fatalf("outcomes: %v", res.OutcomeList())
	}
	if len(pmc.LitmusCatalog()) < 6 {
		t.Fatal("catalog too small")
	}
}

func TestPublicWorkloadsAndBackends(t *testing.T) {
	cfg := pmc.DefaultConfig()
	cfg.Tiles = 4
	for _, name := range pmc.BackendNames() {
		if _, err := pmc.BackendByName(name); err != nil {
			t.Fatal(err)
		}
	}
	res, err := pmc.RunApp(pmc.NewMsgPass(), cfg, "dsm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestPublicSweep exercises the exported sweep engine end to end: grid
// expansion, parallel execution, JSON emission, and worker-count
// independence of the emitted bytes.
func TestPublicSweep(t *testing.T) {
	spec := func(workers int) pmc.SweepSpec {
		return pmc.SweepSpec{
			Apps:     []string{"radiosity", "msgpass"},
			Backends: []string{"nocc", "swcc"},
			Tiles:    []int{2, 4},
			Topos:    []pmc.NoCTopology{pmc.TopoRing, pmc.TopoMesh},
			Workers:  workers,
			Make: func(c pmc.SweepCell) (pmc.App, error) {
				app, _ := pmc.ScaledApp(c.App, true)
				return app, nil
			},
		}
	}
	seq, err := pmc.Sweep(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := pmc.Sweep(spec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != 2*2*2*2 {
		t.Fatalf("%d rows, want 16", len(seq.Rows))
	}
	var a, b bytes.Buffer
	if err := seq.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sweep JSON differs between 1 and 4 workers")
	}
	if _, err := pmc.ParseTopology("mesh"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(pmc.Experiments()) < 17 {
		t.Fatalf("only %d experiments registered", len(pmc.Experiments()))
	}
	var buf bytes.Buffer
	if err := pmc.RunExperiment(&buf, "table1", pmc.ExpOptions{Scale: "small"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fence") {
		t.Fatal("table1 output broken")
	}
}

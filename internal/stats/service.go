package stats

import (
	"fmt"
	"io"

	"pmc/internal/sim"
)

// Series is a per-interval time-series of integer counters: completions
// and busy cycles per fixed-width window of simulated time. Like Hist it
// is order-independent (Record only increments integer cells addressed
// by simulated time) and merges element-wise, so it carries the same
// determinism guarantee across worker counts and event-queue kinds.
type Series struct {
	// Interval is the window width in cycles. Fixed at construction;
	// merging series with different intervals is a programming error.
	Interval sim.Time
	// Done[i] counts requests completed in [i*Interval, (i+1)*Interval).
	Done []uint64
	// Busy[i] accumulates handler-busy cycles attributed to window i.
	Busy []uint64
}

// NewSeries returns a series with the given window width (cycles).
func NewSeries(interval sim.Time) *Series {
	if interval <= 0 {
		interval = 1
	}
	return &Series{Interval: interval}
}

func (s *Series) grow(idx int) {
	for len(s.Done) <= idx {
		s.Done = append(s.Done, 0)
		s.Busy = append(s.Busy, 0)
	}
}

// RecordDone counts one completion at time t.
func (s *Series) RecordDone(t sim.Time) {
	idx := int(t / s.Interval)
	s.grow(idx)
	s.Done[idx]++
}

// RecordBusy attributes busy cycles to the window containing t.
func (s *Series) RecordBusy(t sim.Time, cycles sim.Time) {
	idx := int(t / s.Interval)
	s.grow(idx)
	s.Busy[idx] += uint64(cycles)
}

// Merge element-wise adds o into s. Panics if the intervals differ.
func (s *Series) Merge(o *Series) {
	if o == nil {
		return
	}
	if o.Interval != s.Interval {
		panic(fmt.Sprintf("stats: merging series with intervals %d and %d", s.Interval, o.Interval))
	}
	s.grow(len(o.Done) - 1)
	for i := range o.Done {
		s.Done[i] += o.Done[i]
		s.Busy[i] += o.Busy[i]
	}
}

// Throughput returns window i's completions per kilocycle.
func (s *Series) Throughput(i int) float64 {
	if i < 0 || i >= len(s.Done) || s.Interval == 0 {
		return 0
	}
	return 1000 * float64(s.Done[i]) / float64(s.Interval)
}

// Utilization returns window i's busy cycles as a fraction of
// cores×Interval capacity.
func (s *Series) Utilization(i, cores int) float64 {
	if i < 0 || i >= len(s.Busy) || cores <= 0 || s.Interval == 0 {
		return 0
	}
	return float64(s.Busy[i]) / (float64(cores) * float64(s.Interval))
}

// Service bundles the open-loop service metrics of one run: what load
// was offered, what completed, the exact latency distribution, and the
// per-interval series. Every field is integer-deterministic, so two runs
// of the same configuration produce byte-identical Services regardless
// of sweep worker count or event-queue kind.
type Service struct {
	// Offered is the number of requests in the arrival schedule.
	Offered uint64
	// Completed is the number of requests that finished.
	Completed uint64
	// Latency is the exact histogram of per-request simulated latency
	// (completion cycle − scheduled arrival cycle).
	Latency *Hist
	// Series is the per-interval completion/busy time-series.
	Series *Series
}

// NewService returns an empty Service with the given series interval.
func NewService(interval sim.Time) *Service {
	return &Service{Latency: &Hist{}, Series: NewSeries(interval)}
}

// Merge folds o into s (element-wise on every component).
func (s *Service) Merge(o *Service) {
	if o == nil {
		return
	}
	s.Offered += o.Offered
	s.Completed += o.Completed
	s.Latency.Merge(o.Latency)
	s.Series.Merge(o.Series)
}

// P50 and P99 are the tail-latency quantiles in cycles.
func (s *Service) P50() uint64 { return s.Latency.Quantile(0.50) }
func (s *Service) P99() uint64 { return s.Latency.Quantile(0.99) }

// Throughput returns completions per kilocycle over the makespan — the
// saturation throughput when the offered load exceeds capacity.
func (s *Service) Throughput(makespan sim.Time) float64 {
	if makespan == 0 {
		return 0
	}
	return 1000 * float64(s.Completed) / float64(makespan)
}

// Render prints a compact service summary for experiment reports.
func (s *Service) Render(w io.Writer, makespan sim.Time) {
	fmt.Fprintf(w, "  requests %d/%d  p50 %d  p99 %d  max %d cycles  throughput %.3f req/kcycle\n",
		s.Completed, s.Offered, s.P50(), s.P99(), s.Latency.Max(), s.Throughput(makespan))
}

package stats

import (
	"bytes"
	"strings"
	"testing"

	"pmc/internal/sim"
)

// TestBucketBoundaries pins the fixed bucket layout: values 0..7 are
// bucket-exact, each octave above splits into 8 linear sub-buckets, and
// bucketUpper is the inverse (largest value mapping back to the bucket).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v     uint64
		idx   int
		upper uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{7, 7, 7},
		{8, 8, 8},    // first octave [8,16): width-1 sub-buckets
		{15, 15, 15}, // last exact value
		{16, 16, 17}, // octave [16,32): width-2 sub-buckets
		{17, 16, 17},
		{18, 17, 19},
		{31, 23, 31},
		{32, 24, 35}, // octave [32,64): width-4
		{35, 24, 35},
		{36, 25, 39},
		{63, 31, 63},
		{1024, 8 + 7*8, 1151}, // octave [1024,2048): width-128
		{1151, 8 + 7*8, 1151},
		{1152, 8 + 7*8 + 1, 1279},
		{1 << 62, 8 + 59*8, 1<<62 + 1<<59 - 1},
		{^uint64(0), histBuckets - 1, ^uint64(0)},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.idx)
		}
		if got := bucketUpper(tc.idx); got != tc.upper {
			t.Errorf("bucketUpper(%d) = %d, want %d", tc.idx, got, tc.upper)
		}
	}
	// Structural invariants over the full layout: upper bounds strictly
	// increase, and every upper bound maps back to its own bucket.
	prev := ^uint64(0)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if i > 0 && u <= prev {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, u, prev)
		}
		if got := bucketIndex(u); got != i {
			t.Fatalf("bucketUpper(%d)=%d maps back to bucket %d", i, u, got)
		}
		prev = u
	}
}

// TestQuantileEdges drives Quantile through the edge ranks on exact
// (small-value) buckets where the answer must be precise.
func TestQuantileEdges(t *testing.T) {
	cases := []struct {
		name   string
		values []uint64
		q      float64
		want   uint64
	}{
		{"empty", nil, 0.5, 0},
		{"single-q0", []uint64{5}, 0, 5},
		{"single-q1", []uint64{5}, 1, 5},
		{"pair-median", []uint64{1, 3}, 0.5, 1}, // rank ceil(0.5*2)=1
		{"pair-p99", []uint64{1, 3}, 0.99, 3},   // rank 2
		{"ten-p50", []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.5, 4},
		{"ten-p99", []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.99, 9},
		{"ten-p10", []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.1, 0},
		{"repeated", []uint64{4, 4, 4, 4, 7}, 0.5, 4},
		{"q1-clamps-to-max", []uint64{100, 200}, 1, 200}, // upper bound 207 clamped to observed max
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Hist
			for _, v := range tc.values {
				h.Add(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

// TestQuantileErrorBound: above the exact range, the reported quantile
// over-reports by at most one sub-bucket width (12.5 % of the value).
func TestQuantileErrorBound(t *testing.T) {
	var h Hist
	r := uint32(12345)
	var maxV uint64
	for i := 0; i < 1000; i++ {
		r ^= r << 13
		r ^= r >> 17
		r ^= r << 5
		v := uint64(r % 100000)
		h.Add(v)
		if v > maxV {
			maxV = v
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if got > maxV {
			t.Errorf("Quantile(%g) = %d exceeds observed max %d", q, got, maxV)
		}
		// The true rank value is ≥ the lower bound of the chosen bucket,
		// so got/(1+1/8) is a lower bound on the true quantile.
		if float64(got) > 1.125*float64(maxV) {
			t.Errorf("Quantile(%g) = %d violates 12.5%% bound (max %d)", q, got, maxV)
		}
	}
}

// TestMergeAssociativity: merging in any grouping/order yields identical
// histograms — the property the sweep's worker-count determinism rests on.
func TestMergeAssociativity(t *testing.T) {
	mk := func(seed uint32, n int) *Hist {
		h := &Hist{}
		r := seed
		for i := 0; i < n; i++ {
			r ^= r << 13
			r ^= r >> 17
			r ^= r << 5
			h.Add(uint64(r % 5000))
		}
		return h
	}
	a, b, c := mk(1, 100), mk(2, 57), mk(3, 333)

	// (a ⊕ b) ⊕ c
	left := &Hist{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	// a ⊕ (b ⊕ c)
	bc := &Hist{}
	bc.Merge(b)
	bc.Merge(c)
	right := &Hist{}
	right.Merge(a)
	right.Merge(bc)
	// c ⊕ b ⊕ a (commutativity)
	rev := &Hist{}
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)

	for _, o := range []*Hist{right, rev} {
		if *left != *o {
			t.Fatalf("merge grouping/order changed the histogram:\n%v\nvs\n%v", *left, *o)
		}
	}
	if left.Count() != 490 {
		t.Fatalf("merged count %d, want 490", left.Count())
	}
	if left.Fingerprint() != right.Fingerprint() || left.Fingerprint() != rev.Fingerprint() {
		t.Fatal("fingerprints differ across merge orders")
	}
	// Merging an empty histogram is the identity.
	id := &Hist{}
	id.Merge(left)
	id.Merge(&Hist{})
	id.Merge(nil)
	if *id != *left {
		t.Fatal("empty/nil merge not the identity")
	}
}

func TestHistStats(t *testing.T) {
	var h Hist
	for _, v := range []uint64{10, 20, 30} {
		h.Add(v)
	}
	if h.Min() != 10 || h.Max() != 30 || h.Count() != 3 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %f, want 20", h.Mean())
	}
	var empty Hist
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram stats not zero")
	}
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "≤") {
		t.Fatalf("Render produced no buckets:\n%s", buf.String())
	}
}

func TestSeriesMergeAndReaders(t *testing.T) {
	a := NewSeries(100)
	a.RecordDone(0)
	a.RecordDone(99)
	a.RecordDone(250)
	a.RecordBusy(250, 50)
	b := NewSeries(100)
	b.RecordDone(110)
	b.RecordBusy(20, 80)
	a.Merge(b)
	if want := []uint64{2, 1, 1}; len(a.Done) != 3 || a.Done[0] != want[0] || a.Done[1] != want[1] || a.Done[2] != want[2] {
		t.Fatalf("merged Done = %v, want %v", a.Done, want)
	}
	if a.Busy[0] != 80 || a.Busy[2] != 50 {
		t.Fatalf("merged Busy = %v", a.Busy)
	}
	if got := a.Throughput(0); got != 20 { // 2 completions / 100 cycles = 20/kcycle
		t.Fatalf("Throughput(0) = %f, want 20", got)
	}
	if got := a.Utilization(0, 4); got != 0.2 { // 80 busy / (4 cores * 100)
		t.Fatalf("Utilization(0,4) = %f, want 0.2", got)
	}
	if a.Throughput(99) != 0 || a.Utilization(-1, 4) != 0 {
		t.Fatal("out-of-range readers must return 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched intervals must panic")
		}
	}()
	a.Merge(NewSeries(50))
}

func TestServiceMergeAndQuantiles(t *testing.T) {
	s := NewService(1000)
	s.Offered = 10
	for i := 0; i < 8; i++ {
		s.Latency.Add(uint64(10 + i))
		s.Series.RecordDone(sim.Time(i * 300))
		s.Completed++
	}
	o := NewService(1000)
	o.Offered = 2
	o.Completed = 2
	o.Latency.Add(500)
	o.Latency.Add(7)
	o.Series.RecordDone(2500)
	s.Merge(o)
	if s.Offered != 12 || s.Completed != 10 {
		t.Fatalf("merged offered/completed = %d/%d", s.Offered, s.Completed)
	}
	if got := s.P50(); got != 13 { // rank 5 of {7,10..17,500}
		t.Fatalf("P50 = %d, want 13", got)
	}
	if got := s.P99(); got != 500 { // rank 10 → bucket of 500, clamped to max
		t.Fatalf("P99 = %d, want 500", got)
	}
	if got := s.Throughput(5000); got != 2 { // 10 per 5000 cycles
		t.Fatalf("Throughput = %f, want 2", got)
	}
	var buf bytes.Buffer
	s.Render(&buf, 5000)
	for _, want := range []string{"p50", "p99", "req/kcycle", "10/12"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("service summary missing %q:\n%s", want, buf.String())
		}
	}
}

package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
)

// Hist is an exact, deterministic latency histogram over uint64 values
// (simulated cycles). The bucket layout is fixed — HDR-style log-spaced:
// values 0..7 get one bucket each, and every power-of-two octave above
// that is split into 8 linear sub-buckets, so the relative quantization
// error is bounded by 1/8 at every magnitude. With fixed boundaries and
// integer counts, two histograms built from the same multiset of values
// are identical regardless of insertion order, and Merge is a plain
// element-wise add — the properties the sweep's any-worker-count
// byte-identity guarantee needs.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	min    uint64
	max    uint64
	sum    uint64
}

const (
	// 8 exact buckets for 0..7, then 8 sub-buckets for each of the 61
	// octaves [2^3,2^4) .. [2^63,2^64).
	histBuckets = 8 + 61*8
)

// bucketIndex maps a value to its fixed bucket.
func bucketIndex(v uint64) int {
	if v < 8 {
		return int(v)
	}
	msb := bits.Len64(v) - 1        // 3..63
	sub := (v >> (msb - 3)) & 7     // top-3 bits below the leading one
	return 8 + (msb-3)*8 + int(sub) // octave group, linear sub-bucket
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) uint64 {
	if i < 8 {
		return uint64(i)
	}
	g := (i - 8) / 8   // octave group: leading bit at position g+3
	sub := (i - 8) % 8 // linear sub-bucket within the octave
	width := uint64(1) << g
	lo := uint64(1)<<(g+3) + uint64(sub)*width
	return lo + width - 1
}

// Add records one value.
func (h *Hist) Add(v uint64) {
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge adds o's counts into h (element-wise; associative and
// commutative, so any merge order yields the same histogram).
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.n }

// Min and Max return the exact extremes (0 when empty).
func (h *Hist) Min() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the value at quantile q in [0,1]: the upper bound of
// the bucket containing the rank-⌈q·n⌉ value (clamped to the observed
// max, so Quantile(1) is exact). Values below 8 and within octave 3 are
// bucket-exact; above that the result over-reports by at most one bucket
// width (≤ 12.5 % of the value). Deterministic: a pure function of the
// integer bucket counts.
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Fingerprint folds the bucket counts into a 32-bit digest (FNV-1a over
// index/count pairs of non-empty buckets). Two histograms fingerprint
// equal iff their counts are identical — the compact determinism witness
// sweep rows and experiments compare across worker counts.
func (h *Hist) Fingerprint() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	fp := uint32(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			fp ^= uint32(v>>s) & 0xff
			fp *= prime
		}
	}
	for i, c := range h.counts {
		if c != 0 {
			mix(uint64(i))
			mix(c)
		}
	}
	return fp
}

// Render prints the non-empty buckets with a proportional bar — a
// human-readable dump for experiment reports.
func (h *Hist) Render(w io.Writer) {
	if h.n == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		barLen := int(c * 40 / peak)
		fmt.Fprintf(w, "  ≤%10d %8d %s\n", bucketUpper(i), c, strings40[:barLen])
	}
}

const strings40 = "########################################"

package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pmc/internal/sim"
	"pmc/internal/soc"
)

func fakeSample(app, backend string, cycles sim.Time) Sample {
	return Sample{
		Label:  app + " (" + backend + ")",
		Cycles: cycles,
		Stats: soc.TileStats{
			Busy:            cycles * 2,
			IStall:          cycles,
			SharedReadStall: cycles,
			FlushInstrs:     10,
		},
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	s := fakeSample("app", "nocc", 1000)
	b := NewBreakdown(s, s.Cycles)
	var sum float64
	for _, f := range b.Frac {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %f, want 1", sum)
	}
	if b.Norm != 1 {
		t.Fatalf("self-normalized bar = %f, want 1", b.Norm)
	}
}

func TestBreakdownNormalization(t *testing.T) {
	ref := fakeSample("app", "nocc", 1000)
	faster := fakeSample("app", "swcc", 750)
	b := NewBreakdown(faster, ref.Cycles)
	if b.Norm != 0.75 {
		t.Fatalf("norm = %f, want 0.75", b.Norm)
	}
}

// TestBreakdownZeroReference is the regression test for the unguarded
// division: a zero-cycle reference run used to put +Inf (or NaN for a
// zero-cycle run) into Norm, which then poisoned the rendered bars.
func TestBreakdownZeroReference(t *testing.T) {
	s := fakeSample("app", "swcc", 750)
	b := NewBreakdown(s, 0)
	if math.IsInf(b.Norm, 0) || math.IsNaN(b.Norm) || b.Norm != 0 {
		t.Fatalf("zero reference: Norm = %f, want 0", b.Norm)
	}
	// A zero-cycle run against a zero reference must not yield NaN either.
	z := fakeSample("app", "nocc", 0)
	b = NewBreakdown(z, 0)
	if math.IsNaN(b.Norm) || b.Norm != 0 {
		t.Fatalf("zero/zero: Norm = %f, want 0", b.Norm)
	}
	// And the rendered bar must stay finite (empty), not explode.
	if got := bar(b); got != "" {
		t.Fatalf("zero/zero bar = %q, want empty", got)
	}
}

func TestUtilizationMapping(t *testing.T) {
	// The Fig. 8 mapping: core utilization = Busy + LockWait. A spinning
	// core counts as utilized, exactly as NewBreakdown's Frac[0].
	st := soc.TileStats{Busy: 600, LockWait: 200, IStall: 100, WriteStall: 100}
	if got := Utilization(st); got != 0.8 {
		t.Fatalf("Utilization = %f, want 0.8 (Busy+LockWait)/Total", got)
	}
	b := NewBreakdown(Sample{Stats: st, Cycles: 1000}, 1000)
	if b.Frac[0] != Utilization(st) {
		t.Fatalf("Utilization (%f) disagrees with Breakdown.Frac[0] (%f)", Utilization(st), b.Frac[0])
	}
	if got := Utilization(soc.TileStats{}); got != 0 {
		t.Fatalf("empty stats: Utilization = %f, want 0", got)
	}
}

func TestRenderFig8(t *testing.T) {
	groups := map[string][]Sample{
		"app": {fakeSample("app", "nocc", 1000), fakeSample("app", "swcc", 800)},
	}
	var buf bytes.Buffer
	RenderFig8(&buf, groups, []string{"app"})
	out := buf.String()
	for _, want := range []string{"app (nocc)", "app (swcc)", "100.0%", "80.0%", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig8 output missing %q:\n%s", want, out)
		}
	}
	// The reference bar should be ~50 chars of glyphs; the faster bar
	// proportionally shorter.
	lines := strings.Split(out, "\n")
	var refBar, fastBar int
	for _, l := range lines {
		if strings.Contains(l, "(nocc)") {
			refBar = strings.Count(l, "U") + strings.Count(l, "i") + strings.Count(l, "s")
		}
		if strings.Contains(l, "(swcc)") {
			fastBar = strings.Count(l, "U") + strings.Count(l, "i") + strings.Count(l, "s")
		}
	}
	if refBar < 45 || refBar > 55 {
		t.Errorf("reference bar length %d, want ~50", refBar)
	}
	if fastBar >= refBar {
		t.Errorf("faster run's bar (%d) not shorter than reference (%d)", fastBar, refBar)
	}
}

// TestBarCumulativeRounding is the regression test for the rounding drift:
// rounding each category independently let the rendered bar length differ
// from round(Norm*50) by up to one char per category (6 worst case). The
// cumulative scheme pins the total exactly.
func TestBarCumulativeRounding(t *testing.T) {
	cases := []struct {
		name string
		frac [6]float64
		norm float64
	}{
		// Six equal sixths: independent rounding gives int(50/6+0.5)=8
		// per category = 48 chars; the true total is 50.
		{"equal-sixths", [6]float64{1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6}, 1},
		// All categories just below the .5 rounding threshold: independent
		// rounding truncates every one of them.
		{"all-just-under", [6]float64{0.169, 0.169, 0.169, 0.169, 0.169, 0.155}, 1},
		// All just above the threshold: independent rounding inflates all.
		{"all-just-over", [6]float64{0.171, 0.171, 0.171, 0.171, 0.171, 0.145}, 1},
		// Scaled bars drift too.
		{"scaled", [6]float64{0.3, 0.3, 0.1, 0.1, 0.1, 0.1}, 0.73},
		{"tiny-tail", [6]float64{0.97, 0.006, 0.006, 0.006, 0.006, 0.006}, 1},
		{"zero-heavy", [6]float64{0.5, 0, 0, 0, 0, 0.5}, 0.41},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := Breakdown{Frac: tc.frac, Norm: tc.norm}
			got := len(bar(b))
			var sum float64
			for _, f := range tc.frac {
				sum += f
			}
			want := int(sum*tc.norm*50 + 0.5)
			if got != want {
				t.Fatalf("bar length %d, want round(%.3f*%.2f*50) = %d", got, sum, tc.norm, want)
			}
		})
	}
}

// Property-style sweep over adversarial fraction vectors: the total length
// must always equal the rounded normalized height, and per-segment lengths
// must never be negative.
func TestBarLengthInvariant(t *testing.T) {
	rng := uint32(0x9e3779b9)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return float64(rng%1000) / 1000
	}
	for trial := 0; trial < 500; trial++ {
		var raw [6]float64
		var sum float64
		for i := range raw {
			raw[i] = next()
			sum += raw[i]
		}
		if sum == 0 {
			continue
		}
		var frac [6]float64
		var cum float64
		for i := range raw {
			frac[i] = raw[i] / sum
			cum += frac[i] // same accumulation order as bar()
		}
		norm := 0.05 + 2*next()
		b := Breakdown{Frac: frac, Norm: norm}
		if got, want := len(bar(b)), int(cum*norm*50+0.5); got != want {
			t.Fatalf("trial %d: bar length %d, want %d (frac=%v norm=%f)", trial, got, want, frac, norm)
		}
	}
}

func TestRenderExtended(t *testing.T) {
	var buf bytes.Buffer
	RenderExtended(&buf, []Sample{fakeSample("x", "dsm", 500)})
	if !strings.Contains(buf.String(), "x (dsm)") {
		t.Fatalf("extended table missing run label:\n%s", buf.String())
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1000, 780); got < 21.9 || got > 22.1 {
		t.Fatalf("speedup = %f, want 22", got)
	}
	if got := Speedup(1000, 1000); got != 0 {
		t.Fatalf("self speedup = %f, want 0", got)
	}
	if got := Speedup(0, 500); got != 0 {
		t.Fatalf("zero-reference speedup = %f, want 0", got)
	}
}

package stats

import (
	"bytes"
	"strings"
	"testing"

	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/workloads"
)

func fakeResult(app, backend string, cycles sim.Time) *workloads.Result {
	return &workloads.Result{
		App:     app,
		Backend: backend,
		Tiles:   4,
		Cycles:  cycles,
		Total: soc.TileStats{
			Busy:            cycles * 2,
			IStall:          cycles,
			SharedReadStall: cycles,
			FlushInstrs:     10,
		},
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	r := fakeResult("app", "nocc", 1000)
	b := NewBreakdown(r, r.Cycles)
	var sum float64
	for _, f := range b.Frac {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %f, want 1", sum)
	}
	if b.Norm != 1 {
		t.Fatalf("self-normalized bar = %f, want 1", b.Norm)
	}
}

func TestBreakdownNormalization(t *testing.T) {
	ref := fakeResult("app", "nocc", 1000)
	faster := fakeResult("app", "swcc", 750)
	b := NewBreakdown(faster, ref.Cycles)
	if b.Norm != 0.75 {
		t.Fatalf("norm = %f, want 0.75", b.Norm)
	}
}

func TestRenderFig8(t *testing.T) {
	groups := map[string][]*workloads.Result{
		"app": {fakeResult("app", "nocc", 1000), fakeResult("app", "swcc", 800)},
	}
	var buf bytes.Buffer
	RenderFig8(&buf, groups, []string{"app"})
	out := buf.String()
	for _, want := range []string{"app (nocc)", "app (swcc)", "100.0%", "80.0%", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig8 output missing %q:\n%s", want, out)
		}
	}
	// The reference bar should be ~50 chars of glyphs; the faster bar
	// proportionally shorter.
	lines := strings.Split(out, "\n")
	var refBar, fastBar int
	for _, l := range lines {
		if strings.Contains(l, "(nocc)") {
			refBar = strings.Count(l, "U") + strings.Count(l, "i") + strings.Count(l, "s")
		}
		if strings.Contains(l, "(swcc)") {
			fastBar = strings.Count(l, "U") + strings.Count(l, "i") + strings.Count(l, "s")
		}
	}
	if refBar < 45 || refBar > 55 {
		t.Errorf("reference bar length %d, want ~50", refBar)
	}
	if fastBar >= refBar {
		t.Errorf("faster run's bar (%d) not shorter than reference (%d)", fastBar, refBar)
	}
}

func TestRenderExtended(t *testing.T) {
	var buf bytes.Buffer
	RenderExtended(&buf, []*workloads.Result{fakeResult("x", "dsm", 500)})
	if !strings.Contains(buf.String(), "x (dsm)") {
		t.Fatalf("extended table missing run label:\n%s", buf.String())
	}
}

func TestSpeedup(t *testing.T) {
	a := fakeResult("a", "nocc", 1000)
	b := fakeResult("a", "swcc", 780)
	if got := Speedup(a, b); got < 21.9 || got > 22.1 {
		t.Fatalf("speedup = %f, want 22", got)
	}
	if got := Speedup(a, a); got != 0 {
		t.Fatalf("self speedup = %f, want 0", got)
	}
}

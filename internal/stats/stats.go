// Package stats renders measured results in the paper's formats — most
// importantly the stacked execution-time breakdown of Fig. 8 — and holds
// the exact measurement containers the service workloads feed (latency
// histograms, per-interval time-series).
//
// Category mapping from the simulator's counters to the paper's five bars:
//
//	core utilization  = Busy + LockWait (a spinning core executes poll
//	                    instructions; the platform's counters see it as
//	                    not-stalled)
//	I-cache stall     = IStall
//	private read      = PrivReadStall
//	shared read       = SharedReadStall
//	write stall       = WriteStall + FlushStall (flush-triggered
//	                    writebacks occupy the bus like writes)
//	copy              = CopyStall (SPM/DSM staging; zero in Fig. 8 modes)
//
// The extended table also reports the raw lock/flush/copy components so
// nothing is hidden by the mapping.
//
// The package depends only on sim and soc so every measurement consumer
// (workloads, sweep, perf, exp) can import it without cycles.
package stats

import (
	"fmt"
	"io"
	"strings"

	"pmc/internal/sim"
	"pmc/internal/soc"
)

// Sample is the measurement slice of one run that the renderers need: a
// label, the makespan, and the accumulated platform counters. Producers
// that hold richer result types (workloads.Result) convert down to it.
type Sample struct {
	Label  string
	Cycles sim.Time
	Stats  soc.TileStats
}

// Utilization returns the Fig. 8 "core utilization" fraction of the
// accounted cycles: Busy + LockWait (see the package comment for why a
// spinning core counts as utilized). This is the single source of truth
// for the mapping; Result.Utilization and NewBreakdown both use it.
func Utilization(t soc.TileStats) float64 {
	tot := float64(t.Total())
	if tot == 0 {
		return 0
	}
	return float64(t.Busy+t.LockWait) / tot
}

// FlushOverheadPct returns the percentage of accounted cycles spent
// executing cache-control instructions — the paper counts exactly this
// ("the time spent on executing flush instructions") and reports
// 0.66 / 0.00 / 0.01 % for its three applications. Bus time for the
// flush-triggered writebacks is accounted separately (FlushStall) and
// folded into the write-stall bar when rendering Fig. 8.
func FlushOverheadPct(t soc.TileStats) float64 {
	tot := float64(t.Total())
	if tot == 0 {
		return 0
	}
	return 100 * float64(t.FlushInstrs) / tot
}

// Fig8Categories are the stacked categories in paper order (bottom to top).
var Fig8Categories = []string{
	"core utilization", "private read stall", "shared read stall",
	"write stall", "I-cache stall", "copy stall",
}

// Breakdown is one run normalized into Fig. 8 categories.
type Breakdown struct {
	Label  string
	Cycles sim.Time
	// Fractions of the run's accounted cycles per Fig8Category.
	Frac [6]float64
	// Norm is the run's total relative to a reference run (the "no CC"
	// bar is 100 %).
	Norm float64
	// FlushInstrPct is the paper's flush-overhead metric.
	FlushInstrPct float64
}

// NewBreakdown classifies a sample. refCycles scales the bar height (pass
// the reference run's cycles; use the run's own cycles for a 100 % bar).
// A zero refCycles yields Norm 0 rather than Inf/NaN, mirroring Speedup's
// zero-reference guard.
func NewBreakdown(s Sample, refCycles sim.Time) Breakdown {
	t := s.Stats
	tot := float64(t.Total())
	if tot == 0 {
		tot = 1
	}
	b := Breakdown{
		Label:         s.Label,
		Cycles:        s.Cycles,
		FlushInstrPct: FlushOverheadPct(t),
	}
	if refCycles != 0 {
		b.Norm = float64(s.Cycles) / float64(refCycles)
	}
	b.Frac[0] = float64(t.Busy+t.LockWait) / tot
	b.Frac[1] = float64(t.PrivReadStall) / tot
	b.Frac[2] = float64(t.SharedReadStall) / tot
	b.Frac[3] = float64(t.WriteStall+t.FlushStall) / tot
	b.Frac[4] = float64(t.IStall) / tot
	b.Frac[5] = float64(t.CopyStall) / tot
	return b
}

// barGlyphs label each category in the ASCII bar.
var barGlyphs = []byte{'U', 'p', 's', 'w', 'i', 'c'}

// RenderFig8 prints the stacked, normalized bars for a set of runs grouped
// by application: the textual equivalent of the paper's Fig. 8. The first
// run of each app is the normalization reference (its bar is 100 %).
func RenderFig8(w io.Writer, groups map[string][]Sample, order []string) {
	fmt.Fprintf(w, "%-22s %10s %7s  %s\n", "run", "cycles", "norm", "breakdown (each char = 2% of the normalized bar)")
	for _, app := range order {
		runs := groups[app]
		if len(runs) == 0 {
			continue
		}
		ref := runs[0].Cycles
		for _, s := range runs {
			b := NewBreakdown(s, ref)
			fmt.Fprintf(w, "%-22s %10d %6.1f%%  %s\n", b.Label, b.Cycles, 100*b.Norm, bar(b))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "legend: U=core utilization  p=private read  s=shared read  w=write  i=I-cache  c=copy\n")
}

func bar(b Breakdown) string {
	// Round cumulatively, not per category: each segment ends at the
	// rounded cumulative height, so the total bar length always equals
	// round(Norm*50) instead of drifting by up to one char per category.
	var sb strings.Builder
	cum := 0.0
	emitted := 0
	for i, f := range b.Frac {
		cum += f
		n := int(cum*b.Norm*50+0.5) - emitted // 50 chars = 100 % of the reference bar
		for j := 0; j < n; j++ {
			sb.WriteByte(barGlyphs[i])
		}
		emitted += n
	}
	return sb.String()
}

// RenderExtended prints the full per-category table, including the
// components the Fig. 8 mapping folds together.
func RenderExtended(w io.Writer, samples []Sample) {
	fmt.Fprintf(w, "%-22s %10s %6s %6s %6s %6s %6s %6s %6s %6s %7s\n",
		"run", "cycles", "busy%", "istl%", "priv%", "shrd%", "wr%", "lock%", "flsh%", "copy%", "flIns%")
	for _, s := range samples {
		t := s.Stats
		tot := float64(t.Total())
		if tot == 0 {
			tot = 1
		}
		pct := func(x sim.Time) float64 { return 100 * float64(x) / tot }
		fmt.Fprintf(w, "%-22s %10d %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %7.2f\n",
			s.Label, s.Cycles,
			pct(t.Busy), pct(t.IStall), pct(t.PrivReadStall), pct(t.SharedReadStall),
			pct(t.WriteStall), pct(t.LockWait), pct(t.FlushStall), pct(t.CopyStall),
			FlushOverheadPct(t))
	}
}

// Speedup returns the relative execution-time improvement of b over a in
// percent (positive = b is faster), the number the paper summarizes as
// "the execution time improved by 22% on average".
func Speedup(aCycles, bCycles sim.Time) float64 {
	if aCycles == 0 {
		return 0
	}
	return 100 * (1 - float64(bCycles)/float64(aCycles))
}

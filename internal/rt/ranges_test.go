package rt

import (
	"fmt"
	"strings"
	"testing"

	"pmc/internal/sim"
)

// rangeBackends returns the four Table II backends (the lazy SWCC variant
// shares swcc's data path).
func rangeBackends() []Backend {
	return []Backend{NoCC(), SWCC(), DSM(), SPM(), Adaptive()}
}

// TestBlockRoundTripAllBackends writes a pattern with WriteBlock, copies it
// with Copy and reads it back with ReadBlock on every backend, with the
// model recorder verifying every lowered word operation.
func TestBlockRoundTripAllBackends(t *testing.T) {
	const words = 37 // straddles lines and ends mid-line
	for _, b := range rangeBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sys := testSys(t, 2)
			r := New(sys, b)
			rec := NewRecorder(r)
			src := r.Alloc("src", words*4)
			dst := r.Alloc("dst", words*4)
			want := make([]uint32, words)
			for i := range want {
				want[i] = uint32(i)*2654435761 + 17
			}
			got := make([]uint32, words)
			r.Spawn(0, "w", func(c *Ctx) {
				c.EntryX(src)
				c.WriteBlock(src, 0, want)
				c.ExitX(src)
				c.EntryRO(src)
				c.EntryX(dst)
				c.Copy(dst, 0, src, 0, words)
				c.ExitX(dst)
				c.ExitRO(src)
				c.EntryRO(dst)
				c.ReadBlock(dst, 0, got)
				c.ExitRO(dst)
			})
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("word %d: got %#x want %#x", i, got[i], want[i])
				}
				if v := r.ReadObjectWord(dst, i); v != want[i] {
					t.Fatalf("canonical word %d: got %#x want %#x", i, v, want[i])
				}
			}
			if err := rec.Err(); err != nil {
				t.Fatal(err)
			}
			if err := rec.CheckWriteOrder(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOneWordBlockEquivalence pins the API v2 compatibility claim: a
// one-word ReadBlock/WriteBlock returns the same data as Read32/Write32
// and costs the same sim-cycles on every backend.
func TestOneWordBlockEquivalence(t *testing.T) {
	const iters = 16
	run := func(t *testing.T, name string, block bool) sim.Time {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sys := testSys(t, 2)
		r := New(sys, b)
		o := r.Alloc("obj", 12*4)
		var sum uint32
		r.Spawn(0, "w", func(c *Ctx) {
			c.SetCodeFootprint(1024)
			for i := 0; i < iters; i++ {
				off := 4 * (i % 12)
				c.EntryX(o)
				if block {
					var buf [1]uint32
					c.ReadBlock(o, off, buf[:])
					buf[0] += uint32(i)
					c.WriteBlock(o, off, buf[:])
					sum += buf[0]
				} else {
					v := c.Read32(o, off) + uint32(i)
					c.Write32(o, off, v)
					sum += v
				}
				c.ExitX(o)
			}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.K.Now()
	}
	for _, name := range []string{"nocc", "swcc", "dsm", "spm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			word := run(t, name, false)
			blk := run(t, name, true)
			if word != blk {
				t.Fatalf("one-word block path costs %d cycles, word path %d", blk, word)
			}
		})
	}
}

// TestWordBackendAdapter checks the v1 compatibility adapter: a backend
// that only implements the word-granular surface runs ranged programs via
// the lowering, with identical data and identical cost to the explicit
// word loop.
func TestWordBackendAdapter(t *testing.T) {
	run := func(t *testing.T, b Backend, block bool) (sim.Time, []uint32) {
		sys := testSys(t, 2)
		r := New(sys, b)
		o := r.Alloc("obj", 8*4)
		src := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
		got := make([]uint32, 8)
		r.Spawn(0, "w", func(c *Ctx) {
			c.SetCodeFootprint(1024)
			c.EntryX(o)
			if block {
				c.WriteBlock(o, 0, src)
				c.ReadBlock(o, 0, got)
			} else {
				for i, v := range src {
					c.Write32(o, 4*i, v)
				}
				for i := range got {
					got[i] = c.Read32(o, 4*i)
				}
			}
			c.ExitX(o)
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.K.Now(), got
	}
	wordCycles, wordData := run(t, AdaptWordBackend(NoCC()), false)
	blkCycles, blkData := run(t, AdaptWordBackend(NoCC()), true)
	if wordCycles != blkCycles {
		t.Fatalf("adapter block path %d cycles, word path %d", blkCycles, wordCycles)
	}
	for i := range wordData {
		if wordData[i] != blkData[i] || blkData[i] != uint32(i+1) {
			t.Fatalf("data mismatch at %d: word %v block %v", i, wordData, blkData)
		}
	}
}

// TestDisciplineViolationsAllBackends is the table-driven discipline
// matrix: on every backend, out-of-scope word and block writes,
// out-of-bounds ranges, and exits without a matching entry must each
// produce the expected Violation (op, object, tile and message).
func TestDisciplineViolationsAllBackends(t *testing.T) {
	type tc struct {
		name    string
		body    func(c *Ctx, o *Object)
		op      string
		msgPart string
	}
	cases := []tc{
		{
			name:    "write32-out-of-scope",
			body:    func(c *Ctx, o *Object) { c.Write32(o, 0, 1) },
			op:      "write",
			msgPart: "write outside entry_x/exit_x scope",
		},
		{
			name:    "write32-in-ro-scope",
			body:    func(c *Ctx, o *Object) { c.EntryRO(o); c.Write32(o, 0, 1); c.ExitRO(o) },
			op:      "write",
			msgPart: "write outside entry_x/exit_x scope",
		},
		{
			name:    "writeblock-out-of-scope",
			body:    func(c *Ctx, o *Object) { c.WriteBlock(o, 0, []uint32{1, 2}) },
			op:      "write-block",
			msgPart: "write outside entry_x/exit_x scope",
		},
		{
			name:    "readblock-out-of-scope",
			body:    func(c *Ctx, o *Object) { c.ReadBlock(o, 0, make([]uint32, 2)) },
			op:      "read-block",
			msgPart: "access outside any entry/exit scope",
		},
		{
			name: "readblock-out-of-bounds",
			body: func(c *Ctx, o *Object) {
				c.EntryRO(o)
				c.ReadBlock(o, 4, make([]uint32, 8)) // 8 words at word 1 of an 8-word object
				c.ExitRO(o)
			},
			op:      "read-block",
			msgPart: "out of bounds",
		},
		{
			name: "writeblock-out-of-bounds",
			body: func(c *Ctx, o *Object) {
				c.EntryX(o)
				c.WriteBlock(o, 4*7, []uint32{1, 2})
				c.ExitX(o)
			},
			op:      "write-block",
			msgPart: "out of bounds",
		},
		{
			name: "writeblock-misaligned",
			body: func(c *Ctx, o *Object) {
				c.EntryX(o)
				c.WriteBlock(o, 2, []uint32{1})
				c.ExitX(o)
			},
			op:      "write-block",
			msgPart: "out of bounds",
		},
		{
			name: "copy-out-of-bounds",
			body: func(c *Ctx, o *Object) {
				c.EntryX(o)
				c.Copy(o, 4*4, o, 0, 8)
				c.ExitX(o)
			},
			op:      "copy",
			msgPart: "out of bounds",
		},
		{
			name:    "copy-out-of-scope",
			body:    func(c *Ctx, o *Object) { c.Copy(o, 0, o, 4, 1) },
			op:      "copy",
			msgPart: "not open",
		},
		{
			name:    "exit-x-without-entry",
			body:    func(c *Ctx, o *Object) { c.ExitX(o) },
			op:      "exit_x",
			msgPart: "no matching entry_x",
		},
		{
			name:    "exit-ro-without-entry",
			body:    func(c *Ctx, o *Object) { c.ExitRO(o) },
			op:      "exit_ro",
			msgPart: "no matching entry_ro",
		},
		{
			name:    "exit-ro-after-entry-x",
			body:    func(c *Ctx, o *Object) { c.EntryX(o); c.ExitRO(o); c.ExitX(o) },
			op:      "exit_ro",
			msgPart: "no matching entry_ro",
		},
	}
	for _, b := range rangeBackends() {
		for _, c := range cases {
			b, c := b, c
			t.Run(fmt.Sprintf("%s/%s", b.Name(), c.name), func(t *testing.T) {
				fresh, err := ByName(b.Name())
				if err != nil {
					t.Fatal(err)
				}
				sys := testSys(t, 2)
				r := New(sys, fresh)
				o := r.Alloc("obj", 8*4)
				r.Spawn(0, "w", func(ctx *Ctx) { c.body(ctx, o) })
				err = r.Run()
				if err == nil {
					t.Fatalf("expected a discipline violation, got none (violations: %v)", r.Violations())
				}
				v, ok := err.(Violation)
				if !ok {
					t.Fatalf("expected a Violation, got %T: %v", err, err)
				}
				if v.Op != c.op {
					t.Fatalf("violation op = %q, want %q (%v)", v.Op, c.op, v)
				}
				if !strings.Contains(v.Msg, c.msgPart) {
					t.Fatalf("violation msg %q does not contain %q", v.Msg, c.msgPart)
				}
				if v.Obj != "obj" || v.Tile != 0 {
					t.Fatalf("violation identifies %q on tile %d, want obj on tile 0", v.Obj, v.Tile)
				}
			})
		}
	}
}

// TestAllocValidation pins the two Alloc failure modes and their messages.
func TestAllocValidation(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, NoCC())
	expectPanic := func(name string, want string, f func()) {
		t.Helper()
		defer func() {
			msg, ok := recover().(string)
			if !ok {
				t.Fatalf("%s: expected a string panic", name)
			}
			if !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		f()
	}
	expectPanic("zero size", "size 0 must be positive", func() { r.Alloc("z", 0) })
	expectPanic("negative size", "size -4 must be positive", func() { r.Alloc("n", -4) })
	r.Alloc("x", 4)
	expectPanic("duplicate", "duplicate object name", func() { r.Alloc("x", 8) })
}

package rt

import (
	"testing"
	"testing/quick"

	"pmc/internal/mem"
)

// Property tests for the SPM first-fit arena, which backs every scratch-pad
// scope. Overlapping allocations would silently corrupt staged objects.

func TestArenaAllocRelease(t *testing.T) {
	var a spmArena
	a.init(0, 1024)
	x, ok := a.alloc(100)
	if !ok || x != 0 {
		t.Fatalf("first alloc = (%d,%v)", x, ok)
	}
	y, ok := a.alloc(200)
	if !ok || y < 100 {
		t.Fatalf("second alloc = (%d,%v)", y, ok)
	}
	a.release(x, 100)
	// The freed hole is reusable.
	z, ok := a.alloc(80)
	if !ok || z != 0 {
		t.Fatalf("hole not reused: (%d,%v)", z, ok)
	}
}

func TestArenaExhaustion(t *testing.T) {
	var a spmArena
	a.init(0, 256)
	if _, ok := a.alloc(300); ok {
		t.Fatal("oversized allocation succeeded")
	}
	p, _ := a.alloc(256)
	if _, ok := a.alloc(4); ok {
		t.Fatal("allocation from a full arena succeeded")
	}
	a.release(p, 256)
	if _, ok := a.alloc(256); !ok {
		t.Fatal("full release did not coalesce back to capacity")
	}
}

func TestArenaCoalescing(t *testing.T) {
	var a spmArena
	a.init(0, 512)
	p1, _ := a.alloc(128)
	p2, _ := a.alloc(128)
	p3, _ := a.alloc(128)
	// Release out of order: middle, then its neighbours.
	a.release(p2, 128)
	a.release(p1, 128)
	a.release(p3, 128)
	// All 512 bytes (384 released + 128 tail) must be one span again.
	if _, ok := a.alloc(512); !ok {
		t.Fatal("fragmented after out-of-order release: coalescing broken")
	}
}

// Property: any interleaving of allocations and releases never hands out
// overlapping spans, and releasing everything restores full capacity.
func TestArenaNoOverlapProperty(t *testing.T) {
	type live struct {
		base mem.Addr
		size int
	}
	prop := func(ops []uint8) bool {
		var a spmArena
		a.init(0, 2048)
		var spans []live
		for _, op := range ops {
			if op%3 != 0 && len(spans) > 0 { // release one
				i := int(op) % len(spans)
				a.release(spans[i].base, spans[i].size)
				spans = append(spans[:i], spans[i+1:]...)
				continue
			}
			size := int(op%15)*16 + 16
			base, ok := a.alloc(size)
			if !ok {
				continue
			}
			for _, s := range spans {
				if base < s.base+mem.Addr(s.size) && s.base < base+mem.Addr(size) {
					return false // overlap
				}
			}
			spans = append(spans, live{base, size})
		}
		for _, s := range spans {
			a.release(s.base, s.size)
		}
		_, ok := a.alloc(2048)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package rt

import (
	"pmc/internal/mem"
	"pmc/internal/sim"
	"pmc/internal/soc"
)

// cdsmBackend is the cluster-aware variant of the DSM architecture: instead
// of one replica of the shared heap per tile (dsm), it keeps one replica
// per cluster, in the cluster's scratch memory. Member tiles reach their
// replica through the cluster crossbar; coherence actions only cross the
// backbone when data actually changes clusters:
//
//   - reads and writes inside a scope touch the tile's own cluster replica;
//   - a lock transfer between tiles of the same cluster moves no data at
//     all (they already share the replica);
//   - a transfer across clusters has the previous owner push its cluster's
//     version into the acquirer's cluster replica over the NoC;
//   - flush broadcasts to one gateway per other cluster rather than to
//     every tile — the fan degree is the cluster count, not the tile count.
//
// On the flat (1-cluster) system every transfer is intra-cluster and flush
// fans to nobody: the backend degenerates to shared-scratch locking.
// Verification applies unchanged because every operation lowers to the
// same per-word model reads and writes as dsm.
type cdsmBackend struct {
	lastWriter map[int]int // object ID -> cluster that last held it exclusively
}

// CDSM returns the clustered distributed-shared-memory backend.
func CDSM() Backend { return &cdsmBackend{lastWriter: make(map[int]int)} }

func (b *cdsmBackend) Name() string { return "cdsm" }

// replicaAddr returns the address of o's replica inside cluster cl's
// scratch memory: the shared heap maps 1:1 into each cluster scratch.
func (b *cdsmBackend) replicaAddr(cl int, o *Object) mem.Addr {
	return soc.ClusterAddr(cl, o.Addr)
}

func (b *cdsmBackend) Init(rt *Runtime) {
	if rt.Sys.DLock == nil {
		panic("rt: the cdsm backend needs the distributed lock")
	}
}

// lockTransfer carries the object data only when the lock actually changes
// clusters; intra-cluster transfers find the data already in the shared
// replica. The runtime's transfer mux dispatches here for cdsm-routed
// objects.
func (b *cdsmBackend) lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time {
	net := rt.Sys.Net
	fromCl := rt.Sys.ClusterOf(from)
	toCl := rt.Sys.ClusterOf(to)
	if fromCl == toCl {
		return t
	}
	home := rt.Sys.DLock.Home(o.LockID)
	notifyAt := t + net.ControlLatency(home, from, 8)
	buf := make([]byte, o.WordCount()*4)
	fromCl.Scratch.ReadBlock(b.replicaAddr(fromCl.ID, o), buf)
	return net.PostWriteDelayed(from, to, b.replicaAddr(toCl.ID, o), buf, notifyAt)
}

// initReplicas pre-loads every cluster's replica (setup, outside simulated
// time).
func (b *cdsmBackend) initReplicas(rt *Runtime, o *Object, words []uint32) {
	for _, cl := range rt.Sys.Clusters {
		for i, w := range words {
			cl.Scratch.Write32(b.replicaAddr(cl.ID, o)+mem.Addr(4*i), w)
		}
	}
}

// readCanonical returns the authoritative copy: the replica of the cluster
// that last held the object exclusively (zero value: cluster 0).
func (b *cdsmBackend) readCanonical(rt *Runtime, o *Object, wordIdx int) uint32 {
	cl := rt.Sys.Clusters[b.lastWriter[o.ID]]
	return cl.Scratch.Read32(b.replicaAddr(cl.ID, o) + mem.Addr(4*wordIdx))
}

// heapLimit bounds the shared heap to the per-cluster scratch size.
func (b *cdsmBackend) heapLimit(rt *Runtime) int {
	return rt.Sys.Cfg.ClusterMemBytes()
}

func (b *cdsmBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
	b.lastWriter[o.ID] = c.T.Cluster.ID
}

func (b *cdsmBackend) ExitX(c *Ctx, o *Object) {
	// Lazy release, as in dsm: the transfer hook moves data when the lock
	// next changes clusters.
	c.T.ReleaseLock(c.P, o.LockID)
}

func (b *cdsmBackend) EntryRO(c *Ctx, o *Object) {
	if o.Size > AtomicSize {
		c.T.AcquireLock(c.P, o.LockID)
		c.scopes[o].locked = true
	}
}

func (b *cdsmBackend) ExitRO(c *Ctx, o *Object) {
	if c.scopes[o].locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (b *cdsmBackend) Fence(c *Ctx) {
	// In-order core, crossbar accesses complete in order: compiler
	// barrier only.
}

// Flush broadcasts the object from the caller's cluster replica to every
// other cluster's replica as one posted-write burst, addressed at one
// gateway tile per cluster (the delivery lands in the cluster scratch the
// address names; the gateway only determines the route).
func (b *cdsmBackend) Flush(c *Ctx, o *Object) {
	clusters := c.rt.Sys.Clusters
	if len(clusters) < 2 {
		return
	}
	my := c.T.Cluster
	buf := make([]byte, o.WordCount()*4)
	my.Scratch.ReadBlock(b.replicaAddr(my.ID, o), buf)
	dsts := make([]int, 0, len(clusters)-1)
	for _, cl := range clusters {
		if cl != my {
			dsts = append(dsts, cl.Tiles[0].ID)
		}
	}
	c.T.Exec(c.P, 1) // one injection op programs the whole burst
	c.rt.Sys.Net.PostWriteFan(c.T.ID, dsts, func(t int) mem.Addr {
		return b.replicaAddr(c.rt.Sys.ClusterOf(t).ID, o)
	}, buf)
}

func (b *cdsmBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	return c.T.ReadCluster32(c.P, b.replicaAddr(c.T.Cluster.ID, o)+mem.Addr(off))
}

func (b *cdsmBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	c.T.WriteCluster32(c.P, b.replicaAddr(c.T.Cluster.ID, o)+mem.Addr(off), v)
}

// ReadRange streams words out of the cluster replica, one crossbar load
// per word.
func (b *cdsmBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	readClusterRange(c, b.replicaAddr(c.T.Cluster.ID, o)+mem.Addr(off), dst)
}

// WriteRange streams words into the cluster replica.
func (b *cdsmBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	writeClusterRange(c, b.replicaAddr(c.T.Cluster.ID, o)+mem.Addr(off), src)
}

// CopyRange moves data between two replicas in the same cluster scratch
// with the scratch's DMA port.
func (b *cdsmBackend) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	cl := c.T.Cluster.ID
	srcA := b.replicaAddr(cl, src) + mem.Addr(srcOff)
	dstA := b.replicaAddr(cl, dst) + mem.Addr(dstOff)
	return copyClusterDMA(c, srcA, dstA, words, wantVals), true
}

// readClusterRange streams a word range out of a resolved cluster-scratch
// address, one crossbar load per word.
func readClusterRange(c *Ctx, base mem.Addr, dst []uint32) {
	for i := range dst {
		dst[i] = c.T.ReadCluster32(c.P, base+mem.Addr(4*i))
	}
}

// writeClusterRange streams a word range into a resolved cluster-scratch
// address, one crossbar store per word.
func writeClusterRange(c *Ctx, base mem.Addr, src []uint32) {
	for i, v := range src {
		c.T.WriteCluster32(c.P, base+mem.Addr(4*i), v)
	}
}

// copyClusterDMA runs the cluster-scratch DMA between two resolved scratch
// addresses, returning the copied values only on demand.
func copyClusterDMA(c *Ctx, srcA, dstA mem.Addr, words int, wantVals bool) []uint32 {
	c.T.CopyCluster(c.P, srcA, dstA, words*4)
	if !wantVals {
		return nil
	}
	vals := make([]uint32, words)
	scratch := c.T.Cluster.Scratch
	for i := range vals {
		vals[i] = scratch.Read32(dstA + mem.Addr(4*i))
	}
	return vals
}

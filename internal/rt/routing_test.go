package rt

import (
	"strings"
	"testing"
)

// This file covers allocation-level routing: AllocOn validation,
// cross-backend copies, fault injection composed with routing, and the
// adaptive backend's protocol migrations — all under the model recorder
// where data flows.

// TestAllocOnValidation pins the AllocOn failure modes: an unknown backend
// name and a duplicate object name are both programming errors and panic
// with messages naming the object.
func TestAllocOnValidation(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, NoCC())
	expectPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			msg, ok := recover().(string)
			if !ok {
				t.Fatalf("%s: expected a string panic", name)
			}
			if !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		f()
	}
	expectPanic("unknown backend", `unknown backend "zzz"`, func() {
		r.AllocOn("obj", 4, "zzz")
	})
	r.AllocOn("obj", 4, "dsm")
	expectPanic("duplicate name", "duplicate object name", func() {
		r.AllocOn("obj", 4, "spm")
	})
	expectPanic("duplicate name across routes", "duplicate object name", func() {
		r.Alloc("obj", 4)
	})
}

// TestCrossBackendCopyVerified copies between objects routed to different
// backends — the transfer mux cannot use either backend's block-move
// hardware, so the copy lowers to per-word reads and writes through each
// object's own protocol. The recorder checks every lowered word against
// the model and the final bytes must round-trip exactly.
func TestCrossBackendCopyVerified(t *testing.T) {
	pairs := [][2]string{
		{"dsm", "spm"}, {"spm", "dsm"}, {"nocc", "swcc"}, {"swcc", "dsm"},
	}
	for _, pair := range pairs {
		pair := pair
		t.Run(pair[0]+"-to-"+pair[1], func(t *testing.T) {
			sys := testSys(t, 2)
			r := New(sys, NoCC())
			rec := NewRecorder(r)
			const words = 8
			src := r.AllocOn("src", words*4, pair[0])
			dst := r.AllocOn("dst", words*4, pair[1])
			done := r.Alloc("done", 4)
			r.Spawn(0, "producer", func(c *Ctx) {
				c.EntryX(src)
				for w := 0; w < words; w++ {
					c.Write32(src, 4*w, 0x1000+uint32(w))
				}
				c.ExitX(src)
				c.EntryRO(src)
				c.EntryX(dst)
				c.Copy(dst, 0, src, 0, words)
				c.ExitX(dst)
				c.ExitRO(src)
				c.EntryX(done)
				c.Write32(done, 0, 1)
				c.Flush(done)
				c.ExitX(done)
			})
			r.Spawn(1, "consumer", func(c *Ctx) {
				pollUntil(c, done, 1)
				c.EntryRO(dst)
				buf := make([]uint32, words)
				c.ReadBlock(dst, 0, buf)
				c.ExitRO(dst)
				for w, v := range buf {
					if v != 0x1000+uint32(w) {
						c.rt.Sys.K.Stop()
					}
				}
			})
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < words; w++ {
				if got := r.ReadObjectWord(dst, w); got != 0x1000+uint32(w) {
					t.Fatalf("dst[%d] = %#x, want %#x", w, got, 0x1000+uint32(w))
				}
			}
			if err := rec.Err(); err != nil {
				t.Fatalf("model violation: %v", err)
			}
		})
	}
}

// TestFaultsComposeWithRouting registers a fault-injected swcc route next
// to a healthy default and routes one of two counters to it: the fault
// must break exactly the routed object (stale reads flagged by the
// recorder, lost increments) while the object on the healthy route stays
// correct in the same run.
func TestFaultsComposeWithRouting(t *testing.T) {
	const tiles, iters = 4, 8
	sys := testSys(t, tiles)
	faulty := InjectFaults(SWCC(), FaultSet{SkipExitFlush: true})
	r := New(sys, NoCC(), faulty)
	rec := NewRecorder(r)
	bad := r.AllocOn("ctr-faulty", 4, faulty.Name())
	good := r.Alloc("ctr-healthy", 4)
	for i := 0; i < tiles; i++ {
		r.Spawn(i, "incr", func(c *Ctx) {
			for n := 0; n < iters; n++ {
				for _, o := range []*Object{bad, good} {
					c.EntryX(o)
					c.Write32(o, 0, c.Read32(o, 0)+1)
					c.ExitX(o)
				}
				c.Compute(25)
			}
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint32(tiles * iters)
	if got := r.ReadObjectWord(good, 0); got != want {
		t.Fatalf("healthy-route counter = %d, want %d: the fault leaked across routes", got, want)
	}
	if got := r.ReadObjectWord(bad, 0); got == want {
		t.Fatal("faulty-route counter is correct: the fault did not reach the routed object")
	}
	if rec.Err() == nil {
		t.Fatal("recorder did not flag the faulty route's stale reads")
	}
	for _, msg := range rec.Errors {
		if strings.Contains(msg, "ctr-healthy") {
			t.Fatalf("recorder blamed the healthy object: %s", msg)
		}
	}
}

// TestAdaptiveMigratesCounter drives a contended multi-tile counter on the
// adaptive backend: the lock ping-pongs, so the policy must migrate the
// object off nocc (to dsm), and the migration must be invisible to the
// data — the count is exact and the recorder sees no model violation.
func TestAdaptiveMigratesCounter(t *testing.T) {
	b := Adaptive()
	const tiles, iters = 4, 12
	sys := testSys(t, tiles)
	r := New(sys, b)
	rec := NewRecorder(r)
	ctr := r.Alloc("counter", 4)
	for i := 0; i < tiles; i++ {
		r.Spawn(i, "incr", func(c *Ctx) {
			for n := 0; n < iters; n++ {
				c.EntryX(ctr)
				c.Write32(ctr, 0, c.Read32(ctr, 0)+1)
				c.ExitX(ctr)
				c.Compute(25)
			}
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := r.ReadObjectWord(ctr, 0), uint32(tiles*iters); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("model violation during migration: %v", err)
	}
	if n := b.(*adaptiveBackend).Migrations(); n == 0 {
		t.Fatal("adaptive backend never migrated a ping-ponging counter")
	}
}

// TestAdaptiveMigratesReadMostly drives a never-written multi-word object
// through contended read-only scopes: the read-side flip must move it off
// nocc even though a rival reader is parked at almost every exit.
func TestAdaptiveMigratesReadMostly(t *testing.T) {
	b := Adaptive()
	const tiles, iters, words = 4, 10, 8
	sys := testSys(t, tiles)
	r := New(sys, b)
	rec := NewRecorder(r)
	table := r.Alloc("table", words*4)
	init := make([]uint32, words)
	for w := range init {
		init[w] = 7 * uint32(w)
	}
	r.InitObject(table, init)
	for i := 0; i < tiles; i++ {
		r.Spawn(i, "reader", func(c *Ctx) {
			for n := 0; n < iters; n++ {
				c.EntryRO(table)
				sum := uint32(0)
				for w := 0; w < words; w++ {
					sum += c.Read32(table, 4*w)
				}
				c.ExitRO(table)
				if sum != 7*words*(words-1)/2 {
					c.rt.Sys.K.Stop()
				}
				c.Compute(10)
			}
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("model violation during read-side flip: %v", err)
	}
	if n := b.(*adaptiveBackend).Migrations(); n == 0 {
		t.Fatal("adaptive backend never migrated a read-only table")
	}
}

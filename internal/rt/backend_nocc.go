package rt

import "pmc/internal/mem"

// noccBackend is the "no CC" configuration of Section VI-A: private data
// (stack, heap, OS structures) is cached, but all shared application data
// lives in uncached memory, so no coherency protocol is needed and all
// flushes are nullified. Because every shared access goes straight to the
// single SDRAM in bus order, this backend is also the sequentially
// consistent reference used by the differential tests: annotations keep
// mutual exclusion and everything else is a no-op ("for a sequential
// consistent system, the implementation of the annotations is trivial",
// Section V-B).
type noccBackend struct{}

// NoCC returns the uncached-shared-data backend (Fig. 8's baseline).
func NoCC() Backend { return noccBackend{} }

func (noccBackend) Name() string     { return "nocc" }
func (noccBackend) Init(rt *Runtime) {}

func (noccBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
}

func (noccBackend) ExitX(c *Ctx, o *Object) {
	c.T.ReleaseLock(c.P, o.LockID)
}

func (noccBackend) EntryRO(c *Ctx, o *Object) {
	// Multi-word objects need the lock to avoid torn reads (Section
	// V-A); word-sized ones are naturally atomic.
	if o.Size > AtomicSize {
		c.T.AcquireLock(c.P, o.LockID)
		c.scopes[o].locked = true
	}
}

func (noccBackend) ExitRO(c *Ctx, o *Object) {
	if c.scopes[o].locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (noccBackend) Fence(c *Ctx) {
	// In-order core, uncached shared data: hardware already satisfies
	// ≺F; no instructions are emitted (Table II).
}

func (noccBackend) Flush(c *Ctx, o *Object) {
	// Uncached data is already globally visible: nullified.
}

func (noccBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	return c.T.ReadShared32Uncached(c.P, o.Addr+mem.Addr(off))
}

func (noccBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	c.T.WriteShared32Uncached(c.P, o.Addr+mem.Addr(off), v)
}

// ReadRange loops the uncached word path: the plain shared bus port has no
// burst mode (that asymmetry against the cached and local-memory backends
// is exactly what the bulk-ablation experiment measures).
func (b noccBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	ReadRangeByWords(b, c, o, off, dst)
}

// WriteRange loops the uncached (posted) word path.
func (b noccBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	WriteRangeByWords(b, c, o, off, src)
}

package rt

import (
	"bytes"
	"strings"
	"testing"

	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/trace"
)

func testSys(t *testing.T, tiles int) *soc.System {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	cfg.MaxCycles = 50_000_000
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// allBackends returns a fresh instance of every backend, keyed by name.
func allBackends() []Backend {
	return []Backend{NoCC(), SWCC(), SWCCLazy(), DSM(), SPM(), CDSM(), CSPM(), Adaptive()}
}

// pollUntil spins on a word-sized object until it reads want.
func pollUntil(c *Ctx, o *Object, want uint32) {
	for {
		c.EntryRO(o)
		v := c.Read32(o, 0)
		c.ExitRO(o)
		if v == want {
			return
		}
		c.Compute(8)
	}
}

// TestMessagePassingAllBackends runs the annotated Fig. 6 program on every
// backend, with the model recorder verifying each read: the reader must
// always receive 42.
func TestMessagePassingAllBackends(t *testing.T) {
	for _, b := range allBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sys := testSys(t, 4)
			r := New(sys, b)
			rec := NewRecorder(r)
			x := r.Alloc("X", 4)
			f := r.Alloc("f", 4)
			var got uint32
			r.Spawn(0, "writer", func(c *Ctx) {
				c.EntryX(x)
				c.Write32(x, 0, 42)
				c.Fence()
				c.ExitX(x)
				c.EntryX(f)
				c.Write32(f, 0, 1)
				c.Flush(f)
				c.ExitX(f)
			})
			r.Spawn(1, "reader", func(c *Ctx) {
				pollUntil(c, f, 1)
				c.Fence()
				c.EntryX(x)
				got = c.Read32(x, 0)
				c.ExitX(x)
			})
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Fatalf("reader got %d, want 42", got)
			}
			if err := rec.Err(); err != nil {
				t.Fatal(err)
			}
			if err := rec.CheckWriteOrder(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCounterAllBackends increments a shared counter from every tile under
// entry_x/exit_x; the total must be exact on every backend (coherence and
// mutual exclusion both working).
func TestCounterAllBackends(t *testing.T) {
	const tiles, iters = 4, 10
	for _, b := range allBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sys := testSys(t, tiles)
			r := New(sys, b)
			rec := NewRecorder(r)
			ctr := r.Alloc("counter", 4)
			for i := 0; i < tiles; i++ {
				r.Spawn(i, "incr", func(c *Ctx) {
					for n := 0; n < iters; n++ {
						c.EntryX(ctr)
						c.Write32(ctr, 0, c.Read32(ctr, 0)+1)
						c.ExitX(ctr)
						c.Compute(20)
					}
				})
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			if got := r.ReadObjectWord(ctr, 0); got != tiles*iters {
				t.Fatalf("counter = %d, want %d", got, tiles*iters)
			}
			if err := rec.Err(); err != nil {
				t.Fatal(err)
			}
			if err := rec.CheckWriteOrder(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSWCCStalenessWithinScope shows the incoherence SWCC manages: a reader
// that cached X keeps seeing the stale value within its read-only scope
// (legal under PMC slow reads) and sees the fresh value after re-entering.
func TestSWCCStalenessWithinScope(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, SWCC())
	rec := NewRecorder(r)
	x := r.Alloc("X", 4)
	flag := r.Alloc("flag", 4)
	var stale, fresh uint32
	r.Spawn(0, "writer", func(c *Ctx) {
		// Wait until the reader has cached X.
		pollUntil(c, flag, 1)
		c.EntryX(x)
		c.Write32(x, 0, 7)
		c.ExitX(x) // eager: flushes to SDRAM
		c.EntryX(flag)
		c.Write32(flag, 0, 2)
		c.Flush(flag)
		c.ExitX(flag)
	})
	r.Spawn(1, "reader", func(c *Ctx) {
		c.EntryRO(x)
		if v := c.Read32(x, 0); v != 0 {
			t.Errorf("initial read = %d, want 0", v)
		}
		c.EntryX(flag)
		c.Write32(flag, 0, 1)
		c.Flush(flag)
		c.ExitX(flag)
		pollUntil(c, flag, 2) // writer has published X=7
		// Still inside the RO scope of x: the cached line is stale.
		stale = c.Read32(x, 0)
		c.ExitRO(x)
		// Re-entering invalidated the line: fresh data.
		c.EntryRO(x)
		fresh = c.Read32(x, 0)
		c.ExitRO(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if stale != 0 {
		t.Fatalf("in-scope read = %d, want stale 0 (the cache must not be coherent)", stale)
	}
	if fresh != 7 {
		t.Fatalf("re-entered read = %d, want 7", fresh)
	}
	// Both values are legal under the model (slow reads).
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDSMFlushPropagates: without flush a DSM write stays in the writer's
// replica; flush broadcasts it.
func TestDSMFlushPropagates(t *testing.T) {
	sys := testSys(t, 4)
	r := New(sys, DSM())
	x := r.Alloc("X", 4)
	done := r.Alloc("done", 4)
	var before uint32
	r.Spawn(0, "writer", func(c *Ctx) {
		c.EntryX(x)
		c.Write32(x, 0, 5)
		// No flush yet: remote replicas still hold 0.
		c.Flush(x) // now broadcast
		c.ExitX(x)
		c.EntryX(done)
		c.Write32(done, 0, 1)
		c.Flush(done)
		c.ExitX(done)
	})
	r.Spawn(2, "reader", func(c *Ctx) {
		// Unsynchronized peek before anything happened.
		c.EntryRO(x)
		before = c.Read32(x, 0)
		c.ExitRO(x)
		pollUntil(c, done, 1)
		// The flush of x was broadcast before done was set; per-flow
		// FIFO does not order x (flow 0→2) against done's poll, so
		// poll until the replica shows it.
		pollUntil(c, x, 5)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("replica showed %d before any flush", before)
	}
}

// TestDSMTransferCarriesData: with no flush at all, the data must still
// arrive at the next exclusive owner via the lock-transfer push.
func TestDSMTransferCarriesData(t *testing.T) {
	sys := testSys(t, 4)
	r := New(sys, DSM())
	rec := NewRecorder(r)
	x := r.Alloc("X", 64) // multi-word object
	var got uint32
	r.Spawn(3, "writer", func(c *Ctx) {
		c.EntryX(x)
		for w := 0; w < 16; w++ {
			c.Write32(x, 4*w, uint32(100+w))
		}
		c.ExitX(x) // lazy: nothing sent yet
	})
	r.Spawn(1, "reader", func(c *Ctx) {
		c.Compute(4000) // let the writer go first
		c.EntryX(x)     // transfer pushes the object here
		got = c.Read32(x, 4*15)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 115 {
		t.Fatalf("reader got %d, want 115 (transfer must carry the data)", got)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSPMScopesStageAndWriteBack: SPM copies in on entry and back on exit;
// a second scope on another tile sees the updates.
func TestSPMScopesStageAndWriteBack(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, SPM())
	rec := NewRecorder(r)
	a := r.Alloc("A", 128)
	var sum uint32
	r.Spawn(0, "producer", func(c *Ctx) {
		c.EntryX(a)
		for w := 0; w < 32; w++ {
			c.Write32(a, 4*w, uint32(w))
		}
		c.ExitX(a)
	})
	r.Spawn(1, "consumer", func(c *Ctx) {
		c.Compute(20000)
		c.EntryRO(a)
		for w := 0; w < 32; w++ {
			sum += c.Read32(a, 4*w)
		}
		c.ExitRO(a)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 31*32/2 {
		t.Fatalf("sum = %d, want %d", sum, 31*32/2)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDisciplineViolations: the runtime detects every annotation misuse.
func TestDisciplineViolations(t *testing.T) {
	cases := []struct {
		name string
		body func(c *Ctx, o *Object)
		want string
	}{
		{"read outside scope", func(c *Ctx, o *Object) { c.Read32(o, 0) }, "outside any entry/exit"},
		{"write in ro scope", func(c *Ctx, o *Object) { c.EntryRO(o); c.Write32(o, 0, 1); c.ExitRO(o) }, "write outside entry_x"},
		{"flush outside x", func(c *Ctx, o *Object) { c.EntryRO(o); c.Flush(o); c.ExitRO(o) }, "flush outside"},
		{"double entry", func(c *Ctx, o *Object) { c.EntryX(o); c.EntryX(o); c.ExitX(o) }, "already open"},
		{"exit without entry", func(c *Ctx, o *Object) { c.ExitX(o) }, "no matching entry_x"},
		{"exit_ro of x scope", func(c *Ctx, o *Object) { c.EntryX(o); c.ExitRO(o); c.ExitX(o) }, "no matching entry_ro"},
		{"unclosed scope", func(c *Ctx, o *Object) { c.EntryX(o) }, "still open at worker exit"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := testSys(t, 1)
			r := New(sys, SWCC())
			o := r.Alloc("obj", 64)
			r.Spawn(0, "w", func(c *Ctx) { tc.body(c, o) })
			err := r.Run()
			if err == nil {
				t.Fatalf("violation not reported; recorded: %v", r.Violations())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRecorderCatchesCorruption: if the memory system returns a value the
// model forbids, the recorder reports it. We fake a coherence bug by poking
// SDRAM behind the runtime's back.
func TestRecorderCatchesCorruption(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, NoCC())
	rec := NewRecorder(r)
	x := r.Alloc("X", 4)
	r.Spawn(0, "writer", func(c *Ctx) {
		c.EntryX(x)
		c.Write32(x, 0, 42)
		c.ExitX(x)
		// A rogue write that bypasses the model: simulated hardware
		// fault / protocol bug.
		sys.SDRAM.Write32(x.Addr, 99)
	})
	r.Spawn(1, "reader", func(c *Ctx) {
		c.Compute(10000)
		c.EntryX(x)
		c.Read32(x, 0)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() == nil {
		t.Fatal("recorder failed to catch the corrupted read")
	}
	if !strings.Contains(rec.Errors[0], "not readable") {
		t.Fatalf("unexpected error text: %s", rec.Errors[0])
	}
}

// TestRORemainsConcurrentOnSPM: SPM releases the lock right after the copy,
// so two RO scopes overlap; SWCC holds it, so they serialize. Observable in
// the lock wait time.
func TestRORemainsConcurrentOnSPM(t *testing.T) {
	run := func(b Backend) (overlap bool) {
		sys := testSys(t, 2)
		r := New(sys, b)
		o := r.Alloc("big", 256)
		inScope := 0
		sawBoth := false
		for i := 0; i < 2; i++ {
			r.Spawn(i, "ro", func(c *Ctx) {
				c.EntryRO(o)
				inScope++
				if inScope == 2 {
					sawBoth = true
				}
				c.Compute(5000) // long scope body
				for w := 0; w < 8; w++ {
					c.Read32(o, 4*w)
				}
				inScope--
				c.ExitRO(o)
			})
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return sawBoth
	}
	if !run(SPM()) {
		t.Fatal("SPM read-only scopes should overlap (lock held only during copy)")
	}
	if run(SWCC()) {
		t.Fatal("SWCC read-only scopes on multi-word objects should serialize")
	}
}

func TestBarrier(t *testing.T) {
	sys := testSys(t, 3)
	r := New(sys, NoCC())
	b := r.NewBarrier(3)
	maxBefore := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		i := i
		r.Spawn(i, "w", func(c *Ctx) {
			c.Compute(100 * (i + 1))
			maxBefore[i] = uint64(c.Now())
			b.Wait(c)
			// After the barrier everyone is at >= the slowest arrival.
			if got := uint64(c.Now()); got < maxBefore[2] {
				t.Errorf("tile %d resumed at %d before the last arrival", i, got)
			}
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDSMHeapLimitEnforced(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, DSM())
	defer func() {
		if recover() == nil {
			t.Fatal("allocating beyond local-memory capacity must panic for DSM")
		}
	}()
	r.Alloc("huge", sys.Cfg.LocalBytes+4096)
}

func TestInitObjectVisibleEverywhere(t *testing.T) {
	for _, b := range allBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sys := testSys(t, 3)
			r := New(sys, b)
			o := r.Alloc("tbl", 16)
			r.InitObject(o, []uint32{10, 20, 30, 40})
			var got [3]uint32
			for i := 0; i < 3; i++ {
				i := i
				r.Spawn(i, "rd", func(c *Ctx) {
					c.EntryRO(o)
					got[i] = c.Read32(o, 8)
					c.ExitRO(o)
				})
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != 30 {
					t.Fatalf("tile %d read %d, want 30", i, v)
				}
			}
		})
	}
}

func TestPrivateDataIsPerTile(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, SWCC())
	vals := make([]uint32, 2)
	for i := 0; i < 2; i++ {
		i := i
		r.Spawn(i, "p", func(c *Ctx) {
			arr := c.PrivAlloc(8)
			for j := 0; j < 8; j++ {
				c.PWrite(arr, j, uint32((i+1)*100+j))
			}
			vals[i] = c.PRead(arr, 3)
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 103 || vals[1] != 203 {
		t.Fatalf("private values = %v", vals)
	}
}

func TestCodeFootprintChangesIStalls(t *testing.T) {
	run := func(bytes int) uint64 {
		sys := testSys(t, 1)
		r := New(sys, NoCC())
		r.Spawn(0, "w", func(c *Ctx) {
			c.SetCodeFootprint(bytes)
			c.Compute(20000)
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return uint64(sys.Tiles[0].Stats.IStall)
	}
	smallFp := run(2048)  // fits the 4 KiB I-cache
	largeFp := run(16384) // 4x the I-cache
	if largeFp <= smallFp*10 {
		t.Fatalf("I-stalls small=%d large=%d: thrashing footprint must dominate", smallFp, largeFp)
	}
}

// TestTracerRecordsScopes runs the message-passing pattern with tracing
// enabled and checks the recorded event stream is balanced and ordered.
func TestTracerRecordsScopes(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, SWCC())
	r.Tracer = trace.New(0)
	x := r.Alloc("X", 4)
	f := r.Alloc("f", 4)
	r.Spawn(0, "writer", func(c *Ctx) {
		c.EntryX(x)
		c.Write32(x, 0, 42)
		c.Fence()
		c.ExitX(x)
		c.EntryX(f)
		c.Write32(f, 0, 1)
		c.Flush(f)
		c.ExitX(f)
	})
	r.Spawn(1, "reader", func(c *Ctx) {
		pollUntil(c, f, 1)
		c.EntryX(x)
		c.Read32(x, 0)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	tr := r.Tracer
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
	// Balanced begin/end per tile and nondecreasing time per tile.
	depth := map[int]int{}
	lastT := map[int]sim.Time{}
	var fences, flushes int
	for _, e := range tr.Events() {
		if e.Time < lastT[e.Tile] {
			t.Fatalf("events out of order on tile %d", e.Tile)
		}
		lastT[e.Tile] = e.Time
		switch e.Phase {
		case trace.Begin:
			depth[e.Tile]++
		case trace.End:
			depth[e.Tile]--
			if depth[e.Tile] < 0 {
				t.Fatal("End without Begin")
			}
		case trace.Instant:
			switch {
			case e.Name == "fence":
				fences++
			case strings.HasPrefix(e.Name, "flush:"):
				flushes++
			}
		}
	}
	for tile, d := range depth {
		if d != 0 {
			t.Fatalf("tile %d has %d unclosed scopes", tile, d)
		}
	}
	if fences != 1 || flushes != 1 {
		t.Fatalf("fences=%d flushes=%d, want 1,1", fences, flushes)
	}
	if tr.ScopeCount("x:X") != 2 { // writer + reader
		t.Fatalf("x:X scopes = %d, want 2", tr.ScopeCount("x:X"))
	}
	// Exports work end to end.
	var csv, chrome bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if csv.Len() == 0 || chrome.Len() == 0 {
		t.Fatal("empty export")
	}
}

package rt

import (
	"fmt"

	"pmc/internal/mem"
	"pmc/internal/soc"
)

// cspmBackend is the cluster-aware variant of the scratch-pad architecture:
// scopes stage their object into the cluster's scratch memory instead of
// the tile's local memory. The canonical copy still lives in SDRAM; entry
// copies SDRAM → cluster scratch in one burst, accesses inside the scope
// pay one crossbar traversal instead of a full SDRAM round trip, and exit
// copies back.
//
// Compared to spm, the staging capacity is the (larger) cluster scratch
// shared by all member tiles — a cluster's working set is staged once per
// scope regardless of which member runs it — at the price of the crossbar
// cycle on every access. The staging arena is per cluster and shared by
// all member workers; the simulation kernel is single-threaded, so
// allocation order (and therefore every address and cycle count) is
// deterministic. Verification applies unchanged: every operation lowers to
// the same per-word model reads and writes as spm.
type cspmBackend struct{}

// CSPM returns the clustered scratch-pad backend.
func CSPM() Backend { return cspmBackend{} }

func (cspmBackend) Name() string     { return "cspm" }
func (cspmBackend) Init(rt *Runtime) {}

func (b cspmBackend) stage(c *Ctx, o *Object) mem.Addr {
	cl := c.T.Cluster
	off, ok := c.rt.clusterArena(cl.ID).alloc(o.WordCount() * 4)
	if !ok {
		panic(fmt.Sprintf("rt: cluster %d scratch exhausted staging %s (%d B)", cl.ID, o.Name, o.Size))
	}
	addr := soc.ClusterAddr(cl.ID, off)
	c.T.CopyToCluster(c.P, o.Addr, addr, o.WordCount()*4)
	return addr
}

func (b cspmBackend) unstage(c *Ctx, o *Object, addr mem.Addr) {
	_, off := soc.ClusterOffset(addr)
	c.rt.clusterArena(c.T.Cluster.ID).release(off, o.WordCount()*4)
}

func (b cspmBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
	c.scopes[o].spmAddr = b.stage(c, o)
}

func (b cspmBackend) ExitX(c *Ctx, o *Object) {
	s := c.scopes[o]
	c.T.CopyFromCluster(c.P, s.spmAddr, o.Addr, o.WordCount()*4)
	b.unstage(c, o, s.spmAddr)
	c.T.ReleaseLock(c.P, o.LockID)
}

func (b cspmBackend) EntryRO(c *Ctx, o *Object) {
	// Lock held only while copying, exactly as in spm.
	locked := o.Size > AtomicSize
	if locked {
		c.T.AcquireLock(c.P, o.LockID)
	}
	c.scopes[o].spmAddr = b.stage(c, o)
	if locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (b cspmBackend) ExitRO(c *Ctx, o *Object) {
	b.unstage(c, o, c.scopes[o].spmAddr) // discard the copy
}

func (cspmBackend) Fence(c *Ctx) {
	// Copies complete before the annotation returns; compiler barrier
	// only.
}

func (b cspmBackend) Flush(c *Ctx, o *Object) {
	s := c.scopes[o]
	c.T.CopyFromCluster(c.P, s.spmAddr, o.Addr, o.WordCount()*4)
}

func (b cspmBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	s, ok := c.scopes[o]
	if !ok {
		// Discipline violation already recorded; fall back to the
		// canonical copy so the simulation can continue.
		return c.T.ReadShared32Uncached(c.P, o.Addr+mem.Addr(off))
	}
	return c.T.ReadCluster32(c.P, s.spmAddr+mem.Addr(off))
}

func (b cspmBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	s, ok := c.scopes[o]
	if !ok {
		c.T.WriteShared32Uncached(c.P, o.Addr+mem.Addr(off), v)
		return
	}
	c.T.WriteCluster32(c.P, s.spmAddr+mem.Addr(off), v)
}

// ReadRange streams words out of the staged cluster copy; out-of-scope
// ranges fall back to the uncached canonical copy, like Read32.
func (b cspmBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	s, ok := c.scopes[o]
	if !ok {
		ReadRangeByWords(b, c, o, off, dst)
		return
	}
	readClusterRange(c, s.spmAddr+mem.Addr(off), dst)
}

// WriteRange streams words into the staged cluster copy.
func (b cspmBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	s, ok := c.scopes[o]
	if !ok {
		WriteRangeByWords(b, c, o, off, src)
		return
	}
	writeClusterRange(c, s.spmAddr+mem.Addr(off), src)
}

// CopyRange moves data between two staged copies with the cluster
// scratch's DMA port. When either object is not staged the caller falls
// back to the ranged read/write lowering.
func (b cspmBackend) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	ss, okS := c.scopes[src]
	ds, okD := c.scopes[dst]
	if !okS || !okD {
		return nil, false
	}
	return copyClusterDMA(c, ss.spmAddr+mem.Addr(srcOff), ds.spmAddr+mem.Addr(dstOff), words, wantVals), true
}

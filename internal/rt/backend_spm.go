package rt

import (
	"fmt"

	"pmc/internal/mem"
	"pmc/internal/soc"
)

// spmBackend implements the scratch-pad architecture of Table II's fourth
// column: the canonical copy of every shared object lives in SDRAM, and an
// entry copies the object into the tile's local memory for the scope's
// lifetime:
//
//   - entry_x locks the object and copies SDRAM → SPM; all accesses inside
//     the scope hit the single-cycle local copy;
//   - exit_x copies the (possibly modified) object back to SDRAM and
//     unlocks;
//   - entry_ro copies the object in (locking multi-word objects only for
//     the duration of the copy — unlike SWCC/DSM, readers then proceed
//     concurrently); exit_ro discards the copy;
//   - flush copies the object back to SDRAM without closing the scope.
//
// This is the architecture of the motion-estimation case study
// (Section VI-C): kernels with high reuse per scope amortize the copies.
type spmBackend struct{}

// SPM returns the scratch-pad-memory backend.
func SPM() Backend { return spmBackend{} }

func (spmBackend) Name() string     { return "spm" }
func (spmBackend) Init(rt *Runtime) {}

func (b spmBackend) stage(c *Ctx, o *Object) mem.Addr {
	if !c.spm.inited {
		c.spm.init(c.rt.stagingBase(), c.rt.Sys.Cfg.LocalBytes)
	}
	off, ok := c.spm.alloc(o.WordCount() * 4)
	if !ok {
		panic(fmt.Sprintf("rt: tile %d SPM exhausted staging %s (%d B)", c.T.ID, o.Name, o.Size))
	}
	addr := soc.LocalAddr(c.T.ID, off)
	c.T.CopyToLocal(c.P, o.Addr, addr, o.WordCount()*4)
	return addr
}

func (b spmBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
	c.scopes[o].spmAddr = b.stage(c, o)
}

func (b spmBackend) ExitX(c *Ctx, o *Object) {
	s := c.scopes[o]
	c.T.CopyFromLocal(c.P, s.spmAddr, o.Addr, o.WordCount()*4)
	_, off := soc.LocalOffset(s.spmAddr)
	c.spm.release(off, o.WordCount()*4)
	c.T.ReleaseLock(c.P, o.LockID)
}

func (b spmBackend) EntryRO(c *Ctx, o *Object) {
	// Lock held only while copying (Table II: "the object is locked
	// before copying and unlocked afterwards").
	locked := o.Size > AtomicSize
	if locked {
		c.T.AcquireLock(c.P, o.LockID)
	}
	c.scopes[o].spmAddr = b.stage(c, o)
	if locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (b spmBackend) ExitRO(c *Ctx, o *Object) {
	s := c.scopes[o]
	_, off := soc.LocalOffset(s.spmAddr)
	c.spm.release(off, o.WordCount()*4) // discard the copy
}

func (spmBackend) Fence(c *Ctx) {
	// Copies complete before the annotation returns; compiler barrier
	// only.
}

func (b spmBackend) Flush(c *Ctx, o *Object) {
	s := c.scopes[o]
	c.T.CopyFromLocal(c.P, s.spmAddr, o.Addr, o.WordCount()*4)
}

func (b spmBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	s, ok := c.scopes[o]
	if !ok {
		// Discipline violation already recorded; fall back to the
		// canonical copy so the simulation can continue.
		return c.T.ReadShared32Uncached(c.P, o.Addr+mem.Addr(off))
	}
	return c.T.ReadLocal32(c.P, s.spmAddr+mem.Addr(off))
}

func (b spmBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	s, ok := c.scopes[o]
	if !ok {
		c.T.WriteShared32Uncached(c.P, o.Addr+mem.Addr(off), v)
		return
	}
	c.T.WriteLocal32(c.P, s.spmAddr+mem.Addr(off), v)
}

// ReadRange streams words out of the staged scratch-pad copy (the whole
// object was staged by one DMA burst at entry; see stage). Out-of-scope
// ranges — already reported as violations — fall back to the uncached
// canonical copy, word by word, like Read32.
func (b spmBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	s, ok := c.scopes[o]
	if !ok {
		ReadRangeByWords(b, c, o, off, dst)
		return
	}
	readLocalRange(c, s.spmAddr+mem.Addr(off), dst)
}

// WriteRange streams words into the staged scratch-pad copy.
func (b spmBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	s, ok := c.scopes[o]
	if !ok {
		WriteRangeByWords(b, c, o, off, src)
		return
	}
	writeLocalRange(c, s.spmAddr+mem.Addr(off), src)
}

// CopyRange moves data between two staged copies with the scratch-pad's
// dual-port DMA (one word per cycle, read and write overlapped). When
// either object is not staged the caller falls back to the ranged
// read/write lowering.
func (b spmBackend) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	ss, okS := c.scopes[src]
	ds, okD := c.scopes[dst]
	if !okS || !okD {
		return nil, false
	}
	return copyLocalDMA(c, ss.spmAddr+mem.Addr(srcOff), ds.spmAddr+mem.Addr(dstOff), words, wantVals), true
}

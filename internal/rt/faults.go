package rt

import (
	"fmt"
	"strings"

	"pmc/internal/sim"
)

// Fault injection: wrap a backend and selectively disable one of the
// Table II protocol mechanisms. Every mechanism the paper prescribes is
// load-bearing, and the fault tests (faults_test.go) plus the litmus
// fuzzer (internal/fuzz) use this facility to prove it end-to-end: a
// disabled step must surface as wrong results, model violations, or
// livelock — never silently pass.

// FaultSet selects protocol steps to disable in a wrapped backend. The
// zero value disables nothing.
type FaultSet struct {
	// SkipExitFlush makes exit_x release the lock without flushing the
	// object (swcc: dirty data stays cached, SDRAM goes stale).
	SkipExitFlush bool
	// SkipROFlush makes exit_ro leave the object's lines resident
	// (swcc: future polls read stale cached data).
	SkipROFlush bool
	// SkipFlush turns flush() into a no-op (any backend: pollers on
	// weak-visibility backends never observe the value).
	SkipFlush bool
	// DropTransfer erases the data-carrying lock-transfer hook
	// (dsm/swcc-lazy: the new owner computes on a stale replica).
	DropTransfer bool
}

// String names the enabled faults, e.g. "release-without-flush".
func (f FaultSet) String() string {
	var parts []string
	if f.SkipExitFlush {
		parts = append(parts, "release-without-flush")
	}
	if f.SkipROFlush {
		parts = append(parts, "exit-ro-without-invalidate")
	}
	if f.SkipFlush {
		parts = append(parts, "flush-noop")
	}
	if f.DropTransfer {
		parts = append(parts, "dropped-transfer")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseFaultSet parses a "+"-separated list of fault names as printed by
// String ("none" or the empty string select nothing).
func ParseFaultSet(s string) (FaultSet, error) {
	var f FaultSet
	if s == "" || s == "none" {
		return f, nil
	}
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "release-without-flush":
			f.SkipExitFlush = true
		case "exit-ro-without-invalidate":
			f.SkipROFlush = true
		case "flush-noop":
			f.SkipFlush = true
		case "dropped-transfer":
			f.DropTransfer = true
		default:
			return FaultSet{}, fmt.Errorf("rt: unknown fault %q (release-without-flush, exit-ro-without-invalidate, flush-noop, dropped-transfer)", part)
		}
	}
	return f, nil
}

// Enabled reports whether any fault is selected.
func (f FaultSet) Enabled() bool {
	return f.SkipExitFlush || f.SkipROFlush || f.SkipFlush || f.DropTransfer
}

// InjectFaults wraps b with the selected protocol faults. The wrapped
// backend still provides mutual exclusion (locks are untouched), so any
// resulting failure is a coherence failure, not a lock failure.
func InjectFaults(b Backend, f FaultSet) Backend {
	return &faulty{Backend: b, faults: f}
}

// faulty wraps a backend and selectively disables protocol steps.
type faulty struct {
	Backend
	faults FaultSet
}

func (f *faulty) ExitX(c *Ctx, o *Object) {
	if f.faults.SkipExitFlush {
		c.T.ReleaseLock(c.P, o.LockID) // no flush: dirty data stays cached
		return
	}
	f.Backend.ExitX(c, o)
}

func (f *faulty) ExitRO(c *Ctx, o *Object) {
	if f.faults.SkipROFlush {
		if c.scopes[o].locked {
			c.T.ReleaseLock(c.P, o.LockID)
		}
		return // lines stay resident: future polls read stale data
	}
	f.Backend.ExitRO(c, o)
}

func (f *faulty) Flush(c *Ctx, o *Object) {
	if f.faults.SkipFlush {
		return
	}
	f.Backend.Flush(c, o)
}

// lockTransfer drops the data-carrying transfer (DropTransfer) or
// delegates to the wrapped backend's transfer logic. The runtime's
// per-object transfer mux calls it only for objects routed to this
// wrapper, so a fault composed with routing hits exactly its own route.
func (f *faulty) lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time {
	if f.faults.DropTransfer {
		return t // new owner computes on a stale replica / stale cache
	}
	if lt, ok := f.Backend.(lockTransferrer); ok {
		return lt.lockTransfer(rt, o, from, to, t)
	}
	return t
}

// unwrap exposes the decorated backend so the runtime resolves the
// object's effective protocol (e.g. the recorder's spm staging detection)
// through the fault wrapper.
func (f *faulty) unwrap() Backend { return f.Backend }

// CopyRange forwards the optional block-copy capability of the wrapped
// backend: faults disable protocol steps (flushes, transfers), never data
// movement, so ranged operations pass through unchanged. (ReadRange and
// WriteRange are promoted from the embedded Backend for the same reason.)
func (f *faulty) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	if rc, ok := f.Backend.(rangeCopier); ok {
		return rc.CopyRange(c, dst, dstOff, src, srcOff, words, wantVals)
	}
	return nil, false
}

func (f *faulty) Name() string { return f.Backend.Name() + "-faulty" }

package rt

import (
	"strings"
	"testing"

	"pmc/internal/lock"
	"pmc/internal/sim"
)

// This file injects protocol faults through the exported rt.InjectFaults
// facility: it disables one Table II mechanism at a time and asserts that
// the system observably breaks — wrong results, model violations from the
// recorder, or livelock caught by the watchdog. Every mechanism the paper
// prescribes is load-bearing. The litmus fuzzer (internal/fuzz) uses the
// same facility to prove it catches and shrinks real protocol bugs.

// counterWorkload increments a shared counter from every tile and returns
// the final value and the recorder.
func counterWorkload(t *testing.T, b Backend, tiles, iters int, maxCycles sim.Time) (uint32, *Recorder, error) {
	t.Helper()
	sys := testSys(t, tiles)
	if maxCycles != 0 {
		sys.K.MaxTime = maxCycles
	}
	r := New(sys, b)
	rec := NewRecorder(r)
	ctr := r.Alloc("counter", 4)
	for i := 0; i < tiles; i++ {
		r.Spawn(i, "incr", func(c *Ctx) {
			for n := 0; n < iters; n++ {
				c.EntryX(ctr)
				c.Write32(ctr, 0, c.Read32(ctr, 0)+1)
				c.ExitX(ctr)
				c.Compute(25)
			}
		})
	}
	err := r.Run()
	return r.ReadObjectWord(ctr, 0), rec, err
}

// TestFaultSWCCMissingExitFlush: without the exit_x flush, a later owner
// reads stale SDRAM data and increments are lost. The recorder must flag
// the stale read as a model violation.
func TestFaultSWCCMissingExitFlush(t *testing.T) {
	got, rec, err := counterWorkload(t, InjectFaults(SWCC(), FaultSet{SkipExitFlush: true}), 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == 32 {
		t.Fatal("fault had no effect: counter is correct without the exit flush")
	}
	if rec.Err() == nil {
		t.Fatal("recorder did not flag the stale reads")
	}
	if !strings.Contains(rec.Errors[0], "not readable") {
		t.Fatalf("unexpected violation text: %s", rec.Errors[0])
	}
	// The healthy protocol passes the identical workload.
	got, rec, err = counterWorkload(t, SWCC(), 4, 8, 0)
	if err != nil || got != 32 || rec.Err() != nil {
		t.Fatalf("healthy run broken: got=%d err=%v recErr=%v", got, err, rec.Err())
	}
}

// TestFaultSWCCMissingROInvalidate: if exit_ro leaves the lines resident,
// a polling reader never observes the flag flip — livelock, caught by the
// watchdog.
func TestFaultSWCCMissingROInvalidate(t *testing.T) {
	sys := testSys(t, 2)
	sys.K.MaxTime = 300_000
	r := New(sys, InjectFaults(SWCC(), FaultSet{SkipROFlush: true}))
	flag := r.Alloc("flag", 4)
	r.Spawn(0, "reader", func(c *Ctx) {
		pollUntil(c, flag, 1) // first poll caches 0; never invalidated
	})
	r.Spawn(1, "writer", func(c *Ctx) {
		c.Compute(500) // let the reader cache the stale value first
		c.EntryX(flag)
		c.Write32(flag, 0, 1)
		c.Flush(flag)
		c.ExitX(flag)
	})
	err := r.Run()
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("expected watchdog livelock, got %v", err)
	}
}

// TestFaultDSMDroppedTransfer: without the data push at lock transfer, the
// new owner computes on its stale replica. Increments are lost and the
// recorder flags it.
func TestFaultDSMDroppedTransfer(t *testing.T) {
	got, rec, err := counterWorkload(t, InjectFaults(DSM(), FaultSet{DropTransfer: true}), 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == 32 {
		t.Fatal("fault had no effect: counter correct without the transfer push")
	}
	if rec.Err() == nil {
		t.Fatal("recorder did not flag the stale replica reads")
	}
}

// TestFaultDSMDroppedFlush: flush is the only way a DSM poller learns about
// a flag; dropping it livelocks the reader.
func TestFaultDSMDroppedFlush(t *testing.T) {
	sys := testSys(t, 4)
	sys.K.MaxTime = 300_000
	r := New(sys, InjectFaults(DSM(), FaultSet{SkipFlush: true}))
	flag := r.Alloc("flag", 4)
	r.Spawn(2, "reader", func(c *Ctx) {
		pollUntil(c, flag, 1) // polls its local replica forever
	})
	r.Spawn(0, "writer", func(c *Ctx) {
		c.EntryX(flag)
		c.Write32(flag, 0, 1)
		c.Flush(flag) // dropped by the fault
		c.ExitX(flag)
	})
	err := r.Run()
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("expected watchdog livelock, got %v", err)
	}
}

// TestFaultyBackendStillLocks sanity-checks the wrapper: mutual exclusion
// is intact even with the flush faults, so the failures above are purely
// coherence failures, not lock failures.
func TestFaultyBackendStillLocks(t *testing.T) {
	sys := testSys(t, 4)
	b := InjectFaults(SWCC(), FaultSet{SkipExitFlush: true})
	r := New(sys, b)
	o := r.Alloc("obj", 4)
	inCS := false
	for i := 0; i < 4; i++ {
		r.Spawn(i, "w", func(c *Ctx) {
			for n := 0; n < 5; n++ {
				c.EntryX(o)
				if inCS {
					t.Error("mutual exclusion violated")
				}
				inCS = true
				c.Compute(20)
				inCS = false
				c.ExitX(o)
			}
		})
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestScopedFenceVerified: the writer of the message-passing pattern can
// use the cheaper location-scoped fence (Section IV-D) on X; the run still
// verifies against the model.
func TestScopedFenceVerified(t *testing.T) {
	sys := testSys(t, 2)
	r := New(sys, SWCC())
	rec := NewRecorder(r)
	x := r.Alloc("X", 4)
	f := r.Alloc("f", 4)
	var got uint32
	r.Spawn(0, "writer", func(c *Ctx) {
		c.EntryX(x)
		c.Write32(x, 0, 42)
		c.FenceObj(x) // scoped: orders only X, which is all this fence needs
		c.ExitX(x)
		c.EntryX(f)
		c.Write32(f, 0, 1)
		c.Flush(f)
		c.ExitX(f)
	})
	r.Spawn(1, "reader", func(c *Ctx) {
		pollUntil(c, f, 1)
		c.Fence() // the reader's fence spans f and X: must stay global
		c.EntryX(x)
		got = c.Read32(x, 0)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLockNoHolderConstant guards the assumption the fault wrapper makes
// about the lock package API.
func TestLockNoHolderConstant(t *testing.T) {
	if lock.NoHolder != -1 {
		t.Fatal("NoHolder changed; transfer-hook fault injection assumes -1")
	}
}

package rt

import (
	"pmc/internal/mem"
	"pmc/internal/sim"
	"pmc/internal/soc"
)

// dsmBackend implements the distributed-shared-memory architecture of
// Table II's third column: every tile holds a full replica of the shared
// heap in its local memory, and the SDRAM is not used for shared data.
// Reads and writes touch only the tile's own replica (single-cycle);
// coherence is maintained purely with remote writes over the write-only
// NoC:
//
//   - exit_x is lazy: modifications stay in the local replica;
//   - when an object's lock is transferred to another tile, the previous
//     owner writes its version of the object into the acquirer's local
//     memory before the grant is delivered ("the local version of the
//     object is written to the local memory of the acquiring processor");
//   - flush(X) broadcasts the object to every other tile's replica, which
//     is what lets concurrent read-only observers (pollers) eventually see
//     updates;
//   - entry_ro locks multi-word objects; word-sized objects are read
//     lock-free from the local replica — the property the paper's FIFO
//     exploits ("the read and write pointers are only polled from local
//     memory, which is fast and does not influence the execution of other
//     processors").
type dsmBackend struct {
	lastWriter map[int]int // object ID -> tile that last held it exclusively
}

// DSM returns the distributed-shared-memory backend (Section VI-B).
func DSM() Backend { return &dsmBackend{lastWriter: make(map[int]int)} }

func (b *dsmBackend) Name() string { return "dsm" }

// replicaAddr returns the address of o's replica inside tile t's local
// memory: the shared heap maps 1:1 into each local memory.
func (b *dsmBackend) replicaAddr(t int, o *Object) mem.Addr {
	return soc.LocalAddr(t, o.Addr)
}

func (b *dsmBackend) Init(rt *Runtime) {
	if rt.Sys.DLock == nil {
		panic("rt: the dsm backend needs the distributed lock")
	}
}

// lockTransfer carries the object data with the lock handoff: home
// notifies the previous owner, the previous owner pushes its version into
// the acquirer's replica, and the grant follows once the data has landed.
// The runtime's transfer mux dispatches here for dsm-routed objects.
func (b *dsmBackend) lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time {
	net := rt.Sys.Net
	home := rt.Sys.DLock.Home(o.LockID)
	notifyAt := t + net.ControlLatency(home, from, 8)
	buf := make([]byte, o.WordCount()*4)
	rt.Sys.Locals[from].ReadBlock(b.replicaAddr(from, o), buf)
	deliveredAt := net.PostWriteDelayed(from, to, b.replicaAddr(to, o), buf, notifyAt)
	return deliveredAt
}

// initReplicas pre-loads every tile's replica (setup, outside simulated
// time).
func (b *dsmBackend) initReplicas(rt *Runtime, o *Object, words []uint32) {
	for t := range rt.Sys.Locals {
		for i, w := range words {
			rt.Sys.Locals[t].Write32(b.replicaAddr(t, o)+mem.Addr(4*i), w)
		}
	}
}

// readCanonical returns the authoritative copy: the replica of the tile
// that last held the object exclusively (zero value: tile 0).
func (b *dsmBackend) readCanonical(rt *Runtime, o *Object, wordIdx int) uint32 {
	t := b.lastWriter[o.ID]
	return rt.Sys.Locals[t].Read32(b.replicaAddr(t, o) + mem.Addr(4*wordIdx))
}

// heapLimit bounds the shared heap to the per-tile local memory size.
func (b *dsmBackend) heapLimit(rt *Runtime) int {
	return rt.Sys.Cfg.LocalBytes
}

func (b *dsmBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
	b.lastWriter[o.ID] = c.T.ID
}

func (b *dsmBackend) ExitX(c *Ctx, o *Object) {
	// Lazy release: nothing to publish; the transfer hook moves data
	// when the lock next changes tiles.
	c.T.ReleaseLock(c.P, o.LockID)
}

func (b *dsmBackend) EntryRO(c *Ctx, o *Object) {
	if o.Size > AtomicSize {
		c.T.AcquireLock(c.P, o.LockID)
		c.scopes[o].locked = true
	}
}

func (b *dsmBackend) ExitRO(c *Ctx, o *Object) {
	if c.scopes[o].locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (b *dsmBackend) Fence(c *Ctx) {
	// In-order core, local-memory accesses complete in order: compiler
	// barrier only.
}

// Flush broadcasts the object from the caller's replica to all other
// tiles as a single burst of posted writes over the write-only NoC: the
// core programs the network interface once and the NI streams the
// per-destination messages back-to-back (per-flit pipelining), instead of
// the core paying an injection cycle per destination. Delivery remains
// asynchronous (best effort, as the model requires).
func (b *dsmBackend) Flush(c *Ctx, o *Object) {
	locals := c.rt.Sys.Locals
	if len(locals) < 2 {
		return
	}
	buf := make([]byte, o.WordCount()*4)
	c.T.Local.ReadBlock(b.replicaAddr(c.T.ID, o), buf)
	dsts := make([]int, 0, len(locals)-1)
	for t := range locals {
		if t != c.T.ID {
			dsts = append(dsts, t)
		}
	}
	c.T.Exec(c.P, 1) // one injection op programs the whole burst
	c.rt.Sys.Net.PostWriteFan(c.T.ID, dsts, func(t int) mem.Addr { return b.replicaAddr(t, o) }, buf)
}

func (b *dsmBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	return c.T.ReadLocal32(c.P, b.replicaAddr(c.T.ID, o)+mem.Addr(off))
}

func (b *dsmBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	c.T.WriteLocal32(c.P, b.replicaAddr(c.T.ID, o)+mem.Addr(off), v)
}

// ReadRange streams words out of the tile's own replica. The local memory
// serves one word per load either way, so the range costs exactly the
// word loop; the DSM block win lives in CopyRange and the flush burst.
func (b *dsmBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	readLocalRange(c, b.replicaAddr(c.T.ID, o)+mem.Addr(off), dst)
}

// WriteRange streams words into the tile's own replica.
func (b *dsmBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	writeLocalRange(c, b.replicaAddr(c.T.ID, o)+mem.Addr(off), src)
}

// CopyRange moves data between two replicas in the tile's local memory
// with the dual-port DMA: read and write ports overlap at one word per
// cycle, half the cost of the load/store-per-word loop.
func (b *dsmBackend) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	srcA := b.replicaAddr(c.T.ID, src) + mem.Addr(srcOff)
	dstA := b.replicaAddr(c.T.ID, dst) + mem.Addr(dstOff)
	return copyLocalDMA(c, srcA, dstA, words, wantVals), true
}

// Package rt is the PMC runtime: the concrete implementation of the
// paper's annotations (Section V-A) on the simulated SoC, with one backend
// per memory architecture of Table II:
//
//	nocc — shared data uncached; annotations keep only mutual exclusion
//	       (this doubles as the sequentially consistent reference, and is
//	       the "no CC" baseline of Fig. 8);
//	swcc — software cache coherency over the non-coherent write-back
//	       caches (Fig. 8's "SWCC"), BACKER-style;
//	dsm  — distributed shared memory over the write-only NoC: every tile
//	       holds a replica of the shared heap in its local memory;
//	spm  — scratch-pad staging: objects are copied into the tile's local
//	       memory for the duration of a scope and copied back on exit.
//
// A single application written against Ctx's annotation API runs unchanged
// on all four — the PMC approach's portability claim. The runtime also
// enforces the annotation discipline (reads only inside entry/exit scopes,
// writes only inside exclusive scopes, flush only inside entry_x/exit_x)
// and can record every operation into the formal model (internal/core) for
// differential verification.
package rt

import (
	"fmt"

	"pmc/internal/lock"
	"pmc/internal/mem"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/trace"
)

// Address-space layout inside SDRAM (above the shared heap at 0).
const (
	// heapBase is where shared objects are allocated.
	heapBase = mem.Addr(0x0000_0040)
	// codeBase is where per-tile code footprints live.
	codeBase = mem.Addr(0x0100_0000)
	// codeStride is the per-tile code region size.
	codeStride = mem.Addr(0x0001_0000)
	// privBase is where per-tile private heaps (stack/heap analogue)
	// live: after the code regions (codeBase + 32 tiles × codeStride).
	privBase = mem.Addr(0x0140_0000)
	// privStride is the per-tile private heap size.
	privStride = mem.Addr(0x0004_0000)
)

// MinSDRAMBytes returns the smallest SDRAM size whose memory map holds the
// per-tile private heaps of a system with the given tile count, plus one
// stride of headroom for the central lock table at the top. The default
// 32 MiB of soc.DefaultConfig covers the paper's 32 tiles but stops at 48;
// kilotile configurations must scale SDRAM with this.
func MinSDRAMBytes(tiles int) int {
	return int(privBase + mem.Addr(tiles+1)*privStride)
}

// AtomicSize is the largest object the platform reads and writes
// indivisibly (one 32-bit bus word). The model speaks of bytes; on the
// 32-bit MicroBlaze an aligned word is indivisible, so entry_ro of objects
// up to this size needs no lock (Table II's "when the size of the object is
// one byte, it does nothing", adapted to the platform's atom).
const AtomicSize = 4

// Object is a shared, annotated object: the unit entry/exit pairs protect.
// Objects are cache-line aligned and never share a line (Section V-B).
type Object struct {
	ID   int
	Name string
	Size int
	// Addr is the canonical SDRAM address.
	Addr mem.Addr
	// LockID is the mutex protecting the object.
	LockID int
	// route is the backend every annotation and access on this object
	// dispatches through (allocation-level consistency).
	route Backend
}

// WordCount returns the number of 32-bit words the object spans.
func (o *Object) WordCount() int { return (o.Size + 3) / 4 }

// Backend returns the name of the backend this object is routed to.
func (o *Object) Backend() string { return o.route.Name() }

// Backend implements the annotations for one memory architecture
// (Table II). All methods run in the calling worker's process context and
// charge simulated time through the Ctx's tile.
//
// The data-access surface is ranged (annotation API v2): ReadRange and
// WriteRange move [off, off+4·len) in one operation, and Read32/Write32
// are the one-word special case kept as distinct methods so their
// instruction sequence — and therefore their sim-cycle cost — is pinned
// exactly to the historical word path. A word-granular backend can be
// lifted to the full interface with AdaptWordBackend.
type Backend interface {
	// WordBackend is the v1 surface: annotations plus the word-granular
	// accesses.
	WordBackend
	// ReadRange reads len(dst) words starting at byte offset off.
	ReadRange(c *Ctx, o *Object, off int, dst []uint32)
	// WriteRange writes len(src) words starting at byte offset off.
	WriteRange(c *Ctx, o *Object, off int, src []uint32)
}

// rangeCopier is the optional backend capability behind Ctx.Copy: an
// object-to-object block move that beats the read-range-then-write-range
// lowering (e.g. a single-port-overlapped local-memory DMA on DSM/SPM).
// It reports false when this particular copy cannot be accelerated, in
// which case the caller falls back to ReadRange+WriteRange. The copied
// word values are materialized only when wantVals is set (the recorder
// lowers them to model reads and writes); recorder-free runs skip the
// readback entirely.
type rangeCopier interface {
	CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool)
}

// copyLocalDMA runs the dual-port local-memory DMA between two resolved
// local addresses — the shared body of the dsm and spm CopyRange
// implementations — returning the copied values only on demand.
func copyLocalDMA(c *Ctx, srcA, dstA mem.Addr, words int, wantVals bool) []uint32 {
	c.T.CopyLocal(c.P, srcA, dstA, words*4)
	if !wantVals {
		return nil
	}
	vals := make([]uint32, words)
	local := c.rt.Sys.Locals[c.T.ID]
	for i := range vals {
		vals[i] = local.Read32(dstA + mem.Addr(4*i))
	}
	return vals
}

// readLocalRange streams a word range out of a resolved local-memory
// address, one load instruction per word (dsm replicas, spm staged
// copies).
func readLocalRange(c *Ctx, base mem.Addr, dst []uint32) {
	for i := range dst {
		dst[i] = c.T.ReadLocal32(c.P, base+mem.Addr(4*i))
	}
}

// writeLocalRange streams a word range into a resolved local-memory
// address, one store instruction per word.
func writeLocalRange(c *Ctx, base mem.Addr, src []uint32) {
	for i, v := range src {
		c.T.WriteLocal32(c.P, base+mem.Addr(4*i), v)
	}
}

// WordBackend is the v1 word-granular backend surface. Existing backends
// that only speak one 32-bit word at a time keep working through
// AdaptWordBackend, which lowers the ranged operations onto the word path.
type WordBackend interface {
	Name() string
	// Init is called once after the runtime is assembled, before any
	// worker runs (e.g. DSM replica setup, lock transfer hooks).
	Init(rt *Runtime)
	EntryX(c *Ctx, o *Object)
	ExitX(c *Ctx, o *Object)
	EntryRO(c *Ctx, o *Object)
	ExitRO(c *Ctx, o *Object)
	Fence(c *Ctx)
	Flush(c *Ctx, o *Object)
	Read32(c *Ctx, o *Object, off int) uint32
	Write32(c *Ctx, o *Object, off int, v uint32)
}

// AdaptWordBackend lifts a word-granular backend to the ranged Backend
// interface by lowering ReadRange/WriteRange to one Read32/Write32 per
// word — the compatibility path: semantics and per-word cost are exactly
// the v1 loop an application would have written.
func AdaptWordBackend(b WordBackend) Backend { return &wordAdapter{WordBackend: b} }

type wordAdapter struct{ WordBackend }

func (a *wordAdapter) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	ReadRangeByWords(a.WordBackend, c, o, off, dst)
}

func (a *wordAdapter) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	WriteRangeByWords(a.WordBackend, c, o, off, src)
}

// ReadRangeByWords lowers a ranged read onto a backend's word path.
func ReadRangeByWords(b WordBackend, c *Ctx, o *Object, off int, dst []uint32) {
	for i := range dst {
		dst[i] = b.Read32(c, o, off+4*i)
	}
}

// WriteRangeByWords lowers a ranged write onto a backend's word path.
func WriteRangeByWords(b WordBackend, c *Ctx, o *Object, off int, src []uint32) {
	for i, v := range src {
		b.Write32(c, o, off+4*i, v)
	}
}

// replicated is the capability of backends that keep full replicas of the
// shared heap outside the canonical SDRAM copy (dsm per tile, cdsm per
// cluster). The runtime uses it to pre-load replicas, to read the
// authoritative copy after a run, and to bound the heap to the replica
// capacity. Asserted as an interface so it promotes through wrappers that
// embed a Backend (e.g. the fault-injecting decorator).
type replicated interface {
	initReplicas(rt *Runtime, o *Object, words []uint32)
	readCanonical(rt *Runtime, o *Object, wordIdx int) uint32
	// heapLimit is the replica capacity in bytes.
	heapLimit(rt *Runtime) int
}

// lockTransferrer is the capability of backends whose protocol piggybacks
// data movement on a lock handoff (dsm replica forwarding, cdsm cross-
// cluster forwarding, swcc-lazy deferred flush). The runtime owns the
// single DLock.OnTransfer hook and dispatches each transfer to the owning
// object's route through this interface, so mixed-route runs compose:
// every route sees exactly the handoffs of its own objects.
type lockTransferrer interface {
	lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time
}

// unwrapper is implemented by decorating backends (the fault injector) so
// the runtime can see through them when resolving an object's effective
// protocol (e.g. the recorder's staging special case for spm).
type unwrapper interface {
	unwrap() Backend
}

// protocolResolver is implemented by backends that route per-object to an
// inner protocol (the adaptive backend): protocolFor returns the protocol
// currently serving o.
type protocolResolver interface {
	protocolFor(o *Object) Backend
}

// protoFor resolves the effective protocol backend serving o right now,
// seeing through decorators and the adaptive router.
func (rt *Runtime) protoFor(o *Object) Backend {
	b := o.route
	for {
		switch v := b.(type) {
		case unwrapper:
			b = v.unwrap()
		case protocolResolver:
			b = v.protocolFor(o)
		default:
			return b
		}
	}
}

// Violation is a breach of the annotation discipline detected at run time.
type Violation struct {
	Tile int
	Op   string
	Obj  string
	Msg  string
}

func (v Violation) Error() string {
	return fmt.Sprintf("pmc discipline: tile %d: %s(%s): %s", v.Tile, v.Op, v.Obj, v.Msg)
}

// Runtime binds a simulated system, a backend registry, and the
// shared-object table. B is the default backend: Alloc routes objects to
// it unless a placement rule or AllocOn says otherwise.
type Runtime struct {
	Sys *soc.System
	B   Backend

	// routes is the backend registry, keyed by Backend.Name(). Every
	// backend here has been Init'ed against this runtime.
	routes map[string]Backend

	// placement maps object names (exact, or trailing-* prefix globs) to
	// backend names; Alloc consults it before falling back to B.
	placement map[string]string

	objects   []*Object
	objByLock map[int]*Object
	objByName map[string]*Object
	heapNext  mem.Addr

	// Recorder, if non-nil, mirrors every annotation and access into the
	// formal model for differential verification (tests only; O(n²)).
	Recorder *Recorder

	// Tracer, if non-nil, records scope/fence/flush/lock events for
	// CSV or Chrome-trace export (internal/trace).
	Tracer *trace.Trace

	// Strict makes discipline violations panic instead of accumulate.
	Strict     bool
	violations []Violation

	workers []*Ctx
	nextCtx int

	// clusterArenas are the per-cluster scratch allocators of the cspm
	// backend, shared by all member workers (lazily sized to the cluster
	// count).
	clusterArenas []spmArena
}

// clusterArena returns cluster cl's scratch staging allocator, initializing
// it over the full scratch on first use.
func (rt *Runtime) clusterArena(cl int) *spmArena {
	if rt.clusterArenas == nil {
		rt.clusterArenas = make([]spmArena, len(rt.Sys.Clusters))
	}
	a := &rt.clusterArenas[cl]
	if !a.inited {
		a.init(rt.stagingBase(), rt.Sys.Cfg.ClusterMemBytes())
	}
	return a
}

// stagingBase returns the offset where scratch-pad staging arenas may start
// allocating. Replicated routes (dsm per tile, cdsm per cluster, adaptive)
// mirror the shared heap 1:1 into the same memories the staging arenas
// carve up — replicaAddr maps o.Addr straight to a local/cluster offset —
// so when any such route is registered the arenas begin above the mirrored
// heap, or a staged buffer and a live replica would silently overlap. With
// no replicated route the arena owns the memory from offset zero, exactly
// as a pure spm/cspm run always has.
func (rt *Runtime) stagingBase() mem.Addr {
	for _, b := range rt.routes {
		if _, ok := b.(replicated); ok {
			return rt.heapNext
		}
	}
	return 0
}

// Backends lists the selectable backend names.
var Backends = []string{"nocc", "swcc", "swcc-lazy", "dsm", "spm", "cdsm", "cspm", "adaptive"}

// ByName returns a fresh backend by name: nocc, swcc, swcc-lazy, dsm, spm,
// cdsm, cspm, adaptive.
func ByName(name string) (Backend, error) {
	switch name {
	case "nocc", "sc":
		return NoCC(), nil
	case "swcc":
		return SWCC(), nil
	case "swcc-lazy":
		return SWCCLazy(), nil
	case "dsm":
		return DSM(), nil
	case "spm":
		return SPM(), nil
	case "cdsm":
		return CDSM(), nil
	case "cspm":
		return CSPM(), nil
	case "adaptive":
		return Adaptive(), nil
	}
	return nil, fmt.Errorf("rt: unknown backend %q (have %v)", name, Backends)
}

// New assembles a runtime over sys. def is the default backend: Alloc
// routes objects to it unless a placement rule or AllocOn directs them
// elsewhere. extra pre-registers additional routes; AllocOn also registers
// routes lazily by name, so extra is only needed for backends that carry
// non-default construction (e.g. fault-injected wrappers).
func New(sys *soc.System, def Backend, extra ...Backend) *Runtime {
	rt := &Runtime{
		Sys:       sys,
		B:         def,
		routes:    make(map[string]Backend),
		objByLock: make(map[int]*Object),
		objByName: make(map[string]*Object),
		heapNext:  heapBase,
	}
	rt.register(def)
	for _, b := range extra {
		rt.register(b)
	}
	rt.installTransferMux()
	return rt
}

// register Inits b against the runtime and adds it to the route registry.
func (rt *Runtime) register(b Backend) {
	name := b.Name()
	if _, dup := rt.routes[name]; dup {
		panic(fmt.Sprintf("rt: New: duplicate backend route %q in registry", name))
	}
	b.Init(rt)
	rt.routes[name] = b
}

// installTransferMux points the distributed lock's single transfer hook at
// the runtime's per-object dispatcher. Backend Inits may have installed
// their own hook (the pre-routing convention); the mux supersedes them so
// each handoff reaches exactly the owning object's route.
func (rt *Runtime) installTransferMux() {
	if rt.Sys.DLock == nil {
		return
	}
	rt.Sys.DLock.OnTransfer = func(lockID, from, to int, t sim.Time) sim.Time {
		o := rt.objByLock[lockID]
		if o == nil || from == lock.NoHolder || from == to {
			return t
		}
		if lt, ok := o.route.(lockTransferrer); ok {
			return lt.lockTransfer(rt, o, from, to, t)
		}
		return t
	}
}

// route resolves a backend name to a registered route, registering (and
// Init'ing) a fresh instance on first use.
func (rt *Runtime) route(backend string) (Backend, error) {
	if b, ok := rt.routes[backend]; ok {
		return b, nil
	}
	b, err := ByName(backend)
	if err != nil {
		return nil, err
	}
	// ByName aliases (e.g. "sc" → nocc) resolve to their canonical route.
	if cur, ok := rt.routes[b.Name()]; ok {
		return cur, nil
	}
	rt.register(b)
	return b, nil
}

// SetPlacement installs the allocation routing table: object names (exact,
// or trailing-* prefix globs like "grid*") to backend names. Subsequent
// Alloc calls consult it before falling back to the default backend.
// Unknown backend names surface as panics at the first matching Alloc.
func (rt *Runtime) SetPlacement(place map[string]string) {
	rt.placement = place
}

// placedBackend returns the placement-table backend name for an object
// name: an exact match wins, then the longest trailing-* prefix glob.
func (rt *Runtime) placedBackend(name string) (string, bool) {
	if b, ok := rt.placement[name]; ok {
		return b, true
	}
	best, bestLen := "", -1
	for pat, b := range rt.placement {
		if n := len(pat) - 1; n >= 0 && pat[n] == '*' &&
			len(name) >= n && name[:n] == pat[:n] && n > bestLen {
			best, bestLen = b, n
		}
	}
	return best, bestLen >= 0
}

// Alloc creates a shared object of the given size (bytes), cache-line
// aligned, protected by a fresh lock, routed to the default backend (or
// the placement table's choice, if one matches). Object names must be
// unique: the runtime, traces and violation reports all identify objects
// by name.
func (rt *Runtime) Alloc(name string, size int) *Object {
	route := rt.B
	if b, ok := rt.placedBackend(name); ok {
		r, err := rt.route(b)
		if err != nil {
			panic(fmt.Sprintf("rt: Alloc(%q): placement: %v", name, err))
		}
		route = r
	}
	return rt.allocRoute(name, size, route)
}

// AllocOn is Alloc with an explicit backend route: the object's every
// annotation and access dispatches through the named backend, regardless
// of the runtime's default. The route is registered (and Init'ed) on first
// use; unknown names panic.
func (rt *Runtime) AllocOn(name string, size int, backend string) *Object {
	r, err := rt.route(backend)
	if err != nil {
		panic(fmt.Sprintf("rt: AllocOn(%q): %v", name, err))
	}
	return rt.allocRoute(name, size, r)
}

func (rt *Runtime) allocRoute(name string, size int, route Backend) *Object {
	if size <= 0 {
		panic(fmt.Sprintf("rt: Alloc(%q): size %d must be positive (bytes)", name, size))
	}
	if prev, dup := rt.objByName[name]; dup {
		panic(fmt.Sprintf("rt: Alloc(%q): duplicate object name (already allocated with %d bytes)", name, prev.Size))
	}
	line := mem.Addr(rt.Sys.Cfg.DCache.LineSize)
	addr := (rt.heapNext + line - 1) &^ (line - 1)
	o := &Object{
		ID:     len(rt.objects),
		Name:   name,
		Size:   size,
		Addr:   addr,
		LockID: len(rt.objects),
		route:  route,
	}
	rt.heapNext = addr + mem.Addr((size+int(line)-1)/int(line))*line
	// The replica-capacity bound applies whenever any registered route
	// keeps full-heap replicas: replicas span the whole shared heap, so
	// every allocation counts against the tightest registered limit.
	for _, b := range rt.routes {
		if d, ok := b.(replicated); ok {
			if limit := d.heapLimit(rt); int(rt.heapNext) > limit {
				panic(fmt.Sprintf("rt: %s shared heap (%#x) exceeds replica memory (%#x): shrink the working set",
					b.Name(), rt.heapNext, limit))
			}
		}
	}
	if rt.heapNext >= codeBase {
		panic("rt: shared heap overflows into the code region")
	}
	rt.objects = append(rt.objects, o)
	rt.objByLock[o.LockID] = o
	rt.objByName[o.Name] = o
	if rt.Recorder != nil {
		rt.Recorder.addObject(o)
	}
	return o
}

// Objects returns the allocation table.
func (rt *Runtime) Objects() []*Object { return rt.objects }

// ObjectByLock returns the object protected by lockID, or nil.
func (rt *Runtime) ObjectByLock(lockID int) *Object { return rt.objByLock[lockID] }

// InitObject pre-loads an object's contents before the simulation runs
// (outside simulated time): canonical SDRAM plus any backend replicas.
func (rt *Runtime) InitObject(o *Object, words []uint32) {
	if len(words) > o.WordCount() {
		panic("rt: InitObject data larger than object")
	}
	for i, w := range words {
		rt.Sys.SDRAM.Write32(o.Addr+mem.Addr(4*i), w)
	}
	if d, ok := o.route.(replicated); ok {
		d.initReplicas(rt, o, words)
	}
	if rt.Recorder != nil {
		rt.Recorder.initObject(o, words)
	}
}

// ReadObjectWord reads an object's canonical word outside simulated time
// (for result verification after Run). For replicated backends (dsm, cdsm)
// the authoritative copy is the replica of the tile/cluster that last held
// the object exclusively.
func (rt *Runtime) ReadObjectWord(o *Object, wordIdx int) uint32 {
	if d, ok := o.route.(replicated); ok {
		return d.readCanonical(rt, o, wordIdx)
	}
	return rt.Sys.SDRAM.Read32(o.Addr + mem.Addr(4*wordIdx))
}

// drain writes every dirty cache line back to SDRAM at the data level
// (zero simulated cost), making SDRAM canonical for post-run verification —
// the lazy-release SWCC variant legitimately finishes with the latest data
// still dirty in the last owner's cache. At most one cache holds any line
// dirty (shared objects are single-writer by the lock discipline, private
// lines are per tile), so the drain cannot overwrite newer data.
func (rt *Runtime) drain() {
	for _, t := range rt.Sys.Tiles {
		t.DC.FlushAll()
	}
}

// Spawn starts a worker on the given tile. body runs in a simulation
// process; all annotation calls go through the returned/provided Ctx.
func (rt *Runtime) Spawn(tile int, name string, body func(c *Ctx)) {
	if tile < 0 || tile >= len(rt.Sys.Tiles) {
		panic(fmt.Sprintf("rt: Spawn on tile %d of %d", tile, len(rt.Sys.Tiles)))
	}
	t := rt.Sys.Tiles[tile]
	rt.Sys.K.Spawn(name, func(p *sim.Proc) {
		c := &Ctx{
			rt:       rt,
			P:        p,
			T:        t,
			scopes:   make(map[*Object]*scope),
			privNext: privBase + mem.Addr(tile)*privStride,
		}
		rt.workers = append(rt.workers, c)
		body(c)
		c.finish()
	})
}

// Run executes the simulation until completion and returns an error on
// deadlock, watchdog, or (if any) the first discipline violation.
func (rt *Runtime) Run() error {
	if err := rt.Sys.Run(); err != nil {
		return err
	}
	rt.drain()
	if len(rt.violations) > 0 {
		return rt.violations[0]
	}
	return nil
}

// Violations returns all detected discipline violations.
func (rt *Runtime) Violations() []Violation { return rt.violations }

func (rt *Runtime) violate(c *Ctx, op string, o *Object, msg string) {
	name := "-"
	if o != nil {
		name = o.Name
	}
	v := Violation{Tile: c.T.ID, Op: op, Obj: name, Msg: msg}
	if rt.Strict {
		panic(v.Error())
	}
	rt.violations = append(rt.violations, v)
}

// Barrier is a zero-cost synchronization barrier for orchestrating workload
// phases outside the measured region (setup, result collection). It is
// simulation machinery, not a PMC primitive — measured in-application
// barriers must be built from annotations instead.
type Barrier struct {
	n       int
	waiting []*sim.Proc
	round   int
}

// NewBarrier returns a barrier for n workers.
func (rt *Runtime) NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks until n workers arrive.
func (b *Barrier) Wait(c *Ctx) {
	if len(b.waiting)+1 == b.n {
		ws := b.waiting
		b.waiting = nil
		b.round++
		for _, w := range ws {
			w.Unpark(nil)
		}
		return
	}
	b.waiting = append(b.waiting, c.P)
	c.P.Park()
}

package rt

import (
	"testing"

	"pmc/internal/noc"
	"pmc/internal/soc"
)

// clusterSys builds a system with a genuine multi-cluster topology.
func clusterSys(t *testing.T, tiles, perCluster int) *soc.System {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	cfg.MaxCycles = 50_000_000
	topo, err := noc.ParseTopology("cluster:4xring")
	if err != nil {
		t.Fatal(err)
	}
	topo.Local = perCluster
	cfg.NoC.Topology = topo
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCDSMCrossClusterTransfer: message passing where writer and reader sit
// in different clusters, so the lock transfer must carry the data across
// the backbone into the reader's cluster replica. The recorder verifies
// every read against the formal model.
func TestCDSMCrossClusterTransfer(t *testing.T) {
	sys := clusterSys(t, 8, 4) // 2 clusters of 4
	r := New(sys, CDSM())
	rec := NewRecorder(r)
	x := r.Alloc("X", 64)
	f := r.Alloc("f", 4)
	var got uint32
	r.Spawn(0, "writer", func(c *Ctx) { // cluster 0
		c.EntryX(x)
		c.Write32(x, 0, 42)
		c.Write32(x, 60, 7)
		c.Fence()
		c.ExitX(x)
		c.EntryX(f)
		c.Write32(f, 0, 1)
		c.Flush(f)
		c.ExitX(f)
	})
	r.Spawn(5, "reader", func(c *Ctx) { // cluster 1
		pollUntil(c, f, 1)
		c.Fence()
		c.EntryX(x)
		got = c.Read32(x, 0) + c.Read32(x, 60)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 49 {
		t.Fatalf("cross-cluster reader got %d, want 49", got)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	// The transfer must have crossed the backbone.
	if st := sys.Net.Stats(); st.GlobalFlitHops == 0 {
		t.Fatal("cross-cluster transfer produced no backbone traffic")
	}
}

// TestCDSMIntraClusterTransferMovesNoData: when the lock moves between two
// tiles of the same cluster, the shared replica makes any data copy
// unnecessary — no NoC payload traffic at all beyond lock control.
func TestCDSMIntraClusterTransferMovesNoData(t *testing.T) {
	sys := clusterSys(t, 8, 4)
	r := New(sys, CDSM())
	x := r.Alloc("X", 64)
	r.InitObject(x, []uint32{5})
	done := r.NewBarrier(2)
	var got uint32
	r.Spawn(0, "a", func(c *Ctx) { // cluster 0
		c.EntryX(x)
		c.Write32(x, 0, 11)
		c.ExitX(x)
		done.Wait(c)
	})
	r.Spawn(1, "b", func(c *Ctx) { // cluster 0 as well
		done.Wait(c)
		c.EntryX(x)
		got = c.Read32(x, 0)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("intra-cluster reader got %d, want 11", got)
	}
	if st := sys.Net.Stats(); st.GlobalFlitHops != 0 {
		t.Fatalf("intra-cluster handoff crossed the backbone (%d global flit-hops)", st.GlobalFlitHops)
	}
}

// TestCSPMStagesInClusterScratch: a cspm scope stages into the cluster
// scratch window, is serviced from there, and writes back on exit.
func TestCSPMStagesInClusterScratch(t *testing.T) {
	sys := clusterSys(t, 8, 4)
	r := New(sys, CSPM())
	x := r.Alloc("X", 128)
	r.Spawn(6, "w", func(c *Ctx) { // cluster 1
		c.EntryX(x)
		c.Write32(x, 0, 0xbeef)
		c.ExitX(x)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if v := r.ReadObjectWord(x, 0); v != 0xbeef {
		t.Fatalf("canonical copy = %#x, want 0xbeef", v)
	}
	// The staging traffic must have charged the cluster scratch ports of
	// cluster 1, not any tile-local memory.
	if sys.Clusters[1].Scratch.CoreWrites == 0 {
		t.Fatal("cspm scope did not touch the cluster scratch")
	}
}

// TestCSPMArenaSharedAcrossTiles: two member tiles staging simultaneously
// draw from the same per-cluster arena, and both copies round-trip.
func TestCSPMArenaSharedAcrossTiles(t *testing.T) {
	sys := clusterSys(t, 8, 4)
	r := New(sys, CSPM())
	a := r.Alloc("A", 64)
	b := r.Alloc("B", 64)
	var gotA, gotB uint32
	r.Spawn(0, "wa", func(c *Ctx) {
		c.EntryX(a)
		c.Write32(a, 0, 1)
		gotA = c.Read32(a, 0)
		c.ExitX(a)
	})
	r.Spawn(1, "wb", func(c *Ctx) {
		c.EntryX(b)
		c.Write32(b, 0, 2)
		gotB = c.Read32(b, 0)
		c.ExitX(b)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if gotA != 1 || gotB != 2 {
		t.Fatalf("staged reads = %d/%d, want 1/2", gotA, gotB)
	}
	if r.ReadObjectWord(a, 0) != 1 || r.ReadObjectWord(b, 0) != 2 {
		t.Fatal("canonical copies not written back")
	}
	// Both scopes are closed: the arena must be fully coalesced again.
	arena := r.clusterArena(0)
	if len(arena.free) != 1 || arena.free[0].size != sys.Cfg.ClusterMemBytes() {
		t.Fatalf("cluster arena not fully released: %+v", arena.free)
	}
}

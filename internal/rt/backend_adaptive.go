package rt

import (
	"pmc/internal/mem"
	"pmc/internal/sim"
)

// adaptiveBackend implements regional consistency over the routing layer:
// each object starts on the uncached nocc protocol, the backend observes
// its access pattern (scope entries, cross-tile handoffs, block traffic),
// and when the evidence favors another protocol the object migrates —
// only at an exit_x with no scope open anywhere, the boundary where the
// model guarantees a consistent cut:
//
//   - read-mostly objects (RO scopes dominate) → swcc, so readers hit the
//     cache;
//   - migratory objects (the lock ping-pongs between tiles) → dsm, so the
//     data rides the lock transfer;
//   - streaming objects (block traffic dominates scope count) → spm, so a
//     scope is one burst in, one burst out;
//   - small exclusively-written objects → nocc, where annotations cost
//     nothing beyond the lock.
//
// Migration mechanics keep the canonical story intact: leaving dsm copies
// the owner's replica back to SDRAM while the lock is still held; entering
// dsm seeds every tile's replica from SDRAM before the posted release can
// grant the lock onward (the release message has not even been delivered
// when the seeding runs, so no event can observe a half-migrated object).
type adaptiveBackend struct {
	rt    *Runtime
	nocc  Backend
	swcc  Backend
	dsm   *dsmBackend
	spm   Backend
	state map[int]*adaptState // object ID -> pattern state
}

// adaptState is the per-object access-pattern record.
type adaptState struct {
	proto Backend // protocol currently serving the object
	// open counts scopes that are open or mid-entry anywhere (a waiter
	// parked in entry_x counts): migration is only legal at zero.
	open       int
	xEntries   int
	roEntries  int
	handoffs   int // exclusive entries from a different tile than the last
	lastXTile  int
	blockWords int // words moved by ranged operations
	wordOps    int // word-granularity reads and writes
	migrations int
}

// adaptWarmup is the number of scope entries observed before the policy
// considers leaving the initial protocol.
const adaptWarmup = 3

// adaptStreamWords is the block-traffic threshold that substitutes for the
// entry-count warmup: an object that moves this many words through ranged
// operations has identified itself as streaming in as little as one scope,
// and waiting adaptWarmup entries would spend most of its lifetime on the
// wrong protocol (per-slot streams are often entered only a few times).
const adaptStreamWords = 32

// Adaptive returns the adaptive mixed-consistency backend.
func Adaptive() Backend {
	return &adaptiveBackend{state: make(map[int]*adaptState)}
}

func (b *adaptiveBackend) Name() string { return "adaptive" }

func (b *adaptiveBackend) Init(rt *Runtime) {
	b.rt = rt
	b.nocc = NoCC()
	b.swcc = SWCC()
	b.dsm = DSM().(*dsmBackend)
	b.spm = SPM()
	for _, inner := range []Backend{b.nocc, b.swcc, b.dsm, b.spm} {
		inner.Init(rt)
	}
}

func (b *adaptiveBackend) st(o *Object) *adaptState {
	s, ok := b.state[o.ID]
	if !ok {
		s = &adaptState{proto: b.nocc, lastXTile: -1}
		b.state[o.ID] = s
	}
	return s
}

// protocolFor resolves the protocol currently serving o (the
// protocolResolver capability: the recorder and ReadObjectWord see through
// the router).
func (b *adaptiveBackend) protocolFor(o *Object) Backend { return b.st(o).proto }

// pick returns the protocol the observed pattern favors.
func (b *adaptiveBackend) pick(st *adaptState, o *Object) Backend {
	total := st.xEntries + st.roEntries
	if total < adaptWarmup && st.blockWords < adaptStreamWords {
		return st.proto
	}
	switch {
	case st.blockWords >= 8*total && st.blockWords >= 32*st.wordOps:
		// Streaming: scopes move ≥8 words of block traffic each on
		// average and word-granularity accesses are rare — stage once
		// per scope instead of paying per word. The second clause keeps
		// halo-style objects out: a reader that wants one word must not
		// pay a whole-object staging copy because some other scope
		// streams the object in bulk.
		return b.spm
	case st.xEntries == 0:
		// Never written inside the run: readers can cache without any
		// invalidation traffic. (A mere read-majority is not enough —
		// an object rewritten between read bursts invalidates every
		// cached copy, and swcc would pay the miss plus the flush.)
		return b.swcc
	case 2*st.handoffs >= st.xEntries:
		// Migratory: ≥half the exclusive entries come from a new tile —
		// carry the data with the lock transfer.
		return b.dsm
	case o.Size <= 2*AtomicSize && st.roEntries == 0:
		// Contended small: exclusively-written word-or-two objects keep
		// the uncached path, whose annotations cost only the lock.
		return b.nocc
	case st.roEntries == 0:
		// Exclusive reuse of a sizable object that does not ping-pong:
		// the same tile keeps re-entering, so let it keep the data in
		// its cache between scopes.
		return b.swcc
	}
	return st.proto
}

func (b *adaptiveBackend) EntryX(c *Ctx, o *Object) {
	st := b.st(o)
	st.xEntries++
	b.flipAtEntry(o, st)
	// Count before acquiring: a parked waiter holds off migration, so the
	// protocol it entered under is the one it runs under.
	st.open++
	st.proto.EntryX(c, o)
	if st.lastXTile >= 0 && st.lastXTile != c.T.ID {
		st.handoffs++
	}
	st.lastXTile = c.T.ID
}

func (b *adaptiveBackend) ExitX(c *Ctx, o *Object) {
	st := b.st(o)
	st.open--
	cur := st.proto
	target := b.pick(st, o)
	if target == cur || st.open > 0 {
		cur.ExitX(c, o)
		return
	}
	b.migrate(c, o, st, cur, target, func() { cur.ExitX(c, o) })
}

// migrate moves o from cur to target at a scope exit the caller is about
// to perform while holding o's lock. The mechanics keep the canonical
// story intact at every instant another worker could look:
//
//   - the authoritative words are gathered through the departing
//     protocol's own modelled reads while the lock is still held: they
//     queue behind any posted stores still in flight at the SDRAM (nocc),
//     hit the dirty cache (swcc), read the staging copy (spm), or the
//     lock-carried replica (dsm) — the snapshot is exact and the time is
//     charged to the migrating worker;
//   - leaving dsm additionally copies the replica back to SDRAM with the
//     modelled DMA, making SDRAM canonical for the incoming protocol;
//   - the exit's release is posted and undelivered when it returns, so
//     the replica seeding and the protocol flip below run before any
//     grant, transfer, or rival access — atomic with the exit. The one
//     exception is a lock-free entry_ro of a word-sized object, which a
//     rival can start during the gather's waits: the open re-check below
//     aborts the flip and leaves the migration for a later exit.
func (b *adaptiveBackend) migrate(c *Ctx, o *Object, st *adaptState, cur, target Backend, exit func()) {
	var snapshot []uint32
	if target == Backend(b.dsm) {
		snapshot = make([]uint32, o.WordCount())
		for i := range snapshot {
			snapshot[i] = cur.Read32(c, o, 4*i)
		}
	}
	if cur == Backend(b.dsm) {
		c.T.CopyFromLocal(c.P, b.dsm.replicaAddr(c.T.ID, o), o.Addr, o.WordCount()*4)
	}
	exit()
	if st.open > 0 {
		// A rival entered a lock-free scope while the gather waited and
		// is running under cur: flipping now would change its protocol
		// mid-scope.
		return
	}
	if target == Backend(b.dsm) {
		for t := range b.rt.Sys.Locals {
			for i, v := range snapshot {
				b.rt.Sys.Locals[t].Write32(b.dsm.replicaAddr(t, o)+mem.Addr(4*i), v)
			}
		}
		b.dsm.lastWriter[o.ID] = c.T.ID
	}
	st.proto = target
	st.migrations++
	if target == Backend(b.dsm) {
		// Charge the seeding broadcast to the migrating worker (after
		// the flip: the charge waits, and a rival entering during the
		// wait must already see the new protocol).
		c.T.Exec(c.P, o.WordCount())
	}
}

func (b *adaptiveBackend) EntryRO(c *Ctx, o *Object) {
	st := b.st(o)
	st.roEntries++
	b.flipAtEntry(o, st)
	st.open++
	st.proto.EntryRO(c, o)
}

// flipAtEntry migrates a quiescent object at a scope entry, before the
// entry runs. Restricted to flips that move no data: away from nocc (whose
// canonical copy is always SDRAM, even with posted stores in flight — the
// new protocol's modelled reads queue behind them) and onto swcc or spm
// (which fill from SDRAM on demand). The flip is a host-order write between
// simulation events with open == 0, so no scope anywhere straddles it.
//
// This is the only migration point for objects whose readers always
// overlap: their exits see a parked waiter (open > 0) every time, so the
// exit-side check never fires, but the gap before a fresh entry finds the
// object quiescent.
func (b *adaptiveBackend) flipAtEntry(o *Object, st *adaptState) {
	if st.proto != b.nocc {
		return
	}
	target := b.pick(st, o)
	if st.open != 0 {
		// Not quiescent: only the read-side nocc→swcc flip is safe (see
		// readSideFlip) — the parked rivals' scopes stay well-formed.
		b.readSideFlip(st, Backend(b.nocc), target)
		return
	}
	if target != b.swcc && target != b.spm {
		return
	}
	st.proto = target
	st.migrations++
}

func (b *adaptiveBackend) ExitRO(c *Ctx, o *Object) {
	st := b.st(o)
	st.open--
	cur := st.proto
	target := b.pick(st, o)
	if target == cur {
		cur.ExitRO(c, o)
		return
	}
	// Migration at an RO exit needs the same mutual exclusion the X exit
	// has, which the inner protocols only take for multi-word objects
	// (c.scopes tracks it). Read-only data makes the gather trivially
	// consistent — nothing changed since the last exclusive exit.
	if st.open > 0 || !c.scopes[o].locked {
		cur.ExitRO(c, o)
		b.readSideFlip(st, cur, target)
		return
	}
	b.migrate(c, o, st, cur, target, func() { cur.ExitRO(c, o) })
}

// readSideFlip migrates a never-written object from nocc to swcc even
// while rival readers are parked — the case the quiescence-gated paths can
// never reach, because a popular read-only object under nocc serializes
// its readers on the lock and open never returns to zero.
//
// The flip is safe mid-contention because the two protocols' read-only
// scopes are interchangeable: both take the same object lock for
// multi-word objects and set the same scope flag, both exits release it
// the same way, and the data cannot be stale in any cache — the object has
// never been written inside the run and nocc never caches shared data. A
// waiter that entered under nocc simply wakes holding the lock and reads
// (correctly) through the cache. When the pattern actually wants spm, swcc
// still serves as the read-side stepping stone: spm's exit needs staging
// state its entry creates, so it can only be reached through a quiescent
// cut, and if one ever appears the normal paths take it from here.
func (b *adaptiveBackend) readSideFlip(st *adaptState, cur, target Backend) {
	if cur != Backend(b.nocc) || st.xEntries > 0 {
		return
	}
	if target != b.swcc && target != b.spm {
		return
	}
	st.proto = b.swcc
	st.migrations++
}

func (b *adaptiveBackend) Fence(c *Ctx) {
	// Every inner protocol's fence is a compiler barrier on the in-order
	// platform.
}

func (b *adaptiveBackend) Flush(c *Ctx, o *Object) { b.st(o).proto.Flush(c, o) }

func (b *adaptiveBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	st := b.st(o)
	st.wordOps++
	return st.proto.Read32(c, o, off)
}

func (b *adaptiveBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	st := b.st(o)
	st.wordOps++
	st.proto.Write32(c, o, off, v)
}

func (b *adaptiveBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	st := b.st(o)
	st.blockWords += len(dst)
	st.proto.ReadRange(c, o, off, dst)
}

func (b *adaptiveBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	st := b.st(o)
	st.blockWords += len(src)
	st.proto.WriteRange(c, o, off, src)
}

// CopyRange accelerates object-to-object copies only when both objects are
// currently served by the same protocol and it has block-move hardware.
func (b *adaptiveBackend) CopyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, words int, wantVals bool) ([]uint32, bool) {
	ss, ds := b.st(src), b.st(dst)
	ss.blockWords += words
	if ds != ss {
		ds.blockWords += words
	}
	if ss.proto != ds.proto {
		return nil, false
	}
	if rc, ok := ss.proto.(rangeCopier); ok {
		return rc.CopyRange(c, dst, dstOff, src, srcOff, words, wantVals)
	}
	return nil, false
}

// lockTransfer dispatches the handoff to the object's current protocol
// (dsm replica forwarding when the object is on dsm; nothing otherwise).
func (b *adaptiveBackend) lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time {
	if lt, ok := b.st(o).proto.(lockTransferrer); ok {
		return lt.lockTransfer(rt, o, from, to, t)
	}
	return t
}

// initReplicas keeps the inner dsm replicas warm so a later migration to
// dsm (or a pre-migration InitObject) always finds consistent data.
func (b *adaptiveBackend) initReplicas(rt *Runtime, o *Object, words []uint32) {
	b.dsm.initReplicas(rt, o, words)
}

// readCanonical reads the authoritative copy under the current protocol:
// the last writer's replica while on dsm, SDRAM otherwise.
func (b *adaptiveBackend) readCanonical(rt *Runtime, o *Object, wordIdx int) uint32 {
	if b.st(o).proto == Backend(b.dsm) {
		return b.dsm.readCanonical(rt, o, wordIdx)
	}
	return rt.Sys.SDRAM.Read32(o.Addr + mem.Addr(4*wordIdx))
}

// heapLimit bounds the heap to the local memory, which both the dsm
// replicas and the spm staging arena live in.
func (b *adaptiveBackend) heapLimit(rt *Runtime) int { return rt.Sys.Cfg.LocalBytes }

// Migrations reports how many protocol migrations the adaptive backend
// performed across all objects (experiment reporting).
func (b *adaptiveBackend) Migrations() int {
	n := 0
	for _, st := range b.state {
		n += st.migrations
	}
	return n
}

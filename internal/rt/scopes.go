package rt

// This file provides the scoped-annotation helpers of the paper's Fig. 10:
// C++ wraps entry/exit pairs in constructor/destructor pairs (ScopeRO /
// ScopeX); the Go equivalent pairs a constructor with a Close method meant
// for defer. The underlying entry/exit discipline is still checked by the
// runtime, so a forgotten Close is reported at worker exit.

// ScopeRO is an open read-only scope (entry_ro taken at construction).
type ScopeRO struct {
	c *Ctx
	o *Object
}

// NewScopeRO opens read-only access to o (entry_ro).
func NewScopeRO(c *Ctx, o *Object) ScopeRO {
	c.EntryRO(o)
	return ScopeRO{c: c, o: o}
}

// Read32 reads the word at byte offset off.
func (s ScopeRO) Read32(off int) uint32 { return s.c.Read32(s.o, off) }

// Close issues the exit_ro. Use with defer.
func (s ScopeRO) Close() { s.c.ExitRO(s.o) }

// ScopeX is an open exclusive scope (entry_x taken at construction).
type ScopeX struct {
	c *Ctx
	o *Object
}

// NewScopeX opens exclusive access to o (entry_x).
func NewScopeX(c *Ctx, o *Object) ScopeX {
	c.EntryX(o)
	return ScopeX{c: c, o: o}
}

// Read32 reads the word at byte offset off.
func (s ScopeX) Read32(off int) uint32 { return s.c.Read32(s.o, off) }

// Write32 writes the word at byte offset off.
func (s ScopeX) Write32(off int, v uint32) { s.c.Write32(s.o, off, v) }

// Flush forces the object's modifications toward global visibility.
func (s ScopeX) Flush() { s.c.Flush(s.o) }

// Close issues the exit_x. Use with defer.
func (s ScopeX) Close() { s.c.ExitX(s.o) }

package rt

import (
	"fmt"

	"pmc/internal/core"
	"pmc/internal/mem"
)

// Recorder mirrors a simulated run into the formal PMC model
// (internal/core) and verifies, read by read, that the value the simulated
// memory system actually returned is one the model permits. It is the
// differential-testing bridge between the paper's Section IV (the model)
// and Section V (the implementations).
//
// Granularity: each 32-bit word of an annotated object is one model
// location, and entry_x/exit_x issue an acquire/release per word — the
// model's treatment of multi-byte objects protected by one mutex
// (Section V-A). Objects larger than MaxWords are not recorded (the model
// is O(n²); the recorder is a test tool for small configurations).
//
// For the SPM backend, in-scope reads and writes touch the staged local
// copy, so the recorder maps the staging copy-in to model reads and the
// copy-back to model writes instead (see recordStage/recordUnstage).
type Recorder struct {
	Exec *core.Execution
	// MaxWords bounds recorded object size.
	MaxWords int
	// Errors collects model violations (reads returning values the
	// model forbids).
	Errors []string

	locs map[int][]core.Loc // object ID -> per-word locations
	rt   *Runtime
}

// NewRecorder attaches a fresh recorder to rt. Call before allocating
// objects.
func NewRecorder(rt *Runtime) *Recorder {
	r := &Recorder{
		Exec:     core.NewExecution(),
		MaxWords: 64,
		locs:     make(map[int][]core.Loc),
		rt:       rt,
	}
	rt.Recorder = r
	return r
}

// setupProc is the model process used for InitObject pre-loading.
const setupProc core.ProcID = 1 << 20

func (r *Recorder) addObject(o *Object) {
	if o.WordCount() > r.MaxWords {
		return
	}
	ls := make([]core.Loc, o.WordCount())
	for i := range ls {
		ls[i] = r.Exec.AddLoc(fmt.Sprintf("%s[%d]", o.Name, i))
	}
	r.locs[o.ID] = ls
}

func (r *Recorder) initObject(o *Object, words []uint32) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	for i, w := range words {
		r.Exec.Acquire(setupProc, ls[i])
		r.Exec.Write(setupProc, ls[i], core.Value(w))
		r.Exec.Release(setupProc, ls[i])
	}
}

func (r *Recorder) proc(c *Ctx) core.ProcID { return core.ProcID(c.T.ID) }

// staged reports whether o's effective protocol stages the object into
// local memory for the scope (the spm backend, possibly reached through a
// fault wrapper or the adaptive router): in-scope reads and writes touch
// the staged copy, so the recorder maps the copy-in/copy-back instead.
func (r *Recorder) staged(o *Object) bool { return r.rt.protoFor(o).Name() == "spm" }

func (r *Recorder) acquire(c *Ctx, o *Object) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	for _, l := range ls {
		r.Exec.Acquire(r.proc(c), l)
	}
	if r.staged(o) {
		r.recordStage(c, o)
	}
}

func (r *Recorder) release(c *Ctx, o *Object) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	if r.staged(o) {
		r.recordUnstage(c, o)
	}
	for _, l := range ls {
		r.Exec.Release(r.proc(c), l)
	}
}

func (r *Recorder) enterRO(c *Ctx, o *Object) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	// Record what the implementation does: multi-word entry_ro takes
	// the object's lock (SWCC/DSM hold it for the scope; SPM only for
	// the copy, which recordStage models by releasing immediately).
	locked := o.Size > AtomicSize
	if locked {
		for _, l := range ls {
			r.Exec.Acquire(r.proc(c), l)
		}
	}
	if r.staged(o) {
		r.recordStage(c, o)
		if locked {
			for _, l := range ls {
				r.Exec.Release(r.proc(c), l)
			}
		}
	}
}

func (r *Recorder) exitRO(c *Ctx, o *Object) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	if r.staged(o) {
		// The lock (if any) was already released after the copy.
		return
	}
	if o.Size > AtomicSize {
		for _, l := range ls {
			r.Exec.Release(r.proc(c), l)
		}
	}
}

func (r *Recorder) fence(c *Ctx) {
	r.Exec.Fence(r.proc(c))
}

// fenceObj records a location-scoped fence: one model fence per word
// location of the object.
func (r *Recorder) fenceObj(c *Ctx, o *Object) {
	ls, ok := r.locs[o.ID]
	if !ok {
		return
	}
	for _, l := range ls {
		r.Exec.FenceLoc(r.proc(c), l)
	}
}

// recordStage models the SPM copy-in: a read of every word with the values
// the copy captured.
func (r *Recorder) recordStage(c *Ctx, o *Object) {
	ls := r.locs[o.ID]
	for i, l := range ls {
		v := r.rt.Sys.SDRAM.Read32(o.Addr + mem.Addr(4*i))
		r.verifyRead(c, o, i, l, v)
	}
}

// recordUnstage models the SPM copy-back: a write of every word with the
// staged copy's current values.
func (r *Recorder) recordUnstage(c *Ctx, o *Object) {
	ls := r.locs[o.ID]
	s, ok := c.scopes[o]
	if !ok {
		return
	}
	for i, l := range ls {
		v := c.rt.Sys.Locals[c.T.ID].Read32(s.spmAddr + mem.Addr(4*i))
		r.Exec.Write(r.proc(c), l, core.Value(v))
	}
}

func (r *Recorder) read(c *Ctx, o *Object, off int, v uint32) {
	ls, ok := r.locs[o.ID]
	if !ok || r.staged(o) {
		return // SPM in-scope reads hit the staged copy (recorded at entry)
	}
	r.verifyRead(c, o, off/4, ls[off/4], v)
}

// verifyRead issues the model read and checks the simulated value against
// the model's readable set at this state.
func (r *Recorder) verifyRead(c *Ctx, o *Object, word int, l core.Loc, v uint32) {
	op := r.Exec.Read(r.proc(c), l, core.Value(v))
	for _, allowed := range r.Exec.ReadableValues(op.ID) {
		if allowed == core.Value(v) {
			return
		}
	}
	r.Errors = append(r.Errors,
		fmt.Sprintf("tile %d read %s[%d] = %d at cycle %d: value not readable under the PMC model (readable: %v)",
			c.T.ID, o.Name, word, v, c.P.Now(), r.Exec.ReadableValues(op.ID)))
}

func (r *Recorder) write(c *Ctx, o *Object, off int, v uint32) {
	ls, ok := r.locs[o.ID]
	if !ok || r.staged(o) {
		return // SPM in-scope writes are recorded at copy-back
	}
	r.Exec.Write(r.proc(c), ls[off/4], core.Value(v))
}

// readRange lowers a ranged read to one model read per word: the model has
// no block operations, so conformance keeps checking every transferred
// word against the Table I rules exactly as if it had been a Read32 loop.
func (r *Recorder) readRange(c *Ctx, o *Object, off int, dst []uint32) {
	for i, v := range dst {
		r.read(c, o, off+4*i, v)
	}
}

// writeRange lowers a ranged write to one model write per word.
func (r *Recorder) writeRange(c *Ctx, o *Object, off int, src []uint32) {
	for i, v := range src {
		r.write(c, o, off+4*i, v)
	}
}

// copyRange lowers an object-to-object block copy to per-word model reads
// of the source (each verified against the model's readable set) followed
// by per-word model writes of the destination.
func (r *Recorder) copyRange(c *Ctx, dst *Object, dstOff int, src *Object, srcOff int, vals []uint32) {
	for i, v := range vals {
		r.read(c, src, srcOff+4*i, v)
	}
	for i, v := range vals {
		r.write(c, dst, dstOff+4*i, v)
	}
}

// CheckWriteOrder verifies the determinism requirement of Section IV-D for
// every recorded location: all writes in total ≺G order.
func (r *Recorder) CheckWriteOrder() error {
	for v := core.Loc(0); int(v) < r.Exec.NumLocs(); v++ {
		if !r.Exec.WritesTotallyOrderedG(v) {
			return fmt.Errorf("rt: writes to %s are not totally ordered (data race)", r.Exec.LocName(v))
		}
	}
	return nil
}

// Err returns the first verification error, or nil.
func (r *Recorder) Err() error {
	if len(r.Errors) > 0 {
		return fmt.Errorf("rt: %d model violations; first: %s", len(r.Errors), r.Errors[0])
	}
	return nil
}

package rt

import (
	"pmc/internal/mem"
	"pmc/internal/sim"
)

// swccBackend implements software cache coherency over the non-coherent
// write-back caches (Table II, second column; the protocol "resembles the
// BACKER cache coherency protocol"). The invariant is that a shared object
// never resides in any cache outside an entry/exit pair:
//
//   - entry_x acquires the object's distributed lock; the object is not
//     cached (the previous exit flushed it), so subsequent accesses refill
//     from SDRAM, which holds the last owner's data;
//   - exit_x flush-invalidates the object's lines (writing dirty data back)
//     and then releases the lock — the eager-release variant. The lazy
//     variant defers the flush until the lock is transferred to another
//     tile (the paper's entry_x description); select it with Lazy;
//   - entry_ro locks multi-word objects (no reader/writer locks exist) and
//     reads warm the cache; exit_ro flush-invalidates the lines (clean
//     lines cost only the cache-control instructions) and unlocks;
//   - flush(X) flush-invalidates the lines inside an exclusive scope.
type swccBackend struct {
	// Lazy defers the exit_x flush to lock-transfer time (ablation).
	Lazy bool
}

// SWCC returns the software-cache-coherency backend of Fig. 8, with the
// eager-release exit protocol.
func SWCC() Backend { return &swccBackend{} }

// SWCCLazy returns the lazy-release variant: dirty data stays cached across
// exit_x and is flushed only when the lock moves to another tile.
func SWCCLazy() Backend { return &swccBackend{Lazy: true} }

func (b *swccBackend) Name() string {
	if b.Lazy {
		return "swcc-lazy"
	}
	return "swcc"
}

func (b *swccBackend) Init(rt *Runtime) {}

// lockTransfer implements the lazy-release variant: when a lock moves
// between tiles, the previous owner's cache flushes the object's lines
// before the grant is sent. The flush is performed by the lock unit's
// transfer logic, so its bus time delays the new owner's grant rather than
// stalling the previous owner. The eager variant publishes at exit_x and
// has nothing to do at transfer time.
func (b *swccBackend) lockTransfer(rt *Runtime, o *Object, from, to int, t sim.Time) sim.Time {
	if !b.Lazy {
		return t
	}
	dc := rt.Sys.Tiles[from].DC
	end := t
	ls := rt.Sys.Cfg.DCache.LineSize
	for a := dc.LineBase(o.Addr); a < o.Addr+mem.Addr(o.Size); a += mem.Addr(ls) {
		if tr := dc.FlushLine(a); tr.Writeback {
			end = rt.Sys.SDRAM.ReserveLineWB(end, a)
		}
	}
	return end
}

func (b *swccBackend) EntryX(c *Ctx, o *Object) {
	c.T.AcquireLock(c.P, o.LockID)
}

func (b *swccBackend) ExitX(c *Ctx, o *Object) {
	if !b.Lazy {
		c.T.FlushShared(c.P, o.Addr, o.Size)
	}
	c.T.ReleaseLock(c.P, o.LockID)
}

func (b *swccBackend) EntryRO(c *Ctx, o *Object) {
	if o.Size > AtomicSize {
		c.T.AcquireLock(c.P, o.LockID)
		c.scopes[o].locked = true
	}
}

func (b *swccBackend) ExitRO(c *Ctx, o *Object) {
	// Force the object out of the cache so the next scope observes
	// fresh data; the lines are clean, so this costs only the
	// cache-control instructions.
	c.T.FlushShared(c.P, o.Addr, o.Size)
	if c.scopes[o].locked {
		c.T.ReleaseLock(c.P, o.LockID)
	}
}

func (b *swccBackend) Fence(c *Ctx) {
	// In-order MicroBlaze: compiler barrier only, no instructions.
}

func (b *swccBackend) Flush(c *Ctx, o *Object) {
	c.T.FlushShared(c.P, o.Addr, o.Size)
}

func (b *swccBackend) Read32(c *Ctx, o *Object, off int) uint32 {
	return c.T.ReadShared32Cached(c.P, o.Addr+mem.Addr(off))
}

func (b *swccBackend) Write32(c *Ctx, o *Object, off int, v uint32) {
	c.T.WriteShared32Cached(c.P, o.Addr+mem.Addr(off), v)
}

// ReadRange reads through the D-cache with every missing line of the range
// installed by one multi-line burst transaction; each touched line moves
// over the bus at most once per range.
func (b *swccBackend) ReadRange(c *Ctx, o *Object, off int, dst []uint32) {
	c.T.ReadSharedRangeCached(c.P, o.Addr+mem.Addr(off), dst)
}

// WriteRange writes through the D-cache: fully covered lines are installed
// dirty without a write-allocate fill, boundary lines are burst-filled
// once.
func (b *swccBackend) WriteRange(c *Ctx, o *Object, off int, src []uint32) {
	c.T.WriteSharedRangeCached(c.P, o.Addr+mem.Addr(off), src)
}

package rt

import (
	"fmt"

	"pmc/internal/mem"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/trace"
)

// scopeMode is the access mode an open entry/exit pair grants.
type scopeMode uint8

const (
	scopeX scopeMode = iota
	scopeRO
)

// scope is the per-context state of one open entry/exit pair.
type scope struct {
	mode scopeMode
	// spmAddr is the local copy's address for the SPM backend.
	spmAddr mem.Addr
	// locked records whether entry_ro took the object's lock.
	locked bool
}

// annotationOverhead is the instruction cost of executing an annotation's
// runtime code (call, bookkeeping) beyond its memory traffic.
const annotationOverhead = 4

// Ctx is a worker's handle to the PMC runtime: the annotation API of
// Section V-A plus reads, writes, private data, and modelled computation.
// A Ctx is bound to one tile and one simulation process; it must only be
// used from its own worker body.
type Ctx struct {
	rt *Runtime
	P  *sim.Proc
	T  *soc.Tile

	scopes   map[*Object]*scope
	privNext mem.Addr
	spm      spmArena
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// emit records a trace event if tracing is enabled.
func (c *Ctx) emit(ph trace.Phase, name string, arg uint64) {
	if c.rt.Tracer != nil {
		c.rt.Tracer.Emit(trace.Event{
			Time: c.P.Now(), Tile: c.T.ID, Phase: ph, Name: name, Arg: arg,
		})
	}
}

// Tile returns this worker's tile index.
func (c *Ctx) Tile() int { return c.T.ID }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.P.Now() }

// WaitUntil blocks the worker until simulated time t. Times at or before
// the present return immediately — the open-loop workloads use this to
// pace request arrivals, and a source that has fallen behind its schedule
// must not rewind the clock.
func (c *Ctx) WaitUntil(t sim.Time) {
	if t > c.P.Now() {
		c.P.WaitUntil(t)
	}
}

// EntryX opens exclusive read/write access to o (issues an acquire).
func (c *Ctx) EntryX(o *Object) {
	if _, open := c.scopes[o]; open {
		c.rt.violate(c, "entry_x", o, "object already open in this context")
		return
	}
	c.scopes[o] = &scope{mode: scopeX, locked: true}
	c.T.Exec(c.P, annotationOverhead)
	o.route.EntryX(c, o)
	c.emit(trace.Begin, "x:"+o.Name, 0)
	if c.rt.Recorder != nil {
		c.rt.Recorder.acquire(c, o)
	}
}

// ExitX closes exclusive access to o (issues a release).
func (c *Ctx) ExitX(o *Object) {
	s, open := c.scopes[o]
	if !open || s.mode != scopeX {
		c.rt.violate(c, "exit_x", o, "no matching entry_x")
		return
	}
	if c.rt.Recorder != nil {
		c.rt.Recorder.release(c, o)
	}
	c.T.Exec(c.P, annotationOverhead)
	o.route.ExitX(c, o)
	c.emit(trace.End, "x:"+o.Name, 0)
	delete(c.scopes, o)
}

// EntryRO opens non-exclusive read-only access to o.
func (c *Ctx) EntryRO(o *Object) {
	if _, open := c.scopes[o]; open {
		c.rt.violate(c, "entry_ro", o, "object already open in this context")
		return
	}
	c.scopes[o] = &scope{mode: scopeRO}
	c.T.Exec(c.P, annotationOverhead)
	o.route.EntryRO(c, o)
	c.emit(trace.Begin, "ro:"+o.Name, 0)
	if c.rt.Recorder != nil {
		c.rt.Recorder.enterRO(c, o)
	}
}

// ExitRO closes read-only access to o.
func (c *Ctx) ExitRO(o *Object) {
	s, open := c.scopes[o]
	if !open || s.mode != scopeRO {
		c.rt.violate(c, "exit_ro", o, "no matching entry_ro")
		return
	}
	if c.rt.Recorder != nil {
		c.rt.Recorder.exitRO(c, o)
	}
	c.T.Exec(c.P, annotationOverhead)
	o.route.ExitRO(c, o)
	c.emit(trace.End, "ro:"+o.Name, 0)
	delete(c.scopes, o)
}

// Fence issues a fence: on the in-order MicroBlaze it constrains only the
// compiler and costs no instructions (Table II), but it is recorded in the
// model as the ≺F source.
func (c *Ctx) Fence() {
	c.rt.B.Fence(c)
	c.emit(trace.Instant, "fence", 0)
	if c.rt.Recorder != nil {
		c.rt.Recorder.fence(c)
	}
}

// FenceObj issues a location-scoped fence on o (the Section IV-D
// optimization): it orders only operations on o, letting the hardware and
// compiler reorder everything else. On the in-order platform it costs the
// same as Fence (nothing); the difference is the weaker model constraint,
// which the recorder verifies.
func (c *Ctx) FenceObj(o *Object) {
	o.route.Fence(c)
	if c.rt.Recorder != nil {
		c.rt.Recorder.fenceObj(c, o)
	}
}

// Flush forces o's modifications toward global visibility (best effort).
// Only allowed inside an entry_x/exit_x pair (Section V-A).
func (c *Ctx) Flush(o *Object) {
	s, open := c.scopes[o]
	if !open || s.mode != scopeX {
		c.rt.violate(c, "flush", o, "flush outside entry_x/exit_x")
		return
	}
	c.T.Exec(c.P, annotationOverhead)
	o.route.Flush(c, o)
	c.emit(trace.Instant, "flush:"+o.Name, 0)
}

// Read32 reads the 32-bit word at byte offset off of o. The object must be
// open in RO or X mode. It is the one-word form of ReadBlock, kept on the
// backend's dedicated word path so its instruction sequence — and
// therefore its sim-cycle cost — is byte-identical to annotation API v1
// (TestOneWordBlockEquivalence pins the equivalence).
func (c *Ctx) Read32(o *Object, off int) uint32 {
	if off < 0 || off+4 > o.WordCount()*4 {
		panic(fmt.Sprintf("rt: Read32(%s, %d) out of bounds", o.Name, off))
	}
	if _, open := c.scopes[o]; !open {
		c.rt.violate(c, "read", o, "access outside any entry/exit scope")
	}
	v := o.route.Read32(c, o, off)
	if c.rt.Recorder != nil {
		c.rt.Recorder.read(c, o, off, v)
	}
	return v
}

// Write32 writes the word at byte offset off of o. The object must be open
// in X mode. Like Read32, it is the one-word form of WriteBlock on the
// pinned word path.
func (c *Ctx) Write32(o *Object, off int, v uint32) {
	if off < 0 || off+4 > o.WordCount()*4 {
		panic(fmt.Sprintf("rt: Write32(%s, %d) out of bounds", o.Name, off))
	}
	if s, open := c.scopes[o]; !open || s.mode != scopeX {
		c.rt.violate(c, "write", o, "write outside entry_x/exit_x scope")
	}
	o.route.Write32(c, o, off, v)
	if c.rt.Recorder != nil {
		c.rt.Recorder.write(c, o, off, v)
	}
}

// rangeOK validates a ranged access of words 32-bit words starting at byte
// offset off. Out-of-bounds and misaligned ranges are discipline
// violations (not panics): the runtime reports them and the access is
// skipped, mirroring how scope violations accumulate.
func (c *Ctx) rangeOK(op string, o *Object, off, words int) bool {
	if off < 0 || off%4 != 0 || words < 0 || off+4*words > o.WordCount()*4 {
		c.rt.violate(c, op, o, fmt.Sprintf("range [%d,+%d words) out of bounds (object spans %d words)",
			off, words, o.WordCount()))
		return false
	}
	return true
}

// ReadBlock reads len(dst) consecutive words starting at byte offset off
// of o into dst in one ranged operation. The object must be open in RO or
// X mode. Backends implement the range natively — the cache installs every
// missing line with one burst transaction, DSM and SPM stream from local
// memory — so a block read never costs more than the equivalent Read32
// loop and is usually cheaper.
func (c *Ctx) ReadBlock(o *Object, off int, dst []uint32) {
	if len(dst) == 0 {
		return
	}
	if !c.rangeOK("read-block", o, off, len(dst)) {
		clear(dst)
		return
	}
	if _, open := c.scopes[o]; !open {
		c.rt.violate(c, "read-block", o, "access outside any entry/exit scope")
	}
	o.route.ReadRange(c, o, off, dst)
	if c.rt.Recorder != nil {
		c.rt.Recorder.readRange(c, o, off, dst)
	}
}

// WriteBlock writes len(src) consecutive words starting at byte offset off
// of o in one ranged operation. The object must be open in X mode.
func (c *Ctx) WriteBlock(o *Object, off int, src []uint32) {
	if len(src) == 0 {
		return
	}
	if !c.rangeOK("write-block", o, off, len(src)) {
		return
	}
	if s, open := c.scopes[o]; !open || s.mode != scopeX {
		c.rt.violate(c, "write-block", o, "write outside entry_x/exit_x scope")
	}
	o.route.WriteRange(c, o, off, src)
	if c.rt.Recorder != nil {
		c.rt.Recorder.writeRange(c, o, off, src)
	}
}

// Copy moves words consecutive words from src (open in any mode) at byte
// offset srcOff into dst (open in X mode) at byte offset dstOff. When both
// objects route to the same backend and it has overlapped block-move
// hardware (DSM and SPM local-memory DMA), the copy executes as a single
// transfer; otherwise — including cross-backend copies between objects on
// different routes — it lowers to a ranged read on the source's backend
// followed by a ranged write on the destination's.
func (c *Ctx) Copy(dst *Object, dstOff int, src *Object, srcOff int, words int) {
	if words == 0 {
		return
	}
	if !c.rangeOK("copy", src, srcOff, words) || !c.rangeOK("copy", dst, dstOff, words) {
		return
	}
	if _, open := c.scopes[src]; !open {
		c.rt.violate(c, "copy", src, "source not open in any entry/exit scope")
	}
	if s, open := c.scopes[dst]; !open || s.mode != scopeX {
		c.rt.violate(c, "copy", dst, "destination not open in an entry_x/exit_x scope")
	}
	wantVals := c.rt.Recorder != nil
	var (
		vals  []uint32
		accel bool
	)
	if rc, ok := src.route.(rangeCopier); ok && src.route == dst.route {
		vals, accel = rc.CopyRange(c, dst, dstOff, src, srcOff, words, wantVals)
	}
	if !accel {
		vals = make([]uint32, words)
		src.route.ReadRange(c, src, srcOff, vals)
		dst.route.WriteRange(c, dst, dstOff, vals)
	}
	if c.rt.Recorder != nil {
		c.rt.Recorder.copyRange(c, dst, dstOff, src, srcOff, vals)
	}
}

// Compute models n instructions of private computation (register/ALU work).
func (c *Ctx) Compute(n int) {
	c.T.Exec(c.P, n)
}

// SetCodeFootprint declares the executing phase's code size in bytes. Each
// tile has a private code region; footprints beyond the I-cache capacity
// thrash it.
func (c *Ctx) SetCodeFootprint(bytes int) {
	if bytes > int(codeStride) {
		panic(fmt.Sprintf("rt: code footprint %d exceeds per-tile region", bytes))
	}
	base := codeBase + mem.Addr(c.T.ID)*codeStride
	c.T.SetCodeFootprint(base, bytes)
}

// SetCodeProfile declares a loop-nest code shape: innerPasses passes over a
// hot loop of hotBytes, then one pass over coldBytes of colder code (see
// soc.Tile.SetCodeLoop).
func (c *Ctx) SetCodeProfile(hotBytes, coldBytes, innerPasses int) {
	if hotBytes+coldBytes > int(codeStride) {
		panic(fmt.Sprintf("rt: code footprint %d exceeds per-tile region", hotBytes+coldBytes))
	}
	base := codeBase + mem.Addr(c.T.ID)*codeStride
	c.T.SetCodeLoop(base, hotBytes, coldBytes, innerPasses)
}

// Priv is a handle to a private (per-tile, always cacheable) array.
type Priv struct {
	base  mem.Addr
	words int
}

// PrivAlloc allocates words of private data from the tile's private heap.
func (c *Ctx) PrivAlloc(words int) Priv {
	base := c.privNext
	c.privNext += mem.Addr(words * 4)
	limit := privBase + mem.Addr(c.T.ID+1)*privStride
	if c.privNext > limit {
		panic(fmt.Sprintf("rt: tile %d private heap exhausted", c.T.ID))
	}
	return Priv{base: base, words: words}
}

// PRead reads private word idx.
func (c *Ctx) PRead(p Priv, idx int) uint32 {
	if idx < 0 || idx >= p.words {
		panic("rt: PRead out of bounds")
	}
	return c.T.ReadPrivate32(c.P, p.base+mem.Addr(4*idx))
}

// PWrite writes private word idx.
func (c *Ctx) PWrite(p Priv, idx int, v uint32) {
	if idx < 0 || idx >= p.words {
		panic("rt: PWrite out of bounds")
	}
	c.T.WritePrivate32(c.P, p.base+mem.Addr(4*idx), v)
}

// finish runs at worker exit: any scope left open is a discipline
// violation.
func (c *Ctx) finish() {
	for o := range c.scopes {
		c.rt.violate(c, "finish", o, "scope still open at worker exit")
	}
}

// spmArena is a trivial first-fit allocator over the tile's local memory,
// used by the SPM backend for scope-lifetime copies.
type spmArena struct {
	inited bool
	free   []span // sorted by base
	limit  mem.Addr
}

type span struct {
	base mem.Addr
	size int
}

func (a *spmArena) init(base mem.Addr, limit int) {
	a.inited = true
	a.free = nil
	if int(base) < limit {
		a.free = []span{{base: base, size: limit - int(base)}}
	}
	a.limit = mem.Addr(limit)
}

func (a *spmArena) alloc(size int) (mem.Addr, bool) {
	// Word-align allocations.
	size = (size + 3) &^ 3
	for i := range a.free {
		if a.free[i].size >= size {
			addr := a.free[i].base
			a.free[i].base += mem.Addr(size)
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return addr, true
		}
	}
	return 0, false
}

func (a *spmArena) release(addr mem.Addr, size int) {
	size = (size + 3) &^ 3
	// Insert sorted and coalesce.
	i := 0
	for i < len(a.free) && a.free[i].base < addr {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{base: addr, size: size}
	// Coalesce with neighbours.
	if i+1 < len(a.free) && a.free[i].base+mem.Addr(a.free[i].size) == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].base+mem.Addr(a.free[i-1].size) == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

package mem

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz target for the lazily chunked RAM: an arbitrary sequence of
// byte/word/block reads and writes must behave exactly like a flat,
// eagerly zeroed array — including accesses that straddle the 16 KiB
// chunk boundary and reads of never-materialized chunks. Run with
//
//	go test -fuzz FuzzRAMChunks ./internal/mem

func FuzzRAMChunks(f *testing.F) {
	// Seeds: a boundary-straddling word write, a large cross-chunk block,
	// and a read-before-any-write.
	f.Add([]byte{1, 0x3f, 0xfe, 0xaa, 2, 0x3f, 0xff, 0x00, 0, 0x40, 0x01, 0})
	f.Add([]byte{3, 0x00, 0x10, 0x90, 4, 0x00, 0x20, 0x55, 5, 0x7f, 0x00, 0x07})
	f.Add([]byte{0, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			base = Addr(0x8000)
			size = 3*chunkSize + 100 // three full chunks plus a ragged tail
		)
		ram := NewRAM(base, size)
		ref := make([]byte, size)

		for len(ops) >= 4 {
			op, a1, a2, v := ops[0], ops[1], ops[2], ops[3]
			ops = ops[4:]
			off := (int(a1)<<8 | int(a2)) * 7 % size
			addr := base + Addr(off)
			switch op % 6 {
			case 0: // Read8
				if got, want := ram.Read8(addr), ref[off]; got != want {
					t.Fatalf("Read8(%#x) = %#x, want %#x", addr, got, want)
				}
			case 1: // Write8
				ram.Write8(addr, v)
				ref[off] = v
			case 2: // Read32
				if off+4 > size {
					continue
				}
				want := binary.LittleEndian.Uint32(ref[off:])
				if got := ram.Read32(addr); got != want {
					t.Fatalf("Read32(%#x) = %#x, want %#x", addr, got, want)
				}
			case 3: // Write32
				if off+4 > size {
					continue
				}
				word := uint32(v) * 0x01010101
				ram.Write32(addr, word)
				binary.LittleEndian.PutUint32(ref[off:], word)
			case 4: // WriteBlock
				n := int(v)%200 + 1
				if off+n > size {
					n = size - off
				}
				src := make([]byte, n)
				for i := range src {
					src[i] = v + byte(i)
				}
				ram.WriteBlock(addr, src)
				copy(ref[off:off+n], src)
			case 5: // ReadBlock
				n := int(v)%200 + 1
				if off+n > size {
					n = size - off
				}
				dst := make([]byte, n)
				ram.ReadBlock(addr, dst)
				if !bytes.Equal(dst, ref[off:off+n]) {
					t.Fatalf("ReadBlock(%#x, %d) mismatch", addr, n)
				}
			}
		}

		// Full sweep: the chunked view and the flat reference must agree
		// everywhere, including untouched chunks.
		got := make([]byte, size)
		ram.ReadBlock(base, got)
		if !bytes.Equal(got, ref) {
			t.Fatal("final RAM contents diverge from the flat reference")
		}
	})
}

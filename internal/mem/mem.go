// Package mem models the physical memories of the simulated SoC: the
// off-chip SDRAM shared by all tiles behind an arbitrated bus, and the
// per-tile dual-port local memories reachable at single-cycle latency from
// the owning core and writable by the network-on-chip.
//
// All memories are byte-addressable and store real data: the simulated
// software computes real results through them, so coherence bugs (stale
// cache lines, lost writebacks, missing NoC updates) corrupt observable
// output instead of hiding in abstract counters. Words are little-endian.
package mem

import (
	"encoding/binary"
	"fmt"

	"pmc/internal/sim"
)

// Addr is a simulated physical address.
type Addr uint32

// RAM chunk geometry: backing memory materializes in 16 KiB chunks on
// first write. A simulated system declares tens of megabytes of SDRAM (and
// 64 KiB locals per tile) but a run touches a small fraction; lazy chunks
// avoid zeroing (and GC'ing) the untouched remainder, which dominated
// system-construction cost in batched sweeps.
const (
	chunkBits = 14
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// RAM is a byte-addressable backing store covering [Base, Base+Size).
// Never-written bytes read as zero, exactly as an eagerly zeroed array
// would. The zero value is unusable; use NewRAM.
type RAM struct {
	base   Addr
	size   int
	chunks [][]byte
}

// NewRAM returns a RAM of the given size starting at base.
func NewRAM(base Addr, size int) *RAM {
	return &RAM{base: base, size: size, chunks: make([][]byte, (size+chunkSize-1)>>chunkBits)}
}

// Base returns the first address covered.
func (r *RAM) Base() Addr { return r.base }

// Size returns the number of bytes covered.
func (r *RAM) Size() int { return r.size }

// Contains reports whether [addr, addr+n) lies inside the RAM.
func (r *RAM) Contains(addr Addr, n int) bool {
	off := int64(addr) - int64(r.base)
	return off >= 0 && off+int64(n) <= int64(r.size)
}

func (r *RAM) index(addr Addr, n int) int {
	if !r.Contains(addr, n) {
		panic(fmt.Sprintf("mem: access [%#x,+%d) outside RAM [%#x,+%d)", addr, n, r.base, r.size))
	}
	return int(addr - r.base)
}

// writable returns the chunk backing offset off, materializing it on first
// write.
func (r *RAM) writable(off int) []byte {
	ci := off >> chunkBits
	c := r.chunks[ci]
	if c == nil {
		c = make([]byte, chunkSize)
		r.chunks[ci] = c
	}
	return c
}

// Read8 returns the byte at addr.
func (r *RAM) Read8(addr Addr) uint8 {
	off := r.index(addr, 1)
	c := r.chunks[off>>chunkBits]
	if c == nil {
		return 0
	}
	return c[off&chunkMask]
}

// Write8 stores a byte at addr.
func (r *RAM) Write8(addr Addr, v uint8) {
	off := r.index(addr, 1)
	r.writable(off)[off&chunkMask] = v
}

// Read32 returns the little-endian word at addr.
func (r *RAM) Read32(addr Addr) uint32 {
	off := r.index(addr, 4)
	if co := off & chunkMask; co <= chunkSize-4 {
		c := r.chunks[off>>chunkBits]
		if c == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(c[co:])
	}
	var b [4]byte
	r.read(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Write32 stores a little-endian word at addr.
func (r *RAM) Write32(addr Addr, v uint32) {
	off := r.index(addr, 4)
	if co := off & chunkMask; co <= chunkSize-4 {
		binary.LittleEndian.PutUint32(r.writable(off)[co:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	r.write(off, b[:])
}

// read copies from offset off into dst, crossing chunks as needed.
func (r *RAM) read(off int, dst []byte) {
	for len(dst) > 0 {
		co := off & chunkMask
		n := chunkSize - co
		if n > len(dst) {
			n = len(dst)
		}
		if c := r.chunks[off>>chunkBits]; c != nil {
			copy(dst[:n], c[co:])
		} else {
			clear(dst[:n])
		}
		off += n
		dst = dst[n:]
	}
}

// write copies src to offset off, crossing chunks as needed.
func (r *RAM) write(off int, src []byte) {
	for len(src) > 0 {
		co := off & chunkMask
		n := chunkSize - co
		if n > len(src) {
			n = len(src)
		}
		copy(r.writable(off)[co:co+n], src[:n])
		off += n
		src = src[n:]
	}
}

// ReadBlock copies len(dst) bytes starting at addr into dst.
func (r *RAM) ReadBlock(addr Addr, dst []byte) {
	r.read(r.index(addr, len(dst)), dst)
}

// WriteBlock copies src into the RAM starting at addr.
func (r *RAM) WriteBlock(addr Addr, src []byte) {
	r.write(r.index(addr, len(src)), src)
}

// Block is an interface for data-level line/block movement, implemented by
// RAM-backed devices. Timing is charged separately by the caller.
type Block interface {
	ReadBlock(addr Addr, dst []byte)
	WriteBlock(addr Addr, src []byte)
}

// SDRAMConfig sets the timing of the shared memory. The model is a
// pipelined controller: Banks independent banks each serve one access at a
// time for the access latency (WordLat / LineLat), and a single data
// channel serializes the transfers (ChannelWordLat / ChannelLineLat). One
// bank with zero channel latency degenerates to a simple arbitrated bus.
type SDRAMConfig struct {
	// WordLat is the bank occupancy of a single-word (4 B) access.
	WordLat sim.Time
	// LineLat is the bank occupancy of a cache-line burst of LineSize
	// bytes.
	LineLat sim.Time
	// LineSize is the burst length in bytes used by LineLat.
	LineSize int
	// Banks is the number of independent banks (>= 1).
	Banks int
	// ChannelWordLat is the shared-channel transfer time of one word.
	ChannelWordLat sim.Time
	// ChannelLineLat is the shared-channel transfer time of one line.
	ChannelLineLat sim.Time
}

// DefaultSDRAMConfig mirrors the latency regime of the paper's platform: a
// DDR controller with deep banking, tens-of-cycles access latency, and a
// data channel that streams one line burst in a few cycles.
func DefaultSDRAMConfig() SDRAMConfig {
	return SDRAMConfig{
		// A single word pays nearly the full row-access latency; a
		// line burst amortizes it over eight words — the asymmetry
		// that makes uncached shared data expensive (Fig. 8).
		WordLat: 14, LineLat: 28, LineSize: 32,
		Banks: 16, ChannelWordLat: 2, ChannelLineLat: 8,
	}
}

// SDRAM is the shared background memory: a RAM behind a banked, pipelined
// controller. Bank and channel queueing show up as stall time for the
// requesting core.
type SDRAM struct {
	*RAM
	Cfg     SDRAMConfig
	Channel *sim.Resource
	banks   []*sim.Resource

	// Stats.
	WordReads  uint64
	WordWrites uint64
	LineFills  uint64
	LineWBs    uint64
}

// NewSDRAM returns an SDRAM of the given size at base address base.
func NewSDRAM(k *sim.Kernel, base Addr, size int, cfg SDRAMConfig) *SDRAM {
	if cfg.Banks < 1 {
		cfg.Banks = 1
	}
	s := &SDRAM{
		RAM:     NewRAM(base, size),
		Cfg:     cfg,
		Channel: sim.NewResource(k, "sdram-channel"),
	}
	for i := 0; i < cfg.Banks; i++ {
		s.banks = append(s.banks, sim.NewResource(k, "sdram-bank"))
	}
	return s
}

// ReadWord performs a timed uncached word read on behalf of p, blocking for
// queueing plus service, and returns the value and total stall cycles.
func (s *SDRAM) ReadWord(p *sim.Proc, addr Addr) (v uint32, stall sim.Time) {
	stall = s.AccessWord(p, addr)
	s.WordReads++
	return s.Read32(addr), stall
}

// WriteWord performs a timed uncached word write on behalf of p.
func (s *SDRAM) WriteWord(p *sim.Proc, addr Addr, v uint32) (stall sim.Time) {
	stall = s.AccessWord(p, addr)
	s.WordWrites++
	s.Write32(addr, v)
	return stall
}

// FillLine performs a timed line burst read into dst (len(dst) should be
// Cfg.LineSize) on behalf of p.
func (s *SDRAM) FillLine(p *sim.Proc, addr Addr, dst []byte) (stall sim.Time) {
	stall = s.AccessLine(p, addr)
	s.LineFills++
	s.ReadBlock(addr, dst)
	return stall
}

// WritebackLine performs a timed line burst write from src on behalf of p.
func (s *SDRAM) WritebackLine(p *sim.Proc, addr Addr, src []byte) (stall sim.Time) {
	stall = s.AccessLine(p, addr)
	s.LineWBs++
	s.WriteBlock(addr, src)
	return stall
}

// WritebackLineAt books bus time for a line writeback at or after time t
// without a process context (used during lock-transfer flushes) and applies
// the data immediately. It returns when the bus slot ends.
func (s *SDRAM) WritebackLineAt(t sim.Time, addr Addr, src []byte) (end sim.Time) {
	end = s.ReserveLineAt(t, addr)
	s.LineWBs++
	s.WriteBlock(addr, src)
	return end
}

// ReserveLineWB books bus time for a line writeback whose data has already
// been deposited in the RAM (caches write their backing store directly);
// only the timing and the counter remain. It returns when the slot ends.
func (s *SDRAM) ReserveLineWB(t sim.Time, addr Addr) (end sim.Time) {
	end = s.ReserveLineAt(t, addr)
	s.LineWBs++
	return end
}

// TestAndSet32 performs an atomic test-and-set on a word: it reads the old
// value and, if zero, writes v, all within one bus slot. Because bus slots
// are disjoint and data moves at the end of the requester's slot, two
// concurrent TAS operations serialize in bus-grant order, which gives the
// atomicity a hardware exclusive bus transaction provides. This is the
// primitive of the centralized-lock baseline.
func (s *SDRAM) TestAndSet32(p *sim.Proc, addr Addr, v uint32) (old uint32, stall sim.Time) {
	stall = s.AccessWord(p, addr)
	s.WordReads++
	old = s.Read32(addr)
	if old == 0 {
		s.WordWrites++
		s.Write32(addr, v)
	}
	return old, stall
}

// Local is a tile's dual-port local memory: the owning core reads and
// writes it in a single cycle; the NoC delivers remote writes through the
// second port without stalling the core.
type Local struct {
	*RAM
	Tile int

	// Stats.
	CoreReads  uint64
	CoreWrites uint64
	NoCWrites  uint64
}

// NewLocal returns tile-local memory for the given tile.
func NewLocal(tile int, base Addr, size int) *Local {
	return &Local{RAM: NewRAM(base, size), Tile: tile}
}

// CoreRead32 is a single-cycle word read by the owning core.
func (l *Local) CoreRead32(p *sim.Proc, addr Addr) uint32 {
	p.Wait(1)
	l.CoreReads++
	return l.Read32(addr)
}

// CoreWrite32 is a single-cycle word write by the owning core.
func (l *Local) CoreWrite32(p *sim.Proc, addr Addr, v uint32) {
	p.Wait(1)
	l.CoreWrites++
	l.Write32(addr, v)
}

// NoCWriteBlock applies a block write arriving over the NoC port. It is
// untimed here; delivery timing is the NoC's job.
func (l *Local) NoCWriteBlock(addr Addr, src []byte) {
	l.NoCWrites++
	l.WriteBlock(addr, src)
}

package mem

import "pmc/internal/sim"

// This file holds the banked SDRAM timing model. The paper's platform uses
// a pipelined DDR memory controller: independent banks overlap row access
// while a single data channel serializes transfers. We model exactly that
// two-stage structure: an access reserves its bank for the access latency
// (WordLat or LineLat), then the shared channel for the transfer
// (ChannelWordLat or ChannelLineLat). With one bank the model degenerates
// to the single-bus behaviour.

// bankFor routes an address to a bank, interleaved at line granularity so
// consecutive lines hit different banks.
func (s *SDRAM) bankFor(addr Addr) *sim.Resource {
	if len(s.banks) == 1 {
		return s.banks[0]
	}
	idx := (uint32(addr) / uint32(s.Cfg.LineSize)) % uint32(len(s.banks))
	return s.banks[idx]
}

// reserve books bank service then channel transfer, starting no earlier
// than t, and returns when the data is on the requester's side.
func (s *SDRAM) reserve(t sim.Time, addr Addr, bankLat, chanLat sim.Time) (end sim.Time) {
	_, bankEnd := s.bankFor(addr).Reserve(t, bankLat)
	_, end = s.Channel.Reserve(bankEnd, chanLat)
	return end
}

// AccessWord performs a timed single-word access on behalf of p and
// returns the stall cycles. The data movement is the caller's concern.
func (s *SDRAM) AccessWord(p *sim.Proc, addr Addr) (stall sim.Time) {
	t0 := p.Now()
	p.WaitUntil(s.reserve(t0, addr, s.Cfg.WordLat, s.Cfg.ChannelWordLat))
	return p.Now() - t0
}

// AccessLine performs a timed line-burst access on behalf of p.
func (s *SDRAM) AccessLine(p *sim.Proc, addr Addr) (stall sim.Time) {
	t0 := p.Now()
	p.WaitUntil(s.reserve(t0, addr, s.Cfg.LineLat, s.Cfg.ChannelLineLat))
	return p.Now() - t0
}

// AccessLines performs a timed multi-line burst transaction on behalf of
// p: one row-access latency up front (the line-interleaved banks overlap
// their activates behind the first), then the shared channel streams the
// lines back-to-back. This is the DMA-style transfer the block-move
// runtime layer uses; a loop of AccessLine calls instead re-arbitrates
// per line and pays the full bank latency every time.
func (s *SDRAM) AccessLines(p *sim.Proc, addr Addr, lines int) (stall sim.Time) {
	if lines <= 0 {
		return 0
	}
	t0 := p.Now()
	p.WaitUntil(s.reserve(t0, addr, s.Cfg.LineLat, sim.Time(lines)*s.Cfg.ChannelLineLat))
	return p.Now() - t0
}

// ReserveWordAt books a posted word access starting at or after t and
// returns its completion time (when the data lands).
func (s *SDRAM) ReserveWordAt(t sim.Time, addr Addr) (end sim.Time) {
	return s.reserve(t, addr, s.Cfg.WordLat, s.Cfg.ChannelWordLat)
}

// ReserveLineAt books a posted line access starting at or after t.
func (s *SDRAM) ReserveLineAt(t sim.Time, addr Addr) (end sim.Time) {
	return s.reserve(t, addr, s.Cfg.LineLat, s.Cfg.ChannelLineLat)
}

// Grants returns the total number of bank reservations (the contention
// metric the lock ablation reports).
func (s *SDRAM) Grants() uint64 {
	var n uint64
	for _, b := range s.banks {
		n += b.Grants
	}
	return n
}

package mem

import (
	"testing"
	"testing/quick"

	"pmc/internal/sim"
)

func TestRAMRoundTrip(t *testing.T) {
	r := NewRAM(0x1000, 256)
	r.Write32(0x1000, 0xdeadbeef)
	if got := r.Read32(0x1000); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, want 0xdeadbeef", got)
	}
	// Little-endian byte view.
	if got := r.Read8(0x1000); got != 0xef {
		t.Fatalf("Read8 = %#x, want 0xef (little-endian)", got)
	}
	r.Write8(0x10ff, 0x7a)
	if got := r.Read8(0x10ff); got != 0x7a {
		t.Fatalf("Read8 = %#x, want 0x7a", got)
	}
}

func TestRAMBlockOps(t *testing.T) {
	r := NewRAM(0, 128)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.WriteBlock(32, src)
	dst := make([]byte, 8)
	r.ReadBlock(32, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("block mismatch at %d: %v vs %v", i, dst, src)
		}
	}
}

// TestRAMLazyZeroReads: never-written memory reads as zero through every
// access width, without materializing chunks.
func TestRAMLazyZeroReads(t *testing.T) {
	r := NewRAM(0, 4*chunkSize)
	if got := r.Read8(chunkSize + 7); got != 0 {
		t.Fatalf("untouched Read8 = %#x, want 0", got)
	}
	if got := r.Read32(2 * chunkSize); got != 0 {
		t.Fatalf("untouched Read32 = %#x, want 0", got)
	}
	dst := []byte{9, 9, 9, 9}
	r.ReadBlock(3*chunkSize-2, dst) // straddles a chunk boundary
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("untouched ReadBlock byte %d = %#x, want 0", i, b)
		}
	}
	for i, c := range r.chunks {
		if c != nil {
			t.Fatalf("read materialized chunk %d", i)
		}
	}
}

// TestRAMChunkBoundary exercises word and block accesses that straddle the
// lazy-chunk boundary, against partially materialized neighbors.
func TestRAMChunkBoundary(t *testing.T) {
	r := NewRAM(0, 2*chunkSize)
	// Word write/read straddling the boundary.
	at := Addr(chunkSize - 2)
	r.Write32(at, 0x11223344)
	if got := r.Read32(at); got != 0x11223344 {
		t.Fatalf("straddling Read32 = %#x, want 0x11223344", got)
	}
	// Block crossing the boundary with one side untouched.
	r2 := NewRAM(0, 2*chunkSize)
	r2.Write8(chunkSize-1, 0xaa) // materialize only the first chunk
	dst := make([]byte, 4)
	r2.ReadBlock(chunkSize-2, dst)
	if dst[0] != 0 || dst[1] != 0xaa || dst[2] != 0 || dst[3] != 0 {
		t.Fatalf("boundary ReadBlock = %v, want [0 aa 0 0]", dst)
	}
	src := []byte{1, 2, 3, 4, 5, 6}
	r2.WriteBlock(chunkSize-3, src)
	got := make([]byte, 6)
	r2.ReadBlock(chunkSize-3, got)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("boundary block round-trip = %v, want %v", got, src)
		}
	}
}

func TestRAMOutOfBoundsPanics(t *testing.T) {
	r := NewRAM(0x100, 16)
	for _, f := range []func(){
		func() { r.Read8(0xff) },
		func() { r.Read32(0x10e) }, // straddles the end
		func() { r.Write32(0x200, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSDRAMTimingUncontended(t *testing.T) {
	k := sim.New()
	s := NewSDRAM(k, 0, 4096, SDRAMConfig{WordLat: 8, LineLat: 24, LineSize: 32})
	k.Spawn("a", func(p *sim.Proc) {
		if stall := s.WriteWord(p, 0, 42); stall != 8 {
			t.Errorf("uncontended write stall = %d, want 8", stall)
		}
		v, stall := s.ReadWord(p, 0)
		if v != 42 {
			t.Errorf("read = %d, want 42", v)
		}
		if stall != 8 {
			t.Errorf("uncontended read stall = %d, want 8", stall)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSDRAMTimingContended(t *testing.T) {
	k := sim.New()
	s := NewSDRAM(k, 0, 4096, SDRAMConfig{WordLat: 8, LineLat: 24, LineSize: 32})
	var stallA2, stallB sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		s.WriteWord(p, 0, 42) // bus slot [0,8)
		_, stallA2 = s.ReadWord(p, 0)
	})
	k.Spawn("b", func(p *sim.Proc) {
		// Requested at cycle 0 while a's write occupies the bus:
		// FIFO grants b the slot [8,16), so a's second access gets
		// [16,24).
		_, stallB = s.ReadWord(p, 4)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if stallB != 16 {
		t.Fatalf("contended stall (b) = %d, want 16 (8 queued + 8 service)", stallB)
	}
	if stallA2 != 16 {
		t.Fatalf("contended stall (a, 2nd access) = %d, want 16", stallA2)
	}
	if s.WordReads != 2 || s.WordWrites != 1 {
		t.Fatalf("counters: reads=%d writes=%d", s.WordReads, s.WordWrites)
	}
}

func TestSDRAMLineOps(t *testing.T) {
	k := sim.New()
	s := NewSDRAM(k, 0, 4096, DefaultSDRAMConfig())
	k.Spawn("p", func(p *sim.Proc) {
		line := make([]byte, 32)
		for i := range line {
			line[i] = byte(i)
		}
		s.WritebackLine(p, 64, line)
		got := make([]byte, 32)
		s.FillLine(p, 64, got)
		for i := range line {
			if got[i] != line[i] {
				t.Errorf("line byte %d = %d, want %d", i, got[i], line[i])
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.LineFills != 1 || s.LineWBs != 1 {
		t.Fatalf("counters: fills=%d wbs=%d", s.LineFills, s.LineWBs)
	}
}

func TestWritebackLineAtReservesBank(t *testing.T) {
	k := sim.New()
	s := NewSDRAM(k, 0, 1024, SDRAMConfig{WordLat: 8, LineLat: 24, LineSize: 32})
	end := s.WritebackLineAt(100, 0, make([]byte, 32))
	if end != 124 {
		t.Fatalf("end = %d, want 124", end)
	}
	// A later access to the same (single) bank must queue behind it.
	if got := s.ReserveWordAt(110, 4); got != 132 {
		t.Fatalf("queued word completes at %d, want 132", got)
	}
}

func TestLocalMemory(t *testing.T) {
	k := sim.New()
	l := NewLocal(3, 0x8000_0000, 1024)
	k.Spawn("core", func(p *sim.Proc) {
		l.CoreWrite32(p, 0x8000_0000, 7)
		if p.Now() != 1 {
			t.Errorf("core write took %d cycles, want 1", p.Now())
		}
		if v := l.CoreRead32(p, 0x8000_0000); v != 7 {
			t.Errorf("read = %d, want 7", v)
		}
		if p.Now() != 2 {
			t.Errorf("after read now = %d, want 2", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	l.NoCWriteBlock(0x8000_0010, []byte{9, 0, 0, 0})
	if l.Read32(0x8000_0010) != 9 {
		t.Fatal("NoC port write not visible")
	}
	if l.CoreReads != 1 || l.CoreWrites != 1 || l.NoCWrites != 1 {
		t.Fatalf("counters: r=%d w=%d noc=%d", l.CoreReads, l.CoreWrites, l.NoCWrites)
	}
}

// Property: words written at word-aligned addresses read back identically
// and do not disturb neighbours.
func TestRAMWordIsolationProperty(t *testing.T) {
	r := NewRAM(0, 4096)
	prop := func(slot uint16, v1, v2 uint32) bool {
		a := Addr(slot%1000) * 4
		b := a + 4
		if b+4 > 4096 {
			return true
		}
		r.Write32(a, v1)
		r.Write32(b, v2)
		return r.Read32(a) == v1 && r.Read32(b) == v2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package spec

import (
	"fmt"
	"sort"

	"pmc/internal/core"
	"pmc/internal/rt"
)

// StepReplica is dsm-family in-scope access: reads and writes touch the
// tile's local replica, kept fresh by the lock transfer. (Declared here
// with the authored specs rather than the core vocabulary because no
// injectable fault models breaking it — the replica is the backend's
// storage, not a protocol action.)
const StepReplica Step = "replica-access"

// build authors one backend spec from its three step groups. Table I
// splits cleanly along the protocol's seams:
//
//   - the release→acquire ≺S rule (the only cross-process edge) is
//     committed by the sync steps — each protocol's heart;
//   - every rule touching a fence is committed by the fence steps;
//   - the remaining rules are same-process ≺ℓ/≺P edges, committed by the
//     in-order pipeline plus the backend's access mechanism (which is
//     what makes a same-process read actually observe the earlier write).
func build(backend string, clustered bool, access, sync, fence, liveness []Step) Spec {
	commits := make([]Commit, 0, len(core.TableI))
	for _, r := range core.TableI {
		ob := ruleOb(r)
		var by []Step
		switch {
		case r.Earlier == core.KRelease && r.New == core.KAcquire:
			by = sync
		case r.Earlier == core.KFence || r.New == core.KFence:
			by = fence
		default:
			by = append([]Step{StepProgramOrder}, access...)
		}
		commits = append(commits, Commit{Obligation: ob, By: by})
	}
	return Spec{Backend: backend, Clustered: clustered, Commits: commits, Liveness: liveness}
}

// ForBackend returns the authored ordering spec of a backend.
//
// The step attributions follow Table II's protocol descriptions:
//
//	nocc  — every access goes straight to SDRAM; the mutex alone orders
//	        scopes, and uncached access makes each edge globally visible
//	        the moment it commits.
//	swcc  — scope-cached: entry fetches fresh lines, exit writes dirty
//	        lines back, exit_ro invalidates so the next entry refetches;
//	        the ≺S edge is mutex + writeback on the releasing side +
//	        fetch/invalidate on the acquiring side. swcc-lazy defers the
//	        writeback but commits the same obligations at the same
//	        boundaries.
//	dsm   — each tile holds a replica; in-scope accesses are local, and
//	        the ≺S edge rides the data-carrying lock transfer.
//	spm   — objects stage into local memory for the scope; stage-out on
//	        exit and stage-in on entry carry the released values, under
//	        the same mutex. cdsm/cspm are the cluster-hierarchical
//	        variants: same steps, committed per cluster pair (Clustered
//	        selects the cluster-topology interface scale).
//	adaptive — routes each object to one of the protocols above and may
//	        switch at a scope boundary (the route-cut); its spec is the
//	        union of the mechanisms it can delegate to, plus the cut.
//
// flush() commits no Table I edge on any backend — it is the liveness
// hint of Section IV-D — so it appears in Liveness, never in Commits.
func ForBackend(name string) (Spec, error) {
	fence := []Step{StepProgramOrder, StepFenceDrain}
	switch name {
	case "nocc":
		return build("nocc", false,
			[]Step{StepUncached},
			[]Step{StepMutex, StepUncached},
			fence, nil), nil
	case "swcc", "swcc-lazy":
		s := build(name, false,
			[]Step{StepEntryFetch},
			[]Step{StepMutex, StepExitWriteback, StepEntryFetch, StepROInvalidate},
			fence,
			[]Step{StepFlushPost})
		return s, nil
	case "dsm":
		return build("dsm", false,
			[]Step{StepReplica},
			[]Step{StepMutex, StepLockTransfer},
			fence,
			[]Step{StepFlushPost}), nil
	case "spm":
		return build("spm", false,
			[]Step{StepStageIn, StepStageOut},
			[]Step{StepMutex, StepStageOut, StepStageIn},
			fence,
			[]Step{StepFlushPost}), nil
	case "cdsm":
		return build("cdsm", true,
			[]Step{StepReplica},
			[]Step{StepMutex, StepLockTransfer},
			fence,
			[]Step{StepFlushPost}), nil
	case "cspm":
		return build("cspm", true,
			[]Step{StepStageIn, StepStageOut},
			[]Step{StepMutex, StepStageOut, StepStageIn},
			fence,
			[]Step{StepFlushPost}), nil
	case "adaptive":
		return build("adaptive", false,
			[]Step{StepRouteCut, StepUncached, StepEntryFetch, StepReplica, StepStageIn, StepStageOut},
			[]Step{StepRouteCut, StepMutex, StepUncached, StepExitWriteback, StepEntryFetch,
				StepROInvalidate, StepLockTransfer, StepStageOut, StepStageIn},
			fence,
			[]Step{StepFlushPost}), nil
	}
	return Spec{}, fmt.Errorf("spec: no ordering spec for backend %q (have %v)", name, rt.Backends)
}

// All returns the authored specs of every selectable backend, sorted by
// backend name.
func All() []Spec {
	out := make([]Spec, 0, len(rt.Backends))
	for _, name := range rt.Backends {
		s, err := ForBackend(name)
		if err != nil {
			// rt.Backends and ForBackend are maintained together; an
			// uncovered backend is a programming error, caught by tests.
			panic(err)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// Package spec makes backend conformance compositional. Exhaustive
// whole-platform checking dies long before 1024 tiles; following
// RealityCheck's modular-specification approach, each backend instead
// carries a small declarative ordering spec — which Table I edges its
// protocol steps commit, expressed as data — and verification splits
// into two independently checkable halves:
//
//   - backend vs spec (CheckBackend): the existing litmus engine drives
//     the backend at a fixed interface scale — a handful of tiles, or
//     one cluster pair for the hierarchical backends — so the cost grows
//     with threads-per-litmus, never with deployment size. Every
//     simulated outcome must be model-allowed, and every edge of a
//     recorder-lowered trace must be attributable to an obligation the
//     spec declares (CheckTrace).
//   - spec vs model (VsModel): a pure data check that the spec is sound
//     (every declared obligation is a real Table I rule) and complete
//     (every Table I rule is committed by at least one protocol step).
//
// Together they compose: backend-vs-spec + spec-vs-model ⇒
// backend-vs-model, which is the property whole-platform conformance
// used to establish by brute force. A broken backend is caught by the
// first half (rt.InjectFaults proves detection), a broken spec by the
// second.
package spec

import (
	"fmt"

	"pmc/internal/core"
	"pmc/internal/rt"
)

// Step names one protocol mechanism of a backend implementation — the
// moving parts of Table II, at the granularity fault injection can break.
type Step string

// The protocol step vocabulary. A spec commits each Table I rule to the
// steps that implement it; FaultFor maps the breakable steps onto
// rt.FaultSet so a spec can name the fault that would falsify each of
// its own obligations.
const (
	// StepProgramOrder is the in-order tile pipeline: one core issues
	// its operations in program order, committing same-process edges.
	StepProgramOrder Step = "program-order"
	// StepMutex is the lock acquire/release pair behind entry_x/exit_x
	// (central lock words or the distributed lock service).
	StepMutex Step = "mutex"
	// StepUncached is direct SDRAM access with no local copy (nocc).
	StepUncached Step = "uncached-access"
	// StepEntryFetch invalidates/fetches fresh lines at scope entry
	// (swcc), so in-scope reads observe the releasing writer.
	StepEntryFetch Step = "entry-fetch"
	// StepExitWriteback writes dirty lines back and invalidates at
	// exit_x (swcc) — the visibility half of a release.
	StepExitWriteback Step = "exit-writeback"
	// StepROInvalidate drops read-only lines at exit_ro (swcc), so the
	// next entry refetches instead of reading a stale resident line.
	StepROInvalidate Step = "ro-invalidate"
	// StepFlushPost posts dirty data toward SDRAM on flush(). Flush
	// commits no Table I edge (it is a liveness hint, Section IV-D); it
	// appears in Spec.Liveness, not in commits.
	StepFlushPost Step = "flush-post"
	// StepLockTransfer carries the object's words on the lock handoff
	// (dsm/cdsm replica update).
	StepLockTransfer Step = "lock-transfer"
	// StepStageIn copies the object into local memory at scope entry
	// (spm/cspm).
	StepStageIn Step = "stage-in"
	// StepStageOut copies the staged object back at scope exit
	// (spm/cspm).
	StepStageOut Step = "stage-out"
	// StepFenceDrain blocks the core until outstanding memory traffic
	// has drained (fence()).
	StepFenceDrain Step = "fence-drain"
	// StepRouteCut is the adaptive backend's protocol switch at a scope
	// boundary — the consistent cut where per-object migration is safe.
	StepRouteCut Step = "route-cut"
)

// Obligation is one cell of Table I — an ordering edge a conforming
// backend must commit when the New operation executes after a matching
// Earlier one.
type Obligation struct {
	Earlier core.Kind
	New     core.Kind
	Ord     core.Ord
	// AnyProc mirrors the table's footnote: the release→acquire ≺S rule
	// matches releases of the location by any process.
	AnyProc bool
}

func (o Obligation) String() string {
	scope := "p"
	if o.AnyProc {
		scope = "*"
	}
	return fmt.Sprintf("%s→%s %s (%s)", o.Earlier, o.New, o.Ord, scope)
}

// ruleOb converts a Table I rule to its obligation.
func ruleOb(r core.Rule) Obligation {
	return Obligation{Earlier: r.Earlier, New: r.New, Ord: r.Ord, AnyProc: r.AnyProc}
}

// TableIObligations returns every Table I rule as an obligation, in table
// order — the completeness target for VsModel.
func TableIObligations() []Obligation {
	out := make([]Obligation, len(core.TableI))
	for i, r := range core.TableI {
		out[i] = ruleOb(r)
	}
	return out
}

// Commit declares that the named protocol steps together commit one
// obligation.
type Commit struct {
	Obligation
	By []Step
}

// Spec is one backend's declarative ordering specification.
type Spec struct {
	// Backend is the rt backend name the spec describes.
	Backend string
	// Clustered marks hierarchical backends (cdsm/cspm): their interface
	// scale is a cluster pair, not a flat tile row.
	Clustered bool
	// Commits maps every Table I obligation to the steps implementing it.
	Commits []Commit
	// Liveness lists steps required for progress rather than ordering —
	// breaking one livelocks pollers instead of violating an edge
	// (flush() is the canonical example, Section IV-D).
	Liveness []Step
}

// Committed returns the steps the spec declares for ob, or nil.
func (s *Spec) Committed(ob Obligation) []Step {
	for _, c := range s.Commits {
		if c.Obligation == ob {
			return c.By
		}
	}
	return nil
}

// Steps returns the deduplicated set of steps the spec mentions, in
// first-mention order.
func (s *Spec) Steps() []Step {
	seen := make(map[Step]bool)
	var out []Step
	add := func(st Step) {
		if !seen[st] {
			seen[st] = true
			out = append(out, st)
		}
	}
	for _, c := range s.Commits {
		for _, st := range c.By {
			add(st)
		}
	}
	for _, st := range s.Liveness {
		add(st)
	}
	return out
}

// VsModel is the spec-vs-model half of the compositional argument: the
// spec must be sound (every commit is a real Table I rule, ord and scope
// included, carried by at least one step) and complete (every Table I
// rule is committed). It returns one problem string per defect; an empty
// slice means the spec and the model agree edge for edge.
func VsModel(s *Spec) []string {
	var problems []string
	table := make(map[Obligation]bool, len(core.TableI))
	for _, r := range core.TableI {
		table[ruleOb(r)] = true
	}
	committed := make(map[Obligation]bool)
	for _, c := range s.Commits {
		if !table[c.Obligation] {
			problems = append(problems,
				fmt.Sprintf("spec %s: commit %s is not a Table I rule (unsound)", s.Backend, c.Obligation))
		}
		if len(c.By) == 0 {
			problems = append(problems,
				fmt.Sprintf("spec %s: commit %s names no protocol step", s.Backend, c.Obligation))
		}
		if committed[c.Obligation] {
			problems = append(problems,
				fmt.Sprintf("spec %s: commit %s declared twice", s.Backend, c.Obligation))
		}
		committed[c.Obligation] = true
	}
	for _, r := range core.TableI {
		if !committed[ruleOb(r)] {
			problems = append(problems,
				fmt.Sprintf("spec %s: Table I rule %s is committed by no step (incomplete)", s.Backend, ruleOb(r)))
		}
	}
	return problems
}

// FaultFor maps a protocol step to the rt fault that disables it, when
// the fault-injection harness models one. This is how a spec names the
// experiment that would falsify each of its obligations: inject the
// fault, and CheckBackend must report a divergence.
func FaultFor(st Step) (rt.FaultSet, bool) {
	switch st {
	case StepExitWriteback:
		return rt.FaultSet{SkipExitFlush: true}, true
	case StepROInvalidate:
		return rt.FaultSet{SkipROFlush: true}, true
	case StepFlushPost:
		return rt.FaultSet{SkipFlush: true}, true
	case StepLockTransfer:
		return rt.FaultSet{DropTransfer: true}, true
	}
	return rt.FaultSet{}, false
}

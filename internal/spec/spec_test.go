package spec

import (
	"reflect"
	"strings"
	"testing"

	"pmc/internal/conform"
	"pmc/internal/core"
	"pmc/internal/litmus"
	"pmc/internal/rt"
)

// TestSpecsCoverModel: every selectable backend has an authored spec that
// passes the spec-vs-model half — sound and complete over all 17 Table I
// rules — and the hierarchical backends are marked clustered.
func TestSpecsCoverModel(t *testing.T) {
	all := All()
	if len(all) != len(rt.Backends) {
		t.Fatalf("All() returned %d specs for %d backends", len(all), len(rt.Backends))
	}
	for _, name := range rt.Backends {
		s, err := ForBackend(name)
		if err != nil {
			t.Fatalf("ForBackend(%s): %v", name, err)
		}
		if s.Backend != name {
			t.Errorf("ForBackend(%s) spec names backend %q", name, s.Backend)
		}
		if probs := VsModel(&s); len(probs) != 0 {
			t.Errorf("spec %s vs model: %v", name, probs)
		}
		for _, ob := range TableIObligations() {
			if len(s.Committed(ob)) == 0 {
				t.Errorf("spec %s: obligation %s committed by no step", name, ob)
			}
		}
		wantClustered := name == "cdsm" || name == "cspm"
		if s.Clustered != wantClustered {
			t.Errorf("spec %s: Clustered=%v, want %v", name, s.Clustered, wantClustered)
		}
	}
	if _, err := ForBackend("no-such-backend"); err == nil {
		t.Error("ForBackend accepted an unknown backend")
	}
}

// deepCopy clones a spec so tests can break it without aliasing the
// authored commits.
func deepCopy(s Spec) Spec {
	c := s
	c.Commits = make([]Commit, len(s.Commits))
	for i, cm := range s.Commits {
		c.Commits[i] = Commit{Obligation: cm.Obligation, By: append([]Step(nil), cm.By...)}
	}
	c.Liveness = append([]Step(nil), s.Liveness...)
	return c
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ForBackend(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestVsModelCatchesDefects: each defect class a spec can have — a
// dropped rule, a rule the model doesn't contain, a stepless commit, a
// duplicate — is reported by the data check.
func TestVsModelCatchesDefects(t *testing.T) {
	base := mustSpec(t, "swcc")
	cases := []struct {
		name   string
		break_ func(*Spec)
		want   string
	}{
		{"dropped rule", func(s *Spec) { s.Commits = s.Commits[1:] }, "incomplete"},
		{"phantom rule", func(s *Spec) {
			s.Commits = append(s.Commits, Commit{
				Obligation: Obligation{Earlier: core.KRead, New: core.KRead, Ord: core.OrdSync},
				By:         []Step{StepProgramOrder},
			})
		}, "unsound"},
		{"stepless commit", func(s *Spec) { s.Commits[0].By = nil }, "names no protocol step"},
		{"duplicate commit", func(s *Spec) { s.Commits = append(s.Commits, s.Commits[0]) }, "declared twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			broken := deepCopy(base)
			c.break_(&broken)
			probs := VsModel(&broken)
			if len(probs) == 0 {
				t.Fatal("defective spec passed VsModel")
			}
			if !strings.Contains(strings.Join(probs, "\n"), c.want) {
				t.Errorf("problems %v do not mention %q", probs, c.want)
			}
		})
	}
}

// TestFaultForBreakableSteps: the steps the fault harness can disable map
// to non-empty fault sets; purely structural steps map to none.
func TestFaultForBreakableSteps(t *testing.T) {
	for _, st := range []Step{StepExitWriteback, StepROInvalidate, StepFlushPost, StepLockTransfer} {
		if fs, ok := FaultFor(st); !ok || !fs.Enabled() {
			t.Errorf("FaultFor(%s) = %+v, %v; want a non-empty fault", st, fs, ok)
		}
	}
	for _, st := range []Step{StepProgramOrder, StepMutex, StepUncached, StepReplica, StepRouteCut} {
		if _, ok := FaultFor(st); ok {
			t.Errorf("FaultFor(%s) claimed a fault for an unbreakable step", st)
		}
	}
}

// TestCheckBackendConformsAll is the compositional conformance matrix:
// every backend, checked against its own spec at interface scale. With
// TestSpecsCoverModel (spec vs model) this composes into backend vs
// model for all of them.
func TestCheckBackendConformsAll(t *testing.T) {
	for _, name := range rt.Backends {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s := mustSpec(t, name)
			r, err := CheckBackend(s, Platform{Tiles: 32}, CheckOptions{Runs: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Ok() {
				t.Errorf("%s", r)
			}
			if r.Work.SimTiles != InterfaceTiles {
				t.Errorf("simulated at %d tiles, want interface scale %d", r.Work.SimTiles, InterfaceTiles)
			}
			t.Log(r)
		})
	}
}

// TestCheckWorkPlatformIndependent pins the scaling claim: certifying a
// 1024-tile deployment costs exactly the same litmus work as certifying
// 32 tiles, for a flat backend and a clustered one.
func TestCheckWorkPlatformIndependent(t *testing.T) {
	for _, name := range []string{"swcc", "cdsm"} {
		s := mustSpec(t, name)
		r32, err := CheckBackend(s, Platform{Tiles: 32}, CheckOptions{Runs: 2})
		if err != nil {
			t.Fatal(err)
		}
		r1024, err := CheckBackend(s, Platform{Tiles: 1024}, CheckOptions{Runs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r32.Work, r1024.Work) {
			t.Errorf("%s: work at 32 tiles %+v != work at 1024 tiles %+v", name, r32.Work, r1024.Work)
		}
		if !r32.Ok() || !r1024.Ok() {
			t.Errorf("%s: conformance result depends on platform size: %v vs %v", name, r32.Ok(), r1024.Ok())
		}
	}
}

// TestCheckBackendCatchesInjectedFault is the detection half of the
// acceptance criterion: a backend with one protocol step disabled — the
// fault its own spec names via FaultFor — must fail its spec check.
func TestCheckBackendCatchesInjectedFault(t *testing.T) {
	cases := []struct {
		backend string
		step    Step
		make    func() rt.Backend
	}{
		{"swcc", StepExitWriteback, rt.SWCC},
		{"dsm", StepLockTransfer, rt.DSM},
	}
	for _, c := range cases {
		c := c
		t.Run(string(c.backend+"/"+string(c.step)), func(t *testing.T) {
			t.Parallel()
			s := mustSpec(t, c.backend)
			fs, ok := FaultFor(c.step)
			if !ok {
				t.Fatalf("no fault for step %s", c.step)
			}
			r, err := CheckBackend(s, Platform{Tiles: 32}, CheckOptions{
				Runs:    4,
				Backend: func() (rt.Backend, error) { return rt.InjectFaults(c.make(), fs), nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ok() {
				t.Fatalf("%s with %s disabled passed its spec check", c.backend, c.step)
			}
			t.Log(r)
		})
	}
}

// TestCheckBackendRejectsBrokenSpec: a spec that fails the data check is
// reported as such and never simulated — the composition cannot be
// grounded on a spec that disagrees with the model.
func TestCheckBackendRejectsBrokenSpec(t *testing.T) {
	broken := deepCopy(mustSpec(t, "nocc"))
	broken.Commits = broken.Commits[1:]
	r, err := CheckBackend(broken, Platform{Tiles: 32}, CheckOptions{Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ok() {
		t.Fatal("broken spec certified")
	}
	for _, d := range r.Divergences {
		if d.Kind != "spec" {
			t.Errorf("unexpected divergence kind %q: %s", d.Kind, d)
		}
	}
	if r.Work.SimRuns != 0 {
		t.Errorf("broken spec still simulated %d runs", r.Work.SimRuns)
	}
}

// TestTraceMatrix is the satellite coverage matrix: every backend ×
// every interface program, executed once with the recorder attached, and
// every edge of the per-word lowered trace attributed to the backend's
// declared spec. This checks the specs edge-by-edge against real traces,
// independent of CheckBackend's outcome comparison.
func TestTraceMatrix(t *testing.T) {
	progs := InterfacePrograms()
	for _, name := range rt.Backends {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s := mustSpec(t, name)
			base, err := interfaceConfig(s.Clustered)
			if err != nil {
				t.Fatal(err)
			}
			opt := conform.Options{Tiles: InterfaceTiles, Runs: 1, MaxCycles: interfaceMaxCycles, Base: base}
			for _, p := range progs {
				eff := conform.EffectiveProgram(p)
				_, exec, err := conform.ExecuteRecorded(eff, name, opt, 1)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				if len(exec.Edges()) == 0 {
					t.Fatalf("%s: recorder produced no edges", p.Name)
				}
				if probs := CheckTrace(exec, s); len(probs) != 0 {
					t.Errorf("%s: %d unattributed edges, first: %s", p.Name, len(probs), probs[0])
				}
			}
		})
	}
}

// TestCheckTraceDetectsUncommittedEdge: remove the cross-process ≺S
// commit from a spec and the trace checker must flag the release→acquire
// edge of a real message-passing trace.
func TestCheckTraceDetectsUncommittedEdge(t *testing.T) {
	s := deepCopy(mustSpec(t, "nocc"))
	kept := s.Commits[:0]
	for _, c := range s.Commits {
		if !(c.Earlier == core.KRelease && c.New == core.KAcquire) {
			kept = append(kept, c)
		}
	}
	s.Commits = kept

	eff := conform.EffectiveProgram(litmus.Fig5Annotated())
	_, exec, err := conform.ExecuteRecorded(eff, "nocc", conform.Options{Tiles: InterfaceTiles, Runs: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	probs := CheckTrace(exec, s)
	if len(probs) == 0 {
		t.Fatal("missing ≺S commit not detected")
	}
	for _, p := range probs {
		if !strings.Contains(p, "A") { // every uncovered edge ends at an acquire
			t.Errorf("unexpected problem: %s", p)
		}
	}
	// Union semantics: adding a second spec that does commit ≺S covers
	// the trace again (the mixed-backend case).
	if probs := CheckTrace(exec, s, mustSpec(t, "swcc")); len(probs) != 0 {
		t.Errorf("union of specs still leaves %d edges uncovered: %s", len(probs), probs[0])
	}
}

package spec

import (
	"fmt"
	"strings"

	"pmc/internal/conform"
	"pmc/internal/core"
	"pmc/internal/litmus"
	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/soc"
)

// InterfaceTiles is the fixed simulation scale of the backend-vs-spec
// check: enough tiles for every interface program's threads, and — for
// clustered backends — two clusters, so every protocol step (including
// the cross-cluster ones) is exercised. The deployment being certified
// (Platform.Tiles) never changes this; that independence is the whole
// point of checking against the interface instead of the platform.
const InterfaceTiles = 4

// interfaceMaxCycles bounds each interface run. The programs are tiny, so
// a healthy run finishes orders of magnitude earlier; a fault-livelocked
// poller fails fast instead of burning the default simulation budget.
const interfaceMaxCycles = 2_000_000

// Platform names the deployment a conformance result certifies. Only
// recorded — the checker's work is a function of the spec and the
// programs, never of Tiles.
type Platform struct {
	// Tiles is the deployment size (e.g. 32 or 1024).
	Tiles int
}

// Work measures what a check actually cost, so tests (and the
// spec-ablation experiment) can assert that the cost at 1024 tiles equals
// the cost at 32.
type Work struct {
	// Programs is the number of litmus programs driven.
	Programs int
	// ModelStates is the summed explorer state count across programs.
	ModelStates int
	// SimRuns is the number of perturbed simulator runs.
	SimRuns int
	// SimTiles is the scale every simulation ran at (InterfaceTiles).
	SimTiles int
}

// Divergence is one way the backend (or its spec) departed from the
// model.
type Divergence struct {
	Program string
	// Kind classifies the failure: "spec" (the spec itself fails
	// VsModel), "run" (a simulation died — typically a fault-induced
	// livelock hitting the cycle bound), "read" (the recorder saw a
	// model-forbidden read value mid-run), "outcome" (a final register
	// assignment outside the model's outcome set), or "edge" (a trace
	// edge no declared obligation commits).
	Kind   string
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s [%s]: %s", d.Program, d.Kind, d.Detail)
}

// Result is the outcome of checking one backend against its spec.
type Result struct {
	Backend     string
	Platform    Platform
	Work        Work
	Divergences []Divergence
}

// Ok reports conformance: the spec matches the model and every simulated
// behavior is attributable to it.
func (r *Result) Ok() bool { return len(r.Divergences) == 0 }

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs spec (platform %d tiles): %d programs, %d model states, %d runs at %d tiles",
		r.Backend, r.Platform.Tiles, r.Work.Programs, r.Work.ModelStates, r.Work.SimRuns, r.Work.SimTiles)
	if r.Ok() {
		b.WriteString("; conforms")
	} else {
		fmt.Fprintf(&b, "; %d DIVERGENCES", len(r.Divergences))
		for _, d := range r.Divergences {
			fmt.Fprintf(&b, "\n  %s", d)
		}
	}
	return b.String()
}

// CheckOptions configures CheckBackend beyond the spec and platform.
type CheckOptions struct {
	// Programs overrides the litmus set; nil means InterfacePrograms().
	Programs []litmus.Program
	// Runs is the number of perturbed simulations per program (default 8).
	Runs int
	// Seed is the base perturbation seed (run r uses Seed+r).
	Seed int64
	// Backend, if non-nil, constructs the backend instance instead of
	// rt.ByName(spec.Backend) — the hook for checking a fault-injected
	// implementation against its own spec.
	Backend func() (rt.Backend, error)
}

// InterfacePrograms is the default conformance matrix: the paper's
// annotated Fig. 5, an unsynchronized 3-thread IRIW, both single-location
// coherence shapes, and block-payload message passing. Together they
// exercise every Table I rule class (≺ℓ, ≺P, the cross-process ≺S, and
// fences) within InterfaceTiles threads.
func InterfacePrograms() []litmus.Program {
	return []litmus.Program{
		litmus.Fig5Annotated(),
		litmus.IRIW3(),
		litmus.CoRW(),
		litmus.CoWR(),
		litmus.MPBlock(),
	}
}

// interfaceConfig builds the fixed-size system template: a flat
// InterfaceTiles-row for flat backends, two clusters of two for
// hierarchical ones (so intra- and inter-cluster protocol paths both
// run).
func interfaceConfig(clustered bool) (*soc.Config, error) {
	cfg := soc.DefaultConfig()
	if clustered {
		topo, err := noc.ParseTopology("cluster:2xring")
		if err != nil {
			return nil, err
		}
		topo.Local = 2
		cfg.NoC.Topology = topo
	}
	return &cfg, nil
}

// CheckBackend is the backend-vs-spec half of the compositional argument.
// It first re-validates the spec against the model (a broken spec voids
// the run, and is reported rather than silently certified), then drives
// every program on the simulated backend at interface scale: each run's
// outcome must be model-allowed, the recorder must accept every read, and
// every edge of the recorder-lowered trace must be committed by a
// declared obligation (CheckTrace). The returned Work is independent of
// platform.Tiles by construction.
func CheckBackend(s Spec, platform Platform, opt CheckOptions) (*Result, error) {
	progs := opt.Programs
	if progs == nil {
		progs = InterfacePrograms()
	}
	runs := opt.Runs
	if runs <= 0 {
		runs = 8
	}
	res := &Result{Backend: s.Backend, Platform: platform}
	for _, p := range VsModel(&s) {
		res.Divergences = append(res.Divergences, Divergence{Program: "(spec)", Kind: "spec", Detail: p})
	}
	if !res.Ok() {
		// Simulating against a spec that disagrees with the model proves
		// nothing either way; stop at the data check.
		return res, nil
	}
	base, err := interfaceConfig(s.Clustered)
	if err != nil {
		return nil, err
	}
	copt := conform.Options{
		Tiles:     InterfaceTiles,
		Runs:      runs,
		Seed:      opt.Seed,
		MaxCycles: interfaceMaxCycles,
		Base:      base,
		Backend:   opt.Backend,
	}
	res.Work.SimTiles = InterfaceTiles
	for _, p := range progs {
		if len(p.Threads) > InterfaceTiles {
			return nil, fmt.Errorf("spec: program %s has %d threads, interface scale is %d tiles",
				p.Name, len(p.Threads), InterfaceTiles)
		}
		eff := conform.EffectiveProgram(p)
		model, err := litmus.Explore(eff)
		if err != nil {
			return nil, err
		}
		res.Work.Programs++
		res.Work.ModelStates += model.States
		allowed := make(map[string]bool)
		for _, o := range model.OutcomeList() {
			allowed[o] = true
		}
		// Each divergence shape is reported once per program — a broken
		// protocol fails every perturbed run the same way, and one witness
		// (with its seed) is what a human needs.
		seen := make(map[string]bool)
		report := func(kind, detail string) {
			if key := kind + "\x00" + detail; !seen[key] {
				seen[key] = true
				res.Divergences = append(res.Divergences, Divergence{Program: p.Name, Kind: kind, Detail: detail})
			}
		}
		for run := 0; run < runs; run++ {
			seed := opt.Seed + int64(run)
			outcome, exec, err := conform.ExecuteRecorded(eff, s.Backend, copt, uint32(seed))
			res.Work.SimRuns++
			if err != nil {
				kind := "read"
				if exec == nil {
					kind = "run"
				}
				report(kind, fmt.Sprintf("%v (seed %d)", err, seed))
				continue
			}
			if !allowed[outcome] {
				report("outcome", fmt.Sprintf("%q is model-forbidden (seed %d)", outcome, seed))
			}
			for _, prob := range CheckTrace(exec, s) {
				report("edge", prob)
			}
		}
	}
	return res, nil
}

// CheckTrace attributes every edge of a recorder-lowered execution to a
// Table I rule committed by at least one of the given specs (callers
// checking a mixed-backend run pass every spec whose protocol handled
// some location — union semantics). It returns one problem per
// unattributable edge; nil means the trace is fully covered by the
// declared obligations.
//
// Matching mirrors Execution.Exec: the per-location init op stands in for
// both an earlier write and an earlier release of any process, and its
// local edges are upgraded to ≺P (so a rule declaring ≺ℓ covers the
// upgraded edge).
func CheckTrace(exec *core.Execution, specs ...Spec) []string {
	if exec == nil {
		return nil
	}
	var problems []string
	ops := exec.Ops()
	for _, e := range exec.Edges() {
		if !committedBy(ops[e.From], ops[e.To], e.Ord, specs) {
			problems = append(problems,
				fmt.Sprintf("edge %v —%v→ %v committed by no declared obligation", ops[e.From], e.Ord, ops[e.To]))
		}
	}
	return problems
}

// committedBy reports whether some Table I rule matches the edge and is
// committed (with at least one step) by some spec.
func committedBy(from, to *core.Op, ord core.Ord, specs []Spec) bool {
	for _, r := range core.TableI {
		if r.New != to.Kind {
			continue
		}
		if from.Kind != r.Earlier && !(from.IsInit && (r.Earlier == core.KWrite || r.Earlier == core.KRelease)) {
			continue
		}
		if r.Ord != ord && !(from.IsInit && r.Ord == core.OrdLocal && ord == core.OrdProgram) {
			continue
		}
		if !r.AnyProc && !from.IsInit && from.Proc != to.Proc {
			continue
		}
		ob := ruleOb(r)
		for i := range specs {
			if len(specs[i].Committed(ob)) > 0 {
				return true
			}
		}
	}
	return false
}

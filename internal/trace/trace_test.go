package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmc/internal/sim"
)

func TestEmitAndLimit(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: sim.Time(i), Tile: 0, Phase: Instant, Name: "e"})
	}
	if tr.Len() != 3 || tr.Dropped != 2 {
		t.Fatalf("len=%d dropped=%d, want 3,2", tr.Len(), tr.Dropped)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(0)
	tr.Emit(Event{Time: 10, Tile: 1, Phase: Begin, Name: "x:obj"})
	tr.Emit(Event{Time: 20, Tile: 1, Phase: End, Name: "x:obj", Arg: 7})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"time,tile,phase,name,arg", "10,1,B,x:obj,0", "20,1,E,x:obj,7"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New(0)
	tr.Emit(Event{Time: 5, Tile: 2, Phase: Begin, Name: "ro:cell"})
	tr.Emit(Event{Time: 9, Tile: 2, Phase: Instant, Name: "fence"})
	tr.Emit(Event{Time: 12, Tile: 2, Phase: End, Name: "ro:cell"})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	if events[0]["ph"] != "B" || events[1]["ph"] != "i" || events[2]["ph"] != "E" {
		t.Fatalf("phases wrong: %v", events)
	}
}

func TestScopeCount(t *testing.T) {
	tr := New(0)
	tr.Emit(Event{Phase: Begin, Name: "x:a"})
	tr.Emit(Event{Phase: Begin, Name: "x:b"})
	tr.Emit(Event{Phase: Begin, Name: "ro:a"})
	tr.Emit(Event{Phase: End, Name: "x:a"})
	if got := tr.ScopeCount("x:"); got != 2 {
		t.Fatalf("ScopeCount(x:) = %d, want 2", got)
	}
	if got := tr.ScopeCount("ro:"); got != 1 {
		t.Fatalf("ScopeCount(ro:) = %d, want 1", got)
	}
}

// Package trace records structured events from a PMC runtime run and
// exports them as CSV or Chrome-trace JSON (chrome://tracing /
// ui.perfetto.dev), one track per tile. Scope events (entry/exit pairs)
// become duration slices; fences, flushes and lock grants become instant
// events — the visualization makes protocol problems (lock convoys,
// serialized read-only scopes, flush storms) visible at a glance.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"pmc/internal/sim"
)

// Phase classifies an event.
type Phase uint8

const (
	// Begin opens a duration slice (entry_x/entry_ro).
	Begin Phase = iota
	// End closes the innermost slice with the same name (exit_x/exit_ro).
	End
	// Instant is a point event (fence, flush, lock grant).
	Instant
)

// Event is one recorded occurrence.
type Event struct {
	Time  sim.Time
	Tile  int
	Phase Phase
	// Name identifies the activity ("x:objname", "ro:objname", "fence").
	Name string
	// Arg carries an optional value (read/write payloads, wait cycles).
	Arg uint64
}

// Trace is a bounded in-memory event recorder. The zero value is unusable;
// use New.
type Trace struct {
	events  []Event
	limit   int
	Dropped int
}

// New returns a trace that keeps at most limit events (0 = 1M default).
func New(limit int) *Trace {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Trace{limit: limit}
}

// Emit records an event; beyond the limit events are counted as dropped.
func (t *Trace) Emit(e Event) {
	if len(t.events) >= t.limit {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in emission order.
func (t *Trace) Events() []Event { return t.events }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// WriteCSV emits "time,tile,phase,name,arg" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,tile,phase,name,arg"); err != nil {
		return err
	}
	phases := map[Phase]string{Begin: "B", End: "E", Instant: "I"}
	for _, e := range t.events {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%s,%d\n",
			e.Time, e.Tile, phases[e.Phase], e.Name, e.Arg); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Trace Event Format record.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// WriteChrome emits the Chrome Trace Event Format (JSON array). Simulated
// cycles map to microseconds.
func (t *Trace) WriteChrome(w io.Writer) error {
	out := make([]chromeEvent, 0, len(t.events))
	for _, e := range t.events {
		ce := chromeEvent{
			Name: e.Name,
			Ts:   uint64(e.Time),
			PID:  0,
			TID:  e.Tile,
		}
		switch e.Phase {
		case Begin:
			ce.Ph = "B"
		case End:
			ce.Ph = "E"
		case Instant:
			ce.Ph = "i"
			ce.S = "t"
		}
		if e.Arg != 0 {
			ce.Args = map[string]uint64{"arg": e.Arg}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ScopeCount returns how many Begin events carry the given name prefix —
// a convenience for tests and reports.
func (t *Trace) ScopeCount(prefix string) int {
	n := 0
	for _, e := range t.events {
		if e.Phase == Begin && len(e.Name) >= len(prefix) && e.Name[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Stencil is a bulk-synchronous 1-D Jacobi relaxation with halo exchange —
// the communication pattern of the cyclo-static dataflow applications the
// paper's FIFO case study cites ([20, 21]), here used to exercise a
// PMC-annotated barrier. Each tile owns one segment of the ring; per
// iteration it reads its neighbours' boundary cells under entry_ro,
// computes privately, publishes its new segment under entry_x, and crosses
// a sense-reversing barrier built from nothing but the PMC annotations
// (entry_x/exit_x for the arrival count, flushed sense word, entry_ro
// polling). On DSM the barrier polls stay in local memory.
type Stencil struct {
	// SegWords is the number of cells each tile owns.
	SegWords int
	// Iters is the number of relaxation sweeps.
	Iters int

	segs []*rt.Object
	bar  *barrier
}

// DefaultStencil returns the evaluation configuration.
func DefaultStencil() *Stencil {
	return &Stencil{SegWords: 16, Iters: 8}
}

// Name implements App.
func (a *Stencil) Name() string { return "stencil" }

// barrier is a sense-reversing central barrier on PMC annotations.
type barrier struct {
	count *rt.Object // arrivals this round
	sense *rt.Object // flips every round
	n     int
}

func newPMCBarrier(r *rt.Runtime, name string, n int) *barrier {
	return &barrier{
		count: r.Alloc(name+"-count", 4),
		sense: r.Alloc(name+"-sense", 4),
		n:     n,
	}
}

// wait blocks until all n workers arrive. mySense must start at 0 and is
// returned updated.
func (b *barrier) wait(c *rt.Ctx, mySense uint32) uint32 {
	want := mySense ^ 1
	c.EntryX(b.count)
	arrived := c.Read32(b.count, 0) + 1
	if int(arrived) == b.n {
		// Last arrival: reset the count and flip the sense. The
		// fence orders the count reset before the sense release
		// publishes the round (both are this process's writes).
		c.Write32(b.count, 0, 0)
		c.Fence()
		c.ExitX(b.count)
		c.EntryX(b.sense)
		c.Write32(b.sense, 0, want)
		c.Flush(b.sense)
		c.ExitX(b.sense)
		return want
	}
	c.Write32(b.count, 0, arrived)
	c.ExitX(b.count)
	// Spin on the flushed sense word.
	for {
		c.EntryRO(b.sense)
		s := c.Read32(b.sense, 0)
		c.ExitRO(b.sense)
		if s == want {
			return want
		}
		c.Compute(8)
	}
}

// Setup implements App.
func (a *Stencil) Setup(r *rt.Runtime, tiles int) {
	a.bar = newPMCBarrier(r, "stencil-bar", tiles)
	a.segs = make([]*rt.Object, tiles)
	rnd := newRand(0xabcd)
	for i := range a.segs {
		a.segs[i] = r.Alloc(fmt.Sprintf("seg%d", i), a.SegWords*4)
		words := make([]uint32, a.SegWords)
		for w := range words {
			words[w] = rnd.next() % 1000
		}
		r.InitObject(a.segs[i], words)
	}
}

// Worker implements App.
func (a *Stencil) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(2 * 1024)
	left := a.segs[(tile+tiles-1)%tiles]
	right := a.segs[(tile+1)%tiles]
	own := a.segs[tile]
	next := c.PrivAlloc(a.SegWords)
	ownBuf := make([]uint32, a.SegWords)
	outBuf := make([]uint32, a.SegWords)
	sense := uint32(0)
	for it := 0; it < a.Iters; it++ {
		// Read phase: the halo cells from the neighbours' segments, then
		// the whole own segment as one ranged read; everyone only reads,
		// so the RO scopes are race-free.
		c.EntryRO(left)
		lh := c.Read32(left, 4*(a.SegWords-1))
		c.ExitRO(left)
		c.EntryRO(right)
		rh := c.Read32(right, 0)
		c.ExitRO(right)
		c.EntryRO(own)
		c.ReadBlock(own, 0, ownBuf)
		c.ExitRO(own)
		prev := lh
		for w := 0; w < a.SegWords; w++ {
			cur := ownBuf[w]
			nxt := rh
			if w+1 < a.SegWords {
				nxt = ownBuf[w+1]
			}
			c.PWrite(next, w, (prev+cur+nxt)/3)
			prev = cur
			c.Compute(6)
		}
		sense = a.bar.wait(c, sense)
		// Write phase: publish the new segment as one ranged write.
		for w := 0; w < a.SegWords; w++ {
			outBuf[w] = c.PRead(next, w)
		}
		c.EntryX(own)
		c.WriteBlock(own, 0, outBuf)
		c.ExitX(own)
		sense = a.bar.wait(c, sense)
	}
}

// Checksum implements App: fold of the final field, identical on every
// backend because the barrier makes the computation bulk-synchronous and
// deterministic.
func (a *Stencil) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for _, s := range a.segs {
		for w := 0; w < a.SegWords; w++ {
			sum = sum*31 + r.ReadObjectWord(s, w)
		}
	}
	return sum
}

package workloads

import (
	"reflect"
	"testing"

	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/soc"
)

func smallCfg(tiles int) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	cfg.MaxCycles = 500_000_000
	return cfg
}

// smallApps returns downsized instances of every workload, fast enough to
// run on each backend in tests.
func smallApps() []App {
	rad := DefaultRadiosity()
	rad.Patches, rad.Rounds, rad.Fanout = 48, 2, 3
	ray := DefaultRaytrace()
	ray.Cells, ray.Rays, ray.StepsPerRay = 48, 40, 4
	vol := DefaultVolrend()
	vol.Bricks, vol.OutTiles, vol.RaysPerTile = 32, 24, 3
	fifo := DefaultMFifo()
	fifo.Items = 12
	me := DefaultMotionEst()
	me.BlocksX, me.BlocksY, me.Search = 4, 2, 2
	st := DefaultStencil()
	st.Iters = 4
	pipe := DefaultPipeline()
	pipe.Frames = 10
	srv := DefaultServer()
	srv.Requests = 24
	kv := DefaultKVStore()
	kv.Ops = 24
	strm := DefaultStream()
	strm.Frames = 16
	return []App{DefaultMsgPass(), rad, ray, vol, fifo, me, st, pipe, srv, kv, strm}
}

// TestAllAppsAllBackends is the portability matrix: every workload runs
// unchanged on every backend and produces the identical checksum.
func TestAllAppsAllBackends(t *testing.T) {
	for _, app := range smallApps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			var want uint32
			var wantSet bool
			for _, backend := range rt.Backends {
				res, err := Run(freshLike(app), smallCfg(4), backend)
				if err != nil {
					t.Fatalf("%s on %s: %v", app.Name(), backend, err)
				}
				if res.Cycles == 0 {
					t.Fatalf("%s on %s: no cycles elapsed", app.Name(), backend)
				}
				if !wantSet {
					want, wantSet = res.Checksum, true
					continue
				}
				if res.Checksum != want {
					t.Errorf("%s on %s: checksum %#x, want %#x (backends must agree)",
						app.Name(), backend, res.Checksum, want)
				}
			}
		})
	}
}

// TestQueueDifferential is the event-kernel equivalence proof at workload
// level: every workload on every backend must be bit-identical — makespan,
// checksum and NoC traffic — whether the kernel runs on the binary heap or
// the hierarchical timing wheel. Any ordering divergence between the two
// queues shows up here as a cycle drift.
func TestQueueDifferential(t *testing.T) {
	for _, app := range smallApps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			for _, backend := range rt.Backends {
				var want *Result
				for _, q := range []sim.QueueKind{sim.QueueHeap, sim.QueueWheel} {
					cfg := smallCfg(4)
					cfg.EventQueue = q
					res, err := Run(freshLike(app), cfg, backend)
					if err != nil {
						t.Fatalf("%s on %s (%v): %v", app.Name(), backend, q, err)
					}
					if want == nil {
						want = res
						continue
					}
					if res.Cycles != want.Cycles || res.Checksum != want.Checksum ||
						res.FlitHops != want.FlitHops {
						t.Errorf("%s on %s: heap (%d cyc, %#x sum, %d hops) != wheel (%d cyc, %#x sum, %d hops)",
							app.Name(), backend, want.Cycles, want.Checksum, want.FlitHops,
							res.Cycles, res.Checksum, res.FlitHops)
					}
					// Service workloads: the full latency histogram and
					// time-series must also be identical across queue kinds.
					if !reflect.DeepEqual(res.Service, want.Service) {
						t.Errorf("%s on %s: service metrics differ between queue kinds:\nheap:  %+v\nwheel: %+v",
							app.Name(), backend, want.Service, res.Service)
					}
				}
			}
		})
	}
}

// freshLike returns a new instance with the same parameters (apps carry
// per-run object state, so each Run needs a fresh one).
func freshLike(app App) App {
	switch a := app.(type) {
	case *MsgPass:
		cp := *a
		return &cp
	case *Radiosity:
		cp := *a
		return &cp
	case *Raytrace:
		cp := *a
		return &cp
	case *Volrend:
		cp := *a
		return &cp
	case *MFifo:
		cp := *a
		return &cp
	case *MotionEst:
		cp := *a
		return &cp
	case *Stencil:
		cp := *a
		return &cp
	case *Reacquire:
		cp := *a
		return &cp
	case *Pipeline:
		cp := *a
		return &cp
	case *Server:
		cp := *a
		return &cp
	case *KVStore:
		cp := *a
		return &cp
	case *Stream:
		cp := *a
		return &cp
	}
	panic("unknown app")
}

// TestMsgPassVerifiedAgainstModel runs the quickstart with the model
// recorder on every backend.
func TestMsgPassVerifiedAgainstModel(t *testing.T) {
	for _, backend := range rt.Backends {
		app := DefaultMsgPass()
		res, rec, err := RunVerified(app, smallCfg(3), backend)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := rec.Err(); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := rec.CheckWriteOrder(); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Checksum != app.Expected() {
			t.Fatalf("%s: checksum %#x, want %#x", backend, res.Checksum, app.Expected())
		}
	}
}

// TestMFifoDeliversEverywhere checks the FIFO invariant (every reader got
// the identical full stream) on every backend, including multi-writer.
func TestMFifoDeliversEverywhere(t *testing.T) {
	for _, backend := range rt.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			fifo := DefaultMFifo()
			fifo.Items = 16
			b, err := rt.ByName(backend)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := soc.New(smallCfg(4))
			if err != nil {
				t.Fatal(err)
			}
			r := rt.New(sys, b)
			fifo.Setup(r, 4)
			for i := 0; i < 4; i++ {
				i := i
				r.Spawn(i, "w", func(c *rt.Ctx) { fifo.Worker(c, i, 4) })
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			if err := fifo.Verify(r); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMFifoDSMPollsAreLocal: on DSM, poll loops read only local replicas;
// NoC traffic must scale with items pushed, not with poll iterations.
func TestMFifoDSMPollsAreLocal(t *testing.T) {
	fifo := DefaultMFifo()
	fifo.Items = 16
	res, err := Run(fifo, smallCfg(4), "dsm")
	if err != nil {
		t.Fatal(err)
	}
	items := uint64(fifo.Writers * fifo.Items)
	// Per item: one write_ptr flush broadcast (3 messages at 4 tiles),
	// lock protocol messages, and per-reader read_ptr flushes and slot
	// transfers. A generous constant bound per item demonstrates polls
	// are free; bus-based polling would add thousands of messages.
	bound := items * 40
	if res.NoCMessages > bound {
		t.Fatalf("DSM NoC messages = %d for %d items (> %d): polling is not local",
			res.NoCMessages, items, bound)
	}
}

// TestMotionEstSPMBeatsSWCC is the Fig. 10 shape: the scratch-pad mapping
// must outperform software cache coherency on the reuse-heavy kernel, and
// both must beat uncached shared data.
func TestMotionEstSPMBeatsSWCC(t *testing.T) {
	me := DefaultMotionEst()
	me.BlocksX, me.BlocksY = 4, 2
	cycles := map[string]uint64{}
	for _, backend := range []string{"spm", "swcc", "nocc"} {
		res, err := Run(freshLike(me), smallCfg(4), backend)
		if err != nil {
			t.Fatal(err)
		}
		cycles[backend] = uint64(res.Cycles)
	}
	if cycles["spm"] >= cycles["swcc"] {
		t.Fatalf("spm (%d) not faster than swcc (%d)", cycles["spm"], cycles["swcc"])
	}
	if cycles["swcc"] >= cycles["nocc"] {
		t.Fatalf("swcc (%d) not faster than nocc (%d)", cycles["swcc"], cycles["nocc"])
	}
}

// TestFig8ShapeSmall is the headline Fig. 8 comparison at test scale: for
// each of the three applications SWCC must beat noCC in total execution
// time, and the flush overhead must stay negligible.
func TestFig8ShapeSmall(t *testing.T) {
	for _, app := range smallApps()[1:4] { // radiosity, raytrace, volrend
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			no, err := Run(freshLike(app), smallCfg(8), "nocc")
			if err != nil {
				t.Fatal(err)
			}
			sw, err := Run(freshLike(app), smallCfg(8), "swcc")
			if err != nil {
				t.Fatal(err)
			}
			if sw.Cycles >= no.Cycles {
				t.Errorf("swcc %d cycles >= nocc %d cycles", sw.Cycles, no.Cycles)
			}
			if pct := sw.FlushOverheadPct(); pct > 2.5 {
				t.Errorf("flush overhead %.2f%% not negligible", pct)
			}
			if sw.Utilization() <= no.Utilization() {
				t.Errorf("utilization did not improve: %.2f -> %.2f", no.Utilization(), sw.Utilization())
			}
		})
	}
}

// TestDeterminismAcrossRuns: the same configuration twice gives identical
// cycle counts and checksums.
func TestDeterminismAcrossRuns(t *testing.T) {
	app := func() App {
		a := DefaultRaytrace()
		a.Cells, a.Rays, a.StepsPerRay = 16, 30, 3
		return a
	}
	r1, err := Run(app(), smallCfg(4), "swcc")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(app(), smallCfg(4), "swcc")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Checksum != r2.Checksum {
		t.Fatalf("nondeterministic: (%d,%#x) vs (%d,%#x)", r1.Cycles, r1.Checksum, r2.Cycles, r2.Checksum)
	}
}

// TestPipelineMatchesExpected: the pipeline's sink digest equals the
// independently computed pure-function digest on every backend.
func TestPipelineMatchesExpected(t *testing.T) {
	for _, backend := range rt.Backends {
		p := DefaultPipeline()
		p.Frames = 12
		res, err := Run(p, smallCfg(4), backend)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Checksum != p.Expected() {
			t.Fatalf("%s: digest %#x, want %#x", backend, res.Checksum, p.Expected())
		}
	}
}

// TestPipelineOverlapsStages: with enough frames the stages run
// concurrently — the makespan is far below the serial sum of stage work.
func TestPipelineOverlapsStages(t *testing.T) {
	p := DefaultPipeline()
	p.Frames = 24
	res, err := Run(p, smallCfg(4), "dsm")
	if err != nil {
		t.Fatal(err)
	}
	// Serial bound: every frame through every stage back to back.
	serial := uint64(p.Frames) * uint64(p.Stages) * uint64(p.ComputePerFrame)
	if uint64(res.Cycles) >= serial {
		t.Fatalf("pipeline did not overlap: %d cycles >= serial bound %d", res.Cycles, serial)
	}
}

// TestVerifiedWorkloads runs downsized workloads with the formal-model
// recorder attached on representative backends: every read the simulated
// memory system returns must be a value the PMC model admits, and every
// recorded location's writes must be totally ordered (no data races).
func TestVerifiedWorkloads(t *testing.T) {
	cases := []struct {
		app     func() App
		backend string
	}{
		{func() App { f := DefaultMFifo(); f.Items = 6; return f }, "dsm"},
		{func() App { f := DefaultMFifo(); f.Items = 6; return f }, "swcc"},
		{func() App { s := DefaultStencil(); s.Iters = 2; s.SegWords = 8; return s }, "swcc"},
		{func() App { s := DefaultStencil(); s.Iters = 2; s.SegWords = 8; return s }, "dsm"},
		{func() App { p := DefaultPipeline(); p.Frames = 5; return p }, "nocc"},
		{func() App { p := DefaultPipeline(); p.Frames = 5; return p }, "spm"},
		{func() App {
			r := DefaultReacquire()
			r.Iters, r.Words = 6, 4
			return r
		}, "swcc-lazy"},
	}
	for _, tc := range cases {
		app := tc.app()
		name := app.Name() + "/" + tc.backend
		t.Run(name, func(t *testing.T) {
			_, rec, err := RunVerified(app, smallCfg(4), tc.backend)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Err(); err != nil {
				t.Fatal(err)
			}
			if err := rec.CheckWriteOrder(); err != nil {
				t.Fatal(err)
			}
			if len(rec.Exec.Ops()) < 50 {
				t.Fatalf("suspiciously few recorded operations: %d", len(rec.Exec.Ops()))
			}
		})
	}
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Fifo is the reusable multiple-reader, multiple-writer FIFO of Fig. 9: a
// circular buffer of N element objects, one shared write pointer, and a
// read pointer per reader. Every reader consumes every element (it is a
// broadcast FIFO: "Wait until all readers got buf[wp]"). The implementation
// is a direct port of the paper's C++ outline, including the fence
// placement and the flushes that give pollers liveness; on the DSM backend
// the pointer polls hit only the local replicas.
type Fifo struct {
	depth     int
	elemWords int
	readers   int

	writePtr *rt.Object
	readPtrs []*rt.Object
	buf      []*rt.Object
}

// NewFifo allocates a FIFO's shared objects: depth slots of elemWords words
// each, consumed by the given number of readers.
func NewFifo(r *rt.Runtime, name string, depth, elemWords, readers int) *Fifo {
	f := &Fifo{depth: depth, elemWords: elemWords, readers: readers}
	f.writePtr = r.Alloc(name+".write_ptr", 4)
	f.readPtrs = make([]*rt.Object, readers)
	for i := range f.readPtrs {
		f.readPtrs[i] = r.Alloc(fmt.Sprintf("%s.read_ptr%d", name, i), 4)
	}
	f.buf = make([]*rt.Object, depth)
	for i := range f.buf {
		f.buf[i] = r.Alloc(fmt.Sprintf("%s.buf%d", name, i), elemWords*4)
	}
	return f
}

// Push is Fig. 9's push(): the write-pointer lock is held for the whole
// operation, serializing writers.
func (f *Fifo) Push(c *rt.Ctx, data []uint32) {
	c.EntryX(f.writePtr)
	wp := c.Read32(f.writePtr, 0)
	// Wait until all readers got buf[wp] (i.e. consumed item wp-N).
	for i := 0; i < f.readers; i++ {
		for {
			c.EntryRO(f.readPtrs[i])
			rp := c.Read32(f.readPtrs[i], 0)
			c.ExitRO(f.readPtrs[i])
			if int(rp) > int(wp)-f.depth {
				break
			}
			c.Compute(8)
		}
	}
	c.Fence()
	slot := f.buf[int(wp)%f.depth]
	c.EntryX(slot)
	c.WriteBlock(slot, 0, data) // one ranged write moves the payload
	c.ExitX(slot)
	c.Fence()
	c.Write32(f.writePtr, 0, wp+1)
	c.Flush(f.writePtr)
	c.ExitX(f.writePtr)
}

// Pop is Fig. 9's pop() for reader me.
func (f *Fifo) Pop(c *rt.Ctx, me int) []uint32 {
	c.EntryRO(f.readPtrs[me])
	rp := c.Read32(f.readPtrs[me], 0)
	c.ExitRO(f.readPtrs[me])
	// Wait until data is written.
	for {
		c.EntryRO(f.writePtr)
		wp := c.Read32(f.writePtr, 0)
		c.ExitRO(f.writePtr)
		if wp > rp {
			break
		}
		c.Compute(8)
	}
	c.Fence()
	slot := f.buf[int(rp)%f.depth]
	data := make([]uint32, f.elemWords)
	c.EntryX(slot)
	c.ReadBlock(slot, 0, data) // one ranged read drains the payload
	c.ExitX(slot)
	c.Fence()
	c.EntryX(f.readPtrs[me])
	c.Write32(f.readPtrs[me], 0, rp+1)
	c.Flush(f.readPtrs[me])
	c.ExitX(f.readPtrs[me])
	return data
}

// MFifo is the Fig. 9 FIFO exercised as a workload: Writers producer tiles
// push Items elements each, Readers consumer tiles each receive the whole
// stream.
type MFifo struct {
	// Depth is the buffer depth N.
	Depth int
	// ElemWords is the element payload size in words.
	ElemWords int
	// Readers and Writers are the worker role counts; tiles beyond
	// Readers+Writers idle.
	Readers, Writers int
	// Items is the number of elements each writer pushes.
	Items int

	fifo     *Fifo
	received *rt.Object // per-reader fold of received payloads
}

// DefaultMFifo returns the evaluation configuration.
func DefaultMFifo() *MFifo {
	return &MFifo{Depth: 4, ElemWords: 4, Readers: 2, Writers: 2, Items: 32}
}

// Name implements App.
func (a *MFifo) Name() string { return "mfifo" }

// Setup implements App.
func (a *MFifo) Setup(r *rt.Runtime, tiles int) {
	if a.Readers+a.Writers > tiles {
		panic(fmt.Sprintf("mfifo: %d readers + %d writers > %d tiles", a.Readers, a.Writers, tiles))
	}
	a.fifo = NewFifo(r, "fifo", a.Depth, a.ElemWords, a.Readers)
	a.received = r.Alloc("received", 8*a.Readers)
}

// Worker implements App: tiles [0,Writers) push, tiles [Writers,
// Writers+Readers) pop; the rest idle.
func (a *MFifo) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(2 * 1024)
	total := a.Writers * a.Items
	switch {
	case tile < a.Writers:
		for i := 0; i < a.Items; i++ {
			item := uint32(tile)<<16 | uint32(i)
			data := make([]uint32, a.ElemWords)
			for w := range data {
				data[w] = item + uint32(w)*0x01000193
			}
			a.fifo.Push(c, data)
			c.Compute(50)
		}
	case tile < a.Writers+a.Readers:
		me := tile - a.Writers
		// Two digests: the ordered fold proves all readers observed
		// the same interleaving (FIFO order); the commutative sum of
		// per-item hashes is timing-independent, so it also matches
		// across backends, whose lock timings interleave the writers
		// differently.
		var ordered, content uint32
		for i := 0; i < total; i++ {
			data := a.fifo.Pop(c, me)
			var item uint32
			for _, v := range data {
				item = item*16777619 + v
			}
			ordered = ordered*31 + item
			content += item
			c.Compute(30)
		}
		c.EntryX(a.received)
		c.Write32(a.received, 8*me, ordered)
		c.Write32(a.received, 8*me+4, content)
		c.ExitX(a.received)
	}
}

// Checksum implements App: the order-independent content digest (identical
// across backends and readers).
func (a *MFifo) Checksum(r *rt.Runtime) uint32 {
	return r.ReadObjectWord(a.received, 1)
}

// Verify checks that every reader received the identical full stream, in
// the same order.
func (a *MFifo) Verify(r *rt.Runtime) error {
	ordered := r.ReadObjectWord(a.received, 0)
	content := r.ReadObjectWord(a.received, 1)
	for i := 1; i < a.Readers; i++ {
		if got := r.ReadObjectWord(a.received, 2*i); got != ordered {
			return fmt.Errorf("mfifo: reader %d order fold %#x != reader 0 %#x", i, got, ordered)
		}
		if got := r.ReadObjectWord(a.received, 2*i+1); got != content {
			return fmt.Errorf("mfifo: reader %d content %#x != reader 0 %#x", i, got, content)
		}
	}
	if content == 0 {
		return fmt.Errorf("mfifo: reader 0 received no data")
	}
	return nil
}

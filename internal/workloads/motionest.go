package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// MotionEst is the motion-estimation case study of Section VI-C / Fig. 10:
// full-search block matching of a video frame against a reference frame.
// The reference frame is organized in horizontal strips shared by all the
// blocks whose search windows fall inside them; blocks and result vectors
// are per-task objects. A worker opens the strip read-only, the block
// read-only and the vector exclusively — the ScopeRO/ScopeX structure of
// Fig. 10 — and then reads the same window data hundreds of times (once per
// candidate offset), which is exactly the reuse scratch-pad memories
// exploit:
//
//   - SPM copies the strip in once, releases the lock immediately, and
//     searches at single-cycle latency with all readers concurrent;
//   - SWCC holds the strip's lock for the entire scope (Table II) and
//     re-fills the cache every scope, so workers sharing a strip serialize;
//   - noCC pays an SDRAM bus transaction for every single sample.
type MotionEst struct {
	// BlocksX, BlocksY is the frame size in 8-pixel blocks.
	BlocksX, BlocksY int
	// Search is the search range in pixels (candidates = (2*Search+1)²).
	Search int
	// ComputePerCand models the SAD arithmetic per candidate beyond the
	// sample loads.
	ComputePerCand int

	queue   *taskCounter
	strips  []*rt.Object // reference frame, one strip per block row
	blocks  []*rt.Object // current frame blocks
	vectors []*rt.Object // result motion vectors

	stripWords int
}

// DefaultMotionEst returns the evaluation configuration.
func DefaultMotionEst() *MotionEst {
	return &MotionEst{BlocksX: 8, BlocksY: 4, Search: 3, ComputePerCand: 12}
}

const blockPixels = 8 // block edge in pixels

// Name implements App.
func (a *MotionEst) Name() string { return "motionest" }

func (a *MotionEst) tasks() int { return a.BlocksX * a.BlocksY }

// Setup implements App.
func (a *MotionEst) Setup(r *rt.Runtime, tiles int) {
	a.queue = newTaskCounter(r, "me-queue", a.tasks())
	// A strip covers the vertical search extent of one block row over
	// the full frame width, stored 4 pixels per word.
	widthPx := a.BlocksX * blockPixels
	stripRows := blockPixels + 2*a.Search
	a.stripWords = widthPx * stripRows / 4
	rnd := newRand(0xfeed)
	a.strips = make([]*rt.Object, a.BlocksY)
	for i := range a.strips {
		a.strips[i] = r.Alloc(fmt.Sprintf("strip%d", i), a.stripWords*4)
		words := make([]uint32, a.stripWords)
		for w := range words {
			words[w] = rnd.next() & 0x7f7f7f7f
		}
		r.InitObject(a.strips[i], words)
	}
	a.blocks = make([]*rt.Object, a.tasks())
	a.vectors = make([]*rt.Object, a.tasks())
	blockWords := blockPixels * blockPixels / 4
	for i := range a.blocks {
		a.blocks[i] = r.Alloc(fmt.Sprintf("mblock%d", i), blockWords*4)
		words := make([]uint32, blockWords)
		for w := range words {
			words[w] = rnd.next() & 0x7f7f7f7f
		}
		r.InitObject(a.blocks[i], words)
		a.vectors[i] = r.Alloc(fmt.Sprintf("vector%d", i), 8)
	}
}

// Worker implements App.
func (a *MotionEst) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(3 * 1024)
	widthWords := a.BlocksX * blockPixels / 4
	blockWords := blockPixels * blockPixels / 4
	colWords := blockPixels / 4
	curBuf := make([]uint32, blockWords)
	rowBuf := make([]uint32, colWords+1)
	for {
		task, ok := a.queue.next(c)
		if !ok {
			return
		}
		bx := int(task) % a.BlocksX
		by := int(task) / a.BlocksX
		strip := a.strips[by]
		block := a.blocks[task]
		vector := a.vectors[task]

		// ScopeRO(window), ScopeRO(mblock), ScopeX(vector) of Fig. 10.
		c.EntryRO(strip)
		c.EntryRO(block)
		c.EntryX(vector)

		// The current block is re-read once per candidate: stage it with
		// a single ranged read instead of per-word loads.
		c.ReadBlock(block, 0, curBuf)

		best := uint32(0xffffffff)
		bestDX, bestDY := 0, 0
		side := 2*a.Search + 1
		for cand := 0; cand < side*side; cand++ {
			dx, dy := cand%side-a.Search, cand/side-a.Search
			var sad uint32
			for row := 0; row < blockPixels; row++ {
				// One reference-block row per ranged read: the row's
				// column words plus the neighbour word that horizontal
				// sub-word offsets shift in.
				refRow := row + a.Search + dy
				base := refRow*widthWords + bx*colWords
				if base+colWords+1 <= a.stripWords {
					c.ReadBlock(strip, 4*base, rowBuf)
				} else {
					// The last row of the strip wraps; fall back to
					// word reads with the modulo the word loop used.
					for k := range rowBuf {
						rowBuf[k] = c.Read32(strip, 4*((base+k)%a.stripWords))
					}
				}
				for col := 0; col < colWords; col++ {
					ref := rowBuf[col]
					if dx != 0 {
						ref ^= rowBuf[col+1] >> uint(abs(dx))
					}
					cur := curBuf[row*colWords+col]
					sad += (ref ^ cur) & 0x00ff00ff
				}
			}
			c.Compute(a.ComputePerCand)
			if sad < best {
				best, bestDX, bestDY = sad, dx, dy
			}
		}
		c.Write32(vector, 0, uint32(int32(bestDX)))
		c.Write32(vector, 4, uint32(int32(bestDY)))
		c.ExitX(vector)
		c.ExitRO(block)
		c.ExitRO(strip)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Checksum implements App: folds all motion vectors; identical across
// backends because the search is deterministic per task.
func (a *MotionEst) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for _, v := range a.vectors {
		sum = sum*31 + r.ReadObjectWord(v, 0)*7 + r.ReadObjectWord(v, 1)
	}
	return sum
}

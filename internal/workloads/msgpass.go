package workloads

import "pmc/internal/rt"

// MsgPass is the running example of Figs. 1/5/6 as a simulated workload:
// tile 0 publishes a payload under entry_x/exit_x, sets a flushed flag, and
// every other tile polls the flag and then reads the payload under its own
// acquire. Annotated correctly it must deliver the payload on every
// backend; it is the quickstart example and the smoke test of the whole
// stack.
type MsgPass struct {
	// PayloadWords is the message size.
	PayloadWords int
	// Value seeds the payload contents.
	Value uint32

	data *rt.Object
	flag *rt.Object
	got  *rt.Object
}

// DefaultMsgPass returns the standard configuration.
func DefaultMsgPass() *MsgPass { return &MsgPass{PayloadWords: 8, Value: 42} }

// Name implements App.
func (a *MsgPass) Name() string { return "msgpass" }

// Setup implements App.
func (a *MsgPass) Setup(r *rt.Runtime, tiles int) {
	a.data = r.Alloc("X", a.PayloadWords*4)
	a.flag = r.Alloc("flag", 4)
	a.got = r.Alloc("got", 4*tiles)
}

// Worker implements App.
func (a *MsgPass) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(1024)
	if tile == 0 {
		c.EntryX(a.data)
		for w := 0; w < a.PayloadWords; w++ {
			c.Write32(a.data, 4*w, a.Value+uint32(w))
		}
		c.Fence()
		c.ExitX(a.data)
		c.EntryX(a.flag)
		c.Write32(a.flag, 0, 1)
		c.Flush(a.flag)
		c.ExitX(a.flag)
		return
	}
	for {
		c.EntryRO(a.flag)
		v := c.Read32(a.flag, 0)
		c.ExitRO(a.flag)
		if v == 1 {
			break
		}
		c.Compute(8)
	}
	c.Fence()
	var fold uint32
	c.EntryX(a.data)
	for w := 0; w < a.PayloadWords; w++ {
		fold = fold*31 + c.Read32(a.data, 4*w)
	}
	c.ExitX(a.data)
	c.EntryX(a.got)
	c.Write32(a.got, 4*tile, fold)
	c.ExitX(a.got)
}

// Checksum implements App: every receiving tile must have folded the same
// payload.
func (a *MsgPass) Checksum(r *rt.Runtime) uint32 {
	return r.ReadObjectWord(a.got, 1)
}

// Expected returns the fold every receiver must produce.
func (a *MsgPass) Expected() uint32 {
	var fold uint32
	for w := 0; w < a.PayloadWords; w++ {
		fold = fold*31 + a.Value + uint32(w)
	}
	return fold
}

// Verify checks all receivers.
func (a *MsgPass) Verify(r *rt.Runtime, tiles int) bool {
	want := a.Expected()
	for t := 1; t < tiles; t++ {
		if r.ReadObjectWord(a.got, t) != want {
			return false
		}
	}
	return true
}

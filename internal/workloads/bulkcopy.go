package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// BulkCopy is the transfer-granularity microbenchmark behind the
// bulk-ablation experiment: each tile owns a source and a destination
// object and streams one into the other for several rounds, then
// read-modify-writes the destination. Chunk selects the access
// granularity — 1 reproduces the annotation API v1 word loop
// (Read32/Write32 per word), larger values move Chunk-word ranges with
// the v2 calls (Copy for the stream, ReadBlock/WriteBlock for the
// read-modify-write). Every granularity performs identical data movement,
// so the checksum is the same for every Chunk on every backend; only the
// sim-cycles differ — the ablation's measurement.
type BulkCopy struct {
	// SlotWords is the per-tile object size in words.
	SlotWords int
	// Rounds is the number of stream+update passes.
	Rounds int
	// Chunk is the transfer granularity in words (1 = v1 word loop).
	Chunk int

	srcs, dsts []*rt.Object
}

// DefaultBulkCopy returns the evaluation configuration (block granularity
// of a whole object).
func DefaultBulkCopy() *BulkCopy {
	return &BulkCopy{SlotWords: 64, Rounds: 4, Chunk: 64}
}

// DefaultBulkCopyWord is the word-granularity (API v1) twin.
func DefaultBulkCopyWord() *BulkCopy {
	b := DefaultBulkCopy()
	b.Chunk = 1
	return b
}

// Name implements App.
func (a *BulkCopy) Name() string {
	if a.Chunk <= 1 {
		return "bulkcopy-word"
	}
	return "bulkcopy"
}

// Setup implements App.
func (a *BulkCopy) Setup(r *rt.Runtime, tiles int) {
	rnd := newRand(0xb10c)
	a.srcs = make([]*rt.Object, tiles)
	a.dsts = make([]*rt.Object, tiles)
	for t := 0; t < tiles; t++ {
		a.srcs[t] = r.Alloc(fmt.Sprintf("bulk-src%d", t), a.SlotWords*4)
		a.dsts[t] = r.Alloc(fmt.Sprintf("bulk-dst%d", t), a.SlotWords*4)
		words := make([]uint32, a.SlotWords)
		for w := range words {
			words[w] = rnd.next()
		}
		r.InitObject(a.srcs[t], words)
	}
}

// Worker implements App.
func (a *BulkCopy) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(1024)
	src, dst := a.srcs[tile], a.dsts[tile]
	chunk := a.Chunk
	if chunk < 1 {
		chunk = 1
	}
	buf := make([]uint32, a.SlotWords)
	for round := 0; round < a.Rounds; round++ {
		// One exclusive scope per round covers the stream and the
		// update, so scope overhead (locks, SPM staging) is identical
		// across granularities and the measured delta is the transfers.
		c.EntryRO(src)
		c.EntryX(dst)
		if chunk == 1 {
			// API v1: one word per protocol round trip.
			for w := 0; w < a.SlotWords; w++ {
				c.Write32(dst, 4*w, c.Read32(src, 4*w))
			}
			for w := 0; w < a.SlotWords; w++ {
				c.Write32(dst, 4*w, c.Read32(dst, 4*w)+uint32(round+tile))
			}
		} else {
			// API v2: ranged transfers in Chunk-word chunks.
			for w := 0; w < a.SlotWords; w += chunk {
				n := a.SlotWords - w
				if n > chunk {
					n = chunk
				}
				c.Copy(dst, 4*w, src, 4*w, n)
			}
			for w := 0; w < a.SlotWords; w += chunk {
				n := a.SlotWords - w
				if n > chunk {
					n = chunk
				}
				c.ReadBlock(dst, 4*w, buf[:n])
				for i := 0; i < n; i++ {
					buf[i] += uint32(round + tile)
				}
				c.WriteBlock(dst, 4*w, buf[:n])
			}
		}
		c.ExitX(dst)
		c.ExitRO(src)
		c.Compute(16)
	}
}

// Checksum implements App: fold of every destination word — identical for
// every granularity and backend.
func (a *BulkCopy) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for _, d := range a.dsts {
		for w := 0; w < a.SlotWords; w++ {
			sum = sum*31 + r.ReadObjectWord(d, w)
		}
	}
	return sum
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Raytrace is the structural substitute for SPLASH-2 RAYTRACE: a read-only
// shared scene (a grid of cells holding triangle data) traversed by rays
// taken from a central work queue. Within one read-only scope a worker
// intersects a ray bundle against every triangle of the cell — the
// spatial/temporal reuse that lets the cache turn per-word uncached reads
// into a handful of line fills, which is why RAYTRACE shows almost no
// shared-read stall under SWCC in Fig. 8.
type Raytrace struct {
	// Cells is the number of scene cells.
	Cells int
	// CellWords is the triangle payload per cell in words.
	CellWords int
	// Rays is the total number of ray bundles (tasks).
	Rays int
	// StepsPerRay is how many cells one bundle traverses.
	StepsPerRay int
	// TrisPerCell is the triangle count intersected per visited cell.
	TrisPerCell int
	// ComputePerHit is the modelled intersection arithmetic per triangle.
	ComputePerHit int

	queue  *taskCounter
	cells  []*rt.Object
	result *rt.Object
}

// DefaultRaytrace returns the evaluation configuration.
func DefaultRaytrace() *Raytrace {
	return &Raytrace{
		Cells:         160,
		CellWords:     32,
		Rays:          512,
		StepsPerRay:   6,
		TrisPerCell:   10,
		ComputePerHit: 80,
	}
}

// Name implements App.
func (a *Raytrace) Name() string { return "raytrace" }

// Setup implements App.
func (a *Raytrace) Setup(r *rt.Runtime, tiles int) {
	a.queue = newTaskCounter(r, "ray-queue", a.Rays)
	a.result = r.Alloc("framebuffer-sum", 4*tiles)
	a.cells = make([]*rt.Object, a.Cells)
	rnd := newRand(99)
	for i := range a.cells {
		a.cells[i] = r.Alloc(fmt.Sprintf("cell%d", i), a.CellWords*4)
		words := make([]uint32, a.CellWords)
		for w := range words {
			words[w] = rnd.next()
		}
		r.InitObject(a.cells[i], words)
	}
}

// Worker implements App.
func (a *Raytrace) Worker(c *rt.Ctx, tile, tiles int) {
	// Tight intersection loop with a moderate cold section (traversal
	// setup, shading) visited occasionally.
	c.SetCodeProfile(2048, 3072, 64)
	priv := c.PrivAlloc(32)
	// Private shading tables walked per ray (Fig. 8's private-read band).
	shade := c.PrivAlloc(1536)
	cellBuf := make([]uint32, a.CellWords)
	var tileSum uint32 // sum of per-task hashes: order-independent
	for {
		task, ok := a.queue.next(c)
		if !ok {
			break
		}
		rnd := newRand(uint32(task)*747796405 + 2891336453)
		var acc uint32
		for step := 0; step < a.StepsPerRay; step++ {
			cell := a.cells[rnd.intn(a.Cells)]
			c.EntryRO(cell)
			// One ranged read stages the cell's triangle tile; the
			// intersection loop then re-reads it from the buffer — the
			// reuse that per-word reads paid the memory system for on
			// every sample.
			c.ReadBlock(cell, 0, cellBuf)
			for tri := 0; tri < a.TrisPerCell; tri++ {
				base := (tri * 5) % (a.CellWords - 4)
				v0 := cellBuf[base]
				v1 := cellBuf[base+1]
				v2 := cellBuf[base+2]
				c.Compute(a.ComputePerHit)
				acc = acc*31 + (v0 ^ v1 ^ v2)
				c.PWrite(priv, tri%32, acc)
			}
			c.ExitRO(cell)
		}
		tileSum += acc
		// Private shading work between cells: texture/material lookups.
		idx := int(task) % 1536
		for w := 0; w < 12; w++ {
			acc += c.PRead(shade, idx)
			idx = (idx + 97) % 1536
		}
		c.Compute(64)
	}
	// Publish the per-tile partial checksum once at the end.
	c.EntryX(a.result)
	c.Write32(a.result, 4*tile, tileSum)
	c.ExitX(a.result)
}

// Checksum implements App: order-independent fold of the per-tile partials.
func (a *Raytrace) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for w := 0; w < a.result.WordCount(); w++ {
		sum += r.ReadObjectWord(a.result, w)
	}
	return sum
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Volrend is the structural substitute for SPLASH-2 VOLREND: ray casting
// through a read-only voxel volume organized in bricks, rendering private
// output tiles claimed from a central queue. Compared to Raytrace it has a
// larger code footprint (the paper's VOLREND bar shows the biggest I-cache
// stall share) and even higher per-scope reuse: each brick is sampled at
// many ray positions while resident.
type Volrend struct {
	// Bricks is the number of volume bricks.
	Bricks int
	// BrickWords is one brick's voxel payload in words.
	BrickWords int
	// Tiles is the number of output tiles (tasks).
	OutTiles int
	// RaysPerTile is the rays cast per output tile.
	RaysPerTile int
	// SamplesPerRay is the voxel samples taken per ray.
	SamplesPerRay int
	// ComputePerSample models the transfer-function/compositing math.
	ComputePerSample int

	queue  *taskCounter
	bricks []*rt.Object
	result *rt.Object
}

// DefaultVolrend returns the evaluation configuration.
func DefaultVolrend() *Volrend {
	return &Volrend{
		Bricks:           128,
		BrickWords:       64,
		OutTiles:         256,
		RaysPerTile:      4,
		SamplesPerRay:    10,
		ComputePerSample: 60,
	}
}

// Name implements App.
func (a *Volrend) Name() string { return "volrend" }

// Setup implements App.
func (a *Volrend) Setup(r *rt.Runtime, tiles int) {
	a.queue = newTaskCounter(r, "vol-queue", a.OutTiles)
	a.result = r.Alloc("image-sum", 4*tiles)
	a.bricks = make([]*rt.Object, a.Bricks)
	rnd := newRand(1234)
	for i := range a.bricks {
		a.bricks[i] = r.Alloc(fmt.Sprintf("brick%d", i), a.BrickWords*4)
		words := make([]uint32, a.BrickWords)
		for w := range words {
			words[w] = rnd.next() & 0xff // voxel densities
		}
		r.InitObject(a.bricks[i], words)
	}
}

// Worker implements App.
func (a *Volrend) Worker(c *rt.Ctx, tile, tiles int) {
	// VOLREND carries the largest code: the hot loop plus a 6 KiB cold
	// section (octree traversal, transfer functions) revisited often —
	// the biggest I-stall share of the three apps (Fig. 8).
	c.SetCodeProfile(2048, 6144, 40)
	priv := c.PrivAlloc(64)  // per-tile output scanline
	lut := c.PrivAlloc(1024) // transfer-function lookup tables
	var tileSum uint32
	for {
		task, ok := a.queue.next(c)
		if !ok {
			break
		}
		rnd := newRand(uint32(task)*2246822519 + 3266489917)
		var acc uint32
		for ray := 0; ray < a.RaysPerTile; ray++ {
			// A ray stays within one brick for all its samples
			// (coherent rays): high reuse per RO scope.
			brick := a.bricks[rnd.intn(a.Bricks)]
			c.EntryRO(brick)
			pos := rnd.intn(a.BrickWords - 2)
			for s := 0; s < a.SamplesPerRay; s++ {
				d0 := c.Read32(brick, 4*pos)
				d1 := c.Read32(brick, 4*(pos+1))
				c.Compute(a.ComputePerSample)
				acc += d0*3 + d1 // trilinear-ish blend
				pos = (pos + 1) % (a.BrickWords - 2)
			}
			c.ExitRO(brick)
			c.PWrite(priv, ray%64, acc)
			// Transfer-function lookups against the private LUT.
			idx := int(acc) % 768
			for w := 0; w < 4; w++ {
				acc ^= c.PRead(lut, idx)
				idx = (idx + 131) % 768
			}
			c.Compute(40) // compositing
		}
		tileSum += acc
	}
	c.EntryX(a.result)
	c.Write32(a.result, 4*tile, tileSum)
	c.ExitX(a.result)
}

// Checksum implements App.
func (a *Volrend) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for w := 0; w < a.result.WordCount(); w++ {
		sum += r.ReadObjectWord(a.result, w)
	}
	return sum
}

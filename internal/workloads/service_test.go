package workloads

import (
	"testing"

	"pmc/internal/sim"
)

// TestPoissonArrivals: the schedule is a pure function of its inputs,
// nondecreasing, and its mean interarrival gap lands near 1000/load.
func TestPoissonArrivals(t *testing.T) {
	a := poissonArrivals(7, 2000, 4)
	b := poissonArrivals(7, 2000, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not reproducible at %d: %d != %d", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %d < %d", i, a[i], a[i-1])
		}
	}
	meanGap := float64(a[len(a)-1]) / float64(len(a))
	if meanGap < 200 || meanGap > 300 { // 1000/4 = 250 ± sampling error
		t.Fatalf("mean interarrival gap %.1f, want ≈250", meanGap)
	}
	if c := poissonArrivals(8, 100, 4); c[len(c)-1] == a[99] {
		t.Fatal("different seeds produced the same schedule")
	}
}

// TestServiceMetricsSanity: a healthy run completes every offered
// request, the quantiles are ordered, and the time-series accounts for
// every completion.
func TestServiceMetricsSanity(t *testing.T) {
	app := DefaultServer()
	app.Requests = 24
	res, err := Run(app, smallCfg(4), "dsm")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Service
	if s == nil {
		t.Fatal("server result has no service metrics")
	}
	if s.Offered != 24 || s.Completed != 24 {
		t.Fatalf("offered/completed = %d/%d, want 24/24", s.Offered, s.Completed)
	}
	if s.Latency.Count() != 24 {
		t.Fatalf("latency histogram has %d samples", s.Latency.Count())
	}
	p50, p99 := s.P50(), s.P99()
	if p50 == 0 || p50 > p99 || p99 > s.Latency.Max() {
		t.Fatalf("quantiles out of order: p50=%d p99=%d max=%d", p50, p99, s.Latency.Max())
	}
	if s.Throughput(res.Cycles) <= 0 {
		t.Fatal("throughput not positive")
	}
	var done uint64
	for _, d := range s.Series.Done {
		done += d
	}
	if done != s.Completed {
		t.Fatalf("series accounts for %d completions, want %d", done, s.Completed)
	}
}

// TestServiceLatencyGrowsWithLoad is the open-loop saturation signature:
// offered load beyond capacity must blow up the tail latency, because
// arrivals keep coming on schedule while handlers fall behind.
func TestServiceLatencyGrowsWithLoad(t *testing.T) {
	run := func(load float64) *Result {
		app := DefaultServer()
		app.Requests = 48
		app.Load = load
		res, err := Run(app, smallCfg(4), "dsm")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	light := run(1)
	heavy := run(40)
	if lp, hp := light.Service.P99(), heavy.Service.P99(); hp <= 2*lp {
		t.Fatalf("p99 under overload (%d) not ≫ p99 under light load (%d)", hp, lp)
	}
	// Saturation throughput: the overloaded run sustains more completions
	// per cycle than the lightly loaded one (which idles between requests).
	if lt, ht := light.Service.Throughput(light.Cycles), heavy.Service.Throughput(heavy.Cycles); ht <= lt {
		t.Fatalf("saturation throughput %.3f not above light-load %.3f", ht, lt)
	}
}

// TestStreamMatchesExpected: the sink digest equals the pure-function
// expectation on a coherence backend and on DSM.
func TestStreamMatchesExpected(t *testing.T) {
	for _, backend := range []string{"swcc", "dsm"} {
		app := DefaultStream()
		app.Frames = 16
		res, err := Run(app, smallCfg(4), backend)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checksum != app.Expected() {
			t.Fatalf("%s: stream digest %#x != expected %#x", backend, res.Checksum, app.Expected())
		}
		if res.Service.Completed != uint64(app.Frames) {
			t.Fatalf("%s: sink metered %d frames, want %d", backend, res.Service.Completed, app.Frames)
		}
	}
}

// TestStreamBackpressure: a deeper FIFO admits the overloaded stream
// faster than a shallow one (the source blocks in Push when full), which
// is exactly the backpressure mechanism working.
func TestStreamBackpressure(t *testing.T) {
	run := func(depth int) sim.Time {
		app := DefaultStream()
		app.Frames = 16
		app.Load = 50 // far beyond stage capacity: FIFO depth dominates
		app.Depth = depth
		res, err := Run(app, smallCfg(4), "dsm")
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if shallow, deep := run(2), run(8); deep >= shallow {
		t.Fatalf("deeper FIFO (%d cycles) not faster than shallow (%d cycles) under overload", deep, shallow)
	}
}

// TestKVStoreHotKeySkew: the hot-key mix must put more lock traffic on
// shard 0 than a uniform mix — the contention scenario the adaptive
// backend targets.
func TestKVStoreHotKeySkew(t *testing.T) {
	run := func(hotPct int) *Result {
		app := DefaultKVStore()
		app.Ops = 48
		app.Load = 50   // overloaded: ops queue up on the shard locks
		app.ReadPct = 0 // all PUTs: every op serializes on its shard
		app.HotPct = hotPct
		res, err := Run(app, smallCfg(4), "dsm")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	skewed := run(90)
	uniform := run(0)
	if skewed.Checksum == uniform.Checksum {
		t.Fatal("hot-key fraction did not change the op mix")
	}
	if skewed.Total.LockWait <= uniform.Total.LockWait {
		t.Fatalf("hot-key skew lock wait %d not above uniform %d",
			skewed.Total.LockWait, uniform.Total.LockWait)
	}
}

package workloads

import (
	"math"

	"pmc/internal/sim"
	"pmc/internal/stats"
)

// Open-loop service machinery shared by the server, kvstore, and stream
// workloads: a deterministic Poisson arrival schedule and per-worker
// service meters.
//
// Arrivals are open-loop (the schedule does not react to completion
// times): requests keep arriving at the offered load even when the
// platform falls behind, which is what makes tail latency meaningful.
// The schedule is computed in Setup, outside simulated time, and is a
// pure function of (seed, count, load) — identical for every backend,
// worker count, and event-queue kind.

// expQ16 tabulates -ln((i+0.5)/4096) in Q16 fixed point: the inverse-CDF
// quantiles of the exponential distribution at 4096 levels. Sampling
// reduces to one table lookup and integer multiply, so schedule
// generation never does runtime floating-point math.
var expQ16 [4096]uint32

func init() {
	for i := range expQ16 {
		expQ16[i] = uint32(math.Round(-65536 * math.Log((float64(i)+0.5)/4096)))
	}
}

// poissonArrivals returns n cumulative arrival times with exponential
// interarrival gaps of mean 1000/load cycles (load = offered requests
// per kilocycle).
func poissonArrivals(seed uint32, n int, load float64) []sim.Time {
	if load <= 0 {
		load = 1
	}
	meanGapQ16 := uint64(math.Round(1000 * 65536 / load))
	r := newRand(seed)
	at := make([]sim.Time, n)
	var t uint64
	for i := range at {
		u := r.next() & 4095
		t += (meanGapQ16 * uint64(expQ16[u])) >> 32
		at[i] = sim.Time(t)
	}
	return at
}

// svcMeters collects per-worker Service metrics. Each worker records
// only into its own slot (no cross-worker mutation inside the
// simulation); merged() folds the slots element-wise, which is
// order-independent, so the merged Service is identical however the
// simulation interleaved the workers.
type svcMeters struct {
	interval sim.Time
	per      []*stats.Service
}

func newSvcMeters(workers int, interval sim.Time) *svcMeters {
	m := &svcMeters{interval: interval, per: make([]*stats.Service, workers)}
	for i := range m.per {
		m.per[i] = stats.NewService(interval)
	}
	return m
}

// record logs one completed request for worker w: scheduled arrival,
// service start (after queueing), and completion time.
func (m *svcMeters) record(w int, arrive, start, done sim.Time) {
	s := m.per[w]
	s.Completed++
	s.Latency.Add(uint64(done - arrive))
	s.Series.RecordDone(done)
	s.Series.RecordBusy(done, done-start)
}

// merged folds all worker meters into one Service with the offered count
// filled in.
func (m *svcMeters) merged(offered int) *stats.Service {
	out := stats.NewService(m.interval)
	out.Offered = uint64(offered)
	for _, s := range m.per {
		out.Merge(s)
	}
	return out
}

// SetLoad overrides the offered load (requests per kilocycle) on a service
// workload instance and reports whether app is one. Closed-loop workloads
// have no offered-load knob and return false unchanged.
func SetLoad(app App, load float64) bool {
	switch a := app.(type) {
	case *Server:
		a.Load = load
	case *KVStore:
		a.Load = load
	case *Stream:
		a.Load = load
	default:
		return false
	}
	return true
}

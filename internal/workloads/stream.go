package workloads

import (
	"fmt"

	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/stats"
)

// Stream is the streaming pipeline under open-loop traffic: a source
// tile admits frames on a deterministic Poisson schedule, Stages
// transform tiles rework them, and a sink folds the digest — all
// connected by the Fig. 9 FIFO, whose bounded depth provides
// backpressure. When the offered load exceeds the slowest stage's
// capacity the source stalls in Push (the FIFO fills) but arrivals keep
// accumulating on the schedule, so per-frame latency (sink completion −
// scheduled arrival) grows without bound — the open-loop saturation
// signature.
type Stream struct {
	// Frames is the total offered frame count.
	Frames int
	// Load is the offered load in frames per kilocycle.
	Load float64
	// Stages is the number of transform stages (pipeline tiles used =
	// Stages + 2 for source and sink).
	Stages int
	// FrameWords is the frame payload size in words.
	FrameWords int
	// Depth is each FIFO's buffer depth (the backpressure bound).
	Depth int
	// Work is the modelled per-frame compute of each transform stage.
	Work int
	// Seed drives the arrival schedule.
	Seed uint32
	// Interval is the time-series window width (cycles).
	Interval sim.Time

	arrivals []sim.Time
	fifos    []*Fifo
	result   *rt.Object
	meters   *svcMeters
}

// DefaultStream returns the evaluation configuration.
func DefaultStream() *Stream {
	return &Stream{Frames: 96, Load: 3, Stages: 2, FrameWords: 8, Depth: 4, Work: 100, Seed: 3, Interval: 4096}
}

// Name implements App.
func (a *Stream) Name() string { return "stream" }

// tilesUsed is the pipeline's tile footprint: source + Stages + sink.
func (a *Stream) tilesUsed() int { return a.Stages + 2 }

// Setup implements App.
func (a *Stream) Setup(r *rt.Runtime, tiles int) {
	if a.tilesUsed() > tiles {
		panic(fmt.Sprintf("stream: %d pipeline tiles > %d tiles", a.tilesUsed(), tiles))
	}
	a.arrivals = poissonArrivals(a.Seed, a.Frames, a.Load)
	a.fifos = make([]*Fifo, a.Stages+1)
	for i := range a.fifos {
		a.fifos[i] = NewFifo(r, fmt.Sprintf("stream%d", i), a.Depth, a.FrameWords, 1)
	}
	a.result = r.Alloc("stream-result", 4)
	a.meters = newSvcMeters(1, a.Interval) // only the sink records
}

// Worker implements App: tile 0 sources on the arrival schedule, tiles
// [1,Stages] transform, tile Stages+1 sinks; the rest idle.
func (a *Stream) Worker(c *rt.Ctx, tile, tiles int) {
	if tile >= a.tilesUsed() {
		return
	}
	c.SetCodeFootprint(2 * 1024)
	switch {
	case tile == 0: // source: admit frames open-loop
		for i := 0; i < a.Frames; i++ {
			c.WaitUntil(a.arrivals[i])
			frame := make([]uint32, a.FrameWords)
			for w := range frame {
				frame[w] = uint32(i)<<8 | uint32(w)
			}
			c.Compute(a.Work / 2)
			a.fifos[0].Push(c, frame) // blocks on backpressure
		}
	case tile <= a.Stages: // transform stages
		for i := 0; i < a.Frames; i++ {
			frame := a.fifos[tile-1].Pop(c, 0)
			c.Compute(a.Work)
			transform(tile, frame)
			a.fifos[tile].Push(c, frame)
		}
	default: // sink: digest + latency metering
		var digest uint32
		for i := 0; i < a.Frames; i++ {
			frame := a.fifos[a.Stages].Pop(c, 0)
			start := c.Now()
			for _, v := range frame {
				digest = digest*16777619 + v
			}
			c.Compute(a.Work / 2)
			// The single-reader FIFO chain preserves order, so the i-th
			// pop is frame i and its scheduled arrival is arrivals[i].
			a.meters.record(0, a.arrivals[i], start, c.Now())
		}
		c.EntryX(a.result)
		c.Write32(a.result, 0, digest)
		c.ExitX(a.result)
	}
}

// Checksum implements App.
func (a *Stream) Checksum(r *rt.Runtime) uint32 {
	return r.ReadObjectWord(a.result, 0)
}

// Expected computes the sink digest independently of the simulation —
// the stream is a pure function of its parameters, so every backend must
// produce exactly this checksum.
func (a *Stream) Expected() uint32 {
	var digest uint32
	for i := 0; i < a.Frames; i++ {
		frame := make([]uint32, a.FrameWords)
		for w := range frame {
			frame[w] = uint32(i)<<8 | uint32(w)
		}
		for s := 1; s <= a.Stages; s++ {
			transform(s, frame)
		}
		for _, v := range frame {
			digest = digest*16777619 + v
		}
	}
	return digest
}

// Service implements ServiceApp.
func (a *Stream) Service() *stats.Service { return a.meters.merged(a.Frames) }

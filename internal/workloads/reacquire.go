package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Reacquire is the ablation workload for lazy vs eager release (Section
// V-A's "an implementation could do a 'lazy release'"): every tile
// repeatedly re-enters its own object — where lazy release keeps the data
// cached across scopes and eager release flushes and refills every time —
// with an occasional cross-tile access that forces a real ownership
// transfer, proving the lazy variant still moves data when it must.
type Reacquire struct {
	// Iters is the number of scopes per tile.
	Iters int
	// Words is the number of words touched per scope.
	Words int
	// CrossEvery makes every n-th scope target the next tile's object.
	CrossEvery int

	objs []*rt.Object
}

// DefaultReacquire returns the ablation configuration.
func DefaultReacquire() *Reacquire {
	return &Reacquire{Iters: 64, Words: 16, CrossEvery: 16}
}

// Name implements App.
func (a *Reacquire) Name() string { return "reacquire" }

// Setup implements App.
func (a *Reacquire) Setup(r *rt.Runtime, tiles int) {
	a.objs = make([]*rt.Object, tiles)
	for i := range a.objs {
		a.objs[i] = r.Alloc(fmt.Sprintf("own%d", i), a.Words*4)
	}
}

// Worker implements App.
func (a *Reacquire) Worker(c *rt.Ctx, tile, tiles int) {
	c.SetCodeFootprint(1024)
	for i := 0; i < a.Iters; i++ {
		o := a.objs[tile]
		if a.CrossEvery > 0 && i%a.CrossEvery == a.CrossEvery-1 {
			o = a.objs[(tile+1)%tiles]
		}
		c.EntryX(o)
		for w := 0; w < a.Words; w++ {
			c.Write32(o, 4*w, c.Read32(o, 4*w)+1)
		}
		c.ExitX(o)
		c.Compute(40)
	}
}

// Checksum implements App: total increments must equal Iters×Words per
// object chain regardless of release policy.
func (a *Reacquire) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for _, o := range a.objs {
		for w := 0; w < a.Words; w++ {
			sum += r.ReadObjectWord(o, w)
		}
	}
	return sum
}

package workloads

import (
	"testing"

	"pmc/internal/sim"
)

// TestLogBreakdowns logs the Fig. 8-style stall breakdown for each app on
// nocc and swcc at test scale. Run with -v to inspect; it asserts only that
// the accounting is self-consistent (categories sum to within the makespan
// times tiles).
func TestLogBreakdowns(t *testing.T) {
	for _, app := range smallApps()[1:4] {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			for _, backend := range []string{"nocc", "swcc"} {
				res, err := Run(freshLike(app), smallCfg(8), backend)
				if err != nil {
					t.Fatal(err)
				}
				tot := res.Total.Total()
				pct := func(x sim.Time) float64 {
					if tot == 0 {
						return 0
					}
					return 100 * float64(x) / float64(tot)
				}
				t.Logf("%-9s %-5s cycles=%-9d busy=%5.1f%% istall=%5.1f%% privrd=%5.1f%% shrd=%5.1f%% wr=%5.1f%% flush=%5.1f%% lock=%5.1f%% copy=%5.1f%%",
					app.Name(), backend, res.Cycles,
					pct(res.Total.Busy), pct(res.Total.IStall), pct(res.Total.PrivReadStall),
					pct(res.Total.SharedReadStall), pct(res.Total.WriteStall),
					pct(res.Total.FlushStall+sim.Time(res.Total.FlushInstrs)), pct(res.Total.LockWait),
					pct(res.Total.CopyStall))
				if tot > res.Cycles*sim.Time(res.Tiles) {
					t.Errorf("accounted cycles %d exceed wall cycles × tiles %d", tot, res.Cycles*sim.Time(res.Tiles))
				}
			}
		})
	}
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Radiosity is the structural substitute for SPLASH-2 RADIOSITY: iterative
// energy transfer over a shared patch graph. Work items are taken from a
// central queue; each item shoots a patch's undistributed energy to a
// pseudo-random set of neighbour patches, read-modify-writing their
// accumulators under entry_x/exit_x. The shared access pattern is chaotic
// and write-heavy — the paper's explanation for why RADIOSITY benefits
// least from software cache coherency ("the application ... addresses and
// updates the memory in a chaotic way").
type Radiosity struct {
	// Patches is the number of scene patches.
	Patches int
	// Rounds is how many distribution rounds run over all patches.
	Rounds int
	// Fanout is the number of neighbour patches each task touches.
	Fanout int
	// PatchWords is the size of one patch record in words.
	PatchWords int
	// ComputePerTask is the modelled private computation per task.
	ComputePerTask int

	queue   *taskCounter
	patches []*rt.Object
	seed    uint32
}

// DefaultRadiosity returns the evaluation configuration.
func DefaultRadiosity() *Radiosity {
	return &Radiosity{
		Patches:        192,
		Rounds:         3,
		Fanout:         6,
		PatchWords:     16,
		ComputePerTask: 800,
	}
}

// Name implements App.
func (a *Radiosity) Name() string { return "radiosity" }

// Setup implements App.
func (a *Radiosity) Setup(r *rt.Runtime, tiles int) {
	a.seed = 0x9e3779b9
	a.queue = newTaskCounter(r, "rad-queue", a.Patches*a.Rounds)
	a.patches = make([]*rt.Object, a.Patches)
	rnd := newRand(7)
	for i := range a.patches {
		a.patches[i] = r.Alloc(fmt.Sprintf("patch%d", i), a.PatchWords*4)
		init := make([]uint32, a.PatchWords)
		init[0] = 1000 + rnd.next()%1000 // initial energy
		r.InitObject(a.patches[i], init)
	}
}

// Worker implements App.
func (a *Radiosity) Worker(c *rt.Ctx, tile, tiles int) {
	// Hot 2 KiB kernel loop with a 4 KiB colder tail visited every ~20
	// passes: the visibility/form-factor code around the inner loop.
	c.SetCodeProfile(2048, 4096, 48)
	scratch := c.PrivAlloc(64)
	// Per-tile interaction table: a private working set large enough to
	// contend with shared lines in the D-cache (the private-read band of
	// Fig. 8).
	table := c.PrivAlloc(768)
	for {
		task, ok := a.queue.next(c)
		if !ok {
			return
		}
		patch := int(task) % a.Patches
		// Read the source patch's energy and geometry.
		src := a.patches[patch]
		c.EntryRO(src)
		energy := c.Read32(src, 0)
		// Two passes over the patch record (geometry is consulted per
		// neighbour candidate): per-scope reuse the cache can keep.
		for pass := 0; pass < 2; pass++ {
			for w := 1; w < a.PatchWords-1; w++ {
				c.PWrite(scratch, w%8, c.Read32(src, 4*w))
			}
			c.Compute(40)
		}
		c.ExitRO(src)
		// Form-factor computation on private data: walk the
		// interaction table with a task-dependent stride.
		c.Compute(a.ComputePerTask)
		stride := int(task%7)*37 + 11
		idx := int(task) % 768
		for w := 0; w < 12; w++ {
			v := c.PRead(table, idx)
			c.PWrite(table, idx, v+uint32(w))
			idx = (idx + stride) % 768
		}
		for w := 0; w < 16; w++ {
			c.PWrite(scratch, 16+w, c.PRead(scratch, w%5)+uint32(w))
		}
		// Distribute to pseudo-random neighbours: the chaotic
		// read-modify-write phase. The neighbour choice depends only
		// on the task index, so the final sums are deterministic
		// regardless of which tile ran the task.
		share := energy / uint32(a.Fanout+1)
		rnd := newRand(a.seed ^ uint32(task)*2654435761)
		for k := 0; k < a.Fanout; k++ {
			n := a.patches[rnd.intn(a.Patches)]
			c.Fence()
			c.EntryX(n)
			c.Write32(n, 4, c.Read32(n, 4)+share)      // received energy
			c.Write32(n, 8, c.Read32(n, 8)+1)          // visit count
			c.Write32(n, 12, c.Read32(n, 12)^share<<1) // scatter pattern
			c.Write32(n, 20, c.Read32(n, 20)+share>>1) // gradient term
			c.ExitX(n)
			c.Compute(200)
		}
	}
}

// Checksum implements App: folds every patch's accumulators.
func (a *Radiosity) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for _, p := range a.patches {
		sum += r.ReadObjectWord(p, 1)*31 + r.ReadObjectWord(p, 2)*7 + r.ReadObjectWord(p, 3)
	}
	return sum
}

package workloads

import (
	"fmt"

	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/stats"
)

// KVStore is a sharded key-value store under open-loop traffic with
// hot-key skew: Shards shard objects of Keys words each, Clients client
// tiles issuing a deterministic Poisson stream of GETs (entry_ro +
// ranged read on the shard — on dsm/cdsm this hits the local replica)
// and PUTs (entry_x read-modify-write). A configurable fraction of
// operations lands on one hot key, so the hot shard's lock serializes at
// high load — the scenario where the per-object adaptive backend and
// placement maps should pay off.
type KVStore struct {
	// Ops is the total offered operation count.
	Ops int
	// Load is the offered load in operations per kilocycle.
	Load float64
	// Clients is the number of client tiles; tiles beyond it idle.
	Clients int
	// Shards and Keys shape the store: Shards objects of Keys words.
	Shards int
	Keys   int
	// HotPct is the percentage of operations hitting the hot key
	// (shard 0, key 0).
	HotPct int
	// ReadPct is the percentage of operations that are GETs.
	ReadPct int
	// Work is the modelled per-op compute (cycles).
	Work int
	// Seed drives the arrival schedule and the op mix.
	Seed uint32
	// Interval is the time-series window width (cycles).
	Interval sim.Time

	arrivals []sim.Time
	opShard  []int
	opKey    []int
	opRead   []bool
	opDelta  []uint32
	shards   []*rt.Object
	meters   *svcMeters
}

// DefaultKVStore returns the evaluation configuration.
func DefaultKVStore() *KVStore {
	return &KVStore{Ops: 160, Load: 5, Clients: 4, Shards: 4, Keys: 8,
		HotPct: 30, ReadPct: 70, Work: 60, Seed: 2, Interval: 4096}
}

// Name implements App.
func (a *KVStore) Name() string { return "kvstore" }

// Setup implements App.
func (a *KVStore) Setup(r *rt.Runtime, tiles int) {
	if a.Clients > tiles {
		panic(fmt.Sprintf("kvstore: %d client tiles > %d tiles", a.Clients, tiles))
	}
	a.arrivals = poissonArrivals(a.Seed, a.Ops, a.Load)
	rnd := newRand(a.Seed ^ 0x6b76) // "kv"
	a.opShard = make([]int, a.Ops)
	a.opKey = make([]int, a.Ops)
	a.opRead = make([]bool, a.Ops)
	a.opDelta = make([]uint32, a.Ops)
	for i := 0; i < a.Ops; i++ {
		if rnd.intn(100) < a.HotPct {
			a.opShard[i], a.opKey[i] = 0, 0 // hot key
		} else {
			a.opShard[i], a.opKey[i] = rnd.intn(a.Shards), rnd.intn(a.Keys)
		}
		a.opRead[i] = rnd.intn(100) < a.ReadPct
		a.opDelta[i] = rnd.next() | 1
	}
	a.shards = make([]*rt.Object, a.Shards)
	for i := range a.shards {
		a.shards[i] = r.Alloc(fmt.Sprintf("shard%d", i), a.Keys*4)
	}
	a.meters = newSvcMeters(a.Clients, a.Interval)
}

// Worker implements App: tiles [0,Clients) each issue their round-robin
// share of the op stream in arrival order; the rest idle.
func (a *KVStore) Worker(c *rt.Ctx, tile, tiles int) {
	if tile >= a.Clients {
		return
	}
	c.SetCodeFootprint(2 * 1024)
	for i := tile; i < a.Ops; i += a.Clients {
		c.WaitUntil(a.arrivals[i])
		start := c.Now()
		sh := a.shards[a.opShard[i]]
		off := a.opKey[i] * 4
		if a.opRead[i] {
			c.EntryRO(sh)
			_ = c.Read32(sh, off)
			c.ExitRO(sh)
			c.Compute(a.Work)
		} else {
			c.EntryX(sh)
			v := c.Read32(sh, off)
			c.Compute(a.Work)
			c.Write32(sh, off, v+a.opDelta[i])
			c.ExitX(sh)
		}
		a.meters.record(tile, a.arrivals[i], start, c.Now())
	}
}

// Checksum implements App: the fold of the final store contents. Each
// key's value is the commutative sum of its PUT deltas, so the checksum
// is identical for every backend and timing. GET values deliberately do
// not enter the checksum — what a GET observes is timing-dependent.
func (a *KVStore) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for si, o := range a.shards {
		for k := 0; k < a.Keys; k++ {
			sum += r.ReadObjectWord(o, k) * (uint32(si*a.Keys+k)*2 + 1)
		}
	}
	return sum
}

// Service implements ServiceApp.
func (a *KVStore) Service() *stats.Service { return a.meters.merged(a.Ops) }

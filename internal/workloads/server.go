package workloads

import (
	"fmt"

	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/stats"
)

// Server is the open-loop request/response service: requests arrive on a
// deterministic Poisson process at the configured offered load, are
// statically sharded round-robin across Servers handler tiles, and each
// handler claims a scoped session object (entry_x), applies a
// read-modify-write plus modelled compute, and releases it. Sessions are
// shared across handlers, so locking and coherence traffic scale with
// load exactly as in the kernels — but the figure of merit is p50/p99
// simulated latency (completion − scheduled arrival) and sustained
// throughput, not makespan.
type Server struct {
	// Requests is the total offered request count.
	Requests int
	// Load is the offered load in requests per kilocycle (all handlers
	// together).
	Load float64
	// Servers is the number of handler tiles; tiles beyond it idle.
	Servers int
	// Sessions is the number of shared session objects handlers claim.
	Sessions int
	// Work is the modelled per-request handler compute (cycles).
	Work int
	// Seed drives the arrival schedule and session assignment.
	Seed uint32
	// Interval is the time-series window width (cycles).
	Interval sim.Time

	arrivals []sim.Time
	reqSess  []int
	reqDelta []uint32
	sess     []*rt.Object
	meters   *svcMeters
}

// DefaultServer returns the evaluation configuration.
func DefaultServer() *Server {
	return &Server{Requests: 160, Load: 4, Servers: 4, Sessions: 12, Work: 120, Seed: 1, Interval: 4096}
}

// Name implements App.
func (a *Server) Name() string { return "server" }

// Setup implements App.
func (a *Server) Setup(r *rt.Runtime, tiles int) {
	if a.Servers > tiles {
		panic(fmt.Sprintf("server: %d handler tiles > %d tiles", a.Servers, tiles))
	}
	a.arrivals = poissonArrivals(a.Seed, a.Requests, a.Load)
	rnd := newRand(a.Seed ^ 0x5eed5eed)
	a.reqSess = make([]int, a.Requests)
	a.reqDelta = make([]uint32, a.Requests)
	for i := range a.reqSess {
		a.reqSess[i] = rnd.intn(a.Sessions)
		a.reqDelta[i] = rnd.next() | 1
	}
	a.sess = make([]*rt.Object, a.Sessions)
	for i := range a.sess {
		a.sess[i] = r.Alloc(fmt.Sprintf("sess%d", i), 4)
	}
	a.meters = newSvcMeters(a.Servers, a.Interval)
}

// Worker implements App: tiles [0,Servers) each serve their round-robin
// share of the request stream in arrival order; the rest idle.
func (a *Server) Worker(c *rt.Ctx, tile, tiles int) {
	if tile >= a.Servers {
		return
	}
	c.SetCodeFootprint(2 * 1024)
	for i := tile; i < a.Requests; i += a.Servers {
		c.WaitUntil(a.arrivals[i]) // open loop: never before schedule
		start := c.Now()
		s := a.sess[a.reqSess[i]]
		c.EntryX(s)
		v := c.Read32(s, 0)
		c.Compute(a.Work)
		c.Write32(s, 0, v+a.reqDelta[i])
		c.ExitX(s)
		a.meters.record(tile, a.arrivals[i], start, c.Now())
	}
}

// Checksum implements App: the fold of the final session values. Each
// session's value is the sum of its requests' deltas — commutative, so
// the checksum is identical for every backend and timing.
func (a *Server) Checksum(r *rt.Runtime) uint32 {
	var sum uint32
	for i, o := range a.sess {
		sum += r.ReadObjectWord(o, 0) * (uint32(i)*2 + 1)
	}
	return sum
}

// Service implements ServiceApp.
func (a *Server) Service() *stats.Service { return a.meters.merged(a.Requests) }

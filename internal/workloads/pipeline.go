package workloads

import (
	"fmt"

	"pmc/internal/rt"
)

// Pipeline chains the Fig. 9 FIFO into a multi-stage streaming pipeline —
// the cyclo-static-dataflow structure of the multimedia applications the
// paper cites as the FIFO's home ([20, 21]): a source tile produces frames,
// each middle stage transforms them, and a sink folds a digest. One FIFO
// connects each pair of adjacent stages; stages map one-to-one onto tiles.
// Because every FIFO is built purely from PMC annotations, the whole
// pipeline is architecture-portable and its output is bit-identical on
// every backend.
type Pipeline struct {
	// Stages is the number of pipeline stages (>= 2: source and sink).
	Stages int
	// Frames is the number of frames pushed by the source.
	Frames int
	// FrameWords is the frame payload size in words.
	FrameWords int
	// Depth is each FIFO's buffer depth.
	Depth int
	// ComputePerFrame models each transform stage's work per frame.
	ComputePerFrame int

	fifos  []*Fifo
	result *rt.Object
}

// DefaultPipeline returns the evaluation configuration.
func DefaultPipeline() *Pipeline {
	return &Pipeline{Stages: 4, Frames: 24, FrameWords: 8, Depth: 4, ComputePerFrame: 120}
}

// Name implements App.
func (a *Pipeline) Name() string { return "pipeline" }

// Setup implements App.
func (a *Pipeline) Setup(r *rt.Runtime, tiles int) {
	if a.Stages < 2 || a.Stages > tiles {
		panic(fmt.Sprintf("pipeline: %d stages on %d tiles", a.Stages, tiles))
	}
	a.fifos = make([]*Fifo, a.Stages-1)
	for i := range a.fifos {
		a.fifos[i] = NewFifo(r, fmt.Sprintf("pipe%d", i), a.Depth, a.FrameWords, 1)
	}
	a.result = r.Alloc("pipe-result", 4)
}

// transform is one stage's per-frame work: a reversible word-wise mix, so
// the sink's digest witnesses every stage having run exactly once per
// frame, in order.
func transform(stage int, frame []uint32) {
	k := uint32(stage)*0x9e3779b9 + 1
	for w := range frame {
		frame[w] = frame[w]*33 + k + uint32(w)
	}
}

// Worker implements App: tile 0 is the source, tile Stages-1 the sink,
// tiles in between transform.
func (a *Pipeline) Worker(c *rt.Ctx, tile, tiles int) {
	if tile >= a.Stages {
		return
	}
	c.SetCodeFootprint(2 * 1024)
	switch {
	case tile == 0: // source
		for i := 0; i < a.Frames; i++ {
			frame := make([]uint32, a.FrameWords)
			for w := range frame {
				frame[w] = uint32(i)<<8 | uint32(w)
			}
			c.Compute(a.ComputePerFrame / 2)
			a.fifos[0].Push(c, frame)
		}
	case tile < a.Stages-1: // transform stages
		for i := 0; i < a.Frames; i++ {
			frame := a.fifos[tile-1].Pop(c, 0)
			c.Compute(a.ComputePerFrame)
			transform(tile, frame)
			a.fifos[tile].Push(c, frame)
		}
	default: // sink
		var digest uint32
		for i := 0; i < a.Frames; i++ {
			frame := a.fifos[a.Stages-2].Pop(c, 0)
			for _, v := range frame {
				digest = digest*16777619 + v
			}
			c.Compute(a.ComputePerFrame / 2)
		}
		c.EntryX(a.result)
		c.Write32(a.result, 0, digest)
		c.ExitX(a.result)
	}
}

// Checksum implements App.
func (a *Pipeline) Checksum(r *rt.Runtime) uint32 {
	return r.ReadObjectWord(a.result, 0)
}

// Expected computes the digest the sink must produce, independently of the
// simulation — the pipeline is a pure function of its parameters.
func (a *Pipeline) Expected() uint32 {
	var digest uint32
	for i := 0; i < a.Frames; i++ {
		frame := make([]uint32, a.FrameWords)
		for w := range frame {
			frame[w] = uint32(i)<<8 | uint32(w)
		}
		for s := 1; s < a.Stages-1; s++ {
			transform(s, frame)
		}
		for _, v := range frame {
			digest = digest*16777619 + v
		}
	}
	return digest
}

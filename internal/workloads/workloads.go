// Package workloads contains the applications of the paper's evaluation,
// all written once against the PMC annotation API (internal/rt) and
// therefore runnable unchanged on every backend:
//
//   - radiosity, raytrace, volrend — structural substitutes for the
//     SPLASH-2 applications of Section VI-A / Fig. 8 (see DESIGN.md §2 for
//     the substitution argument);
//   - mfifo — the multiple-reader, multiple-writer FIFO of Section VI-B /
//     Fig. 9;
//   - motionest — the scratch-pad motion-estimation kernel of
//     Section VI-C / Fig. 10;
//   - msgpass — the running example of Figs. 1, 5 and 6.
package workloads

import (
	"fmt"

	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/stats"
	"pmc/internal/trace"
)

// App is a runnable workload.
type App interface {
	// Name identifies the workload.
	Name() string
	// Setup allocates and initializes shared objects (runs before the
	// simulation starts, outside simulated time).
	Setup(r *rt.Runtime, tiles int)
	// Worker is the per-tile body.
	Worker(c *rt.Ctx, tile, tiles int)
	// Checksum returns a determinism witness computed from the final
	// shared state.
	Checksum(r *rt.Runtime) uint32
}

// ServiceApp is an App that runs open-loop service traffic and measures
// it: Service returns the merged per-run service metrics (offered and
// completed request counts, the exact latency histogram, the
// per-interval time-series). Valid after the run completes.
type ServiceApp interface {
	App
	Service() *stats.Service
}

// Result is one measured run.
type Result struct {
	App      string
	Backend  string
	Tiles    int
	Cycles   sim.Time // makespan
	Total    soc.TileStats
	PerTile  []soc.TileStats
	Checksum uint32
	// NoC traffic, for the DSM discussions.
	NoCMessages uint64
	NoCBytes    uint64
	FlitHops    uint64
	// The hierarchical split of FlitHops on cluster topologies:
	// intra-cluster crossbar hops vs backbone hops. On flat topologies
	// every hop counts as local and GlobalFlitHops stays zero.
	LocalFlitHops  uint64
	GlobalFlitHops uint64
	// Service holds the open-loop service metrics for ServiceApp
	// workloads; nil for single-shot kernels.
	Service *stats.Service
}

// Sample converts the result to the stats package's renderer input.
func (r *Result) Sample() stats.Sample {
	return stats.Sample{
		Label:  fmt.Sprintf("%s (%s)", r.App, r.Backend),
		Cycles: r.Cycles,
		Stats:  r.Total,
	}
}

// FlushOverheadPct returns the percentage of accounted cycles spent
// executing cache-control instructions — the paper counts exactly this
// ("the time spent on executing flush instructions") and reports
// 0.66 / 0.00 / 0.01 % for its three applications. Bus time for the
// flush-triggered writebacks is accounted separately (FlushStall) and
// folded into the write-stall bar when rendering Fig. 8.
func (r *Result) FlushOverheadPct() float64 {
	return stats.FlushOverheadPct(r.Total)
}

// Utilization returns the paper's "core utilization" fraction of
// accounted cycles. It delegates to the stats package's Fig. 8 mapping
// (Busy + LockWait — a spinning core executes poll instructions), so the
// number printed as "utilization" always agrees with the Fig. 8 bars.
func (r *Result) Utilization() float64 {
	return stats.Utilization(r.Total)
}

// Run executes app on a fresh system with the named backend and returns the
// measured result. An optional recorder can be attached by tests through
// the hook.
func Run(app App, cfg soc.Config, backendName string) (*Result, error) {
	return run(app, cfg, backendName, nil)
}

// ByName returns a fresh instance of the named workload at its evaluation
// configuration.
func ByName(name string) (App, bool) {
	switch name {
	case "msgpass":
		return DefaultMsgPass(), true
	case "radiosity":
		return DefaultRadiosity(), true
	case "raytrace":
		return DefaultRaytrace(), true
	case "volrend":
		return DefaultVolrend(), true
	case "mfifo":
		return DefaultMFifo(), true
	case "motionest":
		return DefaultMotionEst(), true
	case "stencil":
		return DefaultStencil(), true
	case "reacquire":
		return DefaultReacquire(), true
	case "pipeline":
		return DefaultPipeline(), true
	case "bulkcopy":
		return DefaultBulkCopy(), true
	case "bulkcopy-word":
		return DefaultBulkCopyWord(), true
	case "server":
		return DefaultServer(), true
	case "kvstore":
		return DefaultKVStore(), true
	case "stream":
		return DefaultStream(), true
	}
	return nil, false
}

// Names lists the workloads ByName accepts.
var Names = []string{"msgpass", "radiosity", "raytrace", "volrend", "mfifo", "motionest", "stencil", "reacquire", "pipeline", "bulkcopy", "bulkcopy-word", "server", "kvstore", "stream"}

// Scaled is ByName with an optional CI-sized ("small") configuration: the
// same shrunken parameters the experiment suite uses for quick runs. With
// small=false it is exactly ByName.
func Scaled(name string, small bool) (App, bool) {
	app, ok := ByName(name)
	if !ok || !small {
		return app, ok
	}
	switch a := app.(type) {
	case *Radiosity:
		a.Patches, a.Rounds, a.Fanout = 48, 2, 3
	case *Raytrace:
		a.Cells, a.Rays, a.StepsPerRay = 48, 40, 4
	case *Volrend:
		a.Bricks, a.OutTiles, a.RaysPerTile = 32, 24, 3
	case *MFifo:
		a.Items = 12
	case *MotionEst:
		a.BlocksX, a.BlocksY = 4, 2
	case *Stencil:
		a.Iters = 4
	case *Reacquire:
		a.Iters = 32
	case *Pipeline:
		a.Frames = 6
	case *BulkCopy:
		a.SlotWords, a.Rounds = 32, 2
		if a.Chunk > 1 {
			a.Chunk = 32
		}
	case *Server:
		a.Requests = 24
	case *KVStore:
		a.Ops = 24
	case *Stream:
		a.Frames = 16
	}
	return app, true
}

// RunPlaced is Run with a per-object placement table installed before
// Setup: object names (exact, or trailing-* prefix globs) route to named
// backends, everything else to the run's default backend.
func RunPlaced(app App, cfg soc.Config, backendName string, place map[string]string) (*Result, error) {
	return run(app, cfg, backendName, func(r *rt.Runtime) { r.SetPlacement(place) })
}

// RunTraced is Run with an event tracer attached; the trace is returned for
// CSV or Chrome-trace export.
func RunTraced(app App, cfg soc.Config, backendName string, limit int) (*Result, *trace.Trace, error) {
	tr := trace.New(limit)
	res, err := run(app, cfg, backendName, func(r *rt.Runtime) { r.Tracer = tr })
	return res, tr, err
}

// RunVerified is Run with the model recorder attached (tests only: the
// model is O(n²) in operations; keep configurations small).
func RunVerified(app App, cfg soc.Config, backendName string) (*Result, *rt.Recorder, error) {
	var rec *rt.Recorder
	res, err := run(app, cfg, backendName, func(r *rt.Runtime) {
		rec = rt.NewRecorder(r)
	})
	return res, rec, err
}

func run(app App, cfg soc.Config, backendName string, pre func(*rt.Runtime)) (*Result, error) {
	b, err := rt.ByName(backendName)
	if err != nil {
		return nil, err
	}
	sys, err := soc.New(cfg)
	if err != nil {
		return nil, err
	}
	r := rt.New(sys, b)
	if pre != nil {
		pre(r)
	}
	app.Setup(r, cfg.Tiles)
	for t := 0; t < cfg.Tiles; t++ {
		t := t
		r.Spawn(t, fmt.Sprintf("%s-w%d", app.Name(), t), func(c *rt.Ctx) {
			app.Worker(c, t, cfg.Tiles)
		})
	}
	if err := r.Run(); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", app.Name(), backendName, err)
	}
	res := &Result{
		App:         app.Name(),
		Backend:     b.Name(),
		Tiles:       cfg.Tiles,
		Cycles:      sys.K.Now(),
		Total:       sys.TotalStats(),
		Checksum:    app.Checksum(r),
		NoCMessages: sys.Net.Stats().Messages,
		NoCBytes:    sys.Net.Stats().Bytes,
		FlitHops:    sys.Net.Stats().FlitHops,

		LocalFlitHops:  sys.Net.Stats().LocalFlitHops,
		GlobalFlitHops: sys.Net.Stats().GlobalFlitHops,
	}
	for _, t := range sys.Tiles {
		res.PerTile = append(res.PerTile, t.Stats)
	}
	if sa, ok := app.(ServiceApp); ok {
		res.Service = sa.Service()
	}
	return res, nil
}

// xorshift32 is the deterministic PRNG used by all workloads (no
// math/rand: reproducibility across Go versions matters more than
// statistical quality here).
type xorshift32 uint32

func newRand(seed uint32) xorshift32 {
	if seed == 0 {
		seed = 2463534242
	}
	return xorshift32(seed)
}

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

func (x *xorshift32) intn(n int) int { return int(x.next() % uint32(n)) }

// taskCounter is a shared work queue: a single counter object handed out
// under entry_x/exit_x — the central task queue pattern the SPLASH-2
// applications use. Workers claim chunks of several tasks per critical
// section (the standard mitigation for queue serialization at high core
// counts); results stay deterministic because every workload folds
// per-task values commutatively.
type taskCounter struct {
	obj   *rt.Object
	limit uint32
	chunk uint32
	local map[*rt.Ctx]*taskSpan
}

type taskSpan struct{ next, end uint32 }

func newTaskCounter(r *rt.Runtime, name string, limit int) *taskCounter {
	return &taskCounter{
		obj:   r.Alloc(name, 4),
		limit: uint32(limit),
		chunk: 4,
		local: make(map[*rt.Ctx]*taskSpan),
	}
}

// next claims the next task index, or returns false when exhausted.
func (q *taskCounter) next(c *rt.Ctx) (uint32, bool) {
	sp := q.local[c]
	if sp == nil {
		sp = &taskSpan{}
		q.local[c] = sp
	}
	if sp.next < sp.end {
		idx := sp.next
		sp.next++
		c.Compute(2) // local bookkeeping
		return idx, true
	}
	c.EntryX(q.obj)
	idx := c.Read32(q.obj, 0)
	if idx < q.limit {
		n := q.chunk
		if idx+n > q.limit {
			n = q.limit - idx
		}
		c.Write32(q.obj, 0, idx+n)
		sp.next, sp.end = idx+1, idx+n
	}
	c.ExitX(q.obj)
	return idx, idx < q.limit
}

// Package conform runs litmus programs directly on the simulated SoC —
// through the PMC runtime and a concrete backend — and checks that every
// outcome the hardware/runtime combination produces is admitted by the
// formal model's exhaustive exploration. This is the paper's verification
// claim made executable: "the PMC model is designed such that a mapping of
// the primitives and ordering relations to specific hardware can be
// designed and verified with relative ease" (Section I).
//
// A single simulated run is deterministic and yields one outcome; to
// sample the implementation's outcome space the harness re-runs each
// program under many timing perturbations (per-thread start staggers and
// poll backoffs), which shift the interleaving without touching program
// logic. Conformance requires observed ⊆ allowed; the inclusion is
// typically strict, because a real machine resolves races that the model
// leaves open.
package conform

import (
	"fmt"
	"sort"
	"strings"

	"pmc/internal/litmus"
	"pmc/internal/rt"
	"pmc/internal/soc"
)

// Report is the result of checking one program on one backend.
type Report struct {
	Program string
	Backend string
	// Allowed is the model's outcome set.
	Allowed []string
	// Observed maps each outcome seen on the simulator to the number of
	// perturbed runs that produced it.
	Observed map[string]int
	// Violations lists observed outcomes the model forbids (must be
	// empty for a conforming implementation).
	Violations []string
	Runs       int
}

// Ok reports conformance.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders the report compactly.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d runs, %d/%d allowed outcomes observed",
		r.Program, r.Backend, r.Runs, len(r.Observed), len(r.Allowed))
	if !r.Ok() {
		fmt.Fprintf(&b, "; VIOLATIONS: %v", r.Violations)
	}
	return b.String()
}

// Check explores prog under the model, then executes it on the simulator
// with the given backend under `runs` timing perturbations, and compares
// outcome sets.
func Check(prog litmus.Program, backend string, tiles, runs int) (*Report, error) {
	model, err := litmus.Explore(prog)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Program:  prog.Name,
		Backend:  backend,
		Allowed:  model.OutcomeList(),
		Observed: make(map[string]int),
		Runs:     runs,
	}
	allowed := make(map[string]bool, len(rep.Allowed))
	for _, o := range rep.Allowed {
		allowed[o] = true
	}
	if tiles < len(prog.Threads) {
		return nil, fmt.Errorf("conform: %d tiles for %d threads", tiles, len(prog.Threads))
	}
	for seed := 0; seed < runs; seed++ {
		outcome, err := execute(prog, backend, tiles, uint32(seed))
		if err != nil {
			return nil, fmt.Errorf("conform %s on %s seed %d: %w", prog.Name, backend, seed, err)
		}
		rep.Observed[outcome]++
		if !allowed[outcome] {
			dup := false
			for _, v := range rep.Violations {
				if v == outcome {
					dup = true
				}
			}
			if !dup {
				rep.Violations = append(rep.Violations, outcome)
			}
		}
	}
	return rep, nil
}

// execute runs one perturbed instance of prog and returns its canonical
// outcome string.
func execute(prog litmus.Program, backend string, tiles int, seed uint32) (string, error) {
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	cfg.MaxCycles = 20_000_000
	sys, err := soc.New(cfg)
	if err != nil {
		return "", err
	}
	b, err := rt.ByName(backend)
	if err != nil {
		return "", err
	}
	r := rt.New(sys, b)
	objs := make(map[string]*rt.Object, len(prog.Locs))
	for _, name := range prog.Locs {
		objs[name] = r.Alloc(name, 4)
	}
	type reg struct {
		name string
		val  uint32
	}
	results := make(chan reg, 64) // collected host-side; no sim cost
	for ti, th := range prog.Threads {
		ti, th := ti, th
		// Deterministic per-thread perturbation derived from the seed.
		h := seed*2654435761 + uint32(ti)*40503 + 1
		stagger := int(h % 97)
		backoff := int(h/97%23) + 1
		r.Spawn(ti, fmt.Sprintf("t%d", ti), func(c *rt.Ctx) {
			c.SetCodeFootprint(1024)
			c.Compute(1 + stagger)
			// Bare litmus accesses get their own entry/exit pair (the
			// runtime discipline requires one, and the added
			// synchronization can only restrict outcomes); accesses
			// inside an explicit acquire/release use the open scope.
			open := map[string]bool{}
			for _, in := range th {
				switch in.Kind {
				case litmus.IWrite:
					if open[in.Loc] {
						c.Write32(objs[in.Loc], 0, uint32(in.Val))
						break
					}
					// A bare write gets its own scope plus a flush:
					// the flush adds no ordering (it is a liveness
					// hint, Section IV-D) but is what lets pollers
					// on weak-visibility backends (DSM, lazy SWCC)
					// eventually observe the value — the paper's
					// reason for flush(f) in Fig. 6.
					c.EntryX(objs[in.Loc])
					c.Write32(objs[in.Loc], 0, uint32(in.Val))
					c.Flush(objs[in.Loc])
					c.ExitX(objs[in.Loc])
				case litmus.IRead:
					var v uint32
					if open[in.Loc] {
						v = c.Read32(objs[in.Loc], 0)
					} else {
						c.EntryRO(objs[in.Loc])
						v = c.Read32(objs[in.Loc], 0)
						c.ExitRO(objs[in.Loc])
					}
					if in.Reg != "" {
						results <- reg{in.Reg, v}
					}
				case litmus.IAcquire:
					c.EntryX(objs[in.Loc])
					open[in.Loc] = true
				case litmus.IRelease:
					c.ExitX(objs[in.Loc])
					delete(open, in.Loc)
				case litmus.IFence:
					if in.Loc != "" {
						c.FenceObj(objs[in.Loc])
					} else {
						c.Fence()
					}
				case litmus.IFlush:
					c.Flush(objs[in.Loc])
				case litmus.IAwaitEq:
					for {
						c.EntryRO(objs[in.Loc])
						v := c.Read32(objs[in.Loc], 0)
						c.ExitRO(objs[in.Loc])
						if v == uint32(in.Val) {
							if in.Reg != "" {
								results <- reg{in.Reg, v}
							}
							break
						}
						c.Compute(backoff)
					}
				}
			}
		})
	}
	if err := r.Run(); err != nil {
		return "", err
	}
	close(results)
	regs := map[string]uint32{}
	for rv := range results {
		regs[rv.name] = rv.val
	}
	return canonical(regs), nil
}

// canonical matches the litmus explorer's outcome rendering.
func canonical(regs map[string]uint32) string {
	if len(regs) == 0 {
		return "(no observations)"
	}
	keys := make([]string, 0, len(regs))
	for k := range regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, regs[k])
	}
	return strings.Join(parts, " ")
}

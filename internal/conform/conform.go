// Package conform runs litmus programs directly on the simulated SoC —
// through the PMC runtime and a concrete backend — and checks that every
// outcome the hardware/runtime combination produces is admitted by the
// formal model's exhaustive exploration. This is the paper's verification
// claim made executable: "the PMC model is designed such that a mapping of
// the primitives and ordering relations to specific hardware can be
// designed and verified with relative ease" (Section I).
//
// A single simulated run is deterministic and yields one outcome; to
// sample the implementation's outcome space the harness re-runs each
// program under many timing perturbations (per-thread start staggers and
// poll backoffs), which shift the interleaving without touching program
// logic. Every perturbation derives from an explicit base seed recorded in
// the report, so any violation is reproducible from the report alone.
// Conformance requires observed ⊆ allowed; the inclusion is typically
// strict, because a real machine resolves races that the model leaves open.
package conform

import (
	"fmt"
	"sort"
	"strings"

	"pmc/internal/core"
	"pmc/internal/litmus"
	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/soc"
)

// Violation is one observed outcome the model forbids, together with the
// perturbation seed of the first run that produced it — rerunning the
// program with that seed on the same backend reproduces the outcome.
type Violation struct {
	Outcome string
	Seed    int64
}

func (v Violation) String() string {
	return fmt.Sprintf("%q (seed %d)", v.Outcome, v.Seed)
}

// Report is the result of checking one program on one backend.
type Report struct {
	Program string
	Backend string
	// Seed is the base perturbation seed; run r was perturbed with
	// Seed+r.
	Seed int64
	// Allowed is the model's outcome set for the effective program (see
	// EffectiveProgram).
	Allowed []string
	// Observed maps each outcome seen on the simulator to the number of
	// perturbed runs that produced it.
	Observed map[string]int
	// Violations lists observed outcomes the model forbids (must be
	// empty for a conforming implementation).
	Violations []Violation
	Runs       int
}

// Ok reports conformance.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders the report compactly.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d runs (base seed %d), %d/%d allowed outcomes observed",
		r.Program, r.Backend, r.Runs, r.Seed, len(r.Observed)-len(r.Violations), len(r.Allowed))
	if !r.Ok() {
		fmt.Fprintf(&b, "; VIOLATIONS: %v", r.Violations)
	}
	return b.String()
}

// Options configures a conformance check beyond the program and backend
// name.
type Options struct {
	// Tiles is the system size; it must cover the program's threads.
	Tiles int
	// Runs is the number of perturbed simulations.
	Runs int
	// Seed is the base perturbation seed: run r is perturbed with
	// Seed+r. The zero value reproduces the historical schedule
	// (run index as seed).
	Seed int64
	// MaxCycles bounds each simulated run; 0 means a generous default.
	// Fuzzing loops lower it so livelocking candidates fail fast.
	MaxCycles sim.Time
	// Base, if non-nil, is the system configuration template for every
	// run; Tiles and MaxCycles above still override its fields. The spec
	// checker uses it to pin a clustered interface topology without
	// growing the simulated system.
	Base *soc.Config
	// Backend, if non-nil, constructs the backend instance for each run
	// instead of rt.ByName — the hook fault-injection harnesses use to
	// check a deliberately broken protocol against the model.
	Backend func() (rt.Backend, error)
	// Model, if non-nil, is a precomputed exploration of
	// EffectiveProgram(prog); the fuzzer shares one exploration across
	// all backends instead of re-exploring per check.
	Model *litmus.Result
}

// MixedBackend is the pseudo-backend name selecting per-location routing:
// each location with a Placement entry is allocated on its placed backend
// (via rt.AllocOn) and the rest stay on the default nocc route, so one
// program exercises several protocols against the one model. Pure backend
// runs ignore Placement entirely — the same program doubles as its own
// single-backend control.
const MixedBackend = "mixed"

// Check explores prog under the model, then executes it on the simulator
// with the given backend under `runs` timing perturbations, and compares
// outcome sets. Perturbations use the historical base seed 0.
func Check(prog litmus.Program, backend string, tiles, runs int) (*Report, error) {
	return CheckOpts(prog, backend, Options{Tiles: tiles, Runs: runs})
}

// CheckOpts is Check with explicit options.
func CheckOpts(prog litmus.Program, backend string, opt Options) (*Report, error) {
	if opt.Runs <= 0 {
		return nil, fmt.Errorf("conform: Runs must be positive (a 0-run check would vacuously pass)")
	}
	if opt.Tiles < len(prog.Threads) {
		return nil, fmt.Errorf("conform: %d tiles for %d threads", opt.Tiles, len(prog.Threads))
	}
	if backend == MixedBackend {
		// Surface bad placement names as an error here rather than an
		// AllocOn panic inside every perturbed run.
		for loc, pb := range prog.Placement {
			if _, err := rt.ByName(pb); err != nil {
				return nil, fmt.Errorf("conform %s: placement %s=%s: %w", prog.Name, loc, pb, err)
			}
		}
	}
	// One rewrite defines the program under test for BOTH sides: the
	// model explores it and the simulator executes it.
	eff := EffectiveProgram(prog)
	model := opt.Model
	if model == nil {
		var err error
		model, err = litmus.Explore(eff)
		if err != nil {
			return nil, err
		}
	}
	rep := &Report{
		Program:  prog.Name,
		Backend:  backend,
		Seed:     opt.Seed,
		Allowed:  model.OutcomeList(),
		Observed: make(map[string]int),
		Runs:     opt.Runs,
	}
	allowed := make(map[string]bool, len(rep.Allowed))
	for _, o := range rep.Allowed {
		allowed[o] = true
	}
	for run := 0; run < opt.Runs; run++ {
		seed := opt.Seed + int64(run)
		outcome, err := execute(eff, backend, opt, uint32(seed))
		if err != nil {
			return nil, fmt.Errorf("conform %s on %s seed %d: %w", prog.Name, backend, seed, err)
		}
		rep.Observed[outcome]++
		if !allowed[outcome] {
			dup := false
			for _, v := range rep.Violations {
				if v.Outcome == outcome {
					dup = true
				}
			}
			if !dup {
				rep.Violations = append(rep.Violations, Violation{Outcome: outcome, Seed: seed})
			}
		}
	}
	return rep, nil
}

// EffectiveProgram completes a program under the runtime's annotation
// discipline: every access must happen inside an entry/exit scope, so
// each bare write gets its own entry_x/exit_x pair plus a flush (the
// flush is a liveness hint, Section IV-D — it is what lets pollers on
// weak-visibility backends eventually observe the value, the paper's
// reason for flush(f) in Fig. 6). CheckOpts rewrites the program ONCE and
// uses the result on both sides — the model explores it and the
// simulator executes it — because the added scopes are real
// synchronization the hardware performs. Comparing the execution against
// the bare program's model would be unsound in both
// directions: the wrapper's lock edges both forbid outcomes the bare
// model allows and allow outcomes it forbids (a thread re-reading a
// location it wrote bare may legitimately observe another thread's
// interleaved locked write, which the bare model's Definition 12 excludes).
// Bare reads execute as entry_ro/read/exit_ro, which for word-sized
// objects takes no lock and adds no model ordering, so they stay plain
// reads; awaits likewise poll through entry_ro and stay awaits.
func EffectiveProgram(p litmus.Program) litmus.Program {
	out := p
	out.Threads = make([]litmus.Thread, len(p.Threads))
	for ti, th := range p.Threads {
		open := map[string]bool{}
		var eff litmus.Thread
		for _, in := range th {
			switch in.Kind {
			case litmus.IAcquire:
				open[in.Loc] = true
			case litmus.IRelease:
				delete(open, in.Loc)
			case litmus.IWrite:
				if !open[in.Loc] {
					eff = append(eff,
						litmus.Acquire(in.Loc),
						litmus.Write(in.Loc, in.Val),
						litmus.Flush(in.Loc),
						litmus.Release(in.Loc),
					)
					continue
				}
			case litmus.IWriteBlock:
				// A bare block write gets the same scope-plus-flush
				// wrapper as a bare word write.
				if !open[in.Loc] {
					eff = append(eff,
						litmus.Acquire(in.Loc),
						litmus.WriteBlock(in.Loc, in.Val),
						litmus.Flush(in.Loc),
						litmus.Release(in.Loc),
					)
					continue
				}
			}
			eff = append(eff, in)
		}
		out.Threads[ti] = eff
	}
	return out
}

// execute runs one perturbed instance of an *effective* program (see
// EffectiveProgram — every write already sits inside an explicit scope)
// and returns its canonical outcome string.
func execute(prog litmus.Program, backend string, opt Options, seed uint32) (string, error) {
	outcome, _, err := run(prog, backend, opt, seed, false)
	return outcome, err
}

// ExecuteRecorded runs one perturbed instance of an *effective* program
// (callers pass EffectiveProgram output, exactly like CheckOpts does
// internally) with a model recorder attached, returning the canonical
// outcome and the recorder-lowered per-word execution. The recorder
// verifies every read against the model as the run unfolds; its first
// violation surfaces as the returned error, with the partial execution
// still attached for diagnosis. The spec checker walks the execution's
// edges to attribute every committed ordering to a declared obligation.
func ExecuteRecorded(prog litmus.Program, backend string, opt Options, seed uint32) (string, *core.Execution, error) {
	return run(prog, backend, opt, seed, true)
}

// run is the shared body of execute and ExecuteRecorded.
func run(prog litmus.Program, backend string, opt Options, seed uint32, record bool) (string, *core.Execution, error) {
	cfg := soc.DefaultConfig()
	if opt.Base != nil {
		cfg = *opt.Base
	}
	cfg.Tiles = opt.Tiles
	cfg.MaxCycles = opt.MaxCycles
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000
	}
	sys, err := soc.New(cfg)
	if err != nil {
		return "", nil, err
	}
	mixed := backend == MixedBackend
	var b rt.Backend
	switch {
	case opt.Backend != nil:
		b, err = opt.Backend()
	case mixed:
		// Mixed runs default unplaced locations to the uncached
		// sequentially-consistent reference route.
		b, err = rt.ByName("nocc")
	default:
		b, err = rt.ByName(backend)
	}
	if err != nil {
		return "", nil, err
	}
	r := rt.New(sys, b)
	var rec *rt.Recorder
	if record {
		// Attached before allocation so every object is recorded.
		rec = rt.NewRecorder(r)
	}
	objs := make(map[string]*rt.Object, len(prog.Locs))
	for _, name := range prog.Locs {
		if pb := prog.Placement[name]; mixed && pb != "" {
			objs[name] = r.AllocOn(name, 4*prog.WidthOf(name), pb)
		} else {
			objs[name] = r.Alloc(name, 4*prog.WidthOf(name))
		}
	}
	type reg struct {
		name string
		val  uint32
	}
	// Collected host-side (no sim cost); each register-bearing
	// instruction sends at most once per run, so this buffer can never
	// fill and block the kernel.
	results := make(chan reg, observationCount(prog)+1)
	for ti, th := range prog.Threads {
		ti, th := ti, th
		// Deterministic per-thread perturbation derived from the seed.
		h := seed*2654435761 + uint32(ti)*40503 + 1
		stagger := int(h % 97)
		backoff := int(h/97%23) + 1
		r.Spawn(ti, fmt.Sprintf("t%d", ti), func(c *rt.Ctx) {
			c.SetCodeFootprint(1024)
			c.Compute(1 + stagger)
			// The effective program puts every write inside an explicit
			// entry/exit scope; bare reads run through an entry_ro pair,
			// which for word-sized objects adds no model ordering.
			open := map[string]bool{}
			for _, in := range th {
				switch in.Kind {
				case litmus.IWrite:
					c.Write32(objs[in.Loc], 0, uint32(in.Val))
				case litmus.IWriteBlock:
					w := prog.WidthOf(in.Loc)
					buf := make([]uint32, w)
					for k := range buf {
						buf[k] = uint32(in.Val) + uint32(k)
					}
					c.WriteBlock(objs[in.Loc], 0, buf)
				case litmus.IReadBlock:
					w := prog.WidthOf(in.Loc)
					buf := make([]uint32, w)
					if open[in.Loc] {
						c.ReadBlock(objs[in.Loc], 0, buf)
					} else {
						c.EntryRO(objs[in.Loc])
						c.ReadBlock(objs[in.Loc], 0, buf)
						c.ExitRO(objs[in.Loc])
					}
					if in.Reg != "" {
						for k, v := range buf {
							results <- reg{litmus.WordReg(in.Reg, k), v}
						}
					}
				case litmus.IRead:
					var v uint32
					if open[in.Loc] {
						v = c.Read32(objs[in.Loc], 0)
					} else {
						c.EntryRO(objs[in.Loc])
						v = c.Read32(objs[in.Loc], 0)
						c.ExitRO(objs[in.Loc])
					}
					if in.Reg != "" {
						results <- reg{in.Reg, v}
					}
				case litmus.IAcquire:
					c.EntryX(objs[in.Loc])
					open[in.Loc] = true
				case litmus.IRelease:
					c.ExitX(objs[in.Loc])
					delete(open, in.Loc)
				case litmus.IFence:
					if in.Loc != "" {
						c.FenceObj(objs[in.Loc])
					} else {
						c.Fence()
					}
				case litmus.IFlush:
					c.Flush(objs[in.Loc])
				case litmus.IAwaitEq:
					for {
						c.EntryRO(objs[in.Loc])
						v := c.Read32(objs[in.Loc], 0)
						c.ExitRO(objs[in.Loc])
						if v == uint32(in.Val) {
							if in.Reg != "" {
								results <- reg{in.Reg, v}
							}
							break
						}
						c.Compute(backoff)
					}
				}
			}
		})
	}
	if err := r.Run(); err != nil {
		return "", nil, err
	}
	close(results)
	regs := map[string]uint32{}
	for rv := range results {
		regs[rv.name] = rv.val
	}
	outcome := canonical(regs)
	if rec != nil {
		if err := rec.Err(); err != nil {
			return outcome, rec.Exec, err
		}
		return outcome, rec.Exec, nil
	}
	return outcome, nil, nil
}

// observationCount returns how many register observations a run can send
// (each observing instruction sends at most once per run; a block read
// sends one observation per word of its location).
func observationCount(p litmus.Program) int {
	n := 0
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Reg == "" {
				continue
			}
			if in.Kind == litmus.IReadBlock {
				n += p.WidthOf(in.Loc)
			} else {
				n++
			}
		}
	}
	return n
}

// canonical matches the litmus explorer's outcome rendering.
func canonical(regs map[string]uint32) string {
	if len(regs) == 0 {
		return "(no observations)"
	}
	keys := make([]string, 0, len(regs))
	for k := range regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, regs[k])
	}
	return strings.Join(parts, " ")
}

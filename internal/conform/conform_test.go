package conform

import (
	"testing"

	"pmc/internal/litmus"
	"pmc/internal/rt"
)

// TestAllBackendsConformOnCatalog is the headline conformance matrix:
// every cataloged litmus program, on every backend, under many timing
// perturbations, never produces an outcome the PMC model forbids.
func TestAllBackendsConformOnCatalog(t *testing.T) {
	progs := []string{
		"fig1-unsynchronized", "fig5-annotated", "fig5-no-acquire",
		"fig5-scoped-fence", "sb-bare", "sb-drf", "corr", "mutex-counter", "lb",
	}
	for _, backend := range rt.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, name := range progs {
				prog, ok := litmus.ByName(name)
				if !ok {
					t.Fatalf("program %s missing", name)
				}
				rep, err := Check(prog, backend, 4, 6)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !rep.Ok() {
					t.Errorf("%s", rep)
				}
			}
		})
	}
}

// TestAnnotatedProgramsAreDeterministic: for the fully annotated programs
// the model admits exactly one outcome, so every perturbed simulator run
// must produce it.
func TestAnnotatedProgramsAreDeterministic(t *testing.T) {
	for _, name := range []string{"fig5-annotated", "fig5-scoped-fence", "wrc-drf"} {
		prog, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("program %s missing", name)
		}
		for _, backend := range []string{"swcc", "dsm"} {
			rep, err := Check(prog, backend, 4, 8)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, backend, err)
			}
			if !rep.Ok() {
				t.Fatalf("%s", rep)
			}
			if len(rep.Observed) != 1 {
				t.Errorf("%s on %s: %d distinct outcomes, want 1 (%v)",
					name, backend, len(rep.Observed), rep.Observed)
			}
		}
	}
}

// TestPerturbationsExploreOutcomes: for a racy program the perturbed runs
// should reach more than one outcome on at least one backend — otherwise
// the conformance sampling is vacuous.
func TestPerturbationsExploreOutcomes(t *testing.T) {
	prog, _ := litmus.ByName("mutex-counter")
	distinct := map[string]bool{}
	for _, backend := range rt.Backends {
		rep, err := Check(prog, backend, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		for o := range rep.Observed {
			distinct[o] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("perturbation sweep found only %v — sampling too weak", distinct)
	}
}

// TestCheckRejectsTooFewTiles guards the API.
func TestCheckRejectsTooFewTiles(t *testing.T) {
	prog, _ := litmus.ByName("iriw") // 4 threads
	if _, err := Check(prog, "swcc", 2, 1); err == nil {
		t.Fatal("4 threads on 2 tiles not rejected")
	}
}

package conform

import (
	"testing"

	"pmc/internal/litmus"
	"pmc/internal/rt"
)

// TestAllBackendsConformOnCatalog is the headline conformance matrix:
// every cataloged litmus program, on every backend, under many timing
// perturbations, never produces an outcome the PMC model forbids.
func TestAllBackendsConformOnCatalog(t *testing.T) {
	progs := []string{
		"fig1-unsynchronized", "fig5-annotated", "fig5-no-acquire",
		"fig5-scoped-fence", "sb-bare", "sb-drf", "corr", "corw", "cowr",
		"mutex-counter", "lb", "iriw-3t", "mp-block",
	}
	for _, backend := range rt.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, name := range progs {
				prog, ok := litmus.ByName(name)
				if !ok {
					t.Fatalf("program %s missing", name)
				}
				rep, err := Check(prog, backend, 4, 6)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !rep.Ok() {
					t.Errorf("%s", rep)
				}
			}
		})
	}
}

// TestAnnotatedProgramsAreDeterministic: for the fully annotated programs
// the model admits exactly one outcome, so every perturbed simulator run
// must produce it.
func TestAnnotatedProgramsAreDeterministic(t *testing.T) {
	for _, name := range []string{"fig5-annotated", "fig5-scoped-fence", "wrc-drf"} {
		prog, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("program %s missing", name)
		}
		for _, backend := range []string{"swcc", "dsm"} {
			rep, err := Check(prog, backend, 4, 8)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, backend, err)
			}
			if !rep.Ok() {
				t.Fatalf("%s", rep)
			}
			if len(rep.Observed) != 1 {
				t.Errorf("%s on %s: %d distinct outcomes, want 1 (%v)",
					name, backend, len(rep.Observed), rep.Observed)
			}
		}
	}
}

// TestPerturbationsExploreOutcomes: for a racy program the perturbed runs
// should reach more than one outcome on at least one backend — otherwise
// the conformance sampling is vacuous.
func TestPerturbationsExploreOutcomes(t *testing.T) {
	prog, _ := litmus.ByName("mutex-counter")
	distinct := map[string]bool{}
	for _, backend := range rt.Backends {
		rep, err := Check(prog, backend, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		for o := range rep.Observed {
			distinct[o] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("perturbation sweep found only %v — sampling too weak", distinct)
	}
}

// TestSPMAnnotatedProgramsAreDeterministic mirrors
// TestAnnotatedProgramsAreDeterministic for the scratch-pad staging
// backend: copy-in/copy-out must preserve the single allowed outcome.
func TestSPMAnnotatedProgramsAreDeterministic(t *testing.T) {
	for _, name := range []string{"fig5-annotated", "fig5-scoped-fence", "wrc-drf"} {
		prog, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("program %s missing", name)
		}
		rep, err := Check(prog, "spm", 4, 8)
		if err != nil {
			t.Fatalf("%s on spm: %v", name, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s", rep)
		}
		if len(rep.Observed) != 1 {
			t.Errorf("%s on spm: %d distinct outcomes, want 1 (%v)",
				name, len(rep.Observed), rep.Observed)
		}
	}
}

// TestCheckSeedReproducible: the same base seed yields the same Observed
// map (bit-for-bit), and the seed is recorded in the report, so any
// violation line is reproducible from test output alone.
func TestCheckSeedReproducible(t *testing.T) {
	prog, _ := litmus.ByName("mutex-counter")
	opt := Options{Tiles: 4, Runs: 8, Seed: 12345}
	a, err := CheckOpts(prog, "swcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckOpts(prog, "swcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != 12345 || b.Seed != 12345 {
		t.Fatalf("seed not recorded: %d, %d", a.Seed, b.Seed)
	}
	if len(a.Observed) != len(b.Observed) {
		t.Fatalf("same seed, different outcome sets: %v vs %v", a.Observed, b.Observed)
	}
	for o, n := range a.Observed {
		if b.Observed[o] != n {
			t.Fatalf("same seed, different counts for %q: %d vs %d", o, n, b.Observed[o])
		}
	}
	// The historical schedule is seed 0: Check must keep matching it.
	c, err := Check(prog, "swcc", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := CheckOpts(prog, "swcc", Options{Tiles: 4, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 0 || len(c.Observed) != len(d.Observed) {
		t.Fatalf("Check does not match seed-0 CheckOpts: %v vs %v", c.Observed, d.Observed)
	}
}

// TestCheckSeedsShiftSampling: different base seeds perturb differently —
// across a spread of seeds the racy program must reach more than one
// outcome, otherwise the seed plumbing is dead.
func TestCheckSeedsShiftSampling(t *testing.T) {
	prog, _ := litmus.ByName("mutex-counter")
	distinct := map[string]bool{}
	for _, seed := range []int64{0, 1000, 2000, 3000} {
		rep, err := CheckOpts(prog, "nocc", Options{Tiles: 4, Runs: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for o := range rep.Observed {
			distinct[o] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("seed spread found only %v", distinct)
	}
}

// TestEffectiveProgram: bare writes get scope+flush wrapping, scoped
// accesses are untouched, and the rewrite is what reconciles the cowr
// shape (the executed program's lock ordering legitimately lets the
// writer re-read the remote value, which the bare model forbids).
func TestEffectiveProgram(t *testing.T) {
	p := litmus.Program{
		Name: "wrap",
		Locs: []string{"X", "Y"},
		Threads: []litmus.Thread{{
			litmus.Write("X", 1),                                           // bare: wrapped
			litmus.Acquire("Y"), litmus.Write("Y", 2), litmus.Release("Y"), // scoped: untouched
		}},
	}
	eff := EffectiveProgram(p)
	want := litmus.Thread{
		litmus.Acquire("X"), litmus.Write("X", 1), litmus.Flush("X"), litmus.Release("X"),
		litmus.Acquire("Y"), litmus.Write("Y", 2), litmus.Release("Y"),
	}
	if len(eff.Threads[0]) != len(want) {
		t.Fatalf("wrapped thread has %d instructions, want %d", len(eff.Threads[0]), len(want))
	}
	for i, in := range eff.Threads[0] {
		if in != want[i] {
			t.Fatalf("instruction %d: %+v, want %+v", i, in, want[i])
		}
	}

	// cowr: the bare model pins r1 to the thread's own write; the
	// effective model admits the remote value too. Only the latter is a
	// sound baseline for the executed program.
	cowr, _ := litmus.ByName("cowr")
	bare, err := litmus.Explore(cowr)
	if err != nil {
		t.Fatal(err)
	}
	effRes, err := litmus.Explore(EffectiveProgram(cowr))
	if err != nil {
		t.Fatal(err)
	}
	if bare.HasOutcome("r1=2") {
		t.Fatal("bare cowr model unexpectedly allows r1=2; Definition 12 changed?")
	}
	if !effRes.HasOutcome("r1=2") || !effRes.HasOutcome("r1=1") {
		t.Fatalf("effective cowr model missing outcomes: %v", effRes.OutcomeList())
	}
}

// TestCheckRejectsTooFewTiles guards the API.
func TestCheckRejectsTooFewTiles(t *testing.T) {
	prog, _ := litmus.ByName("iriw") // 4 threads
	if _, err := Check(prog, "swcc", 2, 1); err == nil {
		t.Fatal("4 threads on 2 tiles not rejected")
	}
}

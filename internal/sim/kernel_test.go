package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(10, func() { order = append(order, 3) }) // same time: schedule order
	k.Schedule(0, func() { order = append(order, 0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 10 {
		t.Fatalf("final time = %d, want 10", k.Now())
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := New()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		k.ScheduleAt(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcWait(t *testing.T) {
	k := New()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, fmt.Sprintf("a0@%d", p.Now()))
		p.Wait(3)
		trace = append(trace, fmt.Sprintf("a1@%d", p.Now()))
		p.Wait(4)
		trace = append(trace, fmt.Sprintf("a2@%d", p.Now()))
	})
	k.Spawn("b", func(p *Proc) {
		p.Wait(5)
		trace = append(trace, fmt.Sprintf("b0@%d", p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(trace, " ")
	want := "a0@0 a1@3 b0@5 a2@7"
	if got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestWaitZeroRunsPendingEventsFirst(t *testing.T) {
	k := New()
	var trace []string
	k.Spawn("p", func(p *Proc) {
		k.Schedule(0, func() { trace = append(trace, "event") })
		p.Wait(0)
		trace = append(trace, "after")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(trace, " "); got != "event after" {
		t.Fatalf("trace = %q, want %q", got, "event after")
	}
}

func TestParkUnpark(t *testing.T) {
	k := New()
	var got any
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		got = p.Park()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Wait(42)
		waiter.Unpark("hello")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("Park returned %v, want hello", got)
	}
	if k.Now() != 42 {
		t.Fatalf("final time %d, want 42", k.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error should name the blocked proc: %v", err)
	}
}

func TestWatchdog(t *testing.T) {
	k := New()
	k.MaxTime = 100
	k.Spawn("spinner", func(p *Proc) {
		for {
			p.Wait(10)
		}
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want watchdog", err)
	}
}

// TestMaxTimeBoundary is the MaxTime mirror of PR 1's MaxStates off-by-one
// regression test: a run whose last event lands exactly at MaxTime must
// complete successfully; only events strictly past the budget abort.
func TestMaxTimeBoundary(t *testing.T) {
	k := New()
	k.MaxTime = 100
	ran := false
	k.ScheduleAt(100, func() { ran = true })
	if err := k.Run(); err != nil {
		t.Fatalf("event at exactly MaxTime must complete, got: %v", err)
	}
	if !ran {
		t.Fatal("event at MaxTime did not run")
	}
	if k.Now() != 100 {
		t.Fatalf("final time %d, want 100", k.Now())
	}

	k = New()
	k.MaxTime = 100
	k.ScheduleAt(101, func() { t.Error("event past MaxTime must not run") })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want watchdog for event past MaxTime", err)
	}
}

// TestMaxTimeBoundaryProcess exercises the boundary through a process whose
// final wait lands exactly on the budget.
func TestMaxTimeBoundaryProcess(t *testing.T) {
	k := New()
	k.MaxTime = 50
	done := false
	k.Spawn("edge", func(p *Proc) {
		p.Wait(25)
		p.Wait(25) // finishes exactly at MaxTime
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatalf("process finishing at MaxTime must complete, got: %v", err)
	}
	if !done || k.Now() != 50 {
		t.Fatalf("done=%v now=%d, want true,50", done, k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New()
	n := 0
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			n++
			if n == 3 {
				k.Stop()
			}
			p.Wait(1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ran %d iterations, want 3", n)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := New()
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Wait(7)
		k.Spawn("child", func(c *Proc) {
			childTime = c.Now()
		})
		p.Wait(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 7 {
		t.Fatalf("child started at %d, want 7", childTime)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	bus := NewResource(k, "bus")
	type rec struct {
		who    string
		queued Time
		done   Time
	}
	var recs []rec
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("p%d", i)
		k.Spawn(name, func(p *Proc) {
			q := bus.Use(p, 10)
			recs = append(recs, rec{name, q, p.Now()})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// All requested at cycle 0; FIFO in spawn order.
	want := []rec{{"p0", 0, 10}, {"p1", 10, 20}, {"p2", 20, 30}}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("recs = %v, want %v", recs, want)
		}
	}
	if bus.BusyTime != 30 || bus.WaitTime != 30 || bus.Grants != 3 {
		t.Fatalf("stats: busy=%d wait=%d grants=%d", bus.BusyTime, bus.WaitTime, bus.Grants)
	}
}

func TestResourceIdleGap(t *testing.T) {
	k := New()
	bus := NewResource(k, "bus")
	k.Spawn("early", func(p *Proc) {
		bus.Use(p, 5)
	})
	k.Spawn("late", func(p *Proc) {
		p.Wait(100)
		q := bus.Use(p, 5)
		if q != 0 {
			t.Errorf("late requester queued %d cycles, want 0", q)
		}
		if p.Now() != 105 {
			t.Errorf("late done at %d, want 105", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceReserveWithoutProc(t *testing.T) {
	k := New()
	bus := NewResource(k, "bus")
	start, end := bus.Reserve(50, 10)
	if start != 50 || end != 60 {
		t.Fatalf("Reserve = (%d,%d), want (50,60)", start, end)
	}
	start, end = bus.Reserve(50, 10)
	if start != 60 || end != 70 {
		t.Fatalf("second Reserve = (%d,%d), want (60,70)", start, end)
	}
}

// TestDeterminism runs an irregular mix of processes twice and requires
// identical traces.
func TestDeterminism(t *testing.T) {
	run := func() string {
		k := New()
		bus := NewResource(k, "bus")
		var sb strings.Builder
		for i := 0; i < 8; i++ {
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				seed := uint64(p.ID()*2654435761 + 12345)
				for j := 0; j < 20; j++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					p.Wait(Time(seed % 7))
					bus.Use(p, Time(1+seed%5))
					fmt.Fprintf(&sb, "%s@%d;", p.Name(), p.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("two identical runs produced different traces")
	}
}

// Property: for any request sequence, resource reservations never overlap
// and are granted in nondecreasing start order.
func TestResourceNoOverlapProperty(t *testing.T) {
	prop := func(durs []uint8, gaps []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		k := New()
		r := NewResource(k, "r")
		type slot struct{ s, e Time }
		var slots []slot
		t0 := Time(0)
		for i, d := range durs {
			g := Time(0)
			if i < len(gaps) {
				g = Time(gaps[i] % 16)
			}
			t0 += g
			s, e := r.Reserve(t0, Time(d%16)+1)
			slots = append(slots, slot{s, e})
		}
		for i := 1; i < len(slots); i++ {
			if slots[i].s < slots[i-1].e {
				return false // overlap
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N processes each waiting a pseudo-random series of delays finish
// at exactly the sum of their delays (time advances exactly as requested).
func TestWaitSumProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		k := New()
		var finish Time
		k.Spawn("p", func(p *Proc) {
			for _, d := range delays {
				p.Wait(Time(d))
			}
			finish = p.Now()
		})
		if err := k.Run(); err != nil {
			return false
		}
		var sum Time
		for _, d := range delays {
			sum += Time(d)
		}
		return finish == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnparkPanics(t *testing.T) {
	k := New()
	var p *Proc
	p = k.Spawn("victim", func(pp *Proc) { pp.Wait(100) })
	k.Spawn("offender", func(q *Proc) {
		q.Wait(1)
		defer func() {
			if recover() == nil {
				t.Error("Unpark of non-parked proc did not panic")
			}
		}()
		p.Unpark(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitInPastPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("WaitUntil in the past did not panic")
			}
		}()
		p.Wait(10)
		p.WaitUntil(5)
	})
	_ = k.Run()
}

func TestProcAccessors(t *testing.T) {
	k := New()
	p := k.Spawn("alpha", func(p *Proc) {
		if p.Name() != "alpha" || p.ID() != 0 || p.Kernel() == nil {
			t.Error("accessors wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("proc not done after Run")
	}
}

package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// QueueKind selects the kernel's pending-event queue implementation. Both
// implementations dispatch events in exactly the same (time, seq) order, so
// a simulation's results are identical under either; the wheel is the
// default because its push/pop cost stays O(1)-ish as the event population
// grows with the tile count, where the binary heap's log n comparisons
// became the kernel bottleneck at 1024 processes.
type QueueKind uint8

const (
	// QueueWheel is the hierarchical timing wheel (the default).
	QueueWheel QueueKind = iota
	// QueueHeap is the binary-heap reference implementation, kept
	// selectable for differential testing and as the readable
	// specification of the dispatch order.
	QueueHeap
)

// String names the queue kind.
func (q QueueKind) String() string {
	if q == QueueHeap {
		return "heap"
	}
	return "wheel"
}

// ParseQueue converts a queue name ("wheel" or "heap") to a QueueKind.
func ParseQueue(s string) (QueueKind, error) {
	switch s {
	case "wheel":
		return QueueWheel, nil
	case "heap":
		return QueueHeap, nil
	}
	return 0, fmt.Errorf("sim: unknown event queue %q (valid: wheel, heap)", s)
}

// eventQueue is the kernel's pending-event store. Implementations must pop
// events in (at, seq) order; push is only ever called with at >= the last
// popped event's time (the kernel never schedules in the past).
type eventQueue interface {
	push(e *event)
	pop() *event // nil when empty
	// nextAt returns the earliest pending time without dequeuing.
	nextAt() (Time, bool)
	len() int
}

// heapQueue is the reference implementation: a plain binary heap ordered by
// (at, seq).
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(e *event) { heap.Push(&q.h, e) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) nextAt() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) len() int { return len(q.h) }

// Timing-wheel geometry: wheelLevels levels of wheelSlots slots. A level-0
// slot covers exactly one cycle; a level-l slot covers wheelSlots^l cycles.
// Together the levels span a 48-bit horizon above the current time; later
// events overflow to a side list and are folded back in when reached
// (simulated time advancing 2^48 cycles between events does not happen in
// practice, so the overflow path is a correctness backstop, not a hot path).
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 8
)

// wheelQueue is a hierarchical timing wheel. An event at time t is filed at
// the lowest level whose current window contains t — concretely, the lowest
// l where t and curr share the prefix above bit 6·(l+1) — in the slot
// indexed by bits [6·l, 6·(l+1)) of t. Prefix placement (rather than
// delta-from-now placement) is what preserves the (time, seq) dispatch
// order: a slot's events are redistributed to lower levels exactly when
// curr advances into the slot's window, which is before any later push can
// file directly into that window, so every per-slot list stays
// seq-ascending by construction and a plain append suffices.
//
// Only pop advances curr; peeking must not, because a push below an
// optimistically advanced curr would land in a slot the wheel never
// rescans. The kernel's WaitUntil fast path advances the clock without
// touching the wheel, which is safe: curr is a lower bound, not the clock.
type wheelQueue struct {
	curr Time // lower bound on every queued event's time
	n    int

	head [wheelLevels][wheelSlots]*event
	tail [wheelLevels][wheelSlots]*event
	occ  [wheelLevels]uint64 // per-slot occupancy bitmaps, one word per level

	// ovf holds events beyond the top level's window, in push (= seq)
	// order.
	ovf []*event

	// Cached earliest pending time for nextAt; pop invalidates, push
	// maintains.
	minAt    Time
	minValid bool
}

func (q *wheelQueue) len() int { return q.n }

func (q *wheelQueue) push(e *event) {
	if e.at < q.curr {
		panic(fmt.Sprintf("sim: wheel push at %d below floor %d", e.at, q.curr))
	}
	q.n++
	if q.minValid && e.at < q.minAt {
		q.minAt = e.at
	}
	q.place(e)
}

// place files e relative to curr. It is shared by push, cascade and the
// overflow rebase; it must never file an event at level l >= 1 into the
// slot containing curr (see the type comment), which holds because sharing
// the level-l slot index implies sharing the level-(l-1) window, so the
// placement loop would have stopped earlier.
func (q *wheelQueue) place(e *event) {
	lvl := 0
	for lvl < wheelLevels && (e.at>>(wheelBits*(lvl+1))) != (q.curr>>(wheelBits*(lvl+1))) {
		lvl++
	}
	if lvl == wheelLevels {
		e.next = nil
		q.ovf = append(q.ovf, e)
		return
	}
	slot := int(e.at>>(wheelBits*uint(lvl))) & wheelMask
	e.next = nil
	if q.tail[lvl][slot] == nil {
		q.head[lvl][slot] = e
		q.occ[lvl] |= 1 << uint(slot)
	} else {
		q.tail[lvl][slot].next = e
	}
	q.tail[lvl][slot] = e
}

// scan returns the first occupied slot index >= from at the given level.
func (q *wheelQueue) scan(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := q.occ[lvl] &^ (1<<uint(from) - 1)
	if word == 0 {
		return 0, false
	}
	return bits.TrailingZeros64(word), true
}

func (q *wheelQueue) pop() *event {
	if q.n == 0 {
		return nil
	}
	for {
		// All level-0 events share curr's window, and slots below
		// curr's index are in the past (already drained), so a scan
		// from curr's index finds the earliest.
		if slot, ok := q.scan(0, int(q.curr)&wheelMask); ok {
			e := q.head[0][slot]
			q.head[0][slot] = e.next
			if e.next == nil {
				q.tail[0][slot] = nil
				q.occ[0] &^= 1 << uint(slot)
				q.minValid = false
			} else {
				// A level-0 slot holds exactly one time, so the
				// remaining events share e.at: the min is known
				// without a rescan (this keeps the WaitUntil fast
				// path's nextAt O(1) in the common case).
				q.minAt, q.minValid = e.at, true
			}
			e.next = nil
			q.curr = e.at
			q.n--
			return e
		}
		q.advance()
	}
}

// advance moves curr forward to the next populated window: it finds the
// lowest level with an occupied slot ahead of curr, steps curr to that
// slot's window start, and redistributes the slot's events into lower
// levels (where the caller's level-0 rescan picks them up). With the whole
// wheel empty it rebases onto the overflow list.
func (q *wheelQueue) advance() {
	for lvl := 1; lvl < wheelLevels; lvl++ {
		// The slot containing curr is always already cascaded (place
		// never files into it), so scan strictly after it. Any
		// level-lvl event precedes every level-(lvl+1) event: the
		// former share curr's level-(lvl+1) window, the latter lie
		// beyond it.
		from := int(q.curr>>(wheelBits*uint(lvl)))&wheelMask + 1
		slot, ok := q.scan(lvl, from)
		if !ok {
			continue
		}
		shift := uint(wheelBits * lvl)
		q.curr = q.curr>>(shift+wheelBits)<<(shift+wheelBits) | Time(slot)<<shift
		e := q.head[lvl][slot]
		q.head[lvl][slot] = nil
		q.tail[lvl][slot] = nil
		q.occ[lvl] &^= 1 << uint(slot)
		for e != nil {
			next := e.next
			q.place(e)
			e = next
		}
		return
	}
	// The wheel proper is drained; everything pending sits past the top
	// level's window. Rebase the wheel at the overflow's earliest time
	// and refile (overflow events all exceed every in-wheel time, and
	// refiling in list order preserves per-slot seq order).
	if len(q.ovf) == 0 {
		panic("sim: timing wheel lost events")
	}
	min := q.ovf[0].at
	for _, e := range q.ovf[1:] {
		if e.at < min {
			min = e.at
		}
	}
	q.curr = min
	old := q.ovf
	q.ovf = nil
	for i, e := range old {
		old[i] = nil
		q.place(e)
	}
}

func (q *wheelQueue) nextAt() (Time, bool) {
	if q.minValid {
		return q.minAt, true
	}
	return q.nextAtSlow()
}

// nextAtSlow recomputes and caches the earliest pending time. It mirrors
// pop's search order, but without cascading and — crucially — without
// advancing curr.
func (q *wheelQueue) nextAtSlow() (Time, bool) {
	if q.n == 0 {
		return 0, false
	}
	if slot, ok := q.scan(0, int(q.curr)&wheelMask); ok {
		// A level-0 slot holds exactly one time: curr's window plus
		// the slot index.
		q.minAt = q.curr>>wheelBits<<wheelBits | Time(slot)
		q.minValid = true
		return q.minAt, true
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		from := int(q.curr>>(wheelBits*uint(lvl)))&wheelMask + 1
		slot, ok := q.scan(lvl, from)
		if !ok {
			continue
		}
		min := Forever
		for e := q.head[lvl][slot]; e != nil; e = e.next {
			if e.at < min {
				min = e.at
			}
		}
		q.minAt, q.minValid = min, true
		return min, true
	}
	min := Forever
	for _, e := range q.ovf {
		if e.at < min {
			min = e.at
		}
	}
	q.minAt, q.minValid = min, true
	return min, true
}

package sim

import (
	"fmt"
	"iter"
)

// Proc is a simulation process: a coroutine that advances simulated time by
// calling Wait and friends and otherwise runs instantaneously in simulated
// time. All Proc methods must be called from the process's own coroutine
// (inside the body passed to Spawn); Unpark is the one exception and may be
// called from anywhere inside the simulation.
//
// The one-token handshake with the kernel rides on iter.Pull coroutines
// rather than channel ping-pong: a coroutine switch transfers control
// directly without waking the Go scheduler, so a suspend/resume pair costs
// a function call instead of two futex-mediated goroutine wakeups — and,
// critically for parallel sweeps, concurrently running simulations stop
// migrating across Ps on every handoff. A panic inside a process body
// propagates out of Kernel.Run on the caller's goroutine, where batch
// engines can contain it.
type Proc struct {
	k    *Kernel
	id   int
	name string

	// next resumes the coroutine until its next yield (kernel side);
	// yield hands the token back to the kernel (process side).
	next  func() (struct{}, bool)
	yield func(struct{}) bool
	// resumeFn is the proc's reusable wake-up event body (one closure per
	// process instead of one per wait).
	resumeFn func()

	done   bool
	parked bool
	// unparkHint is set by Unpark and read back by Park so callers can
	// pass a small token (e.g. who woke us).
	unparkHint any
}

// ID returns the process's spawn-order index.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// start runs the body with the handshake protocol. Called by the kernel in
// an event context.
func (p *Proc) start(body func(*Proc)) {
	p.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		body(p)
	})
	p.k.resume(p)
}

// suspend schedules nothing; it just gives the token back and blocks until
// the kernel resumes this process.
func (p *Proc) suspend() {
	p.yield(struct{}{})
}

// Wait advances this process's view of time by d cycles. Wait(0) yields the
// processor: all events already scheduled for the current cycle run first.
func (p *Proc) Wait(d Time) {
	p.WaitUntil(p.k.now + d)
}

// WaitUntil blocks the process until absolute time t (>= now).
func (p *Proc) WaitUntil(t Time) {
	if p.done {
		panic("sim: WaitUntil on finished proc")
	}
	k := p.k
	if t < k.now {
		panic(fmt.Sprintf("sim: proc %q WaitUntil(%d) in the past (now %d)", p.name, t, k.now))
	}
	// Fast path: if no other event is due at or before t, the watchdog
	// cannot fire, and the kernel is not stopping, the token round-trip
	// through the kernel would deterministically hand control straight
	// back to this process with now == t — so advance time in place and
	// skip the two channel handoffs (and their goroutine switches). This
	// is exact, not approximate: no other goroutine can observe the
	// skipped window, because nothing is scheduled inside it.
	if !k.stopped && (k.MaxTime == 0 || t <= k.MaxTime) && !k.eventBefore(t) {
		k.now = t
		return
	}
	k.ScheduleAt(t, p.resumeFn)
	p.suspend()
}

// Park blocks the process indefinitely until another process or event calls
// Unpark. It returns the hint passed to Unpark. A process blocked in Park
// counts towards deadlock detection.
func (p *Proc) Park() any {
	if p.parked {
		panic(fmt.Sprintf("sim: proc %q parked twice", p.name))
	}
	p.parked = true
	p.k.parked++
	p.suspend()
	hint := p.unparkHint
	p.unparkHint = nil
	return hint
}

// Unpark schedules the parked process p to resume at the current time with
// the given hint. It panics if p is not parked; use IsParked to test.
// Unpark may be called from any event or process context.
func (p *Proc) Unpark(hint any) {
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked proc %q", p.name))
	}
	p.parked = false
	p.k.parked--
	p.unparkHint = hint
	p.k.ScheduleAt(p.k.now, p.resumeFn)
}

// IsParked reports whether the process is currently blocked in Park.
func (p *Proc) IsParked() bool { return p.parked }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

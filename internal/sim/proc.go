package sim

import "fmt"

// Proc is a simulation process: a goroutine that advances simulated time by
// calling Wait and friends and otherwise runs instantaneously in simulated
// time. All Proc methods must be called from the process's own goroutine
// (inside the body passed to Spawn); Unpark is the one exception and may be
// called from anywhere inside the simulation.
type Proc struct {
	k    *Kernel
	id   int
	name string
	wake chan struct{}

	done   bool
	parked bool
	// unparkHint is set by Unpark and read back by Park so callers can
	// pass a small token (e.g. who woke us).
	unparkHint any
}

// ID returns the process's spawn-order index.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// start runs the body with the handshake protocol. Called by the kernel in
// an event context.
func (p *Proc) start(body func(*Proc)) {
	go func() {
		defer func() {
			p.done = true
			p.k.live--
			// Return the token: the kernel is blocked in resume.
			p.k.yield <- struct{}{}
		}()
		// Wait for the kernel to hand us the token the first time.
		<-p.wake
		body(p)
	}()
	p.k.resume(p)
}

// suspend schedules nothing; it just gives the token back and blocks until
// the kernel resumes this process.
func (p *Proc) suspend() {
	p.k.yield <- struct{}{}
	<-p.wake
}

// Wait advances this process's view of time by d cycles. Wait(0) yields the
// processor: all events already scheduled for the current cycle run first.
func (p *Proc) Wait(d Time) {
	p.WaitUntil(p.k.now + d)
}

// WaitUntil blocks the process until absolute time t (>= now).
func (p *Proc) WaitUntil(t Time) {
	if p.done {
		panic("sim: WaitUntil on finished proc")
	}
	if t < p.k.now {
		panic(fmt.Sprintf("sim: proc %q WaitUntil(%d) in the past (now %d)", p.name, t, p.k.now))
	}
	p.k.ScheduleAt(t, func() { p.k.resume(p) })
	p.suspend()
}

// Park blocks the process indefinitely until another process or event calls
// Unpark. It returns the hint passed to Unpark. A process blocked in Park
// counts towards deadlock detection.
func (p *Proc) Park() any {
	if p.parked {
		panic(fmt.Sprintf("sim: proc %q parked twice", p.name))
	}
	p.parked = true
	p.k.parked++
	p.suspend()
	hint := p.unparkHint
	p.unparkHint = nil
	return hint
}

// Unpark schedules the parked process p to resume at the current time with
// the given hint. It panics if p is not parked; use IsParked to test.
// Unpark may be called from any event or process context.
func (p *Proc) Unpark(hint any) {
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked proc %q", p.name))
	}
	p.parked = false
	p.k.parked--
	p.unparkHint = hint
	p.k.ScheduleAt(p.k.now, func() { p.k.resume(p) })
}

// IsParked reports whether the process is currently blocked in Park.
func (p *Proc) IsParked() bool { return p.parked }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

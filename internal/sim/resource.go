package sim

// Resource models a mutually exclusive, FIFO-granted hardware resource such
// as a memory bus or a DMA engine, using reservation arithmetic rather than
// a server process: a request made at time t is serviced in the first free
// slot at or after t. Because the kernel dispatches activity in
// nondecreasing time order, reservations are made in nondecreasing request
// time and the model is exact for FIFO arbitration (ties between requests in
// the same cycle are granted in event order, which is deterministic).
type Resource struct {
	k        *Kernel
	name     string
	nextFree Time

	// Stats.
	Grants    uint64 // number of reservations
	BusyTime  Time   // cycles the resource spent in service
	WaitTime  Time   // cycles requesters spent queued before service
	LastGrant Time
}

// NewResource returns a free resource on kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Use reserves the resource for dur cycles on behalf of process p, blocking
// p until service completes. It returns the number of cycles p spent queued
// before service began (the contention component of its stall).
func (r *Resource) Use(p *Proc, dur Time) (queued Time) {
	start, end := r.Reserve(p.Now(), dur)
	queued = start - p.Now()
	p.WaitUntil(end)
	return queued
}

// Reserve books the first [start, start+dur) service slot at or after t
// without blocking anyone. It is used by hardware agents that have no
// process context (e.g. a lock unit flushing a cache during lock transfer).
func (r *Resource) Reserve(t Time, dur Time) (start, end Time) {
	start = t
	if r.nextFree > start {
		start = r.nextFree
	}
	end = start + dur
	r.nextFree = end
	r.Grants++
	r.BusyTime += dur
	r.WaitTime += start - t
	r.LastGrant = start
	return start, end
}

// FreeAt returns the earliest time a new request made now would begin
// service.
func (r *Resource) FreeAt() Time {
	if r.nextFree > r.k.now {
		return r.nextFree
	}
	return r.k.now
}

package sim

import (
	"fmt"
	"testing"
)

// TestQueueKindStrings pins the names ParseQueue accepts.
func TestQueueKindStrings(t *testing.T) {
	for _, tc := range []struct {
		s    string
		kind QueueKind
	}{{"wheel", QueueWheel}, {"heap", QueueHeap}} {
		got, err := ParseQueue(tc.s)
		if err != nil || got != tc.kind {
			t.Errorf("ParseQueue(%q) = %v, %v", tc.s, got, err)
		}
		if tc.kind.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", tc.kind, tc.kind.String(), tc.s)
		}
	}
	if _, err := ParseQueue("fifo"); err == nil {
		t.Error("ParseQueue accepted an unknown kind")
	}
}

// storm drives a kernel through a deterministic pseudo-random event storm —
// nested schedules, long jumps that cross wheel-level boundaries, clustered
// same-cycle events — and records the dispatch order as "time:id" strings.
func storm(kind QueueKind) []string {
	k := NewWithQueue(kind)
	var order []string
	rng := uint32(0x1234567)
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	id := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		n := int(next(4)) + 1
		for i := 0; i < n; i++ {
			id++
			myID := id
			var delay Time
			switch next(5) {
			case 0:
				delay = 0 // same cycle
			case 1:
				delay = Time(next(8)) // same level-0 window, mostly
			case 2:
				delay = Time(next(1 << 10)) // crosses level 0→1
			case 3:
				delay = Time(next(1 << 20)) // crosses level 1→2
			default:
				delay = Time(next(1 << 28)) // deep levels
			}
			d := depth
			k.Schedule(delay, func() {
				order = append(order, fmt.Sprintf("%d:%d", k.Now(), myID))
				if id < 4000 {
					schedule(d + 1)
				}
			})
		}
	}
	schedule(0)
	if err := k.Run(); err != nil {
		panic(err)
	}
	return order
}

// TestWheelMatchesHeapOrder is the kernel-level differential test: the
// timing wheel must dispatch a complex event storm in exactly the heap's
// (time, seq) order.
func TestWheelMatchesHeapOrder(t *testing.T) {
	want := storm(QueueHeap)
	got := storm(QueueWheel)
	if len(got) != len(want) {
		t.Fatalf("wheel dispatched %d events, heap %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverges at event %d: wheel %s, heap %s", i, got[i], want[i])
		}
	}
	if len(want) < 1000 {
		t.Fatalf("storm too small to be meaningful: %d events", len(want))
	}
}

// TestWheelSameTimestampOrder: events scheduled for one cycle must run in
// scheduling order, including events filed into an already-cascaded slot
// and events scheduled from within that cycle.
func TestWheelSameTimestampOrder(t *testing.T) {
	k := NewWithQueue(QueueWheel)
	var order []int
	at := Time(1000)
	for i := 0; i < 10; i++ {
		i := i
		k.ScheduleAt(at, func() { order = append(order, i) })
	}
	// A later time first, then more events back at `at` — the wheel must
	// keep them behind the earlier ones.
	k.ScheduleAt(at+5000, func() { order = append(order, 100) })
	for i := 10; i < 20; i++ {
		i := i
		k.ScheduleAt(at, func() {
			order = append(order, i)
			if i == 10 {
				// Scheduled mid-cycle: runs after everything already
				// filed for this cycle.
				k.ScheduleAt(at, func() { order = append(order, 50) })
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 50, 100}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, order, want)
		}
	}
}

// TestWheelMaxTime: the watchdog must fire on the first event strictly past
// MaxTime, and events exactly at MaxTime must still run — same boundary the
// heap kernel has always had.
func TestWheelMaxTime(t *testing.T) {
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		k := NewWithQueue(kind)
		k.MaxTime = 100
		ran := 0
		k.ScheduleAt(100, func() { ran++ })
		if err := k.Run(); err != nil {
			t.Fatalf("%v: event at MaxTime aborted: %v", kind, err)
		}
		if ran != 1 {
			t.Fatalf("%v: event at MaxTime did not run", kind)
		}
		k2 := NewWithQueue(kind)
		k2.MaxTime = 100
		k2.ScheduleAt(101, func() { t.Fatalf("%v: event past MaxTime ran", kind) })
		if err := k2.Run(); err == nil {
			t.Fatalf("%v: watchdog did not fire past MaxTime", kind)
		}
	}
}

// TestWheelMaxTimeFastPath: a process sleeping exactly to MaxTime completes;
// one cycle further aborts. Exercises the WaitUntil fast path against the
// wheel's nextAt.
func TestWheelMaxTimeFastPath(t *testing.T) {
	k := NewWithQueue(QueueWheel)
	k.MaxTime = 500
	k.Spawn("sleeper", func(p *Proc) { p.Wait(500) })
	if err := k.Run(); err != nil {
		t.Fatalf("sleep to MaxTime failed: %v", err)
	}
	if k.Now() != 500 {
		t.Fatalf("now = %d, want 500", k.Now())
	}
	k2 := NewWithQueue(QueueWheel)
	k2.MaxTime = 500
	k2.Spawn("sleeper", func(p *Proc) { p.Wait(501) })
	if err := k2.Run(); err == nil {
		t.Fatal("sleep past MaxTime not caught")
	}
}

// TestWheelOverflowHorizon: events beyond the wheel's 48-bit window must
// survive in the overflow list and come back in correct order.
func TestWheelOverflowHorizon(t *testing.T) {
	k := NewWithQueue(QueueWheel)
	var order []Time
	far := Time(1) << 50
	times := []Time{far + 3, 10, far, far + 3, 1 << 49, 2}
	for _, at := range times {
		at := at
		k.ScheduleAt(at, func() { order = append(order, at) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 10, 1 << 49, far, far + 3, far + 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("overflow order: got %v, want %v", order, want)
		}
	}
}

// TestWheelPeekDoesNotLoseEvents: nextAt must not advance the wheel. A
// process waits far ahead (peeking the queue on the way), then an event
// scheduled back near the present must still be dispatched.
func TestWheelPeekDoesNotLoseEvents(t *testing.T) {
	k := NewWithQueue(QueueWheel)
	hit := false
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(1 << 20) // fast path peeks nextAt
		k.Schedule(5, func() { hit = true })
		p.Wait(100000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("event scheduled after a long fast-path wait was lost")
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		for _, population := range []int{32, 1024} {
			b.Run(fmt.Sprintf("%v/%d", kind, population), func(b *testing.B) {
				k := NewWithQueue(kind)
				nop := func() {}
				for i := 0; i < population; i++ {
					k.qpush(&event{at: Time(i * 7), seq: k.seq, fn: nop})
					k.seq++
				}
				rng := uint32(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := k.qpop()
					rng ^= rng << 13
					rng ^= rng >> 17
					rng ^= rng << 5
					e.at += Time(rng % 1024)
					k.seq++
					e.seq = k.seq
					k.qpush(e)
				}
			})
		}
	}
}

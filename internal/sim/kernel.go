// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel models simulated time in integer cycles. Simulation activity is
// expressed either as scheduled events (closures that run at a given cycle)
// or as processes: coroutines (iter.Pull) that interleave with the kernel
// through a strict one-token handshake, so that exactly one execution
// context — the kernel or a single process — runs at any moment. Because
// events are dispatched in (time, sequence) order and processes only advance
// when resumed by the kernel, a simulation is fully deterministic: the same
// program produces the same event order, the same final state and the same
// cycle counts on every run, regardless of GOMAXPROCS. The coroutine
// handshake never touches the Go scheduler, so independent simulations in
// one address space scale across cores instead of thrashing each other with
// cross-P wakeups.
//
// The kernel is the substrate for the SoC model in internal/soc; it knows
// nothing about memories, caches or networks.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in simulated time, measured in cycles.
type Time uint64

// Forever is a time later than any reachable simulation time. Parked
// processes are conceptually waiting until Forever.
const Forever = Time(^uint64(0))

// event is a closure scheduled to run at a fixed cycle. Events with equal
// time run in scheduling order (seq).
type event struct {
	at  Time
	seq uint64
	fn  func()
	// next links events within one timing-wheel slot (unused by the
	// heap).
	next *event
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; call New.
type Kernel struct {
	now Time
	// Exactly one of wheel/heapq is non-nil (selected by NewWithQueue).
	// The kernel branches on the concrete type instead of holding an
	// eventQueue interface because the per-Wait queue peek is the hottest
	// load in the simulator and must stay inlinable — dynamic dispatch
	// there costs double-digit percent on whole-simulation time.
	wheel *wheelQueue
	heapq *heapQueue
	seq   uint64

	procs   []*Proc
	live    int // processes that have not finished
	parked  int // processes blocked in Park
	stopped bool

	// free recycles dispatched event structs: a simulation schedules one
	// event per process wait, and recycling keeps that hot path from
	// feeding the garbage collector (GC pacing, not CPU, was the scaling
	// limit for concurrent simulations).
	free []*event

	// MaxTime aborts the run when simulated time would pass it (a
	// watchdog against livelock in modelled software). Zero means no
	// limit.
	MaxTime Time
}

// New returns a ready-to-run kernel with the default event queue
// (QueueWheel).
func New() *Kernel {
	return NewWithQueue(QueueWheel)
}

// NewWithQueue returns a kernel using the selected event-queue
// implementation. Dispatch order — and therefore every simulation result —
// is identical across kinds; the choice only affects host performance.
func NewWithQueue(kind QueueKind) *Kernel {
	k := &Kernel{}
	if kind == QueueHeap {
		k.heapq = &heapQueue{}
	} else {
		k.wheel = &wheelQueue{}
	}
	return k
}

func (k *Kernel) qpush(e *event) {
	if k.wheel != nil {
		k.wheel.push(e)
	} else {
		k.heapq.push(e)
	}
}

func (k *Kernel) qpop() *event {
	if k.wheel != nil {
		return k.wheel.pop()
	}
	return k.heapq.pop()
}

func (k *Kernel) qlen() int {
	if k.wheel != nil {
		return k.wheel.len()
	}
	return k.heapq.len()
}

// eventBefore reports whether any pending event is scheduled at or before
// t. It is the WaitUntil fast-path check and inlines fully in the common
// cases (cached wheel minimum, or a heap peek).
func (k *Kernel) eventBefore(t Time) bool {
	if w := k.wheel; w != nil {
		if w.minValid {
			return w.minAt <= t
		}
		at, ok := w.nextAtSlow()
		return ok && at <= t
	}
	h := k.heapq.h
	return len(h) > 0 && h[0].at <= t
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn at the current time plus delay. Events scheduled for the
// same cycle run in the order they were scheduled.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t, which must not be in the past.
func (k *Kernel) ScheduleAt(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now %d)", t, k.now))
	}
	k.seq++
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
		e.at, e.seq, e.fn = t, k.seq, fn
	} else {
		e = &event{at: t, seq: k.seq, fn: fn}
	}
	k.qpush(e)
}

// Spawn creates a process running body in its own coroutine. The process
// starts at the current simulated time, after already-pending events for
// this cycle. Spawn may be called before Run or from inside a running
// process or event.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		k:    k,
		id:   len(k.procs),
		name: name,
	}
	p.resumeFn = func() { k.resume(p) }
	k.procs = append(k.procs, p)
	k.live++
	k.ScheduleAt(k.now, func() { p.start(body) })
	return p
}

// Procs returns all processes ever spawned, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }

// Run dispatches events until the event queue is empty or Stop is called.
// It returns an error on deadlock: the queue drained while unfinished
// processes remain parked.
func (k *Kernel) Run() error {
	for k.qlen() > 0 && !k.stopped {
		e := k.qpop()
		if k.MaxTime != 0 && e.at > k.MaxTime {
			return fmt.Errorf("sim: watchdog: time %d exceeds MaxTime %d", e.at, k.MaxTime)
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		k.free = append(k.free, e)
		fn()
	}
	if !k.stopped && k.live > 0 {
		return fmt.Errorf("sim: deadlock at cycle %d: %d process(es) still blocked: %s",
			k.now, k.live, k.blockedNames())
	}
	return nil
}

// Stop makes Run return after the current event completes. Remaining events
// are discarded. It is primarily useful from watchdog events and tests.
func (k *Kernel) Stop() { k.stopped = true }

func (k *Kernel) blockedNames() string {
	var names []string
	for _, p := range k.procs {
		if !p.done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// resume hands the run token to p and returns when p yields it back: a
// direct coroutine switch, no scheduler round-trip. It must only be called
// from the kernel's own goroutine (inside an event). When the process body
// returns, the coroutine is exhausted and the process is retired.
func (k *Kernel) resume(p *Proc) {
	if _, ok := p.next(); !ok && !p.done {
		p.done = true
		k.live--
	}
}

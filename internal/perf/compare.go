package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Compare semantics. Entries and metrics are matched by name between a
// baseline ("old") and a candidate ("new") report:
//
//   - exact metrics are compared exactly. Any drift — in either direction
//     — gates: a deterministic quantity that changed means the measured
//     computation itself changed, which must be acknowledged by
//     refreshing the committed baseline (see README "Performance
//     tracking"). The classification still records the direction
//     (lower = improved, higher = regressed).
//   - host metrics compare by a relative noise threshold on the minimum
//     over repetitions: new > old·(1+t) regresses, new < old·(1−t)
//     improves, anything in between is unchanged. Only regressions gate.
//   - an entry or metric present in the baseline but absent from the
//     candidate is missing (gates); present only in the candidate it is
//     added (informational).

// Classification classes.
const (
	ClassImproved  = "improved"
	ClassRegressed = "regressed"
	ClassUnchanged = "unchanged"
	ClassMissing   = "missing"
	ClassAdded     = "added"
)

// Delta is the comparison of one metric of one entry.
type Delta struct {
	Entry  string
	Metric string
	Old    float64
	New    float64
	// Pct is the relative change in percent (new vs old).
	Pct   float64
	Class string
	Exact bool
}

// gates reports whether this delta should fail a comparison: noisy
// regressions, anything missing, and exact metrics that changed in either
// direction.
func (d Delta) gates() bool {
	switch d.Class {
	case ClassRegressed, ClassMissing:
		return true
	case ClassImproved:
		return d.Exact // a changed deterministic metric needs a baseline refresh
	}
	return false
}

// Comparison is a completed report diff.
type Comparison struct {
	Threshold float64
	Deltas    []Delta
}

// Failures returns the deltas that gate (see Delta.gates).
func (c *Comparison) Failures() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.gates() {
			out = append(out, d)
		}
	}
	return out
}

// Ok reports a clean comparison: no regressions, nothing missing, no
// exact-metric drift.
func (c *Comparison) Ok() bool { return len(c.Failures()) == 0 }

// String renders the comparison as a table of changed metrics followed by
// a summary line; unchanged metrics are counted, not listed.
func (c *Comparison) String() string {
	var b strings.Builder
	unchanged := 0
	for _, d := range c.Deltas {
		if d.Class == ClassUnchanged {
			unchanged++
			continue
		}
		kind := ""
		if d.Exact {
			kind = " [exact]"
		}
		switch d.Class {
		case ClassMissing:
			fmt.Fprintf(&b, "  MISSING   %s %s%s (baseline %.6g)\n", d.Entry, d.Metric, kind, d.Old)
		case ClassAdded:
			fmt.Fprintf(&b, "  added     %s %s%s (%.6g)\n", d.Entry, d.Metric, kind, d.New)
		default:
			pct := ""
			if d.Old != 0 {
				pct = fmt.Sprintf(" (%+.1f%%)", d.Pct)
			}
			fmt.Fprintf(&b, "  %-9s %s %s%s: %.6g -> %.6g%s\n",
				d.Class, d.Entry, d.Metric, kind, d.Old, d.New, pct)
		}
	}
	fails := c.Failures()
	fmt.Fprintf(&b, "compared %d metrics (threshold %.0f%%): %d unchanged, %d gating failures\n",
		len(c.Deltas), c.Threshold*100, unchanged, len(fails))
	for _, d := range fails {
		reason := d.Class
		if d.Exact && d.Class != ClassMissing {
			reason = d.Class + ": exact metric changed (refresh the baseline if intentional)"
		}
		fmt.Fprintf(&b, "  FAIL %s %s: %s\n", d.Entry, d.Metric, reason)
	}
	return b.String()
}

// Compare diffs a candidate report against a baseline. threshold is the
// relative noise tolerance for host metrics (e.g. 0.10 = 10%). Reports
// with different schema versions cannot be compared.
func Compare(base, cand *Report, threshold float64) (*Comparison, error) {
	if base.Schema != cand.Schema {
		return nil, fmt.Errorf("perf: schema mismatch: baseline v%d vs candidate v%d", base.Schema, cand.Schema)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("perf: negative threshold %v", threshold)
	}
	c := &Comparison{Threshold: threshold}
	for i := range base.Entries {
		oe := &base.Entries[i]
		ne := cand.Entry(oe.Name)
		if ne == nil {
			c.Deltas = append(c.Deltas, Delta{Entry: oe.Name, Metric: "*", Class: ClassMissing})
			continue
		}
		for _, om := range oe.Metrics {
			nm := ne.Metric(om.Name)
			if nm == nil {
				c.Deltas = append(c.Deltas, Delta{
					Entry: oe.Name, Metric: om.Name, Old: om.Value,
					Class: ClassMissing, Exact: om.Exact,
				})
				continue
			}
			c.Deltas = append(c.Deltas, classify(oe.Name, om, *nm, threshold))
		}
		for _, nm := range ne.Metrics {
			if oe.Metric(nm.Name) == nil {
				c.Deltas = append(c.Deltas, Delta{
					Entry: oe.Name, Metric: nm.Name, New: nm.Value,
					Class: ClassAdded, Exact: nm.Exact,
				})
			}
		}
	}
	for i := range cand.Entries {
		if base.Entry(cand.Entries[i].Name) == nil {
			c.Deltas = append(c.Deltas, Delta{Entry: cand.Entries[i].Name, Metric: "*", Class: ClassAdded})
		}
	}
	return c, nil
}

// classify diffs one matched metric pair.
func classify(entry string, om, nm Metric, threshold float64) Delta {
	d := Delta{Entry: entry, Metric: om.Name, Old: om.Value, New: nm.Value, Exact: om.Exact || nm.Exact}
	if om.Value != 0 {
		d.Pct = 100 * (nm.Value - om.Value) / math.Abs(om.Value)
	}
	if d.Exact {
		switch {
		case nm.Value == om.Value:
			d.Class = ClassUnchanged
		case nm.Value < om.Value:
			d.Class = ClassImproved
		default:
			d.Class = ClassRegressed
		}
		return d
	}
	switch {
	case nm.Value > om.Value*(1+threshold):
		d.Class = ClassRegressed
	case nm.Value < om.Value*(1-threshold):
		d.Class = ClassImproved
	default:
		d.Class = ClassUnchanged
	}
	return d
}

// ParseThreshold accepts "10%" or "0.1" forms.
func ParseThreshold(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("perf: bad threshold %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("perf: negative threshold %q", s)
	}
	return v, nil
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads and validates a BENCH.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema == 0 {
		return nil, fmt.Errorf("perf: %s: missing schema version", path)
	}
	return &r, nil
}

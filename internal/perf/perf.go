// Package perf is the continuous-benchmarking subsystem: a structured
// benchmark runner that executes a declarative suite over the repo's
// layers — simulated workloads (apps × backends × tiles × topology),
// litmus exploration (tree vs memoized vs parallel engines) and seeded
// differential fuzz campaigns — and serializes the measurements to a
// versioned JSON schema that Compare can diff against a committed
// baseline.
//
// Every entry reports two families of metrics:
//
//   - exact metrics (sim-cycles, checksums, flit-hops, explored states,
//     outcome counts, campaign tallies): deterministic properties of the
//     seeded computation, identical on every machine and worker count.
//     Run asserts they agree across repetitions; Compare matches them
//     exactly, so any drift — faster or slower — is a semantic change
//     that must be acknowledged by refreshing the baseline;
//   - host metrics (ns/op, allocs/op, bytes/op): properties of the Go
//     implementation, measured over Reps repetitions and summarized as
//     min/median/stddev. Compare classifies them with a noise-aware
//     relative threshold (min is the comparable value — it is the least
//     noisy estimator of the true cost).
//
// The package is exported through pmc.BenchRun / pmc.BenchSpec /
// pmc.BenchCompare and driven by cmd/pmcbench.
package perf

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"pmc/internal/fuzz"
	"pmc/internal/litmus"
	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/workloads"
)

// Schema versions the BENCH.json layout. Compare refuses to diff reports
// with different schemas.
const Schema = 1

// SimBench measures one simulated workload run: app (workloads.ByName
// names) on backend with the given tile count and NoC topology.
type SimBench struct {
	App     string `json:"app"`
	Backend string `json:"backend"`
	Tiles   int    `json:"tiles"`
	Topo    string `json:"topo,omitempty"`  // "" = ring
	Small   bool   `json:"small,omitempty"` // CI-sized app configuration
}

// LitmusBench measures one exhaustive litmus exploration under a chosen
// engine configuration.
type LitmusBench struct {
	Prog string `json:"prog"`
	// Workers is the exploration goroutine count (0 = GOMAXPROCS,
	// 1 = sequential).
	Workers int `json:"workers"`
	// Memoize enables canonical-state deduplication. Workers=1 with
	// Memoize=false is the reference tree engine.
	Memoize bool `json:"memoize"`
	// MaxStates overrides the state budget (0 = explorer default).
	MaxStates int `json:"max_states,omitempty"`
	// Symmetry collapses automorphism-related states (requires Memoize);
	// outcomes and paths are unchanged, states shrinks by the orbit
	// factor.
	Symmetry bool `json:"symmetry,omitempty"`
}

// FuzzBench measures the throughput of a seeded differential fuzzing
// campaign. The campaign summary (unique programs, checks, violations) is
// worker-count-independent, so its tallies are exact metrics.
type FuzzBench struct {
	Seed     int64    `json:"seed"`
	N        int      `json:"n"`
	Mode     string   `json:"mode"`
	Backends []string `json:"backends,omitempty"` // nil = the paper's four
	Runs     int      `json:"runs,omitempty"`     // perturbed runs per pair
}

// Entry is one benchmark of a suite: exactly one of Sim, Litmus, Fuzz is
// set.
type Entry struct {
	Name   string       `json:"name"`
	Sim    *SimBench    `json:"sim,omitempty"`
	Litmus *LitmusBench `json:"litmus,omitempty"`
	Fuzz   *FuzzBench   `json:"fuzz,omitempty"`
}

// Spec declares a benchmark run.
type Spec struct {
	// Suite names the entry set (recorded in the report).
	Suite string
	// Reps is the number of timed repetitions per entry (0 = 5). Exact
	// metrics must agree across repetitions; host metrics are
	// aggregated over them.
	Reps int
	// Entries lists the benchmarks to run.
	Entries []Entry
	// Progress, if non-nil, receives one line per completed entry.
	Progress io.Writer
	// Lookup, if non-nil, is consulted before measuring an entry: a hit
	// serves the prior measurement (marked Cached) and skips the entry's
	// simulation entirely. The hit's exact metrics are guaranteed
	// identical to what a fresh run would produce — that is the
	// determinism property the whole cache rests on — while its host
	// timings are from the run that populated the cache. internal/pmcd
	// provides a content-addressed implementation (BenchCached).
	Lookup func(Entry) (*Measurement, bool)
	// Store, if non-nil, receives every freshly measured entry (cache
	// population; never called for Lookup hits).
	Store func(Entry, *Measurement)
}

// Metric is one named measurement of an entry. For exact metrics Value is
// the deterministic quantity; for host metrics Value is the minimum over
// repetitions, with Median and Stddev recording the spread.
type Metric struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Median float64 `json:"median,omitempty"`
	Stddev float64 `json:"stddev,omitempty"`
	Exact  bool    `json:"exact,omitempty"`
}

// Measurement is the measured result of one entry.
type Measurement struct {
	Name    string   `json:"name"`
	Reps    int      `json:"reps"`
	Metrics []Metric `json:"metrics"`
	// Cached marks a measurement served from a result cache (Spec.Lookup)
	// instead of fresh simulation. It is informational — Compare matches
	// metrics by name and value regardless — but keeps cache effectiveness
	// visible in the serialized report.
	Cached bool `json:"cached,omitempty"`
}

// Metric returns the named metric, or nil.
func (m *Measurement) Metric(name string) *Metric {
	for i := range m.Metrics {
		if m.Metrics[i].Name == name {
			return &m.Metrics[i]
		}
	}
	return nil
}

// Report is a completed benchmark run — the BENCH.json payload.
type Report struct {
	Schema    int           `json:"schema"`
	Suite     string        `json:"suite"`
	Reps      int           `json:"reps"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Entries   []Measurement `json:"entries"`
}

// Entry returns the named measurement, or nil.
func (r *Report) Entry(name string) *Measurement {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// validate rejects malformed specs before any benchmark runs.
func (s *Spec) validate() error {
	if len(s.Entries) == 0 {
		return fmt.Errorf("perf: empty suite")
	}
	seen := make(map[string]bool, len(s.Entries))
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Name == "" {
			return fmt.Errorf("perf: entry %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("perf: duplicate entry name %q", e.Name)
		}
		seen[e.Name] = true
		n := 0
		for _, set := range []bool{e.Sim != nil, e.Litmus != nil, e.Fuzz != nil} {
			if set {
				n++
			}
		}
		if n != 1 {
			return fmt.Errorf("perf: entry %q must set exactly one of sim/litmus/fuzz", e.Name)
		}
	}
	return nil
}

// Run executes every entry of the suite Reps times and returns the
// aggregated report. Exact metrics must be identical across repetitions;
// a mismatch is a determinism bug and fails the run.
func Run(spec Spec) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	reps := spec.Reps
	if reps <= 0 {
		reps = 5
	}
	rep := &Report{
		Schema:    Schema,
		Suite:     spec.Suite,
		Reps:      reps,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for i := range spec.Entries {
		e := spec.Entries[i]
		if spec.Lookup != nil {
			if m, ok := spec.Lookup(e); ok {
				hit := *m
				hit.Cached = true
				rep.Entries = append(rep.Entries, hit)
				if spec.Progress != nil {
					fmt.Fprintf(spec.Progress, "%-40s %12s  (cached)\n", hit.Name, "-")
				}
				continue
			}
		}
		m, err := measure(e, reps)
		if err != nil {
			return nil, err
		}
		if spec.Store != nil {
			spec.Store(e, m)
		}
		rep.Entries = append(rep.Entries, *m)
		if spec.Progress != nil {
			ns := m.Metric("ns/op")
			fmt.Fprintf(spec.Progress, "%-40s %12.0f ns/op  (%d reps)\n", m.Name, ns.Value, reps)
		}
	}
	return rep, nil
}

// measure times one entry reps times and folds the repetitions into a
// Measurement.
func measure(e Entry, reps int) (*Measurement, error) {
	var (
		nsSamples     []float64
		allocsSamples []float64
		bytesSamples  []float64
		exact         []Metric
	)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		ex, err := RunEntry(e)
		dt := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return nil, fmt.Errorf("perf: entry %s: %w", e.Name, err)
		}
		nsSamples = append(nsSamples, float64(dt.Nanoseconds()))
		allocsSamples = append(allocsSamples, float64(ms1.Mallocs-ms0.Mallocs))
		bytesSamples = append(bytesSamples, float64(ms1.TotalAlloc-ms0.TotalAlloc))
		if r == 0 {
			exact = ex
		} else if err := sameExact(exact, ex); err != nil {
			return nil, fmt.Errorf("perf: entry %s is non-deterministic across repetitions: %w", e.Name, err)
		}
	}
	m := &Measurement{Name: e.Name, Reps: reps}
	m.Metrics = append(m.Metrics, hostMetric("ns/op", nsSamples))
	m.Metrics = append(m.Metrics, hostMetric("allocs/op", allocsSamples))
	m.Metrics = append(m.Metrics, hostMetric("bytes/op", bytesSamples))
	if e.Fuzz != nil && e.Fuzz.N > 0 {
		perProg := make([]float64, len(nsSamples))
		for i, ns := range nsSamples {
			perProg[i] = ns / float64(e.Fuzz.N)
		}
		m.Metrics = append(m.Metrics, hostMetric("ns/program", perProg))
	}
	m.Metrics = append(m.Metrics, exact...)
	return m, nil
}

// sameExact verifies two exact-metric lists are identical.
func sameExact(a, b []Metric) error {
	if len(a) != len(b) {
		return fmt.Errorf("metric count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			return fmt.Errorf("%s: %v vs %v", a[i].Name, a[i].Value, b[i].Value)
		}
	}
	return nil
}

// hostMetric folds repetition samples into a noisy metric: Value is the
// minimum (the least noisy cost estimator), Median and Stddev record the
// spread.
func hostMetric(name string, samples []float64) Metric {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	m := Metric{Name: name, Value: sorted[0], Median: median(sorted)}
	if len(sorted) > 1 {
		mean := 0.0
		for _, v := range sorted {
			mean += v
		}
		mean /= float64(len(sorted))
		ss := 0.0
		for _, v := range sorted {
			ss += (v - mean) * (v - mean)
		}
		m.Stddev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return m
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// RunEntry executes one entry once and returns its exact metrics. It is
// the single execution path shared by Run and the Go benchmarks in
// bench_test.go (which wrap it in testing.B loops), so the magnitudes the
// two report can never diverge.
func RunEntry(e Entry) ([]Metric, error) {
	switch {
	case e.Sim != nil:
		return runSim(e.Sim)
	case e.Litmus != nil:
		return runLitmus(e.Litmus)
	case e.Fuzz != nil:
		return runFuzz(e.Fuzz)
	}
	return nil, fmt.Errorf("entry %q sets none of sim/litmus/fuzz", e.Name)
}

func runSim(sb *SimBench) ([]Metric, error) {
	app, ok := workloads.Scaled(sb.App, sb.Small)
	if !ok {
		return nil, fmt.Errorf("unknown app %q", sb.App)
	}
	cfg := soc.DefaultConfig()
	if sb.Tiles > 0 {
		cfg.Tiles = sb.Tiles
	}
	if sb.Topo != "" {
		topo, err := noc.ParseTopology(sb.Topo)
		if err != nil {
			return nil, err
		}
		cfg.NoC.Topology = topo
	}
	// Large entries outgrow the default memory map (its per-tile private
	// heaps stop at 48 tiles); the guard leaves every ≤32-tile entry — and
	// so every recorded baseline metric — untouched.
	if need := rt.MinSDRAMBytes(cfg.Tiles); need > cfg.SDRAMBytes {
		cfg.SDRAMBytes = need
	}
	res, err := workloads.Run(app, cfg, sb.Backend)
	if err != nil {
		return nil, err
	}
	ms := []Metric{
		{Name: "sim-cycles", Value: float64(res.Cycles), Exact: true},
		{Name: "flit-hops", Value: float64(res.FlitHops), Exact: true},
		{Name: "checksum", Value: float64(res.Checksum), Exact: true},
	}
	// Service workloads additionally gate on the exact tail-latency
	// metrics: any p50/p99 drift — a scheduling or protocol change
	// reaching request timing — fails the bench gate just like a
	// sim-cycles drift.
	if res.Service != nil {
		ms = append(ms,
			Metric{Name: "requests", Value: float64(res.Service.Completed), Exact: true},
			Metric{Name: "p50-latency", Value: float64(res.Service.P50()), Exact: true},
			Metric{Name: "p99-latency", Value: float64(res.Service.P99()), Exact: true},
		)
	}
	return ms, nil
}

func runLitmus(lb *LitmusBench) ([]Metric, error) {
	prog, ok := litmus.ByName(lb.Prog)
	if !ok {
		return nil, fmt.Errorf("unknown litmus program %q", lb.Prog)
	}
	x := litmus.NewExplorer(prog)
	x.Workers = lb.Workers
	x.Memoize = lb.Memoize
	x.Symmetry = lb.Symmetry
	if lb.MaxStates > 0 {
		x.MaxStates = lb.MaxStates
	}
	res, err := x.Run()
	if err != nil {
		return nil, err
	}
	paths := 0
	for _, n := range res.Outcomes {
		paths += n
	}
	return []Metric{
		{Name: "states", Value: float64(res.States), Exact: true},
		{Name: "outcomes", Value: float64(len(res.Outcomes)), Exact: true},
		{Name: "paths", Value: float64(paths), Exact: true},
		{Name: "stuck", Value: float64(res.Stuck), Exact: true},
	}, nil
}

func runFuzz(fb *FuzzBench) ([]Metric, error) {
	mode, err := fuzz.ParseMode(fb.Mode)
	if err != nil {
		return nil, err
	}
	sum, err := fuzz.Run(fuzz.Config{
		Seed:     fb.Seed,
		N:        fb.N,
		Gen:      fuzz.GenConfig{Mode: mode},
		Backends: fb.Backends,
		Runs:     fb.Runs,
	})
	if err != nil {
		return nil, err
	}
	return []Metric{
		{Name: "unique-programs", Value: float64(sum.Unique), Exact: true},
		{Name: "checked-pairs", Value: float64(sum.Checked), Exact: true},
		{Name: "violations", Value: float64(len(sum.Violations)), Exact: true},
	}, nil
}

// SimCycles is a convenience for the bench_test bridge: the sim-cycles
// exact metric of a measurement list (0 if absent — every real run has a
// positive makespan).
func SimCycles(metrics []Metric) sim.Time {
	for _, m := range metrics {
		if m.Name == "sim-cycles" {
			return sim.Time(m.Value)
		}
	}
	return 0
}

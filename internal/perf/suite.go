package perf

import (
	"fmt"
	"sort"
)

// Builtin suites. "ci" is small enough to run with repetitions inside a
// CI job yet still crosses every layer: the three SPLASH substitutes and
// the structured workloads at CI app sizes across the four backends, the
// three litmus engine modes on cataloged programs, and a seeded fuzz
// campaign. "full" is the paper-scale counterpart for local trajectory
// measurements.

func simE(name, app, backend string, tiles int, topo string, small bool) Entry {
	return Entry{Name: name, Sim: &SimBench{App: app, Backend: backend, Tiles: tiles, Topo: topo, Small: small}}
}

func lit(name, prog string, workers int, memoize bool) Entry {
	return Entry{Name: name, Litmus: &LitmusBench{Prog: prog, Workers: workers, Memoize: memoize}}
}

func litSym(name, prog string, workers int) Entry {
	return Entry{Name: name, Litmus: &LitmusBench{Prog: prog, Workers: workers, Memoize: true, Symmetry: true}}
}

func ciSuite() []Entry {
	var es []Entry
	// Sim: the Fig. 8 SPLASH substitutes on the coherence backends, the
	// Fig. 9 FIFO on DSM under both topologies, and the Fig. 10 motion
	// estimator on scratch-pad staging — all at CI app sizes, 8 tiles.
	for _, app := range []string{"radiosity", "raytrace", "volrend"} {
		for _, b := range []string{"nocc", "swcc"} {
			es = append(es, simE("sim/"+app+"/"+b+"/8t", app, b, 8, "", true))
		}
	}
	es = append(es,
		simE("sim/raytrace/dsm/8t", "raytrace", "dsm", 8, "", true),
		simE("sim/mfifo/dsm/8t/ring", "mfifo", "dsm", 8, "ring", true),
		simE("sim/mfifo/dsm/8t/mesh", "mfifo", "dsm", 8, "mesh", true),
		simE("sim/motionest/spm/8t", "motionest", "spm", 8, "", true),
		simE("sim/msgpass/swcc/4t", "msgpass", "swcc", 4, "", true),
	)
	// Bulk ablation: the word-granular (API v1) and block-granular (API
	// v2) bulkcopy twins on every backend — the exact sim-cycles pin both
	// sides of the word-vs-block comparison.
	for _, b := range []string{"nocc", "swcc", "dsm", "spm"} {
		es = append(es,
			simE("sim/bulkcopy-word/"+b+"/8t", "bulkcopy-word", b, 8, "", true),
			simE("sim/bulkcopy/"+b+"/8t", "bulkcopy", b, 8, "", true),
		)
	}
	// Clustered platform: the hierarchical topology at 64 tiles, pinning
	// the cluster-aware backends against flat dsm on the same shape.
	for _, b := range []string{"dsm", "cdsm", "cspm"} {
		es = append(es, simE("sim/radiosity/"+b+"/64t/c8xring", "radiosity", b, 64, "cluster:8xring", true))
	}
	es = append(es, simE("sim/mfifo/cdsm/16t/c4xmesh", "mfifo", "cdsm", 16, "cluster:4xmesh", true))
	// Litmus: the three engine modes on sb-drf (tree is the reference
	// semantics), the annotated Fig. 5 program, and the state-collapse
	// stress program that only the memoized engines can finish.
	es = append(es,
		lit("litmus/sb-drf/tree", "sb-drf", 1, false),
		lit("litmus/sb-drf/memo", "sb-drf", 1, true),
		lit("litmus/sb-drf/par", "sb-drf", 0, true),
		lit("litmus/fig5-annotated/memo", "fig5-annotated", 1, true),
		lit("litmus/stress-independent/par", "stress-independent", 0, true),
	)
	// Symmetry reduction on the iriw-class programs: states is the exact
	// orbit-collapsed count, outcomes/paths gate that the reduction stays
	// semantics-preserving.
	es = append(es,
		lit("litmus/iriw-sym3/memo", "iriw-sym3", 1, true),
		litSym("litmus/iriw-sym3/sym", "iriw-sym3", 1),
		litSym("litmus/iriw/sym", "iriw", 1),
	)
	// Adaptive routing: the migrating backend on a migratory app and a
	// streaming app — the sim-cycles pin both the policy's decisions and
	// the migration mechanics.
	es = append(es,
		simE("sim/raytrace/adaptive/8t", "raytrace", "adaptive", 8, "", true),
		simE("sim/bulkcopy/adaptive/8t", "bulkcopy", "adaptive", 8, "", true),
	)
	// Fuzz: a short seeded differential campaign over all four backends,
	// and one with per-object placement (the "mixed" pseudo-backend).
	es = append(es, Entry{Name: "fuzz/mixed/seed1/n50", Fuzz: &FuzzBench{Seed: 1, N: 50, Mode: "mixed", Runs: 2}})
	es = append(es, Entry{Name: "fuzz/placed/seed2/n50", Fuzz: &FuzzBench{Seed: 2, N: 50, Mode: "drf", Backends: []string{"nocc", "mixed"}, Runs: 2}})
	// Open-loop services: the first latency-gated entries — their exact
	// metrics include requests and p50/p99 simulated latency, so any
	// tail-latency drift fails the gate.
	es = append(es,
		simE("sim/server/nocc/8t", "server", "nocc", 8, "", true),
		simE("sim/server/dsm/8t", "server", "dsm", 8, "", true),
		simE("sim/server/adaptive/8t", "server", "adaptive", 8, "", true),
		simE("sim/kvstore/dsm/8t", "kvstore", "dsm", 8, "", true),
		simE("sim/kvstore/cdsm/16t/c4xring", "kvstore", "cdsm", 16, "cluster:4xring", true),
		simE("sim/stream/dsm/8t", "stream", "dsm", 8, "", true),
	)
	return es
}

func fullSuite() []Entry {
	var es []Entry
	// Paper-scale sims: the Fig. 8 comparison on the evaluation system.
	for _, app := range []string{"radiosity", "raytrace", "volrend"} {
		for _, b := range []string{"nocc", "swcc"} {
			es = append(es, simE("sim/"+app+"/"+b+"/32t", app, b, 32, "", false))
		}
	}
	for _, b := range []string{"nocc", "swcc", "dsm", "spm"} {
		es = append(es, simE("sim/mfifo/"+b+"/32t", "mfifo", b, 32, "", false))
	}
	es = append(es,
		simE("sim/motionest/spm/32t", "motionest", "spm", 32, "", false),
		simE("sim/mfifo/dsm/16t/mesh", "mfifo", "dsm", 16, "mesh", false),
	)
	for _, b := range []string{"nocc", "swcc", "dsm", "spm"} {
		es = append(es,
			simE("sim/bulkcopy-word/"+b+"/32t", "bulkcopy-word", b, 32, "", false),
			simE("sim/bulkcopy/"+b+"/32t", "bulkcopy", b, 32, "", false),
		)
	}
	for _, b := range []string{"dsm", "cdsm", "cspm"} {
		es = append(es, simE("sim/radiosity/"+b+"/256t/c16xmesh", "radiosity", b, 256, "cluster:16xmesh", false))
	}
	es = append(es, simE("sim/radiosity/cdsm/1024t/c32xmesh", "radiosity", "cdsm", 1024, "cluster:32xmesh", false))
	es = append(es,
		lit("litmus/wrc-drf/tree", "wrc-drf", 1, false),
		lit("litmus/wrc-drf/memo", "wrc-drf", 1, true),
		lit("litmus/wrc-drf/par", "wrc-drf", 0, true),
		lit("litmus/iriw-3t/memo", "iriw-3t", 1, true),
		lit("litmus/stress-independent/par", "stress-independent", 0, true),
	)
	es = append(es,
		lit("litmus/iriw-sym3/memo", "iriw-sym3", 1, true),
		litSym("litmus/iriw-sym3/sym", "iriw-sym3", 0),
		litSym("litmus/iriw/sym", "iriw", 0),
	)
	es = append(es,
		simE("sim/raytrace/adaptive/32t", "raytrace", "adaptive", 32, "", false),
		simE("sim/motionest/adaptive/32t", "motionest", "adaptive", 32, "", false),
	)
	es = append(es, Entry{Name: "fuzz/mixed/seed1/n300", Fuzz: &FuzzBench{Seed: 1, N: 300, Mode: "mixed", Runs: 3}})
	es = append(es, Entry{Name: "fuzz/placed/seed2/n300", Fuzz: &FuzzBench{Seed: 2, N: 300, Mode: "drf", Backends: []string{"nocc", "mixed"}, Runs: 3}})
	// Paper-scale open-loop services with latency-gated exact metrics.
	es = append(es,
		simE("sim/server/nocc/32t", "server", "nocc", 32, "", false),
		simE("sim/server/dsm/32t", "server", "dsm", 32, "", false),
		simE("sim/server/adaptive/32t", "server", "adaptive", 32, "", false),
		simE("sim/kvstore/dsm/32t", "kvstore", "dsm", 32, "", false),
		simE("sim/kvstore/cdsm/64t/c8xring", "kvstore", "cdsm", 64, "cluster:8xring", false),
		simE("sim/stream/dsm/32t", "stream", "dsm", 32, "", false),
	)
	return es
}

var suites = map[string]func() []Entry{
	"ci":   ciSuite,
	"full": fullSuite,
}

// Suites lists the builtin suite names.
func Suites() []string {
	names := make([]string, 0, len(suites))
	for n := range suites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Suite returns a Spec for the named builtin suite.
func Suite(name string) (Spec, error) {
	mk, ok := suites[name]
	if !ok {
		return Spec{}, fmt.Errorf("perf: unknown suite %q (have %v)", name, Suites())
	}
	return Spec{Suite: name, Entries: mk()}, nil
}

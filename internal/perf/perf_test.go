package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestSuites: every builtin suite validates and names entries uniquely.
func TestSuites(t *testing.T) {
	names := Suites()
	if len(names) == 0 {
		t.Fatal("no builtin suites")
	}
	for _, name := range names {
		spec, err := Suite(name)
		if err != nil {
			t.Fatalf("Suite(%q): %v", name, err)
		}
		if err := spec.validate(); err != nil {
			t.Errorf("suite %s: %v", name, err)
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (&Spec{}).validate(); err == nil {
		t.Error("empty suite accepted")
	}
	dup := Spec{Entries: []Entry{
		{Name: "a", Litmus: &LitmusBench{Prog: "sb-drf"}},
		{Name: "a", Litmus: &LitmusBench{Prog: "sb-drf"}},
	}}
	if err := dup.validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names: got %v", err)
	}
	both := Spec{Entries: []Entry{{
		Name:   "b",
		Litmus: &LitmusBench{Prog: "sb-drf"},
		Fuzz:   &FuzzBench{Seed: 1, N: 1, Mode: "drf"},
	}}}
	if err := both.validate(); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("two kinds: got %v", err)
	}
}

// TestBenchRunDeterministic: two full runs of the ci suite produce
// identical exact metrics — sim-cycles, checksums, states, campaign
// tallies — for every entry. (Within one run, measure() already asserts
// rep-to-rep agreement; this asserts run-to-run agreement, the property
// the CI gate's exact comparison against a committed baseline relies on.)
func TestBenchRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full ci suite twice")
	}
	spec, err := Suite("ci")
	if err != nil {
		t.Fatal(err)
	}
	spec.Reps = 1
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(spec.Entries) || len(b.Entries) != len(spec.Entries) {
		t.Fatalf("entry counts: %d, %d, want %d", len(a.Entries), len(b.Entries), len(spec.Entries))
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if ea.Name != eb.Name {
			t.Fatalf("entry order diverged: %s vs %s", ea.Name, eb.Name)
		}
		exacts := 0
		for _, ma := range ea.Metrics {
			if !ma.Exact {
				continue
			}
			exacts++
			mb := eb.Metric(ma.Name)
			if mb == nil {
				t.Errorf("%s: metric %s missing from second run", ea.Name, ma.Name)
				continue
			}
			if ma.Value != mb.Value {
				t.Errorf("%s: %s = %v vs %v across runs", ea.Name, ma.Name, ma.Value, mb.Value)
			}
		}
		if exacts == 0 {
			t.Errorf("%s: no exact metrics", ea.Name)
		}
	}
	// The two reports must also compare clean under the exact gate (with
	// an unbounded host-noise threshold).
	cmp, err := Compare(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Ok() {
		t.Errorf("self-comparison gated:\n%s", cmp)
	}
}

// TestServiceEntriesLatencyGated: service-workload entries must emit the
// tail-latency metrics as exact (gated), kernels must not, and both
// builtin suites must contain latency-gated entries.
func TestServiceEntriesLatencyGated(t *testing.T) {
	ms, err := RunEntry(simE("e", "server", "dsm", 8, "", true))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Metric{}
	for _, m := range ms {
		got[m.Name] = m
	}
	for _, name := range []string{"requests", "p50-latency", "p99-latency"} {
		m, ok := got[name]
		if !ok {
			t.Fatalf("service entry missing metric %s (have %v)", name, ms)
		}
		if !m.Exact || m.Value <= 0 {
			t.Errorf("metric %s: exact=%v value=%v, want gated positive", name, m.Exact, m.Value)
		}
	}
	if got["p50-latency"].Value > got["p99-latency"].Value {
		t.Errorf("p50 %v > p99 %v", got["p50-latency"].Value, got["p99-latency"].Value)
	}
	kernel, err := RunEntry(simE("k", "radiosity", "nocc", 4, "", true))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range kernel {
		if m.Name == "p50-latency" {
			t.Error("kernel entry emits latency metrics")
		}
	}
	for _, suite := range []string{"ci", "full"} {
		spec, err := Suite(suite)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range spec.Entries {
			if e.Sim != nil && (e.Sim.App == "server" || e.Sim.App == "kvstore" || e.Sim.App == "stream") {
				n++
			}
		}
		if n == 0 {
			t.Errorf("suite %s has no latency-gated service entries", suite)
		}
	}
}

// report builds a one-entry report for the Compare table test.
func report(metrics ...Metric) *Report {
	return &Report{
		Schema:  Schema,
		Suite:   "t",
		Entries: []Measurement{{Name: "e", Reps: 1, Metrics: metrics}},
	}
}

func TestCompareClassification(t *testing.T) {
	cases := []struct {
		name      string
		old, new  Metric
		threshold float64
		class     string
		gates     bool
	}{
		{"host-unchanged-within-threshold", Metric{Name: "ns/op", Value: 100}, Metric{Name: "ns/op", Value: 109}, 0.10, ClassUnchanged, false},
		{"host-improved", Metric{Name: "ns/op", Value: 100}, Metric{Name: "ns/op", Value: 50}, 0.10, ClassImproved, false},
		{"host-regressed", Metric{Name: "ns/op", Value: 100}, Metric{Name: "ns/op", Value: 150}, 0.10, ClassRegressed, true},
		{"exact-unchanged", Metric{Name: "sim-cycles", Value: 42, Exact: true}, Metric{Name: "sim-cycles", Value: 42, Exact: true}, 0.10, ClassUnchanged, false},
		{"exact-lower-gates", Metric{Name: "sim-cycles", Value: 42, Exact: true}, Metric{Name: "sim-cycles", Value: 41, Exact: true}, 0.10, ClassImproved, true},
		{"exact-higher-gates", Metric{Name: "sim-cycles", Value: 42, Exact: true}, Metric{Name: "sim-cycles", Value: 43, Exact: true}, 0.10, ClassRegressed, true},
		{"exact-tiny-drift-gates", Metric{Name: "states", Value: 1000, Exact: true}, Metric{Name: "states", Value: 1001, Exact: true}, 10, ClassRegressed, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmp, err := Compare(report(tc.old), report(tc.new), tc.threshold)
			if err != nil {
				t.Fatal(err)
			}
			if len(cmp.Deltas) != 1 {
				t.Fatalf("deltas = %d, want 1", len(cmp.Deltas))
			}
			d := cmp.Deltas[0]
			if d.Class != tc.class {
				t.Errorf("class = %s, want %s", d.Class, tc.class)
			}
			if got := len(cmp.Failures()) > 0; got != tc.gates {
				t.Errorf("gates = %v, want %v", got, tc.gates)
			}
			if cmp.Ok() == tc.gates {
				t.Errorf("Ok() = %v with gates = %v", cmp.Ok(), tc.gates)
			}
		})
	}
}

func TestCompareMissingAndAdded(t *testing.T) {
	base := report(
		Metric{Name: "ns/op", Value: 100},
		Metric{Name: "sim-cycles", Value: 42, Exact: true},
	)
	cand := report(
		Metric{Name: "ns/op", Value: 100},
		Metric{Name: "allocs/op", Value: 5},
	)
	cmp, err := Compare(base, cand, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var classes []string
	for _, d := range cmp.Deltas {
		classes = append(classes, d.Metric+":"+d.Class)
	}
	want := []string{"ns/op:unchanged", "sim-cycles:missing", "allocs/op:added"}
	if strings.Join(classes, " ") != strings.Join(want, " ") {
		t.Errorf("deltas = %v, want %v", classes, want)
	}
	if cmp.Ok() {
		t.Error("missing exact metric did not gate")
	}

	// A whole entry missing from the candidate gates; a new entry in the
	// candidate does not.
	extra := &Report{Schema: Schema, Entries: []Measurement{
		{Name: "e", Metrics: []Metric{{Name: "ns/op", Value: 100}}},
		{Name: "extra", Metrics: []Metric{{Name: "ns/op", Value: 1}}},
	}}
	cmp, err = Compare(report(Metric{Name: "ns/op", Value: 100}), extra, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Ok() {
		t.Errorf("added entry gated:\n%s", cmp)
	}
	cmp, err = Compare(extra, report(Metric{Name: "ns/op", Value: 100}), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ok() {
		t.Error("missing entry did not gate")
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	a := report(Metric{Name: "ns/op", Value: 1})
	b := report(Metric{Name: "ns/op", Value: 1})
	b.Schema = Schema + 1
	if _, err := Compare(a, b, 0.1); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch: got %v", err)
	}
	if _, err := Compare(a, b, -1); err == nil {
		// threshold validation is independent of schema, but any error is fine
		t.Error("negative threshold accepted")
	}
}

func TestParseThreshold(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		err  bool
	}{
		{"10%", 0.10, false},
		{"0.1", 0.1, false},
		{"400%", 4.0, false},
		{"0", 0, false},
		{"-5%", 0, true},
		{"x", 0, true},
	} {
		got, err := ParseThreshold(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseThreshold(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("ParseThreshold(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestReportRoundTrip: WriteJSON output reloads to an equal report, and a
// report without a schema version is rejected.
func TestReportRoundTrip(t *testing.T) {
	r := report(
		Metric{Name: "ns/op", Value: 123, Median: 130, Stddev: 4},
		Metric{Name: "sim-cycles", Value: 42, Exact: true},
	)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/bench.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(r)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip changed the report:\n%s\nvs\n%s", a, b)
	}

	if err := os.WriteFile(path, []byte(`{"suite":"t"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema-less report: got %v", err)
	}
}

func TestHostMetricAggregation(t *testing.T) {
	m := hostMetric("ns/op", []float64{30, 10, 20})
	if m.Value != 10 || m.Median != 20 {
		t.Errorf("min/median = %v/%v, want 10/20", m.Value, m.Median)
	}
	if m.Stddev != 10 {
		t.Errorf("stddev = %v, want 10", m.Stddev)
	}
	one := hostMetric("ns/op", []float64{7})
	if one.Value != 7 || one.Median != 7 || one.Stddev != 0 {
		t.Errorf("single sample: %+v", one)
	}
}

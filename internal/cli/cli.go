// Package cli holds the shared error-exit convention of the pmc commands:
// a bad flag value prints the message and the flag usage and exits 2 (the
// flag package's own convention for unparseable flags); runtime failures
// — an exploration error, a gated benchmark comparison — exit 1.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// UsageError marks a bad flag value; Fail prints usage and exits 2 for it.
type UsageError struct{ Err error }

func (e UsageError) Error() string { return e.Err.Error() }

// Unwrap keeps errors.Is/As working through the marker.
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return UsageError{Err: fmt.Errorf(format, args...)}
}

// Fail reports err prefixed with the command name and exits: 2 with the
// flag usage for UsageError values, 1 otherwise.
func Fail(cmd string, err error) {
	fmt.Fprintln(os.Stderr, cmd+":", err)
	var ue UsageError
	if errors.As(err, &ue) {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(1)
}

package core

import (
	"fmt"
	"strings"
)

// Rule is one populated cell of the paper's Table I: when an operation of
// kind New executes, an edge of kind Ord is added from every earlier
// operation matching (Earlier, proc, loc) to the new operation.
//
// Matching scope:
//   - process: the earlier operation must be by the same process, except
//     when AnyProc is set (the table's footnote: "an acquire has its
//     ordering ≺S on (R, ∗, v, ∗), not just on releases of the same
//     process");
//   - location: the earlier operation must be on the same location, except
//     when either side is a fence (fences span locations, Definition 8).
type Rule struct {
	Earlier Kind
	New     Kind
	Ord     Ord
	AnyProc bool
}

// TableI is the ordering-rule table (paper Table I). It is the single
// source of truth: Execution.Exec applies exactly these rules, and
// RenderTableI prints them in the paper's layout for visual comparison.
//
// The reconstruction of two OCR-ambiguous cells — (write→fence) = ≺ℓ and
// the fence row populating the w/R/A columns — follows the prose of
// Section IV-C and the edge labels of Figs. 4, 5 and 9; see DESIGN.md §4.
var TableI = []Rule{
	// Earlier read (r, p, v, *):
	{Earlier: KRead, New: KWrite, Ord: OrdLocal},
	{Earlier: KRead, New: KRelease, Ord: OrdLocal},
	{Earlier: KRead, New: KAcquire, Ord: OrdLocal},
	{Earlier: KRead, New: KFence, Ord: OrdLocal},

	// Earlier write (w, p, v, *):
	{Earlier: KWrite, New: KRead, Ord: OrdLocal},
	{Earlier: KWrite, New: KWrite, Ord: OrdProgram},
	{Earlier: KWrite, New: KRelease, Ord: OrdProgram},
	{Earlier: KWrite, New: KFence, Ord: OrdLocal},

	// Earlier acquire (A, p, v, *):
	{Earlier: KAcquire, New: KRead, Ord: OrdLocal},
	{Earlier: KAcquire, New: KWrite, Ord: OrdProgram},
	{Earlier: KAcquire, New: KRelease, Ord: OrdProgram},
	{Earlier: KAcquire, New: KFence, Ord: OrdFence},

	// Earlier release (R, *, v, *) — the ≺S rule crosses processes:
	{Earlier: KRelease, New: KAcquire, Ord: OrdSync, AnyProc: true},
	{Earlier: KRelease, New: KFence, Ord: OrdFence},

	// Earlier fence (F, p, *, *):
	{Earlier: KFence, New: KWrite, Ord: OrdFence},
	{Earlier: KFence, New: KRelease, Ord: OrdFence},
	{Earlier: KFence, New: KAcquire, Ord: OrdFence},
}

// RulesFor returns the Table I rules triggered by a new operation of kind k.
func RulesFor(k Kind) []Rule {
	var out []Rule
	for _, r := range TableI {
		if r.New == k {
			out = append(out, r)
		}
	}
	return out
}

// RenderTableI prints the rule table in the paper's row/column layout.
func RenderTableI() string {
	cols := []Kind{KRead, KWrite, KRelease, KAcquire, KFence}
	rows := []struct {
		kind    Kind
		pattern string
	}{
		{KRead, "read    (r, p, v, *)"},
		{KWrite, "write   (w, p, v, *)"},
		{KAcquire, "acquire (A, p, v, *)"},
		{KRelease, "release (R, p, v, *)"},
		{KFence, "fence   (F, p, *, *)"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "existing \\ new")
	for _, c := range cols {
		fmt.Fprintf(&b, "%6s", c)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.pattern)
		for _, c := range cols {
			cell := "     -"
			for _, r := range TableI {
				if r.Earlier == row.kind && r.New == c {
					cell = fmt.Sprintf("%6s", r.Ord)
					if r.AnyProc {
						cell = fmt.Sprintf("%6s", r.Ord.String()+"†")
					}
				}
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	b.WriteString("† matches releases of the location by any process\n")
	return b.String()
}

package core

import (
	"reflect"
	"testing"
)

// buildHistories returns a set of executions with varied shapes: races,
// locked sections, fences, multiple locations and processes.
func buildHistories() map[string]*Execution {
	hs := make(map[string]*Execution)

	e := NewExecution()
	x := e.AddLoc("X")
	f := e.AddLoc("flag")
	e.Write(0, x, 42)
	e.Write(0, f, 1)
	e.Read(1, f, 1)
	hs["fig1-racy"] = e

	e = NewExecution()
	x = e.AddLoc("X")
	f = e.AddLoc("f")
	e.Acquire(0, x)
	e.Write(0, x, 42)
	e.Fence(0)
	e.Release(0, x)
	e.Write(0, f, 1)
	e.Read(1, f, 1)
	e.Fence(1)
	e.Acquire(1, x)
	hs["fig5-annotated"] = e

	e = NewExecution()
	x = e.AddLoc("X")
	for k := 0; k < 6; k++ {
		p := ProcID(k % 3)
		e.Acquire(p, x)
		e.Write(p, x, Value(k))
		e.Release(p, x)
	}
	hs["lock-chain"] = e

	e = NewExecution()
	x = e.AddLoc("X")
	y := e.AddLoc("Y")
	e.Write(0, x, 1)
	e.FenceLoc(0, x)
	e.Write(0, y, 1)
	e.Write(1, y, 2)
	e.Read(1, x, 0)
	hs["scoped-fence"] = e

	return hs
}

// TestReadableAtMatchesProbe: the read-only query path must agree with the
// reference clone-plus-probe computation for every process and location of
// every history shape.
func TestReadableAtMatchesProbe(t *testing.T) {
	for name, e := range buildHistories() {
		for p := ProcID(0); p < 3; p++ {
			for v := Loc(0); int(v) < e.NumLocs(); v++ {
				probe := e.Clone()
				op := probe.Read(p, v, 0)
				want := probe.ReadableFrom(op.ID)
				got := e.ReadableAt(p, v)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: ReadableAt(p%d, %s) = %v, probe = %v",
						name, p, e.LocName(v), got, want)
				}
				wantW := probe.LastWrites(op.ID)
				gotW := e.LastWritesAt(p, v)
				if !reflect.DeepEqual(gotW, wantW) {
					t.Errorf("%s: LastWritesAt(p%d, %s) = %v, probe = %v",
						name, p, e.LocName(v), gotW, wantW)
				}
			}
		}
	}
}

// TestReadableAtDoesNotMutate: the query must leave the execution
// untouched — same ops, same edges, before and after.
func TestReadableAtDoesNotMutate(t *testing.T) {
	for name, e := range buildHistories() {
		ops := len(e.Ops())
		edges := len(e.Edges())
		for p := ProcID(0); p < 3; p++ {
			for v := Loc(0); int(v) < e.NumLocs(); v++ {
				e.ReadableAt(p, v)
			}
		}
		if len(e.Ops()) != ops || len(e.Edges()) != edges {
			t.Errorf("%s: execution mutated by ReadableAt (%d→%d ops, %d→%d edges)",
				name, ops, len(e.Ops()), edges, len(e.Edges()))
		}
	}
}

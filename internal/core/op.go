// Package core implements the PMC memory consistency model of Section IV of
// the paper — the primary contribution. It provides:
//
//   - the five memory operations (read, write, acquire, release, fence) and
//     the four ordering relations (local ≺ℓ, program ≺P, synchronization ≺S,
//     fence ≺F);
//   - executions (Definition 1): the dependency graph a program builds as it
//     issues operations, grown by the state-transition rules of Table I
//     (Definition 4), which this package encodes as data so the
//     implementation and the paper's table can be compared side by side;
//   - the observation relations: the globally agreed order ≺G
//     (Definition 9) and the per-process view p≺ that adds the process's own
//     local orderings (Definition 10);
//   - read semantics: the last-write set W_o (Definition 11), the set of
//     values a read may return (Definition 12), and data-race detection
//     (|W_o| > 1);
//   - transitively reduced DOT export, which regenerates the dependency
//     graphs of the paper's Figs. 2–5.
//
// The model is the oracle for everything else in the repository: the litmus
// explorer (internal/litmus) enumerates interleavings over it, and the
// runtime recorder (internal/rt) checks simulated executions against it.
package core

import "fmt"

// Kind is the operation kind. PMC has exactly five (Section IV-B).
type Kind uint8

const (
	// KRead retrieves the value of a previously executed write.
	KRead Kind = iota
	// KWrite replaces the value of a location; not necessarily visible
	// to all processes immediately.
	KWrite
	// KAcquire takes an exclusive lock on a location.
	KAcquire
	// KRelease gives up the exclusive lock on a location.
	KRelease
	// KFence adds dependencies to locally executed operations, spanning
	// locations.
	KFence
)

// String returns the paper's one-letter abbreviation.
func (k Kind) String() string {
	switch k {
	case KRead:
		return "r"
	case KWrite:
		return "w"
	case KAcquire:
		return "A"
	case KRelease:
		return "R"
	case KFence:
		return "F"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ProcID identifies a process. InitProc is the pseudo-process ⊥ of
// Definition 3, "equivalent to all processes".
type ProcID int32

// InitProc issues the initial write/release of every location.
const InitProc ProcID = -1

// Loc identifies a shared location (Definition 1's V). NoLoc marks
// operations without a location (fences).
type Loc int32

// NoLoc is the location of fences.
const NoLoc Loc = -1

// Value is the content of a location. The model treats values opaquely.
type Value uint64

// Op is one issued operation (an element of O).
type Op struct {
	ID   int
	Kind Kind
	Proc ProcID
	Loc  Loc
	Val  Value
	// IsInit marks the per-location initial operation, which matches
	// both write and release patterns (Definition 3).
	IsInit bool
	// Label is a human-readable tag used in DOT output ("line 2: X=42").
	Label string
}

// String renders the operation in the paper's pattern notation.
func (o *Op) String() string {
	if o.IsInit {
		return fmt.Sprintf("#%d init(v%d=⊥)", o.ID, o.Loc)
	}
	switch o.Kind {
	case KFence:
		return fmt.Sprintf("#%d (F,p%d)", o.ID, o.Proc)
	case KRead:
		return fmt.Sprintf("#%d (r,p%d,v%d)=%d", o.ID, o.Proc, o.Loc, o.Val)
	case KWrite:
		return fmt.Sprintf("#%d (w,p%d,v%d,%d)", o.ID, o.Proc, o.Loc, o.Val)
	}
	return fmt.Sprintf("#%d (%s,p%d,v%d)", o.ID, o.Kind, o.Proc, o.Loc)
}

// Ord is the ordering relation kind attached to a dependency edge.
type Ord uint8

const (
	// OrdLocal is ≺ℓ: visible only to the executing process
	// (Definition 6).
	OrdLocal Ord = iota
	// OrdProgram is ≺P: globally visible, per process, per location
	// (Definition 5).
	OrdProgram
	// OrdSync is ≺S: globally visible, per location, across processes
	// (Definition 7).
	OrdSync
	// OrdFence is ≺F: globally visible, per process, across locations
	// (Definition 8).
	OrdFence
)

// Global reports whether every process observes the edge (Definition 9:
// ≺G = ≺P ∪ ≺S ∪ ≺F).
func (o Ord) Global() bool { return o != OrdLocal }

// String returns the paper's symbol.
func (o Ord) String() string {
	switch o {
	case OrdLocal:
		return "≺l"
	case OrdProgram:
		return "≺P"
	case OrdSync:
		return "≺S"
	case OrdFence:
		return "≺F"
	}
	return fmt.Sprintf("Ord(%d)", uint8(o))
}

// Edge is one dependency: From happened before To under Ord. For OrdLocal
// edges the owning process is the process of both endpoints (Table I only
// creates local edges between operations of one process).
type Edge struct {
	From, To int
	Ord      Ord
}

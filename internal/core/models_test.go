package core

import (
	"testing"
	"testing/quick"
)

// bareWrites issues unsynchronized writes from two processes to two
// locations.
func bareWrites() *Execution {
	e := NewExecution()
	x := e.AddLoc("X")
	y := e.AddLoc("Y")
	e.Write(1, x, 1)
	e.Write(1, y, 2)
	e.Write(2, x, 3)
	e.Write(2, y, 4)
	return e
}

// lockedWrites wraps every write in acquire/release of its location.
func lockedWrites(withFences bool) *Execution {
	e := NewExecution()
	x := e.AddLoc("X")
	y := e.AddLoc("Y")
	emit := func(p ProcID, v Loc, val Value) {
		e.Acquire(p, v)
		e.Write(p, v, val)
		e.Release(p, v)
		if withFences {
			e.Fence(p)
		}
	}
	emit(1, x, 1)
	emit(1, y, 2)
	emit(2, x, 3)
	emit(2, y, 4)
	return e
}

// TestSectionIVEHierarchy walks the paper's model hierarchy: bare accesses
// are Slow Consistency, locks add GDO (Cache Consistency), locks plus
// fences add GPO (Processor Consistency).
func TestSectionIVEHierarchy(t *testing.T) {
	if got := bareWrites().ClassifyStrength(); got != "slow" {
		t.Errorf("bare writes classify as %q, want slow", got)
	}
	if got := lockedWrites(false).ClassifyStrength(); got != "cc" {
		t.Errorf("locked writes classify as %q, want cc (GDO without GPO)", got)
	}
	if got := lockedWrites(true).ClassifyStrength(); got != "pc" {
		t.Errorf("locked+fenced writes classify as %q, want pc (GDO+GPO)", got)
	}
}

func TestGDORequiresLocks(t *testing.T) {
	e := bareWrites()
	if e.HasGDOAll() {
		t.Fatal("unsynchronized cross-process writes must not be totally ordered")
	}
	if !lockedWrites(false).HasGDOAll() {
		t.Fatal("lock-disciplined writes must have GDO")
	}
}

func TestGPORequiresFences(t *testing.T) {
	if lockedWrites(false).HasGPOAll() {
		t.Fatal("without fences, writes of one process to different locations are unordered")
	}
	if !lockedWrites(true).HasGPOAll() {
		t.Fatal("with fences between operations, per-process writes must be totally ordered")
	}
}

func TestSlowConsistencyAlwaysHolds(t *testing.T) {
	// The base model guarantees Slow Consistency even with no
	// synchronization at all (Section IV-C: "the reads, writes, local
	// and program order ... are equivalent to Slow Consistency").
	e := NewExecution()
	x := e.AddLoc("X")
	e.Write(1, x, 1)
	e.Read(1, x, 1)
	e.Write(1, x, 2)
	e.Read(1, x, 2)
	e.Write(2, x, 9)
	e.Read(2, x, 9)
	if !e.SlowConsistencyHolds() {
		t.Fatal("slow consistency must hold by construction")
	}
}

// Property: any random program satisfies Slow Consistency, and wrapping
// the same write sequence in per-location locks always yields GDO.
func TestModelHierarchyProperty(t *testing.T) {
	prop := func(script []byte) bool {
		// Arbitrary program: slow consistency by construction.
		e := NewExecution()
		randProgram(e, script, 3, 2)
		if !e.SlowConsistencyHolds() {
			return false
		}
		// Lock-disciplined version of the write stream: GDO.
		d := NewExecution()
		locs := []Loc{d.AddLoc("A"), d.AddLoc("B")}
		for i := 0; i+1 < len(script); i += 2 {
			p := ProcID(script[i] % 3)
			v := locs[int(script[i+1])%2]
			d.Acquire(p, v)
			d.Write(p, v, Value(i))
			d.Release(p, v)
		}
		return d.HasGDOAll()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyGPOOnly covers the PRAM-like corner: a single writer process
// with fences has GPO trivially, but cross-process writes without locks
// break GDO.
func TestClassifyGPOOnly(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	e.Write(1, x, 1)
	e.Fence(1)
	e.Write(1, x, 2) // fence orders p1's writes: GPO for p1
	e.Write(2, x, 9) // unordered against p1: GDO broken
	e.Fence(2)
	if e.HasGDOAll() {
		t.Fatal("cross-process unlocked writes should break GDO")
	}
	if !e.HasGPOAll() {
		t.Fatal("fenced per-process writes should have GPO")
	}
	if got := e.ClassifyStrength(); got != "gpo" {
		t.Fatalf("classification = %q, want gpo", got)
	}
}

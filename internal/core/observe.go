package core

import (
	"fmt"
	"sort"
)

// visible reports whether edge ed is visible to viewer: global edges are
// visible to everyone; local edges only to the process that executed them
// (Definition 6). Local edges connect operations of one process, so the
// owner is the To-endpoint's process.
func (e *Execution) visible(ed Edge, viewer ProcID) bool {
	if ed.Ord.Global() {
		return true
	}
	return e.ops[ed.To].Proc == viewer
}

// ReachableG reports from ≺G to: a path of globally visible edges
// (Definition 9). Reflexive only when from == to and allowEqual.
func (e *Execution) ReachableG(from, to int) bool {
	return e.reachable(from, to, InitProc)
}

// ReachableP reports from p≺ to for viewer p: a path mixing global edges
// and p's own local edges (Definition 10).
func (e *Execution) ReachableP(p ProcID, from, to int) bool {
	return e.reachable(from, to, p)
}

// reachable runs a forward BFS over edges visible to viewer (InitProc
// means "global edges only", since no local edge is owned by ⊥).
func (e *Execution) reachable(from, to int, viewer ProcID) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(e.ops))
	queue := []int{from}
	seen[from] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ed := range e.out[n] {
			if !e.visible(ed, viewer) || seen[ed.To] {
				continue
			}
			if ed.To == to {
				return true
			}
			seen[ed.To] = true
			queue = append(queue, ed.To)
		}
	}
	return false
}

// LastWrites returns W_o (Definition 11) for operation o: the maximal
// writes to o's location that are ordered before o in the view of o's
// process. It never returns an empty set — at minimum the location's
// initial write qualifies.
func (e *Execution) LastWrites(o int) []int {
	op := e.ops[o]
	if op.Loc == NoLoc {
		panic("core: LastWrites of a fence")
	}
	viewer := op.Proc
	// Backward BFS over edges visible to the viewer.
	seen := make([]bool, len(e.ops))
	var visibleWrites []int
	queue := []int{o}
	seen[o] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ed := range e.in[n] {
			if !e.visible(ed, viewer) || seen[ed.From] {
				continue
			}
			seen[ed.From] = true
			f := e.ops[ed.From]
			if (f.Kind == KWrite || f.IsInit) && f.Loc == op.Loc {
				visibleWrites = append(visibleWrites, ed.From)
			}
			queue = append(queue, ed.From)
		}
	}
	if len(visibleWrites) == 0 {
		// Unreachable if the location was created via AddLoc.
		panic(fmt.Sprintf("core: no initial write reachable from %s", op))
	}
	return e.maximalWrites(visibleWrites, viewer)
}

// maximalWrites keeps the p≺-maximal elements of visibleWrites: a is
// dropped when some other b in the set is viewer-reachable from it.
func (e *Execution) maximalWrites(visibleWrites []int, viewer ProcID) []int {
	var maximal []int
	for _, a := range visibleWrites {
		dominated := false
		for _, b := range visibleWrites {
			if a != b && e.reachable(a, b, viewer) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, a)
		}
	}
	sort.Ints(maximal)
	return maximal
}

// LastWritesAt returns W for a hypothetical read of v by p issued against
// the current execution, without mutating it. It is equivalent to
//
//	op := e.Clone().Read(p, v, 0); LastWrites(op.ID)
//
// but touches no state: the read's would-be in-edges are computed from the
// Table I read rules, and the backward search starts from those
// predecessors. Every in-edge of a new read is visible to p (global edges
// are visible to all, and a local in-edge's To-endpoint is the read by p),
// so the multi-source search over p-visible edges matches the issued-probe
// result exactly.
func (e *Execution) LastWritesAt(p ProcID, v Loc) []int {
	if v == NoLoc {
		panic("core: LastWritesAt of a fence")
	}
	seen := make([]bool, len(e.ops))
	var queue []int
	for _, r := range RulesFor(KRead) {
		for _, from := range e.earlierMatching(r, p, v) {
			if !seen[from] {
				seen[from] = true
				queue = append(queue, from)
			}
		}
	}
	var visibleWrites []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		f := e.ops[n]
		if (f.Kind == KWrite || f.IsInit) && f.Loc == v {
			visibleWrites = append(visibleWrites, n)
		}
		for _, ed := range e.in[n] {
			if !e.visible(ed, p) || seen[ed.From] {
				continue
			}
			seen[ed.From] = true
			queue = append(queue, ed.From)
		}
	}
	if len(visibleWrites) == 0 {
		panic(fmt.Sprintf("core: no initial write reachable for read of v%d by p%d", v, p))
	}
	return e.maximalWrites(visibleWrites, p)
}

// IsRace reports whether reading at operation o is nondeterministic:
// |W_o| > 1 (Section IV-D).
func (e *Execution) IsRace(o int) bool { return len(e.LastWrites(o)) > 1 }

// ReadableFrom returns the IDs of the writes a read at o's position by o's
// process may return (Definition 12): every write b to the location such
// that a p⪯ b for some a ∈ W_o. The result includes writes not yet ordered
// w.r.t. o ("any value that is written afterwards"); callers that model a
// concrete moment in time (the litmus explorer) intersect with the
// already-issued set and apply per-process read monotonicity.
func (e *Execution) ReadableFrom(o int) []int {
	op := e.ops[o]
	return e.readableFromW(e.LastWrites(o), op.Loc, op.Proc, o)
}

// ReadableAt returns the writes a read of v by p could return if it were
// issued against the current execution (Definition 12), computed without
// mutating it. It matches Clone-plus-probe-read followed by ReadableFrom;
// the litmus explorer uses it to enumerate read candidates on the live
// graph instead of deep-cloning per probe.
func (e *Execution) ReadableAt(p ProcID, v Loc) []int {
	return e.readableFromW(e.LastWritesAt(p, v), v, p, -1)
}

// readableFromW expands a last-write set W into the full readable set:
// every write b to v with a p⪯ b for some a ∈ W. skip (an op ID, or -1)
// excludes the read itself when W came from an issued operation.
func (e *Execution) readableFromW(w []int, v Loc, viewer ProcID, skip int) []int {
	inW := make(map[int]bool, len(w))
	for _, a := range w {
		inW[a] = true
	}
	var out []int
	for _, b := range e.ops {
		if b.ID == skip {
			continue
		}
		if !(b.Kind == KWrite || b.IsInit) || b.Loc != v {
			continue
		}
		ok := inW[b.ID]
		if !ok {
			for _, a := range w {
				if e.reachable(a, b.ID, viewer) {
					ok = true
					break
				}
			}
		}
		if ok {
			out = append(out, b.ID)
		}
	}
	sort.Ints(out)
	return out
}

// ReadableValues returns the distinct values of ReadableFrom(o).
func (e *Execution) ReadableValues(o int) []Value {
	var vals []Value
	seen := make(map[Value]bool)
	for _, b := range e.ReadableFrom(o) {
		v := e.ops[b].Val
		if e.ops[b].IsInit {
			v = 0 // ⊥ reads as the zero value
		}
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// WritesTotallyOrderedG reports whether all writes to v (including the
// initial one) are in total ≺G order — the paper's requirement for
// deterministic, data-race-free programs ("all writes to a single location
// must be in total order", Section IV-D).
func (e *Execution) WritesTotallyOrderedG(v Loc) bool {
	var ws []int
	for _, op := range e.ops {
		if (op.Kind == KWrite || op.IsInit) && op.Loc == v {
			ws = append(ws, op.ID)
		}
	}
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			if !e.ReachableG(ws[i], ws[j]) && !e.ReachableG(ws[j], ws[i]) {
				return false
			}
		}
	}
	return true
}

// CheckAcyclic verifies ≺ is a partial order (no cycles). Rule application
// only adds edges from older to newer operations, so this should hold by
// construction; it is exposed for property tests.
func (e *Execution) CheckAcyclic() error {
	for _, es := range e.out {
		for _, ed := range es {
			if ed.From >= ed.To {
				return fmt.Errorf("core: edge %d->%d does not respect issue order", ed.From, ed.To)
			}
		}
	}
	return nil
}

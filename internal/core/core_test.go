package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableIRenders(t *testing.T) {
	out := RenderTableI()
	t.Logf("\n%s", out) // printed for side-by-side comparison with the paper
	for _, want := range []string{"read", "write", "acquire", "release", "fence", "≺S†"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	// 17 populated cells.
	if got := strings.Count(out, "≺"); got < 17 {
		t.Errorf("table shows %d orderings, want >= 17", got)
	}
}

func TestTableIRuleCount(t *testing.T) {
	if len(TableI) != 17 {
		t.Fatalf("TableI has %d rules, want 17", len(TableI))
	}
	// Exactly one cross-process rule: release → acquire (the footnote).
	var cross []Rule
	for _, r := range TableI {
		if r.AnyProc {
			cross = append(cross, r)
		}
	}
	if len(cross) != 1 || cross[0].Earlier != KRelease || cross[0].New != KAcquire || cross[0].Ord != OrdSync {
		t.Fatalf("cross-process rules = %+v, want exactly release→acquire ≺S", cross)
	}
}

// TestFig2ProgramOrder reproduces Fig. 2: two writes by one process to one
// location are in ≺P order, transitively reduced to a chain from init.
func TestFig2ProgramOrder(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	w1 := e.Write(0, x, 1)
	w2 := e.Write(0, x, 2)

	if !e.ReachableG(w1.ID, w2.ID) {
		t.Fatal("X=1 must be globally before X=2")
	}
	red := e.ReducedEdges()
	// Chain: init -> w1 -> w2; the direct init -> w2 edge is redundant.
	want := map[[2]int]Ord{
		{0, w1.ID}:     OrdProgram,
		{w1.ID, w2.ID}: OrdProgram,
	}
	if len(red) != len(want) {
		t.Fatalf("reduced edges = %v, want %v", red, want)
	}
	for _, ed := range red {
		if want[[2]int{ed.From, ed.To}] != ed.Ord {
			t.Fatalf("unexpected edge %+v", ed)
		}
	}
}

// TestFig3LocalOrder reproduces Fig. 3: a read between two writes is
// locally ordered, and at the moment it executes it can only return 1.
func TestFig3LocalOrder(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	w1 := e.Write(0, x, 1)
	r := e.Read(0, x, 1)

	// At this state, the read's last-write set is exactly {X=1}.
	lw := e.LastWrites(r.ID)
	if len(lw) != 1 || lw[0] != w1.ID {
		t.Fatalf("W = %v, want {%d}", lw, w1.ID)
	}
	if vals := e.ReadableValues(r.ID); len(vals) != 1 || vals[0] != 1 {
		t.Fatalf("readable = %v, want [1]", vals)
	}
	if e.IsRace(r.ID) {
		t.Fatal("single-process read is not a race")
	}

	w2 := e.Write(0, x, 2)
	// The read is locally ordered before the new write.
	if !e.ReachableP(0, r.ID, w2.ID) {
		t.Fatal("read must be locally before X=2")
	}
	// But another process does not see that ordering.
	if e.ReachableP(1, r.ID, w2.ID) {
		t.Fatal("local order must be invisible to other processes")
	}
}

// TestFig4Synchronization reproduces Fig. 4's depicted interleaving:
// process 2 acquires first and writes 1 then 2; process 1 then reads 2.
func TestFig4Synchronization(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	// Process 2's critical section.
	a2 := e.Acquire(2, x)
	e.Write(2, x, 1)
	w22 := e.Write(2, x, 2)
	r2 := e.Release(2, x)
	// Process 1's critical section.
	a1 := e.Acquire(1, x)
	rd := e.Read(1, x, 2)
	e.Release(1, x)

	if !e.ReachableG(r2.ID, a1.ID) {
		t.Fatal("release by p2 must be ≺S before acquire by p1")
	}
	// Reads only carry local in-edges, so the chain into the read is
	// completed by p1's own view.
	if !e.ReachableP(1, a2.ID, rd.ID) {
		t.Fatal("whole p2 critical section must precede p1's read in p1's view")
	}
	if !e.ReachableG(a2.ID, a1.ID) {
		t.Fatal("p2's acquire must be globally before p1's acquire")
	}
	lw := e.LastWrites(rd.ID)
	if len(lw) != 1 || lw[0] != w22.ID {
		t.Fatalf("W = %v, want {X=2}", lw)
	}
	if vals := e.ReadableValues(rd.ID); len(vals) != 1 || vals[0] != 2 {
		t.Fatalf("readable = %v, want [2] — every observer agrees on the interleaving", vals)
	}
	if !e.WritesTotallyOrderedG(x) {
		t.Fatal("lock-protected writes must be totally ordered")
	}
}

// fig5 builds the Fig. 5 message-passing execution up to process 2's
// polling read of f, with or without process 1's fences, and returns the
// execution plus the ops needed for assertions.
func fig5(withFences bool) (e *Execution, wX, relX, acqX2, rdX *Op) {
	e = NewExecution()
	x := e.AddLoc("X")
	f := e.AddLoc("f")
	// Process 1.
	e.Acquire(1, x)
	wX = e.Write(1, x, 42)
	if withFences {
		e.Fence(1)
	}
	relX = e.Release(1, x)
	e.Acquire(1, f)
	e.Write(1, f, 1)
	e.Release(1, f)
	// Process 2: poll sees 1 (the depicted iteration), fence, then the
	// synchronized read of X.
	e.Read(2, f, 1)
	if withFences {
		e.Fence(2)
	}
	acqX2 = e.Acquire(2, x)
	rdX = e.Read(2, x, 42)
	e.Release(2, x)
	return e, wX, relX, acqX2, rdX
}

// TestFig5FencedMessagePassing reproduces Fig. 5: with the synchronization
// in place, process 2 is guaranteed to read 42.
func TestFig5FencedMessagePassing(t *testing.T) {
	e, wX, relX, acqX2, rdX := fig5(true)
	if !e.ReachableG(wX.ID, relX.ID) {
		t.Fatal("X=42 ≺P rel X missing")
	}
	if !e.ReachableG(relX.ID, acqX2.ID) {
		t.Fatal("rel X ≺S acq X missing")
	}
	lw := e.LastWrites(rdX.ID)
	if len(lw) != 1 || lw[0] != wX.ID {
		t.Fatalf("W = %v, want exactly {X=42}", lw)
	}
	if vals := e.ReadableValues(rdX.ID); len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("readable = %v, want [42]", vals)
	}
	if e.IsRace(rdX.ID) {
		t.Fatal("fig 5 read must not be racy")
	}
}

// TestFig5FenceEdges checks the specific edge labels the paper draws for
// process 1: acq X ≺P X=42 ≺ℓ fence ≺F rel X, and fence ≺F acq f.
func TestFig5FenceEdges(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	f := e.AddLoc("f")
	aX := e.Acquire(1, x)
	w := e.Write(1, x, 42)
	fe := e.Fence(1)
	rX := e.Release(1, x)
	af := e.Acquire(1, f)

	find := func(from, to int) (Ord, bool) {
		for _, ed := range e.Out(from) {
			if ed.To == to {
				return ed.Ord, true
			}
		}
		return 0, false
	}
	cases := []struct {
		from, to *Op
		want     Ord
	}{
		{aX, w, OrdProgram},
		{w, fe, OrdLocal},
		{fe, rX, OrdFence},
		{aX, fe, OrdFence},
		{fe, af, OrdFence},
	}
	for _, c := range cases {
		got, ok := find(c.from.ID, c.to.ID)
		if !ok {
			t.Errorf("edge %s -> %s missing", c.from, c.to)
			continue
		}
		if got != c.want {
			t.Errorf("edge %s -> %s = %s, want %s", c.from, c.to, got, c.want)
		}
	}
}

// TestFig1BrokenWithoutSynchronization is the model-level Fig. 1: without
// acquire/release on X, polling f does not order the writes, so the read
// of X is racy — it may return the initial value even after seeing f=1.
func TestFig1BrokenWithoutSynchronization(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	f := e.AddLoc("f")
	// Process 1 writes X then f with no synchronization on X.
	e.Write(1, x, 42)
	e.Acquire(1, f)
	e.Write(1, f, 1)
	e.Release(1, f)
	// Process 2 polls f (sees 1), fences, then reads X unsynchronized.
	e.Read(2, f, 1)
	e.Fence(2)
	rd := e.Read(2, x, 0)

	// Without acquiring X, no chain of dependencies leads from X=42 to
	// the read ("there is no way for process 2 to make sure the value 42
	// of X is read, without acquiring it"): W stays at the initial
	// write, and the slow-read rule makes the outcome nondeterministic.
	lw := e.LastWrites(rd.ID)
	if len(lw) != 1 || !e.Op(lw[0]).IsInit {
		t.Fatalf("W = %v, want exactly the initial write", lw)
	}
	vals := e.ReadableValues(rd.ID)
	if len(vals) != 2 || vals[0] != 0 || vals[1] != 42 {
		t.Fatalf("readable = %v, want [0 42] (stale ⊥ or fresh 42): the program is broken", vals)
	}
}

func TestSlowReadsAllowOverwrittenValues(t *testing.T) {
	// Writes propagate slowly: a reader with no synchronization may see
	// any write at-or-after its last-write set, including overwritten
	// values from its own W frontier.
	e := NewExecution()
	x := e.AddLoc("X")
	e.Acquire(1, x)
	e.Write(1, x, 1)
	e.Write(1, x, 2)
	e.Release(1, x)
	rd := e.Read(2, x, 0) // unsynchronized observer
	vals := e.ReadableValues(rd.ID)
	// W = {init} (p2 sees no ordering), so any of ⊥, 1, 2 is readable.
	if len(vals) != 3 {
		t.Fatalf("readable = %v, want 3 values (slow memory)", vals)
	}
}

func TestFenceDoesNotOrderReads(t *testing.T) {
	// Per Table I's fence row, a fence orders subsequent w/R/A but not
	// reads; the read after the fence is ordered only via its acquire.
	e := NewExecution()
	x := e.AddLoc("X")
	f := e.Fence(1)
	rd := e.Read(1, x, 0)
	for _, ed := range e.In(rd.ID) {
		if ed.From == f.ID {
			t.Fatal("fence must not take an edge to a subsequent read")
		}
	}
	w := e.Write(1, x, 1)
	found := false
	for _, ed := range e.In(w.ID) {
		if ed.From == f.ID && ed.Ord == OrdFence {
			found = true
		}
	}
	if !found {
		t.Fatal("fence must order subsequent writes with ≺F")
	}
}

func TestInitEdgesAreGlobal(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	rd := e.Read(3, x, 0)
	for _, ed := range e.In(rd.ID) {
		if e.Op(ed.From).IsInit && !ed.Ord.Global() {
			t.Fatal("edges from the initial operation must be globally visible")
		}
	}
	// And acquires take their ≺S from the init release.
	a := e.Acquire(3, x)
	ok := false
	for _, ed := range e.In(a.ID) {
		if e.Op(ed.From).IsInit && ed.Ord == OrdSync {
			ok = true
		}
	}
	if !ok {
		t.Fatal("acquire must have the init release as ≺S predecessor")
	}
}

func TestExecValidation(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	_ = x
	for name, f := range map[string]func(){
		"read without loc":  func() { e.Exec(KRead, 0, NoLoc, 0, "") },
		"write without loc": func() { e.Exec(KWrite, 0, NoLoc, 0, "") },
		"unknown loc":       func() { e.Exec(KRead, 0, Loc(99), 0, "") },
		"init proc op":      func() { e.Exec(KWrite, InitProc, x, 0, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestLocationScopedFence covers the Section IV-D extension: a fence on a
// specific location orders exactly like a plain fence for that location and
// not at all for others.
func TestLocationScopedFence(t *testing.T) {
	e := NewExecution()
	x := e.AddLoc("X")
	y := e.AddLoc("Y")
	wx := e.Write(1, x, 1)
	wy := e.Write(1, y, 2)
	f := e.FenceLoc(1, x)
	ax := e.Acquire(1, x)
	ay := e.Acquire(1, y)

	hasEdge := func(from, to int, ord Ord) bool {
		for _, ed := range e.Out(from) {
			if ed.To == to && ed.Ord == ord {
				return true
			}
		}
		return false
	}
	// The scoped fence collects X's write locally and orders the next
	// acquire of X.
	if !hasEdge(wx.ID, f.ID, OrdLocal) {
		t.Error("write to X must be locally before fence(X)")
	}
	if !hasEdge(f.ID, ax.ID, OrdFence) {
		t.Error("fence(X) must order the next acquire of X")
	}
	// Y is untouched: no edge into or out of the scoped fence.
	if hasEdge(wy.ID, f.ID, OrdLocal) {
		t.Error("fence(X) must not collect writes to Y")
	}
	if hasEdge(f.ID, ay.ID, OrdFence) {
		t.Error("fence(X) must not order acquires of Y")
	}
}

// TestLocationFenceWeakerThanGlobal: a global fence creates a superset of
// the scoped fence's orderings over the same program.
func TestLocationFenceWeakerThanGlobal(t *testing.T) {
	build := func(scoped bool) *Execution {
		e := NewExecution()
		x := e.AddLoc("X")
		y := e.AddLoc("Y")
		e.Write(1, x, 1)
		e.Write(1, y, 2)
		if scoped {
			e.FenceLoc(1, x)
		} else {
			e.Fence(1)
		}
		e.Acquire(1, x)
		e.Acquire(1, y)
		return e
	}
	s, g := build(true), build(false)
	// Every global-view ordering present under the scoped fence must be
	// present under the global fence.
	n := len(s.Ops())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && s.ReachableG(i, j) && !g.ReachableG(i, j) {
				t.Fatalf("ordering %d->%d exists under the scoped fence but not the global one", i, j)
			}
		}
	}
}

func TestDOTOutput(t *testing.T) {
	e, _, _, _, _ := fig5(true)
	dot := e.DOT("fig5")
	for _, want := range []string{"digraph", "cluster_p1", "cluster_p2", "≺S", "≺F", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// randProgram drives an execution from quick-check-generated bytes,
// producing a structurally valid but arbitrarily interleaved program.
func randProgram(e *Execution, script []byte, procs, locs int) {
	var ls []Loc
	for i := 0; i < locs; i++ {
		ls = append(ls, e.AddLoc(string(rune('A'+i))))
	}
	for i := 0; i+2 < len(script); i += 3 {
		p := ProcID(script[i] % byte(procs))
		v := ls[int(script[i+1])%locs]
		switch script[i+2] % 5 {
		case 0:
			e.Read(p, v, Value(script[i+2]))
		case 1:
			e.Write(p, v, Value(script[i+2]))
		case 2:
			e.Acquire(p, v)
		case 3:
			e.Release(p, v)
		case 4:
			e.Fence(p)
		}
	}
}

// Property: any operation stream yields an acyclic graph whose local edges
// connect operations of a single process and whose LastWrites sets are
// never empty.
func TestModelInvariantsProperty(t *testing.T) {
	prop := func(script []byte) bool {
		e := NewExecution()
		randProgram(e, script, 3, 2)
		if e.CheckAcyclic() != nil {
			return false
		}
		for _, es := range e.out {
			for _, ed := range es {
				if ed.Ord == OrdLocal {
					f, to := e.Op(ed.From), e.Op(ed.To)
					if !f.IsInit && f.Proc != to.Proc {
						return false
					}
				}
			}
		}
		for _, op := range e.Ops() {
			if op.Kind == KRead && !op.IsInit {
				if len(e.LastWrites(op.ID)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: ≺G-reachability implies p≺-reachability for every process (the
// per-process view only adds orderings).
func TestGlobalSubsetOfLocalViewProperty(t *testing.T) {
	prop := func(script []byte) bool {
		e := NewExecution()
		randProgram(e, script, 3, 2)
		n := len(e.Ops())
		if n > 24 {
			n = 24
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if e.ReachableG(i, j) {
					for p := ProcID(0); p < 3; p++ {
						if !e.ReachableP(p, i, j) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: lock-disciplined writes (every write inside acquire/release of
// its location, sections serialized) are always totally ordered under ≺G —
// Section IV-D's determinism requirement.
func TestLockDisciplinedWritesTotallyOrderedProperty(t *testing.T) {
	prop := func(sections []uint8) bool {
		e := NewExecution()
		x := e.AddLoc("X")
		val := Value(1)
		for _, s := range sections {
			p := ProcID(s % 4)
			nw := int(s%3) + 1
			e.Acquire(p, x)
			for w := 0; w < nw; w++ {
				e.Write(p, x, val)
				val++
			}
			e.Release(p, x)
		}
		return e.WritesTotallyOrderedG(x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transitive reduction preserves reachability in both the
// global view and every process view.
func TestReductionPreservesReachabilityProperty(t *testing.T) {
	prop := func(script []byte) bool {
		e := NewExecution()
		randProgram(e, script, 2, 2)
		if len(e.Ops()) > 18 {
			return true // keep the O(n^2) check small
		}
		// Build a reduced copy by filtering edges.
		keep := make(map[Edge]bool)
		for _, ed := range e.ReducedEdges() {
			keep[ed] = true
		}
		reduced := &Execution{}
		*reduced = *e
		reduced.out = make([][]Edge, len(e.out))
		reduced.in = make([][]Edge, len(e.in))
		for i, es := range e.out {
			for _, ed := range es {
				if keep[ed] {
					reduced.out[i] = append(reduced.out[i], ed)
					reduced.in[ed.To] = append(reduced.in[ed.To], ed)
				}
			}
		}
		for i := range e.Ops() {
			for j := range e.Ops() {
				if i == j {
					continue
				}
				if e.ReachableG(i, j) != reduced.ReachableG(i, j) {
					return false
				}
				for p := ProcID(0); p < 2; p++ {
					if e.ReachableP(p, i, j) != reduced.ReachableP(p, i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the readable set of any read always contains the value of
// every write in its last-write set (Definition 12 subsumes Definition 11).
func TestReadableSupersetOfLastWritesProperty(t *testing.T) {
	prop := func(script []byte) bool {
		e := NewExecution()
		randProgram(e, script, 3, 2)
		for _, op := range e.Ops() {
			if op.Kind != KRead || op.IsInit {
				continue
			}
			readable := map[Value]bool{}
			for _, v := range e.ReadableValues(op.ID) {
				readable[v] = true
			}
			for _, w := range e.LastWrites(op.ID) {
				v := e.Op(w).Val
				if e.Op(w).IsInit {
					v = 0
				}
				if !readable[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scoped fences never create orderings a global fence would not —
// FenceLoc is uniformly weaker than Fence over random programs.
func TestScopedFenceWeakerProperty(t *testing.T) {
	prop := func(script []byte) bool {
		build := func(scoped bool) *Execution {
			e := NewExecution()
			locs := []Loc{e.AddLoc("A"), e.AddLoc("B")}
			for i := 0; i+2 < len(script); i += 3 {
				p := ProcID(script[i] % 2)
				v := locs[int(script[i+1])%2]
				switch script[i+2] % 4 {
				case 0:
					e.Write(p, v, Value(i))
				case 1:
					e.Acquire(p, v)
					e.Release(p, v)
				case 2:
					if scoped {
						e.FenceLoc(p, v)
					} else {
						e.Fence(p)
					}
				case 3:
					e.Read(p, v, 0)
				}
			}
			return e
		}
		s, g := build(true), build(false)
		n := len(s.Ops())
		if n != len(g.Ops()) || n > 20 {
			return true // shapes diverge only via op budget; skip large
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && s.ReachableG(i, j) && !g.ReachableG(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package core

import "fmt"

// Execution is the model of a program's state at one moment in time
// (Definition 1): E = (P, V, O, ≺). P and V grow implicitly as operations
// and locations appear; O and ≺ grow by Exec, which applies the Table I
// transition rules (Definition 4). Orderings are never removed.
type Execution struct {
	locNames []string
	ops      []*Op
	out      [][]Edge
	in       [][]Edge

	// Pattern indexes, used to apply Table I incrementally. Keys follow
	// the paper's patterns: per (proc, loc), per loc, or per proc.
	readsPL    map[procLoc][]int
	writesPL   map[procLoc][]int // initial op included for every proc via init list
	acquiresPL map[procLoc][]int
	releasesPL map[procLoc][]int
	releasesL  map[Loc][]int // any process, per location (≺S rule); incl. init
	readsP     map[ProcID][]int
	writesP    map[ProcID][]int
	acquiresP  map[ProcID][]int
	releasesP  map[ProcID][]int
	fencesP    map[ProcID][]int  // location-less fences
	fencesPL   map[procLoc][]int // location-scoped fences (Section IV-D extension)
	initOf     map[Loc]int
}

type procLoc struct {
	p ProcID
	v Loc
}

// NewExecution returns an initialized, empty execution.
func NewExecution() *Execution {
	return &Execution{
		readsPL:    make(map[procLoc][]int),
		writesPL:   make(map[procLoc][]int),
		acquiresPL: make(map[procLoc][]int),
		releasesPL: make(map[procLoc][]int),
		releasesL:  make(map[Loc][]int),
		readsP:     make(map[ProcID][]int),
		writesP:    make(map[ProcID][]int),
		acquiresP:  make(map[ProcID][]int),
		releasesP:  make(map[ProcID][]int),
		fencesP:    make(map[ProcID][]int),
		fencesPL:   make(map[procLoc][]int),
		initOf:     make(map[Loc]int),
	}
}

// Clone returns a copy of the execution that can grow independently — the
// litmus explorer branches the state space on it. Op values are shared
// (they are immutable once issued), and so are the backing arrays of the
// index lists and edge lists: the copy's slice headers are capacity-
// clipped, so an append through the clone always reallocates instead of
// writing into shared backing, and an in-place append by the original
// lands beyond every clipped header's capacity. List contents below the
// clip point are never mutated by either side, which makes sharing safe
// across goroutines too. This is what keeps state branching cheap: a
// clone costs one header copy per structure instead of a deep copy of
// every index list.
func (e *Execution) Clone() *Execution {
	c := &Execution{
		locNames:   clip(e.locNames),
		ops:        clip(e.ops),
		out:        make([][]Edge, len(e.out)),
		in:         make([][]Edge, len(e.in)),
		readsPL:    clonePLMap(e.readsPL),
		writesPL:   clonePLMap(e.writesPL),
		acquiresPL: clonePLMap(e.acquiresPL),
		releasesPL: clonePLMap(e.releasesPL),
		releasesL:  cloneLocMap(e.releasesL),
		readsP:     cloneProcMap(e.readsP),
		writesP:    cloneProcMap(e.writesP),
		acquiresP:  cloneProcMap(e.acquiresP),
		releasesP:  cloneProcMap(e.releasesP),
		fencesP:    cloneProcMap(e.fencesP),
		fencesPL:   clonePLMap(e.fencesPL),
		initOf:     make(map[Loc]int, len(e.initOf)),
	}
	for i := range e.out {
		c.out[i] = clip(e.out[i])
		c.in[i] = clip(e.in[i])
	}
	for k, v := range e.initOf {
		c.initOf[k] = v
	}
	return c
}

// clip returns s with its capacity clipped to its length: a header-only
// copy whose backing array is shared but can never be appended into.
func clip[S ~[]E, E any](s S) S { return s[:len(s):len(s)] }

func clonePLMap(m map[procLoc][]int) map[procLoc][]int {
	c := make(map[procLoc][]int, len(m))
	for k, v := range m {
		c[k] = clip(v)
	}
	return c
}

func cloneLocMap(m map[Loc][]int) map[Loc][]int {
	c := make(map[Loc][]int, len(m))
	for k, v := range m {
		c[k] = clip(v)
	}
	return c
}

func cloneProcMap(m map[ProcID][]int) map[ProcID][]int {
	c := make(map[ProcID][]int, len(m))
	for k, v := range m {
		c[k] = clip(v)
	}
	return c
}

// AddLoc introduces a shared location with the given display name and
// issues its initial operation, which behaves like a write and release by
// the pseudo-process ⊥ (Definition 3), so reads and acquires always have a
// predecessor.
func (e *Execution) AddLoc(name string) Loc {
	v := Loc(len(e.locNames))
	e.locNames = append(e.locNames, name)
	op := &Op{
		ID:     len(e.ops),
		Kind:   KWrite, // representative kind; IsInit widens the matching
		Proc:   InitProc,
		Loc:    v,
		IsInit: true,
		Label:  fmt.Sprintf("init: %s=⊥", name),
	}
	e.ops = append(e.ops, op)
	e.out = append(e.out, nil)
	e.in = append(e.in, nil)
	e.initOf[v] = op.ID
	// The init op participates in the write and release patterns for
	// every process; record it in the per-location lists consulted with
	// any-proc scope, and treat per-proc matching specially (matchProc).
	e.releasesL[v] = append(e.releasesL[v], op.ID)
	return v
}

// LocName returns the display name of v.
func (e *Execution) LocName(v Loc) string {
	if v == NoLoc {
		return "*"
	}
	return e.locNames[v]
}

// NumLocs returns how many locations exist.
func (e *Execution) NumLocs() int { return len(e.locNames) }

// Ops returns the operations in issue order. The slice is shared; treat it
// as read-only.
func (e *Execution) Ops() []*Op { return e.ops }

// Op returns the operation with the given ID.
func (e *Execution) Op(id int) *Op { return e.ops[id] }

// Edges returns all dependency edges.
func (e *Execution) Edges() []Edge {
	var all []Edge
	for _, es := range e.out {
		all = append(all, es...)
	}
	return all
}

// In returns the in-edges of op id.
func (e *Execution) In(id int) []Edge { return e.in[id] }

// Out returns the out-edges of op id.
func (e *Execution) Out(id int) []Edge { return e.out[id] }

func (e *Execution) addEdge(from, to int, ord Ord) {
	ed := Edge{From: from, To: to, Ord: ord}
	e.out[from] = append(e.out[from], ed)
	e.in[to] = append(e.in[to], ed)
}

// earlierMatching returns the IDs of issued operations matching the rule's
// Earlier pattern for a new operation by proc p on loc v (NoLoc for
// global fences). The initial operation of a location matches the write and
// release patterns for any process (Definition 3).
//
// Location-scoped fences (the optimization Section IV-D mentions: "one
// could offer more complex fences on specific locations") carry a location
// and match only operations on it; a plain fence (NoLoc) spans all
// locations. A location fence in the history likewise only constrains
// operations on its own location.
func (e *Execution) earlierMatching(r Rule, p ProcID, v Loc) []int {
	// The fence column/row widens matching to all locations only for
	// location-less fences.
	globalFence := (r.Earlier == KFence || r.New == KFence) && v == NoLoc
	var ids []int
	switch r.Earlier {
	case KRead:
		if globalFence {
			ids = e.readsP[p]
		} else {
			ids = e.readsPL[procLoc{p, v}]
		}
	case KWrite:
		if globalFence {
			ids = e.writesP[p]
		} else {
			ids = e.writesPL[procLoc{p, v}]
			if init, ok := e.initOf[v]; ok && r.New != KFence {
				// Prepend the init write (matches any proc).
				ids = append([]int{init}, ids...)
			}
		}
	case KAcquire:
		if globalFence {
			ids = e.acquiresP[p]
		} else {
			ids = e.acquiresPL[procLoc{p, v}]
		}
	case KRelease:
		switch {
		case r.AnyProc:
			ids = e.releasesL[v] // includes init
		case globalFence:
			ids = e.releasesP[p]
		default:
			ids = e.releasesPL[procLoc{p, v}]
		}
	case KFence:
		if v == NoLoc {
			ids = e.fencesP[p]
		} else {
			// Both plain fences and same-location fences order
			// the new operation on v.
			ids = append(append([]int(nil), e.fencesP[p]...), e.fencesPL[procLoc{p, v}]...)
		}
	}
	return ids
}

// Exec issues a new operation and applies the Table I rules, returning it
// (Definition 4). val is the written value for writes and the returned
// value for reads; it is ignored for other kinds. Fences must use NoLoc;
// all other kinds need a valid location.
func (e *Execution) Exec(k Kind, p ProcID, v Loc, val Value, label string) *Op {
	// Fences may carry NoLoc (span all locations, the paper's default)
	// or a location (the Section IV-D scoped-fence extension).
	if v != NoLoc && int(v) >= len(e.locNames) {
		panic(fmt.Sprintf("core: op %s on unknown location %d", k, v))
	}
	if k != KFence && v == NoLoc {
		panic(fmt.Sprintf("core: op %s needs a location", k))
	}
	if p == InitProc {
		panic("core: InitProc cannot issue operations")
	}
	op := &Op{ID: len(e.ops), Kind: k, Proc: p, Loc: v, Val: val, Label: label}
	e.ops = append(e.ops, op)
	e.out = append(e.out, nil)
	e.in = append(e.in, nil)

	for _, r := range RulesFor(k) {
		for _, from := range e.earlierMatching(r, p, v) {
			ord := r.Ord
			// Edges out of the initial operation are globally
			// visible: every process agrees on the initial state.
			if e.ops[from].IsInit && ord == OrdLocal {
				ord = OrdProgram
			}
			e.addEdge(from, op.ID, ord)
		}
	}

	// Update the pattern indexes.
	switch k {
	case KRead:
		e.readsPL[procLoc{p, v}] = append(e.readsPL[procLoc{p, v}], op.ID)
		e.readsP[p] = append(e.readsP[p], op.ID)
	case KWrite:
		e.writesPL[procLoc{p, v}] = append(e.writesPL[procLoc{p, v}], op.ID)
		e.writesP[p] = append(e.writesP[p], op.ID)
	case KAcquire:
		e.acquiresPL[procLoc{p, v}] = append(e.acquiresPL[procLoc{p, v}], op.ID)
		e.acquiresP[p] = append(e.acquiresP[p], op.ID)
	case KRelease:
		e.releasesL[v] = append(e.releasesL[v], op.ID)
		e.releasesP[p] = append(e.releasesP[p], op.ID)
		e.releasesPL[procLoc{p, v}] = append(e.releasesPL[procLoc{p, v}], op.ID)
	case KFence:
		if v == NoLoc {
			e.fencesP[p] = append(e.fencesP[p], op.ID)
		} else {
			e.fencesPL[procLoc{p, v}] = append(e.fencesPL[procLoc{p, v}], op.ID)
		}
	}
	return op
}

// Convenience issue helpers.

// Read issues a read of v by p that returned val.
func (e *Execution) Read(p ProcID, v Loc, val Value) *Op {
	return e.Exec(KRead, p, v, val, "")
}

// Write issues a write of val to v by p.
func (e *Execution) Write(p ProcID, v Loc, val Value) *Op {
	return e.Exec(KWrite, p, v, val, "")
}

// Acquire issues an acquire of v by p.
func (e *Execution) Acquire(p ProcID, v Loc) *Op {
	return e.Exec(KAcquire, p, v, 0, "")
}

// Release issues a release of v by p.
func (e *Execution) Release(p ProcID, v Loc) *Op {
	return e.Exec(KRelease, p, v, 0, "")
}

// Fence issues a fence by p spanning all locations.
func (e *Execution) Fence(p ProcID) *Op {
	return e.Exec(KFence, p, NoLoc, 0, "")
}

// FenceLoc issues a location-scoped fence by p: it orders only operations
// on v (the optimization Section IV-D mentions). It is strictly weaker
// than Fence.
func (e *Execution) FenceLoc(p ProcID, v Loc) *Op {
	return e.Exec(KFence, p, v, 0, "")
}

package core

// This file makes Section IV-E ("Comparison to Existing Models")
// executable. The paper characterizes PMC's globally observable orderings
// by two properties from Steinke & Nutt's taxonomy:
//
//	GDO (Global Data Order):    all writes to one location are totally
//	                            ordered, across processes — what
//	                            acquire/release pairs provide;
//	GPO (Global Process Order): all writes of one process are totally
//	                            ordered, across locations — what fences
//	                            provide.
//
// The paper's claims, each of which has a corresponding test:
//   - plain reads/writes behave as Slow Consistency (per-process,
//     per-location order only);
//   - wrapping writes in acquire/release yields GDO — Cache Consistency;
//   - adding a fence between every operation yields GDO+GPO — Processor
//     Consistency, which can simulate SC for data-race-free programs;
//   - both GDO and GPO are required for a usable model.

// HasGDO reports whether all writes to v (including the initial one) are
// totally ordered under ≺G — Global Data Order for that location.
func (e *Execution) HasGDO(v Loc) bool { return e.WritesTotallyOrderedG(v) }

// HasGDOAll reports GDO for every location.
func (e *Execution) HasGDOAll() bool {
	for v := Loc(0); int(v) < e.NumLocs(); v++ {
		if !e.HasGDO(v) {
			return false
		}
	}
	return true
}

// HasGPO reports whether all writes issued by process p are totally
// ordered under ≺G across locations — Global Process Order for p.
func (e *Execution) HasGPO(p ProcID) bool {
	var ws []int
	for _, op := range e.ops {
		if op.Kind == KWrite && !op.IsInit && op.Proc == p {
			ws = append(ws, op.ID)
		}
	}
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			if !e.ReachableG(ws[i], ws[j]) && !e.ReachableG(ws[j], ws[i]) {
				return false
			}
		}
	}
	return true
}

// HasGPOAll reports GPO for every process that issued a write.
func (e *Execution) HasGPOAll() bool {
	seen := map[ProcID]bool{}
	for _, op := range e.ops {
		if op.Kind == KWrite && !op.IsInit && !seen[op.Proc] {
			seen[op.Proc] = true
			if !e.HasGPO(op.Proc) {
				return false
			}
		}
	}
	return true
}

// ClassifyStrength names the strongest classical model the execution's
// global orderings satisfy, per Section IV-E's characterization:
//
//	"slow" — neither GDO nor GPO beyond per-process-per-location order;
//	"cc"   — GDO everywhere (Cache Consistency);
//	"gpo"  — GPO everywhere but not GDO (PRAM-like);
//	"pc"   — GDO and GPO everywhere (Processor Consistency).
func (e *Execution) ClassifyStrength() string {
	gdo, gpo := e.HasGDOAll(), e.HasGPOAll()
	switch {
	case gdo && gpo:
		return "pc"
	case gdo:
		return "cc"
	case gpo:
		return "gpo"
	default:
		return "slow"
	}
}

// SlowConsistencyHolds verifies the base guarantee PMC shares with Slow
// Consistency: writes by one process to one location are observed by that
// process's later reads in issue order — i.e. for every read, the writes
// of the reading process to that location that precede it in issue order
// are all p≺-before it.
func (e *Execution) SlowConsistencyHolds() bool {
	for _, rd := range e.ops {
		if rd.Kind != KRead || rd.IsInit {
			continue
		}
		for _, w := range e.ops {
			if w.Kind != KWrite || w.IsInit || w.Proc != rd.Proc || w.Loc != rd.Loc || w.ID >= rd.ID {
				continue
			}
			if !e.ReachableP(rd.Proc, w.ID, rd.ID) {
				return false
			}
		}
	}
	return true
}

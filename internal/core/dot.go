package core

import (
	"fmt"
	"sort"
	"strings"
)

// redundant reports whether edge ed is implied by the rest of the graph:
// there is an alternative path From→To of length ≥ 2 using edges at least
// as visible as ed (global edges may only be replaced by global paths;
// local edges by paths visible to their owner). The paper's figures are
// transitively reduced in exactly this sense.
func (e *Execution) redundant(ed Edge) bool {
	viewer := InitProc // global-only view
	if !ed.Ord.Global() {
		viewer = e.ops[ed.To].Proc
	}
	// BFS from ed.From avoiding the direct edge.
	seen := make([]bool, len(e.ops))
	queue := []int{ed.From}
	seen[ed.From] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, o := range e.out[n] {
			if n == ed.From && o.To == ed.To {
				continue // skip the edge under test
			}
			if !e.visible(o, viewer) || seen[o.To] {
				continue
			}
			if o.To == ed.To {
				return true
			}
			seen[o.To] = true
			queue = append(queue, o.To)
		}
	}
	return false
}

// ReducedEdges returns the transitive reduction of the dependency graph,
// respecting edge visibility.
func (e *Execution) ReducedEdges() []Edge {
	var out []Edge
	for _, es := range e.out {
		for _, ed := range es {
			if !e.redundant(ed) {
				out = append(out, ed)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// DOT renders the execution as a Graphviz digraph in the style of the
// paper's Figs. 2–5: transitively reduced, one subgraph cluster per
// process, local edges dashed and annotated with their owning process,
// the implicit initial writes omitted unless they carry a non-redundant
// edge.
func (e *Execution) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	edges := e.ReducedEdges()
	used := make(map[int]bool)
	for _, ed := range edges {
		used[ed.From] = true
		used[ed.To] = true
	}

	// Group nodes per process.
	byProc := make(map[ProcID][]*Op)
	for _, op := range e.ops {
		if op.IsInit && !used[op.ID] {
			continue // paper omits implicit init writes
		}
		byProc[op.Proc] = append(byProc[op.Proc], op)
	}
	var procs []ProcID
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		if p != InitProc {
			fmt.Fprintf(&b, "  subgraph cluster_p%d {\n    label=\"Process %d\";\n", p, p)
		}
		for _, op := range byProc[p] {
			label := op.Label
			if label == "" {
				label = op.String()
			}
			indent := "  "
			if p != InitProc {
				indent = "    "
			}
			fmt.Fprintf(&b, "%sn%d [label=%q];\n", indent, op.ID, label)
		}
		if p != InitProc {
			b.WriteString("  }\n")
		}
	}
	for _, ed := range edges {
		attrs := fmt.Sprintf("label=%q", ed.Ord.String())
		if !ed.Ord.Global() {
			owner := e.ops[ed.To].Proc
			attrs = fmt.Sprintf("label=\"%d%s\", style=dashed", owner, ed.Ord)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", ed.From, ed.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/soc"
)

// Stable spec hashing. A sweep's output is a deterministic function of its
// declarative grid — every cell simulation is seeded and merged in grid
// order — so a canonical encoding of the grid identifies the result. The
// pmcd result store keys cached sweep tables by this identity (plus a
// code-version component it adds itself; see internal/pmcd).
//
// Canonicalization expands defaults: a nil Backends axis and an explicit
// list of every backend hash identically, because they run identically.
// Specs carrying code (Make, Configure) are not content-addressable and
// are refused — a closure's behavior is invisible to any encoding of the
// struct, and hashing the rest would silently conflate different grids.

// CanonicalSpec is the declarative identity of a sweep grid with every
// default expanded. Field order is the serialization order, so the
// marshaled bytes are canonical.
type CanonicalSpec struct {
	Apps     []string `json:"apps"`
	Backends []string `json:"backends"`
	Tiles    []int    `json:"tiles"`
	Topos    []string `json:"topos"`
	// Base is the full system-configuration template (defaults expanded),
	// included because any knob on it — cache sizes, SDRAM timing, event
	// queue — can change the measured cycles.
	Base soc.Config `json:"base"`
}

// Canonical returns the spec's canonical declarative form, or an error for
// specs that carry code: a Make or Configure hook makes the grid's
// behavior invisible to any encoding, so such specs have no stable hash.
func (s *Spec) Canonical() (*CanonicalSpec, error) {
	if s.Make != nil {
		return nil, fmt.Errorf("sweep: spec with a Make hook is not content-addressable")
	}
	if s.Configure != nil {
		return nil, fmt.Errorf("sweep: spec with a Configure hook is not content-addressable")
	}
	cs := &CanonicalSpec{
		Apps:     append([]string(nil), s.Apps...),
		Backends: s.Backends,
		Tiles:    s.Tiles,
		Base:     s.base(),
	}
	if len(cs.Backends) == 0 {
		cs.Backends = rt.Backends
	}
	cs.Backends = append([]string(nil), cs.Backends...)
	if len(cs.Tiles) == 0 {
		cs.Tiles = []int{cs.Base.Tiles}
	}
	cs.Tiles = append([]int(nil), cs.Tiles...)
	topos := s.Topos
	if len(topos) == 0 {
		topos = []noc.Topology{noc.TopoRing}
	}
	for _, t := range topos {
		cs.Topos = append(cs.Topos, t.String())
	}
	return cs, nil
}

// Hash returns the canonical spec's content hash: the hex SHA-256 of its
// canonical JSON encoding.
func (cs *CanonicalSpec) Hash() string {
	data, err := json.Marshal(cs)
	if err != nil {
		// CanonicalSpec is plain data (strings, ints, the flat config
		// struct); marshaling cannot fail.
		panic(fmt.Sprintf("sweep: canonical spec marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Hash is Canonical().Hash() for declarative specs.
func (s *Spec) Hash() (string, error) {
	cs, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return cs.Hash(), nil
}

package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"pmc/internal/rt"

	"pmc/internal/noc"
	"pmc/internal/soc"
	"pmc/internal/workloads"
)

// smallBase is a compact system template for quick grids.
func smallBase() *soc.Config {
	cfg := soc.DefaultConfig()
	return &cfg
}

// smallSpec is the canonical test grid: the three SPLASH substitutes at CI
// size across every backend of the acceptance matrix, two tile counts, both
// topologies.
func smallSpec(workers int) Spec {
	return Spec{
		Apps:     []string{"radiosity", "raytrace", "volrend"},
		Backends: []string{"nocc", "swcc", "dsm", "spm"},
		Tiles:    []int{2, 4},
		Topos:    []noc.Topology{noc.TopoRing, noc.TopoMesh},
		Base:     smallBase(),
		Make: func(c Cell) (workloads.App, error) {
			app, _ := workloads.Scaled(c.App, true)
			return app, nil
		},
		Workers: workers,
	}
}

// TestSweepDeterminism is the simulator analogue of PR 1's 4-mode
// differential test: the same grid with 1 worker and N workers must produce
// byte-identical JSON and CSV result tables — cycles, checksums and NoC
// counters included.
func TestSweepDeterminism(t *testing.T) {
	seq, err := Run(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(smallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	var js, jp, cs, cp bytes.Buffer
	if err := seq.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&jp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jp.Bytes()) {
		t.Fatalf("1-worker and 8-worker JSON tables differ:\n--- seq ---\n%s\n--- par ---\n%s",
			js.String(), jp.String())
	}
	if err := seq.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), cp.Bytes()) {
		t.Fatal("1-worker and 8-worker CSV tables differ")
	}
	// Sanity on the content itself: every cell ran to completion.
	for _, r := range seq.Rows {
		if r.Cycles == 0 || r.Err != "" {
			t.Fatalf("row %s/%s/%d/%s incomplete: cycles=%d err=%q",
				r.App, r.Backend, r.Tiles, r.Topology, r.Cycles, r.Err)
		}
	}
}

// TestSweepChecksumPortability: at a fixed (app, tiles), every backend and
// topology must compute the same checksum — the PMC portability claim, now
// checked across the whole grid.
func TestSweepChecksumPortability(t *testing.T) {
	table, err := Run(smallSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint32{}
	for _, r := range table.Rows {
		key := fmt.Sprintf("%s/%d", r.App, r.Tiles)
		if prev, ok := want[key]; !ok {
			want[key] = r.Checksum
		} else if prev != r.Checksum {
			t.Errorf("%s on %s/%s: checksum %#x != %#x", key, r.Backend, r.Topology, r.Checksum, prev)
		}
	}
}

func TestSweepGridOrder(t *testing.T) {
	spec := smallSpec(1)
	cells := spec.Cells()
	if len(cells) != 3*4*2*2 {
		t.Fatalf("grid has %d cells, want 48", len(cells))
	}
	// Apps outermost, topologies innermost.
	if cells[0].App != "radiosity" || cells[0].Backend != "nocc" || cells[0].Tiles != 2 || cells[0].Topo != noc.TopoRing {
		t.Fatalf("first cell %+v", cells[0])
	}
	if cells[1].Topo != noc.TopoMesh {
		t.Fatalf("second cell should flip topology, got %+v", cells[1])
	}
	if cells[len(cells)-1].App != "volrend" || cells[len(cells)-1].Backend != "spm" {
		t.Fatalf("last cell %+v", cells[len(cells)-1])
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
}

func TestSweepDefaults(t *testing.T) {
	spec := Spec{Apps: []string{"msgpass"}, Backends: []string{"nocc"}, Tiles: []int{2}}
	table, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(table.Rows))
	}
	if table.Rows[0].Topology != "ring" {
		t.Fatalf("default topology %q, want ring", table.Rows[0].Topology)
	}
	// Empty Backends axis expands to every backend.
	all := Spec{Apps: []string{"msgpass"}, Tiles: []int{4}}
	if n := len(all.Cells()); n != len(rt.Backends) {
		t.Fatalf("default backend axis has %d cells, want %d", n, len(rt.Backends))
	}
}

func TestSweepValidation(t *testing.T) {
	cases := []Spec{
		{},                              // no apps
		{Apps: []string{"no-such-app"}}, // unknown app
		{Apps: []string{"msgpass"}, Backends: []string{"hwcc"}}, // unknown backend
		{Apps: []string{"msgpass"}, Tiles: []int{0}},            // zero tiles
		{Apps: []string{"msgpass"}, Tiles: []int{-4}},           // negative tiles
	}
	for i, spec := range cases {
		if _, err := Run(spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

// TestSweepCellFailureContained: a failing cell is recorded in its row and
// reported as the run error, while the other cells still complete.
func TestSweepCellFailureContained(t *testing.T) {
	spec := Spec{
		Apps:     []string{"msgpass"},
		Backends: []string{"nocc", "swcc"},
		Tiles:    []int{4},
		Make: func(c Cell) (workloads.App, error) {
			if c.Backend == "nocc" {
				return nil, errors.New("boom")
			}
			app, _ := workloads.ByName(c.App)
			return app, nil
		},
	}
	table, err := Run(spec)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want cell failure", err)
	}
	if table == nil || len(table.Rows) != 2 {
		t.Fatal("table missing despite partial failure")
	}
	if table.Rows[0].Err == "" || table.Rows[1].Err != "" {
		t.Fatalf("rows = %+v", table.Rows)
	}
	if table.Rows[1].Cycles == 0 {
		t.Fatal("healthy cell did not complete")
	}
}

// TestSweepPanicContained: workload Setup guards panic on impossible cell
// shapes (mfifo needs readers+writers tiles); the engine must convert that
// into a cell error, not a process crash.
func TestSweepPanicContained(t *testing.T) {
	spec := Spec{
		Apps:     []string{"mfifo"},
		Backends: []string{"nocc"},
		Tiles:    []int{2}, // < 2 readers + 2 writers
	}
	table, err := Run(spec)
	if err == nil {
		t.Fatal("impossible cell did not error")
	}
	if len(table.Rows) != 1 || !strings.Contains(table.Rows[0].Err, "panic") {
		t.Fatalf("rows = %+v, want contained panic", table.Rows)
	}
}

func TestSweepJSONShape(t *testing.T) {
	spec := Spec{Apps: []string{"msgpass"}, Backends: []string{"dsm"}, Tiles: []int{4}}
	table, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"app": "msgpass"`, `"backend": "dsm"`, `"tiles": 4`, `"cycles"`, `"flit_hops"`, `"checksum"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"err"`) {
		t.Error("err field should be omitted on success")
	}
	buf.Reset()
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "app,backend,tiles,topology,cycles") {
		t.Fatalf("CSV shape wrong:\n%s", buf.String())
	}
}

func TestSweepFind(t *testing.T) {
	table, err := Run(Spec{Apps: []string{"msgpass"}, Backends: []string{"nocc", "swcc"}, Tiles: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	r := table.Find("msgpass", "swcc", 4, noc.TopoRing)
	if r == nil || r.Backend != "swcc" || r.Tiles != 4 {
		t.Fatalf("Find returned %+v", r)
	}
	if table.Find("msgpass", "swcc", 64, noc.TopoRing) != nil {
		t.Fatal("Find fabricated a row")
	}
}

// TestSweepHopSplitEmitted is the regression test for the dropped
// hierarchical hop columns: PR 6's local/global flit-hop split reached
// workloads.Result but sweep rows silently dropped it. Cluster cells must
// emit a non-trivial split that sums to flit_hops, and both serialized
// forms must carry the columns.
func TestSweepHopSplitEmitted(t *testing.T) {
	topo, err := noc.ParseTopology("cluster:4xring")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Apps:     []string{"radiosity"},
		Backends: []string{"cdsm"},
		Tiles:    []int{16},
		Topos:    []noc.Topology{topo},
		Make: func(c Cell) (workloads.App, error) {
			app, _ := workloads.Scaled(c.App, true)
			return app, nil
		},
	}
	table, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := table.Rows[0]
	if r.LocalFlitHops == 0 || r.GlobalFlitHops == 0 {
		t.Fatalf("cluster cell hop split not populated: local=%d global=%d", r.LocalFlitHops, r.GlobalFlitHops)
	}
	if r.LocalFlitHops+r.GlobalFlitHops != r.FlitHops {
		t.Fatalf("hop split %d+%d != flit_hops %d", r.LocalFlitHops, r.GlobalFlitHops, r.FlitHops)
	}
	var js, cs bytes.Buffer
	if err := table.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"local_flit_hops"`, `"global_flit_hops"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, js.String())
		}
	}
	if err := table.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(cs.String(), "\n", 2)[0]
	for _, want := range []string{"local_flit_hops", "global_flit_hops"} {
		if !strings.Contains(header, want) {
			t.Errorf("CSV header missing %s: %s", want, header)
		}
	}
}

// serviceSpec is a compact service-workload grid at CI size.
func serviceSpec(workers int) Spec {
	return Spec{
		Apps:     []string{"server", "kvstore", "stream"},
		Backends: []string{"nocc", "dsm", "adaptive"},
		Tiles:    []int{8},
		Base:     smallBase(),
		Make: func(c Cell) (workloads.App, error) {
			app, _ := workloads.Scaled(c.App, true)
			return app, nil
		},
		Workers: workers,
	}
}

// TestSweepServiceColumns: service cells populate the request/latency
// columns (kernel cells omit them), the quantiles are ordered, and the
// whole service grid — latency columns included — stays byte-identical
// across worker counts.
func TestSweepServiceColumns(t *testing.T) {
	seq, err := Run(serviceSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range seq.Rows {
		if r.Requests == 0 {
			t.Fatalf("%s/%s: no requests recorded", r.App, r.Backend)
		}
		if r.P50Latency == 0 || r.P50Latency > r.P99Latency {
			t.Fatalf("%s/%s: quantiles out of order: p50=%d p99=%d", r.App, r.Backend, r.P50Latency, r.P99Latency)
		}
		if r.Result.Service == nil || r.Result.Service.Completed != r.Result.Service.Offered {
			t.Fatalf("%s/%s: service incomplete: %+v", r.App, r.Backend, r.Result.Service)
		}
	}
	par, err := Run(serviceSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	var js, jp bytes.Buffer
	if err := seq.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&jp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jp.Bytes()) {
		t.Fatal("service grid not byte-identical across worker counts")
	}
	if !strings.Contains(js.String(), `"p50_latency"`) || !strings.Contains(js.String(), `"p99_latency"`) {
		t.Fatalf("JSON missing latency columns:\n%s", js.String())
	}
	// Kernel rows must omit the service columns.
	kernel, err := Run(Spec{Apps: []string{"msgpass"}, Backends: []string{"dsm"}, Tiles: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	var kb bytes.Buffer
	if err := kernel.WriteJSON(&kb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(kb.String(), `"p50_latency"`) {
		t.Error("kernel row should omit service columns")
	}
}

func TestEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var sum int64
		if err := Each(100, workers, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != 4950 {
			t.Fatalf("workers=%d: sum %d, want 4950", workers, sum)
		}
	}
	// Lowest-index error wins regardless of completion order.
	err := Each(10, 4, func(i int) error {
		if i == 7 || i == 3 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 3" {
		t.Fatalf("err = %v, want fail 3", err)
	}
	if err := Each(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("Each(0) must be a no-op")
	}
}

// Package sweep is a batched, parallel execution engine for simulator
// experiments: a declarative grid spec (apps × backends × tile counts ×
// NoC topologies) expanded into independent cells, a worker pool that runs
// each cell's deterministic simulation concurrently, and machine-readable
// emission (JSON, CSV) of the measured results.
//
// Every simulation owns its own sim.Kernel, soc.System and rt.Runtime, so
// cells share no state and any completion order is safe; results are merged
// back in deterministic grid order, which makes a sweep's output — down to
// the emitted bytes — independent of the worker count. The multi-cell
// experiments in internal/exp submit their cells through this engine, and
// scaling studies (MemPool-style tile sweeps, Regional-Consistency-style
// backend comparisons across system sizes) are one Spec each.
package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/soc"
	"pmc/internal/workloads"
)

// Spec declares a sweep grid. Cells are the cross product
// Apps × Backends × Tiles × Topos, expanded in that nesting order (apps
// outermost, topologies innermost). Empty axes get defaults: Backends
// defaults to every backend, Tiles to the base config's tile count, Topos
// to the ring.
type Spec struct {
	// Apps names the workloads (workloads.ByName) unless Make overrides
	// construction.
	Apps []string
	// Backends names the runtime backends (rt.Backends subset).
	Backends []string
	// Tiles lists the system sizes to sweep.
	Tiles []int
	// Topos lists the NoC topologies to sweep.
	Topos []noc.Topology
	// Base is the system configuration template; nil means
	// soc.DefaultConfig. Tiles and NoC.Topology are overwritten per cell.
	Base *soc.Config
	// Make builds the cell's workload instance. nil means
	// workloads.ByName(cell.App). Every cell must get a fresh instance:
	// App values carry per-run state.
	Make func(Cell) (workloads.App, error)
	// Configure optionally tweaks the cell's system config after the grid
	// axes are applied (e.g. cache sizing studies).
	Configure func(Cell, *soc.Config)
	// Workers caps concurrent simulations: 0 means GOMAXPROCS, 1 is
	// sequential. Results are identical for any value.
	Workers int
}

// Cell identifies one point of the grid.
type Cell struct {
	Index   int // position in grid order
	App     string
	Backend string
	Tiles   int
	Topo    noc.Topology
}

// String names the cell for error messages.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%dt/%s", c.App, c.Backend, c.Tiles, c.Topo)
}

// Row is one measured cell, flattened for machine-readable emission. The
// full Result stays available for rendering code but is excluded from the
// serialized forms.
type Row struct {
	App      string `json:"app"`
	Backend  string `json:"backend"`
	Tiles    int    `json:"tiles"`
	Topology string `json:"topology"`

	Cycles   uint64 `json:"cycles"`
	Checksum uint32 `json:"checksum"`

	NoCMessages uint64 `json:"noc_messages"`
	NoCBytes    uint64 `json:"noc_bytes"`
	FlitHops    uint64 `json:"flit_hops"`
	// The hierarchical split of FlitHops on cluster topologies (always
	// emitted: on flat topologies local equals flit_hops and global is 0).
	LocalFlitHops  uint64 `json:"local_flit_hops"`
	GlobalFlitHops uint64 `json:"global_flit_hops"`

	Busy            uint64 `json:"busy"`
	IStall          uint64 `json:"istall"`
	PrivReadStall   uint64 `json:"priv_read_stall"`
	SharedReadStall uint64 `json:"shared_read_stall"`
	WriteStall      uint64 `json:"write_stall"`
	FlushStall      uint64 `json:"flush_stall"`
	LockWait        uint64 `json:"lock_wait"`
	CopyStall       uint64 `json:"copy_stall"`
	Instrs          uint64 `json:"instrs"`
	FlushInstrs     uint64 `json:"flush_instrs"`

	// Service metrics, populated only for open-loop service workloads
	// (requests completed, exact latency quantiles in cycles).
	Requests   uint64 `json:"requests,omitempty"`
	P50Latency uint64 `json:"p50_latency,omitempty"`
	P99Latency uint64 `json:"p99_latency,omitempty"`

	Err string `json:"err,omitempty"`

	Result *workloads.Result `json:"-"`
}

// Table holds a completed sweep in grid order.
type Table struct {
	Rows []Row
}

// Cells expands the grid in deterministic order without running anything.
func (s *Spec) Cells() []Cell {
	backends := s.Backends
	if len(backends) == 0 {
		backends = rt.Backends
	}
	tiles := s.Tiles
	if len(tiles) == 0 {
		tiles = []int{s.base().Tiles}
	}
	topos := s.Topos
	if len(topos) == 0 {
		topos = []noc.Topology{noc.TopoRing}
	}
	var cells []Cell
	for _, app := range s.Apps {
		for _, b := range backends {
			for _, t := range tiles {
				for _, topo := range topos {
					cells = append(cells, Cell{
						Index: len(cells), App: app, Backend: b, Tiles: t, Topo: topo,
					})
				}
			}
		}
	}
	return cells
}

func (s *Spec) base() soc.Config {
	if s.Base != nil {
		return *s.Base
	}
	return soc.DefaultConfig()
}

// validate rejects malformed grids before any simulation starts.
func (s *Spec) validate(cells []Cell) error {
	if len(s.Apps) == 0 {
		return fmt.Errorf("sweep: no apps in grid")
	}
	if s.Make == nil {
		for _, app := range s.Apps {
			if _, ok := workloads.ByName(app); !ok {
				return fmt.Errorf("sweep: unknown app %q (have %v)", app, workloads.Names)
			}
		}
	}
	for _, b := range s.Backends {
		if _, err := rt.ByName(b); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, t := range s.Tiles {
		if t <= 0 {
			return fmt.Errorf("sweep: tile count %d must be positive", t)
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("sweep: empty grid")
	}
	return nil
}

// Run executes every cell of the grid on a worker pool and returns the
// merged table in grid order. Per-cell failures are recorded in Row.Err;
// the returned error is the first failure in grid order (the table still
// contains every completed row). Output is bit-identical for any Workers
// value because each cell's simulation is deterministic and rows are
// merged by index.
func Run(spec Spec) (*Table, error) {
	cells := spec.Cells()
	if err := spec.validate(cells); err != nil {
		return nil, err
	}
	rows := make([]Row, len(cells))
	Each(len(cells), spec.Workers, func(i int) error {
		rows[i] = runCell(&spec, cells[i])
		return nil
	})
	table := &Table{Rows: rows}
	for i := range rows {
		if rows[i].Err != "" {
			return table, fmt.Errorf("sweep: cell %s: %s", cells[i], rows[i].Err)
		}
	}
	return table, nil
}

// Each runs fn(i) for every i in [0, n) on a pool of workers goroutines
// (0 = GOMAXPROCS, 1 = sequential) and returns the lowest-index error.
// It is the raw fan-out primitive for independent deterministic cells that
// do not produce workloads.Results (e.g. the conformance matrix).
func Each(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCell builds and runs one cell's simulation. Panics (workload Setup
// guards reject impossible cell shapes, e.g. more FIFO roles than tiles)
// are contained as cell errors so one bad cell cannot take down a batch.
func runCell(spec *Spec, c Cell) (row Row) {
	row = Row{App: c.App, Backend: c.Backend, Tiles: c.Tiles, Topology: c.Topo.String()}
	defer func() {
		if r := recover(); r != nil {
			row.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	var app workloads.App
	var err error
	if spec.Make != nil {
		app, err = spec.Make(c)
		if err == nil && app == nil {
			err = fmt.Errorf("make returned nil app")
		}
	} else {
		var ok bool
		app, ok = workloads.ByName(c.App)
		if !ok {
			err = fmt.Errorf("unknown app %q", c.App)
		}
	}
	if err != nil {
		row.Err = err.Error()
		return row
	}
	cfg := spec.base()
	cfg.Tiles = c.Tiles
	cfg.NoC.Topology = c.Topo
	if spec.Configure != nil {
		spec.Configure(c, &cfg)
	}
	res, err := workloads.Run(app, cfg, c.Backend)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Cycles = uint64(res.Cycles)
	row.Checksum = res.Checksum
	row.NoCMessages = res.NoCMessages
	row.NoCBytes = res.NoCBytes
	row.FlitHops = res.FlitHops
	row.LocalFlitHops = res.LocalFlitHops
	row.GlobalFlitHops = res.GlobalFlitHops
	t := res.Total
	row.Busy = uint64(t.Busy)
	row.IStall = uint64(t.IStall)
	row.PrivReadStall = uint64(t.PrivReadStall)
	row.SharedReadStall = uint64(t.SharedReadStall)
	row.WriteStall = uint64(t.WriteStall)
	row.FlushStall = uint64(t.FlushStall)
	row.LockWait = uint64(t.LockWait)
	row.CopyStall = uint64(t.CopyStall)
	row.Instrs = t.Instrs
	row.FlushInstrs = t.FlushInstrs
	if res.Service != nil {
		row.Requests = res.Service.Completed
		row.P50Latency = res.Service.P50()
		row.P99Latency = res.Service.P99()
	}
	row.Result = res
	return row
}

// Find returns the row for the given cell coordinates, or nil.
func (t *Table) Find(app, backend string, tiles int, topo noc.Topology) *Row {
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.App == app && r.Backend == backend && r.Tiles == tiles && r.Topology == topo.String() {
			return r
		}
	}
	return nil
}

// Results returns the full workload results in grid order (nil entries for
// failed cells).
func (t *Table) Results() []*workloads.Result {
	out := make([]*workloads.Result, len(t.Rows))
	for i := range t.Rows {
		out[i] = t.Rows[i].Result
	}
	return out
}

// WriteJSON emits the table as an indented JSON array of rows. The bytes
// are deterministic: grid order is fixed and field order follows the
// struct.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Rows)
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"app", "backend", "tiles", "topology", "cycles", "checksum",
	"noc_messages", "noc_bytes", "flit_hops", "local_flit_hops", "global_flit_hops",
	"busy", "istall", "priv_read_stall", "shared_read_stall", "write_stall",
	"flush_stall", "lock_wait", "copy_stall", "instrs", "flush_instrs",
	"requests", "p50_latency", "p99_latency", "err",
}

// WriteCSV emits the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	u := strconv.FormatUint
	for i := range t.Rows {
		r := &t.Rows[i]
		rec := []string{
			r.App, r.Backend, strconv.Itoa(r.Tiles), r.Topology,
			u(r.Cycles, 10), u(uint64(r.Checksum), 10),
			u(r.NoCMessages, 10), u(r.NoCBytes, 10), u(r.FlitHops, 10),
			u(r.LocalFlitHops, 10), u(r.GlobalFlitHops, 10),
			u(r.Busy, 10), u(r.IStall, 10), u(r.PrivReadStall, 10),
			u(r.SharedReadStall, 10), u(r.WriteStall, 10), u(r.FlushStall, 10),
			u(r.LockWait, 10), u(r.CopyStall, 10), u(r.Instrs, 10),
			u(r.FlushInstrs, 10),
			u(r.Requests, 10), u(r.P50Latency, 10), u(r.P99Latency, 10), r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package noc

import (
	"testing"
	"testing/quick"

	"pmc/internal/mem"
	"pmc/internal/sim"
)

func build(tiles int) (*sim.Kernel, *Network, []*mem.Local) {
	k := sim.New()
	locals := make([]*mem.Local, tiles)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 4096)
	}
	n, err := New(k, Config{Tiles: tiles, HopLat: 2, FlitSize: 4, InjLat: 2}, locals)
	if err != nil {
		panic(err)
	}
	return k, n, locals
}

func TestHopsRing(t *testing.T) {
	_, n, _ := build(8)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 5, 3}, {0, 7, 1}, {6, 2, 4}, {7, 0, 1},
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPostWriteDelivers(t *testing.T) {
	k, n, locals := build(4)
	var at sim.Time
	k.Spawn("src", func(p *sim.Proc) {
		at = n.PostWrite32(0, 2, 0x10, 777)
		// Posted: sender did not advance.
		if p.Now() != 0 {
			t.Errorf("sender stalled to %d", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// inj 2 + 2 hops * 2 = 6.
	if at != 6 {
		t.Fatalf("delivery at %d, want 6", at)
	}
	if locals[2].Read32(0x10) != 777 {
		t.Fatal("data not delivered")
	}
	if locals[0].Read32(0x10) == 777 {
		t.Fatal("data delivered to wrong tile")
	}
}

func TestDataSnapshotAtInjection(t *testing.T) {
	// The NoC must capture the payload at injection time, not delivery
	// time (the sender may overwrite its buffer immediately after).
	k, n, locals := build(2)
	buf := []byte{1, 2, 3, 4}
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite(0, 1, 0, buf)
		buf[0] = 99 // overwrite before delivery
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if locals[1].Read8(0) != 1 {
		t.Fatalf("delivered %d, want snapshot value 1", locals[1].Read8(0))
	}
}

func TestFlowFIFOOrder(t *testing.T) {
	// Two writes to the same word on one flow: the second must land
	// after the first even though both have the same latency.
	k, n, locals := build(4)
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite32(0, 1, 0x20, 1)
		n.PostWrite32(0, 1, 0x20, 2) // same cycle, same flow
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := locals[1].Read32(0x20); got != 2 {
		t.Fatalf("final value %d, want 2 (FIFO)", got)
	}
}

func TestDataThenControlOrdering(t *testing.T) {
	// The lock protocol depends on: write payload, then send grant on
	// the same flow; the receiver must see the payload when the grant
	// fires.
	k, n, locals := build(4)
	var sawAtGrant uint32
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite(0, 3, 0x40, []byte{42, 0, 0, 0})
		n.PostControl(0, 3, 4, func() {
			sawAtGrant = locals[3].Read32(0x40)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAtGrant != 42 {
		t.Fatalf("grant observed %d, want 42 (data must precede control on a flow)", sawAtGrant)
	}
}

func TestLocalControlSkipsNetwork(t *testing.T) {
	k, n, _ := build(4)
	var at sim.Time
	fired := false
	k.Spawn("src", func(p *sim.Proc) {
		at = n.PostControl(2, 2, 4, func() { fired = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || at != 2 { // injection latency only
		t.Fatalf("local control at %d fired=%v, want 2,true", at, fired)
	}
}

func TestBlockLatencyScalesWithSize(t *testing.T) {
	_, n, _ := build(4)
	small := n.latency(0, 1, 4)
	big := n.latency(0, 1, 64)
	if big <= small {
		t.Fatalf("64B latency %d not greater than 4B latency %d", big, small)
	}
	// 64B at 4B/flit = 16 flits = 15 extra cycles over 1 flit.
	if big-small != 15 {
		t.Fatalf("serialization delta = %d, want 15", big-small)
	}
}

func TestRemoteWriteToSelfPanics(t *testing.T) {
	_, n, _ := build(2)
	defer func() {
		if recover() == nil {
			t.Error("PostWrite to own tile did not panic")
		}
	}()
	n.PostWrite32(1, 1, 0, 0)
}

// Property: on any single flow, delivery times are strictly increasing in
// injection order regardless of message sizes.
func TestFlowFIFOProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		k, n, _ := build(6)
		ok := true
		k.Spawn("src", func(p *sim.Proc) {
			var prev sim.Time
			for i, s := range sizes {
				at := n.PostWrite(0, 5, 0, make([]byte, int(s%64)+1))
				if i > 0 && at <= prev {
					ok = false
				}
				prev = at
				p.Wait(sim.Time(s % 3))
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats bytes equals the sum of payload sizes.
func TestStatsBytesProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		k, n, _ := build(3)
		var want uint64
		k.Spawn("src", func(p *sim.Proc) {
			for _, s := range sizes {
				sz := int(s%32) + 1
				want += uint64(sz)
				n.PostWrite(0, 1, 0, make([]byte, sz))
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return n.Stats().Bytes == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHopsMesh(t *testing.T) {
	k := sim.New()
	locals := make([]*mem.Local, 16)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 1024)
	}
	n, err := New(k, Config{Tiles: 16, HopLat: 2, FlitSize: 4, InjLat: 2, Topology: TopoMesh}, locals)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0},  // same tile
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column (4x4 mesh)
		{0, 15, 6}, // opposite corners
		{5, 10, 2}, // (1,1) -> (2,2)
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("mesh Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestZeroFlitSizeDefaults is the regression test for the division-by-zero
// panic: a hand-built Config that skips DefaultConfig leaves FlitSize at 0,
// which used to panic inside latency at (size+FlitSize-1)/FlitSize.
func TestZeroFlitSizeDefaults(t *testing.T) {
	k := sim.New()
	locals := make([]*mem.Local, 2)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 1024)
	}
	n, err := New(k, Config{Tiles: 2, HopLat: 1, InjLat: 1}, locals) // FlitSize omitted
	if err != nil {
		t.Fatalf("zero FlitSize must be defaulted, got error: %v", err)
	}
	if got, want := n.Config().FlitSize, DefaultConfig().FlitSize; got != want {
		t.Fatalf("FlitSize defaulted to %d, want %d", got, want)
	}
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite32(0, 1, 0, 7) // would have panicked before the fix
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if locals[1].Read32(0) != 7 {
		t.Fatal("write not delivered")
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Tiles: 4, HopLat: 2, FlitSize: 4, InjLat: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Tiles: 0, FlitSize: 4},
		{Tiles: -3, FlitSize: 4},
		{Tiles: maxTiles + 1, FlitSize: 4},
		{Tiles: 4, FlitSize: 0},
		{Tiles: 4, FlitSize: -1},
		{Tiles: 4, FlitSize: 4, HopLat: maxLat + 1},
		{Tiles: 4, FlitSize: 4, InjLat: maxLat + 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted bad config %+v", c)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	k := sim.New()
	if _, err := New(k, Config{Tiles: 2, FlitSize: -1}, make([]*mem.Local, 2)); err == nil {
		t.Error("negative FlitSize accepted")
	}
	if _, err := New(k, Config{Tiles: 3, FlitSize: 4}, make([]*mem.Local, 2)); err == nil {
		t.Error("locals/tiles mismatch accepted")
	}
}

func TestParseTopology(t *testing.T) {
	if topo, err := ParseTopology("ring"); err != nil || topo != TopoRing {
		t.Errorf("ParseTopology(ring) = %v, %v", topo, err)
	}
	if topo, err := ParseTopology("mesh"); err != nil || topo != TopoMesh {
		t.Errorf("ParseTopology(mesh) = %v, %v", topo, err)
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestMeshShortensWorstCase(t *testing.T) {
	build32 := func(topo Topology) *Network {
		k := sim.New()
		locals := make([]*mem.Local, 32)
		for i := range locals {
			locals[i] = mem.NewLocal(i, 0, 1024)
		}
		cfg := DefaultConfig()
		cfg.Topology = topo
		n, err := New(k, cfg, locals)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	ring, mesh := build32(TopoRing), build32(TopoMesh)
	worst := func(n *Network) int {
		m := 0
		for a := 0; a < 32; a++ {
			for b := 0; b < 32; b++ {
				if h := n.Hops(a, b); h > m {
					m = h
				}
			}
		}
		return m
	}
	if wr, wm := worst(ring), worst(mesh); wm >= wr {
		t.Fatalf("mesh worst-case hops %d not below ring %d at 32 tiles", wm, wr)
	}
}

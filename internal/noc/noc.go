// Package noc models the connectionless, write-only network-on-chip of the
// simulated SoC (paper Fig. 7, ref [16]): a tile may write into any other
// tile's local memory, but may not read remote memories. Writes are posted —
// the sender continues after injecting the message — and each (source,
// destination) flow delivers in FIFO order, which is the ordering property
// the DSM backend's coherence and the distributed lock's grant protocol rely
// on.
//
// The topology is a bidirectional ring by default (hop count = shortest ring
// distance), matching the modest many-core NoCs the paper targets; the hop
// latency and per-flit serialization are configurable.
package noc

import (
	"fmt"
	"strconv"
	"strings"

	"pmc/internal/mem"
	"pmc/internal/sim"
)

// Kind is a basic interconnect shape.
type Kind uint8

const (
	// KindRing is a bidirectional ring.
	KindRing Kind = iota
	// KindMesh is a 2-D mesh with XY routing.
	KindMesh
	// KindCluster is the hierarchical topology: a single-hop crossbar
	// inside each cluster of tiles, with a ring or mesh backbone between
	// cluster routers.
	KindCluster
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindCluster:
		return "cluster"
	}
	return "ring"
}

// Topology selects the interconnect shape. It is a comparable value: the
// zero value is the flat ring. Flat topologies use only Kind; the cluster
// topology additionally carries the cluster size and the backbone kind.
type Topology struct {
	// Kind is the overall shape.
	Kind Kind
	// Local is the number of tiles per cluster (KindCluster only).
	Local int
	// Global is the inter-cluster backbone, ring or mesh (KindCluster
	// only).
	Global Kind
}

// Flat topologies, named for convenience.
var (
	// TopoRing is the flat bidirectional ring (the default).
	TopoRing = Topology{Kind: KindRing}
	// TopoMesh is the flat 2-D mesh; by default the mesh is the smallest
	// square that fits the tile count (see Config.MeshW).
	TopoMesh = Topology{Kind: KindMesh}
)

// ClusterTopo returns the hierarchical topology with local tiles per
// cluster and the given inter-cluster backbone.
func ClusterTopo(local int, global Kind) Topology {
	return Topology{Kind: KindCluster, Local: local, Global: global}
}

// String names the topology; cluster topologies render as
// "cluster:<local>x<global>", the syntax ParseTopology accepts.
func (t Topology) String() string {
	if t.Kind == KindCluster {
		return fmt.Sprintf("cluster:%dx%s", t.Local, t.Global)
	}
	return t.Kind.String()
}

// ParseTopology converts a topology spec to a Topology: "ring", "mesh", or
// "cluster:<local>x<global>" where <local> is the tiles-per-cluster count
// and <global> is the backbone ("ring" or "mesh") — e.g. "cluster:16xmesh".
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	}
	if spec, ok := strings.CutPrefix(s, "cluster:"); ok {
		localStr, globalStr, ok := strings.Cut(spec, "x")
		if !ok {
			return Topology{}, fmt.Errorf("noc: cluster topology %q: want cluster:<local>x<global>, e.g. cluster:16xmesh", s)
		}
		local, err := strconv.Atoi(localStr)
		if err != nil || local <= 0 {
			return Topology{}, fmt.Errorf("noc: cluster topology %q: tiles per cluster %q must be a positive integer", s, localStr)
		}
		var global Kind
		switch globalStr {
		case "ring":
			global = KindRing
		case "mesh":
			global = KindMesh
		default:
			return Topology{}, fmt.Errorf("noc: cluster topology %q: backbone %q must be ring or mesh", s, globalStr)
		}
		return ClusterTopo(local, global), nil
	}
	return Topology{}, fmt.Errorf("noc: unknown topology %q (valid: ring, mesh, cluster:<local>x<global>)", s)
}

// Config sets the network's size and timing.
type Config struct {
	Tiles    int      // number of tiles
	HopLat   sim.Time // cycles per hop (intra-cluster and flat links)
	FlitSize int      // payload bytes carried per flit cycle
	InjLat   sim.Time // fixed injection (network-interface) latency
	Topology Topology // ring (default), mesh, or cluster
	// GlobalHopLat is the cycles per hop on the inter-cluster backbone
	// (KindCluster only); 0 means HopLat. Backbone links are longer
	// wires, so real designs clock them slower.
	GlobalHopLat sim.Time
	// MeshW is the mesh width (KindMesh only); 0 picks the smallest
	// square that fits the tile count. A non-zero width must tile the
	// count exactly.
	MeshW int
}

// DefaultConfig matches the 32-tile system of the paper.
func DefaultConfig() Config {
	return Config{Tiles: 32, HopLat: 2, FlitSize: 4, InjLat: 2}
}

// Bounds on a sane configuration: per-flow FIFO state is per (src, dst)
// pair (allocated lazily per source), and the latency arithmetic must stay
// far from wrapping sim.Time.
const (
	maxTiles = 4096
	maxLat   = sim.Time(1) << 32
)

// WithDefaults fills unset fields: a zero FlitSize becomes the default
// flit width (hand-built configs routinely skip it, and a zero value would
// otherwise divide by zero in the latency model).
func (c Config) WithDefaults() Config {
	if c.FlitSize == 0 {
		c.FlitSize = DefaultConfig().FlitSize
	}
	return c
}

// Validate reports configuration errors. Apply WithDefaults first if zero
// fields should be filled rather than rejected.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("noc: %d tiles", c.Tiles)
	}
	if c.Tiles > maxTiles {
		return fmt.Errorf("noc: %d tiles exceeds the supported maximum %d", c.Tiles, maxTiles)
	}
	if c.FlitSize <= 0 {
		return fmt.Errorf("noc: flit size %d must be positive", c.FlitSize)
	}
	if c.HopLat > maxLat {
		return fmt.Errorf("noc: hop latency %d unreasonably large", c.HopLat)
	}
	if c.InjLat > maxLat {
		return fmt.Errorf("noc: injection latency %d unreasonably large", c.InjLat)
	}
	if c.GlobalHopLat > maxLat {
		return fmt.Errorf("noc: global hop latency %d unreasonably large", c.GlobalHopLat)
	}
	switch c.Topology.Kind {
	case KindMesh:
		if c.MeshW > 0 && c.Tiles%c.MeshW != 0 {
			return fmt.Errorf("noc: mesh width %d does not tile %d tiles", c.MeshW, c.Tiles)
		}
	case KindCluster:
		t := c.Topology
		if t.Local <= 0 {
			return fmt.Errorf("noc: cluster topology needs a positive tiles-per-cluster count, got %d", t.Local)
		}
		if c.Tiles%t.Local != 0 {
			return fmt.Errorf("noc: %d tiles do not divide into clusters of %d", c.Tiles, t.Local)
		}
		if t.Global != KindRing && t.Global != KindMesh {
			return fmt.Errorf("noc: cluster backbone must be ring or mesh, got %v", t.Global)
		}
	}
	return nil
}

// Stats counts network activity. FlitHops is the total (a proxy for link
// energy/occupancy); on the cluster topology it additionally splits into
// the intra-cluster and backbone shares (flat topologies count everything
// as local).
type Stats struct {
	Messages       uint64
	Bytes          uint64
	FlitHops       uint64 // flits × hops, all links
	LocalFlitHops  uint64 // flits × hops on intra-cluster / flat links
	GlobalFlitHops uint64 // flits × hops on the inter-cluster backbone
}

// Network is the write-only interconnect. Delivery mutates destination
// local memory (or runs an arbitrary closure for control messages such as
// lock grants) at the computed arrival time.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	locals []*mem.Local

	// flows[src][dst] enforces per-flow FIFO delivery. Rows are
	// allocated on a source's first message: the dense Tiles² array was
	// 8 MiB per 1024-tile cell and adjacent sweep workers false-shared
	// it through the allocator; per-source rows keep each flow's state
	// compact and private to the cells that actually communicate.
	flows [][]sim.Time
	// meshW is the mesh edge length (flat mesh only).
	meshW int
	// clusterMeshW is the backbone mesh edge length (cluster topology
	// with a mesh backbone only).
	clusterMeshW int

	// resolve maps a delivery (dst tile, address) to the memory the
	// write lands in. The default resolves to the destination tile's
	// local memory; the SoC layer overrides it to route cluster-scratch
	// addresses to the cluster memory (SetMemResolver).
	resolve func(dst int, addr mem.Addr) *mem.Local

	stats Stats
}

// New returns a network over the given per-tile local memories. locals[i]
// is tile i's memory; len(locals) must equal cfg.Tiles. A zero FlitSize is
// defaulted (WithDefaults); other invalid fields are rejected (Validate).
func New(k *sim.Kernel, cfg Config, locals []*mem.Local) (*Network, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(locals) != cfg.Tiles {
		return nil, fmt.Errorf("noc: %d locals for %d tiles", len(locals), cfg.Tiles)
	}
	n := &Network{
		k:      k,
		cfg:    cfg,
		locals: locals,
		flows:  make([][]sim.Time, cfg.Tiles),
	}
	n.resolve = func(dst int, addr mem.Addr) *mem.Local { return n.locals[dst] }
	squareUp := func(count int) int {
		w := 1
		for w*w < count {
			w++
		}
		return w
	}
	switch cfg.Topology.Kind {
	case KindMesh:
		if cfg.MeshW > 0 {
			n.meshW = cfg.MeshW
		} else {
			n.meshW = squareUp(cfg.Tiles)
		}
	case KindCluster:
		if cfg.Topology.Global == KindMesh {
			n.clusterMeshW = squareUp(cfg.Tiles / cfg.Topology.Local)
		}
	}
	return n, nil
}

// SetMemResolver overrides how a delivery's (destination tile, address) is
// mapped to a destination memory. The SoC layer installs a resolver that
// routes cluster-scratch addresses to the destination tile's cluster
// memory; everything else stays in the tile's local memory.
func (n *Network) SetMemResolver(f func(dst int, addr mem.Addr) *mem.Local) {
	n.resolve = f
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// route returns the hop counts a message takes between two tiles, split
// into local (intra-cluster or flat) and global (backbone) links:
//
//   - flat ring: shortest ring distance, all local;
//   - flat mesh: Manhattan distance under XY routing, all local;
//   - cluster: one crossbar hop within a cluster; between clusters, one
//     hop up to the source cluster's router, the backbone ring/mesh
//     distance, and one hop down to the destination tile.
func (n *Network) route(src, dst int) (local, global int) {
	switch n.cfg.Topology.Kind {
	case KindMesh:
		sx, sy := src%n.meshW, src/n.meshW
		dx, dy := dst%n.meshW, dst/n.meshW
		return abs(sx-dx) + abs(sy-dy), 0
	case KindCluster:
		cl := n.cfg.Topology.Local
		sc, dc := src/cl, dst/cl
		if sc == dc {
			return 1, 0
		}
		clusters := n.cfg.Tiles / cl
		if n.cfg.Topology.Global == KindMesh {
			sx, sy := sc%n.clusterMeshW, sc/n.clusterMeshW
			dx, dy := dc%n.clusterMeshW, dc/n.clusterMeshW
			return 2, abs(sx-dx) + abs(sy-dy)
		}
		d := abs(sc - dc)
		if r := clusters - d; r < d {
			d = r
		}
		return 2, d
	}
	d := abs(src - dst)
	if r := n.cfg.Tiles - d; r < d {
		d = r
	}
	return d, 0
}

// Hops returns the total routing distance between two tiles.
func (n *Network) Hops(src, dst int) int {
	local, global := n.route(src, dst)
	return local + global
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// globalHopLat is the per-hop latency of backbone links.
func (n *Network) globalHopLat() sim.Time {
	if n.cfg.GlobalHopLat != 0 {
		return n.cfg.GlobalHopLat
	}
	return n.cfg.HopLat
}

// latency returns the head-arrival latency for a payload of size bytes.
func (n *Network) latency(src, dst, size int) sim.Time {
	flits := (size + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	local, global := n.route(src, dst)
	return n.cfg.InjLat + sim.Time(local)*n.cfg.HopLat +
		sim.Time(global)*n.globalHopLat() + sim.Time(flits-1)
}

// ControlLatency returns the head-arrival latency of a control message of
// the given size, without injecting anything. Lock-transfer protocols use
// it to compute multi-hop handoff schedules.
func (n *Network) ControlLatency(src, dst, size int) sim.Time {
	if src == dst {
		return n.cfg.InjLat
	}
	return n.latency(src, dst, size)
}

// arrival computes and records the FIFO-respecting delivery time of a new
// message on flow src→dst injected at base.
func (n *Network) arrivalAt(base sim.Time, src, dst, size int) sim.Time {
	at := base + n.latency(src, dst, size)
	row := n.flows[src]
	if row == nil {
		row = make([]sim.Time, n.cfg.Tiles)
		n.flows[src] = row
	}
	if at <= row[dst] {
		at = row[dst] + 1
	}
	row[dst] = at
	flits := (size + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	local, global := n.route(src, dst)
	n.stats.Messages++
	n.stats.Bytes += uint64(size)
	n.stats.FlitHops += uint64(flits * (local + global))
	n.stats.LocalFlitHops += uint64(flits * local)
	n.stats.GlobalFlitHops += uint64(flits * global)
	return at
}

// arrival injects at the current time.
func (n *Network) arrival(src, dst, size int) sim.Time {
	return n.arrivalAt(n.k.Now(), src, dst, size)
}

// PostWriteDelayed is PostWrite with injection deferred until earliest (at
// least the current time): the data snapshot is still taken at delivery
// scheduling time by the caller-provided source, so callers that need a
// later snapshot should capture it themselves. It returns the delivery
// time. Lock-transfer handoffs use it to model "notify previous owner,
// previous owner pushes the object".
func (n *Network) PostWriteDelayed(src, dst int, addr mem.Addr, data []byte, earliest sim.Time) (deliveredAt sim.Time) {
	if src == dst {
		panic("noc: remote write to own tile (use the core port)")
	}
	base := n.k.Now()
	if earliest > base {
		base = earliest
	}
	at := n.arrivalAt(base, src, dst, len(data))
	buf := append([]byte(nil), data...)
	n.k.ScheduleAt(at, func() { n.resolve(dst, addr).NoCWriteBlock(addr, buf) })
	return at
}

// PostWrite injects a posted remote write of data into dst's local memory at
// address addr. The sender does not stall; the write becomes visible in the
// destination memory at the returned delivery time.
func (n *Network) PostWrite(src, dst int, addr mem.Addr, data []byte) (deliveredAt sim.Time) {
	if src == dst {
		panic("noc: remote write to own tile (use the core port)")
	}
	at := n.arrival(src, dst, len(data))
	buf := append([]byte(nil), data...) // snapshot sender's data now
	n.k.ScheduleAt(at, func() { n.resolve(dst, addr).NoCWriteBlock(addr, buf) })
	return at
}

// PostWriteFan injects one burst of posted remote writes carrying the same
// payload to several destinations — the multicast pattern of a DSM flush
// broadcast. The network interface streams the messages back-to-back (the
// i-th message's flits enter the network right behind the previous
// message's, per-flit pipelining) instead of the core re-arbitrating
// injection per message, so the caller charges the core once for
// programming the burst rather than once per destination. Per-flow FIFO
// order is preserved; the data is snapshotted once at injection time. It
// returns the latest delivery time.
func (n *Network) PostWriteFan(src int, dsts []int, addrOf func(dst int) mem.Addr, data []byte) (last sim.Time) {
	if len(dsts) == 0 {
		return n.k.Now()
	}
	flits := (len(data) + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	buf := append([]byte(nil), data...) // one snapshot shared by all copies
	base := n.k.Now()
	for i, dst := range dsts {
		if dst == src {
			panic("noc: remote write to own tile (use the core port)")
		}
		at := n.arrivalAt(base+sim.Time(i*flits), src, dst, len(data))
		dst := dst
		n.k.ScheduleAt(at, func() {
			addr := addrOf(dst)
			n.resolve(dst, addr).NoCWriteBlock(addr, buf)
		})
		if at > last {
			last = at
		}
	}
	return last
}

// PostWrite32 injects a posted single-word remote write.
func (n *Network) PostWrite32(src, dst int, addr mem.Addr, v uint32) sim.Time {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return n.PostWrite(src, dst, addr, b[:])
}

// PostControl injects a control message (e.g. a lock request) delivered by
// running fn at the destination at the computed arrival time. size models
// the message's payload for timing. Control messages share each flow's FIFO
// order with data writes, so "write the data, then send the grant" works.
func (n *Network) PostControl(src, dst, size int, fn func()) (deliveredAt sim.Time) {
	var at sim.Time
	if src == dst {
		// Local control messages skip the network but still take the
		// injection latency (network-interface turnaround).
		at = n.k.Now() + n.cfg.InjLat
		n.stats.Messages++
	} else {
		at = n.arrival(src, dst, size)
	}
	n.k.ScheduleAt(at, fn)
	return at
}

// Package noc models the connectionless, write-only network-on-chip of the
// simulated SoC (paper Fig. 7, ref [16]): a tile may write into any other
// tile's local memory, but may not read remote memories. Writes are posted —
// the sender continues after injecting the message — and each (source,
// destination) flow delivers in FIFO order, which is the ordering property
// the DSM backend's coherence and the distributed lock's grant protocol rely
// on.
//
// The topology is a bidirectional ring by default (hop count = shortest ring
// distance), matching the modest many-core NoCs the paper targets; the hop
// latency and per-flit serialization are configurable.
package noc

import (
	"fmt"

	"pmc/internal/mem"
	"pmc/internal/sim"
)

// Topology selects the interconnect shape.
type Topology uint8

const (
	// TopoRing is a bidirectional ring (the default).
	TopoRing Topology = iota
	// TopoMesh is a 2-D mesh with XY routing; the mesh is the smallest
	// square that fits the tile count.
	TopoMesh
)

// String names the topology.
func (t Topology) String() string {
	if t == TopoMesh {
		return "mesh"
	}
	return "ring"
}

// ParseTopology converts a topology name ("ring" or "mesh") to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	}
	return 0, fmt.Errorf("noc: unknown topology %q (valid: ring, mesh)", s)
}

// Config sets the network's size and timing.
type Config struct {
	Tiles    int      // number of tiles
	HopLat   sim.Time // cycles per hop
	FlitSize int      // payload bytes carried per flit cycle
	InjLat   sim.Time // fixed injection (network-interface) latency
	Topology Topology // ring (default) or 2-D mesh
}

// DefaultConfig matches the 32-tile system of the paper.
func DefaultConfig() Config {
	return Config{Tiles: 32, HopLat: 2, FlitSize: 4, InjLat: 2}
}

// Bounds on a sane configuration: lastArrival is Tiles² entries, and the
// latency arithmetic must stay far from wrapping sim.Time.
const (
	maxTiles = 4096
	maxLat   = sim.Time(1) << 32
)

// WithDefaults fills unset fields: a zero FlitSize becomes the default
// flit width (hand-built configs routinely skip it, and a zero value would
// otherwise divide by zero in the latency model).
func (c Config) WithDefaults() Config {
	if c.FlitSize == 0 {
		c.FlitSize = DefaultConfig().FlitSize
	}
	return c
}

// Validate reports configuration errors. Apply WithDefaults first if zero
// fields should be filled rather than rejected.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("noc: %d tiles", c.Tiles)
	}
	if c.Tiles > maxTiles {
		return fmt.Errorf("noc: %d tiles exceeds the supported maximum %d", c.Tiles, maxTiles)
	}
	if c.FlitSize <= 0 {
		return fmt.Errorf("noc: flit size %d must be positive", c.FlitSize)
	}
	if c.HopLat > maxLat {
		return fmt.Errorf("noc: hop latency %d unreasonably large", c.HopLat)
	}
	if c.InjLat > maxLat {
		return fmt.Errorf("noc: injection latency %d unreasonably large", c.InjLat)
	}
	return nil
}

// Stats counts network activity.
type Stats struct {
	Messages uint64
	Bytes    uint64
	FlitHops uint64 // flits × hops, a proxy for link energy/occupancy
}

// Network is the write-only interconnect. Delivery mutates destination
// local memory (or runs an arbitrary closure for control messages such as
// lock grants) at the computed arrival time.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	locals []*mem.Local

	// lastArrival[src*Tiles+dst] enforces per-flow FIFO delivery.
	lastArrival []sim.Time
	// meshW is the mesh edge length (TopoMesh only).
	meshW int

	stats Stats
}

// New returns a network over the given per-tile local memories. locals[i]
// is tile i's memory; len(locals) must equal cfg.Tiles. A zero FlitSize is
// defaulted (WithDefaults); other invalid fields are rejected (Validate).
func New(k *sim.Kernel, cfg Config, locals []*mem.Local) (*Network, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(locals) != cfg.Tiles {
		return nil, fmt.Errorf("noc: %d locals for %d tiles", len(locals), cfg.Tiles)
	}
	n := &Network{
		k:           k,
		cfg:         cfg,
		locals:      locals,
		lastArrival: make([]sim.Time, cfg.Tiles*cfg.Tiles),
	}
	if cfg.Topology == TopoMesh {
		n.meshW = 1
		for n.meshW*n.meshW < cfg.Tiles {
			n.meshW++
		}
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Hops returns the routing distance between two tiles: shortest ring
// distance, or Manhattan distance under XY routing on the mesh.
func (n *Network) Hops(src, dst int) int {
	if n.cfg.Topology == TopoMesh {
		sx, sy := src%n.meshW, src/n.meshW
		dx, dy := dst%n.meshW, dst/n.meshW
		return abs(sx-dx) + abs(sy-dy)
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if r := n.cfg.Tiles - d; r < d {
		d = r
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// latency returns the head-arrival latency for a payload of size bytes.
func (n *Network) latency(src, dst, size int) sim.Time {
	flits := (size + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	return n.cfg.InjLat + sim.Time(n.Hops(src, dst))*n.cfg.HopLat + sim.Time(flits-1)
}

// ControlLatency returns the head-arrival latency of a control message of
// the given size, without injecting anything. Lock-transfer protocols use
// it to compute multi-hop handoff schedules.
func (n *Network) ControlLatency(src, dst, size int) sim.Time {
	if src == dst {
		return n.cfg.InjLat
	}
	return n.latency(src, dst, size)
}

// arrival computes and records the FIFO-respecting delivery time of a new
// message on flow src→dst injected at base.
func (n *Network) arrivalAt(base sim.Time, src, dst, size int) sim.Time {
	at := base + n.latency(src, dst, size)
	idx := src*n.cfg.Tiles + dst
	if at <= n.lastArrival[idx] {
		at = n.lastArrival[idx] + 1
	}
	n.lastArrival[idx] = at
	flits := (size + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	n.stats.Messages++
	n.stats.Bytes += uint64(size)
	n.stats.FlitHops += uint64(flits * n.Hops(src, dst))
	return at
}

// arrival injects at the current time.
func (n *Network) arrival(src, dst, size int) sim.Time {
	return n.arrivalAt(n.k.Now(), src, dst, size)
}

// PostWriteDelayed is PostWrite with injection deferred until earliest (at
// least the current time): the data snapshot is still taken at delivery
// scheduling time by the caller-provided source, so callers that need a
// later snapshot should capture it themselves. It returns the delivery
// time. Lock-transfer handoffs use it to model "notify previous owner,
// previous owner pushes the object".
func (n *Network) PostWriteDelayed(src, dst int, addr mem.Addr, data []byte, earliest sim.Time) (deliveredAt sim.Time) {
	if src == dst {
		panic("noc: remote write to own tile (use the core port)")
	}
	base := n.k.Now()
	if earliest > base {
		base = earliest
	}
	at := n.arrivalAt(base, src, dst, len(data))
	buf := append([]byte(nil), data...)
	n.k.ScheduleAt(at, func() { n.locals[dst].NoCWriteBlock(addr, buf) })
	return at
}

// PostWrite injects a posted remote write of data into dst's local memory at
// address addr. The sender does not stall; the write becomes visible in the
// destination memory at the returned delivery time.
func (n *Network) PostWrite(src, dst int, addr mem.Addr, data []byte) (deliveredAt sim.Time) {
	if src == dst {
		panic("noc: remote write to own tile (use the core port)")
	}
	at := n.arrival(src, dst, len(data))
	buf := append([]byte(nil), data...) // snapshot sender's data now
	n.k.ScheduleAt(at, func() { n.locals[dst].NoCWriteBlock(addr, buf) })
	return at
}

// PostWriteFan injects one burst of posted remote writes carrying the same
// payload to several destinations — the multicast pattern of a DSM flush
// broadcast. The network interface streams the messages back-to-back (the
// i-th message's flits enter the network right behind the previous
// message's, per-flit pipelining) instead of the core re-arbitrating
// injection per message, so the caller charges the core once for
// programming the burst rather than once per destination. Per-flow FIFO
// order is preserved; the data is snapshotted once at injection time. It
// returns the latest delivery time.
func (n *Network) PostWriteFan(src int, dsts []int, addrOf func(dst int) mem.Addr, data []byte) (last sim.Time) {
	if len(dsts) == 0 {
		return n.k.Now()
	}
	flits := (len(data) + n.cfg.FlitSize - 1) / n.cfg.FlitSize
	if flits == 0 {
		flits = 1
	}
	buf := append([]byte(nil), data...) // one snapshot shared by all copies
	base := n.k.Now()
	for i, dst := range dsts {
		if dst == src {
			panic("noc: remote write to own tile (use the core port)")
		}
		at := n.arrivalAt(base+sim.Time(i*flits), src, dst, len(data))
		dst := dst
		n.k.ScheduleAt(at, func() { n.locals[dst].NoCWriteBlock(addrOf(dst), buf) })
		if at > last {
			last = at
		}
	}
	return last
}

// PostWrite32 injects a posted single-word remote write.
func (n *Network) PostWrite32(src, dst int, addr mem.Addr, v uint32) sim.Time {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return n.PostWrite(src, dst, addr, b[:])
}

// PostControl injects a control message (e.g. a lock request) delivered by
// running fn at the destination at the computed arrival time. size models
// the message's payload for timing. Control messages share each flow's FIFO
// order with data writes, so "write the data, then send the grant" works.
func (n *Network) PostControl(src, dst, size int, fn func()) (deliveredAt sim.Time) {
	var at sim.Time
	if src == dst {
		// Local control messages skip the network but still take the
		// injection latency (network-interface turnaround).
		at = n.k.Now() + n.cfg.InjLat
		n.stats.Messages++
	} else {
		at = n.arrival(src, dst, size)
	}
	n.k.ScheduleAt(at, fn)
	return at
}

package noc

import (
	"strings"
	"testing"

	"pmc/internal/mem"
	"pmc/internal/sim"
)

func buildTopo(tiles int, topo Topology) (*sim.Kernel, *Network) {
	k := sim.New()
	locals := make([]*mem.Local, tiles)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 4096)
	}
	n, err := New(k, Config{Tiles: tiles, HopLat: 2, FlitSize: 4, InjLat: 2, Topology: topo}, locals)
	if err != nil {
		panic(err)
	}
	return k, n
}

func TestParseTopologyCluster(t *testing.T) {
	good := []struct {
		s    string
		want Topology
	}{
		{"cluster:16xring", ClusterTopo(16, KindRing)},
		{"cluster:4xmesh", ClusterTopo(4, KindMesh)},
		{"cluster:1xring", ClusterTopo(1, KindRing)},
	}
	for _, tc := range good {
		got, err := ParseTopology(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseTopology(%q) = %+v, %v; want %+v", tc.s, got, err, tc.want)
		}
		if got.String() != tc.s {
			t.Errorf("%q round-trips to %q", tc.s, got.String())
		}
	}
	bad := []struct{ s, hint string }{
		{"cluster:", "cluster:<local>x<global>"},
		{"cluster:16", "cluster:<local>x<global>"},
		{"cluster:xmesh", "positive integer"},
		{"cluster:-4xmesh", "positive integer"},
		{"cluster:0xring", "positive integer"},
		{"cluster:axring", "positive integer"},
		{"cluster:4xtorus", "must be ring or mesh"},
		{"cluster:4x", "must be ring or mesh"},
		{"clusters:4xring", "valid: ring, mesh, cluster:<local>x<global>"},
	}
	for _, tc := range bad {
		_, err := ParseTopology(tc.s)
		if err == nil {
			t.Errorf("ParseTopology(%q) accepted", tc.s)
			continue
		}
		if !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("ParseTopology(%q) error %q lacks %q", tc.s, err, tc.hint)
		}
	}
}

func TestClusterValidate(t *testing.T) {
	base := Config{Tiles: 32, HopLat: 2, FlitSize: 4, InjLat: 2}
	cases := []struct {
		mutate func(*Config)
		hint   string
	}{
		{func(c *Config) { c.Topology = ClusterTopo(5, KindRing) }, "do not divide into clusters of 5"},
		{func(c *Config) { c.Topology = Topology{Kind: KindCluster} }, "positive tiles-per-cluster"},
		{func(c *Config) { c.Topology = Topology{Kind: KindCluster, Local: 8, Global: KindCluster} }, "backbone must be ring or mesh"},
		{func(c *Config) { c.Topology = TopoMesh; c.MeshW = 5 }, "mesh width 5 does not tile 32 tiles"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("config %+v accepted", cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("error %q lacks %q", err, tc.hint)
		}
	}
	ok := base
	ok.Topology = ClusterTopo(8, KindMesh)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid cluster config rejected: %v", err)
	}
	ok = base
	ok.Topology = TopoMesh
	ok.MeshW = 8 // 8x4 mesh: non-square but tiles the count
	if err := ok.Validate(); err != nil {
		t.Errorf("valid mesh width rejected: %v", err)
	}
}

// TestClusterHops pins the hierarchical hop model: 1 crossbar hop inside a
// cluster; 1 up + backbone + 1 down between clusters.
func TestClusterHops(t *testing.T) {
	_, n := buildTopo(64, ClusterTopo(16, KindRing)) // 4 clusters on a ring
	cases := []struct{ a, b, want int }{
		{0, 15, 1}, // same cluster: crossbar
		{3, 4, 1},  // same cluster, adjacent IDs
		{0, 16, 3}, // neighbour cluster: 1 + 1 + 1
		{0, 32, 4}, // two clusters away: 1 + 2 + 1
		{0, 48, 3}, // ring wraps: cluster 3 is one hop back
		{63, 0, 3}, // wrap the other way
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("cluster Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Mesh backbone: 16 clusters on a 4x4 mesh.
	_, nm := buildTopo(64, ClusterTopo(4, KindMesh))
	if got := nm.Hops(0, 63); got != 1+6+1 { // cluster 0 -> 15: opposite mesh corners
		t.Errorf("mesh-backbone corner hops = %d, want 8", got)
	}
}

// TestClusterFlitHopSplit: intra-cluster traffic counts as local, backbone
// hops as global, and the total stays the sum.
func TestClusterFlitHopSplit(t *testing.T) {
	k, n := buildTopo(32, ClusterTopo(8, KindRing))
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite32(0, 1, 0x10, 1) // same cluster: 1 local hop
		n.PostWrite32(0, 8, 0x10, 2) // next cluster: 2 local + 1 global
		p.Wait(100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.LocalFlitHops != 3 || st.GlobalFlitHops != 1 {
		t.Errorf("split = local %d / global %d, want 3 / 1", st.LocalFlitHops, st.GlobalFlitHops)
	}
	if st.FlitHops != st.LocalFlitHops+st.GlobalFlitHops {
		t.Errorf("total %d != local %d + global %d", st.FlitHops, st.LocalFlitHops, st.GlobalFlitHops)
	}
}

// TestGlobalHopLat: backbone hops can be clocked slower than local hops.
func TestGlobalHopLat(t *testing.T) {
	k := sim.New()
	locals := make([]*mem.Local, 32)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 4096)
	}
	cfg := Config{Tiles: 32, HopLat: 2, FlitSize: 4, InjLat: 2,
		Topology: ClusterTopo(8, KindRing), GlobalHopLat: 10}
	n, err := New(k, cfg, locals)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 8: inj 2 + 2 local hops x 2 + 1 global hop x 10 = 16.
	if got := n.ControlLatency(0, 8, 4); got != 16 {
		t.Errorf("cross-cluster latency = %d, want 16", got)
	}
	// 0 -> 1: inj 2 + 1 local hop x 2 = 4 (GlobalHopLat unused).
	if got := n.ControlLatency(0, 1, 4); got != 4 {
		t.Errorf("intra-cluster latency = %d, want 4", got)
	}
}

// TestMemResolver: a delivery whose address resolves to another memory
// (the cluster scratch case) must land there, not in the tile-local
// memory.
func TestMemResolver(t *testing.T) {
	k, n := buildTopo(8, ClusterTopo(4, KindRing))
	scratch := mem.NewLocal(-1, 0x4000_0000, 4096)
	n.SetMemResolver(func(dst int, addr mem.Addr) *mem.Local {
		if addr >= 0x4000_0000 && addr < 0x8000_0000 {
			return scratch
		}
		return n.locals[dst]
	})
	k.Spawn("src", func(p *sim.Proc) {
		n.PostWrite32(0, 5, 0x4000_0010, 99)
		n.PostWrite32(0, 5, 0x20, 7)
		p.Wait(100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v := scratch.Read32(0x4000_0010); v != 99 {
		t.Errorf("cluster-scratch delivery = %d, want 99", v)
	}
	if v := n.locals[5].Read32(0x20); v != 7 {
		t.Errorf("tile-local delivery = %d, want 7", v)
	}
}

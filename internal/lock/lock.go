// Package lock implements the synchronization primitives of the simulated
// SoC. The primary implementation is a distributed asymmetric lock in the
// spirit of the paper's reference [15] (Rutgers et al., IC-SAMOS 2012),
// reconstructed for a write-only interconnect:
//
//   - every lock has a home tile whose network interface hosts a small
//     hardware lock unit (the paper's platform provides hardware support;
//     we model the unit as part of the NI rather than a software server);
//   - a requester sends a request message to the home unit and then spins
//     on a flag in its own local memory — polling is local and puts no load
//     on the network or other tiles;
//   - the home unit queues requesters FIFO and hands the lock over with a
//     single grant message (a remote write of the waiter's local flag);
//   - operations by the home tile itself skip the network (the asymmetry
//     that gives the lock its name).
//
// A centralized test-and-set spin lock over uncached SDRAM is provided as
// the ablation baseline: every poll is a bus transaction, so spinning
// perturbs all tiles.
package lock

import (
	"fmt"

	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/sim"
)

// NoHolder marks a lock that has never been held.
const NoHolder = -1

// request and grant message payload sizes in bytes, for NoC timing.
const (
	reqMsgSize   = 8
	grantMsgSize = 4
)

// Locker is the interface the PMC runtime uses. Acquire blocks the calling
// process until it holds lockID and returns the cycles it spent waiting
// (queueing + spinning) and the tile that held the lock before, NoHolder if
// none. Release gives the lock up; it is posted and does not block.
type Locker interface {
	Acquire(p *sim.Proc, tile, lockID int) (wait sim.Time, prevHolder int)
	Release(p *sim.Proc, tile, lockID int)
}

// TransferHook is invoked by the distributed lock when ownership moves
// between distinct tiles. It runs in event context (no process) at time t
// and returns the earliest time the grant may be sent — backends use it to
// move the protected object's data during the handoff (lazy release,
// Table II). from is NoHolder on first acquisition.
type TransferHook func(lockID, from, to int, t sim.Time) sim.Time

// Stats counts lock activity.
type Stats struct {
	Acquires      uint64
	LocalAcquires uint64 // requester == home tile
	Handoffs      uint64 // ownership changed tiles
	WaitTime      sim.Time
}

type waiter struct {
	tile int
	proc *sim.Proc
}

type lockState struct {
	held   bool
	holder int
	prev   int
	queue  []waiter
}

// Distributed is the asymmetric distributed lock manager. Locks are
// identified by small integers; lock i is homed on tile (i mod tiles)
// unless a HomePolicy overrides it.
type Distributed struct {
	k     *sim.Kernel
	net   *noc.Network
	tiles int
	locks map[int]*lockState

	// HomePolicy maps a lock ID to its home tile. The default spreads
	// locks round-robin.
	HomePolicy func(lockID int) int

	// OnTransfer, if set, is called during cross-tile handoffs.
	OnTransfer TransferHook

	stats Stats
}

// NewDistributed returns a distributed lock manager over the network.
func NewDistributed(k *sim.Kernel, net *noc.Network) *Distributed {
	d := &Distributed{
		k:     k,
		net:   net,
		tiles: net.Config().Tiles,
		locks: make(map[int]*lockState),
	}
	d.HomePolicy = func(id int) int { return id % d.tiles }
	return d
}

// Stats returns a copy of the counters.
func (d *Distributed) Stats() Stats { return d.stats }

// Home returns the home tile of lockID.
func (d *Distributed) Home(lockID int) int { return d.HomePolicy(lockID) }

func (d *Distributed) state(lockID int) *lockState {
	s, ok := d.locks[lockID]
	if !ok {
		s = &lockState{holder: NoHolder, prev: NoHolder}
		d.locks[lockID] = s
	}
	return s
}

// Acquire implements Locker. The calling process parks while the home unit
// queues it; the wait models the local spin on the grant flag.
func (d *Distributed) Acquire(p *sim.Proc, tile, lockID int) (wait sim.Time, prevHolder int) {
	home := d.Home(lockID)
	t0 := p.Now()
	d.stats.Acquires++
	if tile == home {
		d.stats.LocalAcquires++
	}
	// Request message to the home unit; the unit grants now or queues.
	d.net.PostControl(tile, home, reqMsgSize, func() {
		d.handleRequest(lockID, waiter{tile: tile, proc: p})
	})
	prev, _ := p.Park().(int)
	wait = p.Now() - t0
	d.stats.WaitTime += wait
	return wait, prev
}

// Release implements Locker. Posted: the caller continues immediately.
func (d *Distributed) Release(p *sim.Proc, tile, lockID int) {
	home := d.Home(lockID)
	d.net.PostControl(tile, home, grantMsgSize, func() {
		d.handleRelease(lockID, tile)
	})
}

// handleRequest runs at the home unit when a request message arrives.
func (d *Distributed) handleRequest(lockID int, w waiter) {
	s := d.state(lockID)
	if s.held {
		s.queue = append(s.queue, w)
		return
	}
	d.grant(lockID, s, w)
}

// handleRelease runs at the home unit when a release message arrives.
func (d *Distributed) handleRelease(lockID, tile int) {
	s := d.state(lockID)
	if !s.held || s.holder != tile {
		panic(fmt.Sprintf("lock: release of lock %d by tile %d, holder %d held=%v",
			lockID, tile, s.holder, s.held))
	}
	s.held = false
	s.prev = s.holder
	s.holder = NoHolder
	if len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		d.grant(lockID, s, w)
	}
}

// grant hands the lock to w, running the transfer hook for cross-tile
// handoffs, then delivers the grant (a remote write to the waiter's spin
// flag, modelled by unparking it at the grant's arrival time).
func (d *Distributed) grant(lockID int, s *lockState, w waiter) {
	s.held = true
	from := s.prev
	s.holder = w.tile
	sendAt := d.k.Now()
	if from != w.tile && from != NoHolder {
		d.stats.Handoffs++
	}
	if d.OnTransfer != nil && from != w.tile {
		sendAt = d.OnTransfer(lockID, from, w.tile, sendAt)
	}
	home := d.Home(lockID)
	deliver := func() {
		d.net.PostControl(home, w.tile, grantMsgSize, func() {
			w.proc.Unpark(from)
		})
	}
	if sendAt <= d.k.Now() {
		deliver()
	} else {
		d.k.ScheduleAt(sendAt, deliver)
	}
}

// Centralized is the baseline: a test-and-set spin lock on an uncached
// SDRAM word per lock. Spinning occupies the shared bus.
type Centralized struct {
	sdram *mem.SDRAM
	base  mem.Addr // word array indexed by lockID
	nmax  int

	// Backoff is the idle time between failed TAS attempts.
	Backoff sim.Time

	holders map[int]int // lockID -> tile, bookkeeping for prevHolder
	prev    map[int]int

	stats Stats
}

// NewCentralized returns a centralized lock manager using nmax words of
// SDRAM at base.
func NewCentralized(sdram *mem.SDRAM, base mem.Addr, nmax int) *Centralized {
	return &Centralized{
		sdram:   sdram,
		base:    base,
		nmax:    nmax,
		Backoff: 16,
		holders: make(map[int]int),
		prev:    make(map[int]int),
	}
}

// Stats returns a copy of the counters.
func (c *Centralized) Stats() Stats { return c.stats }

func (c *Centralized) addr(lockID int) mem.Addr {
	if lockID < 0 || lockID >= c.nmax {
		panic(fmt.Sprintf("lock: id %d out of range [0,%d)", lockID, c.nmax))
	}
	return c.base + mem.Addr(lockID)*4
}

// Acquire implements Locker by TAS spinning over the bus.
func (c *Centralized) Acquire(p *sim.Proc, tile, lockID int) (wait sim.Time, prevHolder int) {
	t0 := p.Now()
	a := c.addr(lockID)
	for {
		old, _ := c.sdram.TestAndSet32(p, a, uint32(tile)+1)
		if old == 0 {
			break
		}
		p.Wait(c.Backoff)
	}
	c.stats.Acquires++
	prev, ok := c.prev[lockID]
	if !ok {
		prev = NoHolder
	}
	if prev != tile && prev != NoHolder {
		c.stats.Handoffs++
	}
	c.holders[lockID] = tile
	wait = p.Now() - t0
	c.stats.WaitTime += wait
	return wait, prev
}

// Release implements Locker with a single uncached store.
func (c *Centralized) Release(p *sim.Proc, tile, lockID int) {
	if h, ok := c.holders[lockID]; !ok || h != tile {
		panic(fmt.Sprintf("lock: centralized release of %d by non-holder tile %d", lockID, tile))
	}
	c.prev[lockID] = tile
	delete(c.holders, lockID)
	c.sdram.WriteWord(p, c.addr(lockID), 0)
}

package lock

import (
	"testing"
	"testing/quick"

	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/sim"
)

func rig(tiles int) (*sim.Kernel, *noc.Network, *Distributed) {
	k := sim.New()
	locals := make([]*mem.Local, tiles)
	for i := range locals {
		locals[i] = mem.NewLocal(i, 0, 4096)
	}
	net, err := noc.New(k, noc.Config{Tiles: tiles, HopLat: 2, FlitSize: 4, InjLat: 2}, locals)
	if err != nil {
		panic(err)
	}
	return k, net, NewDistributed(k, net)
}

// exercise runs n procs each looping iters times over a critical section
// guarded by lk, checking mutual exclusion, and returns the observed
// sequence of (tile, iteration) entries.
func exercise(t *testing.T, k *sim.Kernel, lk Locker, tiles, iters int) []int {
	t.Helper()
	inCS := -1
	var order []int
	for i := 0; i < tiles; i++ {
		tile := i
		k.Spawn("worker", func(p *sim.Proc) {
			for it := 0; it < iters; it++ {
				lk.Acquire(p, tile, 0)
				if inCS != -1 {
					t.Errorf("mutual exclusion violated: tile %d entered while %d inside", tile, inCS)
				}
				inCS = tile
				order = append(order, tile)
				p.Wait(10) // critical section work
				inCS = -1
				lk.Release(p, tile, 0)
				p.Wait(5)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return order
}

func TestDistributedMutualExclusion(t *testing.T) {
	k, _, d := rig(8)
	order := exercise(t, k, d, 8, 5)
	if len(order) != 40 {
		t.Fatalf("expected 40 critical sections, got %d", len(order))
	}
	st := d.Stats()
	if st.Acquires != 40 {
		t.Fatalf("acquires = %d, want 40", st.Acquires)
	}
	if st.Handoffs == 0 {
		t.Fatal("expected cross-tile handoffs")
	}
}

func TestDistributedFIFOUnderContention(t *testing.T) {
	// All tiles request while tile 0 holds; grants must follow request
	// arrival order.
	k, _, d := rig(4)
	var order []int
	holderDone := false
	k.Spawn("holder", func(p *sim.Proc) {
		d.Acquire(p, 0, 0)
		p.Wait(1000) // hold long enough for all requests to arrive
		holderDone = true
		d.Release(p, 0, 0)
	})
	for i := 1; i < 4; i++ {
		tile := i
		k.Spawn("w", func(p *sim.Proc) {
			p.Wait(sim.Time(100 * tile)) // staggered, well within hold
			d.Acquire(p, tile, 0)
			if !holderDone {
				t.Error("granted before holder released")
			}
			order = append(order, tile)
			d.Release(p, tile, 0)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestAsymmetryLocalCheaperThanRemote(t *testing.T) {
	// Lock 0 homes on tile 0. An uncontended acquire from tile 0 must be
	// faster than from the most distant tile.
	measure := func(tile int) sim.Time {
		k, _, d := rig(8)
		var w sim.Time
		k.Spawn("p", func(p *sim.Proc) {
			w, _ = d.Acquire(p, tile, 0)
			d.Release(p, tile, 0)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	local, remote := measure(0), measure(4)
	if local >= remote {
		t.Fatalf("local acquire (%d cycles) not cheaper than remote (%d)", local, remote)
	}
}

func TestPrevHolderReported(t *testing.T) {
	k, _, d := rig(4)
	var first, second int
	k.Spawn("a", func(p *sim.Proc) {
		_, first = d.Acquire(p, 1, 5)
		p.Wait(10)
		d.Release(p, 1, 5)
	})
	k.Spawn("b", func(p *sim.Proc) {
		p.Wait(5)
		_, second = d.Acquire(p, 2, 5)
		d.Release(p, 2, 5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != NoHolder {
		t.Fatalf("first acquire prev = %d, want NoHolder", first)
	}
	if second != 1 {
		t.Fatalf("second acquire prev = %d, want 1", second)
	}
}

func TestTransferHookDelaysGrant(t *testing.T) {
	k, _, d := rig(4)
	var hookCalls int
	d.OnTransfer = func(lockID, from, to int, at sim.Time) sim.Time {
		hookCalls++
		if from == NoHolder {
			return at // first acquisition: nothing to move
		}
		return at + 500 // pretend the handoff moves a lot of data
	}
	var grantedAt sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		d.Acquire(p, 0, 0)
		p.Wait(10)
		d.Release(p, 0, 0)
	})
	k.Spawn("b", func(p *sim.Proc) {
		p.Wait(1)
		d.Acquire(p, 1, 0)
		grantedAt = p.Now()
		d.Release(p, 1, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hookCalls != 2 {
		t.Fatalf("hook called %d times, want 2 (initial + handoff)", hookCalls)
	}
	if grantedAt < 500 {
		t.Fatalf("grant at %d did not wait for the 500-cycle transfer", grantedAt)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	k, _, d := rig(2)
	k.Spawn("a", func(p *sim.Proc) {
		d.Acquire(p, 0, 0)
		defer func() {
			if recover() == nil {
				t.Error("release by non-holder did not panic")
			}
		}()
		// Deliver a forged release from tile 1.
		d.handleRelease(0, 1)
	})
	_ = k.Run() // the panic is recovered inside the proc
}

func TestCentralizedMutualExclusion(t *testing.T) {
	k := sim.New()
	sdram := mem.NewSDRAM(k, 0, 1<<16, mem.DefaultSDRAMConfig())
	c := NewCentralized(sdram, 0x100, 16)
	order := exercise(t, k, c, 6, 4)
	if len(order) != 24 {
		t.Fatalf("expected 24 critical sections, got %d", len(order))
	}
}

func TestCentralizedBusLoadExceedsDistributed(t *testing.T) {
	// The ablation's point: centralized spinning hammers the SDRAM bus.
	k := sim.New()
	sdram := mem.NewSDRAM(k, 0, 1<<16, mem.DefaultSDRAMConfig())
	c := NewCentralized(sdram, 0x100, 4)
	exercise(t, k, c, 8, 3)
	if sdram.Grants() < 24*2 {
		t.Fatalf("expected heavy bus traffic from spinning, got %d grants", sdram.Grants())
	}
}

// Property: for any interleaving of hold times and request staggers, the
// distributed lock preserves mutual exclusion and loses no acquisition.
func TestDistributedLockProperty(t *testing.T) {
	prop := func(holds []uint8, staggers []uint8) bool {
		n := len(holds)
		if n == 0 {
			return true
		}
		if n > 12 {
			n = 12
		}
		k, _, d := rig(n)
		good := true
		inCS := false
		completed := 0
		for i := 0; i < n; i++ {
			tile := i
			hold := sim.Time(holds[i]%32) + 1
			stagger := sim.Time(0)
			if i < len(staggers) {
				stagger = sim.Time(staggers[i] % 64)
			}
			k.Spawn("w", func(p *sim.Proc) {
				p.Wait(stagger)
				d.Acquire(p, tile, 3)
				if inCS {
					good = false
				}
				inCS = true
				p.Wait(hold)
				inCS = false
				d.Release(p, tile, 3)
				completed++
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return good && completed == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

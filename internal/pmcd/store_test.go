package pmcd

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hexKey returns a distinct valid store key per index.
func hexKey(i int) string {
	return fmt.Sprintf("%064x", 0xabc0+i)
}

func TestStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"v":1}` + "\n")
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(hexKey(1), body); err != nil {
		t.Fatal(err)
	}
	// A second Open over the same directory is a server restart (or the
	// next CI run unpacking the actions/cache): the disk tier survives.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(hexKey(1))
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("reopened body %q != stored %q", got, body)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("expected one disk hit, got %+v", st)
	}
	// The disk hit promoted the entry; the next Get is a memory hit.
	if _, ok, _ := s2.Get(hexKey(1)); !ok {
		t.Fatal("promoted entry vanished")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("expected promotion to memory, got %+v", st)
	}
}

func TestStoreLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(hexKey(i), []byte(fmt.Sprintf("body%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.MemEntries != 2 {
		t.Fatalf("LRU holds %d entries, capacity is 2", st.MemEntries)
	}
	// Key 0 was evicted from memory but the disk tier still serves it —
	// eviction is a capacity decision, never data loss.
	got, ok, err := s.Get(hexKey(0))
	if err != nil || !ok || string(got) != "body0" {
		t.Fatalf("evicted key not served from disk: ok=%v err=%v body=%q", ok, err, got)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("expected a disk hit for the evicted key, got %+v", st)
	}

	// Memory-only stores do lose evicted entries; that is the documented
	// trade of running without a cache directory.
	m, err := Open("", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Put(hexKey(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := m.Get(hexKey(0)); ok {
		t.Fatal("memory-only store served an evicted entry")
	}
}

func TestStoreRejectsNonFingerprintKeys(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("A", 64),             // uppercase
		strings.Repeat("a", 15),             // too short
		"abcd/ef" + strings.Repeat("0", 57), // path shape
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted non-fingerprint key %q", key)
		}
	}
}

// TestStoreGC: entries past the age bound are removed from disk AND
// from the memory tier (a purged key must be a miss, not a stale mem
// hit), newer entries and the counters survive, and crashed-writer temp
// files are swept. Ages are simulated by backdating mtimes.
func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	var oldBytes int64
	for i := 0; i < 5; i++ {
		body := []byte(fmt.Sprintf(`{"v":%d}`, i))
		if err := s.Put(hexKey(i), body); err != nil {
			t.Fatal(err)
		}
		if i < 3 { // first three are "two days old"
			if err := os.Chtimes(s.path(hexKey(i)), old, old); err != nil {
				t.Fatal(err)
			}
			oldBytes += int64(len(body))
		}
	}
	// A torn temp file from a crashed writer, also old.
	tmp := filepath.Join(dir, hexKey(0)[:2], "."+hexKey(0)[:8]+".tmp123")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}

	g, err := s.GC(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := GCStats{Scanned: 5, Purged: 3, Kept: 2, Bytes: oldBytes}
	if g != want {
		t.Fatalf("GC stats %+v, want %+v", g, want)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived GC: %v", err)
	}
	// Purged keys are gone from both tiers; kept keys still serve.
	for i := 0; i < 5; i++ {
		_, ok, err := s.Get(hexKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if wantOK := i >= 3; ok != wantOK {
			t.Errorf("after GC, Get(%d) ok=%v, want %v", i, ok, wantOK)
		}
	}
	if st := s.Stats(); st.MemEntries != 2 {
		t.Fatalf("memory tier holds %d entries after GC, want 2 (%+v)", st.MemEntries, st)
	}
	// A second pass finds nothing to do.
	if g, err := s.GC(24 * time.Hour); err != nil || g.Purged != 0 || g.Kept != 2 {
		t.Fatalf("second GC pass: %+v err=%v", g, err)
	}
	// Purged keys are recomputable: a fresh Put brings one back.
	if err := s.Put(hexKey(0), []byte("again")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(hexKey(0)); !ok {
		t.Fatal("re-Put after GC not served")
	}
}

func TestStoreGCMemoryOnlyNoop(t *testing.T) {
	s, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(hexKey(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	g, err := s.GC(0)
	if err != nil || g != (GCStats{}) {
		t.Fatalf("memory-only GC: %+v err=%v", g, err)
	}
	if _, ok, _ := s.Get(hexKey(1)); !ok {
		t.Fatal("memory-only GC dropped a live entry")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	store, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(store)
	key := hexKey(42)
	body := []byte("result")

	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	const clients = 16
	results := make([][]byte, clients)
	hits := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			b, hit, err := c.Do(key, func() ([]byte, error) {
				computes.Add(1)
				return body, nil
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i], hits[i] = b, hit
		}(i)
	}
	close(start)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for one key; single-flight must run exactly 1", n)
	}
	if n := c.Simulations(); n != 1 {
		t.Fatalf("Simulations() = %d, want 1", n)
	}
	leaders := 0
	for i := range results {
		if !bytes.Equal(results[i], body) {
			t.Fatalf("client %d got body %q", i, results[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders; exactly one caller pays for the simulation", leaders)
	}
	// After completion the store answers without any flight.
	if _, hit, err := c.Do(key, func() ([]byte, error) {
		t.Fatal("recompute of a stored key")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("stored key not served as a hit: hit=%v err=%v", hit, err)
	}
}

func TestCacheFailedComputeRetries(t *testing.T) {
	store, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(store)
	key := hexKey(7)
	if _, _, err := c.Do(key, func() ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failed compute reported success")
	}
	// Failures are not stored: the next Do runs a fresh compute.
	b, hit, err := c.Do(key, func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || string(b) != "ok" {
		t.Fatalf("retry after failure: body=%q hit=%v err=%v", b, hit, err)
	}
}

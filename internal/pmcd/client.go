package pmcd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is the thin HTTP client of the job service — the same one the
// pmcd CLI and the CI smoke job use, so the wire surface is exercised
// end to end wherever it is used.
type Client struct {
	// Base is the server's base URL (e.g. "http://localhost:8433").
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the server's {"error": ...} envelope.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("pmcd: server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("pmcd: server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns its initial status (possibly
// already done, when the store held the fingerprint).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events consumes the job's NDJSON status stream, calling fn per line,
// until the job reaches a terminal state (returned) or ctx is done.
func (c *Client) Events(ctx context.Context, id string, fn func(JobStatus)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var last *JobStatus
	for sc.Scan() {
		var st JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return last, fmt.Errorf("pmcd: bad event line: %w", err)
		}
		if fn != nil {
			fn(st)
		}
		last = &st
		if st.State == StateDone || st.State == StateFailed {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, fmt.Errorf("pmcd: event stream ended before job %s finished", id)
}

// Wait blocks until the job finishes, following the event stream. A
// failed job returns its error.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	st, err := c.Events(ctx, id, nil)
	if err != nil {
		return st, err
	}
	if st.State == StateFailed {
		return st, fmt.Errorf("pmcd: job %s failed: %s", id, st.Error)
	}
	return st, nil
}

// Result fetches a finished job's result body — the exact stored bytes.
// With wait, it blocks server-side until the job finishes.
func (c *Client) Result(ctx context.Context, id string, wait bool) ([]byte, error) {
	path := "/v1/jobs/" + id + "/result"
	if wait {
		path += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// ResultByFingerprint fetches a stored result by content address; ok is
// false when the store has no entry for it.
func (c *Client) ResultByFingerprint(ctx context.Context, fp string) (body []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/results/"+fp, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err = io.ReadAll(resp.Body)
		return body, err == nil, err
	case http.StatusNotFound:
		return nil, false, nil
	}
	return nil, false, apiError(resp)
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

package pmcd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The job service. Submissions enter a FIFO queue and run on a bounded
// worker pool; every job resolves through the single-flight cache, so the
// service's cost is one simulation per distinct fingerprint no matter how
// many clients ask. The HTTP surface is deliberately small and
// stdlib-only:
//
//	POST /v1/jobs            submit a JobSpec        -> JobStatus
//	GET  /v1/jobs/{id}       job status              -> JobStatus
//	GET  /v1/jobs/{id}/result completed result body  (exact stored bytes)
//	GET  /v1/jobs/{id}/events NDJSON status stream until done/failed
//	GET  /v1/results/{fp}    content-addressed lookup, 404 on miss
//	GET  /v1/stats           service + store counters
//	GET  /v1/healthz         liveness
//
// Results are served byte-identically to the simulation that produced
// them: the result endpoint writes the stored body verbatim.

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Config configures a server.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue (0 = 256); a full queue
	// rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CacheDir is the disk tier of the result store ("" = memory-only).
	CacheDir string
	// MemEntries is the LRU tier's capacity (0 = 128).
	MemEntries int
	// CodeVersion overrides the fingerprint code-version component
	// ("" = CodeVersion()).
	CodeVersion string
}

// JobStatus is the externally visible state of a job.
type JobStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	// Cached marks a job answered from the result store without any
	// simulation; Deduped marks one that attached to an identical
	// in-flight job's simulation.
	Cached  bool   `json:"cached,omitempty"`
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
	// Progress of the running computation (kind-specific units: sweep
	// cells, fuzz programs).
	ProgressDone  int64 `json:"progress_done"`
	ProgressTotal int64 `json:"progress_total"`
}

// Stats is the service-wide counter snapshot.
type Stats struct {
	CodeVersion string `json:"code_version"`
	Submitted   int64  `json:"submitted"`
	Done        int64  `json:"done"`
	Failed      int64  `json:"failed"`
	// Cached jobs were answered from the store at submit time; Deduped
	// jobs shared another job's in-flight simulation; Simulations is how
	// many computations actually ran.
	Cached      int64      `json:"cached"`
	Deduped     int64      `json:"deduped"`
	Simulations int64      `json:"simulations"`
	QueueDepth  int        `json:"queue_depth"`
	Workers     int        `json:"workers"`
	Store       StoreStats `json:"store"`
}

// job is the server-side job record.
type job struct {
	id          string
	kind        string
	fingerprint string
	spec        JobSpec // normalized
	progress    Progress

	mu      sync.Mutex
	state   string
	cached  bool
	deduped bool
	errMsg  string
	body    []byte
	done    chan struct{} // closed on done/failed
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	d, t := j.progress.Snapshot()
	return JobStatus{
		ID: j.id, Kind: j.kind, Fingerprint: j.fingerprint, State: j.state,
		Cached: j.cached, Deduped: j.deduped, Error: j.errMsg,
		ProgressDone: d, ProgressTotal: t,
	}
}

// Server is the content-addressed simulation service.
type Server struct {
	cfg         Config
	codeVersion string
	cache       *Cache
	queue       chan *job

	mu   sync.Mutex
	jobs map[string]*job

	nextID    atomic.Int64
	submitted atomic.Int64
	doneCount atomic.Int64
	failed    atomic.Int64
	cachedCnt atomic.Int64
	dedupCnt  atomic.Int64

	wg      sync.WaitGroup
	closing chan struct{}
}

// New assembles a server (opening the result store) and starts its worker
// pool. Close it to drain.
func New(cfg Config) (*Server, error) {
	store, err := Open(cfg.CacheDir, cfg.MemEntries)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	cv := cfg.CodeVersion
	if cv == "" {
		cv = CodeVersion()
	}
	s := &Server{
		cfg:         cfg,
		codeVersion: cv,
		cache:       NewCache(store),
		queue:       make(chan *job, depth),
		jobs:        make(map[string]*job),
		closing:     make(chan struct{}),
	}
	s.cfg.Workers = workers
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// CodeVersionUsed returns the code-version component the server salts
// fingerprints with.
func (s *Server) CodeVersionUsed() string { return s.codeVersion }

// Cache returns the server's result cache (stats, direct store access).
func (s *Server) Cache() *Cache { return s.cache }

// Close stops accepting queued work and waits for in-flight jobs.
func (s *Server) Close() {
	close(s.closing)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closing:
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// execute resolves one queued job through the single-flight cache.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	body, hit, err := s.cache.Do(j.fingerprint, func() ([]byte, error) {
		return run(j.spec, &j.progress)
	})
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed.Add(1)
	} else {
		j.state = StateDone
		j.body = body
		// A hit at execution time means another job's simulation (or a
		// store entry that appeared after submit) answered this one.
		j.deduped = hit
		s.doneCount.Add(1)
		if hit {
			s.dedupCnt.Add(1)
		}
	}
	j.mu.Unlock()
	close(j.done)
}

// Submit validates, fingerprints and either answers a job from the store
// (state "done", Cached) or enqueues it. It is the programmatic form of
// POST /v1/jobs.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	norm, err := spec.normalize()
	if err != nil {
		return JobStatus{}, err
	}
	fp, err := Fingerprint(norm, s.codeVersion)
	if err != nil {
		return JobStatus{}, err
	}
	j := &job{
		id:          fmt.Sprintf("j%d", s.nextID.Add(1)),
		kind:        norm.Kind(),
		fingerprint: fp,
		spec:        norm,
		state:       StateQueued,
		done:        make(chan struct{}),
	}
	// Fast path: the store already holds this fingerprint — the job is
	// done before it ever queues, and costs no simulation.
	if body, ok, err := s.cache.Store().Get(fp); err != nil {
		return JobStatus{}, err
	} else if ok {
		j.state = StateDone
		j.cached = true
		j.body = body
		s.submitted.Add(1)
		s.cachedCnt.Add(1)
		s.doneCount.Add(1)
		close(j.done)
		s.register(j)
		return j.status(), nil
	}
	select {
	case s.queue <- j:
	default:
		return JobStatus{}, errQueueFull
	}
	s.submitted.Add(1)
	s.register(j)
	return j.status(), nil
}

var errQueueFull = fmt.Errorf("pmcd: job queue full")

func (s *Server) register(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	return j, ok
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		CodeVersion: s.codeVersion,
		Submitted:   s.submitted.Load(),
		Done:        s.doneCount.Load(),
		Failed:      s.failed.Load(),
		Cached:      s.cachedCnt.Load(),
		Deduped:     s.dedupCnt.Load(),
		Simulations: s.cache.Simulations(),
		QueueDepth:  len(s.queue),
		Workers:     s.cfg.Workers,
		Store:       s.cache.Store().Stats(),
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/results/{fp}", s.handleByFingerprint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "code_version": s.codeVersion})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("pmcd: bad job spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == errQueueFull {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("pmcd: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("pmcd: unknown job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	st := j.status()
	switch st.State {
	case StateDone:
	case StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("pmcd: job %s failed: %s", st.ID, st.Error))
		return
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("pmcd: job %s is %s; poll status, stream events, or pass ?wait=1", st.ID, st.State))
		return
	}
	j.mu.Lock()
	body := j.body
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Pmcd-Fingerprint", st.Fingerprint)
	w.Write(body)
}

// handleEvents streams the job's status as NDJSON: one JobStatus line per
// observed change (state or progress), ending with the terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("pmcd: unknown job %q", r.PathValue("id")))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	var last JobStatus
	emit := func(st JobStatus) {
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
		last = st
	}
	emit(j.status())
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for last.State != StateDone && last.State != StateFailed {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			emit(j.status())
			return
		case <-ticker.C:
			if st := j.status(); st != last {
				emit(st)
			}
		}
	}
}

func (s *Server) handleByFingerprint(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if err := validKey(fp); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	body, ok, err := s.cache.Store().Get(fp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("pmcd: no result for fingerprint %s", fp))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

package pmcd

import (
	"testing"

	"pmc/internal/perf"
)

func benchEntry(name string) perf.Entry {
	return perf.Entry{Name: name, Sim: &perf.SimBench{
		App: "mfifo", Backend: "dsm", Tiles: 4, Topo: "ring", Small: true,
	}}
}

func TestBenchCacheKeyChanges(t *testing.T) {
	base, err := BenchCacheKey(benchEntry("e"), 1, "cv")
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]func() (string, error){
		"entry":    func() (string, error) { return BenchCacheKey(benchEntry("e2"), 1, "cv") },
		"reps":     func() (string, error) { return BenchCacheKey(benchEntry("e"), 2, "cv") },
		"cacheKey": func() (string, error) { return BenchCacheKey(benchEntry("e"), 1, "cv2") },
	} {
		k, err := other()
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

// BenchCached must answer unchanged entries from a persisted store with
// exact metrics identical to the fresh run — the property the CI bench
// job's actions/cache round-trip relies on.
func TestBenchCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := perf.Spec{Suite: "t", Reps: 1, Entries: []perf.Entry{benchEntry("bench/mfifo")}}

	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep1, st1, err := BenchCached(spec, s1, "cv")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hits != 0 || st1.Misses != 1 {
		t.Fatalf("cold run counted %+v", st1)
	}
	if rep1.Entries[0].Cached {
		t.Fatal("cold measurement claims to be cached")
	}

	// A fresh store over the same directory is the next CI run.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep2, st2, err := BenchCached(spec, s2, "cv")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Hits != 1 || st2.Misses != 0 {
		t.Fatalf("warm run counted %+v", st2)
	}
	if !rep2.Entries[0].Cached {
		t.Fatal("warm measurement not marked cached")
	}
	m1, m2 := rep1.Entries[0], rep2.Entries[0]
	for _, m := range m1.Metrics {
		if !m.Exact {
			continue
		}
		got := m2.Metric(m.Name)
		if got == nil || got.Value != m.Value {
			t.Errorf("exact metric %s drifted through the cache: %v vs %v", m.Name, m.Value, got)
		}
	}

	// A different cache key (new code version) misses: nothing measured
	// by old code is ever served for new code.
	rep3, st3, err := BenchCached(spec, s2, "cv2")
	if err != nil {
		t.Fatal(err)
	}
	if st3.Hits != 0 || st3.Misses != 1 || rep3.Entries[0].Cached {
		t.Fatalf("new cache key reused old measurements: %+v", st3)
	}
}

// Package pmcd is the content-addressed simulation service: a long-running
// HTTP/JSON job server over the repo's deterministic engines (sweep,
// litmus, fuzz, perf) with a bounded worker pool, a FIFO job queue with
// streaming progress, and a two-tier result store — an in-memory LRU over
// a content-addressed disk store.
//
// The serving story rests on one property every engine already proves:
// results are bit-deterministic. A sweep table merges in grid order for
// any worker count, a litmus exploration's outcomes are identical across
// engine modes, a fuzz campaign reproduces from its printed seed, and the
// bench runner asserts its exact metrics agree across repetitions. A
// deterministic computation is identified by its inputs, so every result
// is cacheable under a fingerprint of (canonical job spec, code version):
// the first submission simulates, every later identical submission — from
// any number of clients — is answered from the store with the exact bytes
// the simulation produced. Concurrent identical submissions are
// single-flighted: one simulation runs, everyone shares its result.
//
// CI is the first client: the pmcd smoke job proves a resubmitted job is
// a byte-identical cache hit, and the bench job persists the disk store
// across runs so unchanged entries stop being re-simulated (see
// BenchCached).
package pmcd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"pmc/internal/fuzz"
	"pmc/internal/litmus"
	"pmc/internal/noc"
	"pmc/internal/perf"
	"pmc/internal/rt"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// CodeVersion returns the build's code-version component for result
// fingerprints: the VCS revision the binary was built from (suffixed
// ".dirty" when the working tree had local modifications), or "dev" when
// no VCS stamp is available (tests, go run outside a repository). A server
// or store can override it (Config.CodeVersion, the -codeversion flag) —
// CI passes a source-content hash so doc-only commits keep their cache.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if dirty {
		return rev + ".dirty"
	}
	return rev
}

// SweepJob declares a sweep-grid job: the declarative axes of a
// sweep.Spec plus the experiment scale. Zero axes expand to the sweep
// engine's defaults during normalization, so a spec that spells the
// defaults out and one that omits them share a fingerprint.
type SweepJob struct {
	Apps     []string `json:"apps"`
	Backends []string `json:"backends,omitempty"`
	Tiles    []int    `json:"tiles,omitempty"`
	Topos    []string `json:"topos,omitempty"`
	// Small selects the CI-sized app configurations (workloads.Scaled).
	Small bool `json:"small,omitempty"`
}

// LitmusJob declares an exhaustive litmus exploration of a cataloged
// program. The fingerprint uses the program's canonical (naming-invariant)
// fingerprint, not its catalog name.
type LitmusJob struct {
	Prog string `json:"prog"`
	// Tree selects the reference tree engine (memoization off); the
	// default is the memoized engine. Workers never appears: results are
	// identical for any worker count.
	Tree bool `json:"tree,omitempty"`
	// MaxStates overrides the state budget (0 = explorer default).
	MaxStates int `json:"max_states,omitempty"`
}

// FuzzJob declares a seeded differential fuzzing campaign. The summary is
// worker-count-independent, so the campaign's identity is its seed and
// bounds.
type FuzzJob struct {
	Seed     int64    `json:"seed"`
	N        int      `json:"n"`
	Mode     string   `json:"mode,omitempty"`     // "" = mixed
	Backends []string `json:"backends,omitempty"` // nil = the paper's four
	Runs     int      `json:"runs,omitempty"`     // 0 = campaign default
}

// BenchJob declares one benchmark-suite entry evaluated for its exact
// (deterministic) metrics — the cacheable half of a perf measurement; host
// timings are properties of the machine, not the computation, and are
// never served from cache by the job API.
type BenchJob struct {
	Entry perf.Entry `json:"entry"`
}

// JobSpec is a job submission: exactly one kind set.
type JobSpec struct {
	Sweep  *SweepJob  `json:"sweep,omitempty"`
	Litmus *LitmusJob `json:"litmus,omitempty"`
	Fuzz   *FuzzJob   `json:"fuzz,omitempty"`
	Bench  *BenchJob  `json:"bench,omitempty"`
}

// Kind names the set job kind ("sweep", "litmus", "fuzz", "bench", or ""
// when none is set).
func (s JobSpec) Kind() string {
	switch {
	case s.Sweep != nil:
		return "sweep"
	case s.Litmus != nil:
		return "litmus"
	case s.Fuzz != nil:
		return "fuzz"
	case s.Bench != nil:
		return "bench"
	}
	return ""
}

// normalize validates the spec and expands every default, so that two
// spellings of the same computation canonicalize — and therefore
// fingerprint — identically. It returns a deep-copied spec; the input is
// not modified.
func (s JobSpec) normalize() (JobSpec, error) {
	kinds := 0
	for _, set := range []bool{s.Sweep != nil, s.Litmus != nil, s.Fuzz != nil, s.Bench != nil} {
		if set {
			kinds++
		}
	}
	if kinds != 1 {
		return JobSpec{}, fmt.Errorf("pmcd: job must set exactly one of sweep/litmus/fuzz/bench (got %d)", kinds)
	}
	switch {
	case s.Sweep != nil:
		j := *s.Sweep
		if len(j.Apps) == 0 {
			return JobSpec{}, fmt.Errorf("pmcd: sweep job needs at least one app")
		}
		for _, app := range j.Apps {
			if _, ok := workloads.ByName(app); !ok {
				return JobSpec{}, fmt.Errorf("pmcd: unknown app %q (have %v)", app, workloads.Names)
			}
		}
		spec, err := j.sweepSpec()
		if err != nil {
			return JobSpec{}, err
		}
		cs, err := spec.Canonical()
		if err != nil {
			return JobSpec{}, err
		}
		j.Apps, j.Backends, j.Tiles, j.Topos = cs.Apps, cs.Backends, cs.Tiles, cs.Topos
		return JobSpec{Sweep: &j}, nil
	case s.Litmus != nil:
		j := *s.Litmus
		if _, ok := litmus.ByName(j.Prog); !ok {
			return JobSpec{}, fmt.Errorf("pmcd: unknown litmus program %q", j.Prog)
		}
		if j.MaxStates < 0 {
			return JobSpec{}, fmt.Errorf("pmcd: negative litmus state budget %d", j.MaxStates)
		}
		return JobSpec{Litmus: &j}, nil
	case s.Fuzz != nil:
		j := *s.Fuzz
		if j.N <= 0 {
			return JobSpec{}, fmt.Errorf("pmcd: fuzz job needs a positive program count, got %d", j.N)
		}
		if j.Mode == "" {
			j.Mode = fuzz.ModeMixed.String()
		}
		mode, err := fuzz.ParseMode(j.Mode)
		if err != nil {
			return JobSpec{}, fmt.Errorf("pmcd: %w", err)
		}
		j.Mode = mode.String()
		if len(j.Backends) == 0 {
			j.Backends = fuzz.DefaultBackends
		}
		j.Backends = append([]string(nil), j.Backends...)
		if j.Runs == 0 {
			j.Runs = 3
		}
		if j.Runs < 0 {
			return JobSpec{}, fmt.Errorf("pmcd: negative fuzz run count %d", j.Runs)
		}
		return JobSpec{Fuzz: &j}, nil
	default:
		j := *s.Bench
		if j.Entry.Name == "" {
			return JobSpec{}, fmt.Errorf("pmcd: bench job entry has no name")
		}
		n := 0
		for _, set := range []bool{j.Entry.Sim != nil, j.Entry.Litmus != nil, j.Entry.Fuzz != nil} {
			if set {
				n++
			}
		}
		if n != 1 {
			return JobSpec{}, fmt.Errorf("pmcd: bench entry %q must set exactly one of sim/litmus/fuzz", j.Entry.Name)
		}
		return JobSpec{Bench: &j}, nil
	}
}

// sweepSpec builds the sweep engine spec for a sweep job's declarative
// axes (Make is attached separately at run time — the grid identity is the
// axes plus Small, never the closure).
func (j *SweepJob) sweepSpec() (*sweep.Spec, error) {
	spec := &sweep.Spec{
		Apps:     j.Apps,
		Backends: j.Backends,
		Tiles:    j.Tiles,
	}
	for _, b := range j.Backends {
		if _, err := rt.ByName(b); err != nil {
			return nil, fmt.Errorf("pmcd: %w", err)
		}
	}
	for _, t := range j.Tiles {
		if t <= 0 {
			return nil, fmt.Errorf("pmcd: tile count %d must be positive", t)
		}
	}
	for _, ts := range j.Topos {
		topo, err := noc.ParseTopology(ts)
		if err != nil {
			return nil, fmt.Errorf("pmcd: %w", err)
		}
		spec.Topos = append(spec.Topos, topo)
	}
	return spec, nil
}

// Fingerprint returns the content address of a job's result: the hex
// SHA-256 over a canonical encoding of (kind, normalized spec, code
// version). Two submissions collide exactly when they are the same
// computation on the same code:
//
//   - sweep jobs hash the canonical grid (defaults expanded, topologies
//     as canonical strings) plus the scale flag;
//   - litmus jobs hash litmus.ExploreFingerprint — the program's
//     naming-invariant fingerprint mixed with the engine configuration —
//     so a renamed catalog entry keeps its cache;
//   - fuzz jobs hash the normalized campaign bounds (seed first: a new
//     seed is a new computation);
//   - bench jobs hash the perf entry identity (name + declarative spec).
//
// The code version salts everything: results computed by different code
// never alias, which is what makes serving stale-looking bytes safe.
func Fingerprint(spec JobSpec, codeVersion string) (string, error) {
	n, err := spec.normalize()
	if err != nil {
		return "", err
	}
	var canon any
	switch {
	case n.Sweep != nil:
		canon = n.Sweep
	case n.Litmus != nil:
		prog, _ := litmus.ByName(n.Litmus.Prog)
		canon = struct {
			Explore   string `json:"explore"`
			MaxStates int    `json:"max_states"`
		}{litmus.ExploreFingerprint(prog, !n.Litmus.Tree, n.Litmus.MaxStates), n.Litmus.MaxStates}
	case n.Fuzz != nil:
		canon = n.Fuzz
	default:
		canon = n.Bench
	}
	body, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("pmcd: canonical spec marshal: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "pmcd/v1\x00%s\x00", n.Kind())
	h.Write(body)
	fmt.Fprintf(h, "\x00%s", codeVersion)
	return hex.EncodeToString(h.Sum(nil)), nil
}

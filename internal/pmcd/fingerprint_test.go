package pmcd

import (
	"strings"
	"testing"

	"pmc/internal/fuzz"
	"pmc/internal/rt"
)

func fp(t *testing.T, spec JobSpec, cv string) string {
	t.Helper()
	s, err := Fingerprint(spec, cv)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if len(s) != 64 || strings.ToLower(s) != s {
		t.Fatalf("fingerprint %q is not lowercase hex sha256", s)
	}
	return s
}

func sweepJob() JobSpec {
	return JobSpec{Sweep: &SweepJob{
		Apps: []string{"mfifo"}, Backends: []string{"dsm"},
		Tiles: []int{4}, Topos: []string{"ring"}, Small: true,
	}}
}

func litmusJob() JobSpec {
	return JobSpec{Litmus: &LitmusJob{Prog: "sb-drf"}}
}

func fuzzJob() JobSpec {
	return JobSpec{Fuzz: &FuzzJob{Seed: 1, N: 4}}
}

// Two spellings of the same computation must share an address: omitted
// axes and their spelled-out defaults run identically, so they must
// fingerprint identically.
func TestFingerprintDefaultsCollapse(t *testing.T) {
	implicit := JobSpec{Sweep: &SweepJob{Apps: []string{"mfifo"}, Tiles: []int{4}, Small: true}}
	explicit := JobSpec{Sweep: &SweepJob{
		Apps: []string{"mfifo"}, Backends: append([]string(nil), rt.Backends...),
		Tiles: []int{4}, Topos: []string{"ring"}, Small: true,
	}}
	if a, b := fp(t, implicit, "cv"), fp(t, explicit, "cv"); a != b {
		t.Errorf("default axes vs explicit defaults diverge: %s vs %s", a, b)
	}

	fzImplicit := JobSpec{Fuzz: &FuzzJob{Seed: 7, N: 5}}
	fzExplicit := JobSpec{Fuzz: &FuzzJob{
		Seed: 7, N: 5, Mode: fuzz.ModeMixed.String(),
		Backends: append([]string(nil), fuzz.DefaultBackends...), Runs: 3,
	}}
	if a, b := fp(t, fzImplicit, "cv"), fp(t, fzExplicit, "cv"); a != b {
		t.Errorf("fuzz defaults vs explicit defaults diverge: %s vs %s", a, b)
	}
}

// Every identity component — config axis, program, seed, engine knob,
// code version — must move the address. This is the acceptance property
// of the cache key: a stale hit is impossible because any input change
// changes the key.
func TestFingerprintKeyChanges(t *testing.T) {
	base := map[string]string{
		"sweep":  fp(t, sweepJob(), "cv"),
		"litmus": fp(t, litmusJob(), "cv"),
		"fuzz":   fp(t, fuzzJob(), "cv"),
	}
	seen := map[string]string{}
	for name, f := range base {
		if prev, dup := seen[f]; dup {
			t.Fatalf("kinds %s and %s share fingerprint %s", prev, name, f)
		}
		seen[f] = name
	}

	variants := map[string]JobSpec{
		"sweep tiles":    {Sweep: &SweepJob{Apps: []string{"mfifo"}, Backends: []string{"dsm"}, Tiles: []int{8}, Topos: []string{"ring"}, Small: true}},
		"sweep app":      {Sweep: &SweepJob{Apps: []string{"msgpass"}, Backends: []string{"dsm"}, Tiles: []int{4}, Topos: []string{"ring"}, Small: true}},
		"sweep backend":  {Sweep: &SweepJob{Apps: []string{"mfifo"}, Backends: []string{"nocc"}, Tiles: []int{4}, Topos: []string{"ring"}, Small: true}},
		"sweep topo":     {Sweep: &SweepJob{Apps: []string{"mfifo"}, Backends: []string{"dsm"}, Tiles: []int{4}, Topos: []string{"mesh"}, Small: true}},
		"sweep scale":    {Sweep: &SweepJob{Apps: []string{"mfifo"}, Backends: []string{"dsm"}, Tiles: []int{4}, Topos: []string{"ring"}}},
		"litmus program": {Litmus: &LitmusJob{Prog: "corr"}},
		"litmus engine":  {Litmus: &LitmusJob{Prog: "sb-drf", Tree: true}},
		"litmus budget":  {Litmus: &LitmusJob{Prog: "sb-drf", MaxStates: 1000}},
		"fuzz seed":      {Fuzz: &FuzzJob{Seed: 2, N: 4}},
		"fuzz n":         {Fuzz: &FuzzJob{Seed: 1, N: 5}},
		"fuzz mode":      {Fuzz: &FuzzJob{Seed: 1, N: 4, Mode: "racy"}},
		"fuzz runs":      {Fuzz: &FuzzJob{Seed: 1, N: 4, Runs: 2}},
	}
	for name, spec := range variants {
		f := fp(t, spec, "cv")
		if prev, dup := seen[f]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, f)
		}
		seen[f] = name
	}

	// The code version salts everything: the same job on different code
	// must never alias.
	for name, spec := range map[string]JobSpec{"sweep": sweepJob(), "litmus": litmusJob(), "fuzz": fuzzJob()} {
		if a, b := fp(t, spec, "cv"), fp(t, spec, "cv2"); a == b {
			t.Errorf("%s fingerprint ignores the code version", name)
		}
	}
}

func TestFingerprintRejectsBadSpecs(t *testing.T) {
	bad := map[string]JobSpec{
		"empty":           {},
		"two kinds":       {Litmus: &LitmusJob{Prog: "sb-drf"}, Fuzz: &FuzzJob{Seed: 1, N: 1}},
		"no apps":         {Sweep: &SweepJob{}},
		"unknown app":     {Sweep: &SweepJob{Apps: []string{"nope"}}},
		"unknown backend": {Sweep: &SweepJob{Apps: []string{"mfifo"}, Backends: []string{"nope"}}},
		"bad tile count":  {Sweep: &SweepJob{Apps: []string{"mfifo"}, Tiles: []int{0}}},
		"bad topology":    {Sweep: &SweepJob{Apps: []string{"mfifo"}, Topos: []string{"hypercube"}}},
		"unknown program": {Litmus: &LitmusJob{Prog: "nope"}},
		"negative budget": {Litmus: &LitmusJob{Prog: "sb-drf", MaxStates: -1}},
		"fuzz no count":   {Fuzz: &FuzzJob{Seed: 1}},
		"fuzz bad mode":   {Fuzz: &FuzzJob{Seed: 1, N: 1, Mode: "nope"}},
		"bench no name":   {Bench: &BenchJob{}},
	}
	for name, spec := range bad {
		if _, err := Fingerprint(spec, "cv"); err == nil {
			t.Errorf("%s: Fingerprint accepted a malformed spec", name)
		}
	}
}

package pmcd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newTestService starts a server with its HTTP surface and returns it with
// a client pointed at it, so every test exercises the same wire path the
// CLI and the CI smoke job use.
func newTestService(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = "test"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, NewClient(ts.URL)
}

// submitAndFetch submits a spec and returns (status after submit, result
// bytes once done).
func submitAndFetch(t *testing.T, c *Client, spec JobSpec) (*JobStatus, []byte) {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	body, err := c.Result(ctx, st.ID, true)
	if err != nil {
		t.Fatalf("Result(%s): %v", st.ID, err)
	}
	return st, body
}

// The acceptance property of the whole service: a resubmitted job is
// answered from the store, with no simulation, byte-identical to the
// fresh run — which itself is byte-identical to running the engine
// directly.
func TestServerCacheHitByteIdentity(t *testing.T) {
	srv, c := newTestService(t, Config{})
	spec := litmusJob()

	st1, body1 := submitAndFetch(t, c, spec)
	if st1.Cached {
		t.Fatal("first submission claims a cache hit on an empty store")
	}
	norm, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := run(norm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, direct) {
		t.Fatalf("served body differs from a direct engine run:\n%s\nvs\n%s", body1, direct)
	}

	st2, body2 := submitAndFetch(t, c, spec)
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("resubmission not a cache hit: %+v", st2)
	}
	if st2.Fingerprint != st1.Fingerprint {
		t.Fatalf("fingerprint drifted across submissions: %s vs %s", st1.Fingerprint, st2.Fingerprint)
	}
	if !bytes.Equal(body2, body1) {
		t.Fatal("cached body is not byte-identical to the fresh simulation")
	}

	stats := srv.Stats()
	if stats.Simulations != 1 {
		t.Fatalf("two submissions cost %d simulations, want 1", stats.Simulations)
	}
	if stats.Cached != 1 || stats.Submitted != 2 || stats.Done != 2 {
		t.Fatalf("counter mismatch: %+v", stats)
	}

	// The content-addressed endpoint serves the same bytes.
	byFp, ok, err := c.ResultByFingerprint(context.Background(), st1.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("ResultByFingerprint: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(byFp, body1) {
		t.Fatal("fingerprint lookup returned different bytes")
	}
	if _, ok, err := c.ResultByFingerprint(context.Background(), fmt.Sprintf("%064x", 0)); err != nil || ok {
		t.Fatalf("absent fingerprint: ok=%v err=%v", ok, err)
	}
}

func TestServerSweepJob(t *testing.T) {
	srv, c := newTestService(t, Config{})
	spec := sweepJob()
	st1, body1 := submitAndFetch(t, c, spec)

	// The served table is the sweep engine's own JSON emission: an
	// indented array of rows in grid order.
	var rows []map[string]any
	if err := json.Unmarshal(body1, &rows); err != nil {
		t.Fatalf("sweep body is not a row array: %v\n%s", err, body1)
	}
	if len(rows) != 1 {
		t.Fatalf("1-cell grid produced %d rows", len(rows))
	}

	st2, body2 := submitAndFetch(t, c, spec)
	if !st2.Cached || !bytes.Equal(body2, body1) {
		t.Fatalf("sweep resubmission not a byte-identical hit (cached=%v)", st2.Cached)
	}
	if got := srv.Stats().Simulations; got != 1 {
		t.Fatalf("sweep pair cost %d simulations", got)
	}
	_ = st1
}

func TestServerBenchJobExactMetrics(t *testing.T) {
	_, c := newTestService(t, Config{})
	spec := JobSpec{Bench: &BenchJob{Entry: benchEntry("bench/mfifo")}}
	st, body := submitAndFetch(t, c, spec)
	var res struct {
		Entry   string `json:"entry"`
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bench body: %v", err)
	}
	if res.Entry != "bench/mfifo" || len(res.Metrics) == 0 {
		t.Fatalf("bench result missing exact metrics: %+v", res)
	}
	// Exact metrics only: host timings are machine properties and must
	// never be served from a content-addressed store.
	for _, m := range res.Metrics {
		switch m.Name {
		case "ns/op", "allocs/op", "bytes/op":
			t.Errorf("host metric %s leaked into a cacheable bench body", m.Name)
		}
	}
	st2, body2 := submitAndFetch(t, c, spec)
	if !st2.Cached || !bytes.Equal(body2, body) {
		t.Fatalf("bench resubmission not a byte-identical hit (cached=%v)", st2.Cached)
	}
	_ = st
}

func TestServerEventsStreamTerminates(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, litmusJob())
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	last, err := c.Events(ctx, st.ID, func(ev JobStatus) {
		states = append(states, ev.State)
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if last.State != StateDone {
		t.Fatalf("stream ended in state %q", last.State)
	}
	if len(states) == 0 {
		t.Fatal("stream emitted no events")
	}
	if states[len(states)-1] != StateDone {
		t.Fatalf("stream did not end with the terminal state: %v", states)
	}
	if last.ProgressDone != last.ProgressTotal || last.ProgressTotal == 0 {
		t.Fatalf("finished job reports progress %d/%d", last.ProgressDone, last.ProgressTotal)
	}
}

func TestServerRejects(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	for name, spec := range map[string]JobSpec{
		"empty":     {},
		"two kinds": {Litmus: &LitmusJob{Prog: "sb-drf"}, Fuzz: &FuzzJob{Seed: 1, N: 1}},
		"unknown":   {Litmus: &LitmusJob{Prog: "nope"}},
	} {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("%s: submission accepted", name)
		}
	}
	if _, err := c.Status(ctx, "j999"); err == nil {
		t.Error("unknown job id did not 404")
	}
	// Unknown top-level fields are rejected (a typoed "sweeps" must not
	// silently submit an empty job).
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"sweeps": {}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field submitted with HTTP %d", resp.StatusCode)
	}
	// Non-fingerprint result paths are rejected before touching the store.
	resp, err = http.Get(c.Base + "/v1/results/NOT-A-FINGERPRINT")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fingerprint path answered HTTP %d", resp.StatusCode)
	}
}

// TestConcurrentClientsSingleFlight is the -race satellite: many clients
// submitting overlapping jobs cost exactly one simulation per distinct
// fingerprint, and every client reads byte-identical results.
func TestConcurrentClientsSingleFlight(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 8})
	specs := []JobSpec{
		{Litmus: &LitmusJob{Prog: "sb-drf"}},
		{Litmus: &LitmusJob{Prog: "corr"}},
	}
	const perSpec = 8
	type res struct {
		fp   string
		body []byte
	}
	results := make([]res, len(specs)*perSpec)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for si, spec := range specs {
		for k := 0; k < perSpec; k++ {
			wg.Add(1)
			go func(slot int, spec JobSpec) {
				defer wg.Done()
				<-start
				ctx := context.Background()
				st, err := c.Submit(ctx, spec)
				if err != nil {
					t.Errorf("slot %d: %v", slot, err)
					return
				}
				body, err := c.Result(ctx, st.ID, true)
				if err != nil {
					t.Errorf("slot %d: %v", slot, err)
					return
				}
				results[slot] = res{fp: st.Fingerprint, body: body}
			}(si*perSpec+k, spec)
		}
	}
	close(start)
	wg.Wait()

	byFp := map[string][]byte{}
	for i, r := range results {
		if r.fp == "" {
			t.Fatalf("slot %d has no result", i)
		}
		if prev, ok := byFp[r.fp]; ok {
			if !bytes.Equal(prev, r.body) {
				t.Fatalf("fingerprint %s served divergent bodies", r.fp)
			}
		} else {
			byFp[r.fp] = r.body
		}
	}
	if len(byFp) != len(specs) {
		t.Fatalf("%d distinct fingerprints for %d distinct specs", len(byFp), len(specs))
	}
	if sims := srv.Cache().Simulations(); sims != int64(len(specs)) {
		t.Fatalf("%d clients cost %d simulations, want %d (one per fingerprint)",
			len(results), sims, len(specs))
	}
}

// A server restarted over the same cache directory answers from disk: the
// persistence CI's bench job relies on via actions/cache.
func TestServerDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := litmusJob()

	srv1, c1 := newTestService(t, Config{CacheDir: dir})
	_, body1 := submitAndFetch(t, c1, spec)
	if srv1.Stats().Simulations != 1 {
		t.Fatal("first server did not simulate")
	}

	srv2, c2 := newTestService(t, Config{CacheDir: dir})
	st, body2 := submitAndFetch(t, c2, spec)
	if !st.Cached {
		t.Fatal("restarted server re-simulated a stored fingerprint")
	}
	if !bytes.Equal(body2, body1) {
		t.Fatal("disk-tier body differs across restarts")
	}
	if srv2.Stats().Simulations != 0 {
		t.Fatal("restarted server counted a simulation for a disk hit")
	}
}

// A different code version is a different address: the restarted server
// must NOT serve the old build's bytes.
func TestServerCodeVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	spec := litmusJob()

	_, c1 := newTestService(t, Config{CacheDir: dir, CodeVersion: "rev-a"})
	st1, _ := submitAndFetch(t, c1, spec)

	srv2, c2 := newTestService(t, Config{CacheDir: dir, CodeVersion: "rev-b"})
	st2, _ := submitAndFetch(t, c2, spec)
	if st2.Cached {
		t.Fatal("new code version served the old version's result")
	}
	if st1.Fingerprint == st2.Fingerprint {
		t.Fatal("code version does not participate in the fingerprint")
	}
	if srv2.Stats().Simulations != 1 {
		t.Fatal("new code version did not re-simulate")
	}
}

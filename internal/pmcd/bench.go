package pmcd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"pmc/internal/perf"
)

// BenchCached makes a perf benchmark run cache-backed: every suite entry
// is keyed by its content address — the entry's declarative identity, the
// repetition count, and the cache key (a code-version component; CI
// passes a source hash) — and answered from the store when present,
// skipping the entry's simulation entirely. Fresh measurements populate
// the store, so a persisted disk tier (the CI bench job ships it through
// actions/cache) keeps unchanged entries from ever being re-simulated.
//
// A cache hit's exact metrics are byte-for-byte what a fresh run would
// report — entries are deterministic, which is the premise of the whole
// service — while its host timings (ns/op, allocs/op) are from the run
// that measured them; the CI comparison's generous host threshold absorbs
// that, and the exact gate is unaffected.

// BenchCacheStats counts cache effectiveness of one cache-backed run.
type BenchCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// BenchCacheKey is the content address of one suite entry's measurement.
// It is salted differently from the job API's bench fingerprints: the job
// API stores exact-metrics-only bodies, this cache stores full
// measurements (host timings included), and the two must never alias.
func BenchCacheKey(e perf.Entry, reps int, cacheKey string) (string, error) {
	body, err := json.Marshal(e)
	if err != nil {
		return "", fmt.Errorf("pmcd: bench entry marshal: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "pmcd/benchm/v1\x00%d\x00", reps)
	h.Write(body)
	fmt.Fprintf(h, "\x00%s", cacheKey)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// BenchCached wires the spec's Lookup/Store hooks to the store and runs
// the suite. cacheKey salts every entry key ("" = CodeVersion()).
func BenchCached(spec perf.Spec, store *Store, cacheKey string) (*perf.Report, BenchCacheStats, error) {
	if cacheKey == "" {
		cacheKey = CodeVersion()
	}
	reps := spec.Reps
	if reps <= 0 {
		reps = 5
	}
	var hits, misses atomic.Int64
	spec.Lookup = func(e perf.Entry) (*perf.Measurement, bool) {
		key, err := BenchCacheKey(e, reps, cacheKey)
		if err != nil {
			return nil, false
		}
		body, ok, err := store.Get(key)
		if err != nil || !ok {
			misses.Add(1)
			return nil, false
		}
		var m perf.Measurement
		if err := json.Unmarshal(body, &m); err != nil {
			misses.Add(1)
			return nil, false
		}
		hits.Add(1)
		return &m, true
	}
	spec.Store = func(e perf.Entry, m *perf.Measurement) {
		key, err := BenchCacheKey(e, reps, cacheKey)
		if err != nil {
			return
		}
		body, err := json.Marshal(m)
		if err != nil {
			return
		}
		// Best-effort: a failed store write costs a future re-measure,
		// never a wrong result.
		_ = store.Put(key, body)
	}
	rep, err := perf.Run(spec)
	st := BenchCacheStats{Hits: hits.Load(), Misses: misses.Load()}
	return rep, st, err
}

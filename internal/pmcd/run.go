package pmcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"pmc/internal/fuzz"
	"pmc/internal/litmus"
	"pmc/internal/perf"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// Job execution. Every runner produces deterministic bytes: the result
// body of a job is a pure function of its normalized spec, which is what
// lets the store serve it verbatim forever. Sweep tables reuse the sweep
// engine's own JSON emission (already byte-stable for any worker count);
// litmus, fuzz and bench results serialize reduced, ordered views —
// sorted outcome lists, campaign-order violation lists, exact metrics in
// suite order.

// Progress is a job's coarse completion counter, updated atomically by
// the runner and readable while the job runs (the events stream polls
// it). Units are job-kind-specific: sweep counts grid cells, litmus and
// bench count 1 step, fuzz counts generated programs.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
}

// Snapshot returns (done, total).
func (p *Progress) Snapshot() (int64, int64) { return p.done.Load(), p.total.Load() }

// run executes a normalized job spec and returns the deterministic result
// body. progress may be nil.
func run(spec JobSpec, progress *Progress) ([]byte, error) {
	if progress == nil {
		progress = &Progress{}
	}
	switch {
	case spec.Sweep != nil:
		return runSweep(spec.Sweep, progress)
	case spec.Litmus != nil:
		return runLitmus(spec.Litmus, progress)
	case spec.Fuzz != nil:
		return runFuzz(spec.Fuzz, progress)
	case spec.Bench != nil:
		return runBench(spec.Bench, progress)
	}
	return nil, fmt.Errorf("pmcd: empty job spec")
}

func runSweep(j *SweepJob, progress *Progress) ([]byte, error) {
	spec, err := j.sweepSpec()
	if err != nil {
		return nil, err
	}
	// The Make hook is attached only for execution (scale selection +
	// progress accounting); the job's identity was fixed from the
	// declarative axes before it reached here.
	small := j.Small
	spec.Make = func(c sweep.Cell) (workloads.App, error) {
		app, ok := workloads.Scaled(c.App, small)
		if !ok {
			return nil, fmt.Errorf("unknown app %q", c.App)
		}
		progress.done.Add(1)
		return app, nil
	}
	progress.total.Store(int64(len(spec.Cells())))
	table, err := sweep.Run(*spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// litmusResult is the serialized view of an exploration: sorted outcomes,
// so the bytes are canonical.
type litmusResult struct {
	Prog     string `json:"prog"`
	States   int    `json:"states"`
	Stuck    int    `json:"stuck"`
	Outcomes []struct {
		Outcome    string `json:"outcome"`
		Executions int    `json:"executions"`
	} `json:"outcomes"`
}

func runLitmus(j *LitmusJob, progress *Progress) ([]byte, error) {
	prog, ok := litmus.ByName(j.Prog)
	if !ok {
		return nil, fmt.Errorf("pmcd: unknown litmus program %q", j.Prog)
	}
	progress.total.Store(1)
	x := litmus.NewExplorer(prog)
	x.Memoize = !j.Tree
	if j.Tree {
		x.Workers = 1 // the tree reference engine is sequential
	}
	if j.MaxStates > 0 {
		x.MaxStates = j.MaxStates
	}
	res, err := x.Run()
	if err != nil {
		return nil, err
	}
	out := litmusResult{Prog: j.Prog, States: res.States, Stuck: res.Stuck}
	for _, o := range res.OutcomeList() {
		out.Outcomes = append(out.Outcomes, struct {
			Outcome    string `json:"outcome"`
			Executions int    `json:"executions"`
		}{o, res.Outcomes[o]})
	}
	progress.done.Store(1)
	return marshalBody(out)
}

// fuzzResult is the serialized campaign summary: the worker-count-
// independent tallies plus the violations and errors in campaign order.
type fuzzResult struct {
	Seed          int64    `json:"seed"`
	N             int      `json:"n"`
	Mode          string   `json:"mode"`
	Backends      []string `json:"backends"`
	Runs          int      `json:"runs"`
	Unique        int      `json:"unique"`
	Deduped       int      `json:"deduped"`
	SkippedBudget int      `json:"skipped_budget"`
	SkippedStuck  int      `json:"skipped_stuck"`
	Checked       int      `json:"checked"`
	Ok            bool     `json:"ok"`
	Violations    []struct {
		Seed    int64  `json:"seed"`
		Backend string `json:"backend"`
	} `json:"violations,omitempty"`
	Errors []struct {
		Seed    int64  `json:"seed"`
		Backend string `json:"backend"`
		Err     string `json:"err"`
	} `json:"errors,omitempty"`
}

func runFuzz(j *FuzzJob, progress *Progress) ([]byte, error) {
	mode, err := fuzz.ParseMode(j.Mode)
	if err != nil {
		return nil, err
	}
	progress.total.Store(int64(j.N))
	sum, err := fuzz.Run(fuzz.Config{
		Seed:     j.Seed,
		N:        j.N,
		Gen:      fuzz.GenConfig{Mode: mode},
		Backends: j.Backends,
		Runs:     j.Runs,
	})
	if err != nil {
		return nil, err
	}
	out := fuzzResult{
		Seed: sum.Seed, N: sum.N, Mode: sum.Mode.String(), Backends: sum.Backends,
		Runs: sum.Runs, Unique: sum.Unique, Deduped: sum.Deduped,
		SkippedBudget: sum.SkippedBudget, SkippedStuck: sum.SkippedStuck,
		Checked: sum.Checked, Ok: sum.Ok(),
	}
	for _, v := range sum.Violations {
		out.Violations = append(out.Violations, struct {
			Seed    int64  `json:"seed"`
			Backend string `json:"backend"`
		}{v.Seed, v.Backend})
	}
	for _, e := range sum.Errors {
		out.Errors = append(out.Errors, struct {
			Seed    int64  `json:"seed"`
			Backend string `json:"backend"`
			Err     string `json:"err"`
		}{e.Seed, e.Backend, e.Err})
	}
	progress.done.Store(int64(j.N))
	return marshalBody(out)
}

// benchResult is the deterministic half of a perf measurement: the exact
// metrics of one entry execution. Host timings never appear — they are
// machine properties, not content.
type benchResult struct {
	Entry   string `json:"entry"`
	Metrics []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	} `json:"metrics"`
}

func runBench(j *BenchJob, progress *Progress) ([]byte, error) {
	progress.total.Store(1)
	exact, err := perf.RunEntry(j.Entry)
	if err != nil {
		return nil, err
	}
	out := benchResult{Entry: j.Entry.Name}
	for _, m := range exact {
		out.Metrics = append(out.Metrics, struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		}{m.Name, m.Value})
	}
	progress.done.Store(1)
	return marshalBody(out)
}

// marshalBody serializes a result view with the repo's JSON convention
// (indented, trailing newline) — the same bytes a fresh simulation and a
// cache hit must both produce.
func marshalBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package pmcd

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The result store is two-tiered: a bounded in-memory LRU in front of a
// content-addressed disk store. Keys are result fingerprints (hex SHA-256,
// see Fingerprint), values are the deterministic result bodies. Because a
// key commits to the full computation and the code version, a stored body
// never goes stale — eviction is purely a capacity decision, and the
// disk tier can be persisted across server restarts and CI runs (the
// bench job ships it through actions/cache).

// StoreStats are the store's monotonic counters.
type StoreStats struct {
	// MemHits served from the LRU tier, DiskHits from the disk tier
	// (promoting to memory), Misses found in neither.
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`
	// Puts counts stored results; MemEntries is the current LRU size.
	Puts       int64 `json:"puts"`
	MemEntries int64 `json:"mem_entries"`
}

// Store is the two-tier content-addressed result store. The zero value is
// not usable; Open it.
type Store struct {
	dir string // "" = memory-only

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *storeEntry
	entries map[string]*list.Element
	cap     int

	memHits, diskHits, misses, puts atomic.Int64
}

type storeEntry struct {
	key  string
	body []byte
}

// Open returns a store over dir (created if missing; "" keeps results in
// memory only) with an LRU tier of memEntries results (0 = 128).
func Open(dir string, memEntries int) (*Store, error) {
	if memEntries <= 0 {
		memEntries = 128
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pmcd: store dir: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		cap:     memEntries,
	}, nil
}

// Dir returns the disk tier's directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Get returns the stored body for key. The returned slice is shared —
// callers must not modify it.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		body := el.Value.(*storeEntry).body
		s.mu.Unlock()
		s.memHits.Add(1)
		return body, true, nil
	}
	s.mu.Unlock()
	if s.dir == "" {
		s.misses.Add(1)
		return nil, false, nil
	}
	body, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("pmcd: store read: %w", err)
	}
	s.diskHits.Add(1)
	s.promote(key, body)
	return body, true, nil
}

// Put stores body under key in both tiers. Writes to the disk tier are
// atomic (temp file + rename), so a crashed or raced server never leaves
// a torn body behind.
func (s *Store) Put(key string, body []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if s.dir != "" {
		path := s.path(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("pmcd: store write: %w", err)
		}
		tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+".tmp*")
		if err != nil {
			return fmt.Errorf("pmcd: store write: %w", err)
		}
		if _, err := tmp.Write(body); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("pmcd: store write: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("pmcd: store write: %w", err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("pmcd: store write: %w", err)
		}
	}
	s.puts.Add(1)
	s.promote(key, body)
	return nil
}

// promote inserts key at the LRU front, evicting past capacity.
func (s *Store) promote(key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*storeEntry).body = body
		return
	}
	s.entries[key] = s.lru.PushFront(&storeEntry{key: key, body: body})
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
	}
}

// GCStats summarizes one GC pass over the disk tier.
type GCStats struct {
	// Scanned counts stored bodies examined; Purged of those were older
	// than the age bound and removed, Kept remain. Bytes is the disk
	// space reclaimed by the purge.
	Scanned int   `json:"scanned"`
	Purged  int   `json:"purged"`
	Kept    int   `json:"kept"`
	Bytes   int64 `json:"bytes"`
}

func (g GCStats) String() string {
	return fmt.Sprintf("scanned %d, purged %d (%d bytes), kept %d", g.Scanned, g.Purged, g.Bytes, g.Kept)
}

// GC removes disk-tier bodies whose last write is older than maxAge and
// purges them from the memory tier, returning what it did. Content
// addressing makes age the only sensible policy: a body never goes
// stale, so GC is purely a disk-capacity bound for long-lived caches
// (the CI actions/cache, a developer's ~/.cache). Removals are
// independent atomic deletes — a GC racing a Put of the same key at
// worst deletes the body the Put immediately re-creates, never tears
// it. Leftover temp files from crashed writers past the age bound are
// swept too (they are never counted as stored bodies). Memory-only
// stores have nothing on disk; GC is a no-op there.
func (s *Store) GC(maxAge time.Duration) (GCStats, error) {
	var g GCStats
	if s.dir == "" {
		return g, nil
	}
	cutoff := time.Now().Add(-maxAge)
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return g, fmt.Errorf("pmcd: store gc: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		shardDir := filepath.Join(s.dir, shard.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			return g, fmt.Errorf("pmcd: store gc: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(shardDir, f.Name())
			info, err := f.Info()
			if err != nil {
				if os.IsNotExist(err) {
					continue // raced with another GC
				}
				return g, fmt.Errorf("pmcd: store gc: %w", err)
			}
			key, isBody := strings.CutSuffix(f.Name(), ".json")
			if !isBody || validKey(key) != nil {
				// A crashed writer's temp file: sweep it once it is
				// certainly not being renamed into place anymore.
				if info.ModTime().Before(cutoff) {
					os.Remove(path)
				}
				continue
			}
			g.Scanned++
			if !info.ModTime().Before(cutoff) {
				g.Kept++
				continue
			}
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return g, fmt.Errorf("pmcd: store gc: %w", err)
			}
			g.Purged++
			g.Bytes += info.Size()
			s.mu.Lock()
			if el, ok := s.entries[key]; ok {
				s.lru.Remove(el)
				delete(s.entries, key)
			}
			s.mu.Unlock()
		}
		// An emptied shard directory is recreated by the next Put; a
		// non-empty one makes Remove fail, which is the desired check.
		os.Remove(shardDir)
	}
	return g, nil
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	n := int64(s.lru.Len())
	s.mu.Unlock()
	return StoreStats{
		MemHits:  s.memHits.Load(),
		DiskHits: s.diskHits.Load(),
		Misses:   s.misses.Load(),
		Puts:     s.puts.Load(),

		MemEntries: n,
	}
}

// path shards the content-addressed files by the key's first byte so one
// directory never holds the whole store.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// validKey guards the disk layout: keys are lowercase-hex fingerprints,
// never attacker-shaped paths.
func validKey(key string) error {
	if len(key) < 16 {
		return fmt.Errorf("pmcd: store key %q too short", key)
	}
	if strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) >= 0 {
		return fmt.Errorf("pmcd: store key %q is not a hex fingerprint", key)
	}
	return nil
}

// Cache wraps the store with single-flight computation: Do guarantees at
// most one compute per key is ever in flight, concurrent callers for the
// same key share the leader's result, and completed results come from the
// store without recomputation. This is the invariant the concurrent-
// client tests pin: N clients submitting the same job cost one simulation.
type Cache struct {
	store *Store

	mu       sync.Mutex
	inflight map[string]*flight

	sims   atomic.Int64
	dedups atomic.Int64
}

type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache wraps store.
func NewCache(store *Store) *Cache {
	return &Cache{store: store, inflight: make(map[string]*flight)}
}

// Store returns the underlying two-tier store.
func (c *Cache) Store() *Store { return c.store }

// Simulations returns how many computes actually ran (cache misses that
// led the flight).
func (c *Cache) Simulations() int64 { return c.sims.Load() }

// Dedups returns how many callers attached to another caller's in-flight
// compute.
func (c *Cache) Dedups() int64 { return c.dedups.Load() }

// Do returns the body for key, computing it at most once: a stored result
// is served as-is (hit=true); otherwise one caller runs compute and
// stores the body while concurrent callers for the same key wait and
// share it (hit=true for them too — they did not pay for a simulation).
// Failed computes are not stored; the error is shared with attached
// callers and the next Do retries.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	if body, ok, err := c.store.Get(key); err != nil {
		return nil, false, err
	} else if ok {
		return body, true, nil
	}
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.dedups.Add(1)
		<-f.done
		if f.err != nil {
			return nil, true, f.err
		}
		return f.body, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	c.sims.Add(1)
	f.body, f.err = compute()
	if f.err == nil {
		f.err = c.store.Put(key, f.body)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.body, false, f.err
}

package litmus

import (
	"reflect"
	"testing"
	"testing/quick"

	"pmc/internal/core"
)

func explore(t *testing.T, p Program) *Result {
	t.Helper()
	r, err := Explore(p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return r
}

// TestFig1Broken: without synchronization on X, the reader can see the
// stale initial value even after the flag — the paper's motivating bug.
func TestFig1Broken(t *testing.T) {
	r := explore(t, Fig1Unsynchronized())
	if !r.HasOutcome("rX=42") {
		t.Fatalf("fresh outcome missing: %v", r.OutcomeList())
	}
	if !r.HasOutcome("rX=0") {
		t.Fatalf("stale outcome missing — the bug should be observable: %v", r.OutcomeList())
	}
}

// TestFig1VolatileStillBroken: fences alone cannot repair Fig. 1 ("the
// problem cannot be prevented, even if ... separated by fence
// instructions").
func TestFig1VolatileStillBroken(t *testing.T) {
	r := explore(t, Fig1Volatile())
	if !r.HasOutcome("rX=0") {
		t.Fatalf("fences alone must not fix fig 1: %v", r.OutcomeList())
	}
}

// TestFig5AnnotatedCorrect: the fully annotated program of Fig. 6 has
// exactly one outcome, rX=42, across every interleaving and read choice.
func TestFig5AnnotatedCorrect(t *testing.T) {
	r := explore(t, Fig5Annotated())
	if len(r.Outcomes) != 1 || !r.HasOutcome("poll=1 rX=42") {
		t.Fatalf("outcomes = %v, want only poll=1 rX=42", r.OutcomeList())
	}
	if r.Stuck != 0 {
		t.Fatalf("%d stuck executions", r.Stuck)
	}
}

// TestFig5NoAcquireBroken: dropping only the reader's acquire of X restores
// the stale outcome (Section IV-C's "no way ... without acquiring it").
func TestFig5NoAcquireBroken(t *testing.T) {
	r := explore(t, Fig5NoAcquire())
	if !r.HasOutcome("poll=1 rX=0") {
		t.Fatalf("stale outcome missing: %v", r.OutcomeList())
	}
	if !r.HasOutcome("poll=1 rX=42") {
		t.Fatalf("fresh outcome missing: %v", r.OutcomeList())
	}
}

// TestStoreBufferingBare: PMC admits the PC/TSO-style r1=0,r2=0 outcome
// without synchronization.
func TestStoreBufferingBare(t *testing.T) {
	r := explore(t, StoreBufferingBare())
	for _, want := range []string{"r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=0", "r1=1 r2=1"} {
		if !r.HasOutcome(want) {
			t.Errorf("outcome %q missing: %v", want, r.OutcomeList())
		}
	}
}

// TestStoreBufferingDRF: with every access wrapped in entry/exit pairs and
// fences between sections, PMC simulates SC: r1=0,r2=0 disappears.
func TestStoreBufferingDRF(t *testing.T) {
	r := explore(t, StoreBufferingDRF())
	if r.HasOutcome("r1=0 r2=0") {
		t.Fatalf("DRF store buffering must exclude r1=0 r2=0 (SC simulation): %v", r.OutcomeList())
	}
	for _, want := range []string{"r1=0 r2=1", "r1=1 r2=0", "r1=1 r2=1"} {
		if !r.HasOutcome(want) {
			t.Errorf("SC outcome %q missing: %v", want, r.OutcomeList())
		}
	}
}

// TestCoRRMonotone: reads of one location by one thread never go backwards
// (slow-memory coherence).
func TestCoRRMonotone(t *testing.T) {
	r := explore(t, CoRR())
	bad := []string{"r1=1 r2=0", "r1=2 r2=0", "r1=2 r2=1"}
	for _, b := range bad {
		if r.HasOutcome(b) {
			t.Errorf("non-monotone outcome %q observed", b)
		}
	}
	for _, want := range []string{"r1=0 r2=0", "r1=0 r2=1", "r1=0 r2=2", "r1=1 r2=1", "r1=1 r2=2", "r1=2 r2=2"} {
		if !r.HasOutcome(want) {
			t.Errorf("monotone outcome %q missing: %v", want, r.OutcomeList())
		}
	}
}

// TestMutexCounter: the lock serializes the sections; each thread sees
// either the initial value or the other's write, never torn state.
func TestMutexCounter(t *testing.T) {
	r := explore(t, MutexCounter())
	want := map[string]bool{"a1=0 a2=10": true, "a1=20 a2=0": true}
	for _, o := range r.OutcomeList() {
		if !want[o] {
			t.Errorf("unexpected outcome %q", o)
		}
		delete(want, o)
	}
	for o := range want {
		t.Errorf("missing outcome %q", o)
	}
}

func TestAwaitNeverSatisfiedIsStuck(t *testing.T) {
	p := Program{
		Name: "stuck",
		Locs: []string{"f"},
		Threads: []Thread{
			{AwaitEq("f", 7, "")}, // nobody writes 7
			{Write("f", 1)},
		},
	}
	r := explore(t, p)
	if r.Stuck == 0 {
		t.Fatal("unsatisfiable await should be reported stuck")
	}
	if len(r.Outcomes) != 0 {
		t.Fatalf("no complete outcome expected, got %v", r.OutcomeList())
	}
}

func TestUnknownLocationRejected(t *testing.T) {
	p := Program{
		Name:    "bad",
		Locs:    []string{"X"},
		Threads: []Thread{{Write("Y", 1)}},
	}
	if _, err := Explore(p); err == nil {
		t.Fatal("unknown location not rejected")
	}
}

// TestReleaseWithoutHoldIsError: a malformed program whose thread releases
// a lock it never acquired (or already released) must surface as an error
// from Explore, not a panic.
func TestReleaseWithoutHoldIsError(t *testing.T) {
	cases := []Program{
		{
			Name:    "release-never-acquired",
			Locs:    []string{"X"},
			Threads: []Thread{{Release("X")}},
		},
		{
			Name:    "release-twice",
			Locs:    []string{"X"},
			Threads: []Thread{{Acquire("X"), Release("X"), Release("X")}, {Acquire("X"), Release("X")}},
		},
		{
			// Validation is static and deliberately stricter than
			// reachability: the release hides behind an await nobody
			// satisfies, so exploration would never step it, but the
			// program is malformed and gets rejected up front.
			Name:    "release-unreachable",
			Locs:    []string{"X"},
			Threads: []Thread{{AwaitEq("X", 5, ""), Release("X")}},
		},
	}
	for _, p := range cases {
		t.Run(p.Name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Explore panicked: %v", r)
				}
			}()
			if _, err := Explore(p); err == nil {
				t.Fatal("release without hold not rejected")
			}
		})
	}
}

// TestMaxStatesBoundary: an exploration that completes using exactly
// MaxStates states succeeds; the budget error fires only when work
// remained beyond it. Checked in both tree and memoized modes (regression
// for the off-by-one that reported boundary completions as exhausted).
func TestMaxStatesBoundary(t *testing.T) {
	for _, mode := range []struct {
		name    string
		memoize bool
	}{{"tree", false}, {"memoized", true}} {
		t.Run(mode.name, func(t *testing.T) {
			x := NewExplorer(MutexCounter())
			x.Workers, x.Memoize = 1, mode.memoize
			r, err := x.Run()
			if err != nil {
				t.Fatal(err)
			}
			n := r.States

			exact := NewExplorer(MutexCounter())
			exact.Workers, exact.Memoize = 1, mode.memoize
			exact.MaxStates = n
			re, err := exact.Run()
			if err != nil {
				t.Fatalf("completion at the budget boundary (%d states) wrongly reported exhausted: %v", n, err)
			}
			if re.States != n {
				t.Fatalf("boundary run explored %d states, want %d", re.States, n)
			}

			under := NewExplorer(MutexCounter())
			under.Workers, under.Memoize = 1, mode.memoize
			under.MaxStates = n - 1
			if _, err := under.Run(); err == nil {
				t.Fatalf("budget %d below the %d required did not error", n-1, n)
			}
		})
	}
}

// TestDifferentialModes runs every cataloged program through sequential
// tree, memoized, parallel tree and parallel memoized exploration and
// requires identical Outcomes, Stuck and outcome lists. States must agree
// within a counting discipline (tree vs tree, memoized vs memoized). The
// stress program is exempted from the tree modes — not finishing there is
// its purpose (covered by TestStressNeedsMemoization).
func TestDifferentialModes(t *testing.T) {
	modes := []struct {
		name    string
		workers int
		memoize bool
	}{
		{"sequential", 1, false},
		{"memoized", 1, true},
		{"parallel-tree", 4, false},
		{"parallel-memoized", 4, true},
	}
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			results := make(map[string]*Result)
			for _, m := range modes {
				if p.Name == "stress-independent" && !m.memoize {
					continue
				}
				x := NewExplorer(p)
				x.Workers, x.Memoize = m.workers, m.memoize
				r, err := x.Run()
				if err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				results[m.name] = r
			}
			ref := results["memoized"]
			for name, r := range results {
				if !reflect.DeepEqual(r.Outcomes, ref.Outcomes) {
					t.Errorf("%s outcomes %v != memoized %v", name, r.Outcomes, ref.Outcomes)
				}
				if r.Stuck != ref.Stuck {
					t.Errorf("%s stuck %d != memoized %d", name, r.Stuck, ref.Stuck)
				}
				if !reflect.DeepEqual(r.OutcomeList(), ref.OutcomeList()) {
					t.Errorf("%s outcome list %v != memoized %v", name, r.OutcomeList(), ref.OutcomeList())
				}
			}
			if seq, ok := results["sequential"]; ok {
				if results["parallel-tree"].States != seq.States {
					t.Errorf("parallel tree explored %d states, sequential %d", results["parallel-tree"].States, seq.States)
				}
			}
			if results["parallel-memoized"].States != ref.States {
				t.Errorf("parallel memoized explored %d states, memoized %d", results["parallel-memoized"].States, ref.States)
			}
		})
	}
}

// TestParallelDeterministic: repeated parallel runs are bit-identical.
func TestParallelDeterministic(t *testing.T) {
	var ref *Result
	for i := 0; i < 5; i++ {
		x := NewExplorer(WRCDRF())
		x.Workers = 4
		r, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("run %d differs: %+v vs %+v", i, r, ref)
		}
	}
}

// TestStressNeedsMemoization: the stress program exceeds any reasonable
// tree budget but collapses to under a thousand canonical states, with the
// full 2×10⁸ path count preserved in the outcome totals.
func TestStressNeedsMemoization(t *testing.T) {
	tree := NewExplorer(StressIndependent())
	tree.Workers, tree.Memoize = 1, false
	tree.MaxStates = 50_000
	if _, err := tree.Run(); err == nil {
		t.Fatal("tree exploration finished the stress program inside 50k states — it is not stressful enough")
	}

	r := explore(t, StressIndependent())
	if r.States >= 10_000 {
		t.Errorf("memoization left %d states, want a collapse below 10k", r.States)
	}
	total := 0
	for _, n := range r.Outcomes {
		total += n
	}
	if total != 214_414_200 {
		t.Errorf("total path count %d, want 214414200 (multinomial of the interleavings)", total)
	}
	want := []string{"rA=2 rB=2 rC=7 rD=2"}
	if !reflect.DeepEqual(r.OutcomeList(), want) {
		t.Errorf("outcomes %v, want %v", r.OutcomeList(), want)
	}
}

func TestCatalogExplores(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			r := explore(t, p)
			if r.States == 0 {
				t.Fatal("no states explored")
			}
		})
	}
	if _, ok := ByName("fig5-annotated"); !ok {
		t.Fatal("ByName lookup failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName false positive")
	}
}

// Property: in any two-thread program where one thread only writes
// ascending values under a lock and the other only reads, every thread's
// observed read sequence is monotonically nondecreasing.
func TestReaderMonotoneProperty(t *testing.T) {
	prop := func(nWrites, nReads uint8) bool {
		nw := int(nWrites%4) + 1
		nr := int(nReads%3) + 1
		var writer, reader Thread
		writer = append(writer, Acquire("X"))
		for i := 1; i <= nw; i++ {
			writer = append(writer, Write("X", core.Value(i)))
		}
		writer = append(writer, Release("X"))
		regs := make([]string, nr)
		for i := 0; i < nr; i++ {
			regs[i] = string(rune('a' + i))
			reader = append(reader, Read("X", regs[i]))
		}
		p := Program{Name: "prop", Locs: []string{"X"}, Threads: []Thread{writer, reader}}
		x := NewExplorer(p)
		x.MaxStates = 500_000
		r, err := x.Run()
		if err != nil {
			return false
		}
		// Parse each outcome and require monotone register values.
		for o := range r.Outcomes {
			vals := parseOutcome(o, regs)
			for i := 1; i < len(vals); i++ {
				if vals[i] < vals[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func parseOutcome(o string, regs []string) []int {
	vals := make([]int, len(regs))
	fields := map[string]int{}
	var key string
	var num int
	inNum := false
	flushKV := func() {
		if key != "" {
			fields[key] = num
		}
		key, num, inNum = "", 0, false
	}
	for i := 0; i < len(o); i++ {
		c := o[i]
		switch {
		case c == ' ':
			flushKV()
		case c == '=':
			inNum = true
		case inNum && c >= '0' && c <= '9':
			num = num*10 + int(c-'0')
		default:
			key += string(c)
		}
	}
	flushKV()
	for i, r := range regs {
		vals[i] = fields[r]
	}
	return vals
}

// TestFig5ScopedFence: the writer's fence scoped to X (Section IV-D)
// preserves the unique outcome of the fully annotated program.
func TestFig5ScopedFence(t *testing.T) {
	r := explore(t, Fig5ScopedFence())
	if len(r.Outcomes) != 1 || !r.HasOutcome("poll=1 rX=42") {
		t.Fatalf("outcomes = %v, want only poll=1 rX=42", r.OutcomeList())
	}
}

// TestLoadBuffering: PMC forbids out-of-thin-air — reads return only
// already-issued writes, so r1=1,r2=1 is unobservable in the LB shape.
func TestLoadBuffering(t *testing.T) {
	r := explore(t, LoadBuffering())
	if r.HasOutcome("r1=1 r2=1") {
		t.Fatalf("out-of-thin-air outcome observed: %v", r.OutcomeList())
	}
	for _, want := range []string{"r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=0"} {
		if !r.HasOutcome(want) {
			t.Errorf("outcome %q missing", want)
		}
	}
}

// TestIRIWReadersMayDisagree: without synchronization the two readers can
// observe the independent writes in opposite orders — PMC is weaker than
// SC's total store order.
func TestIRIWReadersMayDisagree(t *testing.T) {
	r := explore(t, IRIW())
	// Reader 2 sees X then not-Y, reader 3 sees Y then not-X.
	if !r.HasOutcome("a=1 b=0 c=1 d=0") {
		t.Fatalf("disagreeing IRIW outcome missing: %v", r.OutcomeList())
	}
}

// TestWRCCausality: with annotations, write-to-read causality transfers
// through a second thread — T2 always reads 1.
func TestWRCCausality(t *testing.T) {
	r := explore(t, WRCDRF())
	for _, o := range r.OutcomeList() {
		if o != "r=1" {
			t.Fatalf("causality violated: outcome %q (all: %v)", o, r.OutcomeList())
		}
	}
	if !r.HasOutcome("r=1") {
		t.Fatal("no outcome recorded")
	}
}

// TestCoRWOutcomes: the read can observe the initial value or the remote
// write, never the thread's own later write (reads return issued writes
// only).
func TestCoRWOutcomes(t *testing.T) {
	r := explore(t, CoRW())
	for _, want := range []string{"r1=0", "r1=2"} {
		if !r.HasOutcome(want) {
			t.Errorf("missing outcome %q (all: %v)", want, r.OutcomeList())
		}
	}
	if r.HasOutcome("r1=1") {
		t.Fatalf("read observed the thread's own future write: %v", r.OutcomeList())
	}
}

// TestCoWROutcomes: under the bare model, Definition 12 pins the read to
// the thread's own write — the racing remote write is never ordered after
// it, so it is not readable. (The conformance harness compares against
// the effective program instead; see conform.EffectiveProgram.)
func TestCoWROutcomes(t *testing.T) {
	r := explore(t, CoWR())
	if !r.HasOutcome("r1=1") {
		t.Fatalf("own write not readable: %v", r.OutcomeList())
	}
	for _, o := range r.OutcomeList() {
		if o != "r1=1" {
			t.Fatalf("bare model admitted %q, want only r1=1 (all: %v)", o, r.OutcomeList())
		}
	}
}

// TestIRIW3ReadersMayDisagree: even though the two writes are issued by
// ONE process in program order, unsynchronized readers may observe them
// in opposite orders — ≺P is per location, so there is no global store
// order without acquires.
func TestIRIW3ReadersMayDisagree(t *testing.T) {
	r := explore(t, IRIW3())
	if !r.HasOutcome("a=0 b=1 c=1 d=1") {
		t.Errorf("reader 1 cannot see Y before X: %v", r.OutcomeList())
	}
	if !r.HasOutcome("a=1 b=1 c=1 d=0") {
		t.Errorf("reader 2 cannot see X before Y: %v", r.OutcomeList())
	}
}

package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"pmc/internal/core"
)

// Symmetry reduction. Many litmus programs contain interchangeable
// threads — iriw's two readers, stress programs' identical workers. A
// program automorphism is a pair of permutations (threads, locations)
// that maps the lowered program onto itself: thread t's instruction
// sequence, with locations and registers renamed, is exactly thread
// π(t)'s sequence, kind for kind and value for value. Two exploration
// states related by an automorphism have futures that are identical up
// to the induced register renaming, so the memoized engine can explore
// one orbit representative and translate its outcome map for every
// other member — collapsing the state count by up to the group order
// (t! for t fully symmetric threads) while leaving Outcomes, Stuck and
// per-outcome path counts bit-identical.
//
// The canonical key of a state is the minimum, over the identity plus
// every discovered automorphism, of the permuted fingerprint
// (fingerprintPerm). Correctness does not require the discovered set to
// be closed under composition: each permutation is independently a
// program automorphism, and a memo hit translates through the achieving
// permutations of both states, so partial groups merely collapse less.

// autPerm is one program automorphism: forward and inverse permutations
// of threads and (lowered) locations, plus the induced bijection on
// register slots (regOrder positions).
type autPerm struct {
	threads []int // image of thread t
	invT    []int
	locs    []int // image of location index l
	invL    []int
	regTo   []int // image of register slot r
	regFrom []int
}

// autMaxThreads caps the thread-permutation search; beyond it the
// factorial candidate space is not worth scanning for litmus-sized
// programs, and symmetry silently degrades to identity-only (no
// reduction, same results).
const autMaxThreads = 7

// automorphisms discovers the program's non-identity automorphisms.
// Called after Run has lowered the program and built locIdx/regIdx.
func (x *Explorer) automorphisms() []*autPerm {
	T := len(x.prog.Threads)
	if T < 2 || T > autMaxThreads {
		return nil
	}
	// Threads can only map to threads with the same shape signature
	// (kinds and values, locations and registers abstracted to
	// first-occurrence indices), which prunes the search to permutations
	// within signature classes.
	sigs := make([]string, T)
	for t := range x.prog.Threads {
		sigs[t] = threadSignature(x.prog.Threads[t])
	}
	var (
		auts []*autPerm
		perm = make([]int, T)
		used = make([]bool, T)
	)
	var assign func(t int)
	assign = func(t int) {
		if t == T {
			if a := x.deriveAut(perm); a != nil {
				auts = append(auts, a)
			}
			return
		}
		for img := 0; img < T; img++ {
			if used[img] || sigs[img] != sigs[t] {
				continue
			}
			perm[t] = img
			used[img] = true
			assign(t + 1)
			used[img] = false
		}
	}
	assign(0)
	return auts
}

// threadSignature renders a thread with locations and registers replaced
// by first-occurrence indices, so that renaming-equivalent threads — and
// only those — share a signature.
func threadSignature(th Thread) string {
	var b strings.Builder
	locs := make(map[string]int)
	regs := make(map[string]int)
	abstract := func(m map[string]int, name string) int {
		if name == "" {
			return -1
		}
		if i, ok := m[name]; ok {
			return i
		}
		m[name] = len(m)
		return len(m) - 1
	}
	for _, in := range th {
		b.WriteString(strconv.Itoa(int(in.Kind)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(abstract(locs, in.Loc)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(abstract(regs, in.Reg)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(uint64(in.Val), 10))
		b.WriteByte(';')
	}
	return b.String()
}

// deriveAut unifies the location and register renamings induced by the
// thread permutation, returning the automorphism or nil if perm does not
// preserve the program. Unconstrained locations (never touched by an
// instruction) must stay fixed; every register is constrained by
// construction (regOrder is built from the instructions).
func (x *Explorer) deriveAut(perm []int) *autPerm {
	T := len(x.prog.Threads)
	identity := true
	for t, img := range perm {
		if t != img {
			identity = false
		}
	}
	if identity {
		return nil
	}
	L := len(x.prog.Locs)
	R := len(x.regOrder)
	locMap := fillNeg(make([]int, L))
	locUsed := make([]bool, L)
	regMap := fillNeg(make([]int, R))
	regUsed := make([]bool, R)
	unify := func(m []int, usedSet []bool, from, to int) bool {
		if m[from] == to {
			return true
		}
		if m[from] != -1 || usedSet[to] {
			return false
		}
		m[from] = to
		usedSet[to] = true
		return true
	}
	for t := 0; t < T; t++ {
		a, b := x.prog.Threads[t], x.prog.Threads[perm[t]]
		if len(a) != len(b) {
			return nil
		}
		for i := range a {
			ia, ib := a[i], b[i]
			if ia.Kind != ib.Kind || ia.Val != ib.Val {
				return nil
			}
			if (ia.Loc == "") != (ib.Loc == "") || (ia.Reg == "") != (ib.Reg == "") {
				return nil
			}
			if ia.Loc != "" {
				la, lb := int(x.locIdx[ia.Loc]), int(x.locIdx[ib.Loc])
				// Placement-preserving only: the model ignores placement,
				// but keeping the renamed program literally identical is
				// free and avoids surprises in mixed-backend runs.
				if x.prog.PlacedOn(ia.Loc) != x.prog.PlacedOn(ib.Loc) {
					return nil
				}
				if !unify(locMap, locUsed, la, lb) {
					return nil
				}
			}
			if ia.Reg != "" {
				if !unify(regMap, regUsed, x.regIdx[ia.Reg], x.regIdx[ib.Reg]) {
					return nil
				}
			}
		}
	}
	for l := 0; l < L; l++ {
		if locMap[l] == -1 {
			if locUsed[l] {
				return nil
			}
			locMap[l] = l
			locUsed[l] = true
		}
	}
	a := &autPerm{
		threads: append([]int(nil), perm...),
		invT:    invert(perm),
		locs:    locMap,
		invL:    invert(locMap),
		regTo:   regMap,
		regFrom: invert(regMap),
	}
	return a
}

func fillNeg(s []int) []int {
	for i := range s {
		s[i] = -1
	}
	return s
}

func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for i, img := range perm {
		inv[img] = i
	}
	return inv
}

// less orders fingerprints for the min-over-group canonical key.
func (f fingerprint) less(o fingerprint) bool {
	if f.hi != o.hi {
		return f.hi < o.hi
	}
	return f.lo < o.lo
}

// translateOutcome rewrites a canonical outcome string through a
// register-slot map: the value observed at slot r reappears at slot
// slotMap[r]. Counts are per outcome string; the map is a bijection, so
// translation is too.
func (x *Explorer) translateOutcome(out string, slotMap []int) string {
	if out == noObservations {
		return out
	}
	regs := make([]regVal, len(x.regOrder))
	for _, tok := range strings.Split(out, " ") {
		name, val, ok := strings.Cut(tok, "=")
		if !ok {
			// Outcome strings are produced only by canonical(); an
			// unparseable token would be an engine bug.
			panic(fmt.Sprintf("litmus: malformed outcome token %q", tok))
		}
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("litmus: malformed outcome value %q", tok))
		}
		regs[slotMap[x.regIdx[name]]] = regVal{Val: core.Value(v), Set: true}
	}
	return x.canonical(regs)
}

// translateSub translates a subtree result through a register-slot map.
// The input is shared memo state and is never mutated.
func (x *Explorer) translateSub(res *subResult, slotMap []int) *subResult {
	if len(res.outcomes) == 0 {
		return res
	}
	out := &subResult{outcomes: make(map[string]int, len(res.outcomes)), stuck: res.stuck}
	for o, n := range res.outcomes {
		out.outcomes[x.translateOutcome(o, slotMap)] = n
	}
	return out
}

package litmus

import (
	"sync"
	"sync/atomic"
)

// This file is the exploration engine behind Explorer.Run. Three modes
// share one recursive core:
//
//   - sequential tree enumeration (Workers=1, Memoize=false): the
//     reference semantics — every interleaving/read-choice path is walked
//     individually;
//   - memoized counting DFS (Memoize=true): states are keyed by their
//     canonical fingerprint (fingerprint.go); the subtree below a state is
//     explored once and its outcome-count map reused for every converging
//     interleaving. Because the map counts completions *from* the state,
//     summing it once per incoming path reproduces tree counts exactly;
//   - worker-pool frontier mode (Workers>1): the root is expanded
//     breadth-first into a frontier of independent subtrees which a pool of
//     workers explores concurrently. Merging is pure addition of counts —
//     commutative and associative — so the result is bit-identical
//     run-to-run and identical to the sequential modes regardless of
//     scheduling. A shared memo table additionally dedupes states across
//     subtrees (two frontier subtrees can converge).
//
// Determinism of Result.States: without memoization every tree node is
// counted exactly once (frontier interiors during expansion, the rest by
// the recursive walk). With memoization the count is the number of
// distinct canonical states, claimed once via the memo table; concurrent
// workers reaching an in-flight state block on its entry instead of
// recomputing, so the claim — and the count — happens once per state.
// Since one exploration step always advances exactly one pc, a state's
// depth (Σ pcs) is fixed, so frontier interiors can never reappear inside
// a subtree and the two counting sites never overlap.

// subResult is the outcome of exploring one subtree: completions and stuck
// leaves reachable from its root, counted per path.
type subResult struct {
	outcomes map[string]int
	stuck    int
}

func newSubResult() *subResult {
	return &subResult{outcomes: make(map[string]int)}
}

// add merges o into r, scaling by mult (the number of distinct paths that
// led to o's root).
func (r *subResult) add(o *subResult, mult int) {
	for k, v := range o.outcomes {
		r.outcomes[k] += v * mult
	}
	r.stuck += o.stuck * mult
}

// emptySub is the shared result of an aborted subtree. Never mutated.
var emptySub = &subResult{}

// cacheEntry is one memo-table slot. The goroutine that wins the
// LoadOrStore computes res/err and closes done; others wait. The state
// graph is a DAG (each step advances one pc), so waits always point
// "downward" and cannot cycle.
type cacheEntry struct {
	done chan struct{}
	res  *subResult
	err  error
}

// engine holds the mutable exploration context for one Run.
type engine struct {
	x         *Explorer
	memoize   bool
	maxStates int64
	states    atomic.Int64
	budgetHit atomic.Bool
	cache     sync.Map // fingerprint/canonical fingerprint -> *cacheEntry
	// auts holds the program's non-identity automorphisms when symmetry
	// reduction is on (empty = plain memoization). The memo table is then
	// keyed by the orbit-canonical fingerprint and stores results in the
	// canonical register frame (see symmetry.go).
	auts []*autPerm
	// claimed dedups expansion-phase state claims by canonical
	// fingerprint in symmetry mode, so Result.States counts orbits
	// identically for every worker count. Only touched from the
	// single-threaded frontier-expansion loop.
	claimed map[fingerprint]bool
}

// explore returns the subResult for s, consulting the memo table when
// enabled. Results from the table are shared and must not be mutated.
func (g *engine) explore(s *state) (*subResult, error) {
	if !g.memoize {
		return g.compute(s)
	}
	if len(g.auts) > 0 {
		return g.exploreSym(s)
	}
	fp := g.x.fingerprint(s)
	// Fast path: cache hits dominate once memoization kicks in, so probe
	// with a plain Load before allocating an entry for LoadOrStore.
	if prev, ok := g.cache.Load(fp); ok {
		pe := prev.(*cacheEntry)
		<-pe.done
		return pe.res, pe.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	if prev, loaded := g.cache.LoadOrStore(fp, e); loaded {
		pe := prev.(*cacheEntry)
		<-pe.done
		return pe.res, pe.err
	}
	e.res, e.err = g.compute(s)
	close(e.done)
	return e.res, e.err
}

// canonicalFP returns the orbit-canonical fingerprint of s — the minimum
// permuted fingerprint over the identity and every automorphism — plus
// the permutation achieving it (nil when the identity frame wins).
func (g *engine) canonicalFP(s *state) (fingerprint, *autPerm) {
	best := g.x.fingerprint(s)
	var bestPerm *autPerm
	for _, p := range g.auts {
		if fp := g.x.fingerprintPerm(s, p); fp.less(best) {
			best, bestPerm = fp, p
		}
	}
	return best, bestPerm
}

// exploreSym is explore under symmetry reduction: memo entries are keyed
// by orbit and stored in the canonical register frame — the frame of the
// achieving permutation — so a hit from any orbit member translates the
// shared outcome map into its own frame. Each stored permutation is
// individually a program automorphism, which is all translation needs;
// the set need not be closed under composition.
func (g *engine) exploreSym(s *state) (*subResult, error) {
	fp, perm := g.canonicalFP(s)
	if prev, ok := g.cache.Load(fp); ok {
		return g.translated(prev.(*cacheEntry), perm)
	}
	e := &cacheEntry{done: make(chan struct{})}
	if prev, loaded := g.cache.LoadOrStore(fp, e); loaded {
		return g.translated(prev.(*cacheEntry), perm)
	}
	res, err := g.compute(s)
	if err != nil {
		e.err = err
	} else if perm != nil {
		e.res = g.x.translateSub(res, perm.regTo)
	} else {
		e.res = res
	}
	close(e.done)
	return res, err
}

// translated waits for a memo entry and maps its canonical-frame result
// back into the frame of the state that hit it.
func (g *engine) translated(pe *cacheEntry, perm *autPerm) (*subResult, error) {
	<-pe.done
	if pe.err != nil {
		return nil, pe.err
	}
	if perm == nil {
		return pe.res, nil
	}
	return g.x.translateSub(pe.res, perm.regFrom), nil
}

// claimState takes one slot of the state budget, flipping budgetHit when
// work remains past it. Exactly one claim happens per counted state.
func (g *engine) claimState() bool {
	if g.budgetHit.Load() {
		return false
	}
	if n := g.states.Add(1); n > g.maxStates {
		g.budgetHit.Store(true)
		return false
	}
	return true
}

// expandState classifies one claimed state: a completed execution (done,
// with its canonical outcome), or its successor states (empty = stuck).
// Both the recursive walk and the frontier expansion go through here so
// terminal-state and stepping semantics live in one place.
func (g *engine) expandState(s *state) (outcome string, done bool, succs []*state, err error) {
	allDone := true
	for t := range g.x.prog.Threads {
		if s.pcs[t] < len(g.x.prog.Threads[t]) {
			allDone = false
			break
		}
	}
	if allDone {
		return g.x.canonical(s.regs), true, nil, nil
	}
	for t := range g.x.prog.Threads {
		ns, err := g.x.step(s, t)
		if err != nil {
			return "", false, nil, err
		}
		succs = append(succs, ns...)
	}
	return "", false, succs, nil
}

// compute walks one state: claims a slot of the state budget, emits the
// outcome for complete states, recurses into successors otherwise.
func (g *engine) compute(s *state) (*subResult, error) {
	if !g.claimState() {
		return emptySub, nil
	}
	outcome, done, succs, err := g.expandState(s)
	if err != nil {
		return nil, err
	}
	if done {
		return &subResult{outcomes: map[string]int{outcome: 1}}, nil
	}
	if len(succs) == 0 {
		return &subResult{stuck: 1}, nil
	}
	res := newSubResult()
	for _, n := range succs {
		sub, err := g.explore(n)
		if err != nil {
			return nil, err
		}
		res.add(sub, 1)
	}
	return res, nil
}

// claimFrontier claims the expansion-phase budget slot for a frontier
// state. In symmetry mode a slot is taken once per orbit — matching the
// sequential memoized count — and later orientations of an already
// claimed orbit still expand (their successors carry distinct register
// frames) but cost nothing. Frontier expansion happens before any
// worker runs and every exploration step advances exactly one pc, so
// expansion-phase orbits (shallower than the frontier) can never recur
// inside a worker subtree: the claimed set and the memo table count
// disjoint orbits. Returns false when the budget is exhausted.
func (g *engine) claimFrontier(s *state) bool {
	if len(g.auts) == 0 {
		return g.claimState()
	}
	fp, _ := g.canonicalFP(s)
	if g.claimed[fp] {
		return true
	}
	if !g.claimState() {
		return false
	}
	g.claimed[fp] = true
	return true
}

// frontierEntry is one root of a parallel subtree; mult is the number of
// distinct prefix paths that reached it (always 1 without memoization,
// where duplicates stay separate entries).
type frontierEntry struct {
	s    *state
	mult int
}

// runParallel expands the root breadth-first until the frontier offers
// enough independent work for the pool, folding completed and stuck
// prefixes into the result as it goes, then fans the frontier out to
// workers goroutines. With memoization the frontier is deduplicated by
// fingerprint, carrying path multiplicities, which keeps the distinct-
// state count identical to a sequential memoized run.
func (g *engine) runParallel(root *state, workers int) (*subResult, error) {
	res := newSubResult()
	frontier := []frontierEntry{{s: root, mult: 1}}
	target := workers * 4
	for len(frontier) > 0 && len(frontier) < target {
		var next []frontierEntry
		var nextIdx map[fingerprint]int
		if g.memoize {
			nextIdx = make(map[fingerprint]int)
		}
		for _, en := range frontier {
			if !g.claimFrontier(en.s) {
				return res, nil
			}
			outcome, done, succs, err := g.expandState(en.s)
			if err != nil {
				return nil, err
			}
			if done {
				res.outcomes[outcome] += en.mult
				continue
			}
			if len(succs) == 0 {
				res.stuck += en.mult
				continue
			}
			for _, n := range succs {
				if g.memoize {
					fp := g.x.fingerprint(n)
					if i, ok := nextIdx[fp]; ok {
						next[i].mult += en.mult
						continue
					}
					nextIdx[fp] = len(next)
					next = append(next, frontierEntry{s: n, mult: en.mult})
				} else {
					next = append(next, frontierEntry{s: n, mult: 1})
				}
			}
		}
		frontier = next
	}
	if len(frontier) == 0 {
		return res, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		nextIdx  atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				sub, err := g.explore(frontier[i].s)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					res.add(sub, frontier[i].mult)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

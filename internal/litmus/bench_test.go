package litmus

import (
	"testing"
)

// benchExplore runs p under the given engine configuration.
func benchExplore(b *testing.B, p Program, workers int, memoize bool) {
	b.Helper()
	var states int
	for i := 0; i < b.N; i++ {
		x := NewExplorer(p)
		x.Workers, x.Memoize = workers, memoize
		r, err := x.Run()
		if err != nil {
			b.Fatal(err)
		}
		states = r.States
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkLitmusExploreSequential is the pre-memoization baseline: plain
// tree enumeration of a mid-size annotated program.
func BenchmarkLitmusExploreSequential(b *testing.B) {
	benchExplore(b, WRCDRF(), 1, false)
}

// BenchmarkLitmusExploreMemoized measures canonical-state memoization on
// the same program, single-threaded.
func BenchmarkLitmusExploreMemoized(b *testing.B) {
	benchExplore(b, WRCDRF(), 1, true)
}

// BenchmarkLitmusExploreParallel measures the full default engine
// (memoization + worker pool). Compare against
// BenchmarkLitmusExploreSequential for the engine speedup.
func BenchmarkLitmusExploreParallel(b *testing.B) {
	benchExplore(b, WRCDRF(), 0, true)
}

// BenchmarkLitmusExploreStress runs the state-heavy stress program, which
// only the memoizing modes can finish inside the default budget.
func BenchmarkLitmusExploreStress(b *testing.B) {
	benchExplore(b, StressIndependent(), 0, true)
}

// BenchmarkLitmusCatalogDefault explores the entire catalog with the
// default engine — the workload internal/conform and internal/exp impose
// on the explorer.
func BenchmarkLitmusCatalogDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range Catalog() {
			if _, err := Explore(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package litmus

import (
	"reflect"
	"testing"
)

// TestAutomorphismSearch pins the discovered group sizes: iriw-sym3's
// three interchangeable readers give S_3 (5 non-identity permutations),
// classic iriw only admits the combined writer+reader+location swap, and
// an asymmetric program has none.
func TestAutomorphismSearch(t *testing.T) {
	cases := []struct {
		prog Program
		want int
	}{
		{IRIWSym3(), 5},
		{IRIW(), 1},
		{IRIW3(), 0},
		{Fig5Annotated(), 0},
		{StoreBufferingDRF(), 1},
		{StressIndependent(), 0},
	}
	for _, c := range cases {
		t.Run(c.prog.Name, func(t *testing.T) {
			x := NewExplorer(c.prog)
			if _, err := x.prepare(); err != nil {
				t.Fatal(err)
			}
			auts := x.automorphisms()
			if len(auts) != c.want {
				t.Fatalf("found %d automorphisms, want %d", len(auts), c.want)
			}
			for _, a := range auts {
				// Sanity: forward and inverse maps really invert.
				for i, img := range a.threads {
					if a.invT[img] != i {
						t.Fatalf("thread perm %v inverse %v broken", a.threads, a.invT)
					}
				}
				for r, img := range a.regTo {
					if a.regFrom[img] != r {
						t.Fatalf("reg perm %v inverse %v broken", a.regTo, a.regFrom)
					}
				}
			}
		})
	}
}

// TestSymmetryDifferential runs every cataloged program with symmetry
// reduction (sequential and parallel) against the plain memoized
// reference: Outcomes, Stuck and per-outcome path counts must be
// bit-identical — symmetry may only shrink States. States must also be
// identical across symmetric worker counts (the orbit-claim discipline).
func TestSymmetryDifferential(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ref := explore(t, p)
			var symStates []int
			for _, workers := range []int{1, 4} {
				x := NewExplorer(p)
				x.Workers, x.Symmetry = workers, true
				r, err := x.Run()
				if err != nil {
					t.Fatalf("symmetry workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(r.Outcomes, ref.Outcomes) {
					t.Errorf("workers=%d outcomes %v != reference %v", workers, r.Outcomes, ref.Outcomes)
				}
				if r.Stuck != ref.Stuck {
					t.Errorf("workers=%d stuck %d != reference %d", workers, r.Stuck, ref.Stuck)
				}
				if r.States > ref.States {
					t.Errorf("workers=%d symmetry explored %d states, more than the reference %d", workers, r.States, ref.States)
				}
				symStates = append(symStates, r.States)
			}
			if symStates[0] != symStates[1] {
				t.Errorf("symmetric state count differs across workers: %v", symStates)
			}
		})
	}
}

// TestSymmetryCollapse pins the headline win: iriw-sym3 (three
// interchangeable readers, t=3) must collapse its canonical state count
// by at least t!/2 = 3, and classic iriw (group order 2) must shrink
// measurably.
func TestSymmetryCollapse(t *testing.T) {
	measure := func(p Program, symmetry bool) int {
		x := NewExplorer(p)
		x.Workers, x.Symmetry = 1, symmetry
		r, err := x.Run()
		if err != nil {
			t.Fatalf("%s symmetry=%v: %v", p.Name, symmetry, err)
		}
		return r.States
	}
	plain := measure(IRIWSym3(), false)
	sym := measure(IRIWSym3(), true)
	if sym*3 > plain {
		t.Errorf("iriw-sym3: %d states plain, %d with symmetry — collapse below t!/2 = 3", plain, sym)
	}
	t.Logf("iriw-sym3: %d -> %d states (%.2fx)", plain, sym, float64(plain)/float64(sym))

	plainI := measure(IRIW(), false)
	symI := measure(IRIW(), true)
	if symI >= plainI {
		t.Errorf("iriw: symmetry did not shrink states (%d -> %d)", plainI, symI)
	}
	t.Logf("iriw: %d -> %d states (%.2fx)", plainI, symI, float64(plainI)/float64(symI))
}

// TestSymmetryRequiresMemoize: orbit results live in the memo table, so
// the combination with plain tree search is rejected, not silently wrong.
func TestSymmetryRequiresMemoize(t *testing.T) {
	x := NewExplorer(IRIW())
	x.Memoize, x.Symmetry = false, true
	if _, err := x.Run(); err == nil {
		t.Fatal("Symmetry without Memoize did not error")
	}
}

// TestSymmetryDeterministic: repeated symmetric parallel runs are
// bit-identical, including States.
func TestSymmetryDeterministic(t *testing.T) {
	var ref *Result
	for i := 0; i < 5; i++ {
		x := NewExplorer(IRIWSym3())
		x.Workers, x.Symmetry = 4, true
		r, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("run %d differs: %+v vs %+v", i, r, ref)
		}
	}
}

// TestTranslateOutcome: slot translation is a bijection on outcome
// strings and register order survives re-rendering (r1 vs r10 style names
// must not be token-sorted).
func TestTranslateOutcome(t *testing.T) {
	x := NewExplorer(IRIWSym3())
	if _, err := x.prepare(); err != nil {
		t.Fatal(err)
	}
	auts := x.automorphisms()
	if len(auts) == 0 {
		t.Fatal("no automorphisms")
	}
	a := auts[0]
	out := "a1=1 a2=0 b1=0 b2=1 c1=1 c2=1"
	there := x.translateOutcome(out, a.regTo)
	back := x.translateOutcome(there, a.regFrom)
	if back != out {
		t.Fatalf("round trip %q -> %q -> %q", out, there, back)
	}
	if x.translateOutcome(noObservations, a.regTo) != noObservations {
		t.Fatalf("no-observations outcome must pass through")
	}
}

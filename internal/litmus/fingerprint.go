package litmus

import (
	"math/bits"
	"sort"

	"pmc/internal/core"
)

// Canonical state fingerprinting. Two exploration states are isomorphic —
// they have identical futures, outcome for outcome and count for count —
// when they agree on per-thread progress (pcs), lock holders, registers,
// per-thread last-read views and the execution's dependency graph, after
// relabeling operation IDs to a form independent of issue interleaving.
//
// The relabeling sorts operations by (process, program position): within
// one process, issue order IS program order, so the per-process sequences
// are interleaving-invariant, and the location-initialization ops (issued
// by AddLoc before any thread runs) are identical in every state. All
// model semantics consulted during exploration — Table I pattern matches,
// visibility, reachability, last-write and readable sets — are functions
// of the (ops, edges) graph structure, never of raw issue-order positions,
// so the relabeled serialization captures the entire future behavior.
//
// The serialization is folded into a 128-bit hash (two independently
// mixed 64-bit lanes) rather than kept as a key string: at ~2¹²⁸ the
// collision probability over even millions of states is negligible
// (birthday bound ≈ n²/2¹²⁸), and the memo table stays small.

// fingerprint is a 128-bit canonical state hash, used as a memo-table key.
type fingerprint struct {
	hi, lo uint64
}

// fpHash accumulates 64-bit tokens into two independent lanes: an FNV-1a
// style lane and a SplitMix64-finalizer style lane over a rotated copy.
type fpHash struct {
	hi, lo uint64
}

func newFpHash() fpHash {
	return fpHash{hi: 14695981039346656037, lo: 0x9e3779b97f4a7c15}
}

func (h *fpHash) mix(x uint64) {
	h.hi = (h.hi ^ x) * 1099511628211
	l := h.lo ^ bits.RotateLeft64(x, 31)
	l = (l ^ (l >> 30)) * 0xbf58476d1ce4e5b9
	h.lo = l ^ (l >> 27)
}

func (h *fpHash) mixInt(x int) { h.mix(uint64(int64(x))) }

func (h *fpHash) mixString(s string) {
	h.mixInt(len(s))
	for i := 0; i < len(s); i++ {
		h.mix(uint64(s[i]))
	}
}

// fingerprint computes the canonical hash of s.
func (x *Explorer) fingerprint(s *state) fingerprint {
	ops := s.exec.Ops()
	// canon[id] is the interleaving-invariant label of op id: init ops
	// first (they are ops 0..NumLocs-1, identical in every state), then
	// each thread's ops in program order.
	canon := make([]int, len(ops))
	order := make([]int, len(ops))
	perProc := make([][]int, len(x.prog.Threads))
	idx := 0
	for _, op := range ops {
		if op.Proc == core.InitProc {
			canon[op.ID] = idx
			order[idx] = op.ID
			idx++
		} else {
			perProc[op.Proc] = append(perProc[op.Proc], op.ID)
		}
	}
	for _, ids := range perProc {
		for _, id := range ids {
			canon[id] = idx
			order[idx] = id
			idx++
		}
	}

	h := newFpHash()
	// Ops in canonical order.
	h.mixInt(len(ops))
	for _, id := range order {
		op := ops[id]
		h.mix(uint64(op.Kind))
		h.mixInt(int(op.Proc))
		h.mixInt(int(op.Loc))
		h.mix(uint64(op.Val))
		if op.IsInit {
			h.mix(1)
		} else {
			h.mix(0)
		}
	}
	// Edges, relabeled and sorted. Op counts in litmus explorations are
	// tiny (< 2²⁰), so an edge packs into one uint64.
	var edges []uint64
	for id := range ops {
		for _, ed := range s.exec.Out(id) {
			edges = append(edges, uint64(canon[ed.From])<<34|uint64(canon[ed.To])<<4|uint64(ed.Ord))
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	h.mixInt(len(edges))
	for _, e := range edges {
		h.mix(e)
	}
	// Thread progress, lock holders, last-read views (relabeled), regs.
	for _, pc := range s.pcs {
		h.mixInt(pc)
	}
	for _, holder := range s.lockHolder {
		h.mixInt(holder)
	}
	for _, lr := range s.lastRead {
		for _, id := range lr {
			if id < 0 {
				h.mixInt(-1)
			} else {
				h.mixInt(canon[id])
			}
		}
	}
	h.mixInt(len(s.regs))
	regNames := make([]string, 0, len(s.regs))
	for name := range s.regs {
		regNames = append(regNames, name)
	}
	sort.Strings(regNames)
	for _, name := range regNames {
		h.mixString(name)
		h.mix(uint64(s.regs[name]))
	}
	return fingerprint{hi: h.hi, lo: h.lo}
}

package litmus

import (
	"math/bits"
	"slices"

	"pmc/internal/core"
)

// Canonical state fingerprinting. Two exploration states are isomorphic —
// they have identical futures, outcome for outcome and count for count —
// when they agree on per-thread progress (pcs), lock holders, registers,
// per-thread last-read views and the execution's dependency graph, after
// relabeling operation IDs to a form independent of issue interleaving.
//
// The relabeling sorts operations by (process, program position): within
// one process, issue order IS program order, so the per-process sequences
// are interleaving-invariant, and the location-initialization ops (issued
// by AddLoc before any thread runs) are identical in every state. All
// model semantics consulted during exploration — Table I pattern matches,
// visibility, reachability, last-write and readable sets — are functions
// of the (ops, edges) graph structure, never of raw issue-order positions,
// so the relabeled serialization captures the entire future behavior.
//
// The serialization is folded into a 128-bit hash (two independently
// mixed 64-bit lanes) rather than kept as a key string: at ~2¹²⁸ the
// collision probability over even millions of states is negligible
// (birthday bound ≈ n²/2¹²⁸), and the memo table stays small.

// fingerprint is a 128-bit canonical state hash, used as a memo-table key.
type fingerprint struct {
	hi, lo uint64
}

// fpHash accumulates 64-bit tokens into two independent lanes: an FNV-1a
// style lane and a SplitMix64-finalizer style lane over a rotated copy.
type fpHash struct {
	hi, lo uint64
}

func newFpHash() fpHash {
	return fpHash{hi: 14695981039346656037, lo: 0x9e3779b97f4a7c15}
}

func (h *fpHash) mix(x uint64) {
	h.hi = (h.hi ^ x) * 1099511628211
	l := h.lo ^ bits.RotateLeft64(x, 31)
	l = (l ^ (l >> 30)) * 0xbf58476d1ce4e5b9
	h.lo = l ^ (l >> 27)
}

func (h *fpHash) mixInt(x int) { h.mix(uint64(int64(x))) }

func (h *fpHash) mixString(s string) {
	h.mixInt(len(s))
	for i := 0; i < len(s); i++ {
		h.mix(uint64(s[i]))
	}
}

// fpScratch holds the relabeling buffers of one fingerprint computation.
// Fingerprinting runs once per explored state on the memoized engines, so
// the buffers are pooled (per Explorer, shared by all workers) instead of
// allocated per call.
type fpScratch struct {
	canon  []int
	order  []int
	counts []int
	edges  []uint64
}

// growInts returns s with length n, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// fingerprint computes the canonical hash of s.
func (x *Explorer) fingerprint(s *state) fingerprint {
	return x.fingerprintPerm(s, nil)
}

// fingerprintPerm computes the canonical hash of s as relabeled by
// program automorphism p (nil = identity, the plain fingerprint). The
// relabeled state is the one an execution of the permuted-and-renamed
// program would have reached; since p maps the program onto itself,
// fingerprintPerm(s, p) is exactly fingerprint(p(s)) for a state p(s)
// of the same program — the basis of symmetry reduction (symmetry.go).
func (x *Explorer) fingerprintPerm(s *state, p *autPerm) fingerprint {
	sc, _ := x.fpPool.Get().(*fpScratch)
	if sc == nil {
		sc = &fpScratch{}
	}
	defer x.fpPool.Put(sc)

	ops := s.exec.Ops()
	numLocs := len(x.prog.Locs)
	// canon[id] is the interleaving-invariant label of op id: init ops
	// first (they are ops 0..NumLocs-1, identical in every state), then
	// each thread's ops in program order. Within one process issue order
	// IS program order, so a counting pass places every op without
	// building per-process lists: count ops per process, turn the counts
	// into slot offsets (init ops first), then assign slots in one sweep.
	// Under a permutation the same pass runs in the permuted frame: an
	// op of thread t lands in thread p.threads[t]'s slot range, and the
	// init op of location l (op ID l, issued in AddLoc order) takes init
	// slot p.locs[l].
	canon := growInts(sc.canon, len(ops))
	order := growInts(sc.order, len(ops))
	counts := growInts(sc.counts, len(x.prog.Threads))
	for i := range counts {
		counts[i] = 0
	}
	numInit := 0
	for _, op := range ops {
		if op.Proc == core.InitProc {
			numInit++
		} else if p != nil {
			counts[p.threads[op.Proc]]++
		} else {
			counts[op.Proc]++
		}
	}
	off := numInit
	for t := range counts {
		c := counts[t]
		counts[t] = off
		off += c
	}
	initIdx := 0
	for _, op := range ops {
		var slot int
		if op.Proc == core.InitProc {
			if p != nil {
				slot = p.locs[op.Loc]
			} else {
				slot = initIdx
				initIdx++
			}
		} else if p != nil {
			t := p.threads[op.Proc]
			slot = counts[t]
			counts[t]++
		} else {
			slot = counts[op.Proc]
			counts[op.Proc]++
		}
		canon[op.ID] = slot
		order[slot] = op.ID
	}

	h := newFpHash()
	// Ops in canonical order, procs and locs relabeled.
	h.mixInt(len(ops))
	for _, id := range order {
		op := ops[id]
		h.mix(uint64(op.Kind))
		proc, loc := int(op.Proc), int(op.Loc)
		if p != nil {
			if op.Proc != core.InitProc {
				proc = p.threads[proc]
			}
			if loc >= 0 {
				loc = p.locs[loc]
			}
		}
		h.mixInt(proc)
		h.mixInt(loc)
		h.mix(uint64(op.Val))
		if op.IsInit {
			h.mix(1)
		} else {
			h.mix(0)
		}
	}
	// Edges, relabeled and sorted. Op counts in litmus explorations are
	// tiny (< 2²⁰), so an edge packs into one uint64.
	edges := sc.edges[:0]
	for id := range ops {
		for _, ed := range s.exec.Out(id) {
			edges = append(edges, uint64(canon[ed.From])<<34|uint64(canon[ed.To])<<4|uint64(ed.Ord))
		}
	}
	slices.Sort(edges)
	h.mixInt(len(edges))
	for _, e := range edges {
		h.mix(e)
	}
	// Thread progress, lock holders, last-read views (relabeled), regs —
	// each walked in the permuted frame's index order.
	for t := range s.pcs {
		if p != nil {
			h.mixInt(s.pcs[p.invT[t]])
		} else {
			h.mixInt(s.pcs[t])
		}
	}
	for l := range s.lockHolder {
		holder := s.lockHolder[l]
		if p != nil {
			holder = s.lockHolder[p.invL[l]]
			if holder >= 0 {
				holder = p.threads[holder]
			}
		}
		h.mixInt(holder)
	}
	for i := range s.lastRead {
		var id int
		if p != nil {
			t, l := i/numLocs, i%numLocs
			id = s.lastRead[p.invT[t]*numLocs+p.invL[l]]
		} else {
			id = s.lastRead[i]
		}
		if id < 0 {
			h.mixInt(-1)
		} else {
			h.mixInt(canon[id])
		}
	}
	// Registers: the file is indexed by regOrder slot, so position
	// identifies the register and only presence and value need mixing.
	for r := range s.regs {
		rv := s.regs[r]
		if p != nil {
			rv = s.regs[p.regFrom[r]]
		}
		if rv.Set {
			h.mix(1)
			h.mix(uint64(rv.Val))
		} else {
			h.mix(0)
		}
	}

	sc.canon, sc.order, sc.counts, sc.edges = canon, order, counts, edges
	return fingerprint{hi: h.hi, lo: h.lo}
}

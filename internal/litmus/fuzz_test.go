package litmus

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pmc/internal/core"
)

// Native fuzz target for the canonical program fingerprint: naming is
// immaterial to behavior, so any relabeling of locations and registers
// must preserve (a) the fingerprint and (b) the outcome set modulo the
// register renaming, execution count for execution count. Run with
//
//	go test -fuzz FuzzFingerprint ./internal/litmus

// fuzzProgram deterministically builds a (possibly invalid) litmus
// program from raw fuzz bytes: up to 3 threads and 12 instructions over
// small location/register/value alphabets, with L1 optionally wide (block
// reads/writes then exercise the ranged lowering). Invalid programs
// (release without hold) are fine — the invariance must hold for them
// too, as a matching exploration error.
func fuzzProgram(data []byte) Program {
	p := Program{
		Name: "fuzzed",
		Locs: []string{"L0", "L1", "L2"},
	}
	nThreads := 1
	if len(data) > 0 {
		nThreads = 1 + int(data[0]%3)
		if w := int(data[0]/3) % 4; w > 1 {
			p.Widths = map[string]int{"L1": w}
		}
		// Optionally place L0 on a backend (placement is part of the
		// fingerprint; the keys must survive relabeling).
		if b := int(data[0]/48) % 3; b > 0 {
			p.Placement = map[string]string{"L0": []string{"dsm", "spm"}[b-1]}
		}
		data = data[1:]
	}
	p.Threads = make([]Thread, nThreads)
	total := 0
	for len(data) >= 4 && total < 12 {
		ti := int(data[0]) % nThreads
		loc := p.Locs[int(data[1])%len(p.Locs)]
		val := core.Value(data[2] % 4)
		reg := fmt.Sprintf("r%d", data[2]%4)
		var in Instr
		switch data[3] % 9 {
		case 0:
			in = Read(loc, reg)
		case 1:
			in = Write(loc, val)
		case 2:
			in = Acquire(loc)
		case 3:
			in = Release(loc)
		case 4:
			in = Fence()
		case 5:
			in = Flush(loc)
		case 6:
			in = AwaitEq(loc, val, "")
		case 7:
			in = ReadBlock(loc, reg)
		case 8:
			in = WriteBlock(loc, val)
		}
		p.Threads[ti] = append(p.Threads[ti], in)
		total++
		data = data[4:]
	}
	return p
}

// relabel renames every location and register through the given maps,
// leaving structure (including location widths) untouched.
func relabel(p Program, locMap, regMap map[string]string) Program {
	out := p
	out.Locs = make([]string, len(p.Locs))
	for i, l := range p.Locs {
		out.Locs[i] = locMap[l]
	}
	if p.Widths != nil {
		out.Widths = make(map[string]int, len(p.Widths))
		for l, w := range p.Widths {
			out.Widths[locMap[l]] = w
		}
	}
	if p.Placement != nil {
		out.Placement = make(map[string]string, len(p.Placement))
		for l, b := range p.Placement {
			out.Placement[locMap[l]] = b
		}
	}
	out.Threads = make([]Thread, len(p.Threads))
	for ti, th := range p.Threads {
		out.Threads[ti] = make(Thread, len(th))
		for i, in := range th {
			if in.Loc != "" {
				in.Loc = locMap[in.Loc]
			}
			if in.Reg != "" {
				in.Reg = regMap[in.Reg]
			}
			out.Threads[ti][i] = in
		}
	}
	return out
}

// mapOutcome rewrites one canonical outcome string through a register
// mapping and re-canonicalizes it. Block reads observe derived registers
// ("r2@1"); the base name is mapped and the word suffix kept.
func mapOutcome(o string, regMap map[string]string) string {
	if o == "(no observations)" {
		return o
	}
	parts := strings.Fields(o)
	for i, part := range parts {
		eq := strings.IndexByte(part, '=')
		name, suffix := part[:eq], ""
		if at := strings.IndexByte(name, '@'); at >= 0 {
			name, suffix = name[:at], name[at:]
		}
		parts[i] = regMap[name] + suffix + part[eq:]
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func exploreSmall(p Program) (*Result, error) {
	x := NewExplorer(p)
	x.Workers = 1
	x.MaxStates = 30_000
	return x.Run()
}

func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1}, uint8(1))
	f.Add([]byte{3, 0, 0, 1, 2, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 6}, uint8(3))
	f.Add([]byte{1, 0, 1, 2, 0, 0, 1, 1, 0, 0, 2, 3}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, permByte uint8) {
		p := fuzzProgram(data)
		// A relabeling derived from permByte: rotate the location and
		// register alphabets and give them fresh display names.
		locMap := map[string]string{}
		for i, l := range p.Locs {
			locMap[l] = fmt.Sprintf("loc_%d", (i+int(permByte))%len(p.Locs))
		}
		regMap := map[string]string{}
		revReg := map[string]string{}
		for i := 0; i < 4; i++ {
			from := fmt.Sprintf("r%d", i)
			to := fmt.Sprintf("q%d", (i+int(permByte)*3)%4)
			regMap[from] = to
			revReg[to] = from
		}
		q := relabel(p, locMap, regMap)

		if a, b := Fingerprint(p), Fingerprint(q); a != b {
			t.Fatalf("relabeling changed the fingerprint: %s vs %s", a, b)
		}

		resP, errP := exploreSmall(p)
		resQ, errQ := exploreSmall(q)
		if (errP == nil) != (errQ == nil) {
			t.Fatalf("relabeling changed explorability: %v vs %v", errP, errQ)
		}
		if errP != nil {
			return
		}
		if resP.Stuck != resQ.Stuck {
			t.Fatalf("relabeling changed stuck count: %d vs %d", resP.Stuck, resQ.Stuck)
		}
		mapped := make(map[string]int, len(resQ.Outcomes))
		for o, n := range resQ.Outcomes {
			mapped[mapOutcome(o, revReg)] = n
		}
		if len(mapped) != len(resP.Outcomes) {
			t.Fatalf("outcome sets differ: %v vs %v", resP.Outcomes, mapped)
		}
		for o, n := range resP.Outcomes {
			if mapped[o] != n {
				t.Fatalf("outcome %q: %d executions vs %d after relabeling", o, n, mapped[o])
			}
		}
	})
}

// TestFingerprintBasics pins the deterministic properties the fuzz target
// relies on: stability, naming invariance, and sensitivity to structure.
func TestFingerprintBasics(t *testing.T) {
	p := Fig5Annotated()
	if Fingerprint(p) != Fingerprint(Fig5Annotated()) {
		t.Fatal("fingerprint not stable")
	}
	renamed := relabel(p, map[string]string{"X": "data", "f": "flag"},
		map[string]string{"poll": "a", "rX": "b"})
	renamed.Name = "other-name"
	if Fingerprint(p) != Fingerprint(renamed) {
		t.Fatal("renaming locations/registers changed the fingerprint")
	}
	q := Fig5Annotated()
	q.Threads[0][1].Val = 43
	if Fingerprint(p) == Fingerprint(q) {
		t.Fatal("value change did not change the fingerprint")
	}
	r := Fig5NoAcquire()
	if Fingerprint(p) == Fingerprint(r) {
		t.Fatal("structural change did not change the fingerprint")
	}
	// All catalog programs are pairwise distinct.
	seen := map[string]string{}
	for _, c := range Catalog() {
		fp := Fingerprint(c)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("catalog collision: %s and %s", prev, c.Name)
		}
		seen[fp] = c.Name
	}
}

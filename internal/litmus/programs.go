package litmus

// This file catalogs the paper's example programs as litmus tests, used by
// the tests, the pmclitmus CLI, and the benchmark harness.

// Fig1Unsynchronized is the broken program of Fig. 1: X and the flag are
// written without synchronization on X, so after seeing flag=1 the reader
// may still observe the initial X ("the program breaks").
func Fig1Unsynchronized() Program {
	return Program{
		Name: "fig1-unsynchronized",
		Locs: []string{"X", "flag"},
		Threads: []Thread{
			{ // Process 1
				Write("X", 42),
				Write("flag", 1),
			},
			{ // Process 2
				AwaitEq("flag", 1, ""),
				Read("X", "rX"),
			},
		},
	}
}

// Fig1Volatile is Fig. 1 with fences around every access — the paper's
// point that "the problem cannot be prevented, even if both X and flag are
// declared volatile, atomic or separated by fence instructions".
func Fig1Volatile() Program {
	return Program{
		Name: "fig1-volatile-fences",
		Locs: []string{"X", "flag"},
		Threads: []Thread{
			{
				Write("X", 42),
				Fence(),
				Write("flag", 1),
			},
			{
				AwaitEq("flag", 1, ""),
				Fence(),
				Read("X", "rX"),
			},
		},
	}
}

// Fig5Annotated is the properly annotated message-passing program of
// Figs. 5 and 6: entry_x/exit_x around all writes, fences for the
// cross-location orderings, flush for liveness. Its only outcome is rX=42.
func Fig5Annotated() Program {
	return Program{
		Name: "fig5-annotated",
		Locs: []string{"X", "f"},
		Threads: []Thread{
			{ // Process 1 (Fig. 6 lines 1..9)
				Acquire("X"),
				Write("X", 42),
				Fence(),
				Release("X"),
				Acquire("f"),
				Write("f", 1),
				Flush("f"),
				Release("f"),
			},
			{ // Process 2 (Fig. 6 lines 10..18)
				AwaitEq("f", 1, "poll"),
				Fence(),
				Acquire("X"),
				Read("X", "rX"),
				Release("X"),
			},
		},
	}
}

// Fig5NoAcquire drops the reader's acquire of X: per Section IV-C "there is
// no way for process 2 to make sure the value 42 of X is read, without
// acquiring it" — the stale outcome reappears.
func Fig5NoAcquire() Program {
	p := Fig5Annotated()
	p.Name = "fig5-no-acquire"
	p.Threads[1] = Thread{
		AwaitEq("f", 1, "poll"),
		Fence(),
		Read("X", "rX"),
	}
	return p
}

// StoreBufferingBare is the classic SB shape with no synchronization: PMC
// (like PC and weaker models) admits the r1=0,r2=0 outcome.
func StoreBufferingBare() Program {
	return Program{
		Name: "sb-bare",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{Write("X", 1), Read("Y", "r1")},
			{Write("Y", 1), Read("X", "r2")},
		},
	}
}

// StoreBufferingDRF wraps every access in entry_x/exit_x with fences
// between the sections — the data-race-free version. PMC then behaves
// sequentially consistently: r1=0,r2=0 is excluded.
func StoreBufferingDRF() Program {
	return Program{
		Name: "sb-drf",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{
				Acquire("X"), Write("X", 1), Release("X"),
				Fence(),
				Acquire("Y"), Read("Y", "r1"), Release("Y"),
			},
			{
				Acquire("Y"), Write("Y", 1), Release("Y"),
				Fence(),
				Acquire("X"), Read("X", "r2"), Release("X"),
			},
		},
	}
}

// CoRR checks slow-memory read coherence: a reader polling one location
// never observes values moving backwards through the write order.
func CoRR() Program {
	return Program{
		Name: "corr",
		Locs: []string{"X"},
		Threads: []Thread{
			{
				Acquire("X"), Write("X", 1), Write("X", 2), Release("X"),
			},
			{
				Read("X", "r1"),
				Read("X", "r2"),
			},
		},
	}
}

// MutexCounter has two threads increment a counter-ish location under the
// same lock; exactly the two serialization orders are observable.
func MutexCounter() Program {
	return Program{
		Name: "mutex-counter",
		Locs: []string{"C"},
		Threads: []Thread{
			{
				Acquire("C"), Read("C", "a1"), Write("C", 10), Release("C"),
			},
			{
				Acquire("C"), Read("C", "a2"), Write("C", 20), Release("C"),
			},
		},
	}
}

// Fig5ScopedFence replaces the writer's global fence with a fence scoped
// to X (the Section IV-D optimization): for this program the scoped fence
// carries every ordering the writer needs, so the outcome set is unchanged.
func Fig5ScopedFence() Program {
	p := Fig5Annotated()
	p.Name = "fig5-scoped-fence"
	p.Threads[0] = Thread{
		Acquire("X"),
		Write("X", 42),
		FenceOn("X"),
		Release("X"),
		Acquire("f"),
		Write("f", 1),
		Flush("f"),
		Release("f"),
	}
	return p
}

// LoadBuffering is the LB shape: reads before writes on each thread. PMC
// (like every model weaker than SC without speculation) forbids the
// "out-of-thin-air" r1=1,r2=1 outcome because reads only return issued
// writes.
func LoadBuffering() Program {
	return Program{
		Name: "lb",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{Read("X", "r1"), Write("Y", 1)},
			{Read("Y", "r2"), Write("X", 1)},
		},
	}
}

// IRIW (independent reads of independent writes): two writers to different
// locations, two readers reading both in opposite orders. Without
// synchronization PMC lets the readers disagree on the write order — the
// hallmark of models weaker than SC.
func IRIW() Program {
	return Program{
		Name: "iriw",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{Write("X", 1)},
			{Write("Y", 1)},
			{Read("X", "a"), Read("Y", "b")},
			{Read("Y", "c"), Read("X", "d")},
		},
	}
}

// IRIWSym3 is iriw with three fully interchangeable readers: two writers
// to independent locations and three readers scanning them in the same
// order. Any permutation of the readers (with the induced register
// renaming) maps the program onto itself, so its automorphism group is
// S_3 on the readers, order 3! — the showcase for symmetry-reduced
// exploration, which explores one representative per orbit and collapses
// the state count by up to the group order while the outcome set (every
// combination of 0/1 observations, since nothing synchronizes) and the
// per-outcome path counts stay identical. Classic iriw's opposite-order
// readers only admit the combined writer+reader+location swap (group
// order 2), which is why the t!-class win needs same-direction readers.
func IRIWSym3() Program {
	return Program{
		Name: "iriw-sym3",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{Write("X", 1)},
			{Write("Y", 1)},
			{Read("X", "a1"), Read("Y", "a2")},
			{Read("X", "b1"), Read("Y", "b2")},
			{Read("X", "c1"), Read("Y", "c2")},
		},
	}
}

// WRCDRF is write-to-read causality with full annotations: T0 publishes X,
// T1 observes it and publishes Y, T2 observes Y and must then see X. The
// flushes carry no ordering; they give the polls liveness on backends with
// weak visibility (the role flush(f) plays in Fig. 6).
func WRCDRF() Program {
	return Program{
		Name: "wrc-drf",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{
				Acquire("X"), Write("X", 1), Flush("X"), Release("X"),
			},
			{
				AwaitEq("X", 1, ""), // an unsynchronized peek...
				Fence(),
				Acquire("Y"), Write("Y", 1), Flush("Y"), Release("Y"),
			},
			{
				AwaitEq("Y", 1, ""),
				Fence(),
				Acquire("X"), Read("X", "r"), Release("X"),
			},
		},
	}
}

// CoRW is the classic coherence shape "read then write, racing a remote
// write": reads only return issued writes, so r1 can observe the initial
// value or T1's write, never T0's own later write.
func CoRW() Program {
	return Program{
		Name: "corw",
		Locs: []string{"X"},
		Threads: []Thread{
			{Read("X", "r1"), Write("X", 1)},
			{Write("X", 2)},
		},
	}
}

// CoWR is "write then read, racing a remote write". The bare model's
// Definition 12 pins r1 to T0's own write (the remote write is never
// ordered after it), but the executed program runs each bare write in its
// own entry/exit scope, which lock-orders the writes and legitimately lets
// r1 observe T1's value — exactly the discrepancy conform.EffectiveProgram
// accounts for.
func CoWR() Program {
	return Program{
		Name: "cowr",
		Locs: []string{"X"},
		Threads: []Thread{
			{Write("X", 1), Read("X", "r1")},
			{Write("X", 2)},
		},
	}
}

// IRIW3 is a 3-thread IRIW-style program: one process writes two
// locations in program order, two readers read them in opposite orders.
// Bare reads carry no acquire, so PMC lets the readers disagree on the
// write order — per-process program order (≺P) is per location and does
// not impose a global store order on unsynchronized readers.
func IRIW3() Program {
	return Program{
		Name: "iriw-3t",
		Locs: []string{"X", "Y"},
		Threads: []Thread{
			{Write("X", 1), Write("Y", 1)},
			{Read("X", "a"), Read("Y", "b")},
			{Read("Y", "c"), Read("X", "d")},
		},
	}
}

// StressIndependent is a deliberately state-heavy program: four threads
// work on private locations (with a lock, a fence and trailing reads mixed
// in), so the interleaving tree has ~2×10⁸ complete paths — two orders of
// magnitude past the explorer's default 2M-state budget, which is why
// plain tree enumeration cannot finish it. Because the threads share no
// location, every interleaving of a given per-thread progress vector
// produces an isomorphic dependency graph, and canonical-state memoization
// collapses the search to under a thousand distinct states.
func StressIndependent() Program {
	return Program{
		Name: "stress-independent",
		Locs: []string{"A", "B", "C", "D"},
		Threads: []Thread{
			{
				Acquire("A"), Write("A", 1), Write("A", 2), Release("A"), Read("A", "rA"),
			},
			{
				Write("B", 1), Write("B", 2), Read("B", "rB"), Write("B", 3),
			},
			{
				Acquire("C"), Write("C", 7), Release("C"), Read("C", "rC"),
			},
			{
				Write("D", 1), Fence(), Write("D", 2), Read("D", "rD"),
			},
		},
	}
}

// MPBlock is message passing with a multi-word payload moved by the
// annotation API v2 block operations: the writer publishes a 4-word
// message with one WriteBlock (word k holds 42+k) and flags it; the reader
// awaits the flag and reads the whole payload with one ReadBlock. Under
// the PMC discipline the only outcome is the complete message — a torn or
// stale word would escape the model, which is exactly what the
// conformance matrix checks on every backend.
func MPBlock() Program {
	return Program{
		Name:   "mp-block",
		Locs:   []string{"M", "f"},
		Widths: map[string]int{"M": 4},
		Threads: []Thread{
			{
				Acquire("M"),
				WriteBlock("M", 42),
				Fence(),
				Release("M"),
				Acquire("f"),
				Write("f", 1),
				Flush("f"),
				Release("f"),
			},
			{
				AwaitEq("f", 1, ""),
				Fence(),
				Acquire("M"),
				ReadBlock("M", "rM"),
				Release("M"),
			},
		},
	}
}

// Catalog returns all named programs.
func Catalog() []Program {
	return []Program{
		Fig1Unsynchronized(),
		Fig1Volatile(),
		Fig5Annotated(),
		Fig5NoAcquire(),
		Fig5ScopedFence(),
		StoreBufferingBare(),
		StoreBufferingDRF(),
		CoRR(),
		CoRW(),
		CoWR(),
		MutexCounter(),
		LoadBuffering(),
		IRIW(),
		IRIW3(),
		IRIWSym3(),
		WRCDRF(),
		StressIndependent(),
		MPBlock(),
	}
}

// ByName returns the named program, or false.
func ByName(name string) (Program, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

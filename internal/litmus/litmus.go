// Package litmus exhaustively explores the outcomes of small annotated
// multi-threaded programs under the PMC memory model (internal/core). It
// enumerates every thread interleaving and, at each read, every value the
// model permits (Definition 12), collecting the set of observable final
// outcomes.
//
// The explorer enforces what the model assumes but does not itself provide:
//   - mutual exclusion: an acquire is enabled only while no other thread
//     holds the location's lock;
//   - slow-memory read monotonicity: successive reads of one location by
//     one thread never step backwards through the write order they have
//     already observed (the second clause of Definition 12, applied in
//     issue order, which is Slow Consistency's guarantee);
//   - progress for polls: an await is enabled once the awaited value is
//     readable, modelling "the flag is eventually observed" without
//     enumerating unboundedly many failed poll iterations.
//
// This is the tool that demonstrates Fig. 1 (the unsynchronized program has
// a stale outcome), Fig. 5/6 (the annotated program has exactly one
// outcome), and the SC-simulation claim for data-race-free programs.
package litmus

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pmc/internal/core"
)

// ErrBudget is wrapped by Run when the state budget is exhausted with work
// remaining; match it with errors.Is (the fuzzer skips such programs).
var ErrBudget = errors.New("state budget exhausted")

// InstrKind enumerates litmus instructions. They correspond to the PMC
// annotations of Section V-A: reads/writes plus entry_x/exit_x (acquire/
// release), fence, and an await modelling a poll loop. Flush is accepted
// for program fidelity but is a no-op at model level (it is a liveness
// hint, not an ordering, Section IV-D).
type InstrKind uint8

const (
	// IRead reads Loc into register Reg.
	IRead InstrKind = iota
	// IWrite writes the constant Val to Loc.
	IWrite
	// IAcquire is entry_x(Loc).
	IAcquire
	// IRelease is exit_x(Loc).
	IRelease
	// IFence is fence().
	IFence
	// IFlush is flush(Loc): no model ordering, explorer no-op.
	IFlush
	// IAwaitEq blocks until a read of Loc can return Val, then performs
	// that read into Reg (if Reg is non-empty).
	IAwaitEq
	// IReadBlock is a ranged read of Loc's whole width (annotation API
	// v2): word k lands in register WordReg(Reg, k). Lowered to per-word
	// reads before exploration; executed as one Ctx.ReadBlock by the
	// conformance harness.
	IReadBlock
	// IWriteBlock is a ranged write of Loc's whole width: word k receives
	// Val+k (distinct per-word values, so partial or torn transfers are
	// observable).
	IWriteBlock
)

// Instr is one litmus instruction.
type Instr struct {
	Kind InstrKind
	Loc  string
	Val  core.Value
	Reg  string
}

// Convenience constructors.

// Read returns an instruction reading loc into reg.
func Read(loc, reg string) Instr { return Instr{Kind: IRead, Loc: loc, Reg: reg} }

// Write returns an instruction writing val to loc.
func Write(loc string, val core.Value) Instr { return Instr{Kind: IWrite, Loc: loc, Val: val} }

// Acquire returns entry_x(loc).
func Acquire(loc string) Instr { return Instr{Kind: IAcquire, Loc: loc} }

// Release returns exit_x(loc).
func Release(loc string) Instr { return Instr{Kind: IRelease, Loc: loc} }

// Fence returns fence().
func Fence() Instr { return Instr{Kind: IFence} }

// FenceOn returns a location-scoped fence (the Section IV-D extension):
// it orders only operations on loc.
func FenceOn(loc string) Instr { return Instr{Kind: IFence, Loc: loc} }

// Flush returns flush(loc).
func Flush(loc string) Instr { return Instr{Kind: IFlush, Loc: loc} }

// AwaitEq returns a poll loop "while(loc != val);" that records the
// successful read in reg (reg may be empty).
func AwaitEq(loc string, val core.Value, reg string) Instr {
	return Instr{Kind: IAwaitEq, Loc: loc, Val: val, Reg: reg}
}

// ReadBlock returns a ranged read of loc's whole width; word k is
// observed in WordReg(reg, k) (reg may be empty for an unobserved read).
func ReadBlock(loc, reg string) Instr { return Instr{Kind: IReadBlock, Loc: loc, Reg: reg} }

// WriteBlock returns a ranged write of loc's whole width; word k receives
// val+k.
func WriteBlock(loc string, val core.Value) Instr {
	return Instr{Kind: IWriteBlock, Loc: loc, Val: val}
}

// Thread is a sequence of instructions executed by one process.
type Thread []Instr

// Program is a complete litmus test.
type Program struct {
	Name    string
	Locs    []string
	Threads []Thread
	// Widths gives the word width of multi-word locations (absent or
	// ≤ 1 means one word). Wide locations model multi-word shared
	// objects: block instructions cover the whole width, scope
	// annotations protect every word, and the explorer lowers both to
	// per-word model operations (LowerWide).
	Widths map[string]int
	// Placement routes locations to named runtime backends when the
	// program executes under conform's mixed mode (absent = the run's
	// default backend). The model is placement-blind — every conforming
	// backend implements the same memory model — so exploration ignores
	// it; only execution and the canonical fingerprint consume it.
	Placement map[string]string
}

// PlacedOn returns the backend name loc is placed on ("" = default).
func (p Program) PlacedOn(loc string) string { return p.Placement[loc] }

// WidthOf returns loc's width in words (at least 1).
func (p Program) WidthOf(loc string) int {
	if w := p.Widths[loc]; w > 1 {
		return w
	}
	return 1
}

// WordLoc names word k of a wide location at model level: word 0 keeps
// the location's own name, word k is "loc@k".
func WordLoc(loc string, k int) string {
	if k == 0 {
		return loc
	}
	return fmt.Sprintf("%s@%d", loc, k)
}

// WordReg names the register observing word k of a block read: word 0
// keeps the base register name, word k is "reg@k".
func WordReg(reg string, k int) string {
	if k == 0 || reg == "" {
		return reg
	}
	return fmt.Sprintf("%s@%d", reg, k)
}

// HasWide reports whether p uses multi-word locations or block
// instructions (i.e. whether LowerWide would rewrite it).
func (p Program) HasWide() bool {
	for _, w := range p.Widths {
		if w > 1 {
			return true
		}
	}
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Kind == IReadBlock || in.Kind == IWriteBlock {
				return true
			}
		}
	}
	return false
}

// LowerWide rewrites a program with wide locations and block instructions
// into the pure word-granular form the exploration engine and the formal
// model speak:
//
//   - a wide location X of width w becomes word locations X, X@1 … X@w-1;
//   - entry_x/exit_x (acquire/release) of X cover every word — the
//     runtime's one object lock protects the whole object, which the
//     model expresses as one acquire/release per word location;
//   - location-scoped fences and flushes of X expand per word;
//   - WriteBlock(X, v) becomes per-word writes of v+k, ReadBlock(X, r)
//     per-word reads into r, r@1, …;
//   - word-granular reads/writes/awaits of X touch word 0 (the location's
//     own name).
//
// Bare (unscoped) accesses stay bare: the runtime's entry_ro wrapper takes
// the object lock for multi-word objects, so the execution is strictly
// more ordered than this model program — outcomes remain a subset of the
// model's, which is the sound direction for conformance checking.
//
// Programs without wide features are returned unchanged (same backing
// arrays), so existing explorations are bit-for-bit unaffected.
func LowerWide(p Program) Program {
	if !p.HasWide() {
		return p
	}
	out := Program{Name: p.Name, Threads: make([]Thread, len(p.Threads)), Placement: p.Placement}
	for _, loc := range p.Locs {
		for k := 0; k < p.WidthOf(loc); k++ {
			out.Locs = append(out.Locs, WordLoc(loc, k))
		}
	}
	for ti, th := range p.Threads {
		var eff Thread
		for _, in := range th {
			w := p.WidthOf(in.Loc)
			switch in.Kind {
			case IAcquire:
				for k := 0; k < w; k++ {
					eff = append(eff, Acquire(WordLoc(in.Loc, k)))
				}
			case IRelease:
				for k := 0; k < w; k++ {
					eff = append(eff, Release(WordLoc(in.Loc, k)))
				}
			case IFence:
				if in.Loc == "" {
					eff = append(eff, in)
					break
				}
				for k := 0; k < w; k++ {
					eff = append(eff, FenceOn(WordLoc(in.Loc, k)))
				}
			case IFlush:
				for k := 0; k < w; k++ {
					eff = append(eff, Flush(WordLoc(in.Loc, k)))
				}
			case IReadBlock:
				for k := 0; k < w; k++ {
					eff = append(eff, Read(WordLoc(in.Loc, k), WordReg(in.Reg, k)))
				}
			case IWriteBlock:
				for k := 0; k < w; k++ {
					eff = append(eff, Write(WordLoc(in.Loc, k), in.Val+core.Value(k)))
				}
			default:
				// Word-granular reads, writes and awaits touch word 0,
				// whose model location keeps the object's name.
				eff = append(eff, in)
			}
		}
		out.Threads[ti] = eff
	}
	return out
}

// Result summarizes an exploration.
type Result struct {
	// Outcomes maps a canonical register assignment ("r1=42 r2=0") to
	// the number of distinct executions producing it. The count is the
	// number of complete interleaving/read-choice paths, identical
	// across sequential, memoized and parallel exploration modes.
	Outcomes map[string]int
	// Stuck counts executions that reached a state with no enabled
	// instruction before all threads finished (deadlock/livelock).
	Stuck int
	// States is the number of explored states — a cost metric, not part
	// of the semantics. Without memoization it counts exploration-tree
	// nodes; with memoization it counts distinct canonical states, which
	// is typically far smaller. Within one mode it is deterministic
	// run-to-run, including under parallel exploration.
	States int
}

// HasOutcome reports whether the canonical outcome string was observed.
func (r *Result) HasOutcome(s string) bool { return r.Outcomes[s] > 0 }

// OutcomeList returns the sorted outcome strings.
func (r *Result) OutcomeList() []string {
	var out []string
	for o := range r.Outcomes {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// String renders the result compactly.
func (r *Result) String() string {
	var b strings.Builder
	for _, o := range r.OutcomeList() {
		fmt.Fprintf(&b, "%s (%d executions)\n", o, r.Outcomes[o])
	}
	if r.Stuck > 0 {
		fmt.Fprintf(&b, "stuck: %d\n", r.Stuck)
	}
	return b.String()
}

// state is one node of the exploration tree. Its layout is flat — one
// backing array per field, no nested slices or maps — because clone runs
// once per exploration step and is the engine's hottest allocation site.
type state struct {
	exec *core.Execution
	pcs  []int
	// lockHolder[loc] = thread index holding it, or -1.
	lockHolder []int
	// lastRead[thread*numLocs+loc] = op ID of the write last read-from,
	// or -1.
	lastRead []int
	// regs is the register file, indexed by the Explorer's regOrder
	// position (regIdx); Set distinguishes "never written" from zero.
	regs []regVal
}

// regVal is one register slot.
type regVal struct {
	Val core.Value
	Set bool
}

func (s *state) clone() *state {
	return &state{
		exec:       s.exec.Clone(),
		pcs:        append([]int(nil), s.pcs...),
		lockHolder: append([]int(nil), s.lockHolder...),
		lastRead:   append([]int(nil), s.lastRead...),
		regs:       append([]regVal(nil), s.regs...),
	}
}

// Explorer runs exhaustive exploration of a program.
//
// The zero-configuration path (NewExplorer / Explore) uses the memoized
// parallel engine: converging interleavings are deduplicated by canonical
// state fingerprint and independent subtrees run on a worker pool. Both
// features can be disabled per field; every mode produces identical
// Outcomes, Stuck and outcome lists, bit-for-bit, run-to-run.
type Explorer struct {
	prog   Program
	locIdx map[string]core.Loc
	// regOrder is the program's registers sorted by name, fixed at Run
	// start; regIdx maps a register name to its regOrder slot. Register
	// state lives in a flat per-state file indexed by slot.
	regOrder []string
	regIdx   map[string]int
	// fpPool recycles fingerprint scratch buffers across states and
	// workers.
	fpPool sync.Pool
	// MaxStates aborts pathological explorations. An exploration that
	// completes using exactly MaxStates states succeeds; the budget
	// error is returned only when work remained beyond it.
	MaxStates int
	// Workers is the number of exploration goroutines. 0 means
	// GOMAXPROCS; 1 explores sequentially.
	Workers int
	// Memoize enables canonical-state deduplication: states reached by
	// different interleavings that are isomorphic (same per-thread
	// progress, lock holders, registers, read views and dependency
	// graph modulo issue-order relabeling) share one subtree, with
	// path-counted outcomes matching plain tree enumeration exactly.
	Memoize bool
	// Symmetry additionally collapses states related by a program
	// automorphism — a thread/location permutation mapping the program
	// onto itself (symmetry.go) — so fully interchangeable threads cost
	// one orbit instead of t! states. Outcomes, Stuck and per-outcome
	// path counts are unchanged; only States shrinks. Requires Memoize;
	// programs without non-trivial automorphisms run identically to
	// plain memoization (modulo the canonicalization probe cost).
	Symmetry bool
}

// NewExplorer prepares an exploration of p with the default engine
// (memoized, GOMAXPROCS workers).
func NewExplorer(p Program) *Explorer {
	return &Explorer{prog: p, MaxStates: 2_000_000, Memoize: true}
}

// Explore runs the exhaustive search and returns the result.
func Explore(p Program) (*Result, error) {
	return NewExplorer(p).Run()
}

// validate rejects malformed programs before exploration: unknown
// locations, and releases of a lock the thread cannot hold. Lock holding
// is static per thread — an acquire by t makes t the holder until t's own
// release — so a release-without-hold is detectable from the thread's
// instruction sequence alone, independent of interleaving. The check is
// deliberately stricter than dynamic reachability: a program containing a
// non-holder release is rejected even if exploration would never step it
// (e.g. it sits behind an unsatisfiable await), which also keeps the
// error deterministic under parallel exploration.
func (x *Explorer) validate() error {
	for ti, th := range x.prog.Threads {
		held := make(map[string]int)
		for pc, in := range th {
			if in.Kind == IFence && in.Loc == "" {
				continue
			}
			if _, ok := x.locIdx[in.Loc]; !ok {
				return fmt.Errorf("litmus %s: unknown location %q", x.prog.Name, in.Loc)
			}
			switch in.Kind {
			case IAcquire:
				held[in.Loc]++
			case IRelease:
				if held[in.Loc] == 0 {
					return fmt.Errorf("litmus %s: thread %d instruction %d releases %s without holding it",
						x.prog.Name, ti, pc, in.Loc)
				}
				held[in.Loc]--
			}
		}
	}
	return nil
}

// prepare lowers the program, builds the location and register indexes,
// validates, and returns the root state.
func (x *Explorer) prepare() (*state, error) {
	// Wide locations and block instructions lower to per-word model
	// operations first; word-granular programs pass through untouched.
	x.prog = LowerWide(x.prog)
	exec := core.NewExecution()
	x.locIdx = make(map[string]core.Loc, len(x.prog.Locs))
	for _, name := range x.prog.Locs {
		x.locIdx[name] = exec.AddLoc(name)
	}
	if err := x.validate(); err != nil {
		return nil, err
	}
	x.regOrder = x.regOrder[:0]
	x.regIdx = make(map[string]int)
	for _, th := range x.prog.Threads {
		for _, in := range th {
			if in.Reg != "" {
				if _, ok := x.regIdx[in.Reg]; !ok {
					x.regIdx[in.Reg] = -1 // slot assigned after the sort
					x.regOrder = append(x.regOrder, in.Reg)
				}
			}
		}
	}
	sort.Strings(x.regOrder)
	for i, name := range x.regOrder {
		x.regIdx[name] = i
	}
	if x.Symmetry && !x.Memoize {
		return nil, fmt.Errorf("litmus %s: Symmetry requires Memoize (orbit results live in the memo table)", x.prog.Name)
	}
	s := &state{
		exec:       exec,
		pcs:        make([]int, len(x.prog.Threads)),
		lockHolder: make([]int, len(x.prog.Locs)),
		lastRead:   make([]int, len(x.prog.Threads)*len(x.prog.Locs)),
		regs:       make([]regVal, len(x.regOrder)),
	}
	for i := range s.lockHolder {
		s.lockHolder[i] = -1
	}
	for i := range s.lastRead {
		s.lastRead[i] = -1
	}
	return s, nil
}

// Run executes the exploration.
func (x *Explorer) Run() (*Result, error) {
	s, err := x.prepare()
	if err != nil {
		return nil, err
	}
	workers := x.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &engine{x: x, memoize: x.Memoize, maxStates: int64(x.MaxStates)}
	if x.Symmetry {
		g.auts = x.automorphisms()
		g.claimed = make(map[fingerprint]bool)
	}
	var res *subResult
	if workers == 1 {
		res, err = g.explore(s)
	} else {
		res, err = g.runParallel(s, workers)
	}
	if err != nil {
		return nil, err
	}
	if g.budgetHit.Load() {
		return nil, fmt.Errorf("litmus %s: %w (budget %d, work remained)",
			x.prog.Name, ErrBudget, x.MaxStates)
	}
	out := &Result{Outcomes: res.outcomes, Stuck: res.stuck, States: int(g.states.Load())}
	if out.Outcomes == nil {
		out.Outcomes = make(map[string]int)
	}
	return out, nil
}

// readCandidates returns the write op IDs a read of loc by thread t may
// return in state s, honoring Definition 12 and read monotonicity. The
// readable set is computed against the live execution (core.ReadableAt);
// no clone is taken.
func (x *Explorer) readCandidates(s *state, t int, loc core.Loc) []int {
	cands := s.exec.ReadableAt(core.ProcID(t), loc)
	last := s.lastRead[t*len(x.prog.Locs)+int(loc)]
	var out []int
	for _, b := range cands {
		// Monotonicity: never read a write that is strictly before
		// the one we already observed, in our own view.
		if last >= 0 && b != last {
			if s.exec.ReachableP(core.ProcID(t), b, last) {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// step returns the successor states of s for thread t, or nil if t is
// blocked (or finished). Malformed programs (a release by a non-holder)
// surface as an error; validate catches them statically before exploration,
// so this path is defense in depth.
func (x *Explorer) step(s *state, t int) ([]*state, error) {
	th := x.prog.Threads[t]
	if s.pcs[t] >= len(th) {
		return nil, nil
	}
	in := th[s.pcs[t]]
	p := core.ProcID(t)
	switch in.Kind {
	case IWrite:
		n := s.clone()
		n.exec.Write(p, x.locIdx[in.Loc], in.Val)
		n.pcs[t]++
		return []*state{n}, nil
	case IFence:
		n := s.clone()
		if in.Loc != "" {
			n.exec.FenceLoc(p, x.locIdx[in.Loc])
		} else {
			n.exec.Fence(p)
		}
		n.pcs[t]++
		return []*state{n}, nil
	case IFlush:
		n := s.clone()
		n.pcs[t]++
		return []*state{n}, nil
	case IAcquire:
		loc := x.locIdx[in.Loc]
		if s.lockHolder[loc] != -1 {
			return nil, nil // blocked
		}
		n := s.clone()
		n.exec.Acquire(p, loc)
		n.lockHolder[loc] = t
		n.pcs[t]++
		return []*state{n}, nil
	case IRelease:
		loc := x.locIdx[in.Loc]
		if s.lockHolder[loc] != t {
			return nil, fmt.Errorf("litmus %s: thread %d releases %s without holding it",
				x.prog.Name, t, in.Loc)
		}
		n := s.clone()
		n.exec.Release(p, loc)
		n.lockHolder[loc] = -1
		n.pcs[t]++
		return []*state{n}, nil
	case IRead, IAwaitEq:
		loc := x.locIdx[in.Loc]
		cands := x.readCandidates(s, t, loc)
		var succs []*state
		for _, b := range cands {
			val := s.exec.Op(b).Val
			if s.exec.Op(b).IsInit {
				val = 0
			}
			if in.Kind == IAwaitEq && val != in.Val {
				continue
			}
			n := s.clone()
			n.exec.Read(p, loc, val)
			n.lastRead[t*len(x.prog.Locs)+int(loc)] = b
			if in.Reg != "" {
				n.regs[x.regIdx[in.Reg]] = regVal{Val: val, Set: true}
			}
			n.pcs[t]++
			succs = append(succs, n)
		}
		return succs, nil // empty = blocked (await not yet satisfiable)
	}
	return nil, fmt.Errorf("litmus %s: unknown instruction kind %d", x.prog.Name, in.Kind)
}

// canonical renders a register assignment deterministically. regOrder is
// sorted by name, so walking the register file in slot order yields the
// same "r1=42 r2=0" form the map-based renderer produced.
func (x *Explorer) canonical(regs []regVal) string {
	var b strings.Builder
	for i, r := range regs {
		if !r.Set {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(x.regOrder[i])
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(uint64(r.Val), 10))
	}
	if b.Len() == 0 {
		return noObservations
	}
	return b.String()
}

// noObservations is the canonical outcome of a program with no observed
// registers.
const noObservations = "(no observations)"

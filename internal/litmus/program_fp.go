package litmus

import "fmt"

// Program-level canonical fingerprinting. Two programs that differ only in
// display names — the program Name, location names, register names — have
// identical behavior: outcomes are register assignments, and renaming a
// register renames the outcome consistently. Fingerprint canonicalizes the
// naming away so such programs collide:
//
//   - locations are numbered by first appearance, scanning threads in
//     order and each thread's instructions in order (locations that are
//     declared but never referenced contribute only their count);
//   - registers are numbered the same way;
//   - the fingerprint then folds thread structure and each instruction's
//     (kind, canonical location, value, canonical register) into the same
//     two-lane 128-bit hash the state memoizer uses.
//
// The fuzzer deduplicates generated programs by this fingerprint, and the
// FuzzFingerprint native fuzz target asserts the invariance: any
// relabeling of locations and registers preserves the fingerprint and the
// outcome set (modulo the register renaming).

// Fingerprint returns the canonical fingerprint of p as a 32-hex-digit
// string, invariant under renaming of the program, its locations and its
// registers.
func Fingerprint(p Program) string {
	locIdx := make(map[string]int)
	regIdx := make(map[string]int)
	canonLoc := func(name string) int {
		if name == "" {
			return -1 // location-less fence
		}
		if i, ok := locIdx[name]; ok {
			return i
		}
		locIdx[name] = len(locIdx)
		return locIdx[name]
	}
	canonReg := func(name string) int {
		if name == "" {
			return -1
		}
		if i, ok := regIdx[name]; ok {
			return i
		}
		regIdx[name] = len(regIdx)
		return regIdx[name]
	}

	h := newFpHash()
	h.mixInt(len(p.Threads))
	for _, th := range p.Threads {
		h.mixInt(len(th))
		for _, in := range th {
			h.mix(uint64(in.Kind))
			h.mixInt(canonLoc(in.Loc))
			// A location's width is part of program behavior (it sets
			// how scope and block instructions lower); widths follow the
			// location through any renaming, keeping the fingerprint
			// naming-invariant.
			h.mixInt(p.WidthOf(in.Loc))
			// A location's backend placement is part of program behavior
			// under mixed-mode execution. Backend names are a fixed
			// vocabulary — not display names — so they mix as literal
			// bytes; placements follow the location through renaming.
			h.mixString(p.Placement[in.Loc])
			h.mix(uint64(in.Val))
			h.mixInt(canonReg(in.Reg))
		}
	}
	// Declared-but-unused locations affect only the count (their names
	// and order are immaterial to behavior).
	unused := 0
	for _, name := range p.Locs {
		if _, ok := locIdx[name]; !ok {
			unused++
		}
	}
	h.mixInt(unused)
	return fmt.Sprintf("%016x%016x", h.hi, h.lo)
}

// ExploreFingerprint extends the program fingerprint with the engine
// configuration that reaches reported results: Memoize changes what States
// counts (tree nodes vs distinct canonical states) and MaxStates changes
// whether a budget abort is possible, so explorations differing in either
// are distinct cacheable computations. Workers is deliberately excluded —
// every worker count produces identical results (the engine's differential
// guarantee) — so a sequential and a parallel run share one cache entry.
func ExploreFingerprint(p Program, memoize bool, maxStates int) string {
	h := newFpHash()
	h.mixString(Fingerprint(p))
	m := 0
	if memoize {
		m = 1
	}
	h.mixInt(m)
	h.mixInt(maxStates)
	return fmt.Sprintf("%016x%016x", h.hi, h.lo)
}

// InstrCount returns the total number of instructions across all threads —
// the size metric the fuzzer's shrinker minimizes.
func InstrCount(p Program) int {
	n := 0
	for _, th := range p.Threads {
		n += len(th)
	}
	return n
}

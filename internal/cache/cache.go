// Package cache models the non-coherent write-back caches of the simulated
// SoC. A cache holds real copies of backing-store data, so stale lines and
// lost writebacks corrupt the simulated program's results — exactly the
// failure mode the PMC annotations exist to prevent — rather than being
// abstracted into counters.
//
// Mirroring the MicroBlaze data cache the paper targets, the only control
// operations are per-line invalidate (discard, even if dirty) and
// flush-and-invalidate (write back if dirty, then discard). There is no way
// to reconcile a dirty line while keeping it resident; Section V-B of the
// paper calls this restriction out and the SWCC protocol is designed around
// it.
//
// The cache is a pure data/state machine: methods report what bus traffic an
// access implies (miss fill, victim writeback) and move data to/from the
// backing store, but charge no simulated time. The tile (internal/soc) is
// responsible for timing.
package cache

import (
	"fmt"

	"pmc/internal/mem"
)

// Config describes a cache's geometry.
type Config struct {
	Size     int // total bytes
	Ways     int // associativity; 1 = direct-mapped
	LineSize int // bytes per line (power of two)
}

// Valid reports whether the geometry is internally consistent.
func (c Config) Valid() error {
	switch {
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineSize)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d", c.Ways)
	case c.Size <= 0 || c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.Size)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Size / (c.LineSize * c.Ways) }

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
	data  []byte
}

// Stats counts cache events since construction.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Writebacks  uint64 // dirty victims + dirty flushes
	Invalidated uint64 // lines dropped by control ops
	DirtyLost   uint64 // dirty lines discarded by InvalidateLine
}

// Cache is a set-associative write-back, write-allocate cache in front of a
// backing store.
type Cache struct {
	cfg     Config
	backing mem.Block
	sets    [][]line
	tick    uint64
	stats   Stats

	lineMask uint32
	setShift uint32
	setMask  uint32
}

// New returns an empty cache over the given backing store.
func New(cfg Config, backing mem.Block) *Cache {
	if err := cfg.Valid(); err != nil {
		panic(err)
	}
	// One backing array and one way array for the whole cache, subsliced
	// per set/line: a system builds two caches per tile, and thousands of
	// tiny line buffers were a measurable slice of sweep allocation.
	nSets := cfg.Sets()
	ways := make([]line, nSets*cfg.Ways)
	data := make([]byte, len(ways)*cfg.LineSize)
	for w := range ways {
		ways[w].data = data[w*cfg.LineSize : (w+1)*cfg.LineSize : (w+1)*cfg.LineSize]
	}
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = ways[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	setShift := uint32(0)
	for 1<<setShift < cfg.LineSize {
		setShift++
	}
	return &Cache{
		cfg:      cfg,
		backing:  backing,
		sets:     sets,
		lineMask: uint32(cfg.LineSize - 1),
		setShift: setShift,
		setMask:  uint32(cfg.Sets() - 1),
	}
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineBase returns the line-aligned base of addr.
func (c *Cache) LineBase(addr mem.Addr) mem.Addr {
	return addr &^ mem.Addr(c.lineMask)
}

func (c *Cache) setIndex(addr mem.Addr) uint32 {
	return (uint32(addr) >> c.setShift) & c.setMask
}

func (c *Cache) tag(addr mem.Addr) uint32 {
	return uint32(addr) >> c.setShift
}

// lookup returns the resident line for addr, or nil.
func (c *Cache) lookup(addr mem.Addr) *line {
	set := c.sets[c.setIndex(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Traffic describes the bus transactions an access caused. Fill is true if
// a line was fetched from backing store; Writeback is true if a dirty
// victim (or flushed line) was written back first. The soc layer converts
// these into bus time.
type Traffic struct {
	Fill      bool
	Writeback bool
	// WritebackAddr is the written-back line's base address (valid when
	// Writeback is set); the memory model routes it to its bank.
	WritebackAddr mem.Addr
}

// victim picks the LRU way of addr's set, writing it back if dirty, and
// returns it ready for (re)fill.
func (c *Cache) victim(addr mem.Addr) (*line, Traffic) {
	set := c.sets[c.setIndex(addr)]
	var v *line
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	var tr Traffic
	if v.valid && v.dirty {
		tr.WritebackAddr = mem.Addr(v.tag << c.setShift)
		c.writebackLine(v)
		tr.Writeback = true
	}
	if v.valid {
		c.stats.Invalidated++
	}
	v.valid = false
	v.dirty = false
	return v, tr
}

func (c *Cache) writebackLine(l *line) {
	base := mem.Addr(l.tag << c.setShift)
	c.backing.WriteBlock(base, l.data)
	c.stats.Writebacks++
}

func (c *Cache) fill(addr mem.Addr) (*line, Traffic) {
	v, tr := c.victim(addr)
	base := c.LineBase(addr)
	c.backing.ReadBlock(base, v.data)
	v.tag = c.tag(addr)
	v.valid = true
	v.dirty = false
	tr.Fill = true
	c.stats.Fills++
	return v, tr
}

func (c *Cache) touch(l *line) {
	c.tick++
	l.lru = c.tick
}

// Read32 reads the little-endian word at addr through the cache,
// allocating on miss.
func (c *Cache) Read32(addr mem.Addr) (v uint32, tr Traffic) {
	l := c.lookup(addr)
	if l == nil {
		c.stats.Misses++
		l, tr = c.fill(addr)
	} else {
		c.stats.Hits++
	}
	c.touch(l)
	off := uint32(addr) & c.lineMask
	d := l.data[off:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, tr
}

// Write32 writes the word at addr through the cache (write-back,
// write-allocate): the line is fetched on miss and marked dirty.
func (c *Cache) Write32(addr mem.Addr, v uint32) (tr Traffic) {
	l := c.lookup(addr)
	if l == nil {
		c.stats.Misses++
		l, tr = c.fill(addr)
	} else {
		c.stats.Hits++
	}
	c.touch(l)
	l.dirty = true
	off := uint32(addr) & c.lineMask
	d := l.data[off:]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
	return tr
}

// Probe reports whether addr's line is resident, without touching LRU state.
func (c *Cache) Probe(addr mem.Addr) (resident, dirty bool) {
	if l := c.lookup(addr); l != nil {
		return true, l.dirty
	}
	return false, false
}

// FlushLine writes addr's line back if dirty and invalidates it. It
// reports the traffic (Writeback set if data moved). This is the
// MicroBlaze "wdc.flush" analogue.
func (c *Cache) FlushLine(addr mem.Addr) (tr Traffic) {
	l := c.lookup(addr)
	if l == nil {
		return
	}
	if l.dirty {
		tr.WritebackAddr = mem.Addr(l.tag << c.setShift)
		c.writebackLine(l)
		tr.Writeback = true
	}
	l.valid = false
	l.dirty = false
	c.stats.Invalidated++
	return tr
}

// InvalidateLine discards addr's line without writing it back, even if
// dirty — the MicroBlaze "wdc" analogue. Discarding dirty data loses
// writes; the SWCC protocol only uses it where that is sound.
func (c *Cache) InvalidateLine(addr mem.Addr) {
	l := c.lookup(addr)
	if l == nil {
		return
	}
	if l.dirty {
		c.stats.DirtyLost++
	}
	l.valid = false
	l.dirty = false
	c.stats.Invalidated++
}

// FillRange installs every missing line overlapping [addr, addr+size),
// reading line data from the backing store, and returns the number of
// lines filled plus the base addresses of any dirty victims that were
// written back first. Resident lines are left untouched (each touched
// line moves at most once per range). The caller charges the bus: one
// burst transaction for the fills, one writeback per victim.
func (c *Cache) FillRange(addr mem.Addr, size int) (fills int, wbs []mem.Addr) {
	if size <= 0 {
		return 0, nil
	}
	first := c.LineBase(addr)
	last := c.LineBase(addr + mem.Addr(size-1))
	for a := first; ; a += mem.Addr(c.cfg.LineSize) {
		if l := c.lookup(a); l != nil {
			c.stats.Hits++
			c.touch(l)
		} else {
			c.stats.Misses++
			l, tr := c.fill(a)
			c.touch(l)
			if tr.Writeback {
				wbs = append(wbs, tr.WritebackAddr)
			}
			fills++
		}
		if a == last {
			break
		}
	}
	return fills, wbs
}

// ReadRange32 copies len(dst) words starting at addr out of resident
// lines, without touching statistics or LRU state — the data phase of a
// DMA-style range read whose cache transactions (one per line) were
// already accounted by FillRange. It reports false without copying when
// any covered line is absent (a range so large it evicted its own head);
// the caller falls back to the per-word path.
func (c *Cache) ReadRange32(addr mem.Addr, dst []uint32) bool {
	for i := range dst {
		a := addr + mem.Addr(4*i)
		l := c.lookup(a)
		if l == nil {
			return false
		}
		off := uint32(a) & c.lineMask
		d := l.data[off:]
		dst[i] = uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	}
	return true
}

// WriteRange32 stores len(src) words starting at addr into resident
// lines, marking them dirty, without touching statistics or LRU state —
// the data phase of a DMA-style range write. It reports false before
// writing anything when any covered line is absent.
func (c *Cache) WriteRange32(addr mem.Addr, src []uint32) bool {
	for i := range src {
		if c.lookup(addr+mem.Addr(4*i)) == nil {
			return false
		}
	}
	for i, v := range src {
		a := addr + mem.Addr(4*i)
		l := c.lookup(a)
		l.dirty = true
		off := uint32(a) & c.lineMask
		d := l.data[off:]
		d[0] = byte(v)
		d[1] = byte(v >> 8)
		d[2] = byte(v >> 16)
		d[3] = byte(v >> 24)
	}
	return true
}

// WriteLineFull installs a whole line's worth of data dirty without
// fetching it from the backing store — the write-allocate fill is skipped
// because every byte is about to be overwritten (the classic full-line
// DMA-write optimization). src must be exactly one line and addr
// line-aligned. The returned traffic reports only the victim writeback, if
// any; there is never a fill.
func (c *Cache) WriteLineFull(addr mem.Addr, src []byte) (tr Traffic) {
	if len(src) != c.cfg.LineSize || addr != c.LineBase(addr) {
		panic(fmt.Sprintf("cache: WriteLineFull(%#x, %d bytes) not a full aligned line", addr, len(src)))
	}
	l := c.lookup(addr)
	if l == nil {
		c.stats.Misses++
		l, tr = c.victim(addr)
		l.tag = c.tag(addr)
		l.valid = true
	} else {
		c.stats.Hits++
	}
	c.touch(l)
	l.dirty = true
	copy(l.data, src)
	return tr
}

// FlushRange flush-invalidates every line overlapping [addr, addr+size) and
// returns the number of lines visited and written back. The per-line cost
// (one flush instruction each, plus bus time per writeback) is charged by
// the caller.
func (c *Cache) FlushRange(addr mem.Addr, size int) (lines, writebacks int) {
	if size <= 0 {
		return 0, 0
	}
	first := c.LineBase(addr)
	last := c.LineBase(addr + mem.Addr(size-1))
	for a := first; ; a += mem.Addr(c.cfg.LineSize) {
		lines++
		if tr := c.FlushLine(a); tr.Writeback {
			writebacks++
		}
		if a == last {
			break
		}
	}
	return lines, writebacks
}

// FlushAll flush-invalidates every resident line and returns the number of
// writebacks performed.
func (c *Cache) FlushAll() (writebacks int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if !l.valid {
				continue
			}
			if l.dirty {
				c.writebackLine(l)
				writebacks++
			}
			l.valid = false
			l.dirty = false
			c.stats.Invalidated++
		}
	}
	return writebacks
}

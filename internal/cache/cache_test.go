package cache

import (
	"testing"
	"testing/quick"

	"pmc/internal/mem"
)

func newTestCache(t *testing.T, cfg Config) (*Cache, *mem.RAM) {
	t.Helper()
	ram := mem.NewRAM(0, 1<<16)
	return New(cfg, ram), ram
}

func small() Config { return Config{Size: 256, Ways: 2, LineSize: 32} }

func TestConfigValidation(t *testing.T) {
	good := []Config{
		{Size: 256, Ways: 2, LineSize: 32},
		{Size: 4096, Ways: 1, LineSize: 32},
		{Size: 8192, Ways: 4, LineSize: 16},
	}
	for _, c := range good {
		if err := c.Valid(); err != nil {
			t.Errorf("%+v should be valid: %v", c, err)
		}
	}
	bad := []Config{
		{Size: 100, Ways: 2, LineSize: 32}, // size not divisible
		{Size: 256, Ways: 0, LineSize: 32},
		{Size: 256, Ways: 2, LineSize: 24},     // line not power of two
		{Size: 96 * 32, Ways: 1, LineSize: 32}, // sets not power of two
	}
	for _, c := range bad {
		if err := c.Valid(); err == nil {
			t.Errorf("%+v should be invalid", c)
		}
	}
}

func TestReadMissFillsFromBacking(t *testing.T) {
	c, ram := newTestCache(t, small())
	ram.Write32(0x40, 1234)
	v, tr := c.Read32(0x40)
	if v != 1234 || !tr.Fill || tr.Writeback {
		t.Fatalf("read = %d traffic=%+v, want 1234 fill-only", v, tr)
	}
	v, tr = c.Read32(0x44) // same line: hit
	if tr.Fill {
		t.Fatal("second read on same line should hit")
	}
	_ = v
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBackOnlyOnFlushOrEvict(t *testing.T) {
	c, ram := newTestCache(t, small())
	c.Write32(0x80, 99)
	if ram.Read32(0x80) != 0 {
		t.Fatal("write-back cache wrote through to backing store")
	}
	tr := c.FlushLine(0x80)
	if !tr.Writeback {
		t.Fatal("flush of dirty line should write back")
	}
	if ram.Read32(0x80) != 99 {
		t.Fatal("flush did not deposit data in backing store")
	}
	if res, _ := c.Probe(0x80); res {
		t.Fatal("flush should invalidate the line")
	}
}

func TestInvalidateDiscardsDirtyData(t *testing.T) {
	c, ram := newTestCache(t, small())
	ram.Write32(0x100, 7)
	c.Read32(0x100)
	c.Write32(0x100, 8)
	c.InvalidateLine(0x100)
	if ram.Read32(0x100) != 7 {
		t.Fatal("invalidate must NOT write back")
	}
	if c.Stats().DirtyLost != 1 {
		t.Fatal("DirtyLost not counted")
	}
	// Re-read sees the old value: the write was lost, by design.
	v, _ := c.Read32(0x100)
	if v != 7 {
		t.Fatalf("re-read = %d, want 7 (stale by design)", v)
	}
}

func TestEvictionWritesBackDirtyVictim(t *testing.T) {
	// Direct-mapped, 2 sets of 32B: addresses 0x00 and 0x40 collide.
	c, ram := newTestCache(t, Config{Size: 64, Ways: 1, LineSize: 32})
	c.Write32(0x00, 11)
	_, tr := c.Read32(0x40) // evicts dirty line 0x00
	if !tr.Writeback || !tr.Fill {
		t.Fatalf("conflict fill traffic = %+v, want writeback+fill", tr)
	}
	if ram.Read32(0x00) != 11 {
		t.Fatal("victim writeback lost")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way, 1 set: three distinct lines rotate.
	c, _ := newTestCache(t, Config{Size: 64, Ways: 2, LineSize: 32})
	c.Read32(0x000) // A
	c.Read32(0x100) // B
	c.Read32(0x000) // touch A: B is now LRU
	c.Read32(0x200) // C evicts B
	if res, _ := c.Probe(0x000); !res {
		t.Fatal("A should be resident")
	}
	if res, _ := c.Probe(0x100); res {
		t.Fatal("B should have been evicted (LRU)")
	}
	if res, _ := c.Probe(0x200); !res {
		t.Fatal("C should be resident")
	}
}

func TestFlushRangeCoversStraddlingLines(t *testing.T) {
	c, ram := newTestCache(t, small())
	// Dirty three consecutive lines.
	c.Write32(0x20, 1)
	c.Write32(0x40, 2)
	c.Write32(0x60, 3)
	// Range [0x24, 0x64) straddles lines 0x20, 0x40, 0x60.
	lines, wbs := c.FlushRange(0x24, 0x40)
	if lines != 3 || wbs != 3 {
		t.Fatalf("FlushRange = (%d lines, %d wbs), want (3,3)", lines, wbs)
	}
	if ram.Read32(0x20) != 1 || ram.Read32(0x40) != 2 || ram.Read32(0x60) != 3 {
		t.Fatal("flush range lost data")
	}
}

func TestFlushRangeZeroSize(t *testing.T) {
	c, _ := newTestCache(t, small())
	if lines, wbs := c.FlushRange(0x20, 0); lines != 0 || wbs != 0 {
		t.Fatal("zero-size flush should do nothing")
	}
}

func TestFlushAll(t *testing.T) {
	c, ram := newTestCache(t, small())
	c.Write32(0x00, 1)
	c.Write32(0x20, 2)
	c.Read32(0x40)
	wbs := c.FlushAll()
	if wbs != 2 {
		t.Fatalf("FlushAll writebacks = %d, want 2", wbs)
	}
	if ram.Read32(0x00) != 1 || ram.Read32(0x20) != 2 {
		t.Fatal("FlushAll lost dirty data")
	}
	for _, a := range []mem.Addr{0x00, 0x20, 0x40} {
		if res, _ := c.Probe(a); res {
			t.Fatalf("line %#x still resident after FlushAll", a)
		}
	}
}

func TestStalenessIsObservable(t *testing.T) {
	// Two caches over one RAM: this is the incoherence the PMC runtime
	// must manage. Without flushes, cache B reads stale data.
	ram := mem.NewRAM(0, 4096)
	a := New(small(), ram)
	b := New(small(), ram)
	ram.Write32(0x40, 1)
	b.Read32(0x40) // B caches old value
	a.Write32(0x40, 2)
	a.FlushLine(0x40) // A publishes
	if v, _ := b.Read32(0x40); v != 1 {
		t.Fatalf("B should still see stale 1, got %d", v)
	}
	b.InvalidateLine(0x40) // B invalidates (entry protocol)
	if v, _ := b.Read32(0x40); v != 2 {
		t.Fatalf("after invalidate B should see 2, got %d", v)
	}
}

// Property: under any access pattern followed by FlushAll, the backing
// store equals what a plain RAM would hold after the same writes (the cache
// never loses or reorders committed data).
func TestCacheEquivalenceProperty(t *testing.T) {
	type op struct {
		Write bool
		Slot  uint8
		Val   uint32
	}
	prop := func(ops []op) bool {
		ram := mem.NewRAM(0, 8192)
		ref := mem.NewRAM(0, 8192)
		c := New(Config{Size: 128, Ways: 2, LineSize: 16}, ram) // tiny: lots of evictions
		for _, o := range ops {
			addr := mem.Addr(o.Slot) * 4
			if o.Write {
				c.Write32(addr, o.Val)
				ref.Write32(addr, o.Val)
			} else {
				got, _ := c.Read32(addr)
				if got != ref.Read32(addr) {
					return false
				}
			}
		}
		c.FlushAll()
		for s := 0; s < 256; s++ {
			a := mem.Addr(s) * 4
			if ram.Read32(a) != ref.Read32(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Probe never disturbs LRU or contents.
func TestProbeIsPure(t *testing.T) {
	prop := func(slots []uint8) bool {
		ram := mem.NewRAM(0, 8192)
		c := New(Config{Size: 128, Ways: 2, LineSize: 16}, ram)
		for _, s := range slots {
			c.Read32(mem.Addr(s) * 4)
		}
		before := c.Stats()
		for s := 0; s < 256; s++ {
			c.Probe(mem.Addr(s) * 4)
		}
		after := c.Stats()
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

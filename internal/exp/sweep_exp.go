package exp

import (
	"fmt"
	"io"

	"pmc/internal/noc"
	"pmc/internal/sweep"
)

// This file registers the scaling-sweep experiment: the three SPLASH-2
// substitutes swept across tile counts and NoC topologies on every backend
// of the acceptance matrix — the MemPool-style manycore characterization
// the paper's fixed 32-tile evaluation stops short of.

func init() {
	register(Experiment{
		ID:    "sweep-scaling",
		Title: "scaling sweep: SPLASH substitutes × backends × tiles × topology",
		Paper: "extends Fig. 8 beyond the fixed 32-tile point: backend rankings vs system size, ring vs mesh",
		Run:   runSweepScaling,
	})
}

// sweepBackends is the backend axis of the scaling sweep.
var sweepBackends = []string{"nocc", "swcc", "dsm", "spm"}

func runSweepScaling(w io.Writer, o Options) error {
	tiles := []int{2, 4, 8, 16, 32, 64}
	if !o.full() {
		tiles = []int{2, 4, 8}
	}
	topos := []noc.Topology{noc.TopoRing, noc.TopoMesh}
	spec := gridSpec(o, splashApps, sweepBackends, tiles)
	spec.Topos = topos
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}

	// Portability check across the whole grid: at fixed (app, tiles) every
	// backend and topology must agree on the checksum.
	for _, app := range splashApps {
		for _, t := range tiles {
			want := table.Find(app, sweepBackends[0], t, topos[0]).Checksum
			for _, b := range sweepBackends {
				for _, topo := range topos {
					if got := table.Find(app, b, t, topo).Checksum; got != want {
						return fmt.Errorf("sweep-scaling: %s@%dt on %s/%s checksum %#x != %#x",
							app, t, b, topo, got, want)
					}
				}
			}
		}
	}

	fmt.Fprintf(w, "%d cells: %v × %v × tiles%v × {ring, mesh}\n",
		len(table.Rows), splashApps, sweepBackends, tiles)
	for _, app := range splashApps {
		fmt.Fprintf(w, "\n--- %s ---\n", app)
		fmt.Fprintf(w, "makespan speedup over the %d-tile run of the same backend/topology:\n", tiles[0])
		fmt.Fprintf(w, "%-8s %-6s", "backend", "topo")
		for _, t := range tiles {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("%dt", t))
		}
		fmt.Fprintln(w)
		for _, b := range sweepBackends {
			for _, topo := range topos {
				fmt.Fprintf(w, "%-8s %-6s", b, topo)
				base := table.Find(app, b, tiles[0], topo).Cycles
				for _, t := range tiles {
					r := table.Find(app, b, t, topo)
					fmt.Fprintf(w, " %7.2fx", float64(base)/float64(r.Cycles))
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintln(w, "NoC flit-hops (link occupancy; mesh shortens routes, dsm pays broadcasts):")
		fmt.Fprintf(w, "%-8s %-6s", "backend", "topo")
		for _, t := range tiles {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("%dt", t))
		}
		fmt.Fprintln(w)
		for _, b := range sweepBackends {
			for _, topo := range topos {
				fmt.Fprintf(w, "%-8s %-6s", b, topo)
				for _, t := range tiles {
					fmt.Fprintf(w, " %8d", table.Find(app, b, t, topo).FlitHops)
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintln(w, "\nspeedup saturating (or regressing) with tiles shows each backend's scaling")
	fmt.Fprintln(w, "bottleneck: nocc saturates the shared bus first, swcc defers it, dsm trades")
	fmt.Fprintln(w, "bus pressure for NoC flit-hops, and the mesh relieves dsm at high tile counts.")
	return nil
}

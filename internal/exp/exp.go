// Package exp contains one runnable experiment per table and figure of the
// paper, plus the ablations DESIGN.md calls out. Every experiment writes a
// self-describing report (measured numbers next to the paper's reference
// values) so EXPERIMENTS.md can be regenerated from `pmcsim all`.
package exp

import (
	"fmt"
	"io"
	"sort"

	"pmc/internal/soc"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// Options selects the experiment scale.
type Options struct {
	// Tiles is the system size; 0 means the experiment's default (the
	// paper's 32 for the case studies).
	Tiles int
	// Scale is "small" (CI/test-sized) or "full" (paper-sized; also the
	// empty string).
	Scale string
	// Workers caps concurrent simulations in sweep-backed experiments:
	// 0 means GOMAXPROCS, 1 is sequential. Results are identical either
	// way.
	Workers int
}

// scaleNames are the accepted Options.Scale values ("" meaning full).
var scaleNames = []string{"small", "full"}

// validate rejects unknown scale names: "full" used to be the silent
// fallback for any string, so a typo like "smalll" ran the expensive
// paper-scale configuration.
func (o Options) validate() error {
	switch o.Scale {
	case "", "small", "full":
		return nil
	}
	return fmt.Errorf("exp: unknown scale %q (valid: %v)", o.Scale, scaleNames)
}

func (o Options) full() bool { return o.Scale != "small" }

func (o Options) tiles(def int) int {
	if o.Tiles > 0 {
		return o.Tiles
	}
	return def
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	Run   func(w io.Writer, o Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// sysConfig builds the simulated system configuration for an experiment.
func sysConfig(tiles int) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Tiles = tiles
	return cfg
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
	if e.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", e.Paper)
	}
	fmt.Fprintln(w)
}

// RunByID runs one experiment, printing its banner first.
func RunByID(w io.Writer, id string, o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	e, ok := ByID(id)
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	header(w, e)
	return e.Run(w, o)
}

// RunAll runs every experiment in registration order.
func RunAll(w io.Writer, o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	for _, e := range registry {
		header(w, e)
		if err := e.Run(w, o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// splashApps are the three SPLASH-2 substitutes of Fig. 8.
var splashApps = []string{"radiosity", "raytrace", "volrend"}

// makeScaled is the sweep app factory honoring the experiment scale.
func makeScaled(o Options) func(sweep.Cell) (workloads.App, error) {
	return func(c sweep.Cell) (workloads.App, error) {
		app, ok := workloads.Scaled(c.App, !o.full())
		if !ok {
			return nil, fmt.Errorf("unknown app %q", c.App)
		}
		return app, nil
	}
}

// gridSpec starts a sweep over the experiment system template. Callers
// override Make for workloads needing per-cell parameters.
func gridSpec(o Options, apps, backends []string, tiles []int) sweep.Spec {
	base := soc.DefaultConfig()
	return sweep.Spec{
		Apps:     apps,
		Backends: backends,
		Tiles:    tiles,
		Base:     &base,
		Make:     makeScaled(o),
		Workers:  o.Workers,
	}
}

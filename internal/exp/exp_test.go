package exp

import (
	"bytes"
	"strings"
	"testing"
)

// small runs an experiment at small scale and returns its output.
func small(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RunByID(&buf, id, Options{Scale: "small", Tiles: 4}); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-locks", "ablation-release", "ablation-scaling", "ablation-dcache", "ablation-granularity",
		"ablation-explorer", "bulk-ablation", "mixed-ablation",
		"ext-stencil", "ext-pc", "ext-scoped-fence", "ext-mesh", "ext-conformance",
		"sweep-scaling", "sweep-clusters", "sweep-services", "fuzz", "spec-ablation",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByID(&buf, "nope", Options{}); err == nil {
		t.Fatal("unknown id not rejected")
	}
}

// TestScaleValidated is the regression test for the silent scale fallback:
// every string except "small" used to mean full paper scale, so a typo like
// "smalll" silently ran the expensive configuration.
func TestScaleValidated(t *testing.T) {
	var buf bytes.Buffer
	for _, bad := range []string{"smalll", "SMALL", "tiny", "paper"} {
		if err := RunByID(&buf, "table1", Options{Scale: bad}); err == nil {
			t.Errorf("scale %q not rejected by RunByID", bad)
		} else if !strings.Contains(err.Error(), "small") {
			t.Errorf("error for %q does not list valid values: %v", bad, err)
		}
		if err := RunAll(&buf, Options{Scale: bad}); err == nil {
			t.Errorf("scale %q not rejected by RunAll", bad)
		}
	}
	for _, good := range []string{"", "small", "full"} {
		if err := RunByID(&buf, "table1", Options{Scale: good}); err != nil {
			t.Errorf("valid scale %q rejected: %v", good, err)
		}
	}
}

func TestSweepScalingSmall(t *testing.T) {
	out := small(t, "sweep-scaling")
	for _, want := range []string{"radiosity", "raytrace", "volrend", "nocc", "swcc", "dsm", "spm",
		"mesh", "ring", "flit-hops", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep-scaling missing %q in:\n%s", want, out)
		}
	}
}

// TestSweepClustersSmall: the cluster-scaling grid completes at CI size, the
// checksum-portability assertion inside the experiment holds (a failure
// surfaces as an experiment error), and the report includes the 1024-tile
// smoke cell plus the hierarchical flit-hop split.
func TestSweepClustersSmall(t *testing.T) {
	out := small(t, "sweep-clusters")
	for _, want := range []string{"radiosity", "nocc", "dsm", "cdsm", "cspm",
		"cluster:8xring", "cluster:16xmesh", "1024-tile smoke", "local/global", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep-clusters missing %q in:\n%s", want, out)
		}
	}
}

// TestSweepServicesSmall: the open-loop service grid completes at CI size.
// The experiment itself asserts full-request completion, cross-cell checksum
// portability, and byte-identical emission across worker counts and event
// queues — any violation surfaces here as an experiment error. The report
// must carry the latency tables for all three scenarios on both shapes.
func TestSweepServicesSmall(t *testing.T) {
	out := small(t, "sweep-services")
	for _, want := range []string{"server", "kvstore", "stream",
		"nocc", "dsm", "adaptive", "cdsm", "cluster:4xring",
		"p50/p99", "byte-identically", "req/kcycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep-services missing %q in:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	out := small(t, "table1")
	for _, want := range []string{"≺S†", "fence", "acquire"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig1(t *testing.T) {
	out := small(t, "fig1")
	if !strings.Contains(out, "stale outcome observable") {
		t.Fatalf("fig1 must demonstrate the broken outcome:\n%s", out)
	}
	if !strings.Contains(out, "fig1-volatile-fences") {
		t.Fatal("fig1 must include the volatile/fence variant")
	}
}

func TestFigGraphs(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5"} {
		out := small(t, id)
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "≺P") {
			t.Errorf("%s output lacks graph content:\n%s", id, out)
		}
	}
	// Fig 5's graph must contain the ≺S handoff and fence edges.
	out := small(t, "fig5")
	for _, want := range []string{"≺S", "≺F", "readable at process 2's read of X: [42]"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestFig6(t *testing.T) {
	out := small(t, "fig6")
	if !strings.Contains(out, "poll=1 rX=42") {
		t.Fatalf("fig6 must show the unique annotated outcome:\n%s", out)
	}
	if strings.Contains(out, "WRONG") {
		t.Fatalf("a backend failed message passing:\n%s", out)
	}
	for _, backend := range []string{"nocc", "swcc", "swcc-lazy", "dsm", "spm"} {
		if !strings.Contains(out, backend) {
			t.Errorf("fig6 matrix missing backend %s", backend)
		}
	}
}

func TestTable2(t *testing.T) {
	out := small(t, "table2")
	for _, want := range []string{"entry_x", "exit_ro", "flush", "broadcast", "42 ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	out := small(t, "fig7")
	for _, want := range []string{"write-only", "dual-port", "distributed"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFig8SmallScale(t *testing.T) {
	out := small(t, "fig8")
	for _, want := range []string{"radiosity", "raytrace", "volrend", "average improvement", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q in:\n%s", want, out)
		}
	}
	// The report must show a positive average improvement.
	if strings.Contains(out, "average improvement: -") {
		t.Fatalf("SWCC regressed on average:\n%s", out)
	}
}

func TestFig9SmallScale(t *testing.T) {
	out := small(t, "fig9")
	if strings.Contains(out, "NO DATA") {
		t.Fatalf("fifo produced no data:\n%s", out)
	}
	for _, backend := range []string{"nocc", "swcc", "dsm", "spm"} {
		if !strings.Contains(out, backend) {
			t.Errorf("fig9 missing backend %s", backend)
		}
	}
}

func TestFig10SmallScale(t *testing.T) {
	out := small(t, "fig10")
	if !strings.Contains(out, "spm") || !strings.Contains(out, "swcc") {
		t.Fatalf("fig10 missing backends:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation-locks", "ablation-release", "ablation-scaling",
		"ablation-dcache", "ablation-granularity", "ablation-explorer",
		"ext-stencil", "ext-pc", "ext-scoped-fence", "ext-mesh", "ext-conformance"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out := small(t, id)
			if len(out) < 100 {
				t.Fatalf("suspiciously short report:\n%s", out)
			}
		})
	}
}

// TestFuzzExpSmall: the fuzz experiment must show clean healthy campaigns
// in every mode and a caught, shrunk fault-injection counterexample.
func TestFuzzExpSmall(t *testing.T) {
	out := small(t, "fuzz")
	for _, want := range []string{
		"drf:", "racy:", "mixed:", "0 violations, 0 run errors",
		"release-without-flush", "shrunk", "entry_x(", "exit_x(",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fuzz experiment missing %q in:\n%s", want, out)
		}
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{Scale: "small", Tiles: 4}); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "=== "); n != len(All()) {
		t.Fatalf("RunAll printed %d banners, want %d", n, len(All()))
	}
}

// TestSpecAblation: the spec-ablation experiment shows platform-size
// independence, the symmetry collapse, and the injected-fault detection
// line, and exits clean at small scale.
func TestSpecAblation(t *testing.T) {
	out := small(t, "spec-ablation")
	for _, want := range []string{
		"work@32==work@1024", "iriw-sym3", "fault detection", "divergences",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("spec-ablation output lacks %q:\n%s", want, out)
		}
	}
}

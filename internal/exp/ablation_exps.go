package exp

import (
	"fmt"
	"io"

	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/soc"
	"pmc/internal/stats"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// This file registers the ablations DESIGN.md §7 calls out — design
// choices the paper makes implicitly, quantified.

func init() {
	register(Experiment{
		ID:    "ablation-locks",
		Title: "distributed asymmetric lock vs centralized TAS over SDRAM",
		Paper: "ref [15]: waiters spin on local memory; centralized spinning loads the shared bus",
		Run:   runAblationLocks,
	})
	register(Experiment{
		ID:    "ablation-release",
		Title: "eager vs lazy release (exit_x flush policy)",
		Paper: "Section V-A: exit_x may keep modifications local until another process acquires",
		Run:   runAblationRelease,
	})
	register(Experiment{
		ID:    "ablation-scaling",
		Title: "core-count scaling of noCC vs SWCC",
		Paper: "hardware coherency limits scalability (Section VI-A); SWCC's advantage grows with cores",
		Run:   runAblationScaling,
	})
	register(Experiment{
		ID:    "ablation-dcache",
		Title: "D-cache capacity sweep under SWCC vs SPM",
		Paper: "the SPM advantage is protocol (copy once, concurrent readers), not capacity",
		Run:   runAblationDCache,
	})
	register(Experiment{
		ID:    "ablation-granularity",
		Title: "annotation granularity: one scope over many words vs one scope per word",
		Paper: "a single acquire/release pair can contain multiple writes (Section IV-D)",
		Run:   runAblationGranularity,
	})
	register(Experiment{
		ID:    "bulk-ablation",
		Title: "transfer granularity: v1 word loops vs v2 ranged block transfers",
		Paper: "the runtime layer is block-oriented (staging, write sets, line flushes); the access API should be too",
		Run:   runBulkAblation,
	})
}

func runAblationLocks(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	iters := 200
	if !o.full() {
		iters = 40
	}
	fmt.Fprintf(w, "%-13s %10s %12s %12s\n", "locks", "cycles", "bus grants", "noc msgs")
	for _, kind := range []soc.LockKind{soc.LockDistributed, soc.LockCentralized} {
		cfg := sysConfig(tiles)
		cfg.Locks = kind
		app := workloads.DefaultReacquire()
		app.Iters = iters
		app.CrossEvery = 4 // heavy cross-tile contention
		sys, err := soc.New(cfg)
		if err != nil {
			return err
		}
		r := rt.New(sys, rt.SWCC())
		app.Setup(r, tiles)
		for t := 0; t < tiles; t++ {
			t := t
			r.Spawn(t, "w", func(c *rt.Ctx) { app.Worker(c, t, tiles) })
		}
		if err := r.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-13s %10d %12d %12d\n",
			kind, sys.K.Now(), sys.SDRAM.Grants(), sys.Net.Stats().Messages)
	}
	fmt.Fprintln(w, "\ncentralized TAS spinning occupies the shared bus that all data accesses need;")
	fmt.Fprintln(w, "the distributed lock keeps waiting local and pays only per-handoff messages.")
	return nil
}

func runAblationRelease(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	// makeScaled shrinks Reacquire to the CI iteration count at small scale.
	table, err := sweep.Run(gridSpec(o, []string{"reacquire"}, []string{"swcc", "swcc-lazy"}, []int{tiles}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %10s %12s %10s\n", "policy", "cycles", "flushes", "writebacks", "checksum")
	for _, r := range table.Rows {
		fmt.Fprintf(w, "%-10s %10d %10d %12d %#10x\n",
			r.Backend, r.Cycles, r.FlushInstrs, r.FlushStall, r.Checksum)
	}
	if table.Rows[0].Checksum != table.Rows[1].Checksum {
		return fmt.Errorf("ablation-release: checksums differ — lazy release lost data")
	}
	fmt.Fprintf(w, "\nlazy release wins %.1f%% on this re-acquire-heavy pattern: data stays cached\n",
		stats.Speedup(table.Rows[0].Result.Cycles, table.Rows[1].Result.Cycles))
	fmt.Fprintln(w, "across scopes of the same tile and is flushed only on real ownership transfer.")
	return nil
}

func runAblationScaling(w io.Writer, o Options) error {
	counts := []int{1, 2, 4, 8, 16, 32}
	if !o.full() {
		counts = []int{1, 4, 8}
	}
	spec := gridSpec(o, []string{"raytrace"}, []string{"nocc", "swcc"}, counts)
	spec.Make = func(c sweep.Cell) (workloads.App, error) {
		// Work grows with the tile count (weak scaling): the per-core
		// share stays constant while bus contention grows.
		ray := workloads.DefaultRaytrace()
		ray.Cells, ray.Rays, ray.StepsPerRay = 48, 16*c.Tiles, 4
		return ray, nil
	}
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %12s %12s %10s\n", "tiles", "nocc cycles", "swcc cycles", "swcc gain")
	for _, tiles := range counts {
		no := table.Find("raytrace", "nocc", tiles, noc.TopoRing)
		sw := table.Find("raytrace", "swcc", tiles, noc.TopoRing)
		fmt.Fprintf(w, "%-6d %12d %12d %9.1f%%\n",
			tiles, no.Cycles, sw.Cycles, 100*(1-float64(sw.Cycles)/float64(no.Cycles)))
	}
	fmt.Fprintln(w, "\nuncached shared reads all contend on the single bus, so the noCC penalty")
	fmt.Fprintln(w, "grows with the core count while SWCC converts them into per-scope line fills.")
	return nil
}

func runAblationDCache(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	me := workloads.DefaultMotionEst()
	if !o.full() {
		me.BlocksX, me.BlocksY = 4, 2
	}
	fmt.Fprintf(w, "%-22s %10s\n", "configuration", "cycles")
	for _, kib := range []int{2, 8, 32} {
		cfg := sysConfig(tiles)
		cfg.DCache.Size = kib * 1024
		m := *me
		res, err := workloads.Run(&m, cfg, "swcc")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "swcc, %2d KiB D-cache   %10d\n", kib, res.Cycles)
	}
	m := *me
	res, err := workloads.Run(&m, sysConfig(tiles), "spm")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %10d\n", "spm", res.Cycles)
	fmt.Fprintln(w, "\ngrowing the cache does not close the gap: SWCC still serializes read-only")
	fmt.Fprintln(w, "scopes on the object lock and re-fills after every exit_ro invalidation.")
	return nil
}

// runBulkAblation sweeps the transfer granularity of the bulkcopy stream
// kernel — 1 word (the v1 Read32/Write32 loop) up to whole-object ranged
// transfers — across all four backends. Identical data movement at every
// granularity (the grid-wide checksum assertion), different sim-cycles:
// the block path must win on DSM and SPM, whose local-memory DMA overlaps
// the read and write ports.
func runBulkAblation(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	grans := []int{1, 2, 4, 8, 16, 32, 64}
	slotWords := 64
	if !o.full() {
		grans = []int{1, 4, 32}
		slotWords = 32
	}
	backends := []string{"nocc", "swcc", "dsm", "spm"}
	apps := make([]string, len(grans))
	for i, g := range grans {
		apps[i] = fmt.Sprintf("bulk-g%d", g)
	}
	spec := gridSpec(o, apps, backends, []int{tiles})
	spec.Make = func(c sweep.Cell) (workloads.App, error) {
		var g int
		if _, err := fmt.Sscanf(c.App, "bulk-g%d", &g); err != nil {
			return nil, fmt.Errorf("bulk-ablation: bad cell app %q: %w", c.App, err)
		}
		b := workloads.DefaultBulkCopy()
		b.SlotWords = slotWords
		if !o.full() {
			b.Rounds = 2
		}
		b.Chunk = g
		return b, nil
	}
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cycles by transfer granularity (words per operation), %d tiles, %d-word objects:\n\n", tiles, slotWords)
	fmt.Fprintf(w, "%-10s", "gran")
	for _, b := range backends {
		fmt.Fprintf(w, " %10s", b)
	}
	fmt.Fprintln(w)
	var checksum uint32
	for i, g := range grans {
		fmt.Fprintf(w, "%-10d", g)
		for _, b := range backends {
			r := table.Find(apps[i], b, tiles, noc.TopoRing)
			if r == nil {
				return fmt.Errorf("bulk-ablation: missing cell %s/%s", apps[i], b)
			}
			if r.Err != "" {
				return fmt.Errorf("bulk-ablation: %s/%s: %s", apps[i], b, r.Err)
			}
			if i == 0 && b == backends[0] {
				checksum = r.Checksum
			} else if r.Checksum != checksum {
				return fmt.Errorf("bulk-ablation: checksum diverged at %s/%s: %#x != %#x — a granularity changed the computation",
					apps[i], b, r.Checksum, checksum)
			}
			fmt.Fprintf(w, " %10d", r.Cycles)
		}
		fmt.Fprintln(w)
	}
	// The acceptance assertion: whole-object transfers beat word loops on
	// the local-memory backends.
	wordApp, blockApp := apps[0], apps[len(apps)-1]
	for _, b := range []string{"dsm", "spm"} {
		word := table.Find(wordApp, b, tiles, noc.TopoRing)
		block := table.Find(blockApp, b, tiles, noc.TopoRing)
		if block.Cycles >= word.Cycles {
			return fmt.Errorf("bulk-ablation: block transfers (%d cycles) do not beat word loops (%d) on %s",
				block.Cycles, word.Cycles, b)
		}
		fmt.Fprintf(w, "\n%s: block transfers win %.1f%% over word loops", b,
			100*(1-float64(block.Cycles)/float64(word.Cycles)))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "\nevery granularity moves identical data (checksums equal grid-wide); the cycle")
	fmt.Fprintln(w, "deltas are pure transfer mechanics: burst line fills and full-line installs on")
	fmt.Fprintln(w, "swcc, overlapped dual-port DMA on dsm/spm. spm's margin comes entirely from the")
	fmt.Fprintln(w, "in-scope copies: entry/exit staging already moves the whole object as one burst")
	fmt.Fprintln(w, "at every granularity, so it shrinks as scope overhead grows with scale.")
	return nil
}

// runAblationGranularity compares one entry/exit pair around a batch of
// updates against one pair per word.
func runAblationGranularity(w io.Writer, o Options) error {
	tiles := o.tiles(4)
	words := 16
	iters := 24
	if o.full() {
		iters = 96
	}
	run := func(fine bool) (uint64, error) {
		sys, err := soc.New(sysConfig(tiles))
		if err != nil {
			return 0, err
		}
		r := rt.New(sys, rt.SWCC())
		objs := make([]*rt.Object, tiles)
		for i := range objs {
			objs[i] = r.Alloc(fmt.Sprintf("arr%d", i), words*4)
		}
		for t := 0; t < tiles; t++ {
			t := t
			r.Spawn(t, "w", func(c *rt.Ctx) {
				c.SetCodeFootprint(1024)
				o := objs[t]
				for i := 0; i < iters; i++ {
					if fine {
						for wd := 0; wd < words; wd++ {
							c.EntryX(o)
							c.Write32(o, 4*wd, c.Read32(o, 4*wd)+1)
							c.ExitX(o)
						}
					} else {
						c.EntryX(o)
						for wd := 0; wd < words; wd++ {
							c.Write32(o, 4*wd, c.Read32(o, 4*wd)+1)
						}
						c.ExitX(o)
					}
					c.Compute(30)
				}
			})
		}
		if err := r.Run(); err != nil {
			return 0, err
		}
		return uint64(sys.K.Now()), nil
	}
	coarse, err := run(false)
	if err != nil {
		return err
	}
	fine, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "one scope per batch of %d words: %10d cycles\n", words, coarse)
	fmt.Fprintf(w, "one scope per word:             %10d cycles (%.1fx)\n", fine, float64(fine)/float64(coarse))
	fmt.Fprintln(w, "\nscopes amortize the lock round-trip and the exit flush over many accesses —")
	fmt.Fprintln(w, "the reason the model allows multiple writes per acquire/release pair.")
	return nil
}

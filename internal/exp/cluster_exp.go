package exp

import (
	"fmt"
	"io"

	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/soc"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// This file registers the cluster-scaling experiment: the hierarchical
// (clustered) platform swept to 1024 tiles, comparing the flat backends
// against their cluster-aware variants. The paper's evaluation stops at 32
// tiles on a flat NoC; this measures what the same annotated program does
// when the platform grows two orders of magnitude and gains a cluster
// level.

func init() {
	register(Experiment{
		ID:    "sweep-clusters",
		Title: "cluster scaling: hierarchical platform to 1024 tiles, flat vs cluster-aware backends",
		Paper: "extends the 32-tile flat evaluation: cluster topologies, per-cluster memory, dsm/spm vs cdsm/cspm",
		Run:   runSweepClusters,
	})
}

// clusterBackends compares each flat backend with its cluster-aware
// variant on the same hierarchical topology.
var clusterBackends = []string{"nocc", "dsm", "cdsm", "cspm"}

// clusterShapes are the swept cluster topologies (tiles-per-cluster ×
// backbone kind).
var clusterShapes = []string{"cluster:8xring", "cluster:16xmesh"}

func runSweepClusters(w io.Writer, o Options) error {
	tiles := []int{64, 256, 1024}
	if !o.full() {
		tiles = []int{64, 256}
	}
	topos := make([]noc.Topology, len(clusterShapes))
	for i, s := range clusterShapes {
		t, err := noc.ParseTopology(s)
		if err != nil {
			return err
		}
		topos[i] = t
	}
	const app = "radiosity"
	spec := gridSpec(o, []string{app}, clusterBackends, tiles)
	spec.Topos = topos
	// The default 32 MiB SDRAM map stops fitting per-tile private heaps
	// beyond 48 tiles; scale it with the largest system in the grid.
	spec.Base.SDRAMBytes = rt.MinSDRAMBytes(1024)
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}

	// Portability check across the whole grid: at fixed tile count every
	// backend and cluster shape must agree on the checksum.
	for _, tl := range tiles {
		want := table.Find(app, clusterBackends[0], tl, topos[0]).Checksum
		for _, b := range clusterBackends {
			for _, topo := range topos {
				if got := table.Find(app, b, tl, topo).Checksum; got != want {
					return fmt.Errorf("sweep-clusters: %s@%dt on %s/%s checksum %#x != %#x",
						app, tl, b, topo, got, want)
				}
			}
		}
	}

	fmt.Fprintf(w, "%d cells: %s × %v × tiles%v × %v\n",
		len(table.Rows), app, clusterBackends, tiles, clusterShapes)
	fmt.Fprintf(w, "\nmakespan speedup over the %d-tile run of the same backend/shape:\n", tiles[0])
	fmt.Fprintf(w, "%-8s %-16s", "backend", "shape")
	for _, tl := range tiles {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%dt", tl))
	}
	fmt.Fprintln(w)
	for _, b := range clusterBackends {
		for _, topo := range topos {
			fmt.Fprintf(w, "%-8s %-16s", b, topo)
			base := table.Find(app, b, tiles[0], topo).Cycles
			for _, tl := range tiles {
				r := table.Find(app, b, tl, topo)
				fmt.Fprintf(w, " %7.2fx", float64(base)/float64(r.Cycles))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nNoC flit-hops, split local crossbar / global backbone (cluster-aware")
	fmt.Fprintln(w, "backends keep coherence traffic off the backbone):")
	fmt.Fprintf(w, "%-8s %-16s", "backend", "shape")
	for _, tl := range tiles {
		fmt.Fprintf(w, " %19s", fmt.Sprintf("%dt local/global", tl))
	}
	fmt.Fprintln(w)
	for _, b := range clusterBackends {
		for _, topo := range topos {
			fmt.Fprintf(w, "%-8s %-16s", b, topo)
			for _, tl := range tiles {
				r := table.Find(app, b, tl, topo)
				var lo, gl uint64
				if r.Result != nil {
					lo, gl = r.Result.LocalFlitHops, r.Result.GlobalFlitHops
				}
				fmt.Fprintf(w, " %11d/%7d", lo, gl)
			}
			fmt.Fprintln(w)
		}
	}

	// The 1024-tile point: at small scale the grid stops at 256 tiles to
	// stay CI-sized, so run the kilotile system as a dedicated cell pair
	// (cluster-aware backends only — a flat dsm flush at 1024 tiles fans
	// to 1023 replicas) and hold them to the same portability bar.
	if !o.full() {
		fmt.Fprintln(w, "\n1024-tile smoke (cluster:32xmesh):")
		topo, err := noc.ParseTopology("cluster:32xmesh")
		if err != nil {
			return err
		}
		var want uint32
		for i, b := range []string{"cdsm", "cspm"} {
			cfg := soc.DefaultConfig()
			cfg.Tiles = 1024
			cfg.SDRAMBytes = rt.MinSDRAMBytes(1024)
			cfg.NoC.Topology = topo
			a, _ := workloads.Scaled(app, true)
			res, err := workloads.Run(a, cfg, b)
			if err != nil {
				return fmt.Errorf("sweep-clusters: 1024t %s: %w", b, err)
			}
			fmt.Fprintf(w, "  %-5s %12d cycles, flit-hops %d local / %d global, checksum %#x\n",
				b, res.Cycles, res.LocalFlitHops, res.GlobalFlitHops, res.Checksum)
			if i == 0 {
				want = res.Checksum
			} else if res.Checksum != want {
				return fmt.Errorf("sweep-clusters: 1024t checksum %#x != %#x", res.Checksum, want)
			}
		}
	}

	fmt.Fprintln(w, "\ncdsm turns dsm's per-tile replica broadcasts into per-cluster ones (the fan")
	fmt.Fprintln(w, "degree drops from tiles to clusters) and cspm stages scopes in the shared")
	fmt.Fprintln(w, "cluster scratch; the local/global split shows how much coherence traffic the")
	fmt.Fprintln(w, "hierarchy keeps off the backbone as the tile count grows.")
	return nil
}

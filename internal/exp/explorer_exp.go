package exp

import (
	"fmt"
	"io"
	"time"

	"pmc/internal/litmus"
)

// This file registers the litmus-explorer engine ablation: the model
// checker is the tool behind Fig. 1, Figs. 5/6 and the SC-simulation
// claim, and its scalability is what bounds the programs the reproduction
// can verify. The ablation quantifies what canonical-state memoization and
// the worker pool buy over plain tree enumeration, and double-checks that
// all engines agree outcome for outcome.

func init() {
	register(Experiment{
		ID:    "ablation-explorer",
		Title: "litmus exploration: tree enumeration vs memoized vs parallel",
		Paper: "the model 'can be verified with relative ease' (Section I) — only if exploration scales past toy interleaving counts",
		Run:   runAblationExplorer,
	})
}

func runAblationExplorer(w io.Writer, o Options) error {
	modes := []struct {
		name    string
		workers int
		memoize bool
	}{
		{"tree", 1, false},
		{"memoized", 1, true},
		{"parallel", 0, true},
	}
	progs := []litmus.Program{litmus.StoreBufferingDRF(), litmus.WRCDRF()}
	if o.full() {
		progs = append(progs, litmus.StressIndependent())
	}
	fmt.Fprintf(w, "%-20s %-10s %12s %12s %10s\n", "program", "engine", "states", "paths", "time")
	for _, p := range progs {
		var ref *litmus.Result
		for _, m := range modes {
			// Tree enumeration cannot finish the stress program: its
			// ~2e8 interleaving paths are the reason the memoizing
			// engine exists. Report that instead of burning minutes.
			if p.Name == "stress-independent" && !m.memoize {
				fmt.Fprintf(w, "%-20s %-10s %12s %12s %10s\n", p.Name, m.name, "-", "-", "exceeds budget")
				continue
			}
			x := litmus.NewExplorer(p)
			x.Workers, x.Memoize = m.workers, m.memoize
			start := time.Now()
			res, err := x.Run()
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Round(10 * time.Microsecond)
			paths := 0
			for _, n := range res.Outcomes {
				paths += n
			}
			paths += res.Stuck
			fmt.Fprintf(w, "%-20s %-10s %12d %12d %10s\n", p.Name, m.name, res.States, paths, elapsed)
			if ref == nil {
				ref = res
			} else if fmt.Sprint(res.Outcomes) != fmt.Sprint(ref.Outcomes) || res.Stuck != ref.Stuck {
				return fmt.Errorf("engine %s disagrees on %s: %v (stuck %d) vs %v (stuck %d)",
					m.name, p.Name, res.Outcomes, res.Stuck, ref.Outcomes, ref.Stuck)
			}
		}
	}
	fmt.Fprintln(w, "\nall engines agree outcome-for-outcome; memoization collapses states, workers split the frontier")
	return nil
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/core"
	"pmc/internal/litmus"
)

// This file registers the model-level artifacts: Table I, the dependency
// graphs of Figs. 2-5, and the litmus results for Figs. 1 and 6.

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "ordering rules between existing and new operations",
		Paper: "17 populated cells; acquire takes ≺S from releases of any process",
		Run: func(w io.Writer, o Options) error {
			fmt.Fprint(w, core.RenderTableI())
			return nil
		},
	})
	register(Experiment{
		ID:    "fig1",
		Title: "SC-correct program breaks without synchronization on X",
		Paper: "process 2 can read the old value of X even after seeing flag=1; fences/volatile do not help",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "program order of two writes",
		Paper: "init ≺P X=1 ≺P X=2 (transitively reduced)",
		Run: func(w io.Writer, o Options) error {
			e := core.NewExecution()
			x := e.AddLoc("X")
			e.Exec(core.KWrite, 0, x, 1, "line 1: X=1")
			e.Exec(core.KWrite, 0, x, 2, "line 2: X=2")
			return printGraph(w, e, "fig2")
		},
	})
	register(Experiment{
		ID:    "fig3",
		Title: "local order of a read",
		Paper: "X=1 ≺l read ≺l X=2; the read can only return 1",
		Run: func(w io.Writer, o Options) error {
			e := core.NewExecution()
			x := e.AddLoc("X")
			e.Exec(core.KWrite, 0, x, 1, "line 1: X=1")
			rd := e.Exec(core.KRead, 0, x, 1, "line 2: X?")
			fmt.Fprintf(w, "readable at the read: %v\n\n", e.ReadableValues(rd.ID))
			e.Exec(core.KWrite, 0, x, 2, "line 3: X=2")
			return printGraph(w, e, "fig3")
		},
	})
	register(Experiment{
		ID:    "fig4",
		Title: "exclusive access with two processes",
		Paper: "every observer agrees on the interleaving; process 1 reads 2",
		Run: func(w io.Writer, o Options) error {
			e := core.NewExecution()
			x := e.AddLoc("X")
			e.Exec(core.KAcquire, 2, x, 0, "line 4: acq X")
			e.Exec(core.KWrite, 2, x, 1, "line 5: X=1")
			e.Exec(core.KWrite, 2, x, 2, "line 6: X=2")
			e.Exec(core.KRelease, 2, x, 0, "line 7: rel X")
			e.Exec(core.KAcquire, 1, x, 0, "line 1: acq X")
			rd := e.Exec(core.KRead, 1, x, 2, "line 2: X?")
			e.Exec(core.KRelease, 1, x, 0, "line 3: rel X")
			fmt.Fprintf(w, "readable at process 1's read: %v\n\n", e.ReadableValues(rd.ID))
			return printGraph(w, e, "fig4")
		},
	})
	register(Experiment{
		ID:    "fig5",
		Title: "multi-core communication example (dependency graph)",
		Paper: "the chain X=42 ≺P rel X ≺S acq X guarantees process 2 reads 42",
		Run: func(w io.Writer, o Options) error {
			e := core.NewExecution()
			x := e.AddLoc("X")
			f := e.AddLoc("f")
			e.Exec(core.KAcquire, 1, x, 0, "line 1: acq X")
			e.Exec(core.KWrite, 1, x, 42, "line 2: X=42")
			e.Exec(core.KFence, 1, core.NoLoc, 0, "line 3: fence")
			e.Exec(core.KRelease, 1, x, 0, "line 4: rel X")
			e.Exec(core.KAcquire, 1, f, 0, "line 6: acq f")
			e.Exec(core.KWrite, 1, f, 1, "line 7: f=1")
			e.Exec(core.KRelease, 1, f, 0, "line 8: rel f")
			e.Exec(core.KRead, 2, f, 1, "line 9: f?")
			e.Exec(core.KFence, 2, core.NoLoc, 0, "line 11: fence")
			e.Exec(core.KAcquire, 2, x, 0, "line 13: acq X")
			rd := e.Exec(core.KRead, 2, x, 42, "line 14: X?")
			e.Exec(core.KRelease, 2, x, 0, "line 15: rel X")
			fmt.Fprintf(w, "readable at process 2's read of X: %v\n\n", e.ReadableValues(rd.ID))
			return printGraph(w, e, "fig5")
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "annotated program: exhaustive outcomes",
		Paper: "with entry/exit, fence and flush in place the only outcome is rX=42",
		Run:   runFig6,
	})
}

func printGraph(w io.Writer, e *core.Execution, name string) error {
	fmt.Fprintln(w, "transitively reduced orderings:")
	for _, ed := range e.ReducedEdges() {
		from, to := e.Op(ed.From), e.Op(ed.To)
		fl, tl := from.Label, to.Label
		if fl == "" {
			fl = from.String()
		}
		if tl == "" {
			tl = to.String()
		}
		fmt.Fprintf(w, "  %-16s %s  %s\n", fl, ed.Ord, tl)
	}
	fmt.Fprintln(w, "\nDOT:")
	fmt.Fprint(w, e.DOT(name))
	return nil
}

func runFig1(w io.Writer, o Options) error {
	for _, prog := range []litmus.Program{litmus.Fig1Unsynchronized(), litmus.Fig1Volatile()} {
		res, err := litmus.Explore(prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s outcomes:\n%s", prog.Name, res)
		if res.HasOutcome("rX=0") {
			fmt.Fprintf(w, "  -> stale outcome observable: the program is broken, as the paper argues\n")
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig6(w io.Writer, o Options) error {
	for _, prog := range []litmus.Program{litmus.Fig5Annotated(), litmus.Fig5NoAcquire()} {
		res, err := litmus.Explore(prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s outcomes (%d states explored):\n%s\n", prog.Name, res.States, res)
	}
	fmt.Fprintln(w, "portability check: the annotated program on every backend of Table II:")
	return runMsgPassMatrix(w, o)
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/conform"
	"pmc/internal/litmus"
	"pmc/internal/rt"
	"pmc/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "ext-conformance",
		Title: "implementation conformance: litmus programs on every backend vs the model",
		Paper: "Section I: 'a mapping of the primitives and ordering relations to specific hardware can be designed and verified with relative ease'",
		Run:   runConformance,
	})
}

func runConformance(w io.Writer, o Options) error {
	runs := 10
	if !o.full() {
		runs = 4
	}
	progs := []string{
		"fig1-unsynchronized", "fig5-annotated", "fig5-no-acquire",
		"fig5-scoped-fence", "sb-bare", "sb-drf", "corr", "mutex-counter", "lb", "wrc-drf",
	}
	// Every (program, backend) cell is an independent deterministic check;
	// run the whole matrix on the sweep worker pool and render in order.
	reports := make([]*conform.Report, len(progs)*len(rt.Backends))
	err := sweep.Each(len(reports), o.Workers, func(i int) error {
		name := progs[i/len(rt.Backends)]
		backend := rt.Backends[i%len(rt.Backends)]
		prog, ok := litmus.ByName(name)
		if !ok {
			return fmt.Errorf("program %s missing", name)
		}
		rep, err := conform.Check(prog, backend, 4, runs)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s", "program \\ backend")
	for _, b := range rt.Backends {
		fmt.Fprintf(w, " %-10s", b)
	}
	fmt.Fprintln(w)
	total, bad := 0, 0
	for i, rep := range reports {
		if i%len(rt.Backends) == 0 {
			fmt.Fprintf(w, "%-22s", rep.Program)
		}
		total++
		cell := fmt.Sprintf("%d/%d ok", len(rep.Observed), len(rep.Allowed))
		if !rep.Ok() {
			cell = "VIOLATION"
			bad++
		}
		fmt.Fprintf(w, " %-10s", cell)
		if i%len(rt.Backends) == len(rt.Backends)-1 {
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\n%d program×backend pairs, %d runs each: %d violations.\n", total, runs, bad)
	fmt.Fprintln(w, "cells show observed/allowed outcome counts; observed ⊆ allowed everywhere —")
	fmt.Fprintln(w, "every backend implements the annotations within the PMC model's envelope.")
	if bad > 0 {
		return fmt.Errorf("conformance violations detected")
	}
	return nil
}

package exp

import (
	"bytes"
	"fmt"
	"io"

	"pmc/internal/noc"
	"pmc/internal/sim"
	"pmc/internal/soc"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// This file registers the open-loop service sweep: the three service
// scenarios (request/response server, sharded kvstore, streaming pipeline)
// swept over offered load × backend × cluster shape, reporting the exact
// p50/p99 latency and saturation throughput per cell. The same grid is the
// determinism artifact for the measurement layer: the emitted table must be
// byte-identical for any worker count and for both event-queue
// implementations, which pins the whole latency histogram, not just the
// makespan.

func init() {
	register(Experiment{
		ID:    "sweep-services",
		Title: "open-loop services: offered load × backend × cluster shape, exact tail latency",
		Paper: "beyond the paper's closed-loop kernels: Poisson arrivals through the same annotation API, latency as a portable metric",
		Run:   runSweepServices,
	})
}

// serviceApps are the open-loop scenarios (workloads.ServiceApp
// implementations).
var serviceApps = []string{"server", "kvstore", "stream"}

// svcShape is one platform point of the service grid: a tile count, a NoC
// topology, and the backends that make sense on it (cluster-aware backends
// need a cluster topology).
type svcShape struct {
	tiles    int
	topo     string
	backends []string
}

var svcShapes = []svcShape{
	{8, "ring", []string{"nocc", "dsm", "adaptive"}},
	{16, "cluster:4xring", []string{"dsm", "cdsm"}},
}

// makeService is the sweep app factory for service cells: scale-appropriate
// instance with the cell's offered load applied.
func makeService(o Options, load float64) func(sweep.Cell) (workloads.App, error) {
	return func(c sweep.Cell) (workloads.App, error) {
		app, ok := workloads.Scaled(c.App, !o.full())
		if !ok {
			return nil, fmt.Errorf("unknown app %q", c.App)
		}
		if !workloads.SetLoad(app, load) {
			return nil, fmt.Errorf("app %q is not a service workload", c.App)
		}
		return app, nil
	}
}

// serviceSpec builds the sweep grid for one shape at one offered load.
func serviceSpec(o Options, sh svcShape, topo noc.Topology, load float64) sweep.Spec {
	base := soc.DefaultConfig()
	return sweep.Spec{
		Apps:     serviceApps,
		Backends: sh.backends,
		Tiles:    []int{sh.tiles},
		Topos:    []noc.Topology{topo},
		Base:     &base,
		Make:     makeService(o, load),
		Workers:  o.Workers,
	}
}

func runSweepServices(w io.Writer, o Options) error {
	loads := []float64{1, 4, 32}
	if !o.full() {
		loads = []float64{2, 16}
	}
	topos := make([]noc.Topology, len(svcShapes))
	for i, sh := range svcShapes {
		t, err := noc.ParseTopology(sh.topo)
		if err != nil {
			return err
		}
		topos[i] = t
	}

	// tables[shape][load] in sweep grid order.
	tables := make([][]*sweep.Table, len(svcShapes))
	cells := 0
	for si, sh := range svcShapes {
		tables[si] = make([]*sweep.Table, len(loads))
		for li, load := range loads {
			table, err := sweep.Run(serviceSpec(o, sh, topos[si], load))
			if err != nil {
				return err
			}
			tables[si][li] = table
			cells += len(table.Rows)
		}
	}

	// Open-loop invariants across the whole grid: every cell carries
	// service metrics, completes every offered request, and — because the
	// request mixes are pure functions of the seed and every update
	// commutes — each app's checksum is invariant across backend, shape
	// AND offered load.
	wantSum := map[string]uint32{}
	for si, sh := range svcShapes {
		for li, load := range loads {
			for i := range tables[si][li].Rows {
				r := &tables[si][li].Rows[i]
				svc := r.Result.Service
				if svc == nil {
					return fmt.Errorf("sweep-services: %s/%s has no service metrics", r.App, r.Backend)
				}
				if svc.Completed != svc.Offered {
					return fmt.Errorf("sweep-services: %s/%s/%dt at load %g completed %d of %d requests",
						r.App, r.Backend, sh.tiles, load, svc.Completed, svc.Offered)
				}
				if want, ok := wantSum[r.App]; !ok {
					wantSum[r.App] = r.Checksum
				} else if r.Checksum != want {
					return fmt.Errorf("sweep-services: %s checksum %#x on %s/%dt at load %g != %#x",
						r.App, r.Checksum, r.Backend, sh.tiles, load, want)
				}
			}
		}
	}

	// Determinism of the measurement layer itself: the serialized table —
	// including the latency-derived columns — must be byte-identical when
	// the sweep runs sequentially, on a full worker pool, and on the
	// binary-heap event queue instead of the timing wheel.
	detSpec := func(workers int, q sim.QueueKind) sweep.Spec {
		s := serviceSpec(o, svcShapes[0], topos[0], loads[0])
		s.Workers = workers
		s.Configure = func(_ sweep.Cell, cfg *soc.Config) { cfg.EventQueue = q }
		return s
	}
	variants := []struct {
		name    string
		workers int
		queue   sim.QueueKind
	}{
		{"1 worker / wheel", 1, sim.QueueWheel},
		{"N workers / wheel", 0, sim.QueueWheel},
		{"1 worker / heap", 1, sim.QueueHeap},
	}
	var ref bytes.Buffer
	for i, v := range variants {
		table, err := sweep.Run(detSpec(v.workers, v.queue))
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := table.WriteJSON(&buf); err != nil {
			return err
		}
		if i == 0 {
			ref = buf
		} else if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			return fmt.Errorf("sweep-services: emitted table differs between %q and %q", variants[0].name, v.name)
		}
	}

	fmt.Fprintf(w, "%d cells: %v × loads %v req/kcycle × shapes", cells, serviceApps, loads)
	for _, sh := range svcShapes {
		fmt.Fprintf(w, " %dt/%s", sh.tiles, sh.topo)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "latency table emitted byte-identically across %d worker-count/event-queue variants\n", len(variants))

	for _, app := range serviceApps {
		first := tables[0][0].Rows
		var offered uint64
		for i := range first {
			if first[i].App == app {
				offered = first[i].Result.Service.Offered
				break
			}
		}
		fmt.Fprintf(w, "\n%s (%d requests, checksum %#x): p50/p99 latency [cycles] and throughput [req/kcycle]\n",
			app, offered, wantSum[app])
		fmt.Fprintf(w, "%-16s %-9s", "shape", "backend")
		for _, load := range loads {
			fmt.Fprintf(w, " %22s", fmt.Sprintf("load %g", load))
		}
		fmt.Fprintln(w)
		for si, sh := range svcShapes {
			for _, b := range sh.backends {
				fmt.Fprintf(w, "%-16s %-9s", fmt.Sprintf("%dt/%s", sh.tiles, sh.topo), b)
				for li := range loads {
					r := tables[si][li].Find(app, b, sh.tiles, topos[si])
					thr := r.Result.Service.Throughput(r.Result.Cycles)
					fmt.Fprintf(w, " %9s %6.3f", fmt.Sprintf("%d/%d", r.P50Latency, r.P99Latency), thr)
				}
				fmt.Fprintln(w)
			}
		}
	}

	fmt.Fprintln(w, "\nArrivals are scheduled outside simulated time, so offered load is held")
	fmt.Fprintln(w, "constant while the platform varies: past saturation the open-loop tail")
	fmt.Fprintln(w, "latency grows without bound while throughput flattens at the service")
	fmt.Fprintln(w, "rate — the backend column shows which consistency mechanism saturates")
	fmt.Fprintln(w, "first on the same annotated program.")
	return nil
}

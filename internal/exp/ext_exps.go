package exp

import (
	"fmt"
	"io"

	"pmc/internal/core"
	"pmc/internal/litmus"
	"pmc/internal/noc"
	"pmc/internal/rt"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// This file registers the extension experiments: features the paper
// mentions but does not evaluate (location-scoped fences, PC emulation by
// fencing everything, bulk-synchronous halo exchange).

func init() {
	register(Experiment{
		ID:    "ext-stencil",
		Title: "bulk-synchronous halo exchange with a PMC-annotated barrier",
		Paper: "streaming/dataflow context of refs [20, 21]; barrier built from annotations only",
		Run:   runExtStencil,
	})
	register(Experiment{
		ID:    "ext-pc",
		Title: "orderings under minimal annotations vs fence-after-every-operation (PC emulation)",
		Paper: "Section IV-E: adding a fence between every operation makes PMC equivalent to Processor Consistency, which 'overly constrains the possible orderings'",
		Run:   runExtPC,
	})
	register(Experiment{
		ID:    "ext-mesh",
		Title: "NoC topology: bidirectional ring vs 2-D mesh",
		Paper: "ref [16] evaluates the connectionless NoC; topology is a free parameter of the PMC approach",
		Run:   runExtMesh,
	})
	register(Experiment{
		ID:    "ext-scoped-fence",
		Title: "location-scoped fences",
		Paper: "Section IV-D: 'one could offer more complex fences on specific locations for optimization purposes'",
		Run:   runExtScopedFence,
	})
}

func runExtStencil(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	table, err := sweep.Run(gridSpec(o, []string{"stencil"}, rt.Backends, []int{tiles}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %10s %12s\n", "backend", "cycles", "checksum", "noc msgs")
	want := table.Rows[0].Checksum
	for _, r := range table.Rows {
		if r.Checksum != want {
			return fmt.Errorf("ext-stencil: %s checksum %#x != %#x", r.Backend, r.Checksum, want)
		}
		fmt.Fprintf(w, "%-10s %10d %#10x %12d\n", r.Backend, r.Cycles, r.Checksum, r.NoCMessages)
	}
	fmt.Fprintln(w, "\nthe barrier is ordinary annotated code (entry_x counter, flushed sense word,")
	fmt.Fprintln(w, "entry_ro polling), so the same bulk-synchronous program runs on all backends")
	fmt.Fprintln(w, "with identical results; on dsm the barrier polls stay in tile-local memory.")
	return nil
}

// runExtPC counts the globally agreed orderings (≺G pairs) the model
// derives for the message-passing program under (a) the paper's minimal
// annotations and (b) a fence inserted between every pair of operations —
// the PC-emulation mode of Section IV-E.
func runExtPC(w io.Writer, o Options) error {
	build := func(fenceEverything bool) *core.Execution {
		e := core.NewExecution()
		x := e.AddLoc("X")
		f := e.AddLoc("f")
		emit := func(p core.ProcID, k core.Kind, v core.Loc, val core.Value) {
			e.Exec(k, p, v, val, "")
			if fenceEverything {
				e.Fence(p)
			}
		}
		// Process 1.
		emit(1, core.KAcquire, x, 0)
		emit(1, core.KWrite, x, 42)
		if !fenceEverything {
			e.Fence(1)
		}
		emit(1, core.KRelease, x, 0)
		emit(1, core.KAcquire, f, 0)
		emit(1, core.KWrite, f, 1)
		emit(1, core.KRelease, f, 0)
		// Process 2.
		emit(2, core.KRead, f, 1)
		if !fenceEverything {
			e.Fence(2)
		}
		emit(2, core.KAcquire, x, 0)
		emit(2, core.KRead, x, 42)
		emit(2, core.KRelease, x, 0)
		return e
	}
	count := func(e *core.Execution) (pairs int) {
		n := len(e.Ops())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && e.ReachableG(i, j) {
					pairs++
				}
			}
		}
		return pairs
	}
	minimal, pc := build(false), build(true)
	cm, cp := count(minimal), count(pc)
	fmt.Fprintf(w, "globally agreed ordering pairs (message-passing program):\n")
	fmt.Fprintf(w, "  minimal annotations:        %3d pairs over %d operations\n", cm, len(minimal.Ops()))
	fmt.Fprintf(w, "  fence after every op (PC):  %3d pairs over %d operations\n", cp, len(pc.Ops()))
	fmt.Fprintf(w, "  over-constraint factor:     %.2fx\n", float64(cp)/float64(cm))
	if cp <= cm {
		return fmt.Errorf("ext-pc: PC emulation did not add orderings")
	}
	fmt.Fprintln(w, "\nboth variants guarantee the read returns 42; the extra orderings are the")
	fmt.Fprintln(w, "freedom PC gives up — the flexibility PMC preserves for the hardware.")
	return nil
}

func runExtMesh(w io.Writer, o Options) error {
	tiles := o.tiles(32)
	proto := workloads.DefaultMFifo()
	roles := 3
	if tiles/2 < roles {
		roles = tiles / 2
	}
	proto.Readers, proto.Writers = roles, roles
	if o.full() {
		proto.Items = 128
	} else {
		proto.Items = 24
	}
	spec := gridSpec(o, []string{"mfifo"}, []string{"dsm"}, []int{tiles})
	spec.Topos = []noc.Topology{noc.TopoRing, noc.TopoMesh}
	spec.Make = func(sweep.Cell) (workloads.App, error) {
		f := *proto
		return &f, nil
	}
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mfifo on dsm, %d tiles:\n%-8s %10s %12s %12s\n", tiles, "topology", "cycles", "noc msgs", "flit-hops")
	for _, r := range table.Rows {
		fmt.Fprintf(w, "%-8s %10d %12d %12d\n", r.Topology, r.Cycles, r.NoCMessages, r.FlitHops)
	}
	fmt.Fprintln(w, "\nthe mesh halves the worst-case hop count at 32 tiles, which shortens DSM")
	fmt.Fprintln(w, "flush broadcasts and lock handoffs; the PMC annotations are untouched.")
	return nil
}

func runExtScopedFence(w io.Writer, o Options) error {
	// Model level: the scoped fence keeps the guarantee for its target
	// location and drops the orderings for others.
	e := core.NewExecution()
	x := e.AddLoc("X")
	y := e.AddLoc("Y")
	e.Write(1, x, 1)
	e.Write(1, y, 2)
	fx := e.FenceLoc(1, x)
	ax := e.Acquire(1, x)
	ay := e.Acquire(1, y)
	fmt.Fprintf(w, "after   w(X) w(Y) fence(X) acq(X) acq(Y):\n")
	fmt.Fprintf(w, "  fence(X) ≺G acq(X): %v (the scoped guarantee)\n", e.ReachableG(fx.ID, ax.ID))
	fmt.Fprintf(w, "  fence(X) ≺G acq(Y): %v (Y left unordered — the optimization)\n", e.ReachableG(fx.ID, ay.ID))

	// Litmus level: the scoped fence preserves the annotated program's
	// unique outcome.
	fmt.Fprintln(w, "\nfig5 with the writer's fence scoped to X:")
	prog, ok := litmus.ByName("fig5-scoped-fence")
	if !ok {
		return fmt.Errorf("ext-scoped-fence: program missing from catalog")
	}
	res, err := litmus.Explore(prog)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res)
	return nil
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/litmus"
	"pmc/internal/rt"
	"pmc/internal/spec"
	"pmc/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "spec-ablation",
		Title: "compositional spec checking vs exhaustive conformance, and symmetry reduction",
		Paper: "Section I: backend mappings 'designed and verified with relative ease' — per-interface specs keep that cost flat as the platform grows",
		Run:   runSpecAblation,
	})
}

func runSpecAblation(w io.Writer, o Options) error {
	backends := rt.Backends
	runs := 8
	if !o.full() {
		backends = []string{"nocc", "swcc", "cdsm"}
		runs = 2
	}

	// 1. Compositional cost is a function of the interface, not the
	// platform: check every backend against its spec while "deploying" at
	// 32 and at 1024 tiles, and compare the measured work.
	fmt.Fprintln(w, "-- compositional backend-vs-spec checks (platform 32 vs 1024 tiles) --")
	type pair struct{ small, large *spec.Result }
	results := make([]pair, len(backends))
	err := sweep.Each(len(backends), o.Workers, func(i int) error {
		s, err := spec.ForBackend(backends[i])
		if err != nil {
			return err
		}
		if results[i].small, err = spec.CheckBackend(s, spec.Platform{Tiles: 32}, spec.CheckOptions{Runs: runs}); err != nil {
			return err
		}
		results[i].large, err = spec.CheckBackend(s, spec.Platform{Tiles: 1024}, spec.CheckOptions{Runs: runs})
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-9s %-9s %-12s %-9s %-8s %s\n",
		"backend", "programs", "simruns", "modelstates", "simtiles", "ok", "work@32==work@1024")
	bad := 0
	for i, name := range backends {
		r32, r1024 := results[i].small, results[i].large
		same := r32.Work == r1024.Work
		ok := r32.Ok() && r1024.Ok()
		if !same || !ok {
			bad++
		}
		fmt.Fprintf(w, "%-10s %-9d %-9d %-12d %-9d %-8v %v\n",
			name, r32.Work.Programs, r32.Work.SimRuns, r32.Work.ModelStates, r32.Work.SimTiles, ok, same)
	}
	w32 := results[0].small.Work
	fmt.Fprintf(w, "exhaustive whole-platform checking simulates %d and %d tiles per run;\n", 32, 1024)
	fmt.Fprintf(w, "the compositional check simulates %d either way — per-check cost independent of deployment size.\n\n", w32.SimTiles)

	// 2. Symmetry ablation: canonical state counts with the reduction off
	// and on, for the iriw-class programs whose interchangeable readers
	// it collapses.
	fmt.Fprintln(w, "-- symmetry-reduced exploration (states off/on) --")
	fmt.Fprintf(w, "%-12s %-10s %-10s %s\n", "program", "plain", "symmetry", "factor")
	for _, p := range []litmus.Program{litmus.IRIWSym3(), litmus.IRIW(), litmus.IRIW3()} {
		measure := func(sym bool) (int, error) {
			x := litmus.NewExplorer(p)
			x.Workers = o.Workers
			x.Symmetry = sym
			r, err := x.Run()
			if err != nil {
				return 0, err
			}
			return r.States, nil
		}
		plain, err := measure(false)
		if err != nil {
			return err
		}
		sym, err := measure(true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %-10d %-10d %.2fx\n", p.Name, plain, sym, float64(plain)/float64(sym))
	}
	fmt.Fprintln(w)

	// 3. Detection: a backend with one protocol step disabled — the fault
	// its spec names — must fail its own spec check.
	s, err := spec.ForBackend("swcc")
	if err != nil {
		return err
	}
	fs, ok := spec.FaultFor(spec.StepExitWriteback)
	if !ok {
		return fmt.Errorf("no fault mapped for %s", spec.StepExitWriteback)
	}
	faulted, err := spec.CheckBackend(s, spec.Platform{Tiles: 32}, spec.CheckOptions{
		Runs:    runs,
		Backend: func() (rt.Backend, error) { return rt.InjectFaults(rt.SWCC(), fs), nil },
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fault detection: swcc with %s disabled -> %d divergences (first: %s)\n",
		spec.StepExitWriteback, len(faulted.Divergences), firstDivergence(faulted))
	if faulted.Ok() {
		return fmt.Errorf("spec-ablation: injected fault not detected")
	}
	if bad > 0 {
		return fmt.Errorf("spec-ablation: %d backends failed or scaled with platform size", bad)
	}
	return nil
}

func firstDivergence(r *spec.Result) string {
	if len(r.Divergences) == 0 {
		return "none"
	}
	return r.Divergences[0].String()
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/noc"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "mixed-ablation",
		Title: "adaptive per-object protocol migration vs every pure backend",
		Paper: "Section VI picks one architecture per system; per-object routing lets each object get the protocol its access pattern wants",
		Run:   runMixedAblation,
	})
}

// mixedPure is the pure-protocol comparison set: the paper's four
// single-protocol architectures.
var mixedPure = []string{"nocc", "swcc", "dsm", "spm"}

// runMixedAblation runs every workload on the four pure backends and on
// the adaptive router, asserts the checksums agree grid-wide (migration is
// a protocol change, never a data change), and reports where the adaptive
// policy lands against the best and worst pure choice per app.
func runMixedAblation(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	backends := append(append([]string{}, mixedPure...), "adaptive")
	table, err := sweep.Run(gridSpec(o, workloads.Names, backends, []int{tiles}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cycles by backend, %d tiles (adaptive = per-object migration at scope boundaries):\n\n", tiles)
	fmt.Fprintf(w, "%-14s", "app")
	for _, b := range backends {
		fmt.Fprintf(w, " %10s", b)
	}
	fmt.Fprintf(w, " %10s %9s\n", "best pure", "adaptive")
	beatsBest, beatsDefault := 0, 0
	for _, app := range workloads.Names {
		fmt.Fprintf(w, "%-14s", app)
		var checksum uint32
		bestPure, bestCycles := "", uint64(0)
		var adaptive, defCycles uint64
		for i, b := range backends {
			r := table.Find(app, b, tiles, noc.TopoRing)
			if r == nil {
				return fmt.Errorf("mixed-ablation: missing cell %s/%s", app, b)
			}
			if r.Err != "" {
				return fmt.Errorf("mixed-ablation: %s/%s: %s", app, b, r.Err)
			}
			if i == 0 {
				checksum = r.Checksum
				defCycles = r.Cycles
			} else if r.Checksum != checksum {
				return fmt.Errorf("mixed-ablation: checksum diverged at %s/%s: %#x != %#x — migration changed the computation",
					app, b, r.Checksum, checksum)
			}
			fmt.Fprintf(w, " %10d", r.Cycles)
			if b == "adaptive" {
				adaptive = r.Cycles
			} else if bestPure == "" || r.Cycles < bestCycles {
				bestPure, bestCycles = b, r.Cycles
			}
		}
		vs := 100 * (float64(adaptive)/float64(bestCycles) - 1)
		fmt.Fprintf(w, " %10s %+8.1f%%\n", bestPure, vs)
		if adaptive <= bestCycles {
			beatsBest++
		}
		if adaptive < defCycles {
			beatsDefault++
		}
	}
	fmt.Fprintf(w, "\nadaptive matches or beats the best pure backend on %d/%d apps and improves on\n",
		beatsBest, len(workloads.Names))
	fmt.Fprintf(w, "the uniform %s default on %d/%d; checksums agree grid-wide, so every migration\n",
		mixedPure[0], beatsDefault, len(workloads.Names))
	fmt.Fprintln(w, "was a pure protocol change at a consistent cut. the gap to the best pure")
	fmt.Fprintln(w, "backend is the warmup (objects start on nocc until the pattern shows) plus")
	fmt.Fprintln(w, "migrations the consistent cut forbids; the payoff is choosing per object,")
	fmt.Fprintln(w, "online, without the pure pathologies (nocc serializing hot read-only objects,")
	fmt.Fprintln(w, "swcc flushing rewritten data, spm staging whole objects for one-word reads).")
	return nil
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/fuzz"
	"pmc/internal/litmus"
	"pmc/internal/rt"
)

func init() {
	register(Experiment{
		ID:    "fuzz",
		Title: "differential litmus fuzzing: random annotated programs vs the model on every backend",
		Paper: "Section I: verification 'with relative ease' — made systematic: generated scenarios, reproducible seeds, fault-injection proof",
		Run:   runFuzz,
	})
}

func runFuzz(w io.Writer, o Options) error {
	n := 400
	if !o.full() {
		n = 80
	}
	const seed = 1

	// Phase 1: healthy backends. Every generated program, every backend,
	// zero violations expected.
	fmt.Fprintf(w, "-- healthy campaign: %d seeded programs per mode, backends %v --\n", n, fuzz.DefaultBackends)
	for _, mode := range []fuzz.Mode{fuzz.ModeDRF, fuzz.ModeRacy, fuzz.ModeMixed} {
		sum, err := fuzz.Run(fuzz.Config{
			Seed: seed, N: n,
			Gen:     fuzz.GenConfig{Mode: mode},
			Runs:    2,
			Workers: o.Workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %4d unique, %3d dup, %2d over-budget: %d violations, %d run errors\n",
			mode.String()+":", sum.Unique, sum.Deduped, sum.SkippedBudget, len(sum.Violations), len(sum.Errors))
		if !sum.Ok() {
			fmt.Fprint(w, sum)
			return fmt.Errorf("healthy backends violated the model")
		}
	}

	// Phase 2: fault injection. Disable the swcc exit-flush (Table II's
	// release step) and show the fuzzer catching it and shrinking the
	// failure to a minimal counterexample.
	fault := rt.FaultSet{SkipExitFlush: true}
	fmt.Fprintf(w, "\n-- fault injection: swcc with %s --\n", fault)
	sum, err := fuzz.Run(fuzz.Config{
		Seed: seed, N: n,
		Gen:       fuzz.GenConfig{Mode: fuzz.ModeMixed},
		Backends:  []string{"swcc"},
		Runs:      2,
		Workers:   o.Workers,
		Shrink:    true,
		MaxShrink: 1,
		MakeBackend: func(name string) (rt.Backend, error) {
			b, err := rt.ByName(name)
			if err != nil {
				return nil, err
			}
			return rt.InjectFaults(b, fault), nil
		},
	})
	if err != nil {
		return err
	}
	if len(sum.Violations) == 0 {
		return fmt.Errorf("fault-injected swcc produced no violations")
	}
	v := sum.Violations[0]
	fmt.Fprintf(w, "%d violations; first (program seed %d):\n%s", len(sum.Violations), v.Seed, fuzz.Render(v.Program))
	fmt.Fprintf(w, "forbidden outcome: %v\n", v.Report.Violations)
	if v.Shrunk != nil {
		fmt.Fprintf(w, "shrunk %d -> %d instructions in %d accepted steps:\n%s",
			litmus.InstrCount(v.Program), litmus.InstrCount(*v.Shrunk), v.ShrinkSteps, fuzz.Render(*v.Shrunk))
	}
	fmt.Fprintln(w, "\nthe broken protocol step is observable as a model violation, and the")
	fmt.Fprintln(w, "delta-debugged counterexample is small enough to read off the bug: the")
	fmt.Fprintln(w, "previous owner's exit_x skipped its flush, so the next lock holder reads")
	fmt.Fprintln(w, "stale SDRAM data the model says it can no longer see.")
	return nil
}

package exp

import (
	"fmt"
	"io"

	"pmc/internal/rt"
	"pmc/internal/stats"
	"pmc/internal/sweep"
	"pmc/internal/workloads"
)

// This file registers the case-study experiments: Table II, Fig. 7, Fig. 8
// (software cache coherency on the SPLASH-2 substitutes), Fig. 9 (the
// multi-reader/-writer FIFO on DSM) and Fig. 10 (motion estimation on SPM).

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "implementation of the annotations on the three architectures",
		Paper: "software cache coherency / DSM over write-only interconnect / SPM and SDRAM",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "distributed memory architecture (system topology)",
		Paper: "tiles with local dual-port memories, write-only NoC access to others, shared SDRAM",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "execution-time breakdown: uncached shared data vs software cache coherency",
		Paper: "SWCC improves execution time 22% on average; RADIOSITY utilization 38%→70%; flush instruction overhead 0.66/0.00/0.01%",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "multi-reader/multi-writer FIFO on distributed shared memory",
		Paper: "pointers are polled only from local memory; the FIFO behaves correctly on all architectures",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "motion estimation on scratch-pad memories",
		Paper: "significant performance increase using SPMs compared to the software cache coherency setup",
		Run:   runFig10,
	})
}

// runMsgPassMatrix runs the annotated message-passing program on every
// backend (one parallel sweep) and reports delivery. Shared by fig6 and
// table2.
func runMsgPassMatrix(w io.Writer, o Options) error {
	tiles := o.tiles(4)
	table, err := sweep.Run(gridSpec(o, []string{"msgpass"}, rt.Backends, []int{tiles}))
	if err != nil {
		return err
	}
	expected := workloads.DefaultMsgPass().Expected()
	fmt.Fprintf(w, "%-10s %10s %8s %10s %8s\n", "backend", "cycles", "result", "noc msgs", "flushes")
	for _, r := range table.Rows {
		verdict := "42 ok"
		if r.Checksum != expected {
			verdict = "WRONG"
		}
		fmt.Fprintf(w, "%-10s %10d %8s %10d %8d\n",
			r.Backend, r.Cycles, verdict, r.NoCMessages, r.FlushInstrs)
	}
	return nil
}

func runTable2(w io.Writer, o Options) error {
	fmt.Fprintln(w, `annotation   nocc/SC                swcc                         dsm                           spm
entry_x      acquire lock           acquire lock (object not     acquire lock; on transfer     acquire lock; copy SDRAM
                                    cached outside scopes)       prev owner pushes object      into local SPM copy
exit_x       release lock           flush+invalidate object      release (lazy; data moves     copy back to SDRAM;
                                    lines; release lock          at next transfer)             release lock
entry_ro     lock if > 1 word       lock if > 1 word; reads      lock if > 1 word; reads       copy in (lock only during
                                    warm the cache               hit the local replica         the copy); then lock-free
exit_ro      unlock                 invalidate lines; unlock     unlock                        discard the copy
fence        no instructions (in-order core; compiler barrier only) on every backend
flush        nullified              flush+invalidate lines       broadcast object to all       copy back to SDRAM
                                                                 other local memories

measured effects of the same annotated program on each backend:`)
	return runMsgPassMatrix(w, o)
}

func runFig7(w io.Writer, o Options) error {
	cfg := sysConfig(o.tiles(32))
	fmt.Fprintf(w, "tiles: %d, each with:\n", cfg.Tiles)
	fmt.Fprintf(w, "  I-cache: %d B, %d-way, %d B lines\n", cfg.ICache.Size, cfg.ICache.Ways, cfg.ICache.LineSize)
	fmt.Fprintf(w, "  D-cache: %d B, %d-way, %d B lines (write-back, non-coherent; control ops: invalidate, flush+invalidate)\n",
		cfg.DCache.Size, cfg.DCache.Ways, cfg.DCache.LineSize)
	fmt.Fprintf(w, "  local dual-port memory: %d KiB (1-cycle core port, NoC write port)\n", cfg.LocalBytes/1024)
	fmt.Fprintf(w, "shared SDRAM: %d MiB, %d-bank pipelined controller (word %d cy, line burst %d cy, channel %d/%d cy)\n",
		cfg.SDRAMBytes>>20, cfg.SDRAM.Banks, cfg.SDRAM.WordLat, cfg.SDRAM.LineLat,
		cfg.SDRAM.ChannelWordLat, cfg.SDRAM.ChannelLineLat)
	fmt.Fprintf(w, "NoC: write-only bidirectional ring, %d cy/hop, %d B/flit, injection %d cy\n",
		cfg.NoC.HopLat, cfg.NoC.FlitSize, cfg.NoC.InjLat)
	fmt.Fprintf(w, "locks: %s (asymmetric, spin on local memory; ref [15])\n", cfg.Locks)
	return nil
}

func runFig8(w io.Writer, o Options) error {
	tiles := o.tiles(32)
	table, err := sweep.Run(gridSpec(o, splashApps, []string{"nocc", "swcc"}, []int{tiles}))
	if err != nil {
		return err
	}
	groups := make(map[string][]*workloads.Result)
	samples := make(map[string][]stats.Sample)
	var order []string
	var results []stats.Sample
	type pair struct{ no, sw *workloads.Result }
	pairs := make(map[string]pair)
	for _, r := range table.Rows {
		res := r.Result
		if len(groups[r.App]) == 0 {
			order = append(order, r.App)
		}
		groups[r.App] = append(groups[r.App], res)
		samples[r.App] = append(samples[r.App], res.Sample())
		results = append(results, res.Sample())
		p := pairs[r.App]
		if r.Backend == "nocc" {
			p.no = res
		} else {
			p.sw = res
		}
		pairs[r.App] = p
	}
	// Checksum agreement between the two runs of each app.
	for _, name := range order {
		rs := groups[name]
		if rs[0].Checksum != rs[1].Checksum {
			return fmt.Errorf("fig8: %s checksum differs between backends", name)
		}
	}
	stats.RenderFig8(w, samples, order)
	fmt.Fprintln(w)
	stats.RenderExtended(w, results)
	fmt.Fprintln(w)
	var sum float64
	for _, name := range order {
		p := pairs[name]
		sp := stats.Speedup(p.no.Cycles, p.sw.Cycles)
		sum += sp
		fmt.Fprintf(w, "%-10s exec time improvement: %5.1f%%   utilization %4.1f%% -> %4.1f%%   flush instr overhead %.2f%%\n",
			name, sp, 100*p.no.Utilization(), 100*p.sw.Utilization(), p.sw.FlushOverheadPct())
	}
	fmt.Fprintf(w, "average improvement: %.1f%%   (paper: 22%%)\n", sum/float64(len(order)))
	return nil
}

func runFig9(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	proto := workloads.DefaultMFifo()
	if o.full() {
		proto.Items = 256
		proto.Readers, proto.Writers = 3, 3
	}
	items := proto.Writers * proto.Items
	spec := gridSpec(o, []string{"mfifo"}, rt.Backends, []int{tiles})
	spec.Make = func(sweep.Cell) (workloads.App, error) {
		f := *proto
		return &f, nil
	}
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %8s\n",
		"backend", "cycles", "cycles/item", "noc msgs", "noc bytes", "verified")
	for _, r := range table.Rows {
		// The per-reader stream agreement is asserted by the test
		// suite (TestMFifoDeliversEverywhere); here a zero content
		// digest would mean no data flowed at all.
		verified := "yes"
		if r.Checksum == 0 {
			verified = "NO DATA"
		}
		fmt.Fprintf(w, "%-10s %10d %12.0f %12d %10d %8s\n",
			r.Backend, r.Cycles, float64(r.Cycles)/float64(items),
			r.NoCMessages, r.NoCBytes, verified)
	}
	fmt.Fprintf(w, "\nDSM property: NoC traffic scales with items (%d), not poll iterations —\n", items)
	fmt.Fprintf(w, "read/write pointers are polled from local memory only (Section VI-B).\n")
	return nil
}

func runFig10(w io.Writer, o Options) error {
	tiles := o.tiles(8)
	proto := workloads.DefaultMotionEst()
	if o.full() {
		proto.BlocksX, proto.BlocksY, proto.Search = 8, 6, 4
	}
	spec := gridSpec(o, []string{"motionest"}, []string{"nocc", "swcc", "spm"}, []int{tiles})
	spec.Make = func(sweep.Cell) (workloads.App, error) {
		m := *proto
		return &m, nil
	}
	table, err := sweep.Run(spec)
	if err != nil {
		return err
	}
	base := table.Rows[0].Cycles
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "backend", "cycles", "speedup", "copy%")
	for _, r := range table.Rows {
		tot := float64(r.Result.Total.Total())
		copyPct := 0.0
		if tot > 0 {
			copyPct = 100 * float64(r.CopyStall) / tot
		}
		fmt.Fprintf(w, "%-10s %10d %9.2fx %9.1f%%\n",
			r.Backend, r.Cycles, float64(base)/float64(r.Cycles), copyPct)
	}
	fmt.Fprintln(w, "\nspm > swcc: the SPM copy is paid once per scope while the search re-reads")
	fmt.Fprintln(w, "the window hundreds of times, and read-only scopes stay concurrent (the SPM")
	fmt.Fprintln(w, "lock is held only during the copy, Table II).")
	return nil
}

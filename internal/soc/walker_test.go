package soc

import (
	"testing"
	"testing/quick"

	"pmc/internal/sim"
)

// Tests for the loop-shaped instruction-fetch walker (SetCodeLoop), the
// mechanism that sets each workload's steady-state I-miss rate.

func walkerSys(t *testing.T) *System {
	t.Helper()
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCodeLoopHotOnlyWarmsUp(t *testing.T) {
	s := walkerSys(t)
	tile := s.Tiles[0]
	s.K.Spawn("core", func(p *sim.Proc) {
		tile.SetCodeLoop(0x1000, 2048, 0, 1)
		tile.Exec(p, 2048/4) // one pass: cold fills
		cold := tile.Stats.IStall
		tile.Exec(p, 4*2048/4) // four more passes: all hits
		if tile.Stats.IStall != cold {
			t.Errorf("warm hot loop still missing: %d -> %d", cold, tile.Stats.IStall)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCodeLoopColdSectionMissesEachVisit(t *testing.T) {
	s := walkerSys(t)
	tile := s.Tiles[0]
	s.K.Spawn("core", func(p *sim.Proc) {
		// Hot region fits; cold section (8 KiB) is twice the I-cache,
		// so every cold visit misses every line.
		tile.SetCodeLoop(0x1000, 2048, 8192, 4)
		// Warm up through one full cycle (4 hot passes + cold).
		warm := 4*2048/4 + 8192/4
		tile.Exec(p, warm)
		base := tile.Stats
		tile.Exec(p, warm) // a steady-state cycle
		dIStall := tile.Stats.IStall - base.IStall
		if dIStall == 0 {
			t.Fatal("cold section produced no steady-state misses")
		}
		// Expect roughly one fill per cold line (256 lines); allow the
		// hot region to suffer some collateral eviction.
		fills := int(dIStall) / int(s.Cfg.SDRAM.LineLat)
		if fills < 200 || fills > 512 {
			t.Errorf("steady-state fills per cycle = %d, want ~256", fills)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCodeLoopInnerPassesScaleMissRate(t *testing.T) {
	measure := func(inner int) sim.Time {
		s := walkerSys(t)
		tile := s.Tiles[0]
		s.K.Spawn("core", func(p *sim.Proc) {
			tile.SetCodeLoop(0x1000, 2048, 4096, inner)
			tile.Exec(p, 200_000)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Tiles[0].Stats.IStall
	}
	few, many := measure(4), measure(64)
	if many >= few {
		t.Fatalf("more inner passes must lower I-stall: inner=4 %d vs inner=64 %d", few, many)
	}
}

func TestCodeLoopDegeneratesToCyclic(t *testing.T) {
	// SetCodeFootprint is SetCodeLoop with no cold section.
	s1, s2 := walkerSys(t), walkerSys(t)
	run := func(s *System, setup func(tl *Tile)) sim.Time {
		tile := s.Tiles[0]
		s.K.Spawn("core", func(p *sim.Proc) {
			setup(tile)
			tile.Exec(p, 50_000)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return tile.Stats.IStall
	}
	a := run(s1, func(tl *Tile) { tl.SetCodeFootprint(0x1000, 3072) })
	b := run(s2, func(tl *Tile) { tl.SetCodeLoop(0x1000, 3072, 0, 1) })
	if a != b {
		t.Fatalf("footprint (%d) and loop-with-no-cold (%d) must behave identically", a, b)
	}
}

// Property: the walker always executes exactly the requested number of
// instructions (busy cycles == instructions), regardless of loop shape.
func TestWalkerInstructionAccountingProperty(t *testing.T) {
	prop := func(hotKiB, coldKiB, inner, n uint8) bool {
		s, err := New(testConfig(1))
		if err != nil {
			return false
		}
		tile := s.Tiles[0]
		instrs := int(n)*64 + 1
		ok := true
		s.K.Spawn("core", func(p *sim.Proc) {
			tile.SetCodeLoop(0x1000, int(hotKiB%8+1)*512, int(coldKiB%8)*512, int(inner%16)+1)
			tile.Exec(p, instrs)
			if tile.Stats.Busy != sim.Time(instrs) || tile.Stats.Instrs != uint64(instrs) {
				ok = false
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package soc

import (
	"strings"
	"testing"

	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/sim"
)

// TestFlatIsOneCluster: the flat configuration is the exact 1-cluster
// special case — one cluster holding every tile.
func TestFlatIsOneCluster(t *testing.T) {
	s, err := New(testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 1 {
		t.Fatalf("flat system has %d clusters, want 1", len(s.Clusters))
	}
	if got := len(s.Clusters[0].Tiles); got != 32 {
		t.Fatalf("flat cluster holds %d tiles, want 32", got)
	}
	if s.TilesPerCluster() != 32 {
		t.Fatalf("TilesPerCluster = %d, want 32", s.TilesPerCluster())
	}
	for i, tl := range s.Tiles {
		if tl.Cluster != s.Clusters[0] {
			t.Fatalf("tile %d not in the single cluster", i)
		}
	}
}

// TestClusterWiring: explicit clusters partition the tiles in order, and a
// cluster NoC topology implies the cluster count without a second knob.
func TestClusterWiring(t *testing.T) {
	cfg := testConfig(32)
	cfg.Clusters = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 4 || s.TilesPerCluster() != 8 {
		t.Fatalf("got %d clusters of %d tiles, want 4 of 8", len(s.Clusters), s.TilesPerCluster())
	}
	for i, tl := range s.Tiles {
		if want := s.Clusters[i/8]; tl.Cluster != want {
			t.Fatalf("tile %d in cluster %d, want %d", i, tl.Cluster.ID, want.ID)
		}
		if s.ClusterOf(i) != tl.Cluster {
			t.Fatalf("ClusterOf(%d) mismatch", i)
		}
	}

	topoCfg := testConfig(32)
	topoCfg.NoC.Topology, _ = noc.ParseTopology("cluster:8xring")
	s2, err := New(topoCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Clusters) != 4 {
		t.Fatalf("cluster:8xring over 32 tiles implies %d clusters, want 4", len(s2.Clusters))
	}
}

// TestClusterAddrMap: ClusterAddr/ClusterOffset round-trip and the scratch
// windows sit between SDRAM and the tile-local windows.
func TestClusterAddrMap(t *testing.T) {
	for _, cl := range []int{0, 3, 1023} {
		a := ClusterAddr(cl, 0x80)
		if a < ClusterBase || a >= LocalBase {
			t.Fatalf("ClusterAddr(%d) = %#x outside the cluster window", cl, a)
		}
		c, off := ClusterOffset(a)
		if c != cl || off != 0x80 {
			t.Fatalf("ClusterOffset(ClusterAddr(%d, 0x80)) = (%d, %#x)", cl, c, off)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ClusterOffset accepted a local address")
		}
	}()
	ClusterOffset(LocalBase)
}

// TestClusterValidate: the distinct configuration error messages.
func TestClusterValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		hint   string
	}{
		{func(c *Config) { c.Clusters = -1 }, "clusters"},
		{func(c *Config) { c.Clusters = 5 }, "do not divide evenly into 5 clusters"},
		{func(c *Config) { c.Clusters = 2048; c.Tiles = 2048 }, "exceeds the address map's maximum"},
		{func(c *Config) { c.ClusterBytes = 2 << 20 }, "cluster memory 2097152 exceeds stride"},
		{func(c *Config) {
			c.Clusters = 4
			c.NoC.Topology, _ = noc.ParseTopology("cluster:16xring")
		}, "but 32 tiles / 4 clusters = 8"},
		{func(c *Config) {
			c.NoC.Topology, _ = noc.ParseTopology("cluster:5xring")
		}, "do not divide into clusters of 5"},
	}
	for _, tc := range cases {
		cfg := testConfig(32)
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("config accepted, want error containing %q", tc.hint)
			continue
		}
		if !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("error %q lacks %q", err, tc.hint)
		}
	}
}

// TestClusterScratchAccess: word access and DMA paths against the cluster
// scratch, including the stall accounting buckets they charge.
func TestClusterScratchAccess(t *testing.T) {
	cfg := testConfig(8)
	cfg.Clusters = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Tiles[5] // cluster 1
	var got uint32
	s.K.Spawn("t5", func(p *sim.Proc) {
		tl.WriteCluster32(p, ClusterAddr(1, 0x40), 0xfeed)
		got = tl.ReadCluster32(p, ClusterAddr(1, 0x40))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0xfeed {
		t.Fatalf("cluster scratch read back %#x, want 0xfeed", got)
	}
	if tl.Stats.SharedReads != 1 || tl.Stats.SharedWrites != 1 {
		t.Fatalf("shared counters = %d/%d, want 1/1", tl.Stats.SharedReads, tl.Stats.SharedWrites)
	}
	if tl.Stats.SharedReadStall == 0 || tl.Stats.WriteStall == 0 {
		t.Fatal("crossbar stalls not charged")
	}
	if s.Clusters[1].Scratch.CoreReads != 1 || s.Clusters[1].Scratch.CoreWrites != 1 {
		t.Fatal("scratch port counters not charged")
	}
}

// TestClusterCopies: SDRAM<->scratch bursts and the intra-scratch DMA move
// data and charge CopyStall.
func TestClusterCopies(t *testing.T) {
	cfg := testConfig(4)
	cfg.Clusters = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Tiles[0]
	src := mem.Addr(0x1000)
	payload := []byte("cluster scratch staging payload!")
	s.SDRAM.WriteBlock(src, payload)
	out := make([]byte, len(payload))
	s.K.Spawn("t0", func(p *sim.Proc) {
		tl.CopyToCluster(p, src, ClusterAddr(0, 0), len(payload))
		tl.CopyCluster(p, ClusterAddr(0, 0), ClusterAddr(0, 0x100), len(payload))
		tl.CopyFromCluster(p, ClusterAddr(0, 0x100), 0x2000, len(payload))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.SDRAM.ReadBlock(0x2000, out)
	if string(out) != string(payload) {
		t.Fatalf("round-trip through cluster scratch = %q", out)
	}
	if tl.Stats.CopyStall == 0 {
		t.Fatal("copies charged no CopyStall")
	}
}

// TestClusterScratchOverNoC: a posted write addressed at another cluster's
// scratch window lands in that scratch, not in any tile-local memory.
func TestClusterScratchOverNoC(t *testing.T) {
	cfg := testConfig(8)
	cfg.NoC.Topology, _ = noc.ParseTopology("cluster:4xring")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := ClusterAddr(1, 0x20)
	s.K.Spawn("t0", func(p *sim.Proc) {
		s.Net.PostWrite32(0, 4, dst, 0xabcd)
		p.Wait(200)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := s.Clusters[1].Scratch.Read32(dst); v != 0xabcd {
		t.Fatalf("cluster scratch over NoC = %#x, want 0xabcd", v)
	}
	for _, l := range s.Locals {
		if l.NoCWrites != 0 {
			t.Fatalf("tile-local memory %d saw the cluster-window write", l.Tile)
		}
	}
}

// Package soc assembles the simulated many-core system of the paper's
// Fig. 7: n tiles, each with an in-order MicroBlaze-like core, a private
// I-cache and non-coherent write-back D-cache, and a dual-port local
// memory; a shared SDRAM behind one arbitrated bus; a write-only NoC
// between the tiles; and per-tile lock units (internal/lock).
//
// The tile exposes exactly the micro-architectural event counters the
// paper's platform measures (Section V-B: "It contains support to measure
// micro-architectural events, like counting instructions and cache
// misses"), broken down into the stall categories of Fig. 8: instruction
// cache stalls, write stalls, shared-read stalls, private-read stalls, and
// busy (utilization) cycles.
package soc

import (
	"fmt"

	"pmc/internal/cache"
	"pmc/internal/lock"
	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/sim"
)

// Memory map constants. SDRAM occupies low addresses; tile-local memories
// are spaced at LocalStride starting at LocalBase.
const (
	SDRAMBase   = mem.Addr(0x0000_0000)
	LocalBase   = mem.Addr(0x8000_0000)
	LocalStride = mem.Addr(0x0010_0000)
)

// LockKind selects the lock implementation.
type LockKind int

const (
	// LockDistributed is the asymmetric distributed lock of ref [15].
	LockDistributed LockKind = iota
	// LockCentralized is the TAS-over-SDRAM ablation baseline.
	LockCentralized
)

func (lk LockKind) String() string {
	if lk == LockCentralized {
		return "centralized"
	}
	return "distributed"
}

// Config describes a system. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	Tiles      int
	ICache     cache.Config
	DCache     cache.Config
	LocalBytes int
	SDRAMBytes int
	SDRAM      mem.SDRAMConfig
	NoC        noc.Config // Tiles field is overwritten from Config.Tiles
	Locks      LockKind
	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles sim.Time
	// CentralLockWords is the capacity of the centralized lock table.
	CentralLockWords int
}

// DefaultConfig is the 32-tile system used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Tiles:            32,
		ICache:           cache.Config{Size: 4096, Ways: 2, LineSize: 32},
		DCache:           cache.Config{Size: 8192, Ways: 2, LineSize: 32},
		LocalBytes:       64 * 1024,
		SDRAMBytes:       32 << 20,
		SDRAM:            mem.DefaultSDRAMConfig(),
		NoC:              noc.DefaultConfig(),
		Locks:            LockDistributed,
		MaxCycles:        2_000_000_000,
		CentralLockWords: 4096,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("soc: %d tiles", c.Tiles)
	}
	if err := c.ICache.Valid(); err != nil {
		return err
	}
	if err := c.DCache.Valid(); err != nil {
		return err
	}
	if c.SDRAM.LineSize != c.DCache.LineSize {
		return fmt.Errorf("soc: SDRAM burst %d != D-cache line %d", c.SDRAM.LineSize, c.DCache.LineSize)
	}
	if int(LocalStride) < c.LocalBytes {
		return fmt.Errorf("soc: local memory %d exceeds stride", c.LocalBytes)
	}
	return nil
}

// System is an assembled simulated SoC.
type System struct {
	K      *sim.Kernel
	Cfg    Config
	SDRAM  *mem.SDRAM
	Locals []*mem.Local
	Net    *noc.Network
	Tiles  []*Tile

	Locks lock.Locker
	// DLock is non-nil when Locks is the distributed implementation;
	// the runtime uses it to install transfer hooks.
	DLock *lock.Distributed
	// CLock is non-nil when Locks is the centralized implementation.
	CLock *lock.Centralized

	// centralLockBase is where the centralized lock table lives.
	centralLockBase mem.Addr
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := sim.New()
	k.MaxTime = cfg.MaxCycles
	s := &System{K: k, Cfg: cfg}
	s.SDRAM = mem.NewSDRAM(k, SDRAMBase, cfg.SDRAMBytes, cfg.SDRAM)
	s.Locals = make([]*mem.Local, cfg.Tiles)
	for i := range s.Locals {
		s.Locals[i] = mem.NewLocal(i, LocalAddr(i, 0), cfg.LocalBytes)
	}
	nocCfg := cfg.NoC
	nocCfg.Tiles = cfg.Tiles
	net, err := noc.New(k, nocCfg, s.Locals)
	if err != nil {
		return nil, err
	}
	s.Net = net
	switch cfg.Locks {
	case LockCentralized:
		// The lock table sits at the top of SDRAM, away from data.
		s.centralLockBase = SDRAMBase + mem.Addr(cfg.SDRAMBytes-cfg.CentralLockWords*4)
		s.CLock = lock.NewCentralized(s.SDRAM, s.centralLockBase, cfg.CentralLockWords)
		s.Locks = s.CLock
	default:
		s.DLock = lock.NewDistributed(k, s.Net)
		s.Locks = s.DLock
	}
	s.Tiles = make([]*Tile, cfg.Tiles)
	for i := range s.Tiles {
		s.Tiles[i] = newTile(s, i)
	}
	return s, nil
}

// LocalAddr returns the global address of offset off inside tile t's local
// memory.
func LocalAddr(t int, off mem.Addr) mem.Addr {
	return LocalBase + mem.Addr(t)*LocalStride + off
}

// LocalOffset inverts LocalAddr for any tile, returning the owning tile and
// the offset.
func LocalOffset(a mem.Addr) (tile int, off mem.Addr) {
	if a < LocalBase {
		panic(fmt.Sprintf("soc: %#x is not a local address", a))
	}
	rel := a - LocalBase
	return int(rel / LocalStride), rel % LocalStride
}

// Run executes the simulation to completion.
func (s *System) Run() error { return s.K.Run() }

// TotalStats sums all tile stats.
func (s *System) TotalStats() TileStats {
	var t TileStats
	for _, tl := range s.Tiles {
		t.Add(tl.Stats)
	}
	return t
}

// Package soc assembles the simulated many-core system of the paper's
// Fig. 7: n tiles, each with an in-order MicroBlaze-like core, a private
// I-cache and non-coherent write-back D-cache, and a dual-port local
// memory; a shared SDRAM behind one arbitrated bus; a write-only NoC
// between the tiles; and per-tile lock units (internal/lock).
//
// The tile exposes exactly the micro-architectural event counters the
// paper's platform measures (Section V-B: "It contains support to measure
// micro-architectural events, like counting instructions and cache
// misses"), broken down into the stall categories of Fig. 8: instruction
// cache stalls, write stalls, shared-read stalls, private-read stalls, and
// busy (utilization) cycles.
package soc

import (
	"fmt"

	"pmc/internal/cache"
	"pmc/internal/lock"
	"pmc/internal/mem"
	"pmc/internal/noc"
	"pmc/internal/sim"
)

// Memory map constants. SDRAM occupies low addresses; cluster scratch
// memories are spaced at ClusterStride starting at ClusterBase; tile-local
// memories are spaced at LocalStride starting at LocalBase.
const (
	SDRAMBase     = mem.Addr(0x0000_0000)
	ClusterBase   = mem.Addr(0x4000_0000)
	ClusterStride = mem.Addr(0x0010_0000)
	LocalBase     = mem.Addr(0x8000_0000)
	LocalStride   = mem.Addr(0x0010_0000)
)

// MaxClusters keeps the cluster scratch windows below LocalBase.
const MaxClusters = int((LocalBase - ClusterBase) / ClusterStride)

// LockKind selects the lock implementation.
type LockKind int

const (
	// LockDistributed is the asymmetric distributed lock of ref [15].
	LockDistributed LockKind = iota
	// LockCentralized is the TAS-over-SDRAM ablation baseline.
	LockCentralized
)

func (lk LockKind) String() string {
	if lk == LockCentralized {
		return "centralized"
	}
	return "distributed"
}

// Config describes a system. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	Tiles      int
	ICache     cache.Config
	DCache     cache.Config
	LocalBytes int
	SDRAMBytes int
	SDRAM      mem.SDRAMConfig
	NoC        noc.Config // Tiles field is overwritten from Config.Tiles
	Locks      LockKind
	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles sim.Time
	// CentralLockWords is the capacity of the centralized lock table.
	CentralLockWords int
	// Clusters groups the tiles into that many equal clusters, each with
	// its own scratch memory. 0 or 1 means the flat single-cluster
	// system — the exact configuration of the paper; every flat metric
	// is reproduced bit-for-bit as the 1-cluster special case.
	Clusters int
	// ClusterBytes is each cluster scratch memory's size (0 = 256 KiB).
	ClusterBytes int
	// EventQueue selects the simulation kernel's pending-event queue;
	// the zero value is the timing wheel, sim.QueueHeap the reference
	// binary heap. Results are identical; see sim.QueueKind.
	EventQueue sim.QueueKind
}

// clusters returns the normalized cluster count: an explicit Clusters
// wins; otherwise a cluster NoC topology implies Tiles/Local clusters (so
// sweeping a "cluster:16xmesh" topology needs no second knob); otherwise
// the system is one flat cluster.
func (c Config) clusters() int {
	if c.Clusters > 1 {
		return c.Clusters
	}
	if t := c.NoC.Topology; t.Kind == noc.KindCluster && t.Local > 0 && c.Tiles >= t.Local && c.Tiles%t.Local == 0 {
		return c.Tiles / t.Local
	}
	return 1
}

// clusterBytes returns the normalized per-cluster scratch size.
func (c Config) clusterBytes() int {
	if c.ClusterBytes == 0 {
		return 256 * 1024
	}
	return c.ClusterBytes
}

// ClusterMemBytes returns the effective per-cluster scratch memory size
// (ClusterBytes with the default applied).
func (c Config) ClusterMemBytes() int { return c.clusterBytes() }

// DefaultConfig is the 32-tile system used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Tiles:            32,
		ICache:           cache.Config{Size: 4096, Ways: 2, LineSize: 32},
		DCache:           cache.Config{Size: 8192, Ways: 2, LineSize: 32},
		LocalBytes:       64 * 1024,
		SDRAMBytes:       32 << 20,
		SDRAM:            mem.DefaultSDRAMConfig(),
		NoC:              noc.DefaultConfig(),
		Locks:            LockDistributed,
		MaxCycles:        2_000_000_000,
		CentralLockWords: 4096,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("soc: %d tiles", c.Tiles)
	}
	if err := c.ICache.Valid(); err != nil {
		return err
	}
	if err := c.DCache.Valid(); err != nil {
		return err
	}
	if c.SDRAM.LineSize != c.DCache.LineSize {
		return fmt.Errorf("soc: SDRAM burst %d != D-cache line %d", c.SDRAM.LineSize, c.DCache.LineSize)
	}
	if int(LocalStride) < c.LocalBytes {
		return fmt.Errorf("soc: local memory %d exceeds stride", c.LocalBytes)
	}
	if c.Clusters < 0 {
		return fmt.Errorf("soc: %d clusters", c.Clusters)
	}
	// Surface NoC shape errors (mesh width, cluster divisibility) before
	// the derived cluster checks below, so an indivisible cluster
	// topology reports the precise NoC message.
	nocCfg := c.NoC.WithDefaults()
	nocCfg.Tiles = c.Tiles
	if err := nocCfg.Validate(); err != nil {
		return err
	}
	cl := c.clusters()
	if cl > MaxClusters {
		return fmt.Errorf("soc: %d clusters exceeds the address map's maximum %d", cl, MaxClusters)
	}
	if c.Tiles%cl != 0 {
		return fmt.Errorf("soc: %d tiles do not divide evenly into %d clusters", c.Tiles, cl)
	}
	if int(ClusterStride) < c.clusterBytes() {
		return fmt.Errorf("soc: cluster memory %d exceeds stride", c.clusterBytes())
	}
	if topo := c.NoC.Topology; topo.Kind == noc.KindCluster && topo.Local != 0 && topo.Local != c.Tiles/cl {
		return fmt.Errorf("soc: NoC cluster topology has %d tiles per cluster, but %d tiles / %d clusters = %d",
			topo.Local, c.Tiles, cl, c.Tiles/cl)
	}
	return nil
}

// Cluster is one group of tiles sharing a scratch memory: the level
// between the SoC and the tiles. The flat system is exactly one cluster.
type Cluster struct {
	ID  int
	Sys *System
	// Scratch is the cluster-shared scratch memory (crossbar-attached,
	// addressable at ClusterAddr(ID, off) from every member tile and
	// over the NoC).
	Scratch *mem.Local
	// Tiles are the member tiles, in global tile order.
	Tiles []*Tile
}

// System is an assembled simulated SoC.
type System struct {
	K      *sim.Kernel
	Cfg    Config
	SDRAM  *mem.SDRAM
	Locals []*mem.Local
	Net    *noc.Network
	Tiles  []*Tile
	// Clusters is the cluster level; flat configurations have exactly
	// one entry holding every tile.
	Clusters []*Cluster

	Locks lock.Locker
	// DLock is non-nil when Locks is the distributed implementation;
	// the runtime uses it to install transfer hooks.
	DLock *lock.Distributed
	// CLock is non-nil when Locks is the centralized implementation.
	CLock *lock.Centralized

	// centralLockBase is where the centralized lock table lives.
	centralLockBase mem.Addr
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewWithQueue(cfg.EventQueue)
	k.MaxTime = cfg.MaxCycles
	s := &System{K: k, Cfg: cfg}
	s.SDRAM = mem.NewSDRAM(k, SDRAMBase, cfg.SDRAMBytes, cfg.SDRAM)
	s.Locals = make([]*mem.Local, cfg.Tiles)
	for i := range s.Locals {
		s.Locals[i] = mem.NewLocal(i, LocalAddr(i, 0), cfg.LocalBytes)
	}
	clusters := cfg.clusters()
	tilesPer := cfg.Tiles / clusters
	s.Clusters = make([]*Cluster, clusters)
	for i := range s.Clusters {
		s.Clusters[i] = &Cluster{
			ID:      i,
			Sys:     s,
			Scratch: mem.NewLocal(i*tilesPer, ClusterAddr(i, 0), cfg.clusterBytes()),
		}
	}
	nocCfg := cfg.NoC
	nocCfg.Tiles = cfg.Tiles
	if nocCfg.Topology.Kind == noc.KindCluster && nocCfg.Topology.Local == 0 {
		nocCfg.Topology.Local = tilesPer
	}
	net, err := noc.New(k, nocCfg, s.Locals)
	if err != nil {
		return nil, err
	}
	// Remote writes into a cluster-scratch window land in the cluster
	// memory the address names (like local addresses, the address
	// identifies the destination RAM); everything else goes to the
	// destination tile's local memory.
	net.SetMemResolver(func(dst int, addr mem.Addr) *mem.Local {
		if addr >= ClusterBase && addr < LocalBase {
			cl, _ := ClusterOffset(addr)
			return s.Clusters[cl].Scratch
		}
		return s.Locals[dst]
	})
	s.Net = net
	switch cfg.Locks {
	case LockCentralized:
		// The lock table sits at the top of SDRAM, away from data.
		s.centralLockBase = SDRAMBase + mem.Addr(cfg.SDRAMBytes-cfg.CentralLockWords*4)
		s.CLock = lock.NewCentralized(s.SDRAM, s.centralLockBase, cfg.CentralLockWords)
		s.Locks = s.CLock
	default:
		s.DLock = lock.NewDistributed(k, s.Net)
		s.Locks = s.DLock
	}
	s.Tiles = make([]*Tile, cfg.Tiles)
	for i := range s.Tiles {
		s.Tiles[i] = newTile(s, i)
		cl := s.Clusters[i/tilesPer]
		s.Tiles[i].Cluster = cl
		cl.Tiles = append(cl.Tiles, s.Tiles[i])
	}
	return s, nil
}

// TilesPerCluster returns the cluster size.
func (s *System) TilesPerCluster() int { return s.Cfg.Tiles / len(s.Clusters) }

// ClusterOf returns the cluster containing the given tile.
func (s *System) ClusterOf(tile int) *Cluster {
	return s.Clusters[tile/s.TilesPerCluster()]
}

// LocalAddr returns the global address of offset off inside tile t's local
// memory.
func LocalAddr(t int, off mem.Addr) mem.Addr {
	return LocalBase + mem.Addr(t)*LocalStride + off
}

// LocalOffset inverts LocalAddr for any tile, returning the owning tile and
// the offset.
func LocalOffset(a mem.Addr) (tile int, off mem.Addr) {
	if a < LocalBase {
		panic(fmt.Sprintf("soc: %#x is not a local address", a))
	}
	rel := a - LocalBase
	return int(rel / LocalStride), rel % LocalStride
}

// ClusterAddr returns the global address of offset off inside cluster cl's
// scratch memory.
func ClusterAddr(cl int, off mem.Addr) mem.Addr {
	return ClusterBase + mem.Addr(cl)*ClusterStride + off
}

// ClusterOffset inverts ClusterAddr, returning the owning cluster and the
// offset.
func ClusterOffset(a mem.Addr) (cluster int, off mem.Addr) {
	if a < ClusterBase || a >= LocalBase {
		panic(fmt.Sprintf("soc: %#x is not a cluster-scratch address", a))
	}
	rel := a - ClusterBase
	return int(rel / ClusterStride), rel % ClusterStride
}

// Run executes the simulation to completion.
func (s *System) Run() error { return s.K.Run() }

// TotalStats sums all tile stats.
func (s *System) TotalStats() TileStats {
	var t TileStats
	for _, tl := range s.Tiles {
		t.Add(tl.Stats)
	}
	return t
}

package soc

import (
	"testing"

	"pmc/internal/cache"
	"pmc/internal/mem"
	"pmc/internal/sim"
)

func testConfig(tiles int) Config {
	cfg := DefaultConfig()
	cfg.Tiles = tiles
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.SDRAM.LineSize = 16 // mismatch with D-cache line
	if err := bad.Validate(); err == nil {
		t.Fatal("line-size mismatch not rejected")
	}
}

func TestSystemTopology(t *testing.T) {
	// Fig. 7: n tiles with local memories, one SDRAM, a write-only NoC.
	s, err := New(testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tiles) != 32 || len(s.Locals) != 32 {
		t.Fatalf("tiles=%d locals=%d, want 32", len(s.Tiles), len(s.Locals))
	}
	if s.Net.Config().Tiles != 32 {
		t.Fatal("NoC not sized to the tile count")
	}
	if s.DLock == nil {
		t.Fatal("default lock should be distributed")
	}
	// Local address map round-trips.
	for _, tile := range []int{0, 7, 31} {
		a := LocalAddr(tile, 0x40)
		tl, off := LocalOffset(a)
		if tl != tile || off != 0x40 {
			t.Fatalf("LocalOffset(LocalAddr(%d, 0x40)) = (%d, %#x)", tile, tl, off)
		}
	}
}

func TestExecWarmCodeRunsFromCache(t *testing.T) {
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[0]
	s.K.Spawn("core", func(p *sim.Proc) {
		tile.SetCodeFootprint(0x1000, 1024) // fits 4 KiB I-cache
		tile.Exec(p, 256*4)                 // several passes over the loop
		warmIStall := tile.Stats.IStall
		before := tile.Stats
		tile.Exec(p, 1024)
		if tile.Stats.IStall != warmIStall {
			t.Errorf("warm loop still missing: IStall %d -> %d", warmIStall, tile.Stats.IStall)
		}
		if got := tile.Stats.Busy - before.Busy; got != 1024 {
			t.Errorf("busy delta = %d, want 1024", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecThrashingFootprintStalls(t *testing.T) {
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[0]
	s.K.Spawn("core", func(p *sim.Proc) {
		tile.SetCodeFootprint(0x1000, 8192) // 2x the 4 KiB direct-mapped I-cache
		tile.Exec(p, 8192/4*3)              // three passes: every line misses every pass
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tile.Stats.IStall == 0 {
		t.Fatal("thrashing footprint produced no I-stalls")
	}
	// Every pass misses all 256 lines; expect stalls to dominate busy.
	if tile.Stats.IStall < tile.Stats.Busy {
		t.Fatalf("IStall=%d Busy=%d: expected stall-dominated", tile.Stats.IStall, tile.Stats.Busy)
	}
}

func TestUncachedSharedReadCostsBusAccess(t *testing.T) {
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[0]
	s.SDRAM.Write32(0x4000, 99)
	s.K.Spawn("core", func(p *sim.Proc) {
		if v := tile.ReadShared32Uncached(p, 0x4000); v != 99 {
			t.Errorf("read %d, want 99", v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tile.Stats.SharedReadStall < s.Cfg.SDRAM.WordLat {
		t.Fatalf("shared read stall %d < word latency %d", tile.Stats.SharedReadStall, s.Cfg.SDRAM.WordLat)
	}
	if tile.Stats.SharedReads != 1 {
		t.Fatalf("SharedReads = %d", tile.Stats.SharedReads)
	}
}

func TestCachedSharedReadAmortizes(t *testing.T) {
	// Reading 8 words of one line: uncached pays 8 bus words, cached
	// pays one line fill. This asymmetry is the whole Fig. 8 story.
	run := func(cached bool) sim.Time {
		s, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		tile := s.Tiles[0]
		s.K.Spawn("core", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				a := mem.Addr(0x4000 + 4*i)
				if cached {
					tile.ReadShared32Cached(p, a)
				} else {
					tile.ReadShared32Uncached(p, a)
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return tile.Stats.SharedReadStall
	}
	unc, cch := run(false), run(true)
	if cch >= unc {
		t.Fatalf("cached stall %d not below uncached %d", cch, unc)
	}
}

func TestPostedUncachedWriteDoesNotBlockCore(t *testing.T) {
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[0]
	var elapsed sim.Time
	s.K.Spawn("core", func(p *sim.Proc) {
		tile.Exec(p, 32) // warm the I-cache so only the writes are measured
		t0 := p.Now()
		for i := 0; i < 4; i++ {
			tile.WriteShared32Uncached(p, mem.Addr(0x4000+4*i), uint32(i))
		}
		elapsed = p.Now() - t0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 posted writes: ~2 cycles each (fetch+exec, store buffer), far
	// below 4 full bus transactions (32 cycles).
	if elapsed >= 4*s.Cfg.SDRAM.WordLat {
		t.Fatalf("posted writes took %d cycles, expected well under %d", elapsed, 4*s.Cfg.SDRAM.WordLat)
	}
	// But the data still lands.
	if got := s.SDRAM.Read32(0x400c); got != 3 {
		t.Fatalf("posted write lost: %d", got)
	}
}

func TestFlushSharedWritesBackAndCharges(t *testing.T) {
	s, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[0]
	s.K.Spawn("core", func(p *sim.Proc) {
		tile.WriteShared32Cached(p, 0x4000, 1)
		tile.WriteShared32Cached(p, 0x4020, 2) // second line
		tile.FlushShared(p, 0x4000, 64)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SDRAM.Read32(0x4000) != 1 || s.SDRAM.Read32(0x4020) != 2 {
		t.Fatal("flush lost dirty data")
	}
	if tile.Stats.FlushInstrs != 2 {
		t.Fatalf("FlushInstrs = %d, want 2", tile.Stats.FlushInstrs)
	}
	if tile.Stats.FlushStall == 0 {
		t.Fatal("dirty flush must cost bus time")
	}
}

func TestCopyToFromLocal(t *testing.T) {
	s, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	tile := s.Tiles[1]
	for i := 0; i < 16; i++ {
		s.SDRAM.Write32(mem.Addr(0x5000+4*i), uint32(i*i))
	}
	s.K.Spawn("core", func(p *sim.Proc) {
		dst := LocalAddr(1, 0x100)
		tile.CopyToLocal(p, 0x5000, dst, 64)
		if v := tile.ReadLocal32(p, dst+4*5); v != 25 {
			t.Errorf("local copy word 5 = %d, want 25", v)
		}
		tile.WriteLocal32(p, dst+4*5, 999)
		tile.CopyFromLocal(p, dst, 0x5000, 64)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := s.SDRAM.Read32(0x5000 + 20); v != 999 {
		t.Fatalf("copy back lost data: %d", v)
	}
	if tile.Stats.CopyStall == 0 {
		t.Fatal("block copies must cost time")
	}
}

func TestLockIntegrationAttributesWait(t *testing.T) {
	s, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tile := s.Tiles[i]
		s.K.Spawn("w", func(p *sim.Proc) {
			tile.AcquireLock(p, 7)
			p.Wait(50)
			tile.ReleaseLock(p, 7)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	total := s.TotalStats()
	if total.LockWait == 0 {
		t.Fatal("contended lock produced no recorded wait")
	}
}

func TestCentralizedLockSelection(t *testing.T) {
	cfg := testConfig(2)
	cfg.Locks = LockCentralized
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.CLock == nil || s.DLock != nil {
		t.Fatal("centralized lock not selected")
	}
	done := false
	tile := s.Tiles[0]
	s.K.Spawn("w", func(p *sim.Proc) {
		tile.AcquireLock(p, 3)
		tile.ReleaseLock(p, 3)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("centralized lock did not complete")
	}
}

func TestStatsTotalIncludesAllCategories(t *testing.T) {
	st := TileStats{Busy: 1, IStall: 2, PrivReadStall: 3, SharedReadStall: 4,
		WriteStall: 5, FlushStall: 6, LockWait: 7, CopyStall: 8}
	if st.Total() != 36 {
		t.Fatalf("Total = %d, want 36", st.Total())
	}
	var sum TileStats
	sum.Add(st)
	sum.Add(st)
	if sum.Total() != 72 {
		t.Fatalf("Add/Total = %d, want 72", sum.Total())
	}
}

func TestDefaultICacheGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ICache.Sets()*cfg.ICache.LineSize*cfg.ICache.Ways != cfg.ICache.Size {
		t.Fatal("I-cache geometry inconsistent")
	}
	if err := (cache.Config{Size: cfg.ICache.Size, Ways: cfg.ICache.Ways, LineSize: cfg.ICache.LineSize}).Valid(); err != nil {
		t.Fatal(err)
	}
}

package soc

import (
	"encoding/binary"

	"pmc/internal/cache"
	"pmc/internal/mem"
	"pmc/internal/sim"
)

// TileStats are the per-core micro-architectural counters of the paper's
// platform, split into the Fig. 8 stall categories. All values are cycles
// unless noted.
type TileStats struct {
	Busy            sim.Time // executing instructions (utilization)
	IStall          sim.Time // instruction cache miss stalls
	PrivReadStall   sim.Time // data stalls reading private data
	SharedReadStall sim.Time // data stalls reading shared data
	WriteStall      sim.Time // data stalls on writes (private or shared)
	FlushStall      sim.Time // bus time blocked behind cache-flush writebacks
	LockWait        sim.Time // waiting for lock grants (local spin)
	CopyStall       sim.Time // block copies between SDRAM and local/SPM

	Instrs       uint64 // instructions executed (incl. flush instructions)
	FlushInstrs  uint64 // cache-control instructions executed
	SharedReads  uint64
	SharedWrites uint64
	PrivReads    uint64
	PrivWrites   uint64
}

// Add accumulates o into t.
func (t *TileStats) Add(o TileStats) {
	t.Busy += o.Busy
	t.IStall += o.IStall
	t.PrivReadStall += o.PrivReadStall
	t.SharedReadStall += o.SharedReadStall
	t.WriteStall += o.WriteStall
	t.FlushStall += o.FlushStall
	t.LockWait += o.LockWait
	t.CopyStall += o.CopyStall
	t.Instrs += o.Instrs
	t.FlushInstrs += o.FlushInstrs
	t.SharedReads += o.SharedReads
	t.SharedWrites += o.SharedWrites
	t.PrivReads += o.PrivReads
	t.PrivWrites += o.PrivWrites
}

// Total returns the accounted cycles (the denominator of Fig. 8 bars).
func (t *TileStats) Total() sim.Time {
	return t.Busy + t.IStall + t.PrivReadStall + t.SharedReadStall +
		t.WriteStall + t.FlushStall + t.LockWait + t.CopyStall
}

// Tile is one processing element: core timing state, caches, local memory.
type Tile struct {
	ID    int
	Sys   *System
	IC    *cache.Cache
	DC    *cache.Cache
	Local *mem.Local
	// Cluster is the tile's cluster (every tile belongs to exactly one;
	// the flat system has a single cluster holding all tiles).
	Cluster *Cluster

	Stats TileStats

	// I-fetch walker state: the core's PC advances through a per-phase
	// code footprint in SDRAM, structured as a hot loop (hotSize bytes,
	// walked innerPasses times) followed by one pass over a cold
	// section (coldSize bytes) — the loop-nest shape of real kernels.
	// coldSize 0 degenerates to a plain cyclic walk.
	codeBase   mem.Addr
	hotSize    int
	coldSize   int
	innerPass  int
	pc         int // byte offset within the current region
	inCold     bool
	passesDone int
}

func newTile(s *System, id int) *Tile {
	t := &Tile{
		ID:    id,
		Sys:   s,
		IC:    cache.New(s.Cfg.ICache, s.SDRAM.RAM),
		DC:    cache.New(s.Cfg.DCache, s.SDRAM.RAM),
		Local: s.Locals[id],
	}
	// Until a workload declares its footprint, fetch from a tiny
	// per-tile stub that always fits the I-cache.
	t.SetCodeFootprint(mem.Addr(id)*64, 64)
	return t
}

// SetCodeFootprint declares the code region (inside SDRAM) the core is
// currently executing from. Instruction fetch walks it cyclically; a
// footprint larger than the I-cache thrashes, smaller runs from cache
// after warm-up — the source of Fig. 8's I-cache stall differences.
func (t *Tile) SetCodeFootprint(base mem.Addr, size int) {
	t.SetCodeLoop(base, size, 0, 1)
}

// SetCodeLoop declares a loop-nest-shaped code footprint: instruction
// fetch makes innerPasses passes over the hot region of hotBytes, then one
// pass over the cold section of coldBytes, and repeats. Real kernels spend
// most fetches in hot loops that fit the I-cache and miss only on the
// colder control code around them; the ratio of the regions and the pass
// count set the steady-state I-miss rate.
func (t *Tile) SetCodeLoop(base mem.Addr, hotBytes, coldBytes, innerPasses int) {
	ls := t.Sys.Cfg.ICache.LineSize
	round := func(b int) int {
		if b < ls {
			b = ls
		}
		return (b / ls) * ls
	}
	t.codeBase = base
	t.hotSize = round(hotBytes)
	if coldBytes > 0 {
		t.coldSize = round(coldBytes)
	} else {
		t.coldSize = 0
	}
	if innerPasses < 1 {
		innerPasses = 1
	}
	t.innerPass = innerPasses
	t.pc = 0
	t.inCold = false
	t.passesDone = 0
}

// instrsPerLine is fixed by the 32-bit MicroBlaze ISA.
func (t *Tile) instrsPerLine() int { return t.Sys.Cfg.ICache.LineSize / 4 }

// fetchAndExec walks n instructions through the I-cache, charging fill
// stalls, and advances simulated time for the execute cycles (1 per
// instruction). It is the single bottleneck through which all "executed
// instructions" pass.
func (t *Tile) fetchAndExec(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	t.Stats.Instrs += uint64(n)
	lineBytes := t.instrsPerLine() * 4
	remaining := n
	for remaining > 0 {
		regionSize := t.hotSize
		regionOff := 0
		if t.inCold {
			regionSize = t.coldSize
			regionOff = t.hotSize
		}
		lineOff := t.pc % lineBytes
		inLine := (lineBytes - lineOff) / 4
		if inLine > remaining {
			inLine = remaining
		}
		lineAddr := t.codeBase + mem.Addr(regionOff+t.pc-lineOff)
		if res, _ := t.IC.Probe(lineAddr); !res {
			// Miss: fill from SDRAM.
			t.Stats.IStall += t.Sys.SDRAM.AccessLine(p, lineAddr)
			t.IC.Read32(lineAddr) // install the line (data immaterial)
			t.Sys.SDRAM.LineFills++
		}
		p.Wait(sim.Time(inLine))
		t.Stats.Busy += sim.Time(inLine)
		t.pc += inLine * 4
		if t.pc >= regionSize {
			t.pc = 0
			if t.inCold {
				t.inCold = false
				t.passesDone = 0
			} else {
				t.passesDone++
				if t.passesDone >= t.innerPass && t.coldSize > 0 {
					t.inCold = true
				}
			}
		}
		remaining -= inLine
	}
}

// Exec models n instructions of pure computation.
func (t *Tile) Exec(p *sim.Proc, n int) { t.fetchAndExec(p, n) }

// chargeTraffic converts D-cache traffic into memory stall time and
// returns the cycles stalled. addr is the accessed line (for bank routing);
// the victim writeback is routed by its own address.
func (t *Tile) chargeTraffic(p *sim.Proc, addr mem.Addr, tr cache.Traffic) sim.Time {
	var stall sim.Time
	if tr.Writeback {
		stall += t.Sys.SDRAM.AccessLine(p, tr.WritebackAddr)
		t.Sys.SDRAM.LineWBs++
	}
	if tr.Fill {
		stall += t.Sys.SDRAM.AccessLine(p, addr)
		t.Sys.SDRAM.LineFills++
	}
	return stall
}

// ReadPrivate32 loads a word of private (always cacheable) data.
func (t *Tile) ReadPrivate32(p *sim.Proc, addr mem.Addr) uint32 {
	t.fetchAndExec(p, 1)
	t.Stats.PrivReads++
	v, tr := t.DC.Read32(addr)
	t.Stats.PrivReadStall += t.chargeTraffic(p, addr, tr)
	return v
}

// WritePrivate32 stores a word of private data (write-back cached).
func (t *Tile) WritePrivate32(p *sim.Proc, addr mem.Addr, v uint32) {
	t.fetchAndExec(p, 1)
	t.Stats.PrivWrites++
	tr := t.DC.Write32(addr, v)
	t.Stats.WriteStall += t.chargeTraffic(p, addr, tr)
}

// ReadShared32Cached loads shared data through the D-cache (SWCC mode).
func (t *Tile) ReadShared32Cached(p *sim.Proc, addr mem.Addr) uint32 {
	t.fetchAndExec(p, 1)
	t.Stats.SharedReads++
	v, tr := t.DC.Read32(addr)
	t.Stats.SharedReadStall += t.chargeTraffic(p, addr, tr)
	return v
}

// WriteShared32Cached stores shared data through the D-cache (SWCC mode).
func (t *Tile) WriteShared32Cached(p *sim.Proc, addr mem.Addr, v uint32) {
	t.fetchAndExec(p, 1)
	t.Stats.SharedWrites++
	tr := t.DC.Write32(addr, v)
	t.Stats.WriteStall += t.chargeTraffic(p, addr, tr)
}

// ReadShared32Uncached loads shared data directly over the bus (noCC mode):
// the core stalls for arbitration plus the word access.
func (t *Tile) ReadShared32Uncached(p *sim.Proc, addr mem.Addr) uint32 {
	t.fetchAndExec(p, 1)
	t.Stats.SharedReads++
	v, stall := t.Sys.SDRAM.ReadWord(p, addr)
	t.Stats.SharedReadStall += stall
	return v
}

// WriteShared32Uncached stores shared data directly over the bus. Like the
// MicroBlaze's posted store buffer, the core does not wait for the bus: it
// reserves a slot and continues; a later access queues behind it.
func (t *Tile) WriteShared32Uncached(p *sim.Proc, addr mem.Addr, v uint32) {
	t.fetchAndExec(p, 1)
	t.Stats.SharedWrites++
	s := t.Sys.SDRAM
	end := s.ReserveWordAt(p.Now(), addr)
	s.WordWrites++
	// The data lands when the memory slot completes.
	t.Sys.K.ScheduleAt(end, func() { s.Write32(addr, v) })
	// One cycle to enter the store buffer.
	p.Wait(1)
	t.Stats.WriteStall++
}

// ReadLocal32 loads from this tile's local memory: single-cycle, already
// covered by the instruction's execute cycle (LMB-style).
func (t *Tile) ReadLocal32(p *sim.Proc, addr mem.Addr) uint32 {
	t.fetchAndExec(p, 1)
	t.Local.CoreReads++
	return t.Local.Read32(addr)
}

// WriteLocal32 stores to this tile's local memory in a single cycle.
func (t *Tile) WriteLocal32(p *sim.Proc, addr mem.Addr, v uint32) {
	t.fetchAndExec(p, 1)
	t.Local.CoreWrites++
	t.Local.Write32(addr, v)
}

// dmaSetupInstrs is the instruction cost of programming a block-move
// (address/length registers plus the kick) charged once per DMA-style
// transfer, independent of its size.
const dmaSetupInstrs = 4

// ReadSharedRangeCached loads a word range of shared data through the
// D-cache (SWCC mode). Every missing line of the range is installed first
// with a single multi-line burst transaction (one arbitration, lines
// streamed back-to-back on the channel) instead of a per-word arbitrated
// fill, then the words are copied out of the cache at one instruction
// each. Each touched line moves over the bus at most once per range, and
// the cache sees one transaction per line (FillRange's hit/miss per
// line), not one per word — the DMA-engine access pattern.
func (t *Tile) ReadSharedRangeCached(p *sim.Proc, addr mem.Addr, dst []uint32) {
	if len(dst) == 0 {
		return
	}
	t.Stats.SharedReads += uint64(len(dst))
	fills, wbs := t.DC.FillRange(addr, len(dst)*4)
	for _, wb := range wbs {
		t.Stats.WriteStall += t.Sys.SDRAM.AccessLine(p, wb)
		t.Sys.SDRAM.LineWBs++
	}
	if fills > 0 {
		t.Stats.SharedReadStall += t.Sys.SDRAM.AccessLines(p, addr, fills)
		t.Sys.SDRAM.LineFills += uint64(fills)
	}
	t.fetchAndExec(p, len(dst))
	if t.DC.ReadRange32(addr, dst) {
		return
	}
	// A range larger than the cache evicted its own head while filling
	// its tail; fall back to the per-word path with charged traffic.
	for i := range dst {
		v, tr := t.DC.Read32(addr + mem.Addr(4*i))
		t.Stats.SharedReadStall += t.chargeTraffic(p, addr+mem.Addr(4*i), tr)
		dst[i] = v
	}
}

// WriteSharedRangeCached stores a word range of shared data through the
// D-cache (SWCC mode). Lines completely covered by the range are installed
// dirty without a write-allocate fill (every byte is overwritten, so the
// fetch would be wasted); partially covered boundary lines are filled with
// one burst first. Victim writebacks are charged per line.
func (t *Tile) WriteSharedRangeCached(p *sim.Proc, addr mem.Addr, src []uint32) {
	if len(src) == 0 {
		return
	}
	t.Stats.SharedWrites += uint64(len(src))
	ls := t.Sys.Cfg.DCache.LineSize
	end := addr + mem.Addr(len(src)*4)
	first := t.DC.LineBase(addr)
	last := t.DC.LineBase(end - 1)
	partialFills := 0
	lineBuf := make([]byte, ls)
	for a := first; ; a += mem.Addr(ls) {
		if a >= addr && a+mem.Addr(ls) <= end {
			// Whole line overwritten from the source buffer: install it
			// dirty, skipping the write-allocate fill.
			base := int(a-addr) / 4
			for i := 0; i < ls/4; i++ {
				binary.LittleEndian.PutUint32(lineBuf[4*i:], src[base+i])
			}
			if tr := t.DC.WriteLineFull(a, lineBuf); tr.Writeback {
				t.Stats.WriteStall += t.Sys.SDRAM.AccessLine(p, tr.WritebackAddr)
				t.Sys.SDRAM.LineWBs++
			}
		} else {
			// Partially covered boundary line: needs its other bytes.
			fills, wbs := t.DC.FillRange(a, 1)
			for _, wb := range wbs {
				t.Stats.WriteStall += t.Sys.SDRAM.AccessLine(p, wb)
				t.Sys.SDRAM.LineWBs++
			}
			partialFills += fills
		}
		if a == last {
			break
		}
	}
	if partialFills > 0 {
		t.Stats.WriteStall += t.Sys.SDRAM.AccessLines(p, addr, partialFills)
		t.Sys.SDRAM.LineFills += uint64(partialFills)
	}
	t.fetchAndExec(p, len(src))
	// Boundary words stream into the just-filled lines without further
	// cache transactions (the per-line install/fill above accounted
	// them); full lines already hold their data.
	for i, v := range src {
		a := addr + mem.Addr(4*i)
		if lb := t.DC.LineBase(a); lb >= addr && lb+mem.Addr(ls) <= end {
			continue // full line, installed above
		}
		if !t.DC.WriteRange32(a, src[i:i+1]) {
			// Self-evicted while filling a giant range: per-word path.
			tr := t.DC.Write32(a, v)
			t.Stats.WriteStall += t.chargeTraffic(p, a, tr)
		}
	}
}

// CopyLocal is a DMA-style block move inside this tile's local memory: the
// core programs the engine (dmaSetupInstrs) and the dual-port RAM streams
// one word per cycle, read and write overlapped — half the cost of the
// load/store-per-word loop.
func (t *Tile) CopyLocal(p *sim.Proc, src, dst mem.Addr, size int) {
	t.fetchAndExec(p, dmaSetupInstrs)
	t0 := p.Now()
	words := (size + 3) / 4
	buf := make([]byte, size)
	t.Local.ReadBlock(src, buf)
	t.Local.WriteBlock(dst, buf)
	t.Local.CoreReads += uint64(words)
	t.Local.CoreWrites += uint64(words)
	p.Wait(sim.Time(words))
	t.Stats.CopyStall += p.Now() - t0
}

// FlushShared flush-invalidates the D-cache lines covering [addr,
// addr+size): one cache-control instruction per line plus bus time for each
// dirty writeback. This is the cost the paper reports as "time spent on
// executing flush instructions".
func (t *Tile) FlushShared(p *sim.Proc, addr mem.Addr, size int) {
	if size <= 0 {
		return
	}
	ls := t.Sys.Cfg.DCache.LineSize
	first := t.DC.LineBase(addr)
	last := t.DC.LineBase(addr + mem.Addr(size-1))
	for a := first; ; a += mem.Addr(ls) {
		t.fetchAndExec(p, 1)
		t.Stats.FlushInstrs++
		tr := t.DC.FlushLine(a)
		if tr.Writeback {
			t.Stats.FlushStall += t.Sys.SDRAM.AccessLine(p, a)
			t.Sys.SDRAM.LineWBs++
		}
		if a == last {
			break
		}
	}
}

// InvalidateShared drops the (clean) cache lines covering the range without
// writing back; used on entry to a read-only scope.
func (t *Tile) InvalidateShared(p *sim.Proc, addr mem.Addr, size int) {
	if size <= 0 {
		return
	}
	ls := t.Sys.Cfg.DCache.LineSize
	first := t.DC.LineBase(addr)
	last := t.DC.LineBase(addr + mem.Addr(size-1))
	for a := first; ; a += mem.Addr(ls) {
		t.fetchAndExec(p, 1)
		t.Stats.FlushInstrs++
		t.DC.InvalidateLine(a)
		if a == last {
			break
		}
	}
}

// CopyToLocal copies size bytes from SDRAM into this tile's local memory
// (SPM staging / DSM replica initialization) as one DMA-style burst
// transaction: a single arbitration, then the lines stream back-to-back on
// the data channel while the dual-port local memory absorbs them. A
// one-line copy costs exactly what a single line-burst access does.
func (t *Tile) CopyToLocal(p *sim.Proc, src mem.Addr, dst mem.Addr, size int) {
	if size <= 0 {
		return
	}
	t0 := p.Now()
	ls := t.Sys.Cfg.SDRAM.LineSize
	lines := (size + ls - 1) / ls
	t.Sys.SDRAM.AccessLines(p, src, lines)
	t.Sys.SDRAM.LineFills += uint64(lines)
	buf := make([]byte, size)
	t.Sys.SDRAM.ReadBlock(src, buf)
	t.Local.WriteBlock(dst, buf)
	t.Stats.CopyStall += p.Now() - t0
}

// CopyFromLocal copies size bytes from this tile's local memory back to
// SDRAM in one DMA-style burst transaction.
func (t *Tile) CopyFromLocal(p *sim.Proc, src mem.Addr, dst mem.Addr, size int) {
	if size <= 0 {
		return
	}
	t0 := p.Now()
	ls := t.Sys.Cfg.SDRAM.LineSize
	lines := (size + ls - 1) / ls
	buf := make([]byte, size)
	t.Local.ReadBlock(src, buf)
	t.Sys.SDRAM.AccessLines(p, dst, lines)
	t.Sys.SDRAM.LineWBs += uint64(lines)
	t.Sys.SDRAM.WriteBlock(dst, buf)
	t.Stats.CopyStall += p.Now() - t0
}

// clusterMemLat is the extra crossbar traversal latency of a
// cluster-scratch access over a tile-local one. The scratch is multi-bank
// and the member cores reach it through the cluster crossbar, so an access
// costs the execute cycle plus this fixed arbitration/traversal cycle;
// bank conflicts are not modelled.
const clusterMemLat = sim.Time(1)

// ReadCluster32 loads a word from this tile's cluster scratch memory: one
// instruction plus the crossbar traversal, charged as a shared-read stall.
func (t *Tile) ReadCluster32(p *sim.Proc, addr mem.Addr) uint32 {
	t.fetchAndExec(p, 1)
	p.Wait(clusterMemLat)
	t.Stats.SharedReadStall += clusterMemLat
	t.Stats.SharedReads++
	t.Cluster.Scratch.CoreReads++
	return t.Cluster.Scratch.Read32(addr)
}

// WriteCluster32 stores a word into this tile's cluster scratch memory.
func (t *Tile) WriteCluster32(p *sim.Proc, addr mem.Addr, v uint32) {
	t.fetchAndExec(p, 1)
	p.Wait(clusterMemLat)
	t.Stats.WriteStall += clusterMemLat
	t.Stats.SharedWrites++
	t.Cluster.Scratch.CoreWrites++
	t.Cluster.Scratch.Write32(addr, v)
}

// CopyToCluster copies size bytes from SDRAM into this tile's cluster
// scratch as one DMA-style burst (the cluster-level analogue of
// CopyToLocal).
func (t *Tile) CopyToCluster(p *sim.Proc, src mem.Addr, dst mem.Addr, size int) {
	if size <= 0 {
		return
	}
	t0 := p.Now()
	ls := t.Sys.Cfg.SDRAM.LineSize
	lines := (size + ls - 1) / ls
	t.Sys.SDRAM.AccessLines(p, src, lines)
	t.Sys.SDRAM.LineFills += uint64(lines)
	buf := make([]byte, size)
	t.Sys.SDRAM.ReadBlock(src, buf)
	t.Cluster.Scratch.WriteBlock(dst, buf)
	t.Stats.CopyStall += p.Now() - t0
}

// CopyFromCluster copies size bytes from this tile's cluster scratch back
// to SDRAM in one DMA-style burst.
func (t *Tile) CopyFromCluster(p *sim.Proc, src mem.Addr, dst mem.Addr, size int) {
	if size <= 0 {
		return
	}
	t0 := p.Now()
	ls := t.Sys.Cfg.SDRAM.LineSize
	lines := (size + ls - 1) / ls
	buf := make([]byte, size)
	t.Cluster.Scratch.ReadBlock(src, buf)
	t.Sys.SDRAM.AccessLines(p, dst, lines)
	t.Sys.SDRAM.LineWBs += uint64(lines)
	t.Sys.SDRAM.WriteBlock(dst, buf)
	t.Stats.CopyStall += p.Now() - t0
}

// CopyCluster is a DMA-style block move inside this tile's cluster scratch
// memory: like CopyLocal, one word per cycle with read and write
// overlapped, plus the crossbar traversal once.
func (t *Tile) CopyCluster(p *sim.Proc, src, dst mem.Addr, size int) {
	t.fetchAndExec(p, dmaSetupInstrs)
	t0 := p.Now()
	words := (size + 3) / 4
	buf := make([]byte, size)
	t.Cluster.Scratch.ReadBlock(src, buf)
	t.Cluster.Scratch.WriteBlock(dst, buf)
	t.Cluster.Scratch.CoreReads += uint64(words)
	t.Cluster.Scratch.CoreWrites += uint64(words)
	p.Wait(sim.Time(words) + clusterMemLat)
	t.Stats.CopyStall += p.Now() - t0
}

// AcquireLock acquires lockID through the system's lock implementation and
// attributes the wait.
func (t *Tile) AcquireLock(p *sim.Proc, lockID int) (prevHolder int) {
	wait, prev := t.Sys.Locks.Acquire(p, t.ID, lockID)
	t.Stats.LockWait += wait
	return prev
}

// ReleaseLock releases lockID (posted).
func (t *Tile) ReleaseLock(p *sim.Proc, lockID int) {
	t.Sys.Locks.Release(p, t.ID, lockID)
}

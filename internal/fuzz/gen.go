// Package fuzz is a seeded litmus-program fuzzer for the PMC stack: a
// generator that manufactures random annotated programs under the
// runtime's annotation discipline, a differential loop that explores each
// program with the formal model and executes it on every runtime backend
// through the conformance harness, and a delta-debugging shrinker that
// minimizes any program whose observed outcomes escape the model's
// allowed set.
//
// The paper claims a hardware mapping of the PMC primitives "can be
// designed and verified with relative ease" (Section I); hand-written
// litmus catalogs only sample that claim. The fuzzer makes the scenario
// space systematic: thousands of generated programs, every one
// reproducible from a printed seed, checked against the model on all
// backends — and, via rt.InjectFaults, proven able to catch and shrink
// real protocol bugs.
package fuzz

import (
	"fmt"
	"math/rand"

	"pmc/internal/core"
	"pmc/internal/litmus"
)

// Mode selects the annotation discipline of generated programs.
type Mode int

const (
	// ModeDRF generates fully annotated, data-race-free programs: every
	// data access happens inside an entry/exit scope, cross-thread
	// ordering flows through single-writer flags and awaits, and fences
	// order cross-location sections. The model admits few outcomes, so
	// these programs put maximal pressure on the backends.
	ModeDRF Mode = iota
	// ModeRacy additionally emits bare (unannotated) reads and writes,
	// like the paper's Fig. 1: the model's envelope is wide and the
	// implementation must stay inside it.
	ModeRacy
	// ModeMixed draws each action from either discipline.
	ModeMixed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDRF:
		return "drf"
	case ModeRacy:
		return "racy"
	case ModeMixed:
		return "mixed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode converts "drf", "racy" or "mixed".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "drf":
		return ModeDRF, nil
	case "racy":
		return ModeRacy, nil
	case "mixed":
		return ModeMixed, nil
	}
	return 0, fmt.Errorf("fuzz: unknown mode %q (drf, racy, mixed)", s)
}

// GenConfig bounds the generator. The zero value selects the defaults.
type GenConfig struct {
	// MaxThreads caps the thread count (min 2; default 3).
	MaxThreads int
	// MaxLocs caps the number of data locations (default 2); flag
	// locations used by publish/await pairs come on top.
	MaxLocs int
	// MaxInstrs caps each thread's instruction count (default 8).
	MaxInstrs int
	// Mode selects the annotation discipline (default ModeMixed).
	Mode Mode
	// MaxBlockWords caps the width of multi-word data locations; wide
	// locations are exercised through ranged block reads/writes
	// (annotation API v2) alongside word accesses. 0 selects the
	// default of 4; 1 generates word-only programs.
	MaxBlockWords int
	// BackendPool, when non-empty, makes generated programs mixed: every
	// location independently draws a backend placement from the pool or
	// stays unplaced (the run's default backend). Placement is part of
	// the canonical fingerprint, so the same instruction stream over
	// different placements counts as distinct programs.
	BackendPool []string
}

func (g GenConfig) withDefaults() GenConfig {
	if g.MaxThreads < 2 {
		g.MaxThreads = 3
	}
	if g.MaxLocs < 1 {
		g.MaxLocs = 2
	}
	if g.MaxInstrs < 4 {
		g.MaxInstrs = 8
	}
	if g.MaxBlockWords == 0 {
		g.MaxBlockWords = 4
	}
	return g
}

// splitmix64 decorrelates consecutive seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// generation state for one program.
type genState struct {
	rng  *rand.Rand
	cfg  GenConfig
	racy bool // discipline of the action being generated

	nThreads int
	dataLocs []string
	// widths maps wide data locations to their word width (absent = 1);
	// block operations are only emitted on wide locations.
	widths   map[string]int
	nextVal  map[string]core.Value // per-location distinct write values
	nextReg  int
	nextFlag int

	// flags published so far: threads with a larger index may await them.
	flags []genFlag
}

type genFlag struct {
	loc    string
	writer int
	val    core.Value
}

func (g *genState) reg() string {
	g.nextReg++
	return fmt.Sprintf("r%d", g.nextReg-1)
}

func (g *genState) val(loc string) core.Value {
	g.nextVal[loc]++
	return g.nextVal[loc]
}

func (g *genState) dataLoc() string {
	return g.dataLocs[g.rng.Intn(len(g.dataLocs))]
}

// Generate builds a random litmus program from the seed. The same seed and
// config always produce the same program, and the program is safe to run
// on the simulator: scopes are never nested (so locks cannot deadlock),
// every await polls a flag that is written exactly once — by a
// lower-indexed thread, so await chains form a DAG — and flag publications
// always reach global visibility (bare writes are flushed by the runtime
// discipline; scoped publications carry an explicit flush).
func Generate(seed int64, cfg GenConfig) litmus.Program {
	cfg = cfg.withDefaults()
	g := &genState{
		rng:     rand.New(rand.NewSource(int64(splitmix64(uint64(seed))))),
		cfg:     cfg,
		widths:  make(map[string]int),
		nextVal: make(map[string]core.Value),
	}
	g.nThreads = 2 + g.rng.Intn(cfg.MaxThreads-1)
	nData := 1 + g.rng.Intn(cfg.MaxLocs)
	for i := 0; i < nData; i++ {
		loc := fmt.Sprintf("X%d", i)
		g.dataLocs = append(g.dataLocs, loc)
		// About a third of data locations are multi-word, exercising the
		// ranged path (block ops, whole-object scope locks) end to end.
		if cfg.MaxBlockWords >= 2 && g.rng.Intn(3) == 0 {
			g.widths[loc] = 2 + g.rng.Intn(cfg.MaxBlockWords-1)
		}
	}

	threads := make([]litmus.Thread, g.nThreads)
	for ti := 0; ti < g.nThreads; ti++ {
		threads[ti] = g.thread(ti)
	}

	p := litmus.Program{
		Name:    fmt.Sprintf("fuzz-%d", seed),
		Threads: threads,
	}
	// Guarantee at least one observation so the outcome space is not
	// vacuous.
	if !hasObservation(p) {
		loc := g.dataLocs[0]
		ti := g.nThreads - 1
		p.Threads[ti] = append(p.Threads[ti],
			litmus.Acquire(loc), litmus.Read(loc, g.reg()), litmus.Release(loc))
	}
	p.Locs = usedLocs(p)
	for _, loc := range p.Locs {
		if w, ok := g.widths[loc]; ok {
			if p.Widths == nil {
				p.Widths = make(map[string]int)
			}
			p.Widths[loc] = w
		}
	}
	// Per-location backend placement, drawn after the instruction stream
	// so placement never perturbs it: the same seed with and without a
	// pool generates the same threads. Index len(pool) means unplaced
	// (the run's default backend).
	if pool := cfg.BackendPool; len(pool) > 0 {
		for _, loc := range p.Locs {
			if i := g.rng.Intn(len(pool) + 1); i < len(pool) {
				if p.Placement == nil {
					p.Placement = make(map[string]string)
				}
				p.Placement[loc] = pool[i]
			}
		}
	}
	return p
}

func hasObservation(p litmus.Program) bool {
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Reg != "" {
				return true
			}
		}
	}
	return false
}

// usedLocs returns the locations referenced by p's instructions, in order
// of first appearance.
func usedLocs(p litmus.Program) []string {
	var locs []string
	seen := map[string]bool{}
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Loc != "" && !seen[in.Loc] {
				seen[in.Loc] = true
				locs = append(locs, in.Loc)
			}
		}
	}
	return locs
}

// thread generates one thread's instruction sequence within the budget.
func (g *genState) thread(ti int) litmus.Thread {
	var th litmus.Thread
	awaits := 0
	// The attempt bound keeps generation total even if every remaining
	// pick is unplaceable (e.g. awaits with no awaitable flag).
	for attempts := 0; len(th) < g.cfg.MaxInstrs && attempts < 4*g.cfg.MaxInstrs; attempts++ {
		// Snapshot the flag pool: a discarded action must not leave a
		// registered-but-never-written flag behind for later threads to
		// await (that await could never be satisfied).
		nFlags, nextFlag := len(g.flags), g.nextFlag
		switch g.cfg.Mode {
		case ModeDRF:
			g.racy = false
		case ModeRacy:
			g.racy = true
		case ModeMixed:
			g.racy = g.rng.Intn(2) == 0
		}
		var act litmus.Thread
		switch pick := g.rng.Intn(10); {
		case pick < 4:
			act = g.criticalSection(ti)
		case pick < 6:
			act = g.publish(ti)
		case pick < 8 && awaits < 2:
			act = g.await(ti)
			if act != nil {
				awaits++
			}
		case pick < 9 && g.racy:
			// Bare top-level access: a write or a read, Fig. 1 style —
			// ranged on wide locations half the time.
			loc := g.dataLoc()
			switch wide := g.widths[loc] > 1 && g.rng.Intn(2) == 0; {
			case wide && g.rng.Intn(2) == 0:
				act = litmus.Thread{litmus.WriteBlock(loc, g.val(loc))}
			case wide:
				act = litmus.Thread{litmus.ReadBlock(loc, g.reg())}
			case g.rng.Intn(2) == 0:
				act = litmus.Thread{litmus.Write(loc, g.val(loc))}
			default:
				act = litmus.Thread{litmus.Read(loc, g.reg())}
			}
		default:
			// A fence between sections; occasionally location-scoped
			// (the Section IV-D extension).
			if g.rng.Intn(4) == 0 {
				act = litmus.Thread{litmus.FenceOn(g.dataLoc())}
			} else {
				act = litmus.Thread{litmus.Fence()}
			}
		}
		if act == nil {
			// Unplaceable pick (no awaitable flag yet): try another
			// action rather than ending the thread early.
			continue
		}
		if len(th)+len(act) > g.cfg.MaxInstrs {
			g.flags = g.flags[:nFlags]
			g.nextFlag = nextFlag
			break
		}
		th = append(th, act...)
	}
	return th
}

// criticalSection emits entry_x(L); 1-3 accesses of L; [fence;] exit_x(L).
// Scopes are never nested and only touch their own location, which keeps
// lock order trivially acyclic. On wide locations the accesses mix word
// and block granularity, exercising the ranged path under the lock.
func (g *genState) criticalSection(ti int) litmus.Thread {
	loc := g.dataLoc()
	th := litmus.Thread{litmus.Acquire(loc)}
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		block := g.widths[loc] > 1 && g.rng.Intn(2) == 0
		switch {
		case block && g.rng.Intn(2) == 0:
			th = append(th, litmus.WriteBlock(loc, g.val(loc)))
		case block:
			th = append(th, litmus.ReadBlock(loc, g.reg()))
		case g.rng.Intn(2) == 0:
			th = append(th, litmus.Write(loc, g.val(loc)))
		default:
			th = append(th, litmus.Read(loc, g.reg()))
		}
	}
	if g.rng.Intn(3) == 0 {
		th = append(th, litmus.Flush(loc))
	}
	if g.rng.Intn(2) == 0 {
		// The Fig. 6 writer idiom: fence before exit so the section is
		// ordered against later sections on other locations.
		if g.rng.Intn(4) == 0 {
			th = append(th, litmus.FenceOn(loc))
		} else {
			th = append(th, litmus.Fence())
		}
	}
	return append(th, litmus.Release(loc))
}

// publish emits a write of a fresh single-writer flag, either bare (the
// runtime discipline wraps and flushes it) or as an explicit scoped
// publication with a flush (the Fig. 6 idiom). Threads with a larger
// index may then await it.
func (g *genState) publish(ti int) litmus.Thread {
	loc := fmt.Sprintf("f%d", g.nextFlag)
	g.nextFlag++
	fl := genFlag{loc: loc, writer: ti, val: 1}
	g.flags = append(g.flags, fl)
	if g.racy || g.rng.Intn(2) == 0 {
		return litmus.Thread{litmus.Write(loc, fl.val)}
	}
	return litmus.Thread{
		litmus.Acquire(loc),
		litmus.Write(loc, fl.val),
		litmus.Flush(loc),
		litmus.Release(loc),
	}
}

// await emits a poll on a flag published by a lower-indexed thread (the
// DAG rule that rules out await cycles), optionally followed by the
// reader-side fence of Fig. 6. Returns nil when no flag is awaitable.
func (g *genState) await(ti int) litmus.Thread {
	var avail []genFlag
	for _, fl := range g.flags {
		if fl.writer < ti {
			avail = append(avail, fl)
		}
	}
	if len(avail) == 0 {
		return nil
	}
	fl := avail[g.rng.Intn(len(avail))]
	reg := ""
	if g.rng.Intn(3) == 0 {
		reg = g.reg()
	}
	th := litmus.Thread{litmus.AwaitEq(fl.loc, fl.val, reg)}
	if !g.racy || g.rng.Intn(2) == 0 {
		th = append(th, litmus.Fence())
	}
	return th
}

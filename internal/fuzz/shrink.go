package fuzz

import (
	"pmc/internal/core"
	"pmc/internal/litmus"
)

// Delta-debugging shrinker: given a program exhibiting a failure (decided
// by an arbitrary repro predicate) it greedily minimizes the program while
// the failure persists — whole threads first, then instructions (keeping
// entry/exit pairs matched so candidates stay well-formed), then location
// widths, then backend placements (toward a single default backend), then
// write values — iterating to a fixpoint. Candidates that no longer fail, fail
// to explore, or deadlock/livelock on the simulator simply do not
// reproduce and are rejected by the predicate, so the shrinker needs no
// structural knowledge beyond pair matching.

// Repro reports whether a candidate program still exhibits the failure
// being minimized. It must be deterministic.
type Repro func(p litmus.Program) bool

// Shrink minimizes p while repro keeps holding. It returns the minimized
// program and the number of accepted shrink steps. The input program is
// not modified.
func Shrink(p litmus.Program, repro Repro) (litmus.Program, int) {
	cur := cloneProgram(p)
	steps := 0
	for {
		c, ok := shrinkPass(cur, repro)
		if !ok {
			break
		}
		cur = c
		steps++
	}
	cur.Locs = usedLocs(cur)
	if len(cur.Locs) == 0 {
		cur.Locs = p.Locs // degenerate, keep explorable
	}
	if cur.Widths != nil {
		for loc, w := range cur.Widths {
			used := false
			for _, l := range cur.Locs {
				if l == loc {
					used = true
				}
			}
			if !used || w <= 1 {
				delete(cur.Widths, loc)
			}
		}
		if len(cur.Widths) == 0 {
			cur.Widths = nil
		}
	}
	if cur.Placement != nil {
		for loc := range cur.Placement {
			used := false
			for _, l := range cur.Locs {
				if l == loc {
					used = true
				}
			}
			if !used {
				delete(cur.Placement, loc)
			}
		}
		if len(cur.Placement) == 0 {
			cur.Placement = nil
		}
	}
	return cur, steps
}

// shrinkPass tries every single reduction of cur in a fixed order and
// returns the first accepted candidate.
func shrinkPass(cur litmus.Program, repro Repro) (litmus.Program, bool) {
	// 1. Drop a whole thread.
	for ti := range cur.Threads {
		if len(cur.Threads) == 1 {
			break
		}
		cand := cloneProgram(cur)
		cand.Threads = append(cand.Threads[:ti:ti], cand.Threads[ti+1:]...)
		if instrCountOK(cand) && repro(cand) {
			return cand, true
		}
	}
	// 2. Drop an instruction (acquire/release as a matched pair).
	for ti := range cur.Threads {
		for j := range cur.Threads[ti] {
			cand, ok := dropInstr(cur, ti, j)
			if ok && instrCountOK(cand) && repro(cand) {
				return cand, true
			}
		}
	}
	// 3. Shrink wide locations: first all the way down to one word, then
	// one word at a time (block instructions on a one-word location are
	// the plain word operations after lowering).
	for _, loc := range usedLocs(cur) {
		w := cur.WidthOf(loc)
		if w <= 1 {
			continue
		}
		cands := []int{1}
		if w > 2 {
			cands = append(cands, w-1)
		}
		for _, nw := range cands {
			cand := cloneProgram(cur)
			if nw <= 1 {
				delete(cand.Widths, loc)
			} else {
				cand.Widths[loc] = nw
			}
			if repro(cand) {
				return cand, true
			}
		}
	}
	// 4. Drop placement entries one at a time: the minimal counterexample
	// shrinks toward every location on the run's single default backend.
	for _, loc := range usedLocs(cur) {
		if cur.Placement[loc] == "" {
			continue
		}
		cand := cloneProgram(cur)
		delete(cand.Placement, loc)
		if repro(cand) {
			return cand, true
		}
	}
	// 5. Shrink write values to 1 (rewriting awaits of the same
	// location/value pair so they stay satisfiable).
	for _, loc := range usedLocs(cur) {
		for _, v := range writeValues(cur, loc) {
			if v == 1 {
				continue
			}
			cand := replaceValue(cur, loc, v, 1)
			if repro(cand) {
				return cand, true
			}
		}
	}
	return litmus.Program{}, false
}

func instrCountOK(p litmus.Program) bool { return litmus.InstrCount(p) > 0 }

func cloneProgram(p litmus.Program) litmus.Program {
	c := p
	c.Locs = append([]string(nil), p.Locs...)
	c.Threads = make([]litmus.Thread, len(p.Threads))
	for i, th := range p.Threads {
		c.Threads[i] = append(litmus.Thread(nil), th...)
	}
	if p.Widths != nil {
		c.Widths = make(map[string]int, len(p.Widths))
		for k, v := range p.Widths {
			c.Widths[k] = v
		}
	}
	if p.Placement != nil {
		c.Placement = make(map[string]string, len(p.Placement))
		for k, v := range p.Placement {
			c.Placement[k] = v
		}
	}
	return c
}

// dropInstr removes instruction j of thread ti; an acquire or release is
// removed together with its matching partner so the candidate keeps the
// static lock discipline. It reports false for an index that no longer
// exists (callers iterate over the pre-drop shape).
func dropInstr(p litmus.Program, ti, j int) (litmus.Program, bool) {
	th := p.Threads[ti]
	if j >= len(th) {
		return litmus.Program{}, false
	}
	drop := map[int]bool{j: true}
	switch th[j].Kind {
	case litmus.IAcquire:
		if k := matchRelease(th, j); k >= 0 {
			drop[k] = true
		}
	case litmus.IRelease:
		if k := matchAcquire(th, j); k >= 0 {
			drop[k] = true
		}
	}
	cand := cloneProgram(p)
	var out litmus.Thread
	for idx, in := range th {
		if !drop[idx] {
			out = append(out, in)
		}
	}
	cand.Threads[ti] = out
	return cand, true
}

// matchRelease finds the release paired with the acquire at index j.
func matchRelease(th litmus.Thread, j int) int {
	loc, depth := th[j].Loc, 0
	for k := j + 1; k < len(th); k++ {
		switch {
		case th[k].Kind == litmus.IAcquire && th[k].Loc == loc:
			depth++
		case th[k].Kind == litmus.IRelease && th[k].Loc == loc:
			if depth == 0 {
				return k
			}
			depth--
		}
	}
	return -1
}

// matchAcquire finds the acquire paired with the release at index j.
func matchAcquire(th litmus.Thread, j int) int {
	loc, depth := th[j].Loc, 0
	for k := j - 1; k >= 0; k-- {
		switch {
		case th[k].Kind == litmus.IRelease && th[k].Loc == loc:
			depth++
		case th[k].Kind == litmus.IAcquire && th[k].Loc == loc:
			if depth == 0 {
				return k
			}
			depth--
		}
	}
	return -1
}

// writeValues returns the distinct values written to loc, in program
// order of first appearance.
func writeValues(p litmus.Program, loc string) []core.Value {
	var vals []core.Value
	seen := map[core.Value]bool{}
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Kind == litmus.IWrite && in.Loc == loc && !seen[in.Val] {
				seen[in.Val] = true
				vals = append(vals, in.Val)
			}
		}
	}
	return vals
}

// replaceValue rewrites writes and awaits of (loc, old) to value new.
func replaceValue(p litmus.Program, loc string, old, new core.Value) litmus.Program {
	cand := cloneProgram(p)
	for _, th := range cand.Threads {
		for i, in := range th {
			if in.Loc == loc && in.Val == old &&
				(in.Kind == litmus.IWrite || in.Kind == litmus.IAwaitEq) {
				th[i].Val = new
			}
		}
	}
	return cand
}
